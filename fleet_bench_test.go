package deviant

// BenchmarkFleetScatter prices the distribution machinery itself: a
// coordinator scattering the linux-2.4.7-scale corpus over in-process
// workers and merging the token-stream partials, minus any network.
// Compared against BenchmarkAnalyzeParallel, the delta is what sharding
// costs (digest placement, gob encode/decode, checksums, reparse); the
// sweep over fleet shapes shows how that overhead amortizes as workers
// parse shards concurrently.

import (
	"context"
	"fmt"
	"testing"

	"deviant/internal/corpus"
	"deviant/internal/dist"
	"deviant/internal/snapshot"
)

// benchShardCaller is the no-network worker: the full RunShard path
// (frontend, token encode, checksums) against a private store.
type benchShardCaller struct{ store *snapshot.Store }

func (w benchShardCaller) Shard(ctx context.Context, req *dist.ShardRequest, requestID string) (*dist.ShardResponse, error) {
	return dist.RunShard(req, w.store, 0)
}

// benchAnalyzeFleet measures what fleet-wide tracing costs on a
// distributed run: 4 in-process workers, with (traced=true) every
// worker running its shard under its own tracer, serializing the span
// stream into the response, and the coordinator offset-aligning and
// stitching all of them — against the same topology with the plane
// disabled. The On/Off delta is the per-run price of cross-process
// trace stitching.
func benchAnalyzeFleet(b *testing.B, traced bool) {
	b.Helper()
	c := corpus.Generate(corpus.Linux247())
	workers := make([]dist.Worker, 4)
	for i := range workers {
		workers[i] = dist.Worker{
			Name:   fmt.Sprintf("bench-w%d", i),
			Caller: benchShardCaller{store: snapshot.NewStore(0)},
		}
	}
	coord, err := dist.NewCoordinator(workers)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(c.Lines), "source-lines")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := DefaultOptions()
		if traced {
			opts.Tracer = NewTracer()
		}
		res, err := coord.Run(context.Background(), c.Files, opts, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if res.Reports.Len() == 0 {
			b.Fatal("no reports")
		}
		if traced && len(opts.Tracer.Imported()) == 0 {
			b.Fatal("no worker processes stitched in")
		}
	}
}

// BenchmarkAnalyzeFleetTraceOff is the 4-worker distributed run with
// the observability plane disabled: stitching sites pay only nil checks.
func BenchmarkAnalyzeFleetTraceOff(b *testing.B) { benchAnalyzeFleet(b, false) }

// BenchmarkAnalyzeFleetTraceOn is the same fleet with worker span
// export, coordinator stitching and metrics federation all live.
func BenchmarkAnalyzeFleetTraceOn(b *testing.B) { benchAnalyzeFleet(b, true) }

func BenchmarkFleetScatter(b *testing.B) {
	c := corpus.Generate(corpus.Linux247())
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			workers := make([]dist.Worker, n)
			for i := range workers {
				workers[i] = dist.Worker{
					Name:   fmt.Sprintf("bench-w%d", i),
					Caller: benchShardCaller{store: snapshot.NewStore(0)},
				}
			}
			coord, err := dist.NewCoordinator(workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(c.Lines), "source-lines")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coord.Run(context.Background(), c.Files, DefaultOptions(), "bench")
				if err != nil {
					b.Fatal(err)
				}
				if res.Reports.Len() == 0 {
					b.Fatal("no reports")
				}
			}
		})
	}
}
