package deviant

// Benchmarks regenerating every table and figure of the paper's
// evaluation (experiment index: DESIGN.md §3; measured outputs:
// EXPERIMENTS.md), plus micro-benchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The per-table/figure benchmarks wrap the same experiment functions that
// cmd/benchtab prints, so "regenerating Table N" and "benchmarking Table
// N" are the same code path.

import (
	"runtime"
	"sort"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/corpus"
	"deviant/internal/cparse"
	"deviant/internal/cpp"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/experiments"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/sm"
)

func benchExperiment(b *testing.B, f func() (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (internal consistency questions).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, experiments.Table1) }

// BenchmarkTable2 regenerates Table 2 (statistically derived templates).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, experiments.Table2) }

// BenchmarkTable3 regenerates Table 3 (null consistency errors, 3 systems).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, experiments.Table3) }

// BenchmarkTable4 regenerates the §7 user-pointer results table.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, experiments.Table4) }

// BenchmarkTable5 regenerates the §8 derived-failure tables.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, experiments.Table5) }

// BenchmarkTable6 regenerates the §9 derived-pairs table.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, experiments.Table6) }

// BenchmarkTable7 regenerates the §4.2 cross-version consistency table.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, experiments.Table7) }

// BenchmarkFigure1 regenerates the Figure 1 lock-inference walk-through.
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, experiments.Figure1) }

// BenchmarkFigure2 regenerates Figure 2 (the metal null checker).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, experiments.Figure2) }

// BenchmarkFigure3 regenerates the rank-vs-threshold comparison (§5.1).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, experiments.Figure3) }

// BenchmarkFigure4 regenerates the scalability figure (§3.5).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, experiments.Figure4) }

// BenchmarkAblationPruning measures the crash-path-pruning ablation.
func BenchmarkAblationPruning(b *testing.B) { benchExperiment(b, experiments.AblationPruning) }

// BenchmarkAblationMacros measures the macro-truncation ablation.
func BenchmarkAblationMacros(b *testing.B) { benchExperiment(b, experiments.AblationMacros) }

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

// BenchmarkFullPipeline is the headline number: the complete analysis
// (preprocess, parse, CFGs, all nine checkers, ranking) over the
// linux-2.4.7-like corpus.
func BenchmarkFullPipeline(b *testing.B) {
	c := corpus.Generate(corpus.Linux247())
	b.ReportMetric(float64(c.Lines), "source-lines")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Analyze(c.Files, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Reports.Len() == 0 {
			b.Fatal("no reports")
		}
	}
}

// benchAnalyze runs the full analysis over the largest scalability
// corpus (the Figure 4 workload family, linux-2.4.7-scale) at a fixed
// worker count.
func benchAnalyze(b *testing.B, workers int) {
	b.Helper()
	c := corpus.Generate(corpus.Linux247())
	opts := DefaultOptions()
	opts.Workers = workers
	b.ReportMetric(float64(c.Lines), "source-lines")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Analyze(c.Files, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Reports.Len() == 0 {
			b.Fatal("no reports")
		}
	}
}

// BenchmarkAnalyzeSerial is the single-worker baseline: the pipeline
// takes the inline path with no goroutines or channels.
func BenchmarkAnalyzeSerial(b *testing.B) { benchAnalyze(b, 1) }

// BenchmarkAnalyzeParallel runs the same workload with one worker per
// CPU. Output is identical to the serial run (see TestParallelDeterminism);
// only wall clock differs. On a 4+-core machine expect >= 2x over
// BenchmarkAnalyzeSerial.
func BenchmarkAnalyzeParallel(b *testing.B) { benchAnalyze(b, runtime.NumCPU()) }

// benchAnalyzeObs measures the observability layer's overhead on the
// serial pipeline. traced=false runs with instrumentation compiled in but
// disabled (nil tracer, no registry) — the configuration every library
// user gets by default, which must stay within 2% of the
// pre-instrumentation BenchmarkAnalyzeSerial. traced=true attaches a
// tracer and folds the run into a metrics registry, pricing full
// observability.
func benchAnalyzeObs(b *testing.B, traced bool) {
	b.Helper()
	c := corpus.Generate(corpus.Linux247())
	b.ReportMetric(float64(c.Lines), "source-lines")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := DefaultOptions()
		opts.Workers = 1
		if traced {
			opts.Tracer = NewTracer()
		}
		res, err := Analyze(c.Files, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Reports.Len() == 0 {
			b.Fatal("no reports")
		}
		if traced {
			res.RecordMetrics(NewRegistry())
			if len(opts.Tracer.Spans()) == 0 {
				b.Fatal("no spans recorded")
			}
		}
	}
}

// BenchmarkAnalyzeInstrumentedOff is the serial pipeline with tracing and
// metrics disabled: every instrumentation site pays only its nil check.
func BenchmarkAnalyzeInstrumentedOff(b *testing.B) { benchAnalyzeObs(b, false) }

// BenchmarkAnalyzeInstrumentedOn is the serial pipeline with a tracer
// attached and the run folded into a metrics registry.
func BenchmarkAnalyzeInstrumentedOn(b *testing.B) { benchAnalyzeObs(b, true) }

// corpusBytes is the total corpus size in bytes (sources plus headers),
// for b.SetBytes so the frontend benchmarks report MB/s.
func corpusBytes(files map[string]string) int64 {
	var n int64
	for _, src := range files {
		n += int64(len(src))
	}
	return n
}

// BenchmarkScanner measures raw tokenization throughput of the
// byte-table scanner over every file in the corpus.
func BenchmarkScanner(b *testing.B) {
	c := corpus.Generate(corpus.Linux247())
	names := make([]string, 0, len(c.Files))
	for name := range c.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	b.SetBytes(corpusBytes(c.Files))
	b.ReportAllocs()
	b.ResetTimer()
	toks := 0
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			s := ctoken.NewScanner(name, c.Files[name])
			for {
				tok := s.Next()
				if tok.Kind == ctoken.EOF {
					break
				}
				toks++
			}
		}
	}
	if toks == 0 {
		b.Fatal("no tokens")
	}
}

// BenchmarkPreprocess measures the C preprocessor alone.
func BenchmarkPreprocess(b *testing.B) {
	c := corpus.Generate(corpus.Linux247())
	b.SetBytes(corpusBytes(c.Files))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, unit := range c.Units {
			pp := cpp.New(cpp.MapFS(c.Files), "include")
			if _, err := pp.Process(unit); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParse measures preprocessing plus parsing.
func BenchmarkParse(b *testing.B) {
	c := corpus.Generate(corpus.Linux247())
	b.SetBytes(corpusBytes(c.Files))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, unit := range c.Units {
			pp := cpp.New(cpp.MapFS(c.Files), "include")
			toks, err := pp.Process(unit)
			if err != nil {
				b.Fatal(err)
			}
			if _, errs := cparse.ParseFile(unit, toks); len(errs) != 0 {
				b.Fatal(errs[0])
			}
		}
	}
}

// benchFuncs parses one corpus unit into function decls + CFGs.
func benchFuncs(b *testing.B) []*cfg.Graph {
	b.Helper()
	c := corpus.Generate(corpus.Linux241())
	conv := latent.Default()
	var graphs []*cfg.Graph
	for _, unit := range c.Units {
		pp := cpp.New(cpp.MapFS(c.Files), "include")
		toks, err := pp.Process(unit)
		if err != nil {
			b.Fatal(err)
		}
		f, errs := cparse.ParseFile(unit, toks)
		if len(errs) != 0 {
			b.Fatal(errs[0])
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
				graphs = append(graphs, cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine}))
			}
		}
	}
	return graphs
}

// BenchmarkEngineMemoized measures the path engine with memoization (the
// paper's configuration).
func BenchmarkEngineMemoized(b *testing.B) {
	graphs := benchFuncs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := report.NewCollector()
		for _, g := range graphs {
			engine.Run(g, &sm.Runner{M: sm.FigureTwoChecker()}, col, engine.Options{Memoize: true})
		}
	}
}

// BenchmarkEngineUnmemoized measures naive path exploration — the
// ablation behind Figure 4's no-memo column.
func BenchmarkEngineUnmemoized(b *testing.B) {
	graphs := benchFuncs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := report.NewCollector()
		for _, g := range graphs {
			engine.Run(g, &sm.Runner{M: sm.FigureTwoChecker()}, col, engine.Options{Memoize: false})
		}
	}
}

// BenchmarkCorpusGenerate measures synthetic tree generation.
func BenchmarkCorpusGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := corpus.Generate(corpus.Linux247())
		if len(c.Bugs) == 0 {
			b.Fatal("no bugs seeded")
		}
	}
}

// BenchmarkZStatistic measures the ranking statistic itself.
func BenchmarkZStatistic(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += Z(1000, 990, DefaultP0)
	}
	_ = s
}
