# Developer entry points. `make ci` is the gate: vet, build, the full
# test suite under the race detector, and a benchmark smoke run that
# executes the serial/parallel pipeline benchmarks once each.

GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json bench-gate obs-race service-race serve-smoke fleet-smoke jobs-smoke chaos-fleet-smoke fuzz-smoke soak-smoke chaos-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep (slow; regenerates every table and figure).
bench:
	$(GO) test -bench=. -benchmem .

# One iteration of the pipeline scalability benchmarks — enough to catch
# a benchmark that no longer compiles or crashes, cheap enough for CI.
bench-smoke:
	$(GO) test -run='^$$' -bench='^BenchmarkAnalyze(Serial|Parallel)$$' -benchtime=1x .

# Pipeline + frontend benchmark snapshot, archived two ways: the current
# numbers overwrite BENCH_obs.json, and a dated entry is APPENDED to
# BENCH_trajectory.json so every PR's perf claim stays checkable against
# history. One iteration each — enough to keep the benchmarks honest in
# CI; run with BENCHTIME=5x (or more) for stable numbers.
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run='^$$' -bench='^Benchmark(Analyze(Serial|Parallel|InstrumentedOff|InstrumentedOn|FleetTraceOff|FleetTraceOn)|Scanner|Preprocess|Parse|FleetScatter)$$' \
		-benchtime=$(BENCHTIME) -benchmem . | $(GO) run ./cmd/benchjson -append BENCH_trajectory.json > BENCH_obs.json

# Allocation regression gate: fail if BenchmarkAnalyzeParallel allocates
# more than 20% over the checked-in baseline (BENCH_baseline.json).
# allocs/op is iteration-count-independent, so one iteration gates
# reliably where ns/op would be noise.
bench-gate:
	$(GO) test -run='^$$' -bench='^BenchmarkAnalyzeParallel$$' -benchtime=$(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchjson -gate BENCH_baseline.json

# The observability layer under the race detector: tracer lane
# allocation and the metrics registry are hammered from many goroutines.
obs-race:
	$(GO) test -race ./internal/obs/...

# The service suite under the race detector (also part of `race`, but
# kept callable on its own for quick iteration on deviantd).
service-race:
	$(GO) test -race ./internal/service/...

# Boot deviantd, POST the quickstart corpus, assert the ranked reports
# match the CLI run bit for bit, then drain on SIGTERM.
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -v ./cmd/deviantd

# Boot a 3-worker + 1-coordinator fleet as separate processes, run the
# corpus through it cold and warm, assert the ranked reports match the
# CLI bit for bit, then kill a worker (output must not change) and
# drain the coordinator.
fleet-smoke:
	$(GO) test -run 'TestFleetSmoke' -v ./cmd/deviantd

# Boot deviantd, run the async job API end to end (submit → poll →
# result) and bit-compare the job's result body against a synchronous
# /v1/analyze at equal snapshot warmth, pin the CLI baseline write/use
# round trip, check job lifecycle events in the run journal, then drain.
jobs-smoke:
	$(GO) test -run 'TestJobsSmoke' -v ./cmd/deviantd

# Boot a 3-worker fleet whose coordinator has one transient network
# fault armed against every worker (-chaos) plus a durable -job-dir,
# assert the output stays bit-identical to the CLI through the chaos,
# two live membership reshapes (POST /v1/fleet/workers, SIGHUP
# -workers-file reload), and a SIGKILL + restart of the coordinator
# that must recover a finished job's bytes and re-run an interrupted
# one to the same bytes.
chaos-fleet-smoke:
	$(GO) test -run 'TestChaosFleetSmoke|TestChaosFlagValidation' -v ./cmd/deviantd

# Native coverage-guided fuzzing of the frontend, 30s per target, plus
# the deterministic fingerprint- and network-chaos-oracle runs: report
# fingerprints must be byte-identical across workers/memo/fleet shapes
# and invariant under the alpha-rename + function-reorder metamorphic
# transforms, and every transient net-fault class plus live membership
# reshapes must leave fleet output bytes untouched. Inputs that fail a
# fuzz target are written by the Go toolchain to the target's
# testdata/fuzz/<FuzzName>/ directory; check them in as regression
# seeds.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzScanner$$' -fuzztime=$(FUZZTIME) ./internal/ctoken
	$(GO) test -run='^$$' -fuzz='^FuzzPreprocess$$' -fuzztime=$(FUZZTIME) ./internal/cpp
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/cparse
	$(GO) test -run 'TestFingerprintOracle|TestNetChaosOracle' -v ./internal/fuzzgen

# Differential soak: 200 generated adversarial programs through the full
# pipeline under all nine equivalence oracles (workers, memoization,
# snapshot, metamorphic, quarantine determinism, fleet determinism,
# fingerprint stability, network chaos, no-crash/no-hang). Failing
# inputs land in testdata/fuzz/deviantfuzz/ and reproduce via
# `deviantfuzz -seed N -n 1`.
soak-smoke:
	$(GO) run ./cmd/deviantfuzz -n 200 -seed 1

# Fault-containment sweep: armed failpoints, budget exhaustion, torn and
# corrupted snapshot files, service panic recovery, and client retry
# behavior, all under the race detector.
chaos-smoke:
	$(GO) test -race -run 'Quarantine|Budget|Deadline|Disk|Persistent|Fault|Panic|Retry|TrapBait|Redact|Canonicalize|Injected|Rescatter|AllDead|CorruptAndMissing' \
		./internal/fault ./internal/core ./internal/snapshot ./internal/service ./internal/client ./internal/fuzzgen ./internal/dist ./cmd/deviant

ci: vet build race bench-smoke bench-gate obs-race service-race serve-smoke fleet-smoke jobs-smoke chaos-fleet-smoke bench-json fuzz-smoke soak-smoke chaos-smoke
