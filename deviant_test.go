package deviant

import (
	"testing"
	"time"

	"deviant/internal/corpus"
)

// analyzeCorpus runs the full pipeline over a generated corpus.
func analyzeCorpus(t *testing.T, spec corpus.Spec) (*corpus.Corpus, *Result) {
	t.Helper()
	c := corpus.Generate(spec)
	res, err := Analyze(c.Files, DefaultOptions())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(res.ParseErrors) != 0 {
		t.Fatalf("corpus should parse cleanly: %v", res.ParseErrors[0])
	}
	return c, res
}

func TestEndToEndLinux247(t *testing.T) {
	c, res := analyzeCorpus(t, corpus.Linux247())
	if res.FuncCount == 0 || res.LineCount == 0 {
		t.Fatal("nothing analyzed")
	}
	reports := res.Reports.Ranked()
	if len(reports) == 0 {
		t.Fatal("no reports at all")
	}

	// Every seeded bug kind must be found with high recall and sane
	// precision (tolerance ±2 lines).
	type want struct {
		kind      corpus.BugKind
		minRecall float64
		minPrec   float64
	}
	wants := []want{
		{corpus.CheckThenUse, 0.99, 0.99},
		{corpus.UseThenCheck, 0.99, 0.99},
		{corpus.RedundantCheck, 0.99, 0.99},
		{corpus.UserPtrDeref, 0.99, 0.99},
		{corpus.WrongErrCheck, 0.9, 0.9},
		{corpus.UncheckedAlloc, 0.9, 0.9},
		// The corpus seeds coincidental weak beliefs (fnCoincidence) on
		// purpose; their violations are false positives that the z
		// ranking must push to the bottom. Whole-list precision is
		// therefore lower for the statistical checkers — the ranked
		// prefix is what matters, asserted separately below.
		{corpus.UnlockedAccess, 0.9, 0.0},
		{corpus.MissingUnlock, 0.9, 0.3},
		{corpus.IntrEnabled, 0.9, 0.9},
		{corpus.SecUnchecked, 0.9, 0.9},
		{corpus.MissingRevert, 0.9, 0.9},
		{corpus.UseAfterFree, 0.9, 0.9},
	}
	// Checkers overlap: the reverse checker also finds leaked locks (its
	// template subsumes them on error paths), and both path-pair
	// checkers rediscover the IS_ERR bugs as broken vfs_lookup/IS_ERR
	// pairings.
	crossKinds := map[corpus.BugKind][]corpus.BugKind{
		corpus.MissingRevert: {corpus.MissingRevert, corpus.MissingUnlock, corpus.WrongErrCheck},
		// Pairing also rediscovers the interrupt bugs: when touch_hw_port
		// precedes cli, the (cli, touch_hw_port) pairing breaks.
		corpus.MissingUnlock: {corpus.MissingUnlock, corpus.WrongErrCheck, corpus.IntrEnabled},
	}
	for _, w := range wants {
		if c.CountOf(w.kind) == 0 {
			t.Errorf("%s: no seeded bugs", w.kind)
			continue
		}
		match := crossKinds[w.kind]
		if match == nil {
			match = []corpus.BugKind{w.kind}
		}
		sc := corpus.ScoreReportsKinds(c, reports, w.kind, match, 2)
		t.Logf("%-22s seeded=%d TP=%d FP=%d FN=%d recall=%.2f precision=%.2f",
			w.kind, c.CountOf(w.kind), sc.TruePositives, sc.FalsePositives,
			sc.FalseNegatives, sc.Recall(), sc.Precision())
		if sc.Recall() < w.minRecall {
			t.Errorf("%s: recall %.2f < %.2f", w.kind, sc.Recall(), w.minRecall)
		}
		if sc.Precision() < w.minPrec {
			t.Errorf("%s: precision %.2f < %.2f", w.kind, sc.Precision(), w.minPrec)
		}
	}

	// Ranked-inspection property (§5.1): within the lockvar checker's
	// own ranked list, the top-K messages (K = seeded bug count) are
	// dominated by real bugs even though coincidences pollute the tail.
	lockReports := res.Reports.ByChecker("lockvar")
	k := c.CountOf(corpus.UnlockedAccess)
	if len(lockReports) < k {
		t.Fatalf("lockvar reports %d < seeded %d", len(lockReports), k)
	}
	sc := corpus.ScoreReports(c, lockReports[:k], corpus.UnlockedAccess, 2)
	if sc.Precision() < 0.8 {
		t.Errorf("lockvar precision@%d = %.2f; ranking failed to float real bugs", k, sc.Precision())
	}
}

func TestEndToEndGeneralityOpenBSD(t *testing.T) {
	// §3.6: the checkers apply unchanged to a different system.
	c, res := analyzeCorpus(t, corpus.OpenBSD28())
	reports := res.Reports.Ranked()
	total := 0
	for _, kind := range []corpus.BugKind{
		corpus.CheckThenUse, corpus.UncheckedAlloc, corpus.UnlockedAccess,
	} {
		sc := corpus.ScoreReports(c, reports, kind, 2)
		total += sc.TruePositives
		if c.CountOf(kind) > 0 && sc.Recall() < 0.9 {
			t.Errorf("%s on openbsd-like: recall %.2f", kind, sc.Recall())
		}
	}
	if total == 0 {
		t.Error("nothing found on the cross-check corpus")
	}
}

func TestDerivedRuleInstances(t *testing.T) {
	_, res := analyzeCorpus(t, corpus.Linux241())
	// Pair derivation must discover spin_lock/spin_unlock near the top.
	found := false
	for i, p := range res.Pairs {
		if p.A == "spin_lock" && p.B == "spin_unlock" {
			found = true
			if i > 3 {
				t.Errorf("spin_lock pair ranked %d: %+v", i, res.Pairs[:i+1])
			}
		}
	}
	if !found {
		t.Error("spin_lock/spin_unlock not derived")
	}
	// kmalloc must be derived as can-fail.
	km := false
	for i, d := range res.CanFail {
		if d.Func == "kmalloc" {
			km = true
			if i > 5 {
				t.Errorf("kmalloc ranked %d in can-fail", i)
			}
		}
	}
	if !km {
		t.Error("kmalloc not derived as can-fail")
	}
	// Lock bindings must include module counters.
	if len(res.LockBindings) == 0 {
		t.Error("no lock bindings derived")
	}
}

func TestMemoizationAblation(t *testing.T) {
	c := corpus.Generate(corpus.Linux241())
	optsOn := DefaultOptions()
	resOn, err := Analyze(c.Files, optsOn)
	if err != nil {
		t.Fatal(err)
	}
	optsOff := DefaultOptions()
	optsOff.Memoize = false
	resOff, err := Analyze(c.Files, optsOff)
	if err != nil {
		t.Fatal(err)
	}
	on := resOn.EngineStats["null"]
	off := resOff.EngineStats["null"]
	if on.Visits >= off.Visits {
		t.Errorf("memoized visits %d should be below unmemoized %d", on.Visits, off.Visits)
	}
}

func TestCrashPruningAblation(t *testing.T) {
	// A corpus-independent check: the panic idiom produces a false
	// positive only when pruning is disabled.
	src := map[string]string{
		"a.c": `
struct proc { int processor; };
void panic(const char *fmt, ...);
void f(struct proc *idle, int cpu) {
	if (!idle)
		panic("no idle process");
	idle->processor = cpu;
}`,
	}
	resOn, err := Analyze(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(resOn.Reports.ByChecker("null")); n != 0 {
		t.Errorf("pruned run flagged %d", n)
	}
	off := DefaultOptions()
	off.DisableCrashPruning = true
	resOff, err := Analyze(src, off)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(resOff.Reports.ByChecker("null")); n != 1 {
		t.Errorf("unpruned run should flag the idiom once, got %d", n)
	}
}

func TestPublicHelpers(t *testing.T) {
	if Z(1000, 999, DefaultP0) <= Z(10, 9, DefaultP0) {
		t.Error("Z re-export broken")
	}
	conv := DefaultConventions()
	if !conv.IsCrashRoutine("panic") {
		t.Error("conventions re-export broken")
	}
	if !AllChecks().Null {
		t.Error("AllChecks broken")
	}
}

func TestAnalyzeFSWithProvider(t *testing.T) {
	fs := MapFS{
		"m.c":              "#include \"kernel.h\"\nint f(int *p) { if (p == NULL) return *p; return 0; }\n",
		"include/kernel.h": "#define NULL 0\n",
	}
	res, err := AnalyzeFS(fs, []string{"m.c"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports.ByChecker("null")) != 1 {
		t.Errorf("reports: %+v", res.Reports.Ranked())
	}
}

func TestAnalyzeEmptyFails(t *testing.T) {
	if _, err := Analyze(map[string]string{}, DefaultOptions()); err == nil {
		t.Error("empty input should error")
	}
}

// TestMemoizationPreservesReports is the key soundness property of the
// engine's memoization: pruning (block, state) pairs already visited must
// not change WHAT is reported, only how much work finding it takes.
func TestMemoizationPreservesReports(t *testing.T) {
	srcs := []string{
		`void f(struct s *p, int a, int b) {
			if (p == 0) { if (a) log_a(); if (b) log_b(); use(p->x); }
		}`,
		`int g(struct s *p) {
			struct q *i = p->d;
			if (!p || !i) return 0;
			return 1;
		}`,
		`void h(int n) {
			while (n > 0) {
				spin_lock(&gl);
				shared = shared + 1;
				spin_unlock(&gl);
				n--;
			}
		}`,
	}
	for i, src := range srcs {
		files := map[string]string{
			"u.c": "struct s { int x; void *d; };\nstruct q { int y; };\nint shared;\nstruct lk { int v; };\nstruct lk gl;\n" + src,
		}
		on := DefaultOptions()
		off := DefaultOptions()
		off.Memoize = false

		resOn, err := Analyze(files, on)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		resOff, err := Analyze(files, off)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		keys := func(rs []Report) map[string]bool {
			m := map[string]bool{}
			for _, r := range rs {
				m[r.Checker+"|"+r.Pos.String()] = true
			}
			return m
		}
		kOn, kOff := keys(resOn.Reports.Ranked()), keys(resOff.Reports.Ranked())
		for k := range kOn {
			if !kOff[k] {
				t.Errorf("src %d: memoized-only report %s", i, k)
			}
		}
		for k := range kOff {
			if !kOn[k] {
				t.Errorf("src %d: unmemoized-only report %s", i, k)
			}
		}
	}
}

func TestDiffAcrossVersions(t *testing.T) {
	oldSrc := map[string]string{
		"m.c": `
struct s { int x; };
int f(struct s *p) {
	if (!p)
		return -1;
	return p->x;
}`,
	}
	newSrc := map[string]string{
		"m.c": `
struct s { int x; };
int f(struct s *p) {
	return p->x;
}`,
	}
	drifts, res, err := Diff(oldSrc, newSrc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 || drifts[0].Kind != "dropped-null-check" {
		t.Fatalf("drifts: %+v", drifts)
	}
	if len(res.Reports.ByChecker("version/dropped-null-check")) != 1 {
		t.Errorf("drift not reported: %+v", res.Reports.Ranked())
	}
}

// TestLargeCorpusSmoke runs the whole pipeline over a ~26k-line tree and
// bounds the wall-clock budget loosely — the §3.5 scalability claim at a
// size beyond the benchmark sweep.
func TestLargeCorpusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large corpus smoke is slow")
	}
	spec := corpus.Spec{
		Name: "huge", Seed: 99, Modules: 200, FuncsPerModule: 16,
		Rates: corpus.DefaultRates(),
	}
	c := corpus.Generate(spec)
	start := time.Now()
	res, err := Analyze(c.Files, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("%d lines, %d funcs, %d reports in %v", res.LineCount, res.FuncCount, res.Reports.Len(), elapsed)
	if res.LineCount < 20000 {
		t.Fatalf("corpus too small: %d lines", res.LineCount)
	}
	if elapsed > 30*time.Second {
		t.Errorf("analysis took %v; scalability regression", elapsed)
	}
	// Spot-check recall at scale for one MUST and one MAY checker.
	for _, kind := range []corpus.BugKind{corpus.CheckThenUse, corpus.UncheckedAlloc} {
		sc := corpus.ScoreReports(c, res.Reports.Ranked(), kind, 2)
		if sc.Recall() < 0.9 {
			t.Errorf("%s recall at scale: %.2f", kind, sc.Recall())
		}
	}
}

// TestAnalysisDeterministic: two runs over the same tree produce
// byte-identical ranked output — required for reproducible experiments
// (no map-iteration order may leak into results).
func TestAnalysisDeterministic(t *testing.T) {
	c := corpus.Generate(corpus.Linux241())
	render := func() string {
		res, err := Analyze(c.Files, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, r := range res.Reports.Ranked() {
			out += r.String() + "\n"
		}
		return out
	}
	a, b := render(), render()
	if a != b {
		t.Error("ranked reports differ between identical runs")
	}
}
