package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTrapDisarmedIsNoop(t *testing.T) {
	Reset()
	Trap("frontend", "anything") // must not panic
}

func TestArmTrapDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Arm("checker", "boom")

	caught := func(stage, id string) (v any) {
		defer func() { v = recover() }()
		Trap(stage, id)
		return nil
	}

	if v := caught("checker", "fn_boom_1"); v == nil {
		t.Fatal("armed trap did not fire on matching id")
	} else if inj, ok := v.(*Injected); !ok || inj.Stage != "checker" || inj.ID != "fn_boom_1" {
		t.Fatalf("unexpected panic value: %#v", v)
	}
	if v := caught("checker", "benign"); v != nil {
		t.Fatalf("trap fired on non-matching id: %v", v)
	}
	if v := caught("frontend", "fn_boom_1"); v != nil {
		t.Fatalf("trap fired on unarmed stage: %v", v)
	}
	Disarm("checker")
	if v := caught("checker", "fn_boom_1"); v != nil {
		t.Fatalf("trap fired after disarm: %v", v)
	}
}

func TestArmConcurrent(t *testing.T) {
	Reset()
	defer Reset()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			stage := fmt.Sprintf("s%d", i%4)
			for j := 0; j < 100; j++ {
				Arm(stage, "x")
				Trap(stage+"-other", "x")
				Disarm(stage)
			}
		}()
	}
	wg.Wait()
}

func TestRedactDeterministicAndBounded(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{errors.New("nil pointer dereference"), "panic: nil pointer dereference"},
		{"line one\nline two", "panic: line one"},
		{fmt.Errorf("bad ptr 0xDEADbeef at 0x1234"), "panic: bad ptr 0x? at 0x?"},
		{42, "panic: 42"},
		{&Injected{Stage: "cfg", ID: "fn7"}, "injected: fn7"},
	}
	for _, c := range cases {
		if got := Redact(c.in); got != c.want {
			t.Errorf("Redact(%v) = %q, want %q", c.in, got, c.want)
		}
		if got2 := Redact(c.in); got2 != Redact(c.in) {
			t.Errorf("Redact(%v) not deterministic", c.in)
		}
	}
	long := strings.Repeat("a", 500)
	if got := Redact(long); len(got) > maxCauseLen+len("panic: ")+len("...") {
		t.Errorf("Redact did not clip: %d bytes", len(got))
	}
}

func TestCanonicalize(t *testing.T) {
	in := []Record{
		{Unit: "b", Stage: "frontend", Cause: "x"},
		{Unit: "a", Stage: "frontend", Cause: "x"},
		{Unit: "a", Stage: "cfg", Cause: "y"},
		{Unit: "a", Stage: "frontend", Cause: "x"}, // dup
	}
	got := Canonicalize(in)
	want := []Record{
		{Unit: "a", Stage: "cfg", Cause: "y"},
		{Unit: "a", Stage: "frontend", Cause: "x"},
		{Unit: "b", Stage: "frontend", Cause: "x"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if Canonicalize(nil) != nil {
		t.Error("Canonicalize(nil) != nil")
	}
}
