package fault

import (
	"strings"
	"sync"
	"time"
)

// NetAction is one network-level fault class the shard transport knows
// how to inject. Unlike the panic failpoints in fault.go, these model
// failures *between* processes: a call that never arrives, arrives
// late, arrives mangled, arrives incomplete, or arrives twice.
type NetAction int

const (
	// NetDrop fails the call outright, as if the peer were unreachable.
	NetDrop NetAction = iota
	// NetDelay holds the call for Delay before letting it through.
	NetDelay
	// NetCorrupt lets the call through, then flips bytes in the
	// response payload — corruption past TCP's checksum.
	NetCorrupt
	// NetTruncate lets the call through, then drops the tail of the
	// response — a connection cut mid-body.
	NetTruncate
	// NetDuplicate lets the call through, then repeats response
	// content — a retransmit the peer already answered.
	NetDuplicate
)

// String names the action for journals and test output.
func (a NetAction) String() string {
	switch a {
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetCorrupt:
		return "corrupt"
	case NetTruncate:
		return "truncate"
	case NetDuplicate:
		return "duplicate"
	}
	return "unknown"
}

// NetFault is one armed network fault. Times bounds how many calls it
// fires on (<= 0 means every matching call until disarmed) — the knob
// that separates a transient blip the transport must absorb silently
// from a persistent outage it must degrade under deterministically.
type NetFault struct {
	Action NetAction
	Delay  time.Duration // used by NetDelay
	Times  int           // fire on this many matching calls; <= 0 = unlimited
}

// netEntry is one armed fault plus its match key and remaining budget.
type netEntry struct {
	substr string
	f      NetFault
	left   int // remaining fires; -1 = unlimited
}

// Network faults sit behind a plain mutex, not the lock-free scheme the
// panic failpoints use: TakeNet must atomically decrement a per-entry
// budget, and the shard transport calls it once per network round trip,
// where a mutex is noise.
var (
	netMu    sync.Mutex
	netArmed map[string][]*netEntry
)

// ArmNet installs a network fault: any TakeNet(point, id) whose id
// contains substr consumes it. Arming the same (point, substr) pair
// again replaces the previous fault and resets its budget. Like Arm,
// this is chaos-harness machinery; production runs never call it.
func ArmNet(point, substr string, f NetFault) {
	left := f.Times
	if left <= 0 {
		left = -1
	}
	netMu.Lock()
	defer netMu.Unlock()
	if netArmed == nil {
		netArmed = make(map[string][]*netEntry)
	}
	for _, e := range netArmed[point] {
		if e.substr == substr {
			e.f = f
			e.left = left
			return
		}
	}
	netArmed[point] = append(netArmed[point], &netEntry{substr: substr, f: f, left: left})
}

// DisarmNet removes the network fault armed for (point, substr).
func DisarmNet(point, substr string) {
	netMu.Lock()
	defer netMu.Unlock()
	entries := netArmed[point]
	for i, e := range entries {
		if e.substr == substr {
			netArmed[point] = append(entries[:i:i], entries[i+1:]...)
			return
		}
	}
}

// ResetNet disarms every network fault.
func ResetNet() {
	netMu.Lock()
	netArmed = nil
	netMu.Unlock()
}

// TakeNet is the injection site: the transport calls it with the id of
// the call about to run (deviantd uses the worker name). The first
// armed fault for point whose substr matches id and still has budget is
// consumed — its budget decremented — and returned. Disarmed (the
// normal state) it is one mutex round trip on a nil map.
func TakeNet(point, id string) (NetFault, bool) {
	netMu.Lock()
	defer netMu.Unlock()
	for _, e := range netArmed[point] {
		if e.left == 0 || !strings.Contains(id, e.substr) {
			continue
		}
		if e.left > 0 {
			e.left--
		}
		return e.f, true
	}
	return NetFault{}, false
}
