package fault

import (
	"testing"
	"time"
)

func TestNetFaultMatchAndBudget(t *testing.T) {
	defer Reset()
	ArmNet("shard-net", "w1", NetFault{Action: NetDrop, Times: 2})

	if _, ok := TakeNet("shard-net", "w0"); ok {
		t.Fatal("fault fired on a non-matching id")
	}
	if _, ok := TakeNet("other-point", "w1"); ok {
		t.Fatal("fault fired on a different point")
	}
	for i := 0; i < 2; i++ {
		f, ok := TakeNet("shard-net", "w1")
		if !ok {
			t.Fatalf("take %d: fault not consumed", i)
		}
		if f.Action != NetDrop {
			t.Fatalf("take %d: action %v", i, f.Action)
		}
	}
	if _, ok := TakeNet("shard-net", "w1"); ok {
		t.Fatal("fault fired past its Times budget")
	}
}

func TestNetFaultUnlimited(t *testing.T) {
	defer Reset()
	ArmNet("shard-net", "w2", NetFault{Action: NetDelay, Delay: time.Millisecond})
	for i := 0; i < 100; i++ {
		f, ok := TakeNet("shard-net", "w2")
		if !ok {
			t.Fatalf("unlimited fault exhausted at take %d", i)
		}
		if f.Action != NetDelay || f.Delay != time.Millisecond {
			t.Fatalf("take %d: %+v", i, f)
		}
	}
}

func TestNetFaultRearmResetsBudget(t *testing.T) {
	defer Reset()
	ArmNet("p", "x", NetFault{Action: NetDrop, Times: 1})
	if _, ok := TakeNet("p", "x"); !ok {
		t.Fatal("first take missed")
	}
	if _, ok := TakeNet("p", "x"); ok {
		t.Fatal("budget not enforced")
	}
	ArmNet("p", "x", NetFault{Action: NetCorrupt, Times: 1})
	f, ok := TakeNet("p", "x")
	if !ok || f.Action != NetCorrupt {
		t.Fatalf("re-arm did not reset budget: ok=%v f=%+v", ok, f)
	}
}

func TestNetFaultDisarmAndReset(t *testing.T) {
	ArmNet("p", "a", NetFault{Action: NetDrop})
	ArmNet("p", "b", NetFault{Action: NetTruncate})
	DisarmNet("p", "a")
	if _, ok := TakeNet("p", "a-id"); ok {
		t.Fatal("disarmed fault still fires")
	}
	if f, ok := TakeNet("p", "b-id"); !ok || f.Action != NetTruncate {
		t.Fatal("sibling fault lost on disarm")
	}
	Reset()
	if _, ok := TakeNet("p", "b-id"); ok {
		t.Fatal("Reset left a net fault armed")
	}
}

func TestNetFaultFirstMatchWins(t *testing.T) {
	defer Reset()
	ArmNet("p", "worker", NetFault{Action: NetDrop, Times: 1})
	ArmNet("p", "worker-3", NetFault{Action: NetDuplicate})
	// "worker" was armed first and matches "worker-3" too.
	if f, ok := TakeNet("p", "worker-3"); !ok || f.Action != NetDrop {
		t.Fatalf("want first armed entry, got ok=%v f=%+v", ok, f)
	}
	// Its budget is spent; the second entry now serves.
	if f, ok := TakeNet("p", "worker-3"); !ok || f.Action != NetDuplicate {
		t.Fatalf("exhausted entry not skipped: ok=%v f=%+v", ok, f)
	}
}

func TestNetActionString(t *testing.T) {
	for a, want := range map[NetAction]string{
		NetDrop: "drop", NetDelay: "delay", NetCorrupt: "corrupt",
		NetTruncate: "truncate", NetDuplicate: "duplicate", NetAction(99): "unknown",
	} {
		if got := a.String(); got != want {
			t.Errorf("NetAction(%d).String() = %q, want %q", a, got, want)
		}
	}
}
