// Package fault is the pipeline's fault-containment vocabulary: the
// quarantine Record that a misbehaving unit is converted into, the
// deterministic redaction of panic values, and a tiny failpoint
// facility used by chaos tests and the soak harness to inject panics
// at named pipeline stages.
//
// Determinism is the design constraint throughout. Quarantine records
// flow into `-json` output and the differential soak oracles, which
// demand byte-identical output across worker counts; every string this
// package produces is therefore a pure function of the failing input,
// never of scheduling, addresses, or stack depth.
package fault

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync/atomic"
)

// Record describes one quarantined unit of work. A unit here is
// whatever the failing stage iterates over: a translation unit for the
// frontend, a function for CFG construction and the path-sensitive
// checkers, or "*" for a whole-stage failure (a prog-level checker
// panic, or work skipped wholesale at a deadline).
type Record struct {
	Unit  string `json:"unit"`
	Stage string `json:"stage"`
	Cause string `json:"cause"`
}

func (r Record) String() string {
	return r.Stage + " " + r.Unit + ": " + r.Cause
}

// less orders records canonically: by stage, then unit, then cause.
func less(a, b Record) bool {
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Unit != b.Unit {
		return a.Unit < b.Unit
	}
	return a.Cause < b.Cause
}

// Canonicalize sorts records into the canonical (stage, unit, cause)
// order and drops exact duplicates, so the final quarantine list is
// independent of the order in which parallel workers hit faults.
func Canonicalize(recs []Record) []Record {
	if len(recs) == 0 {
		return nil
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	dst := out[:1]
	for _, r := range out[1:] {
		if r != dst[len(dst)-1] {
			dst = append(dst, r)
		}
	}
	return dst
}

// hexAddr matches pointer-looking hex runs so redaction can scrub
// address-space layout out of panic text.
var hexAddr = regexp.MustCompile(`0x[0-9a-fA-F]+`)

// maxCauseLen bounds a redacted cause; panics carrying huge dumps must
// not bloat quarantine records that end up in JSON responses.
const maxCauseLen = 160

// Redact converts a recovered panic value into a deterministic,
// bounded cause string: first line only (stack shape varies with
// scheduling), addresses scrubbed, length clipped.
func Redact(v any) string {
	var s string
	switch x := v.(type) {
	case *Injected:
		return "injected: " + clip(firstLine(x.ID))
	case error:
		s = x.Error()
	case string:
		s = x
	default:
		s = fmt.Sprint(v)
	}
	s = clip(hexAddr.ReplaceAllString(firstLine(s), "0x?"))
	return "panic: " + s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func clip(s string) string {
	if len(s) > maxCauseLen {
		return s[:maxCauseLen] + "..."
	}
	return s
}

// Injected is the panic value thrown by an armed failpoint. Containment
// code treats it like any other panic; tests can assert on the type.
type Injected struct {
	Stage string
	ID    string
}

func (e *Injected) Error() string {
	return "injected fault at " + e.Stage + ": " + e.ID
}

// armed holds the active failpoints as an immutable stage→substring
// map behind an atomic pointer: Trap on the hot path is one atomic
// load and (when disarmed, the overwhelmingly common case) an
// immediate return.
var armed atomic.Pointer[map[string]string]

// Arm installs a failpoint: any Trap(stage, id) whose id contains
// substr panics with an *Injected value. Arming is test/chaos-harness
// machinery; production runs never call it.
func Arm(stage, substr string) {
	for {
		old := armed.Load()
		next := map[string]string{}
		if old != nil {
			for k, v := range *old {
				next[k] = v
			}
		}
		next[stage] = substr
		if armed.CompareAndSwap(old, &next) {
			return
		}
	}
}

// Disarm removes the failpoint for one stage.
func Disarm(stage string) {
	for {
		old := armed.Load()
		if old == nil {
			return
		}
		if _, ok := (*old)[stage]; !ok {
			return
		}
		next := map[string]string{}
		for k, v := range *old {
			if k != stage {
				next[k] = v
			}
		}
		if armed.CompareAndSwap(old, &next) {
			return
		}
	}
}

// Reset disarms every failpoint, panic and network alike.
func Reset() {
	armed.Store(nil)
	ResetNet()
}

// Trap is the injection site: pipeline stages call it with the id of
// the work item about to run. Disarmed (the normal state) it costs a
// single atomic load.
func Trap(stage, id string) {
	m := armed.Load()
	if m == nil {
		return
	}
	if sub, ok := (*m)[stage]; ok && strings.Contains(id, sub) {
		panic(&Injected{Stage: stage, ID: id})
	}
}
