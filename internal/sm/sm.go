// Package sm is the metal-like state-machine layer (§3.5): checkers are
// written as declarative machines — slot variables, states, pattern-
// triggered transitions — and compiled onto the analysis engine. Figure
// 2's internal_null_checker transcribes to a handful of Add calls (see
// FigureTwoChecker).
//
// A machine tracks one state per slot instance (canonical expression
// key). Triggers correspond to the source patterns metal matches: null
// comparisons (with the branch direction), dereferences, assignments,
// and calls.
package sm

import (
	"sort"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/report"
)

// Reserved state names.
const (
	// Start is the implicit state of every untracked slot instance.
	Start = ""
	// Stop drops tracking of the slot instance.
	Stop = "<stop>"
)

// Trigger identifies the source pattern that fires a transition.
type Trigger int

// Triggers.
const (
	// CompareNullTrue: the true edge of "v == NULL" (or false edge of
	// "v != NULL", or the falsy edge of a bare "v" test).
	CompareNullTrue Trigger = iota
	// CompareNullFalse: the opposite edge.
	CompareNullFalse
	// Deref: *v, v->f, v[i].
	Deref
	// Assign: any assignment to v.
	Assign
	// CallArg: v passed as a call argument; the transition's Callee
	// restricts which callees match ("" = any).
	CallArg
)

// Transition is one rule: in state From, on trigger On, move the slot to
// state To, firing Fire if set.
type Transition struct {
	From   string
	On     Trigger
	Callee string // CallArg only: restrict to this callee ("" = any)
	To     string
	Fire   func(slot string, pos ctoken.Pos, rep *Reporter)
}

// Reporter lets transitions emit errors.
type Reporter struct {
	machine string
	col     *report.Collector
}

// Error reports a serious MUST-belief error at pos.
func (r *Reporter) Error(rule string, pos ctoken.Pos, msg string) {
	r.col.AddMust(r.machine, rule, pos, report.Serious, 0, msg)
}

// Machine is a declarative checker.
type Machine struct {
	name  string
	rules []Transition
	// TrackMacros, when false (default), ignores macro-origin actions.
	TrackMacros bool
}

// NewMachine returns an empty machine.
func NewMachine(name string) *Machine { return &Machine{name: name} }

// Add appends a transition rule.
func (m *Machine) Add(t Transition) *Machine {
	m.rules = append(m.rules, t)
	return m
}

// FigureTwoChecker transcribes the paper's Figure 2 metal extension:
//
//	sm internal_null_checker {
//	  state decl any_pointer v;
//	  start: { (v == NULL) } ==> true=v.null, false=v.stop ;
//	  v.null: { *v } ==> { err("dereferencing NULL ptr!"); } ;
//	}
func FigureTwoChecker() *Machine {
	m := NewMachine("sm/internal_null_checker")
	m.Add(Transition{From: Start, On: CompareNullTrue, To: "null"})
	m.Add(Transition{From: Start, On: CompareNullFalse, To: Stop})
	m.Add(Transition{From: "null", On: Deref, To: "null",
		Fire: func(slot string, pos ctoken.Pos, rep *Reporter) {
			rep.Error("do not dereference null pointer "+slot, pos,
				"dereferencing NULL ptr "+slot+"!")
		}})
	// Reassignment resets tracking (not in the stripped-down figure, but
	// required for soundness and present in the full extension).
	m.Add(Transition{From: "null", On: Assign, To: Stop})
	return m
}

// ---------------------------------------------------------------------------
// engine adapter

type machineState struct {
	slots map[string]string
}

func (s *machineState) Clone() engine.State {
	ns := &machineState{slots: make(map[string]string, len(s.slots))}
	for k, v := range s.slots {
		ns.slots[k] = v
	}
	return ns
}

func (s *machineState) Key() string {
	if len(s.slots) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.slots))
	for k := range s.slots {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k + "=" + s.slots[k] + ";")
	}
	return sb.String()
}

// Runner adapts a Machine to the engine.Checker interface.
type Runner struct {
	M *Machine
}

// Name implements engine.Checker.
func (r *Runner) Name() string { return r.M.name }

// NewState implements engine.Checker.
func (r *Runner) NewState(*cast.FuncDecl) engine.State {
	return &machineState{slots: make(map[string]string)}
}

func slotKey(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := slotKey(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	case *cast.UnaryExpr:
		if x.Op == ctoken.Star {
			if base := slotKey(x.X); base != "" {
				return "*" + base
			}
		}
	}
	return ""
}

// fire applies the first matching rule for (slot, trigger, callee).
func (r *Runner) fire(s *machineState, slot string, tg Trigger, callee string, pos ctoken.Pos, ctx *engine.Ctx) {
	cur := s.slots[slot] // "" = Start
	for _, rule := range r.M.rules {
		if rule.On != tg || rule.From != cur {
			continue
		}
		if tg == CallArg && rule.Callee != "" && rule.Callee != callee {
			continue
		}
		if rule.Fire != nil {
			rule.Fire(slot, pos, &Reporter{machine: r.M.name, col: ctx.Reports})
		}
		switch rule.To {
		case Stop:
			delete(s.slots, slot)
		case Start:
			delete(s.slots, slot)
		default:
			s.slots[slot] = rule.To
		}
		return
	}
}

// Event implements engine.Checker.
func (r *Runner) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*machineState)
	switch ev.Kind {
	case engine.EvDeref:
		if !r.M.TrackMacros && ev.Ptr.FromMacro() {
			return
		}
		if slot := slotKey(ev.Ptr); slot != "" {
			r.fire(s, slot, Deref, "", ev.Pos, ctx)
		}
	case engine.EvAssign:
		if slot := slotKey(ev.LHS); slot != "" {
			r.fire(s, slot, Assign, "", ev.Pos, ctx)
		}
	case engine.EvDecl:
		if ev.Decl.Init != nil {
			r.fire(s, ev.Decl.Name, Assign, "", ev.Pos, ctx)
		}
	case engine.EvCall:
		callee := cast.CalleeName(ev.Call)
		for _, a := range ev.Call.Args {
			if slot := slotKey(a); slot != "" {
				r.fire(s, slot, CallArg, callee, ev.Pos, ctx)
			}
		}
	}
}

// Branch implements engine.Checker: null-comparison patterns drive the
// CompareNull triggers.
func (r *Runner) Branch(st engine.State, cond cast.Expr, val bool, ctx *engine.Ctx) {
	s := st.(*machineState)
	if !r.M.TrackMacros && cond.FromMacro() {
		return
	}
	slot, nullWhenTrue, ok := nullCompare(cond)
	if !ok {
		return
	}
	tg := CompareNullFalse
	if nullWhenTrue == val {
		tg = CompareNullTrue
	}
	r.fire(s, slot, tg, "", cond.Pos(), ctx)
}

// FuncEnd implements engine.Checker.
func (r *Runner) FuncEnd(engine.State, *engine.Ctx) {}

func nullCompare(cond cast.Expr) (string, bool, bool) {
	switch x := cast.StripParensAndCasts(cond).(type) {
	case *cast.BinaryExpr:
		if x.Op != ctoken.EqEq && x.Op != ctoken.NotEq {
			return "", false, false
		}
		var side cast.Expr
		switch {
		case isNull(x.Y):
			side = x.X
		case isNull(x.X):
			side = x.Y
		default:
			return "", false, false
		}
		slot := slotKey(side)
		if slot == "" {
			return "", false, false
		}
		return slot, x.Op == ctoken.EqEq, true
	default:
		slot := slotKey(cond)
		if slot == "" {
			return "", false, false
		}
		return slot, false, true
	}
}

func isNull(e cast.Expr) bool {
	switch x := cast.StripParensAndCasts(e).(type) {
	case *cast.IntLit:
		return x.Value == 0
	case *cast.Ident:
		return x.Name == "NULL"
	}
	return false
}
