package sm

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string, m *Machine) *report.Collector {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, &Runner{M: m}, col, engine.Options{Memoize: true})
		}
	}
	return col
}

func TestFigureTwoFindsPaperBug(t *testing.T) {
	// The §3.1 capidrv fragment through the Figure 2 machine.
	src := `
void f(struct capi_ctr *card, int id) {
	if (card == NULL) {
		printk("capidrv-%d: incoming call on unbound id %d!\n",
			card->contrnr, id);
	}
}`
	col := run(t, src, FigureTwoChecker())
	rs := col.Ranked()
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "NULL ptr card") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestFigureTwoCleanGuard(t *testing.T) {
	src := `
int f(struct s *p) {
	if (p == NULL)
		return -1;
	return p->x;
}`
	col := run(t, src, FigureTwoChecker())
	if col.Len() != 0 {
		t.Errorf("clean code flagged: %+v", col.Ranked())
	}
}

func TestFigureTwoStopOnFalseEdge(t *testing.T) {
	// p != NULL true edge stops tracking; the deref is safe.
	src := `
int f(struct s *p) {
	if (p != NULL)
		return p->x;
	return 0;
}`
	col := run(t, src, FigureTwoChecker())
	if col.Len() != 0 {
		t.Errorf("flagged: %+v", col.Ranked())
	}
}

func TestAssignResets(t *testing.T) {
	src := `
int f(struct s *p) {
	if (p == NULL)
		p = fallback();
	return p->x;
}`
	col := run(t, src, FigureTwoChecker())
	if col.Len() != 0 {
		t.Errorf("reassigned pointer flagged: %+v", col.Ranked())
	}
}

func TestCustomMachineCallArg(t *testing.T) {
	// A free-then-use machine: v freed once must not be passed again.
	m := NewMachine("sm/use-after-free")
	m.Add(Transition{From: Start, On: CallArg, Callee: "kfree", To: "freed"})
	m.Add(Transition{From: "freed", On: CallArg, To: "freed",
		Fire: func(slot string, pos ctoken.Pos, rep *Reporter) {
			rep.Error("do not use freed pointer "+slot, pos, "use of freed pointer "+slot)
		}})
	m.Add(Transition{From: "freed", On: Assign, To: Stop})

	src := `
void f(struct s *p) {
	kfree(p);
	consume(p);
}
void g(struct s *p) {
	kfree(p);
	p = make_s();
	consume(p);
}`
	col := run(t, src, m)
	rs := col.Ranked()
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if rs[0].Pos.Line != 4 {
		t.Errorf("site: %v", rs[0].Pos)
	}
}

func TestMacroTruncationInMachines(t *testing.T) {
	src := `
#define CHECKP(p) if ((p) == NULL) log_warn()
int f(struct s *q) {
	CHECKP(q);
	return q->x;
}`
	col := run(t, src, FigureTwoChecker())
	if col.Len() != 0 {
		t.Errorf("macro belief leaked: %+v", col.Ranked())
	}
	m := FigureTwoChecker()
	m.TrackMacros = true
	col2 := run(t, src, m)
	if col2.Len() != 1 {
		t.Errorf("ablation should reintroduce FP: %+v", col2.Ranked())
	}
}

func TestMachineStateKeyStable(t *testing.T) {
	s := &machineState{slots: map[string]string{"b": "null", "a": "x"}}
	s2 := &machineState{slots: map[string]string{"a": "x", "b": "null"}}
	if s.Key() != s2.Key() {
		t.Error("key must be order independent")
	}
	c := s.Clone().(*machineState)
	c.slots["a"] = "y"
	if s.slots["a"] != "x" {
		t.Error("clone aliases")
	}
}
