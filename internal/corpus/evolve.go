package corpus

// VersionPair generates two snapshots of the "same" code base for the
// cross-version consistency experiment (§4.2: relating a routine to
// itself through time).
//
// Both versions share the spec's seed, so the deterministic random draws
// line up function-for-function; the new version multiplies every bug
// rate by growth (> 1), so every function buggy in the old version is
// buggy in the new one (same draw, larger threshold) and the difference
// between the two bug sets is exactly the set of regressions the new
// version introduced. Regressions are matched by (kind, file, function),
// since line numbers shift between versions.
func VersionPair(spec Spec, growth float64) (oldC, newC *Corpus, regressions []Bug) {
	oldC = Generate(spec)

	newSpec := spec
	newSpec.Name = spec.Name + "-next"
	newSpec.Rates = scaleRates(spec.Rates, growth)
	newC = Generate(newSpec)

	oldSet := make(map[string]bool, len(oldC.Bugs))
	for _, b := range oldC.Bugs {
		oldSet[bugKey(b)] = true
	}
	for _, b := range newC.Bugs {
		if !oldSet[bugKey(b)] {
			regressions = append(regressions, b)
		}
	}
	return oldC, newC, regressions
}

func bugKey(b Bug) string { return string(b.Kind) + "|" + b.File + "|" + b.Func }

func scaleRates(r Rates, k float64) Rates {
	clamp := func(v float64) float64 {
		if v > 0.95 {
			return 0.95
		}
		return v
	}
	return Rates{
		CheckThenUse:   clamp(r.CheckThenUse * k),
		UseThenCheck:   clamp(r.UseThenCheck * k),
		RedundantCheck: clamp(r.RedundantCheck * k),
		UserPtrDeref:   clamp(r.UserPtrDeref * k),
		WrongErrCheck:  clamp(r.WrongErrCheck * k),
		UncheckedAlloc: clamp(r.UncheckedAlloc * k),
		UnlockedAccess: clamp(r.UnlockedAccess * k),
		MissingUnlock:  clamp(r.MissingUnlock * k),
		IntrEnabled:    clamp(r.IntrEnabled * k),
		SecUnchecked:   clamp(r.SecUnchecked * k),
		MissingRevert:  clamp(r.MissingRevert * k),
		UseAfterFree:   clamp(r.UseAfterFree * k),
	}
}
