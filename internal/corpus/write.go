package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteToDir materializes the corpus on disk under dir, plus a
// GROUND_TRUTH.tsv manifest of the seeded bugs (kind, file, line,
// function). It returns the manifest path.
func (c *Corpus) WriteToDir(dir string) (string, error) {
	for name, src := range c.Files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return "", fmt.Errorf("corpus: %w", err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return "", fmt.Errorf("corpus: %w", err)
		}
	}
	manifest := filepath.Join(dir, "GROUND_TRUTH.tsv")
	var sb strings.Builder
	sb.WriteString("kind\tfile\tline\tfunction\n")
	for _, b := range c.Bugs {
		fmt.Fprintf(&sb, "%s\t%s\t%d\t%s\n", b.Kind, b.File, b.Line, b.Func)
	}
	if err := os.WriteFile(manifest, []byte(sb.String()), 0o644); err != nil {
		return "", fmt.Errorf("corpus: %w", err)
	}
	return manifest, nil
}

// ReadGroundTruth parses a GROUND_TRUTH.tsv manifest back into bugs.
func ReadGroundTruth(path string) ([]Bug, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	lines := strings.Split(string(raw), "\n")
	var bugs []Bug
	for i, line := range lines {
		if i == 0 || strings.TrimSpace(line) == "" {
			continue // header / trailing blank
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("corpus: bad manifest line %d: %q", i+1, line)
		}
		var lineNo int
		if _, err := fmt.Sscanf(parts[2], "%d", &lineNo); err != nil {
			return nil, fmt.Errorf("corpus: bad line number on manifest line %d: %w", i+1, err)
		}
		bugs = append(bugs, Bug{
			Kind: BugKind(parts[0]), File: parts[1], Line: lineNo, Func: parts[3],
		})
	}
	return bugs, nil
}
