// Package corpus generates synthetic kernel-flavoured C source trees with
// seeded, line-exact ground-truth bugs. It is the substitution for the
// Linux 2.4.1 / 2.4.7 and OpenBSD 2.8 source snapshots the paper checks
// (DESIGN.md §2): every checker keys on specific systems idioms — null
// guards, copy_from_user, spin locks, allocator failure paths, interface
// structs, cli/sti — and the generator emits exactly those idioms, clean
// in the common case and buggy at configured rates.
//
// Generation is deterministic in Spec.Seed, so experiments reproduce.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// BugKind names a ground-truth bug category; values match the checker
// that should find them.
type BugKind string

// Bug kinds.
const (
	CheckThenUse   BugKind = "null/check-then-use"
	UseThenCheck   BugKind = "null/use-then-check"
	RedundantCheck BugKind = "null/redundant-check"
	UserPtrDeref   BugKind = "userptr"
	WrongErrCheck  BugKind = "iserr"
	UncheckedAlloc BugKind = "fail"
	UnlockedAccess BugKind = "lockvar"
	MissingUnlock  BugKind = "pairing"
	IntrEnabled    BugKind = "intr"
	SecUnchecked   BugKind = "seccheck"
	MissingRevert  BugKind = "reverse"
	UseAfterFree   BugKind = "free"
)

// Bug is one seeded ground-truth defect.
type Bug struct {
	Kind BugKind
	File string
	Line int
	Func string
}

// Rates sets the per-function probability of seeding each bug kind into
// the function template that can express it.
type Rates struct {
	CheckThenUse   float64
	UseThenCheck   float64
	RedundantCheck float64
	UserPtrDeref   float64
	WrongErrCheck  float64
	UncheckedAlloc float64
	UnlockedAccess float64
	MissingUnlock  float64
	IntrEnabled    float64
	SecUnchecked   float64
	MissingRevert  float64
	UseAfterFree   float64
}

// DefaultRates mirror the sparsity of real bugs: a few percent of the
// sites that could be wrong are wrong.
func DefaultRates() Rates {
	return Rates{
		CheckThenUse:   0.06,
		UseThenCheck:   0.06,
		RedundantCheck: 0.08,
		UserPtrDeref:   0.08,
		WrongErrCheck:  0.08,
		UncheckedAlloc: 0.06,
		UnlockedAccess: 0.08,
		MissingUnlock:  0.10,
		IntrEnabled:    0.08,
		SecUnchecked:   0.08,
		MissingRevert:  0.08,
		UseAfterFree:   0.08,
	}
}

// Spec describes a corpus to generate.
type Spec struct {
	Name           string
	Seed           int64
	Modules        int
	FuncsPerModule int
	Rates          Rates
}

// Linux241 approximates the papers' first snapshot: smaller tree.
func Linux241() Spec {
	return Spec{Name: "linux-2.4.1-like", Seed: 241, Modules: 40, FuncsPerModule: 17, Rates: DefaultRates()}
}

// Linux247 approximates the second snapshot: the biggest tree.
func Linux247() Spec {
	return Spec{Name: "linux-2.4.7-like", Seed: 247, Modules: 80, FuncsPerModule: 17, Rates: DefaultRates()}
}

// OpenBSD28 approximates the cross-check target: different size and seed
// (different code, same idioms) to test checker generality.
func OpenBSD28() Spec {
	return Spec{Name: "openbsd-2.8-like", Seed: 32, Modules: 30, FuncsPerModule: 17, Rates: DefaultRates()}
}

// Corpus is a generated tree.
type Corpus struct {
	Spec  Spec
	Files map[string]string // sources and headers
	Units []string          // ".c" translation units, sorted
	Bugs  []Bug             // seeded ground truth
	Lines int               // total source lines
}

// Generate builds the corpus for spec.
func Generate(spec Spec) *Corpus {
	g := &generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		c: &Corpus{
			Spec:  spec,
			Files: make(map[string]string),
		},
	}
	g.emitHeader()
	for m := 0; m < spec.Modules; m++ {
		g.emitModule(m)
	}
	sort.Strings(g.c.Units)
	for _, src := range g.c.Files {
		g.c.Lines += strings.Count(src, "\n")
	}
	return g.c
}

// BugsOf returns the seeded bugs of one kind.
func (c *Corpus) BugsOf(kind BugKind) []Bug {
	var out []Bug
	for _, b := range c.Bugs {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// CountOf returns the number of seeded bugs of one kind.
func (c *Corpus) CountOf(kind BugKind) int { return len(c.BugsOf(kind)) }

// ---------------------------------------------------------------------------

type generator struct {
	spec Spec
	rng  *rand.Rand
	c    *Corpus
}

// file builds one source file while tracking line numbers for ground
// truth.
type file struct {
	name string
	sb   strings.Builder
	line int
}

func newFile(name string) *file { return &file{name: name, line: 0} }

// w appends one line and returns its line number (1-based).
func (f *file) w(format string, args ...any) int {
	f.line++
	fmt.Fprintf(&f.sb, format, args...)
	f.sb.WriteByte('\n')
	return f.line
}

func (g *generator) bug(kind BugKind, f *file, line int, fn string) {
	g.c.Bugs = append(g.c.Bugs, Bug{Kind: kind, File: f.name, Line: line, Func: fn})
}

func (g *generator) chance(p float64) bool { return g.rng.Float64() < p }

func (g *generator) emitHeader() {
	f := newFile("include/kernel.h")
	for _, l := range []string{
		"#ifndef _KERNEL_H",
		"#define _KERNEL_H",
		"#define NULL 0",
		"typedef unsigned long size_t;",
		"struct spinlock { int raw; };",
		"struct inode { int i_ino; int i_mode; void *i_private; };",
		"struct file { int f_flags; void *private_data; struct inode *f_inode; };",
		"struct dentry { int d_count; struct inode *d_inode; };",
		"struct sk_buff { int len; char *data; struct sk_buff *next; };",
		"struct tty_struct { void *driver_data; int count; struct tty_struct *link; };",
		"struct file_operations {",
		"\tint (*open)(struct inode *ino, struct file *filp);",
		"\tint (*ioctl)(struct file *filp, unsigned int cmd, char *arg);",
		"\tint (*release)(struct inode *ino, struct file *filp);",
		"};",
		"void *kmalloc(int size);",
		"void kfree(void *p);",
		"void printk(const char *fmt, ...);",
		"void panic(const char *fmt, ...);",
		"int copy_from_user(void *to, const void *from, int n);",
		"int copy_to_user(void *to, const void *from, int n);",
		"void spin_lock(struct spinlock *l);",
		"void spin_unlock(struct spinlock *l);",
		"void cli(void);",
		"void sti(void);",
		"int IS_ERR(void *p);",
		"#define DEV_WARN_IF_NULL(p) if ((p) == NULL) printk(\"null pointer!\\n\")",
		"void udelay(int usecs);",
		"int register_chrdev(int major, const char *name, struct file_operations *fops);",
		"#endif",
	} {
		f.w("%s", l)
	}
	g.c.Files[f.name] = f.sb.String()
}

var moduleFamilies = []string{"ide", "scsi", "eth", "serial", "usb", "fb", "snd", "isdn", "raid", "vfs", "nfs", "ipx"}

func (g *generator) emitModule(idx int) {
	fam := moduleFamilies[idx%len(moduleFamilies)]
	mod := fmt.Sprintf("%s%d", fam, idx)
	f := newFile(fmt.Sprintf("drivers/%s.c", mod))
	f.w(`#include "kernel.h"`)
	f.w("")
	f.w("static struct spinlock %s_lock;", mod)
	f.w("static int %s_count;", mod)
	f.w("static int %s_state;", mod)
	f.w("static struct sk_buff *%s_queue;", mod)
	f.w("static int %s_tmp;", mod)
	f.w("static struct %s_devstate { struct spinlock lock; int count; } %s_dev;", mod, mod)
	f.w("")

	templates := []func(*file, string, int){
		g.fnNullGuard,
		g.fnUseThenCheck,
		g.fnAllocUse,
		g.fnLockSection,
		g.fnIoctl,
		g.fnLookup,
		g.fnIntrWork,
		g.fnFiller,
		g.fnRedundant,
		g.fnListWalk,
		g.fnSecCheck,
		g.fnErrorCleanup,
		g.fnCoincidence,
		g.fnPanicGuard,
		g.fnMacroGuard,
		g.fnTeardown,
		g.fnDevOps,
	}
	for i := 0; i < g.spec.FuncsPerModule; i++ {
		tpl := templates[i%len(templates)]
		tpl(f, mod, i)
		f.w("")
	}
	// Interface registration: every module exports open/ioctl/release.
	f.w("static struct file_operations %s_fops = {", mod)
	f.w("\t.open = %s_open,", mod)
	f.w("\t.ioctl = %s_ioctl,", mod)
	f.w("\t.release = %s_release,", mod)
	f.w("};")
	f.w("")
	f.w("int %s_init(void) {", mod)
	f.w("\treturn register_chrdev(%d, \"%s\", &%s_fops);", 60+idx, mod, mod)
	f.w("}")

	g.c.Files[f.name] = f.sb.String()
	g.c.Units = append(g.c.Units, f.name)
}

// fnNullGuard emits a function that checks a pointer parameter against
// null. Clean: the null path returns. Bug (check-then-use): the null path
// dereferences while printing a diagnostic, like the capidrv bug (§3.1).
func (g *generator) fnNullGuard(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_probe%d", mod, i)
	f.w("static int %s(struct sk_buff *skb, int id) {", name)
	if g.chance(g.spec.Rates.CheckThenUse) {
		f.w("\tif (skb == NULL) {")
		ln := f.w("\t\tprintk(\"%s: bad skb len %%d id %%d\\n\", skb->len, id);", mod)
		g.bug(CheckThenUse, f, ln, name)
		f.w("\t\treturn -1;")
		f.w("\t}")
	} else {
		f.w("\tif (skb == NULL) {")
		f.w("\t\tprintk(\"%s: null skb, id %%d\\n\", id);", mod)
		f.w("\t\treturn -1;")
		f.w("\t}")
	}
	f.w("\treturn skb->len + id;")
	f.w("}")
}

// fnUseThenCheck emits the mxser idiom (§3.1): dereference in an
// initializer, followed by a null check of the same pointer (bug), or the
// properly ordered version (clean).
func (g *generator) fnUseThenCheck(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_write%d", mod, i)
	f.w("static int %s(struct tty_struct *tty, int n) {", name)
	if g.chance(g.spec.Rates.UseThenCheck) {
		f.w("\tstruct sk_buff *info = tty->driver_data;")
		ln := f.w("\tif (!tty || !info)")
		g.bug(UseThenCheck, f, ln, name)
		f.w("\t\treturn 0;")
	} else {
		f.w("\tstruct sk_buff *info;")
		f.w("\tif (!tty)")
		f.w("\t\treturn 0;")
		f.w("\tinfo = tty->driver_data;")
		f.w("\tif (!info)")
		f.w("\t\treturn 0;")
	}
	f.w("\treturn info->len + n;")
	f.w("}")
}

// fnAllocUse emits the kmalloc idiom: allocate, check, use. Bug: the
// check is missing and the result is dereferenced directly.
func (g *generator) fnAllocUse(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_grow%d", mod, i)
	size := 32 + 16*(i%4)
	f.w("static int %s(int extra) {", name)
	f.w("\tstruct sk_buff *buf = kmalloc(%d + extra);", size)
	if g.chance(g.spec.Rates.UncheckedAlloc) {
		ln := f.w("\tbuf->len = %d;", size)
		g.bug(UncheckedAlloc, f, ln, name)
	} else {
		f.w("\tif (!buf)")
		f.w("\t\treturn -1;")
		f.w("\tbuf->len = %d;", size)
	}
	f.w("\tbuf->next = NULL;")
	f.w("\treturn 0;")
	f.w("}")
}

// fnLockSection emits a critical section over the module's shared
// counters. Bugs: an access outside the lock (lockvar), or a path that
// returns without releasing (pairing).
func (g *generator) fnLockSection(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_update%d", mod, i)
	f.w("static int %s(int delta) {", name)
	missingUnlock := g.chance(g.spec.Rates.MissingUnlock)
	lockLn := f.w("\tspin_lock(&%s_lock);", mod)
	f.w("\t%s_count = %s_count + delta;", mod, mod)
	f.w("\t%s_state = %s_state + 1;", mod, mod)
	if missingUnlock {
		// The early-return path leaks the lock; the pairing checker
		// reports at the unmatched acquire site.
		g.bug(MissingUnlock, f, lockLn, name)
		f.w("\tif (%s_count < 0) {", mod)
		f.w("\t\treturn -1;")
		f.w("\t}")
		f.w("\tspin_unlock(&%s_lock);", mod)
	} else {
		f.w("\tif (%s_count < 0) {", mod)
		f.w("\t\tspin_unlock(&%s_lock);", mod)
		f.w("\t\treturn -1;")
		f.w("\t}")
		f.w("\tspin_unlock(&%s_lock);", mod)
	}
	if g.chance(g.spec.Rates.UnlockedAccess) {
		ln := f.w("\t%s_count = %s_count - 1;", mod, mod)
		g.bug(UnlockedAccess, f, ln, name)
	}
	f.w("\treturn delta;")
	f.w("}")
}

// fnIoctl emits the module's ioctl handler; arg is a user pointer. Clean:
// copy_from_user. Bug: direct dereference (§7's security hole).
func (g *generator) fnIoctl(f *file, mod string, i int) {
	// Only one ioctl per module joins the fops interface; extra
	// instances get distinct names and still use the copy idiom.
	name := fmt.Sprintf("%s_ioctl", mod)
	if i >= 10 { // second template cycle: keep names unique
		name = fmt.Sprintf("%s_ioctl%d", mod, i)
	}
	f.w("static int %s(struct file *filp, unsigned int cmd, char *arg) {", name)
	f.w("\tchar kbuf[16];")
	if g.chance(g.spec.Rates.UserPtrDeref) {
		ln := f.w("\tkbuf[0] = arg[0];")
		g.bug(UserPtrDeref, f, ln, name)
		f.w("\tif (cmd > 4)")
		f.w("\t\treturn -1;")
	} else {
		f.w("\tif (copy_from_user(kbuf, arg, 16))")
		f.w("\t\treturn -1;")
	}
	f.w("\treturn kbuf[0] + cmd;")
	f.w("}")
}

// fnLookup emits the IS_ERR idiom: the module's lookup routine returns an
// encoded error pointer, and callers must test it with IS_ERR. Bug: a
// caller tests against NULL instead.
func (g *generator) fnLookup(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_open", mod)
	if i >= 10 {
		name = fmt.Sprintf("%s_open%d", mod, i)
	}
	f.w("static int %s(struct inode *ino, struct file *filp) {", name)
	f.w("\tstruct dentry *d = vfs_lookup(ino->i_ino);")
	if g.chance(g.spec.Rates.WrongErrCheck) {
		ln := f.w("\tif (d == NULL)")
		g.bug(WrongErrCheck, f, ln, name)
		f.w("\t\treturn -1;")
	} else {
		f.w("\tif (IS_ERR(d))")
		f.w("\t\treturn -1;")
	}
	f.w("\tfilp->private_data = d;")
	f.w("\treturn d->d_count;")
	f.w("}")
}

// fnIntrWork emits hardware poking that the code base does with
// interrupts disabled. Bug: a call site leaves them enabled.
func (g *generator) fnIntrWork(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_hw%d", mod, i)
	f.w("static void %s(void) {", name)
	if g.chance(g.spec.Rates.IntrEnabled) {
		ln := f.w("\ttouch_hw_port(%d);", i)
		g.bug(IntrEnabled, f, ln, name)
		f.w("\tcli();")
		f.w("\tsti();")
	} else {
		f.w("\tcli();")
		f.w("\ttouch_hw_port(%d);", i)
		f.w("\tsti();")
	}
	f.w("}")
}

// fnFiller emits clean computational code: realistic mass with nothing to
// find.
func (g *generator) fnFiller(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_calc%d", mod, i)
	f.w("static int %s(int a, int b) {", name)
	f.w("\tint acc = 0;")
	f.w("\tint i;")
	f.w("\tfor (i = 0; i < a; i++) {")
	f.w("\t\tif (i %% %d == 0)", 2+i%3)
	f.w("\t\t\tacc += b << 1;")
	f.w("\t\telse")
	f.w("\t\t\tacc -= b;")
	f.w("\t}")
	f.w("\tswitch (acc & 3) {")
	f.w("\tcase 0:")
	f.w("\t\tacc += %d;", i)
	f.w("\t\tbreak;")
	f.w("\tcase 1:")
	f.w("\t\tacc -= %d;", i)
	f.w("\t\tbreak;")
	f.w("\tdefault:")
	f.w("\t\tacc = acc * 2;")
	f.w("\t}")
	f.w("\treturn acc;")
	f.w("}")
}

// fnRedundant emits the release handler; bug variant re-checks a pointer
// already known.
func (g *generator) fnRedundant(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_release", mod)
	if i >= 10 {
		name = fmt.Sprintf("%s_release%d", mod, i)
	}
	f.w("static int %s(struct inode *ino, struct file *filp) {", name)
	f.w("\tif (filp == NULL)")
	f.w("\t\treturn -1;")
	if g.chance(g.spec.Rates.RedundantCheck) {
		ln := f.w("\tif (filp == NULL)")
		g.bug(RedundantCheck, f, ln, name)
		f.w("\t\treturn -2;")
	}
	f.w("\tfilp->private_data = NULL;")
	f.w("\treturn 0;")
	f.w("}")
}

// fnListWalk emits a clean queue walk (exercises loops and member
// chains without bugs).
func (g *generator) fnListWalk(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_drain%d", mod, i)
	f.w("static int %s(void) {", name)
	f.w("\tstruct sk_buff *p;")
	f.w("\tint total = 0;")
	f.w("\tspin_lock(&%s_lock);", mod)
	f.w("\tfor (p = %s_queue; p; p = p->next)", mod)
	f.w("\t\ttotal += p->len;")
	f.w("\t%s_count = 0;", mod)
	f.w("\tspin_unlock(&%s_lock);", mod)
	f.w("\treturn total;")
	f.w("}")
}

// fnSecCheck emits a privileged operation guarded by capable(). Bug: the
// guard is missing (Table 2's "does security check Y protect X").
func (g *generator) fnSecCheck(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_setopt%d", mod, i)
	f.w("static int %s(int v) {", name)
	if g.chance(g.spec.Rates.SecUnchecked) {
		ln := f.w("\tset_port_state(v);")
		g.bug(SecUnchecked, f, ln, name)
	} else {
		f.w("\tif (!capable(12))")
		f.w("\t\treturn -1;")
		f.w("\tset_port_state(v);")
	}
	f.w("\treturn 0;")
	f.w("}")
}

// fnErrorCleanup emits the error-path reversal idiom: request_region must
// be released when the subsequent probe fails. Bug: the error path leaks
// the region (Table 2's "does a reverse b").
func (g *generator) fnErrorCleanup(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_setup%d", mod, i)
	f.w("static int %s(int port) {", name)
	f.w("\tint err;")
	reqLn := f.w("\trequest_region(port);")
	f.w("\terr = probe_port(port);")
	if g.chance(g.spec.Rates.MissingRevert) {
		// The reverse checker reports at the unreversed forward action.
		g.bug(MissingRevert, f, reqLn, name)
		f.w("\tif (err < 0)")
		f.w("\t\treturn -EIO;")
	} else {
		f.w("\tif (err < 0) {")
		f.w("\t\trelease_region(port);")
		f.w("\t\treturn -EIO;")
		f.w("\t}")
	}
	f.w("\treturn 0;")
	f.w("}")
}

// fnCoincidence emits realistic noise — weak, coincidental beliefs that
// are NOT bugs: a scratch variable once touched inside a critical section
// and twice outside it, and a one-off call pairing. The z ranking must
// push violations of these beliefs below the seeded bugs (§5.1); the
// ranking experiment measures exactly that.
func (g *generator) fnCoincidence(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_misc%d", mod, i)
	f.w("static int %s(int v) {", name)
	f.w("\tspin_lock(&%s_lock);", mod)
	f.w("\t%s_tmp = v + %s_state;", mod, mod)
	f.w("\tspin_unlock(&%s_lock);", mod)
	f.w("\t%s_tmp = %s_tmp + 1;", mod, mod)
	f.w("\tmisc_seed(v);")
	f.w("\tif (v > 0)")
	f.w("\t\tmisc_gather(v);")
	f.w("\treturn %s_tmp;", mod)
	f.w("}")
}

// fnPanicGuard emits the §6 panic idiom: the null path crashes the
// machine, so the following dereference is safe. It seeds NO bug — it
// exists to measure the crash-path-pruning ablation (without pruning, the
// null checker false-positives here).
func (g *generator) fnPanicGuard(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_claim%d", mod, i)
	f.w("static int %s(struct sk_buff *b, int cpu) {", name)
	f.w("\tif (!b)")
	f.w("\t\tpanic(\"%s: no buffer for CPU %%d\", cpu);", mod)
	f.w("\tb->len = 0;")
	f.w("\treturn 0;")
	f.w("}")
}

// fnMacroGuard emits the macro idiom behind most of the paper's null
// false positives (§6): a warn-only macro checks its argument, and the
// caller dereferences afterwards. Clean code — the macro-origin
// truncation must keep the belief from leaking (the macro ablation
// measures this).
func (g *generator) fnMacroGuard(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_touch%d", mod, i)
	f.w("static int %s(struct inode *ino) {", name)
	f.w("\tDEV_WARN_IF_NULL(ino);")
	f.w("\treturn ino->i_ino;")
	f.w("}")
}

// fnTeardown emits the deallocation discipline (§4.1 pre/post-conditions
// of free). Bug: the freed buffer is touched afterwards.
func (g *generator) fnTeardown(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_teardown%d", mod, i)
	f.w("static void %s(struct sk_buff *b) {", name)
	f.w("\tif (!b)")
	f.w("\t\treturn;")
	if g.chance(g.spec.Rates.UseAfterFree) {
		f.w("\tkfree(b);")
		ln := f.w("\tb->len = 0;")
		g.bug(UseAfterFree, f, ln, name)
	} else {
		f.w("\tb->len = 0;")
		f.w("\tkfree(b);")
	}
	f.w("}")
}

// fnDevOps emits member-granular locking — dev.lock protects dev.count —
// the dominant idiom in modern kernels. Bug: the counter is touched after
// the member lock is dropped.
func (g *generator) fnDevOps(f *file, mod string, i int) {
	name := fmt.Sprintf("%s_devop%d", mod, i)
	f.w("static int %s(int d) {", name)
	f.w("\tspin_lock(&%s_dev.lock);", mod)
	f.w("\t%s_dev.count = %s_dev.count + d;", mod, mod)
	f.w("\tspin_unlock(&%s_dev.lock);", mod)
	if g.chance(g.spec.Rates.UnlockedAccess) {
		ln := f.w("\t%s_dev.count = 0;", mod)
		g.bug(UnlockedAccess, f, ln, name)
	}
	f.w("\treturn d;")
	f.w("}")
}
