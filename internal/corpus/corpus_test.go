package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"deviant/internal/cparse"
	"deviant/internal/cpp"
	"deviant/internal/ctoken"
	"deviant/internal/report"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Linux241())
	b := Generate(Linux241())
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for name, src := range a.Files {
		if b.Files[name] != src {
			t.Fatalf("file %s differs between runs", name)
		}
	}
	if len(a.Bugs) != len(b.Bugs) {
		t.Fatal("bug counts differ")
	}
}

func TestSpecSizes(t *testing.T) {
	small := Generate(Linux241())
	large := Generate(Linux247())
	if large.Lines <= small.Lines {
		t.Errorf("2.4.7-like (%d lines) should exceed 2.4.1-like (%d)", large.Lines, small.Lines)
	}
	if len(small.Units) != small.Spec.Modules || len(large.Units) != large.Spec.Modules {
		t.Errorf("units: %d, %d", len(small.Units), len(large.Units))
	}
}

func TestAllKindsSeeded(t *testing.T) {
	c := Generate(Linux247())
	kinds := []BugKind{
		CheckThenUse, UseThenCheck, RedundantCheck, UserPtrDeref,
		WrongErrCheck, UncheckedAlloc, UnlockedAccess, MissingUnlock, IntrEnabled,
		SecUnchecked, MissingRevert, UseAfterFree,
	}
	for _, k := range kinds {
		if c.CountOf(k) == 0 {
			t.Errorf("no %s bugs seeded in the large corpus", k)
		}
	}
}

func TestCorpusParsesCleanly(t *testing.T) {
	for _, spec := range []Spec{Linux241(), Linux247(), OpenBSD28()} {
		c := Generate(spec)
		for _, unit := range c.Units {
			pp := cpp.New(cpp.MapFS(c.Files), "include")
			toks, err := pp.Process(unit)
			if err != nil {
				t.Fatalf("%s/%s: cpp: %v", spec.Name, unit, err)
			}
			_, errs := cparse.ParseFile(unit, toks)
			if len(errs) != 0 {
				t.Fatalf("%s/%s: parse: %v", spec.Name, unit, errs[0])
			}
		}
	}
}

func TestGroundTruthLinesPointAtCode(t *testing.T) {
	c := Generate(Linux247())
	for _, b := range c.Bugs {
		src, ok := c.Files[b.File]
		if !ok {
			t.Fatalf("bug in unknown file %s", b.File)
		}
		lines := 0
		for _, ch := range src {
			if ch == '\n' {
				lines++
			}
		}
		if b.Line < 1 || b.Line > lines {
			t.Errorf("bug line %d out of range (%s has %d lines)", b.Line, b.File, lines)
		}
	}
}

func TestScoreReports(t *testing.T) {
	c := Generate(Linux241())
	bugs := c.BugsOf(CheckThenUse)
	if len(bugs) == 0 {
		t.Skip("no check-then-use bugs at this seed")
	}
	// Simulate a checker that found the first bug exactly, plus one
	// bogus report.
	rs := []report.Report{
		{Checker: "null/check-then-use", Pos: ctoken.Pos{File: bugs[0].File, Line: bugs[0].Line}},
		{Checker: "null/check-then-use", Pos: ctoken.Pos{File: bugs[0].File, Line: bugs[0].Line + 500}},
		{Checker: "lockvar", Pos: ctoken.Pos{File: bugs[0].File, Line: bugs[0].Line}},
	}
	sc := ScoreReports(c, rs, CheckThenUse, 2)
	if sc.TruePositives != 1 || sc.FalsePositives != 1 {
		t.Errorf("score: %+v", sc)
	}
	if sc.FalseNegatives != len(bugs)-1 {
		t.Errorf("FN: %d want %d", sc.FalseNegatives, len(bugs)-1)
	}
	if sc.Precision() != 0.5 {
		t.Errorf("precision: %v", sc.Precision())
	}
}

func TestIsBugAt(t *testing.T) {
	c := Generate(Linux241())
	bugs := c.BugsOf(UncheckedAlloc)
	if len(bugs) == 0 {
		t.Skip("no alloc bugs at this seed")
	}
	b := bugs[0]
	if !c.IsBugAt(UncheckedAlloc, b.File, b.Line+1, 2) {
		t.Error("within tolerance should match")
	}
	if c.IsBugAt(UncheckedAlloc, b.File, b.Line+100, 2) {
		t.Error("far away should not match")
	}
}

func TestVersionPair(t *testing.T) {
	oldC, newC, regressions := VersionPair(Linux241(), 2.0)
	if len(newC.Bugs) <= len(oldC.Bugs) {
		t.Fatalf("new version should have more bugs: %d vs %d", len(newC.Bugs), len(oldC.Bugs))
	}
	if len(regressions) != len(newC.Bugs)-len(oldC.Bugs) {
		t.Errorf("regressions %d != delta %d", len(regressions), len(newC.Bugs)-len(oldC.Bugs))
	}
	// Monotonicity: every old bug persists in the new version.
	newSet := map[string]bool{}
	for _, b := range newC.Bugs {
		newSet[bugKey(b)] = true
	}
	for _, b := range oldC.Bugs {
		if !newSet[bugKey(b)] {
			t.Errorf("old bug vanished in new version: %+v", b)
		}
	}
	// Both versions parse.
	for _, c := range []*Corpus{oldC, newC} {
		for _, unit := range c.Units {
			pp := cpp.New(cpp.MapFS(c.Files), "include")
			toks, err := pp.Process(unit)
			if err != nil {
				t.Fatalf("%s: %v", unit, err)
			}
			if _, errs := cparse.ParseFile(unit, toks); len(errs) != 0 {
				t.Fatalf("%s: %v", unit, errs[0])
			}
		}
	}
}

func TestWriteToDirRoundTrip(t *testing.T) {
	c := Generate(Linux241())
	dir := t.TempDir()
	manifest, err := c.WriteToDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	bugs, err := ReadGroundTruth(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) != len(c.Bugs) {
		t.Fatalf("round trip lost bugs: %d vs %d", len(bugs), len(c.Bugs))
	}
	for i := range bugs {
		if bugs[i] != c.Bugs[i] {
			t.Fatalf("bug %d mismatch: %+v vs %+v", i, bugs[i], c.Bugs[i])
		}
	}
	// Spot-check one source file landed on disk.
	if _, err := os.Stat(filepath.Join(dir, c.Units[0])); err != nil {
		t.Errorf("unit missing on disk: %v", err)
	}
}
