package corpus

import (
	"strings"

	"deviant/internal/report"
)

// Score compares checker reports against seeded ground truth.
type Score struct {
	TruePositives  int // reports matching a seeded bug
	FalsePositives int // reports matching nothing
	FalseNegatives int // seeded bugs nothing reported
}

// Recall returns TP / (TP + FN), or 0 for an empty denominator.
func (s Score) Recall() float64 {
	d := s.TruePositives + s.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(s.TruePositives) / float64(d)
}

// Precision returns TP / (TP + FP), or 0 for an empty denominator.
func (s Score) Precision() float64 {
	d := s.TruePositives + s.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(s.TruePositives) / float64(d)
}

// ScoreReports matches the reports emitted under checker kind (exact name
// or name/sub-checker) against c's seeded bugs of the same kind. A report
// matches a bug when it lands in the same file within tol lines; each bug
// absorbs at most one report and vice versa.
func ScoreReports(c *Corpus, reports []report.Report, kind BugKind, tol int) Score {
	return ScoreReportsKinds(c, reports, kind, []BugKind{kind}, tol)
}

// ScoreReportsKinds is ScoreReports with cross-labeled ground truth:
// reports from checker reportKind may legitimately land on bugs of any of
// matchKinds (checkers overlap — the reverse checker also catches leaked
// locks that the pairing template seeded).
func ScoreReportsKinds(c *Corpus, reports []report.Report, reportKind BugKind, matchKinds []BugKind, tol int) Score {
	want := string(reportKind)
	var relevant []report.Report
	for _, r := range reports {
		if r.Checker == want || strings.HasPrefix(r.Checker, want+"/") {
			relevant = append(relevant, r)
		}
	}
	var bugs []Bug
	for _, k := range matchKinds {
		bugs = append(bugs, c.BugsOf(k)...)
	}
	usedBug := make([]bool, len(bugs))
	var sc Score
	for _, r := range relevant {
		matched := false
		for i, b := range bugs {
			if usedBug[i] || b.File != r.Pos.File {
				continue
			}
			d := r.Pos.Line - b.Line
			if d < 0 {
				d = -d
			}
			if d <= tol {
				usedBug[i] = true
				matched = true
				break
			}
		}
		if matched {
			sc.TruePositives++
		} else {
			sc.FalsePositives++
		}
	}
	// Recall is measured against the checker's own bug kind only; the
	// extra matchKinds exist to absolve cross-found reports, not to
	// demand the checker find another template's bugs.
	for i, u := range usedBug {
		if !u && bugs[i].Kind == reportKind {
			sc.FalseNegatives++
		}
	}
	return sc
}

// IsBugAt reports whether a seeded bug of kind sits in file within tol
// lines of line (for inspection-curve ground truth).
func (c *Corpus) IsBugAt(kind BugKind, file string, line, tol int) bool {
	for _, b := range c.Bugs {
		if b.Kind != kind || b.File != file {
			continue
		}
		d := line - b.Line
		if d < 0 {
			d = -d
		}
		if d <= tol {
			return true
		}
	}
	return false
}
