// Package service implements deviantd's HTTP/JSON API: a resident
// analysis server that runs requests through the parallel pipeline with
// a shared content-addressed snapshot store, so repeated analyses of
// near-identical trees only pay the frontend for the units that changed.
//
// Endpoints:
//
//	POST /v1/analyze  analyze an in-memory source tree (?trace=1 embeds
//	                  a Chrome trace-event JSON of the run). With
//	                  Config.Coordinator set, the run shards across the
//	                  worker fleet instead of executing locally; output
//	                  is byte-identical either way (DESIGN.md §12).
//	POST /v1/shard    worker half of a distributed run: preprocess+parse
//	                  the shard's units, return mergeable partials
//	POST /v1/diff     §4.2 cross-version check of two trees
//	GET  /v1/rules    derived rule instances from the last analysis
//	POST /v1/jobs     queue an analysis asynchronously: 202 + job id,
//	                  per-tenant quotas (X-Deviant-Tenant), round-robin
//	                  fair scheduling across tenants (see jobs.go)
//	GET  /v1/jobs/{id}         poll job state
//	GET  /v1/jobs/{id}/result  finished AnalyzeResponse, byte-identical
//	                  to the synchronous /v1/analyze answer
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET  /v1/fleet/status  (coordinator mode) ring composition,
//	                  per-worker health/build info, last-scatter latency
//	GET  /healthz     liveness + build info (503 while draining)
//	GET  /metrics     Prometheus text format with HELP/TYPE metadata:
//	                  request latency histograms per endpoint, queue
//	                  depth, per-checker report counts and z-score
//	                  distributions, snapshot and token-cache traffic
//
// Observability is structured in three layers (see DESIGN.md §8): every
// request gets an ID that is logged (one slog JSON line per request when
// Config.Logger is set) and attached to the request's trace span; the
// obs.Registry aggregates counters/gauges/histograms for /metrics; and
// per-run tracing is opt-in per request via ?trace=1.
//
// Admission control is two-level: at most MaxConcurrent analyses run at
// once, at most QueueDepth more wait; beyond that requests are rejected
// immediately with 429 so clients back off instead of piling up. A
// request that waits or runs past Timeout gets 504 (its work completes in
// the background and still warms the snapshot store). SIGTERM handling
// lives in cmd/deviantd: it marks the server draining (healthz flips to
// 503, new analyses get 503) and lets http.Server.Shutdown wait for
// in-flight requests.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deviant"
	"deviant/internal/dist"
	"deviant/internal/fault"
	"deviant/internal/obs"
	"deviant/internal/report"
	"deviant/internal/snapshot"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxWorkers clamps the per-request worker budget (0 = NumCPU).
	MaxWorkers int
	// MaxConcurrent is how many analyses run at once (0 = 2).
	MaxConcurrent int
	// QueueDepth is how many requests may wait beyond the running ones
	// before new ones are rejected with 429 (0 = 8).
	QueueDepth int
	// Timeout bounds one request's queue wait plus analysis (0 = 60s).
	// Async jobs get the same budget per run.
	Timeout time.Duration
	// JobQueueDepth caps jobs waiting to run across all tenants; beyond
	// it POST /v1/jobs answers 429 (0 = 16).
	JobQueueDepth int
	// JobsPerTenant caps one tenant's in-flight jobs, queued plus
	// running; beyond it that tenant's submissions get 429 while other
	// tenants are unaffected (0 = 4).
	JobsPerTenant int
	// JobWorkers is how many jobs execute concurrently (0 = MaxConcurrent).
	JobWorkers int
	// JobHistory bounds retained terminal jobs: past it the oldest
	// finished jobs are forgotten, 404ing their ids (0 = 256).
	JobHistory int
	// JobDir, when non-empty, attaches a crash-safe write-ahead log to
	// the job subsystem: every accepted job is persisted through its
	// lifecycle, so a restart re-admits queued jobs, re-runs jobs that
	// were mid-flight, and keeps serving finished results byte-identical
	// to before the crash. An unusable directory degrades to in-memory
	// jobs with a warning rather than refusing to start.
	JobDir string
	// SnapshotUnits caps the snapshot store (0 = snapshot default).
	SnapshotUnits int
	// CacheDir, when non-empty, attaches a crash-safe persistent tier to
	// the snapshot store: artifacts survive daemon restarts, and corrupt
	// entries (torn writes, flipped bits) are evicted and recomputed. An
	// unusable directory degrades to memory-only caching with a warning
	// rather than refusing to start.
	CacheDir string
	// MaxBodyBytes caps a request body; larger payloads get 413
	// (0 = 32 MiB, enough for any realistic source tree while keeping a
	// hostile client from buffering gigabytes into the decoder).
	MaxBodyBytes int64
	// Logger, when non-nil, receives one structured line per request
	// (id, method, path, status, duration) plus lifecycle events. Nil
	// disables request logging (the default for embedded/test use).
	Logger *slog.Logger
	// Coordinator, when non-nil, puts /v1/analyze in coordinator mode:
	// sources shard across the fleet by content digest and the global
	// half of the pipeline runs here over the merged partials. The
	// local snapshot store is unused in this mode (frontend caching
	// lives on the workers). /v1/diff always runs locally. It also
	// enables GET /v1/fleet/status, the ring/health/build summary.
	Coordinator *dist.Coordinator
	// WorkerDialer, when non-nil alongside Coordinator, enables
	// POST /v1/fleet/workers — live fleet membership replacement. It maps
	// a worker name (its base URL) to the shard caller the coordinator
	// should use; retained names keep their health state, new members
	// join healthy, and every accepted update bumps the membership epoch.
	WorkerDialer func(name string) dist.ShardCaller
	// JournalWriter, when non-nil, receives one JSONL run-journal line
	// per event (run start, placement, shard lifecycle, quarantine,
	// rank, run end), every line keyed by the run's request id — the
	// adopted X-Deviant-Request-Id for distributed runs. Writes from
	// concurrent runs interleave at line granularity (each event is one
	// Write call). The caller owns the writer's lifecycle.
	JournalWriter io.Writer
}

func (c Config) withDefaults() Config {
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.NumCPU()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 16
	}
	if c.JobsPerTenant <= 0 {
		c.JobsPerTenant = 4
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = c.MaxConcurrent
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 256
	}
	return c
}

// Server is the deviantd HTTP handler.
type Server struct {
	cfg   Config
	store *snapshot.Store
	mux   *http.ServeMux
	log   *slog.Logger
	build obs.Build

	slots chan struct{} // admission: running + queued
	run   chan struct{} // running

	draining  atomic.Bool
	nextID    atomic.Int64 // request id sequence
	nextJobID atomic.Int64 // job id sequence
	jobs      *jobManager
	joblog    *jobLog // nil unless Config.JobDir is usable

	// Metrics. The registry owns everything /metrics serves; the named
	// handles are the counters the handlers bump on their hot paths.
	reg       *obs.Registry
	requests  *obs.Counter // analyses + diffs accepted
	rejected  *obs.Counter // 429s
	timeouts  *obs.Counter // 504s
	panics    *obs.Counter // handler/worker panics recovered into 500s
	inflight  *obs.Gauge
	analyzeNs *obs.Counter // cumulative analysis wall clock, seconds

	jobsSubmitted *obs.Counter
	jobsRejected  *obs.Counter // 429s on POST /v1/jobs (quota or queue)
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsCanceled  *obs.Counter

	mu        sync.Mutex
	lastRules *RulesResponse
	analyses  int64 // completed analyze requests, ids /v1/rules snapshots
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		store: snapshot.NewStore(cfg.SnapshotUnits),
		mux:   http.NewServeMux(),
		log:   cfg.Logger,
		build: obs.BuildInfo(),
		reg:   obs.NewRegistry(),
		slots: make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		run:   make(chan struct{}, cfg.MaxConcurrent),
	}
	if cfg.CacheDir != "" {
		if err := s.store.AttachDisk(cfg.CacheDir); err != nil && s.log != nil {
			s.log.Warn("cache dir unavailable, caching in memory only",
				"dir", cfg.CacheDir, "err", err.Error())
		}
	}
	var recovered []jobEntry
	if cfg.JobDir != "" {
		l, entries, corrupt, err := openJobLog(cfg.JobDir)
		if err != nil {
			if s.log != nil {
				s.log.Warn("job dir unavailable, jobs are not durable",
					"dir", cfg.JobDir, "err", err.Error())
			}
		} else {
			s.joblog = l
			recovered = entries
			if corrupt > 0 && s.log != nil {
				s.log.Warn("job log swept corrupt entries",
					"dir", cfg.JobDir, "count", corrupt)
			}
		}
	}
	s.initMetrics()
	if cfg.Coordinator != nil {
		cfg.Coordinator.RegisterMetrics(s.reg)
		s.mux.HandleFunc("GET /v1/fleet/status", s.handleFleetStatus)
		if cfg.WorkerDialer != nil {
			s.mux.HandleFunc("POST /v1/fleet/workers", s.handleFleetWorkers)
		}
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/shard", s.handleShard)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /v1/rules", s.handleRules)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.jobs = newJobManager(s, recovered)
	return s
}

// journalFor returns a run journal bound to this request's id, or nil
// when journaling is off. Each run gets its own Journal (own seq
// counter); all runs share the configured writer.
func (s *Server) journalFor(ctx context.Context) *obs.Journal {
	if s.cfg.JournalWriter == nil {
		return nil
	}
	return obs.NewJournal(s.cfg.JournalWriter, requestID(ctx))
}

// initMetrics declares the server's metric families. Handler-owned
// counters get handles; values owned by other subsystems (the snapshot
// store, the admission channels) are registered as callbacks sampled at
// scrape time.
func (s *Server) initMetrics() {
	s.requests = s.reg.Counter("deviantd_requests_total",
		"Analyze and diff requests accepted for execution.")
	s.rejected = s.reg.Counter("deviantd_requests_rejected_total",
		"Requests rejected with 429 because the queue was full.")
	s.timeouts = s.reg.Counter("deviantd_requests_timeout_total",
		"Requests that exceeded the request timeout (504).")
	s.panics = s.reg.Counter("deviantd_panics_recovered_total",
		"Handler or analysis-worker panics recovered into 500 responses.")
	s.inflight = s.reg.Gauge("deviantd_requests_inflight",
		"Analyses currently executing.")
	s.analyzeNs = s.reg.Counter("deviantd_analysis_seconds_total",
		"Cumulative analysis wall clock, in seconds.")
	s.jobsSubmitted = s.reg.Counter("deviantd_jobs_submitted_total",
		"Async jobs accepted into the queue.")
	s.jobsRejected = s.reg.Counter("deviantd_jobs_rejected_total",
		"Async job submissions rejected with 429 (tenant quota or queue full).")
	s.jobsCompleted = s.reg.Counter("deviantd_jobs_completed_total",
		"Async jobs that finished with a result.")
	s.jobsFailed = s.reg.Counter("deviantd_jobs_failed_total",
		"Async jobs that ended in an error.")
	s.jobsCanceled = s.reg.Counter("deviantd_jobs_canceled_total",
		"Async jobs canceled before publishing a result.")
	s.reg.GaugeFunc("deviantd_jobs_queued",
		"Async jobs waiting for a job worker.",
		func() float64 { q, _ := s.jobs.counts(); return float64(q) })
	s.reg.GaugeFunc("deviantd_jobs_running",
		"Async jobs executing right now.",
		func() float64 { _, r := s.jobs.counts(); return float64(r) })
	s.reg.GaugeFunc("deviantd_queue_depth",
		"Admitted requests waiting for a run slot.",
		func() float64 {
			if d := len(s.slots) - len(s.run); d > 0 {
				return float64(d)
			}
			return 0
		})
	s.reg.CounterFunc("deviantd_snapshot_unit_hits",
		"Snapshot lookups answered from the store.",
		func() float64 { return float64(s.store.Stats().UnitHits) })
	s.reg.CounterFunc("deviantd_snapshot_unit_misses",
		"Snapshot lookups that forced a cold frontend run.",
		func() float64 { return float64(s.store.Stats().UnitMisses) })
	s.reg.CounterFunc("deviantd_snapshot_evictions",
		"Snapshot artifacts dropped by the LRU bound.",
		func() float64 { return float64(s.store.Stats().Evictions) })
	s.reg.CounterFunc("deviantd_snapshot_lookup_seconds_total",
		"Cumulative wall clock spent verifying snapshot content digests.",
		func() float64 { return time.Duration(s.store.Stats().LookupNs).Seconds() })
	s.reg.GaugeFunc("deviantd_snapshot_units",
		"Translation-unit artifacts resident in the snapshot store.",
		func() float64 { return float64(s.store.Stats().Units) })
	s.reg.GaugeFunc("deviantd_snapshot_graphs",
		"Function CFGs resident in the snapshot store.",
		func() float64 { return float64(s.store.Stats().Graphs) })
	// Pre-create one latency histogram per endpoint so a fresh scrape
	// shows the full set.
	for _, ep := range []string{"analyze", "shard", "diff", "rules", "jobs", "healthz", "metrics"} {
		s.latencyFor(ep)
	}
	// Go runtime self-metrics + the build-info gauge, for every role:
	// fleet debugging needs to see each process's goroutines, heap, GC
	// behavior and build identity from its own /metrics.
	obs.RegisterRuntimeMetrics(s.reg)
}

// latencyFor returns the request-latency histogram for one endpoint.
func (s *Server) latencyFor(endpoint string) *obs.Histogram {
	return s.reg.Histogram("deviantd_request_seconds",
		"HTTP request latency by endpoint.", obs.LatencyBuckets,
		obs.L("endpoint", endpoint))
}

// endpointOf maps a request path onto its latency/log label. Unknown
// paths share one bucket so label cardinality stays bounded; every
// job route (submit, status, result, cancel) shares "jobs" for the
// same reason — job ids must not become label values.
func endpointOf(path string) string {
	if path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/") {
		return "jobs"
	}
	switch path {
	case "/v1/analyze":
		return "analyze"
	case "/v1/shard":
		return "shard"
	case "/v1/diff":
		return "diff"
	case "/v1/rules":
		return "rules"
	case "/v1/fleet/status":
		return "fleet_status"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// sanitizeRequestID accepts an incoming request ID only when it is
// short and printable ASCII; anything else returns "" and the server
// assigns its own. Log lines and trace attributes must never carry
// attacker-shaped bytes.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return ""
		}
	}
	return id
}

type ridKey struct{}

// requestID returns the request's assigned ID ("" outside ServeHTTP).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// statusWriter captures the response status for logging and tracks
// whether anything reached the wire yet, so the panic recovery path
// knows if it can still write a clean 500.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler: it assigns the request ID, times the
// request into the per-endpoint latency histogram, emits one structured
// log line when a logger is configured, and converts a handler panic into
// a 500 JSON error carrying the request ID — the daemon must outlive any
// single request, whatever that request did.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("r%06d", s.nextID.Add(1))
	// A coordinator propagates its request ID to the workers it scatters
	// to, so one distributed run shares one ID across every node's log.
	// Adopt it only when it is sane: bounded and printable.
	if rid := sanitizeRequestID(r.Header.Get(dist.RequestIDHeader)); rid != "" {
		id = rid
	}
	r = r.WithContext(context.WithValue(r.Context(), ridKey{}, id))
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			s.panics.Inc()
			cause := fault.Redact(v)
			if s.log != nil {
				s.log.Error("handler panic", "id", id, "path", r.URL.Path, "cause", cause)
			}
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError,
					"internal error; request id %s", id)
			}
		}
		dur := time.Since(start)
		s.latencyFor(endpointOf(r.URL.Path)).Observe(dur.Seconds())
		if s.log != nil {
			s.log.Info("request",
				"id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.code,
				"dur_ms", float64(dur.Microseconds())/1e3)
		}
	}()
	fault.Trap("service", r.URL.Path)
	s.mux.ServeHTTP(sw, r)
}

// SetDraining flips the server into (or out of) drain mode: healthz
// reports 503 so load balancers stop routing here, and new analysis
// requests are refused while in-flight ones finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Store exposes the snapshot store (for stats in tests and cmd/deviantd).
func (s *Server) Store() *snapshot.Store { return s.store }

// Registry exposes the metrics registry, so embedders can add their own
// families to the same /metrics scrape.
func (s *Server) Registry() *obs.Registry { return s.reg }

// RequestOptions is the per-request analysis configuration, mirroring the
// CLI flags of the same names.
type RequestOptions struct {
	Checkers string  `json:"checkers,omitempty"`
	P0       float64 `json:"p0,omitempty"`
	NoMemo   bool    `json:"no_memo,omitempty"`
	NoPrune  bool    `json:"no_prune,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Top      int     `json:"top,omitempty"`
	Trust    bool    `json:"trust,omitempty"`
}

type AnalyzeRequest struct {
	Sources map[string]string `json:"sources"`
	Options RequestOptions    `json:"options"`
}

type DiffRequest struct {
	OldSources map[string]string `json:"old_sources"`
	NewSources map[string]string `json:"new_sources"`
	Options    RequestOptions    `json:"options"`
}

// AnalyzeResponse mirrors the CLI's -json output: the same summary
// fields and the same report.JSONReport shape, plus the run's snapshot
// reuse counters. Trace is present only when the request asked for
// ?trace=1: Chrome trace-event JSON, loadable directly in Perfetto.
// Degraded and Quarantined appear only when fault containment isolated
// part of the run (see DESIGN.md §10): the result is still valid for
// everything outside the listed records.
type AnalyzeResponse struct {
	Units       int                 `json:"units"`
	Functions   int                 `json:"functions"`
	Lines       int                 `json:"lines"`
	ParseErrors int                 `json:"parse_errors"`
	Degraded    bool                `json:"degraded,omitempty"`
	Quarantined []fault.Record      `json:"quarantined,omitempty"`
	Reports     []report.JSONReport `json:"reports"`
	Snapshot    snapshot.RunStats   `json:"snapshot"`
	Trace       json.RawMessage     `json:"trace,omitempty"`
}

type JSONDrift struct {
	Kind string `json:"kind"`
	Func string `json:"func"`
	Pos  string `json:"pos"`
	Msg  string `json:"msg"`
}

type DiffResponse struct {
	Drifts []JSONDrift     `json:"drifts"`
	New    AnalyzeResponse `json:"new"`
}

type JSONRule struct {
	Kind     string  `json:"kind"` // pair | can-fail | lock
	A        string  `json:"a"`
	B        string  `json:"b,omitempty"`
	Checks   int     `json:"checks"`
	Examples int     `json:"examples"`
	Z        float64 `json:"z"`
}

type RulesResponse struct {
	Analysis int64      `json:"analysis"` // 0 until the first analyze
	Rules    []JSONRule `json:"rules"`
}

type ErrorResponse struct {
	Error string `json:"error"`
}

// encodeBody renders v into the exact bytes writeJSON puts on the wire.
// The job log persists these bytes for finished jobs, so a result served
// after a restart is byte-identical to one served before it.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, _ := encodeBody(v)
	writeRawJSON(w, status, body)
}

// writeRawJSON serves pre-encoded response bytes (a recovered job result,
// or anything encodeBody produced) without a decode/re-encode round trip.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSecs derives the Retry-After hint from current queue
// pressure: an idle server invites an immediate retry (1s), and each
// admitted-but-waiting request adds a second, capped at 30.
func (s *Server) retryAfterSecs() int {
	secs := 1
	if d := len(s.slots) - len(s.run); d > 0 {
		secs += d
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// writeFailure maps an admission or run failure onto the wire. The two
// statuses that invite a retry — 429 (queue full) and 503 (draining) —
// carry a Retry-After hint so well-behaved clients back off instead of
// hammering; see internal/client.
func (s *Server) writeFailure(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	}
	writeError(w, status, "%s", msg)
}

// buildOptions maps request options onto core options, clamping the
// worker budget to the server's configured ceiling.
func (s *Server) buildOptions(ro RequestOptions) (deviant.Options, error) {
	opts := deviant.DefaultOptions()
	if ro.Checkers != "" {
		c, err := deviant.ParseChecks(ro.Checkers)
		if err != nil {
			return opts, err
		}
		opts.Checks = c
	}
	if ro.P0 != 0 {
		if ro.P0 < 0 || ro.P0 >= 1 {
			return opts, fmt.Errorf("p0 %v out of range (0, 1)", ro.P0)
		}
		opts.P0 = ro.P0
	}
	opts.Memoize = !ro.NoMemo
	opts.DisableCrashPruning = ro.NoPrune
	opts.Workers = s.cfg.MaxWorkers
	if ro.Workers > 0 && ro.Workers < s.cfg.MaxWorkers {
		opts.Workers = ro.Workers
	}
	opts.Snapshot = s.store
	return opts, nil
}

// admit reserves capacity for one analysis. It returns a release func on
// success, or an HTTP status + message when the request cannot run.
func (s *Server) admit(ctx context.Context) (func(), int, string) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, "server is draining"
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejected.Inc()
		return nil, http.StatusTooManyRequests, "queue full, retry later"
	}
	select {
	case s.run <- struct{}{}:
	case <-ctx.Done():
		<-s.slots
		s.timeouts.Inc()
		return nil, http.StatusGatewayTimeout, "timed out waiting for a worker slot"
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.run
			<-s.slots
		})
	}, 0, ""
}

// runAnalysis executes fn under the admission tokens and the request
// timeout. fn receives the timeout context so fleet scatters can abort
// remote calls; the in-process pipeline ignores it. On timeout the
// analysis keeps running in the background — still holding its run
// token, still warming the snapshot store — and the client gets 504.
func (s *Server) runAnalysis(ctx context.Context, fn func(ctx context.Context) (any, error)) (any, int, string) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	release, status, msg := s.admit(ctx)
	if release == nil {
		return nil, status, msg
	}
	s.requests.Inc()
	s.inflight.Add(1)
	type outcome struct {
		v   any
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		defer s.inflight.Add(-1)
		t := time.Now()
		// The analysis goroutine may outlive the request (504 path), so a
		// panic here would escape ServeHTTP's recovery and kill the daemon.
		// Contain it to this request: 500 for the client, daemon lives.
		v, err := func() (v any, err error) {
			defer func() {
				if p := recover(); p != nil {
					s.panics.Inc()
					err = fmt.Errorf("analysis worker panicked: %s", fault.Redact(p))
				}
			}()
			fault.Trap("service-worker", "run")
			return fn(ctx)
		}()
		s.analyzeNs.Add(time.Since(t).Seconds())
		done <- outcome{v, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			return nil, http.StatusInternalServerError, out.err.Error()
		}
		return out.v, 0, ""
	case <-ctx.Done():
		s.timeouts.Inc()
		return nil, http.StatusGatewayTimeout, "analysis timed out"
	}
}

// decodeRequest parses a JSON body under the configured size cap.
// Malformed or truncated JSON (and unknown fields) are the client's
// fault: 400. A body larger than MaxBodyBytes is a different contract
// violation and gets its own status, 413, so clients can distinguish
// "fix your JSON" from "shrink your tree".
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func validateSources(sources map[string]string) error {
	if len(sources) == 0 {
		return fmt.Errorf("no sources")
	}
	for name := range sources {
		if strings.HasSuffix(name, ".c") {
			return nil
		}
	}
	return fmt.Errorf("no .c translation units in sources")
}

// render converts a finished run into the wire shape, applying the
// request's presentation options (top, trust).
func render(res *deviant.Result, units int, ro RequestOptions) AnalyzeResponse {
	ranked := res.Reports.Ranked()
	if ro.Trust {
		ranked = res.Reports.RankedWithTrust(res.Reports.TrustFromMustErrors())
	}
	if ro.Top > 0 && len(ranked) > ro.Top {
		ranked = ranked[:ro.Top]
	}
	reports := make([]report.JSONReport, len(ranked))
	for i := range ranked {
		reports[i] = report.ToJSON(i+1, &ranked[i])
	}
	return AnalyzeResponse{
		Units:       units,
		Functions:   res.FuncCount,
		Lines:       res.LineCount,
		ParseErrors: len(res.ParseErrors),
		Degraded:    res.Degraded,
		Quarantined: res.Quarantined,
		Reports:     reports,
		Snapshot:    res.Snapshot,
	}
}

func countUnits(sources map[string]string) int {
	n := 0
	for name := range sources {
		if strings.HasSuffix(name, ".c") {
			n++
		}
	}
	return n
}

// rulesFrom flattens a result's derived rule instances, each kind in its
// own ranked order.
func rulesFrom(res *deviant.Result) []JSONRule {
	rules := []JSONRule{}
	for _, p := range res.Pairs {
		rules = append(rules, JSONRule{Kind: "pair", A: p.A, B: p.B,
			Checks: p.Checks, Examples: p.Examples(), Z: p.Z})
	}
	for _, d := range res.CanFail {
		rules = append(rules, JSONRule{Kind: "can-fail", A: d.Func,
			Checks: d.Checks, Examples: d.Examples(), Z: d.Z})
	}
	for _, b := range res.LockBindings {
		rules = append(rules, JSONRule{Kind: "lock", A: b.Lock, B: b.Var,
			Checks: b.Checks, Examples: b.Examples(), Z: b.Z})
	}
	return rules
}

// wantTrace reports whether the request opted into per-run tracing.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "on":
		return true
	}
	return false
}

// exportTrace renders the request's spans as Chrome trace-event JSON for
// embedding in the response.
func exportTrace(tr *deviant.Tracer) json.RawMessage {
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		return nil
	}
	return bytes.TrimSpace(buf.Bytes())
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if err := validateSources(req.Sources); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := s.buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var tr *deviant.Tracer
	var reqSpan *deviant.Span
	if wantTrace(r) {
		tr = deviant.NewTracer()
		opts.Tracer = tr
		// The request span ties the trace back to the daemon's log line
		// for the same request ID.
		reqSpan = tr.Start("request",
			deviant.A("id", requestID(r.Context())),
			deviant.A("endpoint", "analyze"))
	}
	journal := s.journalFor(r.Context())
	opts.Journal = journal
	mode := "local"
	if s.cfg.Coordinator != nil {
		mode = "coordinator"
	}
	journal.Event("run_start",
		obs.A("endpoint", "analyze"), obs.A("mode", mode),
		obs.A("units", strconv.Itoa(countUnits(req.Sources))))
	v, status, msg := s.runAnalysis(r.Context(), func(ctx context.Context) (any, error) {
		if c := s.cfg.Coordinator; c != nil {
			// Coordinator mode: same options, same output bytes, but the
			// frontend runs on the fleet (DESIGN.md §12).
			return c.Run(ctx, req.Sources, opts, requestID(r.Context()))
		}
		return deviant.Analyze(req.Sources, opts)
	})
	reqSpan.End()
	if status != 0 {
		journal.Event("run_end", obs.A("status", strconv.Itoa(status)))
		s.writeFailure(w, status, msg)
		return
	}
	res := v.(*deviant.Result)
	res.RecordMetrics(s.reg)
	s.mu.Lock()
	s.analyses++
	s.lastRules = &RulesResponse{Analysis: s.analyses, Rules: rulesFrom(res)}
	s.mu.Unlock()
	resp := render(res, countUnits(req.Sources), req.Options)
	if tr != nil {
		resp.Trace = exportTrace(tr)
	}
	journal.Event("rank",
		obs.A("reports", strconv.Itoa(len(resp.Reports))),
		obs.A("functions", strconv.Itoa(res.FuncCount)),
		obs.A("parse_errors", strconv.Itoa(len(res.ParseErrors))))
	journal.Event("run_end", obs.A("status", "200"))
	writeJSON(w, http.StatusOK, resp)
}

// handleShard is the worker half of a distributed run: preprocess and
// parse this shard's units, answer with token-stream partials the
// coordinator merges. Shards run under the same admission control as
// analyses — a worker is just a deviantd that only ever sees frontend
// work.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req dist.ShardRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if len(req.Units) == 0 {
		writeError(w, http.StatusBadRequest, "shard has no units")
		return
	}
	for _, u := range req.Units {
		if _, ok := req.Sources[u]; !ok {
			writeError(w, http.StatusBadRequest, "unit %q not in sources", u)
			return
		}
		if !strings.HasSuffix(u, ".c") {
			writeError(w, http.StatusBadRequest, "unit %q is not a translation unit", u)
			return
		}
	}
	v, status, msg := s.runAnalysis(r.Context(), func(ctx context.Context) (any, error) {
		return dist.RunShard(&req, s.store, s.cfg.MaxWorkers)
	})
	if status != 0 {
		s.writeFailure(w, status, msg)
		return
	}
	resp := v.(*dist.ShardResponse)
	// Piggyback this worker's scalar metric families on the response —
	// the zero-extra-round-trip half of metrics federation (the
	// coordinator's background scrape is the other half).
	resp.Metrics = s.reg.Samples()
	writeJSON(w, http.StatusOK, resp)
}

// handleFleetStatus serves the coordinator's fleet summary: ring
// composition, per-worker health/build identity, last scatter latency.
// Registered only in coordinator mode.
func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Coordinator.Status())
}

// FleetWorkersRequest is the wire shape for POST /v1/fleet/workers: the
// full replacement member list, each entry a worker base URL (which is
// also its ring name, so placement survives coordinator restarts).
type FleetWorkersRequest struct {
	Workers []string `json:"workers"`
}

// handleFleetWorkers replaces the fleet's member set live: in-flight
// runs finish on the epoch they started with, the next run places on
// the new one. Rejected sets (empty, duplicate names) leave the current
// epoch untouched and answer 400. Registered only in coordinator mode
// with a WorkerDialer.
func (s *Server) handleFleetWorkers(w http.ResponseWriter, r *http.Request) {
	var req FleetWorkersRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	workers := make([]dist.Worker, 0, len(req.Workers))
	for _, raw := range req.Workers {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		workers = append(workers, dist.Worker{Name: name, Caller: s.cfg.WorkerDialer(name)})
	}
	if err := s.cfg.Coordinator.SetWorkers(workers); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.cfg.Coordinator.Status()
	if s.log != nil {
		s.log.Info("fleet workers replaced", "workers", st.Size, "epoch", st.Epoch)
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if err := validateSources(req.OldSources); err != nil {
		writeError(w, http.StatusBadRequest, "old_sources: %v", err)
		return
	}
	if err := validateSources(req.NewSources); err != nil {
		writeError(w, http.StatusBadRequest, "new_sources: %v", err)
		return
	}
	opts, err := s.buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type diffOut struct {
		drifts []deviant.Drift
		res    *deviant.Result
	}
	v, status, msg := s.runAnalysis(r.Context(), func(ctx context.Context) (any, error) {
		drifts, res, err := deviant.Diff(req.OldSources, req.NewSources, opts)
		if err != nil {
			return nil, err
		}
		return diffOut{drifts, res}, nil
	})
	if status != 0 {
		s.writeFailure(w, status, msg)
		return
	}
	out := v.(diffOut)
	out.res.RecordMetrics(s.reg)
	drifts := make([]JSONDrift, len(out.drifts))
	for i, d := range out.drifts {
		drifts[i] = JSONDrift{Kind: d.Kind, Func: d.Func, Pos: d.Pos.String(), Msg: d.Msg}
	}
	writeJSON(w, http.StatusOK, DiffResponse{
		Drifts: drifts,
		New:    render(out.res, countUnits(req.NewSources), req.Options),
	})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := s.lastRules
	s.mu.Unlock()
	if resp == nil {
		writeJSON(w, http.StatusOK, RulesResponse{Rules: []JSONRule{}})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /healthz body: liveness plus the binary's build
// identity, so fleet tooling can tell which revision answered.
type HealthResponse struct {
	Status string    `json:"status"`
	Build  obs.Build `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining", Build: s.build})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Build: s.build})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}
