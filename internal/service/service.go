// Package service implements deviantd's HTTP/JSON API: a resident
// analysis server that runs requests through the parallel pipeline with
// a shared content-addressed snapshot store, so repeated analyses of
// near-identical trees only pay the frontend for the units that changed.
//
// Endpoints:
//
//	POST /v1/analyze  analyze an in-memory source tree
//	POST /v1/diff     §4.2 cross-version check of two trees
//	GET  /v1/rules    derived rule instances from the last analysis
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     Prometheus-style counters, incl. snapshot stats
//
// Admission control is two-level: at most MaxConcurrent analyses run at
// once, at most QueueDepth more wait; beyond that requests are rejected
// immediately with 429 so clients back off instead of piling up. A
// request that waits or runs past Timeout gets 504 (its work completes in
// the background and still warms the snapshot store). SIGTERM handling
// lives in cmd/deviantd: it marks the server draining (healthz flips to
// 503, new analyses get 503) and lets http.Server.Shutdown wait for
// in-flight requests.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"deviant"
	"deviant/internal/report"
	"deviant/internal/snapshot"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxWorkers clamps the per-request worker budget (0 = NumCPU).
	MaxWorkers int
	// MaxConcurrent is how many analyses run at once (0 = 2).
	MaxConcurrent int
	// QueueDepth is how many requests may wait beyond the running ones
	// before new ones are rejected with 429 (0 = 8).
	QueueDepth int
	// Timeout bounds one request's queue wait plus analysis (0 = 60s).
	Timeout time.Duration
	// SnapshotUnits caps the snapshot store (0 = snapshot default).
	SnapshotUnits int
}

func (c Config) withDefaults() Config {
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.NumCPU()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// Server is the deviantd HTTP handler.
type Server struct {
	cfg   Config
	store *snapshot.Store
	mux   *http.ServeMux

	slots chan struct{} // admission: running + queued
	run   chan struct{} // running

	draining atomic.Bool

	requests  atomic.Int64 // analyses + diffs accepted
	rejected  atomic.Int64 // 429s
	timeouts  atomic.Int64 // 504s
	inflight  atomic.Int64
	analyseNs atomic.Int64 // cumulative analysis wall clock

	mu        sync.Mutex
	lastRules *rulesResponse
	analyses  int64 // completed analyze requests, ids /v1/rules snapshots
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		store: snapshot.NewStore(cfg.SnapshotUnits),
		mux:   http.NewServeMux(),
		slots: make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		run:   make(chan struct{}, cfg.MaxConcurrent),
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /v1/rules", s.handleRules)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the server into (or out of) drain mode: healthz
// reports 503 so load balancers stop routing here, and new analysis
// requests are refused while in-flight ones finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Store exposes the snapshot store (for stats in tests and cmd/deviantd).
func (s *Server) Store() *snapshot.Store { return s.store }

// requestOptions is the per-request analysis configuration, mirroring the
// CLI flags of the same names.
type requestOptions struct {
	Checkers string  `json:"checkers,omitempty"`
	P0       float64 `json:"p0,omitempty"`
	NoMemo   bool    `json:"no_memo,omitempty"`
	NoPrune  bool    `json:"no_prune,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Top      int     `json:"top,omitempty"`
	Trust    bool    `json:"trust,omitempty"`
}

type analyzeRequest struct {
	Sources map[string]string `json:"sources"`
	Options requestOptions    `json:"options"`
}

type diffRequest struct {
	OldSources map[string]string `json:"old_sources"`
	NewSources map[string]string `json:"new_sources"`
	Options    requestOptions    `json:"options"`
}

// analyzeResponse mirrors the CLI's -json output: the same summary
// fields and the same report.JSONReport shape, plus the run's snapshot
// reuse counters.
type analyzeResponse struct {
	Units       int                 `json:"units"`
	Functions   int                 `json:"functions"`
	Lines       int                 `json:"lines"`
	ParseErrors int                 `json:"parse_errors"`
	Reports     []report.JSONReport `json:"reports"`
	Snapshot    snapshot.RunStats   `json:"snapshot"`
}

type jsonDrift struct {
	Kind string `json:"kind"`
	Func string `json:"func"`
	Pos  string `json:"pos"`
	Msg  string `json:"msg"`
}

type diffResponse struct {
	Drifts []jsonDrift     `json:"drifts"`
	New    analyzeResponse `json:"new"`
}

type jsonRule struct {
	Kind     string  `json:"kind"` // pair | can-fail | lock
	A        string  `json:"a"`
	B        string  `json:"b,omitempty"`
	Checks   int     `json:"checks"`
	Examples int     `json:"examples"`
	Z        float64 `json:"z"`
}

type rulesResponse struct {
	Analysis int64      `json:"analysis"` // 0 until the first analyze
	Rules    []jsonRule `json:"rules"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// buildOptions maps request options onto core options, clamping the
// worker budget to the server's configured ceiling.
func (s *Server) buildOptions(ro requestOptions) (deviant.Options, error) {
	opts := deviant.DefaultOptions()
	if ro.Checkers != "" {
		c, err := deviant.ParseChecks(ro.Checkers)
		if err != nil {
			return opts, err
		}
		opts.Checks = c
	}
	if ro.P0 != 0 {
		if ro.P0 < 0 || ro.P0 >= 1 {
			return opts, fmt.Errorf("p0 %v out of range (0, 1)", ro.P0)
		}
		opts.P0 = ro.P0
	}
	opts.Memoize = !ro.NoMemo
	opts.DisableCrashPruning = ro.NoPrune
	opts.Workers = s.cfg.MaxWorkers
	if ro.Workers > 0 && ro.Workers < s.cfg.MaxWorkers {
		opts.Workers = ro.Workers
	}
	opts.Snapshot = s.store
	return opts, nil
}

// admit reserves capacity for one analysis. It returns a release func on
// success, or an HTTP status + message when the request cannot run.
func (s *Server) admit(ctx context.Context) (func(), int, string) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, "server is draining"
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.rejected.Add(1)
		return nil, http.StatusTooManyRequests, "queue full, retry later"
	}
	select {
	case s.run <- struct{}{}:
	case <-ctx.Done():
		<-s.slots
		s.timeouts.Add(1)
		return nil, http.StatusGatewayTimeout, "timed out waiting for a worker slot"
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.run
			<-s.slots
		})
	}, 0, ""
}

// runAnalysis executes fn under the admission tokens and the request
// timeout. On timeout the analysis keeps running in the background —
// still holding its run token, still warming the snapshot store — and
// the client gets 504.
func (s *Server) runAnalysis(ctx context.Context, fn func() (any, error)) (any, int, string) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	release, status, msg := s.admit(ctx)
	if release == nil {
		return nil, status, msg
	}
	s.requests.Add(1)
	s.inflight.Add(1)
	type outcome struct {
		v   any
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		defer s.inflight.Add(-1)
		t := time.Now()
		v, err := fn()
		s.analyseNs.Add(int64(time.Since(t)))
		done <- outcome{v, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			return nil, http.StatusInternalServerError, out.err.Error()
		}
		return out.v, 0, ""
	case <-ctx.Done():
		s.timeouts.Add(1)
		return nil, http.StatusGatewayTimeout, "analysis timed out"
	}
}

func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func validateSources(sources map[string]string) error {
	if len(sources) == 0 {
		return fmt.Errorf("no sources")
	}
	for name := range sources {
		if strings.HasSuffix(name, ".c") {
			return nil
		}
	}
	return fmt.Errorf("no .c translation units in sources")
}

// render converts a finished run into the wire shape, applying the
// request's presentation options (top, trust).
func render(res *deviant.Result, units int, ro requestOptions) analyzeResponse {
	ranked := res.Reports.Ranked()
	if ro.Trust {
		ranked = res.Reports.RankedWithTrust(res.Reports.TrustFromMustErrors())
	}
	if ro.Top > 0 && len(ranked) > ro.Top {
		ranked = ranked[:ro.Top]
	}
	reports := make([]report.JSONReport, len(ranked))
	for i := range ranked {
		reports[i] = report.ToJSON(i+1, &ranked[i])
	}
	return analyzeResponse{
		Units:       units,
		Functions:   res.FuncCount,
		Lines:       res.LineCount,
		ParseErrors: len(res.ParseErrors),
		Reports:     reports,
		Snapshot:    res.Snapshot,
	}
}

func countUnits(sources map[string]string) int {
	n := 0
	for name := range sources {
		if strings.HasSuffix(name, ".c") {
			n++
		}
	}
	return n
}

// rulesFrom flattens a result's derived rule instances, each kind in its
// own ranked order.
func rulesFrom(res *deviant.Result) []jsonRule {
	rules := []jsonRule{}
	for _, p := range res.Pairs {
		rules = append(rules, jsonRule{Kind: "pair", A: p.A, B: p.B,
			Checks: p.Checks, Examples: p.Examples(), Z: p.Z})
	}
	for _, d := range res.CanFail {
		rules = append(rules, jsonRule{Kind: "can-fail", A: d.Func,
			Checks: d.Checks, Examples: d.Examples(), Z: d.Z})
	}
	for _, b := range res.LockBindings {
		rules = append(rules, jsonRule{Kind: "lock", A: b.Lock, B: b.Var,
			Checks: b.Checks, Examples: b.Examples(), Z: b.Z})
	}
	return rules
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := validateSources(req.Sources); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := s.buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, status, msg := s.runAnalysis(r.Context(), func() (any, error) {
		return deviant.Analyze(req.Sources, opts)
	})
	if status != 0 {
		writeError(w, status, "%s", msg)
		return
	}
	res := v.(*deviant.Result)
	s.mu.Lock()
	s.analyses++
	s.lastRules = &rulesResponse{Analysis: s.analyses, Rules: rulesFrom(res)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, render(res, countUnits(req.Sources), req.Options))
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req diffRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := validateSources(req.OldSources); err != nil {
		writeError(w, http.StatusBadRequest, "old_sources: %v", err)
		return
	}
	if err := validateSources(req.NewSources); err != nil {
		writeError(w, http.StatusBadRequest, "new_sources: %v", err)
		return
	}
	opts, err := s.buildOptions(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type diffOut struct {
		drifts []deviant.Drift
		res    *deviant.Result
	}
	v, status, msg := s.runAnalysis(r.Context(), func() (any, error) {
		drifts, res, err := deviant.Diff(req.OldSources, req.NewSources, opts)
		if err != nil {
			return nil, err
		}
		return diffOut{drifts, res}, nil
	})
	if status != 0 {
		writeError(w, status, "%s", msg)
		return
	}
	out := v.(diffOut)
	drifts := make([]jsonDrift, len(out.drifts))
	for i, d := range out.drifts {
		drifts[i] = jsonDrift{Kind: d.Kind, Func: d.Func, Pos: d.Pos.String(), Msg: d.Msg}
	}
	writeJSON(w, http.StatusOK, diffResponse{
		Drifts: drifts,
		New:    render(out.res, countUnits(req.NewSources), req.Options),
	})
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := s.lastRules
	s.mu.Unlock()
	if resp == nil {
		writeJSON(w, http.StatusOK, rulesResponse{Rules: []jsonRule{}})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	metrics := map[string]int64{
		"deviantd_requests_total":          s.requests.Load(),
		"deviantd_requests_inflight":       s.inflight.Load(),
		"deviantd_requests_rejected_total": s.rejected.Load(),
		"deviantd_requests_timeout_total":  s.timeouts.Load(),
		"deviantd_analysis_seconds_total":  int64(time.Duration(s.analyseNs.Load()).Seconds()),
		"deviantd_snapshot_unit_hits":      st.UnitHits,
		"deviantd_snapshot_unit_misses":    st.UnitMisses,
		"deviantd_snapshot_evictions":      st.Evictions,
		"deviantd_snapshot_units":          int64(st.Units),
		"deviantd_snapshot_graphs":         int64(st.Graphs),
	}
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, metrics[name])
	}
}
