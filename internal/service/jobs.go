// Async job API: POST /v1/jobs queues an analysis and returns
// immediately with a job id; GET /v1/jobs/{id} polls its state;
// GET /v1/jobs/{id}/result serves the finished AnalyzeResponse with the
// exact bytes a synchronous /v1/analyze of the same tree would have
// produced; DELETE /v1/jobs/{id} cancels. Jobs are multi-tenant: the
// X-Deviant-Tenant header names the submitter, each tenant holds at
// most JobsPerTenant jobs in flight (429 beyond that), and the
// scheduler drains tenant queues round-robin so one chatty tenant
// cannot starve the others. Lifecycle events (job_submitted, job_start,
// job_end, job_cancel) land in the run journal keyed by job id, with
// the pipeline's own run events interleaved under the same key.
package service

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deviant"
	"deviant/internal/fault"
	"deviant/internal/obs"
)

// TenantHeader names the submitting tenant on job requests. Absent or
// unprintable values fall back to "default" — quotas still apply, they
// just pool the anonymous submitters together.
const TenantHeader = "X-Deviant-Tenant"

// Job states, as serialized on the wire.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobStatus is the wire shape for POST /v1/jobs, GET /v1/jobs/{id} and
// DELETE /v1/jobs/{id}. The result itself is NOT embedded — it has its
// own endpoint so its bytes can match a synchronous /v1/analyze exactly.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCanceled
}

// job is one queued or finished analysis.
type job struct {
	id     string
	tenant string
	req    AnalyzeRequest

	state    string
	errMsg   string
	respRaw  []byte             // encoded result body, exactly as served
	canceled bool               // cancel requested (may still be running)
	cancel   context.CancelFunc // non-nil while running
	journal  *obs.Journal       // keyed by job id, shared across lifecycle
	done     chan struct{}      // closed when the job reaches a terminal state
}

// status snapshots the wire view. Caller holds the manager lock.
func (j *job) statusLocked() JobStatus {
	return JobStatus{ID: j.id, Tenant: j.tenant, State: j.state, Error: j.errMsg}
}

// jobManager owns the queues, the scheduler workers and job retention.
type jobManager struct {
	s *Server

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string          // submission order, for bounded retention
	queues   map[string][]*job // per-tenant FIFO of queued jobs
	ring     []string          // tenants with queued work, round-robin
	next     int               // ring cursor
	queued   int               // jobs waiting across all tenants
	running  int               // jobs executing right now
	active   map[string]int    // per-tenant queued+running
	runHook  func(*job)        // test seam, called at job start when set
	stopping bool

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// newJobManager builds the manager and replays the job log's surviving
// entries before any worker starts: terminal jobs keep serving their
// persisted bytes, and jobs that were queued or running at crash time
// re-enter the queue — accepted work is promised work, so admission
// quotas do not apply to work that was already admitted once.
func newJobManager(s *Server, recovered []jobEntry) *jobManager {
	m := &jobManager{
		s:      s,
		jobs:   make(map[string]*job),
		queues: make(map[string][]*job),
		active: make(map[string]int),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	var maxID int64
	for i := range recovered {
		e := &recovered[i]
		if n := jobIDNum(e.ID); n > maxID {
			maxID = n
		}
		var journal *obs.Journal
		if s.cfg.JournalWriter != nil {
			journal = obs.NewJournal(s.cfg.JournalWriter, e.ID)
		}
		j := &job{
			id:      e.ID,
			tenant:  e.Tenant,
			req:     e.Req,
			journal: journal,
			done:    make(chan struct{}),
		}
		switch e.State {
		case JobDone:
			j.state, j.respRaw = JobDone, e.Resp
			close(j.done)
		case JobFailed:
			j.state, j.errMsg = JobFailed, e.ErrMsg
			close(j.done)
		case JobCanceled:
			j.state, j.canceled = JobCanceled, true
			close(j.done)
		default: // queued or running at crash time: re-run from the log
			j.state = JobQueued
			if _, ok := m.queues[j.tenant]; !ok {
				m.ring = append(m.ring, j.tenant)
			}
			m.queues[j.tenant] = append(m.queues[j.tenant], j)
			m.queued++
			m.active[j.tenant]++
			journal.Event("job_recovered",
				obs.A("tenant", j.tenant), obs.A("prior_state", e.State))
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
	}
	if maxID > 0 {
		// Recovered ids stay unique: fresh submissions continue the sequence.
		s.nextJobID.Store(maxID)
	}
	m.evictLocked() // no workers yet, so the lock is not needed
	for i := 0; i < s.cfg.JobWorkers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				j := m.pop()
				if j == nil {
					return
				}
				m.run(j)
			}
		}()
	}
	return m
}

// submit admits one job, or returns an HTTP status + message explaining
// the rejection (429 quota/queue pressure — both carry Retry-After).
func (m *jobManager) submit(id, tenant string, req AnalyzeRequest, journal *obs.Journal) (JobStatus, int, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopping {
		return JobStatus{}, http.StatusServiceUnavailable, "server is draining"
	}
	if m.active[tenant] >= m.s.cfg.JobsPerTenant {
		return JobStatus{}, http.StatusTooManyRequests,
			"tenant " + tenant + " has " + strconv.Itoa(m.active[tenant]) + " jobs in flight, retry later"
	}
	if m.queued >= m.s.cfg.JobQueueDepth {
		return JobStatus{}, http.StatusTooManyRequests, "job queue full, retry later"
	}
	j := &job{
		id:      id,
		tenant:  tenant,
		req:     req,
		state:   JobQueued,
		journal: journal,
		done:    make(chan struct{}),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	if _, ok := m.queues[tenant]; !ok {
		m.ring = append(m.ring, tenant)
	}
	m.queues[tenant] = append(m.queues[tenant], j)
	m.queued++
	m.active[tenant]++
	m.evictLocked()
	// Persist before the 202 leaves this function: once the client has
	// an accepted id, a crash must not lose the job. Holding the lock
	// orders this write before any later state the job-worker persists.
	m.persist(m.entryLocked(j))
	m.signal()
	return j.statusLocked(), 0, ""
}

// entryLocked snapshots j's durable state for the job log, or nil when
// no log is attached. Caller holds the manager lock.
func (m *jobManager) entryLocked(j *job) *jobEntry {
	if m.s.joblog == nil {
		return nil
	}
	return &jobEntry{ID: j.id, Tenant: j.tenant, State: j.state,
		ErrMsg: j.errMsg, Req: j.req, Resp: j.respRaw}
}

// persist writes one snapshot to the job log. A failing disk costs that
// job its durability, never the request: the in-memory job proceeds and
// the failure is logged.
func (m *jobManager) persist(e *jobEntry) {
	if e == nil {
		return
	}
	if err := m.s.joblog.write(e); err != nil && m.s.log != nil {
		m.s.log.Warn("job log write failed", "job", e.ID, "err", err.Error())
	}
}

// signal nudges an idle worker. Buffered by one: a dropped signal is
// fine because every worker re-checks the queue before blocking.
func (m *jobManager) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// evictLocked bounds retention: terminal jobs beyond JobHistory are
// forgotten, oldest first. Queued and running jobs are never evicted.
func (m *jobManager) evictLocked() {
	limit := m.s.cfg.JobHistory
	if len(m.jobs) <= limit {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if len(m.jobs) > limit && terminal(j.state) {
			delete(m.jobs, id)
			if m.s.joblog != nil {
				m.s.joblog.remove(id)
			}
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// pop blocks until a job is available (returned) or the manager stops
// (nil). Tenants are drained round-robin: after handing out one job the
// cursor advances, so a tenant with a deep queue yields between each of
// its jobs to every other tenant with work.
func (m *jobManager) pop() *job {
	for {
		m.mu.Lock()
		if j := m.dequeueLocked(); j != nil {
			if m.queued > 0 {
				m.signal() // more work: wake another idle worker
			}
			m.mu.Unlock()
			return j
		}
		m.mu.Unlock()
		select {
		case <-m.wake:
		case <-m.stop:
			return nil
		}
	}
}

func (m *jobManager) dequeueLocked() *job {
	if len(m.ring) == 0 {
		return nil
	}
	m.next %= len(m.ring)
	tenant := m.ring[m.next]
	q := m.queues[tenant]
	j := q[0]
	if len(q) == 1 {
		delete(m.queues, tenant)
		m.ring = append(m.ring[:m.next], m.ring[m.next+1:]...)
	} else {
		m.queues[tenant] = q[1:]
		m.next++
	}
	m.queued--
	m.running++
	j.state = JobRunning
	return j
}

// run executes one job to a terminal state. Cancellation mid-run is
// honored at the next observation point: the context aborts fleet
// scatters immediately, the deadline bounds local compute, and a
// cancel-flagged job discards its result instead of publishing it.
func (m *jobManager) run(j *job) {
	s := m.s
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	m.mu.Lock()
	j.cancel = cancel
	alreadyCanceled := j.canceled
	e := m.entryLocked(j) // state is running: a crash from here re-runs the job
	m.mu.Unlock()
	m.persist(e)
	j.journal.Event("job_start", obs.A("tenant", j.tenant))
	if m.runHook != nil {
		m.runHook(j)
	}

	var resp *AnalyzeResponse
	errMsg := ""
	if !alreadyCanceled {
		v, status, msg := func() (v any, status int, msg string) {
			defer func() {
				if p := recover(); p != nil {
					s.panics.Inc()
					v, status, msg = nil, http.StatusInternalServerError,
						"job worker panicked: "+fault.Redact(p)
				}
			}()
			fault.Trap("jobs", "run")
			opts, err := s.buildOptions(j.req.Options)
			if err != nil {
				return nil, http.StatusBadRequest, err.Error()
			}
			opts.Journal = j.journal
			opts.Deadline = time.Now().Add(s.cfg.Timeout)
			t := time.Now()
			var res *deviant.Result
			if c := s.cfg.Coordinator; c != nil {
				res, err = c.Run(ctx, j.req.Sources, opts, j.id)
			} else {
				res, err = deviant.Analyze(j.req.Sources, opts)
			}
			s.analyzeNs.Add(time.Since(t).Seconds())
			if err != nil {
				return nil, http.StatusInternalServerError, err.Error()
			}
			return res, 0, ""
		}()
		if status != 0 {
			errMsg = msg
		} else {
			res := v.(*deviant.Result)
			res.RecordMetrics(s.reg)
			s.mu.Lock()
			s.analyses++
			s.lastRules = &RulesResponse{Analysis: s.analyses, Rules: rulesFrom(res)}
			s.mu.Unlock()
			r := render(res, countUnits(j.req.Sources), j.req.Options)
			resp = &r
			j.journal.Event("rank",
				obs.A("reports", strconv.Itoa(len(r.Reports))),
				obs.A("functions", strconv.Itoa(res.FuncCount)),
				obs.A("parse_errors", strconv.Itoa(len(res.ParseErrors))))
		}
	}
	cancel()

	// Encode the result body outside the lock. These are the exact bytes
	// the result endpoint serves — and the exact bytes the job log
	// persists, so a restart cannot perturb a finished result.
	var respRaw []byte
	if resp != nil {
		raw, err := encodeBody(*resp)
		if err != nil {
			errMsg = "encode result: " + err.Error()
		} else {
			respRaw = raw
		}
	}

	m.mu.Lock()
	m.running--
	m.active[j.tenant]--
	j.cancel = nil
	switch {
	case j.canceled:
		j.state = JobCanceled
		s.jobsCanceled.Inc()
	case errMsg != "":
		j.state, j.errMsg = JobFailed, errMsg
		s.jobsFailed.Inc()
	default:
		j.state, j.respRaw = JobDone, respRaw
		s.jobsCompleted.Inc()
	}
	state := j.state
	e = m.entryLocked(j)
	close(j.done)
	m.mu.Unlock()
	m.persist(e)
	j.journal.Event("job_end", obs.A("state", state))
}

// cancelJob cancels a job. A queued job is removed from its tenant's
// queue and terminal immediately; a running one is flagged and its
// context canceled — the worker marks it canceled when it gets control
// back. Terminal jobs answer 409: there is nothing left to cancel.
func (m *jobManager) cancelJob(id string) (JobStatus, int, string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobStatus{}, http.StatusNotFound, "no such job " + id
	}
	var e *jobEntry
	switch j.state {
	case JobQueued:
		m.removeQueuedLocked(j)
		j.state = JobCanceled
		j.canceled = true
		m.queued--
		m.active[j.tenant]--
		m.s.jobsCanceled.Inc()
		e = m.entryLocked(j)
		close(j.done)
	case JobRunning:
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	default:
		st := j.statusLocked()
		m.mu.Unlock()
		return st, http.StatusConflict, "job " + id + " already " + st.State
	}
	st := j.statusLocked()
	if st.State == JobRunning {
		st.State = JobCanceled // the client's view: this job will not publish
	}
	m.mu.Unlock()
	m.persist(e)
	j.journal.Event("job_cancel", obs.A("tenant", j.tenant))
	return st, 0, ""
}

// removeQueuedLocked unlinks a queued job from its tenant FIFO and, when
// that empties the queue, retires the tenant from the scheduling ring.
func (m *jobManager) removeQueuedLocked(j *job) {
	q := m.queues[j.tenant]
	for i := range q {
		if q[i] == j {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(m.queues, j.tenant)
		for i := range m.ring {
			if m.ring[i] == j.tenant {
				m.ring = append(m.ring[:i], m.ring[i+1:]...)
				if m.next > i {
					m.next--
				}
				break
			}
		}
	} else {
		m.queues[j.tenant] = q
	}
}

// get returns a point-in-time status.
func (m *jobManager) get(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	// A cancel-flagged running job still reports "running": the state
	// only flips to canceled when the worker actually relinquishes it,
	// so "terminal" on the wire always means "no longer consuming a
	// worker".
	return j.statusLocked(), true
}

// result returns the finished response's encoded body, or an HTTP status
// explaining why there is none (yet).
func (m *jobManager) result(id string) ([]byte, int, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, http.StatusNotFound, "no such job " + id
	}
	switch {
	case j.state == JobDone:
		return j.respRaw, 0, ""
	case j.state == JobFailed:
		return nil, http.StatusInternalServerError, j.errMsg
	case j.state == JobCanceled || j.canceled:
		return nil, http.StatusConflict, "job " + id + " canceled"
	default:
		return nil, http.StatusConflict, "job " + id + " is " + j.state + ", retry later"
	}
}

// counts samples (queued, running) for the metrics gauges.
func (m *jobManager) counts() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}

// StopJobs drains the job subsystem: new submissions are refused with
// 503, already-accepted jobs (queued and running) are allowed to finish
// — accepted work is promised work — and the call returns once every
// job is terminal and the workers have exited. If ctx expires first,
// everything still pending is canceled and ctx.Err() is returned;
// finished results remain fetchable either way.
func (s *Server) StopJobs(ctx context.Context) error {
	m := s.jobs
	m.mu.Lock()
	m.stopping = true
	m.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		queued, running := m.counts()
		if queued == 0 && running == 0 {
			close(m.stop)
			m.wg.Wait()
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			m.cancelAll()
			close(m.stop)
			return ctx.Err()
		}
	}
}

// cancelAll cancels every non-terminal job (drain deadline expired).
func (m *jobManager) cancelAll() {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id, j := range m.jobs {
		if !terminal(j.state) {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	for _, id := range ids {
		m.cancelJob(id)
	}
}

// tenantOf extracts the sanitized tenant name from a request.
func tenantOf(r *http.Request) string {
	if t := sanitizeRequestID(r.Header.Get(TenantHeader)); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeFailure(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req AnalyzeRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if err := validateSources(req.Sources); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := s.buildOptions(req.Options); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := tenantOf(r)
	id := "job-" + strconv.FormatInt(s.nextJobID.Add(1), 10)
	var journal *obs.Journal
	if s.cfg.JournalWriter != nil {
		journal = obs.NewJournal(s.cfg.JournalWriter, id)
	}
	st, status, msg := s.jobs.submit(id, tenant, req, journal)
	if status != 0 {
		s.jobsRejected.Inc()
		s.writeFailure(w, status, msg)
		return
	}
	s.jobsSubmitted.Inc()
	journal.Event("job_submitted",
		obs.A("tenant", tenant),
		obs.A("units", strconv.Itoa(countUnits(req.Sources))))
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult serves the finished analysis: the body bytes were
// encoded once at completion time with the same encoder as
// POST /v1/analyze, so a job's result is byte-identical to the
// synchronous answer for the same tree — before and after any restart.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	body, status, msg := s.jobs.result(r.PathValue("id"))
	if status != 0 {
		writeError(w, status, "%s", msg)
		return
	}
	writeRawJSON(w, http.StatusOK, body)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, status, msg := s.jobs.cancelJob(r.PathValue("id"))
	if status != 0 {
		writeError(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
