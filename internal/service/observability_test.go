package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deviant/internal/dist"
)

// newFleetServer builds a coordinator Server over n in-process worker
// Servers wired through their HTTP handlers.
func newFleetServer(t *testing.T, n int, cfg Config) *Server {
	t.Helper()
	workers := make([]dist.Worker, n)
	for i := range workers {
		workers[i] = dist.Worker{
			Name:   fmt.Sprintf("w%d", i),
			Caller: httpShardCaller{h: New(Config{})},
		}
	}
	coord, err := dist.NewCoordinator(workers)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Coordinator = coord
	return New(cfg)
}

// TestFleetStatusEndpoint pins GET /v1/fleet/status: a coordinator
// serves ring composition and per-worker health (all healthy after a
// clean run, each with a scatter latency), and a standalone server does
// not expose the route at all.
func TestFleetStatusEndpoint(t *testing.T) {
	fleet := newFleetServer(t, 3, Config{})
	analyze(t, fleet, svcSources())

	rr, body := getPath(t, fleet, "/v1/fleet/status")
	if rr.Code != http.StatusOK {
		t.Fatalf("fleet status: %d: %s", rr.Code, body)
	}
	var st dist.FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("fleet status: %v\n%s", err, body)
	}
	if st.Size != 3 || st.Healthy != 3 || len(st.Workers) != 3 {
		t.Fatalf("fleet status = %+v, want 3/3 healthy", st)
	}
	scattered := 0
	for i, w := range st.Workers {
		if w.Name != fmt.Sprintf("w%d", i) {
			t.Fatalf("workers not sorted: %+v", st.Workers)
		}
		if !w.Healthy || w.LastError != "" {
			t.Fatalf("worker %s unhealthy after clean run: %+v", w.Name, w)
		}
		if w.LastScatterSeconds > 0 {
			scattered++
		}
	}
	if scattered == 0 {
		t.Fatal("no worker recorded a scatter latency")
	}

	single := New(Config{})
	if rr, _ := getPath(t, single, "/v1/fleet/status"); rr.Code != http.StatusNotFound {
		t.Fatalf("standalone server serves fleet status: %d", rr.Code)
	}
}

// TestFederationViaShardResponses checks the piggyback half of metrics
// federation: worker metric samples ride shard responses, so after one
// fleet run — no prober involved — the coordinator's /metrics carries
// fleet_-rolled-up families labeled by worker, including the workers'
// go_* self-metrics.
func TestFederationViaShardResponses(t *testing.T) {
	fleet := newFleetServer(t, 2, Config{})
	analyze(t, fleet, svcSources())

	rr, body := getPath(t, fleet, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rr.Code)
	}
	for _, want := range []string{
		`fleet_go_goroutines{worker="w`,
		`fleet_deviantd_build_info`,
		`fleet_deviantd_requests_total`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}
}

// TestRuntimeSelfMetrics pins the go_* families and the build-info
// gauge every deviantd role serves.
func TestRuntimeSelfMetrics(t *testing.T) {
	s := New(Config{})
	rr, body := getPath(t, s, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rr.Code)
	}
	for _, want := range []string{
		"go_goroutines ",
		"go_heap_alloc_bytes ",
		"go_gc_cycles_total ",
		`go_sched_latency_seconds{q="0.99"}`,
		`deviantd_build_info{`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q:\n%s", want, body[:min(len(body), 600)])
		}
	}
}

// journalLine is one decoded run-journal event.
type journalLine struct {
	Run   string `json:"run"`
	Seq   int    `json:"seq"`
	Event string `json:"event"`
}

func decodeJournal(t *testing.T, buf *bytes.Buffer) []journalLine {
	t.Helper()
	var lines []journalLine
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if l == "" {
			continue
		}
		var jl journalLine
		if err := json.Unmarshal([]byte(l), &jl); err != nil {
			t.Fatalf("journal line not JSON: %v\n%s", err, l)
		}
		lines = append(lines, jl)
	}
	return lines
}

// TestRunJournalRequestID pins the run-journal contract on a daemon: a
// journaled /v1/analyze emits run_start → rank → run_end, and every
// line carries the adopted X-Deviant-Request-Id as its run key.
func TestRunJournalRequestID(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{JournalWriter: &buf})

	payload, err := json.Marshal(AnalyzeRequest{Sources: svcSources()})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(payload))
	req.Header.Set(dist.RequestIDHeader, "jr-e2e-0001")
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze: %d: %s", rr.Code, rr.Body.Bytes())
	}

	lines := decodeJournal(t, &buf)
	if len(lines) == 0 {
		t.Fatal("journaled run wrote no events")
	}
	for i, l := range lines {
		if l.Run != "jr-e2e-0001" {
			t.Fatalf("line %d run = %q, want the adopted request id", i, l.Run)
		}
		if l.Seq != i {
			t.Fatalf("line %d seq = %d, want monotonic from 0", i, l.Seq)
		}
	}
	if lines[0].Event != "run_start" || lines[len(lines)-1].Event != "run_end" {
		t.Fatalf("journal not bracketed by run_start/run_end: %+v", lines)
	}
	events := map[string]bool{}
	for _, l := range lines {
		events[l.Event] = true
	}
	if !events["rank"] {
		t.Fatalf("journal missing rank event: %+v", lines)
	}
}

// TestRunJournalCoordinator checks the fleet vocabulary: a coordinator
// run journals placement, shard lifecycle and merge between run_start
// and run_end, still all under one request id.
func TestRunJournalCoordinator(t *testing.T) {
	var buf bytes.Buffer
	fleet := newFleetServer(t, 2, Config{JournalWriter: &buf})

	payload, err := json.Marshal(AnalyzeRequest{Sources: svcSources()})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(payload))
	req.Header.Set(dist.RequestIDHeader, "jr-fleet-0001")
	rr := httptest.NewRecorder()
	fleet.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze: %d: %s", rr.Code, rr.Body.Bytes())
	}

	lines := decodeJournal(t, &buf)
	events := map[string]int{}
	for _, l := range lines {
		if l.Run != "jr-fleet-0001" {
			t.Fatalf("journal line under wrong run: %+v", l)
		}
		events[l.Event]++
	}
	if events["run_start"] != 1 || events["run_end"] != 1 || events["merge"] != 1 {
		t.Fatalf("event counts: %v", events)
	}
	if events["placement"] == 0 || events["shard_sent"] == 0 ||
		events["shard_sent"] != events["shard_returned"] {
		t.Fatalf("fleet lifecycle events missing or unbalanced: %v", events)
	}
}
