package service

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJobLogRoundTrip pins the on-disk format: entries survive a
// close/reopen cycle in submission order with every field intact.
func TestJobLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, entries, corrupt, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || corrupt != 0 {
		t.Fatalf("fresh dir: %d entries, %d corrupt", len(entries), corrupt)
	}
	want := []jobEntry{
		{ID: "job-2", Tenant: "acme", State: JobDone,
			Req:  AnalyzeRequest{Sources: map[string]string{"a.c": "int f();"}},
			Resp: []byte(`{"units":1}` + "\n")},
		{ID: "job-10", Tenant: "beta", State: JobQueued,
			Req: AnalyzeRequest{Sources: map[string]string{"b.c": "int g();"}}},
		{ID: "job-3", Tenant: "acme", State: JobFailed, ErrMsg: "boom"},
	}
	for i := range want {
		if err := l.write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	_, got, corrupt, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("clean log reported %d corrupt entries", corrupt)
	}
	// Numeric id order, not lexicographic: job-10 sorts after job-3.
	order := make([]string, len(got))
	for i := range got {
		order[i] = got[i].ID
	}
	if strings.Join(order, ",") != "job-2,job-3,job-10" {
		t.Fatalf("recovery order %v", order)
	}
	if got[0].Tenant != "acme" || !bytes.Equal(got[0].Resp, want[0].Resp) ||
		got[0].Req.Sources["a.c"] != "int f();" {
		t.Fatalf("round-tripped entry mangled: %+v", got[0])
	}
	if got[1].ErrMsg != "boom" {
		t.Fatalf("error message lost: %+v", got[1])
	}
}

// TestJobLogSweepsTornAndCorrupt pins the self-healing startup sweep: a
// temp file from a crashed writer, a bit-flipped entry, a truncated
// entry and a misnamed entry are all removed, and only they are — the
// valid entry survives.
func TestJobLogSweepsTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := jobEntry{ID: "job-1", Tenant: "t", State: JobQueued,
		Req: AnalyzeRequest{Sources: map[string]string{"a.c": "int f();"}}}
	if err := l.write(&good); err != nil {
		t.Fatal(err)
	}
	if err := l.write(&jobEntry{ID: "job-2", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	if err := l.write(&jobEntry{ID: "job-3", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	if err := l.write(&jobEntry{ID: "job-4", State: JobQueued}); err != nil {
		t.Fatal(err)
	}
	// Torn write: a temp file the crashed writer never renamed.
	if err := os.WriteFile(filepath.Join(dir, jobTmpPrefix+"xyz"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Bit flip inside job-2's payload.
	p2 := filepath.Join(dir, "job-2"+jobSuffix)
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncation of job-3 mid-checksum.
	p3 := filepath.Join(dir, "job-3"+jobSuffix)
	if err := os.Truncate(p3, int64(len(jobMagic)+4)); err != nil {
		t.Fatal(err)
	}
	// job-4's entry renamed to a different id: name/content mismatch.
	if err := os.Rename(filepath.Join(dir, "job-4"+jobSuffix),
		filepath.Join(dir, "job-9"+jobSuffix)); err != nil {
		t.Fatal(err)
	}

	_, entries, corrupt, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "job-1" {
		t.Fatalf("survivors %+v, want only job-1", entries)
	}
	if corrupt != 3 {
		t.Fatalf("corrupt count %d, want 3", corrupt)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || left[0].Name() != "job-1"+jobSuffix {
		names := make([]string, len(left))
		for i := range left {
			names[i] = left[i].Name()
		}
		t.Fatalf("sweep left %v", names)
	}
}

// TestJobRecoveryDoneResultByteIdentical is the durability half of the
// tentpole contract: finish a job, then bring up a fresh server over the
// same job dir — the "crashed and restarted" daemon — and the result
// endpoint must serve the exact bytes it served before the restart.
func TestJobRecoveryDoneResultByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{JobDir: dir})
	st, rr := submitJob(t, s1, "acme", svcSources())
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.Bytes())
	}
	if got := waitJob(t, s1, st.ID); got.State != JobDone {
		t.Fatalf("job ended %+v, want done", got)
	}
	before := getJSON(t, s1, "/v1/jobs/"+st.ID+"/result", nil)
	if before.Code != http.StatusOK {
		t.Fatalf("result before restart: %d", before.Code)
	}

	s2 := New(Config{JobDir: dir}) // restart: same log, fresh process state
	var got JobStatus
	if rr := getJSON(t, s2, "/v1/jobs/"+st.ID, &got); rr.Code != http.StatusOK {
		t.Fatalf("status after restart: %d: %s", rr.Code, rr.Body.Bytes())
	}
	if got.State != JobDone || got.Tenant != "acme" {
		t.Fatalf("recovered status %+v, want done/acme", got)
	}
	after := getJSON(t, s2, "/v1/jobs/"+st.ID+"/result", nil)
	if after.Code != http.StatusOK {
		t.Fatalf("result after restart: %d", after.Code)
	}
	if !bytes.Equal(before.Body.Bytes(), after.Body.Bytes()) {
		t.Fatalf("result changed across restart\n--- before ---\n%s\n--- after ---\n%s",
			before.Body.Bytes(), after.Body.Bytes())
	}
}

// TestJobRecoveryRerunsInterruptedJobs covers the crash-mid-flight half:
// entries left in queued and running state (what a SIGKILL leaves
// behind) are re-admitted on startup, run to completion, and the re-run
// result is byte-identical to a never-interrupted run of the same tree
// at equal snapshot warmth. The id sequence also continues past the
// recovered ids, so fresh submissions never collide.
func TestJobRecoveryRerunsInterruptedJobs(t *testing.T) {
	// The uninterrupted reference: a cold server runs the tree once.
	ref := New(Config{})
	refSt, _ := submitJob(t, ref, "acme", svcSources())
	waitJob(t, ref, refSt.ID)
	want := getJSON(t, ref, "/v1/jobs/"+refSt.ID+"/result", nil)

	// Forge the crash remains: one job caught queued, one caught running.
	dir := t.TempDir()
	l, _, _, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := AnalyzeRequest{Sources: svcSources()}
	if err := l.write(&jobEntry{ID: "job-4", Tenant: "acme", State: JobQueued, Req: req}); err != nil {
		t.Fatal(err)
	}
	if err := l.write(&jobEntry{ID: "job-7", Tenant: "beta", State: JobRunning, Req: req}); err != nil {
		t.Fatal(err)
	}

	s := New(Config{JobDir: dir})
	for _, id := range []string{"job-4", "job-7"} {
		if got := waitJob(t, s, id); got.State != JobDone {
			t.Fatalf("recovered %s ended %+v, want done", id, got)
		}
	}
	// job-4 ran on a cold store like the reference; job-7 reuses its
	// snapshots, so only job-4 is byte-comparable to the reference.
	res := getJSON(t, s, "/v1/jobs/job-4/result", nil)
	if !bytes.Equal(res.Body.Bytes(), want.Body.Bytes()) {
		t.Fatalf("re-run result differs from uninterrupted run\n--- rerun ---\n%s\n--- ref ---\n%s",
			res.Body.Bytes(), want.Body.Bytes())
	}

	st, rr := submitJob(t, s, "acme", svcSources())
	if rr.Code != http.StatusAccepted {
		t.Fatalf("post-recovery submit: %d", rr.Code)
	}
	if st.ID != "job-8" {
		t.Fatalf("id sequence did not continue past recovery: got %s, want job-8", st.ID)
	}
}

// TestJobRecoveryTerminalStates pins that failed and canceled jobs keep
// answering with their terminal state after a restart instead of being
// re-run or forgotten.
func TestJobRecoveryTerminalStates(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := openJobLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.write(&jobEntry{ID: "job-1", Tenant: "t", State: JobFailed, ErrMsg: "checker panic"}); err != nil {
		t.Fatal(err)
	}
	if err := l.write(&jobEntry{ID: "job-2", Tenant: "t", State: JobCanceled}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{JobDir: dir})
	var st JobStatus
	getJSON(t, s, "/v1/jobs/job-1", &st)
	if st.State != JobFailed || st.Error != "checker panic" {
		t.Fatalf("recovered failed job: %+v", st)
	}
	if rr := getJSON(t, s, "/v1/jobs/job-1/result", nil); rr.Code != http.StatusInternalServerError {
		t.Fatalf("failed job result: %d, want 500", rr.Code)
	}
	getJSON(t, s, "/v1/jobs/job-2", &st)
	if st.State != JobCanceled {
		t.Fatalf("recovered canceled job: %+v", st)
	}
	if rr := getJSON(t, s, "/v1/jobs/job-2/result", nil); rr.Code != http.StatusConflict {
		t.Fatalf("canceled job result: %d, want 409", rr.Code)
	}
}

// TestJobLogEvictionRemovesFiles keeps the log bounded with retention:
// when JobHistory evicts a terminal job from memory, its file goes too —
// otherwise every restart would resurrect jobs the server had forgotten.
func TestJobLogEvictionRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{JobDir: dir, JobHistory: 1})
	first, _ := submitJob(t, s, "acme", svcSources())
	waitJob(t, s, first.ID)
	second, _ := submitJob(t, s, "acme", svcSources())
	waitJob(t, s, second.ID)
	// Submitting the second job evicted the finished first one.
	if rr := getJSON(t, s, "/v1/jobs/"+first.ID, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("evicted job still answers %d", rr.Code)
	}
	if _, err := os.Stat(filepath.Join(dir, first.ID+jobSuffix)); !os.IsNotExist(err) {
		t.Fatalf("evicted job's log entry still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, second.ID+jobSuffix)); err != nil {
		t.Fatalf("retained job's log entry missing: %v", err)
	}
}
