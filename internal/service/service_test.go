package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const svcHeader = `
#define NULL 0
struct dev { int count; int *buf; struct lock *lk; };
struct lock { int held; };
void *kmalloc(int n);
void kfree(void *p);
void printk(const char *fmt, ...);
void spin_lock(struct lock *l);
void spin_unlock(struct lock *l);
`

// svcSources mirrors the core incremental corpus: cross-unit statistical
// signal so editing one unit perturbs global ranking.
func svcSources() map[string]string {
	return map[string]string{
		"include/kernel.h": svcHeader,
		"alpha.c": `
#include "kernel.h"
int alpha_init(struct dev *d) {
	int *b = kmalloc(16);
	if (!b)
		return -1;
	b[0] = 0;
	return 0;
}
int alpha_reset(struct dev *d) {
	if (d == NULL)
		printk("reset %d\n", d->count);
	return 0;
}
`,
		"beta.c": `
#include "kernel.h"
int beta_grow(struct dev *d, int n) {
	int *b = kmalloc(n);
	if (!b)
		return -1;
	b[0] = 0;
	return 0;
}
void beta_work(struct dev *d) {
	spin_lock(d->lk);
	d->count++;
	spin_unlock(d->lk);
}
`,
		"gamma.c": `
#include "kernel.h"
int gamma_open(struct dev *d) {
	int *b = kmalloc(8);
	b[0] = 1;
	return 0;
}
`,
	}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func getPath(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func analyze(t *testing.T, s *Server, sources map[string]string) AnalyzeResponse {
	t.Helper()
	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: sources})
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", rr.Code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("analyze: %v\n%s", err, body)
	}
	return resp
}

// TestAnalyzeIncrementalDeterminism is the HTTP-level acceptance pin:
// after editing 1 of 3 units, a warm server re-parses only that unit and
// its ranked reports are byte-identical to a cold server's.
func TestAnalyzeIncrementalDeterminism(t *testing.T) {
	warm := New(Config{})

	v1 := svcSources()
	r1 := analyze(t, warm, v1)
	if r1.Snapshot.UnitsParsed != 3 || r1.Snapshot.UnitsReused != 0 {
		t.Fatalf("cold fill: %+v, want 3 parsed / 0 reused", r1.Snapshot)
	}
	if r1.Units != 3 || r1.Functions != 5 || r1.ParseErrors != 0 {
		t.Fatalf("summary: %+v", r1)
	}
	if len(r1.Reports) == 0 {
		t.Fatal("corpus should produce reports")
	}

	v2 := svcSources()
	v2["gamma.c"] = strings.Replace(v2["gamma.c"],
		"int *b = kmalloc(8);", "int *b = kmalloc(8);\n\tif (!b)\n\t\treturn -1;", 1)
	r2 := analyze(t, warm, v2)
	if r2.Snapshot.UnitsReused != 2 || r2.Snapshot.UnitsParsed != 1 {
		t.Fatalf("warm run: %+v, want 2 reused / 1 parsed", r2.Snapshot)
	}
	if r2.Snapshot.GraphsReused == 0 {
		t.Fatalf("warm run rebuilt every graph: %+v", r2.Snapshot)
	}

	cold := analyze(t, New(Config{}), v2)
	warmReports, _ := json.Marshal(r2.Reports)
	coldReports, _ := json.Marshal(cold.Reports)
	if !bytes.Equal(warmReports, coldReports) {
		t.Errorf("warm reports diverge from cold run:\n--- warm\n%s\n--- cold\n%s",
			warmReports, coldReports)
	}

	v1Reports, _ := json.Marshal(r1.Reports)
	if bytes.Equal(v1Reports, warmReports) {
		t.Error("editing gamma.c did not change reports; corpus too weak")
	}
}

func TestAnalyzeOptions(t *testing.T) {
	s := New(Config{})
	base := analyze(t, s, svcSources())

	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{
		Sources: svcSources(),
		Options: RequestOptions{Checkers: "null"},
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, body)
	}
	var sub AnalyzeResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if len(sub.Reports) >= len(base.Reports) {
		t.Errorf("checkers=null should shrink the report list: %d vs %d",
			len(sub.Reports), len(base.Reports))
	}
	for _, r := range sub.Reports {
		if !strings.HasPrefix(r.Checker, "null") {
			t.Errorf("checkers=null leaked a %s report", r.Checker)
		}
	}

	rr, body = postJSON(t, s, "/v1/analyze", AnalyzeRequest{
		Sources: svcSources(),
		Options: RequestOptions{Top: 1},
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, body)
	}
	var topped AnalyzeResponse
	if err := json.Unmarshal(body, &topped); err != nil {
		t.Fatal(err)
	}
	if len(topped.Reports) != 1 {
		t.Errorf("top=1: got %d reports", len(topped.Reports))
	}
}

func TestDiffEndpoint(t *testing.T) {
	s := New(Config{})
	oldSrc := svcSources()
	newSrc := svcSources()
	newSrc["alpha.c"] = strings.Replace(newSrc["alpha.c"],
		"\tif (d == NULL)\n\t\tprintk", "\tprintk", 1)

	rr, body := postJSON(t, s, "/v1/diff", DiffRequest{
		OldSources: oldSrc, NewSources: newSrc,
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("diff: status %d: %s", rr.Code, body)
	}
	var resp DiffResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.New.Units != 3 || len(resp.New.Reports) == 0 {
		t.Errorf("diff new-version summary missing: %+v", resp.New)
	}
	// Both versions flowed through the shared snapshot store: the second
	// analysis reuses the two untouched units.
	if resp.New.Snapshot.UnitsReused != 2 {
		t.Errorf("diff new run should reuse 2 units from the old run: %+v", resp.New.Snapshot)
	}
}

func TestRulesEndpoint(t *testing.T) {
	s := New(Config{})
	rr, body := getPath(t, s, "/v1/rules")
	if rr.Code != http.StatusOK {
		t.Fatalf("rules: status %d", rr.Code)
	}
	var empty RulesResponse
	if err := json.Unmarshal(body, &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Analysis != 0 || len(empty.Rules) != 0 {
		t.Errorf("rules before any analysis: %+v", empty)
	}

	analyze(t, s, svcSources())
	rr, body = getPath(t, s, "/v1/rules")
	if rr.Code != http.StatusOK {
		t.Fatalf("rules: status %d", rr.Code)
	}
	var resp RulesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Analysis != 1 {
		t.Errorf("analysis id = %d, want 1", resp.Analysis)
	}
	var canFail bool
	for _, r := range resp.Rules {
		if r.Kind == "can-fail" && r.A == "kmalloc" {
			canFail = true
			if r.Checks == 0 {
				t.Errorf("can-fail kmalloc has no evidence: %+v", r)
			}
		}
	}
	if !canFail {
		t.Errorf("derived rules missing can-fail kmalloc: %+v", resp.Rules)
	}
}

func TestBackpressure(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	// Fill both admission slots (one running, one queued).
	s.slots <- struct{}{}
	s.slots <- struct{}{}

	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", rr.Code, body)
	}
	if s.rejected.Value() != 1 {
		t.Errorf("rejected counter = %v, want 1", s.rejected.Value())
	}
	<-s.slots
	<-s.slots

	if got := analyze(t, s, svcSources()); got.Units != 3 {
		t.Errorf("after drain, analyze should succeed: %+v", got)
	}
}

func TestQueueTimeout(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, Timeout: 50 * time.Millisecond})
	// Saturate the run slots so the next request waits in queue forever.
	s.run <- struct{}{}

	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("queued past timeout: status %d, want 504: %s", rr.Code, body)
	}
	if s.timeouts.Value() == 0 {
		t.Error("timeout counter not incremented")
	}
	<-s.run
}

func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Config{})
	rr, _ := getPath(t, s, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rr.Code)
	}

	s.SetDraining(true)
	rr, _ = getPath(t, s, "/healthz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", rr.Code)
	}
	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("draining analyze: status %d, want 503: %s", rr.Code, body)
	}

	s.SetDraining(false)
	if got := analyze(t, s, svcSources()); got.Units != 3 {
		t.Errorf("undrained analyze should succeed: %+v", got)
	}
}

func TestMetrics(t *testing.T) {
	s := New(Config{})
	analyze(t, s, svcSources())
	analyze(t, s, svcSources()) // warm: all units reused

	rr, body := getPath(t, s, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rr.Code)
	}
	out := string(body)
	for _, want := range []string{
		// Daemon counters with HELP/TYPE metadata.
		"# HELP deviantd_requests_total ",
		"# TYPE deviantd_requests_total counter",
		"deviantd_requests_total 2",
		"deviantd_snapshot_unit_hits 3",
		"deviantd_snapshot_unit_misses 3",
		"deviantd_snapshot_units 3",
		"# TYPE deviantd_queue_depth gauge",
		"deviantd_queue_depth 0",
		// Per-endpoint request latency histogram: both analyze requests
		// must land in some bucket and the +Inf bucket must equal the
		// request count.
		"# TYPE deviantd_request_seconds histogram",
		`deviantd_request_seconds_bucket{endpoint="analyze",le="+Inf"} 2`,
		`deviantd_request_seconds_count{endpoint="analyze"} 2`,
		// Per-run pipeline metrics folded in via Result.RecordMetrics.
		"# TYPE deviant_checker_seconds_total counter",
		`deviant_stage_seconds_total{stage="frontend"}`,
		"# TYPE deviant_report_z histogram",
		"deviant_runs_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestHealthzBuildInfo pins the /healthz body shape: liveness status plus
// the binary's build identity.
func TestHealthzBuildInfo(t *testing.T) {
	s := New(Config{})
	rr, body := getPath(t, s, "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rr.Code)
	}
	var resp struct {
		Status string `json:"status"`
		Build  struct {
			Version   string `json:"version"`
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, body)
	}
	if resp.Status != "ok" {
		t.Errorf("status = %q, want ok", resp.Status)
	}
	if resp.Build.GoVersion == "" {
		t.Errorf("build info missing go_version: %s", body)
	}
}

// TestAnalyzeTrace pins the ?trace=1 contract: the response embeds a
// Chrome trace-event JSON document with spans for every pipeline stage
// and the request span carrying this request's ID.
func TestAnalyzeTrace(t *testing.T) {
	s := New(Config{})
	rr, body := postJSON(t, s, "/v1/analyze?trace=1", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusOK {
		t.Fatalf("analyze?trace=1: status %d: %s", rr.Code, body)
	}
	var resp AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("trace=1 response has no trace")
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(resp.Trace, &trace); err != nil {
		t.Fatalf("embedded trace is not valid trace-event JSON: %v", err)
	}
	names := map[string]bool{}
	var reqID string
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
		if ev.Name == "request" {
			reqID = ev.Args["id"]
		}
	}
	for _, want := range []string{"request", "analyze", "frontend", "unit", "semantic", "cfg", "checker"} {
		if !names[want] {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	if !strings.HasPrefix(reqID, "r") {
		t.Errorf("request span id = %q, want r-prefixed request id", reqID)
	}

	// An untraced request must not pay for or return a trace.
	plain := analyze(t, s, svcSources())
	if len(plain.Trace) != 0 {
		t.Errorf("untraced response carries a trace: %s", plain.Trace)
	}
}

// TestRequestLogging pins the structured log contract: one JSON line per
// request with id, method, path, status, and duration.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
	analyze(t, s, svcSources())
	getPath(t, s, "/healthz")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var entry struct {
		Msg    string  `json:"msg"`
		ID     string  `json:"id"`
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMS  float64 `json:"dur_ms"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	if entry.Msg != "request" || entry.Method != "POST" || entry.Path != "/v1/analyze" ||
		entry.Status != http.StatusOK || !strings.HasPrefix(entry.ID, "r") {
		t.Errorf("unexpected request log entry: %+v", entry)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		path string
		body any
	}{
		{"no sources", "/v1/analyze", AnalyzeRequest{}},
		{"no units", "/v1/analyze", AnalyzeRequest{Sources: map[string]string{"a.h": "int x;"}}},
		{"bad checker", "/v1/analyze", AnalyzeRequest{
			Sources: svcSources(), Options: RequestOptions{Checkers: "nope"}}},
		{"bad p0", "/v1/analyze", AnalyzeRequest{
			Sources: svcSources(), Options: RequestOptions{P0: 1.5}}},
		{"diff missing old", "/v1/diff", DiffRequest{NewSources: svcSources()}},
	}
	for _, tc := range cases {
		rr, body := postJSON(t, s, tc.path, tc.body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, rr.Code, body)
		}
	}

	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"sources": 5}`))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", rr.Code)
	}
}

func TestWorkerBudgetClamp(t *testing.T) {
	s := New(Config{MaxWorkers: 4})
	for _, tc := range []struct{ req, want int }{
		{0, 4}, {2, 2}, {4, 4}, {64, 4},
	} {
		opts, err := s.buildOptions(RequestOptions{Workers: tc.req})
		if err != nil {
			t.Fatal(err)
		}
		if opts.Workers != tc.want {
			t.Errorf("workers=%d: clamped to %d, want %d", tc.req, opts.Workers, tc.want)
		}
	}
}

func TestAdmitReleasesOnTimeout(t *testing.T) {
	// A request that times out while queued must give back its queue slot.
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	s.run <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if release, status, _ := s.admit(ctx); release != nil {
		t.Fatalf("admit should have timed out, got status %d", status)
	}
	if len(s.slots) != 0 {
		t.Errorf("timed-out admit leaked a queue slot: %d held", len(s.slots))
	}
	<-s.run

	// And a successful admit's release is idempotent.
	release, _, _ := s.admit(context.Background())
	if release == nil {
		t.Fatal("admit should succeed on an idle server")
	}
	release()
	release()
	if len(s.run) != 0 || len(s.slots) != 0 {
		t.Errorf("release leaked tokens: run=%d slots=%d", len(s.run), len(s.slots))
	}
}

func TestConcurrentAnalyses(t *testing.T) {
	// Hammer a shared server from several goroutines; with -race this
	// doubles as the data-race check on the shared snapshot store.
	s := New(Config{MaxConcurrent: 4, QueueDepth: 16})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			src := svcSources()
			src["extra.c"] = fmt.Sprintf(
				"#include \"kernel.h\"\nint extra_%d(struct dev *d) { return d->count + %d; }\n", i%3, i%3)
			rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: src})
			if rr.Code != http.StatusOK {
				done <- fmt.Errorf("status %d: %s", rr.Code, body)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
