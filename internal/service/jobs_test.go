package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is a JournalWriter safe for the job workers' background
// writes to race the test's reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// submitJob posts one job for tenant and returns the decoded status and
// the recorder (for headers on rejections).
func submitJob(t *testing.T, s *Server, tenant string, sources map[string]string) (JobStatus, *httptest.ResponseRecorder) {
	t.Helper()
	payload, err := json.Marshal(AnalyzeRequest{Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(payload))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	var st JobStatus
	if rr.Code == http.StatusAccepted {
		if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
			t.Fatalf("job status not JSON: %s", rr.Body.Bytes())
		}
	}
	return st, rr
}

func getJSON(t *testing.T, s *Server, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	if out != nil && rr.Code/100 == 2 {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: not JSON: %s", path, rr.Body.Bytes())
		}
	}
	return rr
}

// waitJob polls the status endpoint until the job is terminal.
func waitJob(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		rr := getJSON(t, s, "/v1/jobs/"+id, &st)
		if rr.Code != http.StatusOK {
			t.Fatalf("poll %s: %d: %s", id, rr.Code, rr.Body.Bytes())
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestJobResultMatchesSyncAnalyze is the core contract: submit → poll →
// result returns byte-for-byte what a synchronous /v1/analyze of the
// same tree answers. Each path runs on its own fresh server so both see
// a cold snapshot store — the response embeds the run's reuse counters,
// which are warmth-dependent by design.
func TestJobResultMatchesSyncAnalyze(t *testing.T) {
	rr, sync := postJSON(t, New(Config{}), "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusOK {
		t.Fatalf("sync analyze: %d: %s", rr.Code, sync)
	}

	s := New(Config{})
	st, srr := submitJob(t, s, "acme", svcSources())
	if srr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", srr.Code, srr.Body.Bytes())
	}
	if st.State != JobQueued || st.Tenant != "acme" || st.ID == "" {
		t.Fatalf("submit status: %+v", st)
	}
	if loc := srr.Header().Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	if got := waitJob(t, s, st.ID); got.State != JobDone {
		t.Fatalf("job ended %+v, want done", got)
	}
	res := getJSON(t, s, "/v1/jobs/"+st.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result: %d: %s", res.Code, res.Body.Bytes())
	}
	if !bytes.Equal(res.Body.Bytes(), sync) {
		t.Fatalf("job result differs from sync analyze\n--- job ---\n%s\n--- sync ---\n%s",
			res.Body.Bytes(), sync)
	}

	// A result can be fetched more than once.
	if again := getJSON(t, s, "/v1/jobs/"+st.ID+"/result", nil); !bytes.Equal(again.Body.Bytes(), sync) {
		t.Fatal("second result fetch differs")
	}
}

// TestJobUnknownAndNotReady pins the error statuses: 404 for ids the
// server never issued (or evicted), 409 for a result that is not done
// yet.
func TestJobUnknownAndNotReady(t *testing.T) {
	s := New(Config{JobWorkers: 1})
	gate := make(chan struct{})
	s.jobs.runHook = func(*job) { <-gate }

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		if rr := getJSON(t, s, path, nil); rr.Code != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("DELETE", "/v1/jobs/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d, want 404", rr.Code)
	}

	st, _ := submitJob(t, s, "a", svcSources())
	if res := getJSON(t, s, "/v1/jobs/"+st.ID+"/result", nil); res.Code != http.StatusConflict {
		t.Fatalf("result before done: %d, want 409", res.Code)
	}
	close(gate)
	waitJob(t, s, st.ID)
}

// TestJobQueueFull pins the backpressure contract: with the single
// worker wedged and the queue at capacity, the next submission gets 429
// with a Retry-After hint, and the rejection counts in /metrics.
func TestJobQueueFull(t *testing.T) {
	s := New(Config{JobWorkers: 1, JobQueueDepth: 2, JobsPerTenant: 99})
	gate := make(chan struct{})
	s.jobs.runHook = func(*job) { <-gate }
	defer close(gate)

	first, _ := submitJob(t, s, "t0", svcSources())
	// Wait until the worker picked it up so the queue depth is exact.
	waitState(t, s, first.ID, JobRunning)
	for i := 0; i < 2; i++ {
		if _, rr := submitJob(t, s, "t0", svcSources()); rr.Code != http.StatusAccepted {
			t.Fatalf("fill %d: %d: %s", i, rr.Code, rr.Body.Bytes())
		}
	}
	_, rr := submitJob(t, s, "t0", svcSources())
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429: %s", rr.Code, rr.Body.Bytes())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After hint")
	}
	if !strings.Contains(rr.Body.String(), "queue full") {
		t.Fatalf("rejection reason: %s", rr.Body.Bytes())
	}

	metrics := getJSON(t, s, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "deviantd_jobs_rejected_total 1") {
		t.Fatal("rejection not counted in /metrics")
	}
}

// waitState polls until the job reports state, or fails.
func waitState(t *testing.T, s *Server, id, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, s, "/v1/jobs/"+id, &st)
		if st.State == state {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, state)
}

// TestJobTenantQuota pins multi-tenant isolation: a tenant at its
// in-flight cap gets 429 naming the quota, while a different tenant
// still submits freely against the same queue.
func TestJobTenantQuota(t *testing.T) {
	s := New(Config{JobWorkers: 1, JobsPerTenant: 2, JobQueueDepth: 16})
	gate := make(chan struct{})
	s.jobs.runHook = func(*job) { <-gate }

	var last JobStatus
	for i := 0; i < 2; i++ {
		st, rr := submitJob(t, s, "greedy", svcSources())
		if rr.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, rr.Code)
		}
		last = st
	}
	_, rr := submitJob(t, s, "greedy", svcSources())
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota: %d, want 429: %s", rr.Code, rr.Body.Bytes())
	}
	if !strings.Contains(rr.Body.String(), "greedy") {
		t.Fatalf("quota rejection does not name the tenant: %s", rr.Body.Bytes())
	}
	if _, rr := submitJob(t, s, "modest", svcSources()); rr.Code != http.StatusAccepted {
		t.Fatalf("other tenant rejected alongside: %d: %s", rr.Code, rr.Body.Bytes())
	}

	// Quota is in-flight, not lifetime: once a greedy job finishes, the
	// tenant can submit again. The closed gate lets every later job
	// pass the hook without blocking.
	close(gate)
	waitJob(t, s, last.ID)
	if _, rr := submitJob(t, s, "greedy", svcSources()); rr.Code != http.StatusAccepted {
		t.Fatalf("submit after quota freed: %d", rr.Code)
	}
}

// TestJobFairScheduling pins round-robin across tenants: with tenant A
// holding a deep queue, tenant B's single job runs after A's next job,
// not after A's whole backlog.
func TestJobFairScheduling(t *testing.T) {
	s := New(Config{JobWorkers: 1, JobsPerTenant: 8, JobQueueDepth: 16})
	var mu sync.Mutex
	order := []string{}
	gate := make(chan struct{})
	blockFirst := true
	s.jobs.runHook = func(j *job) {
		mu.Lock()
		order = append(order, j.tenant)
		first := blockFirst
		blockFirst = false
		mu.Unlock()
		if first {
			<-gate
		}
	}

	a1, _ := submitJob(t, s, "a", svcSources())
	waitState(t, s, a1.ID, JobRunning) // worker wedged on a's first job
	var ids []string
	for i := 0; i < 3; i++ {
		st, _ := submitJob(t, s, "a", svcSources())
		ids = append(ids, st.ID)
	}
	b1, _ := submitJob(t, s, "b", svcSources())
	ids = append(ids, b1.ID)
	close(gate)
	for _, id := range append(ids, a1.ID) {
		waitJob(t, s, id)
	}

	mu.Lock()
	got := strings.Join(order, " ")
	mu.Unlock()
	if got != "a a b a a" {
		t.Fatalf("run order %q, want round-robin \"a a b a a\"", got)
	}
}

// TestJobCancel covers both cancellation shapes: a queued job dies
// without ever running, and a running job is flagged, finishes quietly,
// and never publishes its result.
func TestJobCancel(t *testing.T) {
	s := New(Config{JobWorkers: 1, JobsPerTenant: 8})
	gate := make(chan struct{})
	s.jobs.runHook = func(*job) { <-gate }

	run, _ := submitJob(t, s, "a", svcSources())
	waitState(t, s, run.ID, JobRunning)
	queued, _ := submitJob(t, s, "a", svcSources())

	// Cancel the queued job: immediate, and it must never run.
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("DELETE", "/v1/jobs/"+queued.ID, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("cancel queued: %d: %s", rr.Code, rr.Body.Bytes())
	}
	var st JobStatus
	getJSON(t, s, "/v1/jobs/"+queued.ID, &st)
	if st.State != JobCanceled {
		t.Fatalf("queued job state %q after cancel", st.State)
	}

	// Cancel the running job mid-run, then release the worker: the job
	// must end canceled with no result, not done.
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("DELETE", "/v1/jobs/"+run.ID, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("cancel running: %d: %s", rr.Code, rr.Body.Bytes())
	}
	close(gate)
	if got := waitJob(t, s, run.ID); got.State != JobCanceled {
		t.Fatalf("running job ended %q after cancel, want canceled", got.State)
	}
	if res := getJSON(t, s, "/v1/jobs/"+run.ID+"/result", nil); res.Code != http.StatusConflict {
		t.Fatalf("result of canceled job: %d, want 409", res.Code)
	}

	// Cancel of a terminal job is a conflict.
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("DELETE", "/v1/jobs/"+run.ID, nil))
	if rr.Code != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", rr.Code)
	}

	// The canceled-while-queued job never reached the hook.
	metrics := getJSON(t, s, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "deviantd_jobs_canceled_total 2") {
		t.Fatal("cancellations not counted in /metrics")
	}
}

// TestJobDrainWithJobsInFlight pins the drain promise: accepted jobs
// finish, their results stay fetchable, and new submissions bounce with
// 503 + Retry-After while the drain is underway.
func TestJobDrainWithJobsInFlight(t *testing.T) {
	s := New(Config{JobWorkers: 1, JobsPerTenant: 8})
	gate := make(chan struct{})
	s.jobs.runHook = func(*job) { <-gate }

	running, _ := submitJob(t, s, "a", svcSources())
	waitState(t, s, running.ID, JobRunning)
	queued, _ := submitJob(t, s, "a", svcSources())

	s.SetDraining(true)
	stopped := make(chan error, 1)
	go func() { stopped <- s.StopJobs(context.Background()) }()

	// While draining: no new jobs.
	_, rr := submitJob(t, s, "a", svcSources())
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	close(gate)
	if err := <-stopped; err != nil {
		t.Fatalf("StopJobs: %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		var st JobStatus
		getJSON(t, s, "/v1/jobs/"+id, &st)
		if st.State != JobDone {
			t.Fatalf("job %s ended %q across drain, want done", id, st.State)
		}
		if res := getJSON(t, s, "/v1/jobs/"+id+"/result", nil); res.Code != http.StatusOK {
			t.Fatalf("result %s after drain: %d", id, res.Code)
		}
	}
}

// TestJobDrainDeadline pins the impatient drain: when the context
// expires with a job still wedged, StopJobs cancels the stragglers and
// returns the context error instead of hanging.
func TestJobDrainDeadline(t *testing.T) {
	s := New(Config{JobWorkers: 1})
	gate := make(chan struct{})
	s.jobs.runHook = func(*job) { <-gate }
	st, _ := submitJob(t, s, "a", svcSources())
	waitState(t, s, st.ID, JobRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.StopJobs(ctx); err != context.DeadlineExceeded {
		t.Fatalf("StopJobs = %v, want DeadlineExceeded", err)
	}
	close(gate)
	if got := waitJob(t, s, st.ID); got.State != JobCanceled {
		t.Fatalf("wedged job ended %q, want canceled", got.State)
	}
}

// TestJobJournalLifecycle pins the journal vocabulary: one job emits
// job_submitted → job_start → (the run's own events) → job_end, every
// line keyed by the job id.
func TestJobJournalLifecycle(t *testing.T) {
	var buf lockedBuffer
	s := New(Config{JournalWriter: &buf})
	st, _ := submitJob(t, s, "acme", svcSources())
	if got := waitJob(t, s, st.ID); got.State != JobDone {
		t.Fatalf("job ended %+v", got)
	}

	var events []string
	for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var jl struct {
			Run   string `json:"run"`
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(l), &jl); err != nil {
			t.Fatalf("journal line not JSON: %s", l)
		}
		if jl.Run != st.ID {
			t.Fatalf("journal line under run %q, want job id %s: %s", jl.Run, st.ID, l)
		}
		events = append(events, jl.Event)
	}
	if len(events) < 3 || events[0] != "job_submitted" || events[1] != "job_start" ||
		events[len(events)-1] != "job_end" {
		t.Fatalf("lifecycle events out of order: %v", events)
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e] = true
	}
	if !seen["rank"] {
		t.Fatalf("pipeline events missing from job journal: %v", events)
	}
}

// TestJobBadRequests pins validation on the submit path: malformed
// bodies and empty source maps are 400s, never queued.
func TestJobBadRequests(t *testing.T) {
	s := New(Config{})
	rr, body := postRaw(t, s, "/v1/jobs", []byte("not json"))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed submit: %d: %s", rr.Code, body)
	}
	rr, body = postJSON(t, s, "/v1/jobs", AnalyzeRequest{Sources: map[string]string{}})
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("empty sources: %d: %s", rr.Code, body)
	}
	metrics := getJSON(t, s, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "deviantd_jobs_submitted_total 0") {
		t.Fatal("invalid submissions counted as accepted")
	}
}
