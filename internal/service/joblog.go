// The job subsystem's write-ahead log: one file per accepted job,
// holding the job's request and lifecycle state, written atomically
// (temp file + fsync + rename) with the same magic + SHA-256 framing as
// the snapshot store's disk tier. The log makes accepted work a
// durable promise: a coordinator crash loses no accepted job — on
// restart, queued and mid-run jobs are re-admitted and re-run, and
// finished jobs keep serving their exact result bytes (the encoded
// response body is persisted verbatim, so GET /v1/jobs/{id}/result
// after a restart is byte-identical to before it).
//
// Corruption handling is inherited from the disk-tier idiom: a torn
// write from a crash leaves a temp file or a checksum-invalid entry,
// both swept at startup, so the log self-heals by dropping exactly the
// entry that was mid-write — never by refusing to start.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// jobMagic leads every job-log file; a file without it is not ours.
var jobMagic = []byte("DVJOBL1\n")

// jobTmpPrefix marks in-progress writes; openJobLog sweeps leftovers.
const jobTmpPrefix = ".tmp-"

const jobSuffix = ".job"

// jobEntry is the serialized form of one job. Resp holds the encoded
// HTTP body for a done job — the exact bytes the result endpoint
// serves — rather than the decoded struct, so recovery cannot perturb
// a single byte through a decode/re-encode round trip.
type jobEntry struct {
	ID     string
	Tenant string
	State  string
	ErrMsg string
	Req    AnalyzeRequest
	Resp   []byte
}

// jobLog is the persistent tier, one directory of entry files.
type jobLog struct {
	dir string
}

// jobIDNum extracts the numeric tail of a "job-N" id (0 if foreign).
func jobIDNum(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}

// openJobLog prepares dir as a job log: creates it if needed, removes
// temp files abandoned by crashed writers, verifies every entry's magic
// + checksum + name, deletes the ones that fail (returned as the
// corrupt count), and returns the surviving entries in submission
// (numeric id) order.
func openJobLog(dir string) (*jobLog, []jobEntry, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	var entries []jobEntry
	var corrupt int64
	for _, de := range names {
		name := de.Name()
		if strings.HasPrefix(name, jobTmpPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, jobSuffix) {
			continue
		}
		e, ok := readJobEntry(filepath.Join(dir, name))
		if !ok || name != e.ID+jobSuffix {
			os.Remove(filepath.Join(dir, name))
			corrupt++
			continue
		}
		entries = append(entries, *e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := jobIDNum(entries[i].ID), jobIDNum(entries[j].ID)
		if a != b {
			return a < b
		}
		return entries[i].ID < entries[j].ID
	})
	return &jobLog{dir: dir}, entries, corrupt, nil
}

// readJobEntry reads one file and returns its decoded payload only if
// the magic, checksum and gob decode all hold.
func readJobEntry(path string) (*jobEntry, bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < len(jobMagic)+sha256.Size {
		return nil, false
	}
	if !bytes.Equal(raw[:len(jobMagic)], jobMagic) {
		return nil, false
	}
	sum := raw[len(jobMagic) : len(jobMagic)+sha256.Size]
	payload := raw[len(jobMagic)+sha256.Size:]
	if got := sha256.Sum256(payload); !bytes.Equal(sum, got[:]) {
		return nil, false
	}
	var e jobEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return nil, false
	}
	return &e, true
}

// write persists one entry atomically, replacing any previous state for
// the same job: temp file in the same directory, magic + checksum +
// payload, fsync, close, rename. A crash at any point leaves either the
// previous entry or a temp file openJobLog will sweep — never a
// partially visible entry.
func (l *jobLog) write(e *jobEntry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return err
	}
	sum := sha256.Sum256(payload.Bytes())
	f, err := os.CreateTemp(l.dir, jobTmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(jobMagic)
	if werr == nil {
		_, werr = f.Write(sum[:])
	}
	if werr == nil {
		_, werr = f.Write(payload.Bytes())
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, e.ID+jobSuffix)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// remove forgets one job's entry (history eviction).
func (l *jobLog) remove(id string) {
	os.Remove(filepath.Join(l.dir, id+jobSuffix))
}
