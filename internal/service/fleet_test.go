package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deviant/internal/dist"
)

// httpShardCaller drives a worker Server's /v1/shard over its handler,
// exactly the wire a real fleet uses minus the TCP hop.
type httpShardCaller struct {
	h http.Handler
}

func (c httpShardCaller) Shard(ctx context.Context, req *dist.ShardRequest, requestID string) (*dist.ShardResponse, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr := httptest.NewRequest("POST", "/v1/shard", bytes.NewReader(buf)).WithContext(ctx)
	if requestID != "" {
		hr.Header.Set(dist.RequestIDHeader, requestID)
	}
	rr := httptest.NewRecorder()
	c.h.ServeHTTP(rr, hr)
	if rr.Code != http.StatusOK {
		return nil, fmt.Errorf("shard: status %d: %s", rr.Code, rr.Body.Bytes())
	}
	var resp dist.ShardResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TestShardEndpoint pins the worker half of the wire contract: a valid
// shard answers with one decodable partial per unit, and malformed
// shards are the client's fault (400), not the server's.
func TestShardEndpoint(t *testing.T) {
	s := New(Config{})
	srcs := svcSources()

	rr, body := postJSON(t, s, "/v1/shard", dist.ShardRequest{
		Sources: srcs,
		Units:   []string{"alpha.c", "beta.c"},
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("shard: status %d: %s", rr.Code, body)
	}
	var resp dist.ShardResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("shard: %v\n%s", err, body)
	}
	if len(resp.Partials) != 2 {
		t.Fatalf("want 2 partials, got %d", len(resp.Partials))
	}
	for _, p := range resp.Partials {
		if len(p.Tokens) == 0 || p.Sum == "" {
			t.Fatalf("%s: empty partial", p.Unit)
		}
	}

	for _, bad := range []dist.ShardRequest{
		{Sources: srcs}, // no units
		{Sources: srcs, Units: []string{"nosuch.c"}},         // unknown unit
		{Sources: srcs, Units: []string{"include/kernel.h"}}, // header
	} {
		rr, body := postJSON(t, s, "/v1/shard", bad)
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("bad shard %v: status %d: %s", bad.Units, rr.Code, body)
		}
	}
}

// TestCoordinatorMode is the HTTP-level fleet acceptance pin: an
// /v1/analyze served by a coordinator over 3 workers produces the same
// response body fields as a single-process server, and the
// coordinator's /metrics exposes the fleet families.
func TestCoordinatorMode(t *testing.T) {
	workers := make([]dist.Worker, 3)
	for i := range workers {
		workers[i] = dist.Worker{
			Name:   fmt.Sprintf("w%d", i),
			Caller: httpShardCaller{h: New(Config{})},
		}
	}
	coord, err := dist.NewCoordinator(workers)
	if err != nil {
		t.Fatal(err)
	}
	fleet := New(Config{Coordinator: coord})
	single := New(Config{})

	srcs := svcSources()
	fr := analyze(t, fleet, srcs)
	sr := analyze(t, single, srcs)

	if fr.Units != sr.Units || fr.Functions != sr.Functions ||
		fr.Lines != sr.Lines || fr.ParseErrors != sr.ParseErrors ||
		fr.Degraded != sr.Degraded {
		t.Fatalf("fleet summary %+v diverges from single-process %+v", fr, sr)
	}
	fb, _ := json.Marshal(fr.Reports)
	sb, _ := json.Marshal(sr.Reports)
	if !bytes.Equal(fb, sb) {
		t.Errorf("fleet reports diverge:\n--- fleet\n%s\n--- single\n%s", fb, sb)
	}
	// Workers, not the coordinator, paid the frontend.
	if fr.Snapshot.UnitsParsed != 3 {
		t.Fatalf("fleet snapshot %+v, want 3 units parsed across workers", fr.Snapshot)
	}

	// /v1/rules reflects the fleet run too.
	rr, body := getPath(t, fleet, "/v1/rules")
	if rr.Code != http.StatusOK || !bytes.Contains(body, []byte(`"rules"`)) {
		t.Fatalf("rules: status %d: %s", rr.Code, body)
	}

	rr, body = getPath(t, fleet, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rr.Code)
	}
	for _, name := range []string{
		"deviantd_fleet_scatter_seconds",
		"deviantd_fleet_workers",
		"deviantd_fleet_healthy_workers",
	} {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestFleetWorkersEndpoint pins the live-membership API: a valid POST
// /v1/fleet/workers replaces the worker set under a bumped epoch and
// runs stay byte-identical, an invalid set is a 400 that leaves the
// epoch untouched, and without a WorkerDialer the route does not exist.
func TestFleetWorkersEndpoint(t *testing.T) {
	// One backing worker server per name, created on first dial — the
	// same wiring deviantd uses, minus the TCP hop.
	backends := map[string]http.Handler{}
	dialer := func(name string) dist.ShardCaller {
		h, ok := backends[name]
		if !ok {
			h = New(Config{})
			backends[name] = h
		}
		return httpShardCaller{h: h}
	}
	coord, err := dist.NewCoordinator([]dist.Worker{
		{Name: "w0", Caller: dialer("w0")},
		{Name: "w1", Caller: dialer("w1")},
		{Name: "w2", Caller: dialer("w2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet := New(Config{Coordinator: coord, WorkerDialer: dialer})
	single := New(Config{})
	srcs := svcSources()
	want := analyze(t, single, srcs)

	check := func(label string) {
		got := analyze(t, fleet, srcs)
		gb, _ := json.Marshal(got.Reports)
		wb, _ := json.Marshal(want.Reports)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("%s: fleet reports diverge:\n--- fleet\n%s\n--- single\n%s", label, gb, wb)
		}
	}
	check("epoch 1")

	// Shrink to two workers: 200, epoch bumped, output unchanged.
	rr, body := postJSON(t, fleet, "/v1/fleet/workers", FleetWorkersRequest{Workers: []string{"w0", " w1 ", ""}})
	if rr.Code != http.StatusOK {
		t.Fatalf("shrink: status %d: %s", rr.Code, body)
	}
	var st dist.FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("shrink: %v\n%s", err, body)
	}
	if st.Epoch != 2 || st.Size != 2 {
		t.Fatalf("shrink: epoch %d size %d, want 2/2", st.Epoch, st.Size)
	}
	check("epoch 2")

	// Invalid sets are the client's fault and must not disturb the view.
	for _, bad := range []FleetWorkersRequest{
		{},                              // empty
		{Workers: []string{"", "  "}},   // all blank
		{Workers: []string{"wX", "wX"}}, // duplicate name
	} {
		rr, body := postJSON(t, fleet, "/v1/fleet/workers", bad)
		if rr.Code != http.StatusBadRequest {
			t.Fatalf("bad set %v: status %d: %s", bad.Workers, rr.Code, body)
		}
	}
	if got := coord.Epoch(); got != 2 {
		t.Fatalf("epoch moved to %d on rejected updates, want 2", got)
	}

	// Grow back to three: the re-dialed worker comes from the same cache.
	rr, body = postJSON(t, fleet, "/v1/fleet/workers", FleetWorkersRequest{Workers: []string{"w0", "w1", "w2"}})
	if rr.Code != http.StatusOK {
		t.Fatalf("grow: status %d: %s", rr.Code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 || st.Size != 3 {
		t.Fatalf("grow: epoch %d size %d, want 3/3", st.Epoch, st.Size)
	}
	check("epoch 3")

	// No WorkerDialer, no route: membership cannot be steered remotely.
	rr, _ = postJSON(t, New(Config{Coordinator: coord}), "/v1/fleet/workers", FleetWorkersRequest{Workers: []string{"w0"}})
	if rr.Code != http.StatusNotFound {
		t.Fatalf("route without dialer: status %d, want 404", rr.Code)
	}
}

// TestRequestIDAdoption pins the shared-trace-id contract: a sane
// incoming X-Deviant-Request-Id shows up as the request's logged id,
// and a hostile one is replaced with a server-assigned id.
func TestRequestIDAdoption(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})

	send := func(rid string) string {
		logBuf.Reset()
		req := httptest.NewRequest("GET", "/healthz", nil)
		if rid != "" {
			req.Header.Set(dist.RequestIDHeader, rid)
		}
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, req)
		var line struct {
			ID string `json:"id"`
		}
		for _, l := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
			if strings.Contains(l, `"request"`) {
				if err := json.Unmarshal([]byte(l), &line); err != nil {
					t.Fatalf("log line: %v\n%s", err, l)
				}
			}
		}
		return line.ID
	}

	if got := send("coord-r000042"); got != "coord-r000042" {
		t.Fatalf("sane id not adopted: got %q", got)
	}
	for _, hostile := range []string{
		"has\nnewline",
		"ctrl\x01char",
		strings.Repeat("x", 65),
	} {
		if got := send(hostile); !strings.HasPrefix(got, "r0") {
			t.Fatalf("hostile id %q adopted as %q", hostile, got)
		}
	}
	if got := send(""); !strings.HasPrefix(got, "r0") {
		t.Fatalf("missing header should use assigned id, got %q", got)
	}
}
