package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"deviant/internal/fault"
)

// postRaw sends bytes as-is, bypassing the JSON marshal in postJSON, so
// tests can inject malformed and truncated bodies.
func postRaw(t *testing.T, h http.Handler, path string, body []byte) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

// Malformed and truncated bodies are client errors: 400, with a JSON
// error payload, never a 500 and never a hang.
func TestFaultMalformedBodies(t *testing.T) {
	s := New(Config{})
	valid, err := json.Marshal(AnalyzeRequest{Sources: svcSources()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"not json", []byte("int main(void) { return 0; }")},
		{"wrong top-level type", []byte(`[1,2,3]`)},
		{"unknown field", []byte(`{"sauces":{"a.c":"int x;"}}`)},
		{"binary garbage", []byte{0x00, 0xff, 0x1f, 0x8b, 0x08}},
		{"truncated mid-object", valid[:len(valid)/2]},
		{"truncated mid-string", valid[:len(valid)-3]},
		{"trailing garbage ignored by decoder is still one object", []byte(`{"sources":{}}`)}, // empty sources → validation 400
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, path := range []string{"/v1/analyze", "/v1/diff"} {
				rr, body := postRaw(t, s, path, c.body)
				if rr.Code != http.StatusBadRequest {
					t.Fatalf("%s: status %d, want 400: %s", path, rr.Code, body)
				}
				var e map[string]string
				if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
					t.Fatalf("%s: error payload not JSON with error field: %s", path, body)
				}
			}
		})
	}
}

// A body over MaxBodyBytes is a distinct failure from malformed JSON and
// must get 413, on both POST endpoints, whether the oversized content is
// valid JSON or noise.
func TestFaultOversizedBody(t *testing.T) {
	s := New(Config{MaxBodyBytes: 4 << 10})
	big := AnalyzeRequest{Sources: map[string]string{
		"a.c": "int x = 0;" + strings.Repeat("/* pad */", 4<<10),
	}}
	for _, path := range []string{"/v1/analyze", "/v1/diff"} {
		rr, body := postJSON(t, s, path, big)
		if rr.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413: %s", path, rr.Code, body)
		}
	}
	// A body whose defect lies beyond the limit (an unterminated giant
	// string) hits the size cap before the parse error: 413, not 400.
	unterminated := append([]byte(`{"sources":{"a.c":"`), bytes.Repeat([]byte{'y'}, 8<<10)...)
	rr, body := postRaw(t, s, "/v1/analyze", unterminated)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized truncated body: status %d, want 413: %s", rr.Code, body)
	}
	// At exactly the limit the request is not oversized.
	exact := append([]byte(`{"sources":{"a.c":"`), bytes.Repeat([]byte{'x'}, 100)...)
	exact = append(exact, []byte(`"}}`)...)
	if int64(len(exact)) > 4<<10 {
		t.Fatalf("test fixture larger than limit")
	}
	rr, body = postRaw(t, s, "/v1/analyze", exact)
	if rr.Code != http.StatusOK {
		t.Fatalf("under-limit body: status %d, want 200: %s", rr.Code, body)
	}
}

// Requests racing drain mode: a hammer of concurrent analyze requests
// while the server flips draining on and off must only ever see the
// documented statuses, and the server must serve normally afterwards.
func TestFaultDrainRace(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, QueueDepth: 2})
	sources := svcSources()

	var wg sync.WaitGroup
	const hammers = 4
	const perHammer = 25
	statuses := make([][]int, hammers)
	for i := 0; i < hammers; i++ {
		i := i
		statuses[i] = make([]int, 0, perHammer)
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, _ := json.Marshal(AnalyzeRequest{Sources: sources})
			for j := 0; j < perHammer; j++ {
				req := httptest.NewRequest("POST", "/v1/analyze", bytes.NewReader(buf))
				rr := httptest.NewRecorder()
				s.ServeHTTP(rr, req)
				statuses[i] = append(statuses[i], rr.Code)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 50; k++ {
			s.SetDraining(k%2 == 0)
		}
		s.SetDraining(false)
	}()
	wg.Wait()

	allowed := map[int]bool{
		http.StatusOK:                 true,
		http.StatusServiceUnavailable: true,
		http.StatusTooManyRequests:    true,
		http.StatusGatewayTimeout:     true,
	}
	for i, col := range statuses {
		for j, code := range col {
			if !allowed[code] {
				t.Fatalf("hammer %d request %d: unexpected status %d", i, j, code)
			}
		}
	}

	// Fully undrained, the server must be healthy and serve new work.
	if rr, body := getPath(t, s, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("healthz after drain race: %d: %s", rr.Code, body)
	}
	analyze(t, s, sources)
}

// During drain every new analyze/diff gets a clean 503 JSON error — not
// a reset, not a 500 — and healthz reports not-ready.
func TestFaultDrainStatuses(t *testing.T) {
	s := New(Config{})
	s.SetDraining(true)
	for _, path := range []string{"/v1/analyze", "/v1/diff"} {
		var rr *httptest.ResponseRecorder
		var body []byte
		if path == "/v1/analyze" {
			rr, body = postJSON(t, s, path, AnalyzeRequest{Sources: svcSources()})
		} else {
			rr, body = postJSON(t, s, path, DiffRequest{OldSources: svcSources(), NewSources: svcSources()})
		}
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: status %d, want 503: %s", path, rr.Code, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Fatalf("%s during drain: error payload not JSON: %s", path, body)
		}
	}
	if rr, _ := getPath(t, s, "/healthz"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", rr.Code)
	}
	s.SetDraining(false)
	analyze(t, s, svcSources())
}

// The queue-full 429 must also hold while bodies are hostile: fill every
// slot, then hit the server with oversized and malformed bodies — the
// status must reflect the body fault (decode runs before admission), and
// releasing the slots restores service.
func TestFaultBackpressureWithHostileBodies(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, MaxBodyBytes: 4 << 10})
	// Occupy all admission slots directly, as TestBackpressure does.
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", rr.Code, body)
	}
	if rr, _ := postRaw(t, s, "/v1/analyze", []byte("not json")); rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed body under backpressure: status %d, want 400", rr.Code)
	}
	huge := fmt.Sprintf(`{"sources":{"a.c":%q}}`, strings.Repeat("y", 8<<10))
	if rr, _ := postRaw(t, s, "/v1/analyze", []byte(huge)); rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body under backpressure: status %d, want 413", rr.Code)
	}
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}
	analyze(t, s, svcSources())
}

// 429 (queue full) and 503 (draining) carry a Retry-After hint derived
// from queue pressure; client-fault statuses (400) do not.
func TestFaultRetryAfter(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	for i := 0; i < cap(s.slots); i++ {
		s.slots <- struct{}{}
	}
	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", rr.Code, body)
	}
	checkRetryAfter := func(rr *httptest.ResponseRecorder, where string) {
		t.Helper()
		h := rr.Header().Get("Retry-After")
		if h == "" {
			t.Fatalf("%s: no Retry-After header", where)
		}
		secs, err := strconv.Atoi(h)
		if err != nil || secs < 1 || secs > 30 {
			t.Fatalf("%s: Retry-After %q not an int in [1,30]", where, h)
		}
	}
	checkRetryAfter(rr, "429")
	for i := 0; i < cap(s.slots); i++ {
		<-s.slots
	}

	s.SetDraining(true)
	rr, _ = postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze: status %d, want 503", rr.Code)
	}
	checkRetryAfter(rr, "draining 503")
	rr, _ = getPath(t, s, "/healthz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", rr.Code)
	}
	checkRetryAfter(rr, "healthz 503")
	s.SetDraining(false)

	// Client faults must not invite a retry of the same request.
	rr, _ = postRaw(t, s, "/v1/analyze", []byte("not json"))
	if rr.Code != http.StatusBadRequest || rr.Header().Get("Retry-After") != "" {
		t.Fatalf("400 carries Retry-After %q", rr.Header().Get("Retry-After"))
	}
}

// A panic inside a handler becomes a 500 JSON error carrying the request
// id, bumps the recovered-panics counter, and leaves the server fully
// able to serve the next request.
func TestFaultServicePanicRecovery(t *testing.T) {
	fault.Arm("service", "/v1/rules")
	defer fault.Reset()
	s := New(Config{})

	rr, body := getPath(t, s, "/v1/rules")
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("armed trap: status %d, want 500: %s", rr.Code, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "request id r") {
		t.Fatalf("500 body missing request id: %s", body)
	}
	if got := s.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %v, want 1", got)
	}

	fault.Reset()
	if rr, _ := getPath(t, s, "/v1/rules"); rr.Code != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d", rr.Code)
	}
	analyze(t, s, svcSources())
}

// A panic on the analysis worker goroutine (which can outlive the
// request on the 504 path, beyond ServeHTTP's recovery) is contained to
// the request: 500 with a redacted cause, daemon alive.
func TestFaultWorkerPanicRecovery(t *testing.T) {
	fault.Arm("service-worker", "run")
	defer fault.Reset()
	s := New(Config{})

	rr, body := postJSON(t, s, "/v1/analyze", AnalyzeRequest{Sources: svcSources()})
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("worker trap: status %d, want 500: %s", rr.Code, body)
	}
	if !strings.Contains(string(body), "analysis worker panicked") {
		t.Fatalf("500 body missing worker-panic cause: %s", body)
	}
	if got := s.panics.Value(); got != 1 {
		t.Fatalf("panics counter = %v, want 1", got)
	}
	fault.Reset()
	analyze(t, s, svcSources())
}

// A pipeline-stage panic does NOT fail the request: core quarantines the
// unit and the response reports a degraded run with the quarantine
// records on the wire.
func TestFaultAnalyzeDegradedResponse(t *testing.T) {
	fault.Arm("frontend", "beta_grow")
	defer fault.Reset()
	s := New(Config{})

	resp := analyze(t, s, svcSources())
	if !resp.Degraded || len(resp.Quarantined) != 1 {
		t.Fatalf("degraded run not reported: degraded=%v quarantined=%v",
			resp.Degraded, resp.Quarantined)
	}
	q := resp.Quarantined[0]
	if q.Stage != "frontend" || q.Unit != "beta.c" {
		t.Fatalf("quarantine record %+v, want frontend beta.c", q)
	}
	// Quarantine metrics from the run surface on /metrics.
	_, body := getPath(t, s, "/metrics")
	if !strings.Contains(string(body), `deviant_quarantined_units_total{stage="frontend"} 1`) {
		t.Errorf("metrics missing quarantine counter:\n%s", body)
	}

	fault.Reset()
	clean := analyze(t, s, svcSources())
	if clean.Degraded || len(clean.Quarantined) != 0 {
		t.Fatalf("clean run still degraded: %+v", clean.Quarantined)
	}
}

// Config.CacheDir gives the daemon a persistent snapshot tier: a second
// server over the same directory serves the frontend warm from disk.
func TestFaultCacheDirPersistence(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{CacheDir: dir})
	r1 := analyze(t, s1, svcSources())
	if r1.Snapshot.UnitsParsed != 3 {
		t.Fatalf("cold fill: %+v", r1.Snapshot)
	}

	s2 := New(Config{CacheDir: dir})
	r2 := analyze(t, s2, svcSources())
	if r2.Snapshot.UnitsReused != 3 || r2.Snapshot.UnitsParsed != 0 {
		t.Fatalf("restarted daemon did not reuse from disk: %+v", r2.Snapshot)
	}
	warm, _ := json.Marshal(r2.Reports)
	cold, _ := json.Marshal(r1.Reports)
	if !bytes.Equal(warm, cold) {
		t.Errorf("disk-warm reports diverge from cold:\n%s\nvs\n%s", warm, cold)
	}
	if st := s2.Store().Stats(); st.DiskHits != 3 {
		t.Errorf("disk hits = %d, want 3: %+v", st.DiskHits, st)
	}

	// An unusable directory degrades to memory-only, not a dead server.
	s3 := New(Config{CacheDir: "/proc/definitely/not/writable"})
	if s3.Store().Persistent() {
		t.Error("store claims persistence over an unusable directory")
	}
	analyze(t, s3, svcSources())
}
