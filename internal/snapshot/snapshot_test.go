package snapshot

import (
	"fmt"
	"sync"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cpp"
)

const fp = "test-fingerprint"

// addUnit runs the real preprocessor over unit so the recorded dep list
// matches what core records, then stores a marker artifact.
func addUnit(t *testing.T, s *Store, fs cpp.MapFS, unit string) *Artifact {
	t.Helper()
	pp := cpp.New(fs, "include")
	if _, err := pp.Process(unit); err != nil {
		t.Fatalf("%s: %v", unit, err)
	}
	art := &Artifact{File: &cast.File{Name: unit}, Lines: 1}
	s.Add(fs, fp, unit, pp.IncludeDeps(), pp.MissedProbes(), art)
	return art
}

func sources() cpp.MapFS {
	return cpp.MapFS{
		"include/defs.h": "#define N 3\n",
		"a.c":            "#include <defs.h>\nint a(void) { return N; }\n",
		"b.c":            "#include <defs.h>\nint b(void) { return N + 1; }\n",
	}
}

func TestStoreHitOnIdenticalClosure(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	want := addUnit(t, s, fs, "a.c")
	got, ok := s.Lookup(fs, fp, "a.c")
	if !ok || got != want {
		t.Fatalf("lookup after add: ok=%v art=%p want %p", ok, got, want)
	}
	// A second provider with byte-identical contents hits too: the store
	// is content-addressed, not provider-addressed.
	fs2 := sources()
	if _, ok := s.Lookup(fs2, fp, "a.c"); !ok {
		t.Error("identical content through a fresh provider missed")
	}
}

func TestStoreMissOnUnitEdit(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	addUnit(t, s, fs, "a.c")
	fs["a.c"] = "#include <defs.h>\nint a(void) { return N + 9; }\n"
	if _, ok := s.Lookup(fs, fp, "a.c"); ok {
		t.Error("edited unit content still hit")
	}
}

func TestStoreMissOnHeaderEdit(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	addUnit(t, s, fs, "a.c")
	fs["include/defs.h"] = "#define N 4\n"
	if _, ok := s.Lookup(fs, fp, "a.c"); ok {
		t.Error("edited transitive include still hit")
	}
}

func TestStoreMissOnIncludeShadowing(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	addUnit(t, s, fs, "a.c")
	// <defs.h> was probed at the bare path "defs.h" first and missed;
	// creating that file would shadow include/defs.h.
	fs["defs.h"] = "#define N 99\n"
	if _, ok := s.Lookup(fs, fp, "a.c"); ok {
		t.Error("shadowing include appeared but lookup still hit")
	}
}

func TestStoreMissOnFingerprintChange(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	addUnit(t, s, fs, "a.c")
	if _, ok := s.Lookup(fs, Fingerprint("other", "config"), "a.c"); ok {
		t.Error("different configuration fingerprint still hit")
	}
}

func TestStoreHitAfterEditRevert(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	addUnit(t, s, fs, "a.c")
	orig := fs["a.c"]
	fs["a.c"] = "int a(void) { return 0; }\n"
	addUnit(t, s, fs, "a.c")
	fs["a.c"] = orig
	if _, ok := s.Lookup(fs, fp, "a.c"); !ok {
		t.Error("reverting an edit should hit the original artifact again")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(2)
	fs := cpp.MapFS{}
	for i := 0; i < 3; i++ {
		unit := fmt.Sprintf("u%d.c", i)
		fs[unit] = fmt.Sprintf("int f%d(void) { return %d; }\n", i, i)
		addUnit(t, s, fs, unit)
	}
	if _, ok := s.Lookup(fs, fp, "u0.c"); ok {
		t.Error("oldest unit survived eviction with capacity 2")
	}
	for _, unit := range []string{"u1.c", "u2.c"} {
		if _, ok := s.Lookup(fs, fp, unit); !ok {
			t.Errorf("%s evicted, want resident", unit)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Units != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 units", st)
	}
}

func TestStoreGraphCache(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	art := addUnit(t, s, fs, "a.c")
	if _, ok := art.Graph("a"); ok {
		t.Fatal("graph present before SetGraph")
	}
	g := &cfg.Graph{}
	art.SetGraph("a", g)
	if got, ok := art.Graph("a"); !ok || got != g {
		t.Fatalf("Graph(a) = %p/%v, want %p", got, ok, g)
	}
	if st := s.Stats(); st.Graphs != 1 {
		t.Errorf("Stats.Graphs = %d, want 1", st.Graphs)
	}
}

func TestStoreCountersAndConcurrency(t *testing.T) {
	s := NewStore(0)
	fs := sources()
	addUnit(t, s, fs, "a.c")
	addUnit(t, s, fs, "b.c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Lookup(fs, fp, "a.c")
				s.Lookup(fs, fp, "b.c")
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.UnitHits != 800 {
		t.Errorf("UnitHits = %d, want 800", st.UnitHits)
	}
}
