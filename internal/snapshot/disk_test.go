package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deviant/internal/cpp"
)

// diskSources builds a provider with one unit including one header, so
// entries carry a real dependency closure.
func diskSources() cpp.FileProvider {
	return cpp.MapFS(map[string]string{
		"u.c":         "#include \"include/h.h\"\nint f(int *p) { if (p) return *p; return X; }\n",
		"include/h.h": "#define X 7\n",
	})
}

// fillOne runs the cold path by hand: Lookup miss, then Add with a
// token-bearing artifact, exactly as core does against a persistent
// store.
func fillOne(t *testing.T, s *Store, fs cpp.FileProvider) string {
	t.Helper()
	const fp = "cfg-fp"
	if _, ok := s.Lookup(fs, fp, "u.c"); ok {
		t.Fatal("unexpected warm hit on empty store")
	}
	pp := cpp.New(fs, "include")
	src, err := fs.ReadFile("u.c")
	if err != nil {
		t.Fatal(err)
	}
	toks, err := pp.ProcessBytes("u.c", src)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	art := &Artifact{Lines: 2, Tokens: toks}
	s.Add(fs, fp, "u.c", pp.IncludeDeps(), pp.MissedProbes(), art)
	if art.Tokens != nil {
		t.Error("Add did not clear the token stream after persisting")
	}
	return fp
}

func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), entrySuffix) {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

// A restarted process (fresh Store over the same directory) must answer
// warm from disk with a reconstructed artifact.
func TestDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()

	s1 := NewStore(0)
	if s1.Persistent() {
		t.Fatal("store persistent before AttachDisk")
	}
	if err := s1.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	if !s1.Persistent() {
		t.Fatal("store not persistent after AttachDisk")
	}
	fp := fillOne(t, s1, fs)
	if st := s1.Stats(); st.DiskWrites != 1 || st.DiskEntries != 1 {
		t.Fatalf("after fill: %+v", st)
	}

	s2 := NewStore(0)
	if err := s2.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	art, ok := s2.Lookup(fs, fp, "u.c")
	if !ok {
		t.Fatal("restarted store missed a persisted entry")
	}
	if art.File == nil || len(art.File.Decls) == 0 {
		t.Fatal("rehydrated artifact has no parse tree")
	}
	if art.Lines != 2 {
		t.Errorf("rehydrated Lines = %d, want 2", art.Lines)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.DiskCorrupt != 0 {
		t.Errorf("restart stats: %+v", st)
	}

	// Any drift in the closure — here the header — must miss.
	drifted := cpp.MapFS(map[string]string{
		"u.c":         "#include \"include/h.h\"\nint f(int *p) { if (p) return *p; return X; }\n",
		"include/h.h": "#define X 8\n",
	})
	if _, ok := s2.Lookup(drifted, fp, "u.c"); ok {
		t.Error("stale artifact served after header drift")
	}
}

// Torn writes: a truncated entry must be detected at startup scan,
// evicted, and transparently recomputed — after which warm equals cold.
func TestDiskTornWriteTruncated(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()
	s1 := NewStore(0)
	if err := s1.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	fp := fillOne(t, s1, fs)

	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("entry files: %v", files)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(0)
	if err := s2.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskCorrupt != 1 || st.DiskEntries != 0 {
		t.Fatalf("truncated entry not evicted at scan: %+v", st)
	}
	if _, ok := s2.Lookup(fs, fp, "u.c"); ok {
		t.Fatal("truncated entry served")
	}
	if len(entryFiles(t, dir)) != 0 {
		t.Fatal("corrupt file left on disk")
	}
	// Recompute heals the cache: the next fill rewrites the entry and a
	// third store reads it warm.
	fillOne(t, s2, fs)
	s3 := NewStore(0)
	if err := s3.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Lookup(fs, fp, "u.c"); !ok {
		t.Fatal("healed entry not served warm")
	}
}

// A flipped payload byte fails the checksum at read time (the index was
// seeded before the corruption): detected, evicted, recomputed.
func TestDiskBitFlip(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()
	s := NewStore(0)
	if err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	fp := fillOne(t, s, fs)
	// Drop the resident copy so the next lookup must go to disk.
	s.mu.Lock()
	s.entries = make(map[string]*entry)
	s.mu.Unlock()

	files := entryFiles(t, dir)
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Lookup(fs, fp, "u.c"); ok {
		t.Fatal("bit-flipped entry served")
	}
	if st := s.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("flip not counted corrupt: %+v", st)
	}
	if len(entryFiles(t, dir)) != 0 {
		t.Fatal("corrupt file not removed")
	}
	fillOne(t, s, fs)
	if st := s.Stats(); st.DiskWrites != 2 {
		t.Fatalf("recompute did not rewrite: %+v", st)
	}
}

// A crash between temp-file create and rename leaves a temp file and no
// entry; the next open sweeps the temp and the cache recomputes.
func TestDiskCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()
	// Simulate the crash artifact: a half-written temp file.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And garbage that claims to be an entry.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef"+entrySuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewStore(0)
	if err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DiskCorrupt != 1 || st.DiskEntries != 0 {
		t.Fatalf("open over crash debris: %+v", st)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 0 {
		t.Fatalf("debris not swept: %v", des)
	}
	fp := fillOne(t, s, fs)
	if _, ok := s.Lookup(fs, fp, "u.c"); !ok {
		t.Fatal("store not functional after sweep")
	}
}

// A foreign file that passes the checksum but sits under the wrong name
// is distrusted: renaming an entry must not let it answer for another
// key.
func TestDiskRenamedEntryRejected(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()
	s1 := NewStore(0)
	if err := s1.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	fillOne(t, s1, fs)
	files := entryFiles(t, dir)
	if err := os.Rename(files[0], filepath.Join(dir, strings.Repeat("ab", 32)+entrySuffix)); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(0)
	if err := s2.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskEntries != 0 || st.DiskCorrupt != 1 {
		t.Fatalf("renamed entry accepted: %+v", st)
	}
}

// Flush clears the disk tier too.
func TestDiskFlush(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()
	s := NewStore(0)
	if err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	fp := fillOne(t, s, fs)
	s.Flush()
	if _, ok := s.Lookup(fs, fp, "u.c"); ok {
		t.Fatal("flushed entry served")
	}
	if len(entryFiles(t, dir)) != 0 {
		t.Fatal("flush left entry files")
	}
}

// The file format rejects a payload whose checksum was recomputed over
// different bytes (i.e. an attacker or bug rewrote payload+checksum but
// the magic is wrong) — belt and braces over readEntry's branches.
func TestDiskBadMagic(t *testing.T) {
	dir := t.TempDir()
	fs := diskSources()
	s := NewStore(0)
	if err := s.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	fillOne(t, s, fs)
	files := entryFiles(t, dir)
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(raw)
	copy(bad, []byte("NOTMAGIC"))
	if err := os.WriteFile(files[0], bad, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(0)
	if err := s2.AttachDisk(dir); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("bad magic accepted: %+v", st)
	}
}
