// Package snapshot is a content-addressed cache of per-translation-unit
// frontend results, the substrate of deviantd's incremental re-analysis.
//
// The analysis workflow the paper describes is iterative: checkers re-run
// after every edit and after every inspected report, and §4.2's
// cross-version diffing analyzes near-identical trees back to back. Most
// of each run's frontend work — preprocessing, parsing, CFG construction —
// is therefore identical to the previous run's. A Store keys every unit's
// frontend artifact (parse tree, parse diagnostics, line count, and the
// per-function CFGs built from that tree) by the unit's *transitive
// content digest*: a hash of the unit's own bytes, the bytes of every file
// its #includes resolved to, the include search candidates that were
// probed and found missing (creating one would shadow a resolved include),
// and a caller-supplied configuration fingerprint. A warm lookup re-hashes
// those inputs against the current file provider; any drift in any of them
// changes the key and forces a cold re-parse of exactly that unit.
//
// Invalidation rules (what forces a unit to re-parse):
//
//  1. the unit's own content changed;
//  2. the content of any transitively included file changed;
//  3. a file appeared at a path that was previously probed and missing
//     (include shadowing);
//  4. the configuration fingerprint changed — include dirs, -D defines,
//     crash-path pruning, or the latent conventions;
//  5. the entry was evicted (the store holds at most MaxUnits artifacts,
//     least recently used first out).
//
// Artifacts are shared, not copied: the parse tree and CFGs are immutable
// after construction (the parallel pipeline already shares them across
// checker goroutines), so one cached artifact may serve many concurrent
// requests.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cpp"
	"deviant/internal/ctoken"
)

// DefaultMaxUnits bounds a Store's resident artifacts when NewStore is
// given no explicit capacity.
const DefaultMaxUnits = 1024

// Artifact is everything the frontend produced for one translation unit.
type Artifact struct {
	// File is the unit's parse tree.
	File *cast.File
	// ParseErrors are the unit's preprocessing and parse diagnostics.
	ParseErrors []error
	// Lines is the unit's source line count.
	Lines int

	// Tokens, when non-nil, is the unit's preprocessed token stream —
	// the serialization form shared by the disk tier and the distributed
	// shard wire format. Parse trees share typed pointers and CFGs
	// contain cycles, neither of which survives gob; tokens are flat
	// exported data and reparse deterministically. The frontend sets
	// this only when the owning store is persistent or retains tokens
	// (see SetRetainTokens); without retention Add clears it once the
	// disk entry is written, so resident artifacts stay lean. Readers
	// racing that clear must go through TokensRef.
	Tokens []ctoken.Token

	mu     sync.Mutex
	graphs map[string]*cfg.Graph
}

// TokensRef returns the artifact's retained token stream (nil when the
// owning store does not retain tokens). It takes the artifact lock so a
// reader cannot race the clear in Store.Add on a non-retaining store.
func (a *Artifact) TokensRef() []ctoken.Token {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.Tokens
}

// Graph returns the cached CFG for the named function, if one was built
// from this artifact's tree.
func (a *Artifact) Graph(fn string) (*cfg.Graph, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	g, ok := a.graphs[fn]
	return g, ok
}

// SetGraph records the CFG built for the named function. The graph must
// be immutable from here on: it may be served to concurrent runs.
func (a *Artifact) SetGraph(fn string, g *cfg.Graph) {
	a.mu.Lock()
	if a.graphs == nil {
		a.graphs = make(map[string]*cfg.Graph)
	}
	a.graphs[fn] = g
	a.mu.Unlock()
}

// GraphCount returns the number of CFGs cached on this artifact.
func (a *Artifact) GraphCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.graphs)
}

// Stats is a point-in-time snapshot of store effectiveness.
type Stats struct {
	UnitHits   int64 // lookups answered from the store
	UnitMisses int64 // lookups that forced a cold frontend run
	Evictions  int64 // artifacts dropped by the LRU bound
	Units      int   // artifacts currently resident
	Graphs     int   // CFGs currently resident across all artifacts

	// LookupNs is the cumulative wall clock spent in Lookup — dominated
	// by re-hashing each unit's transitive content closure, which is the
	// price of a warm hit. Exposed so /metrics can show when digest
	// verification, not analysis, is the bottleneck.
	LookupNs int64

	// Disk tier counters, all zero when no disk is attached. DiskCorrupt
	// counts entries whose checksum failed — at startup scan or at read
	// time — and were evicted for recomputation (self-healing).
	DiskEntries int   // entries currently indexed on disk
	DiskHits    int64 // lookups answered by promoting a disk entry
	DiskWrites  int64 // entries persisted
	DiskCorrupt int64 // corrupt/torn entries detected and evicted
}

// RunStats reports what one analysis run reused from a Store. It is
// carried on core.Result so callers (the -stats flag, the service's
// response body and /metrics) can see incrementality working.
type RunStats struct {
	Enabled      bool `json:"enabled"`
	UnitsReused  int  `json:"units_reused"`
	UnitsParsed  int  `json:"units_parsed"`
	GraphsReused int  `json:"graphs_reused"`
	GraphsBuilt  int  `json:"graphs_built"`
}

// dep is one file the expansion of a unit consulted: either a resolved
// include (present, digest matters) or a probed-and-missing search
// candidate (absent, existence matters).
type dep struct {
	path    string
	present bool
}

// depList remembers how a (fingerprint, unit, unit-digest) expanded last
// time, so a warm lookup knows which files to hash.
type depList struct {
	deps []dep
	key  string // full transitive key the deps hashed to when recorded
}

type entry struct {
	art     *Artifact
	depKey  string // owning depList, for eviction cleanup
	lastUse uint64
}

// Store is the content-addressed artifact cache. All methods are safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	maxUnits int
	entries  map[string]*entry   // transitive key -> artifact
	depLists map[string]*depList // fingerprint|unit|unitDigest -> last dep set
	tick     uint64

	// disk, when non-nil, is the crash-safe persistent tier: entries
	// evicted from (or never resident in) memory can still be answered
	// from disk, including across process restarts. diskIdx maps
	// transitive keys to entry file names.
	disk    *disk
	diskIdx map[string]string

	// retainTokens keeps each artifact's preprocessed token stream
	// resident instead of dropping it after the disk write. Fleet
	// workers turn this on so a warm shard hit can ship its tokens
	// without re-preprocessing the unit.
	retainTokens bool

	hits, misses, evictions           atomic.Int64
	diskHits, diskWrites, diskCorrupt atomic.Int64
	lookupNs                          atomic.Int64 // cumulative Lookup wall clock
}

// NewStore returns an empty store holding at most maxUnits artifacts
// (<= 0 means DefaultMaxUnits).
func NewStore(maxUnits int) *Store {
	if maxUnits <= 0 {
		maxUnits = DefaultMaxUnits
	}
	return &Store{
		maxUnits: maxUnits,
		entries:  make(map[string]*entry),
		depLists: make(map[string]*depList),
	}
}

// Fingerprint hashes an arbitrary list of configuration strings into a
// cache-key component. Callers fold in everything that changes frontend
// or CFG output: include dirs, defines, pruning, conventions.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func digest(content []byte) string {
	sum := sha256.Sum256(content)
	return hex.EncodeToString(sum[:])
}

// transitiveKey hashes the full input closure of one unit against the
// current provider state. ok is false when a recorded dependency drifted
// in a way that cannot hash (a previously read file vanished, or a
// previously missing probe now resolves) — the caller must treat that as
// a miss.
func transitiveKey(fs cpp.FileProvider, fingerprint, unit, unitDigest string, deps []dep) (string, bool) {
	h := sha256.New()
	w := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	w(fingerprint)
	w(unit)
	w(unitDigest)
	for _, d := range deps {
		src, err := fs.ReadFile(d.path)
		if d.present {
			if err != nil {
				return "", false
			}
			w("+" + d.path)
			w(digest(src))
		} else {
			if err == nil {
				return "", false
			}
			w("-" + d.path)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

func depKeyOf(fingerprint, unit, unitDigest string) string {
	return fingerprint + "\x00" + unit + "\x00" + unitDigest
}

// Lookup returns the cached artifact for unit if the unit's transitive
// content closure — as recorded by the last Add for this (fingerprint,
// unit, content) — hashes to a resident entry under the current provider
// state.
func (s *Store) Lookup(fs cpp.FileProvider, fingerprint, unit string) (*Artifact, bool) {
	t0 := time.Now()
	defer func() { s.lookupNs.Add(int64(time.Since(t0))) }()
	src, err := fs.ReadFile(unit)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	dk := depKeyOf(fingerprint, unit, digest(src))
	s.mu.Lock()
	dl, ok := s.depLists[dk]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	// Hash the dependency closure outside the lock: ReadFile may hit disk.
	key, ok := transitiveKey(fs, fingerprint, unit, digest(src), dl.deps)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.tick++
		e.lastUse = s.tick
		s.mu.Unlock()
		s.hits.Add(1)
		return e.art, true
	}
	var file string
	retain := s.retainTokens
	if s.disk != nil {
		file = s.diskIdx[key]
	}
	s.mu.Unlock()
	if file == "" {
		s.misses.Add(1)
		return nil, false
	}
	// Promote from the disk tier. The entry's checksum is re-verified at
	// read time; a torn or corrupt entry is evicted so the cold re-parse
	// that follows recomputes and rewrites it (self-healing).
	art, ok := s.disk.load(file, retain)
	if !ok {
		s.diskCorrupt.Add(1)
		s.disk.remove(file)
		s.mu.Lock()
		delete(s.diskIdx, key)
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.diskHits.Add(1)
	s.hits.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, exists := s.entries[key]; exists {
		// Another goroutine promoted this key first; serve its artifact
		// so concurrent runs share one tree.
		s.tick++
		e.lastUse = s.tick
		return e.art, true
	}
	s.tick++
	s.entries[key] = &entry{art: art, depKey: dk, lastUse: s.tick}
	s.evictLocked()
	return art, true
}

// Add records the artifact produced by a cold frontend run over unit.
// includes are the resolved transitive include paths and missedProbes the
// probed-and-absent search candidates, both as reported by the
// preprocessor. The provider must still hold the bytes the frontend read
// (providers are per-request snapshots; nothing mutates them mid-run).
func (s *Store) Add(fs cpp.FileProvider, fingerprint, unit string, includes, missedProbes []string, art *Artifact) {
	src, err := fs.ReadFile(unit)
	if err != nil {
		return
	}
	deps := make([]dep, 0, len(includes)+len(missedProbes))
	for _, p := range includes {
		deps = append(deps, dep{path: p, present: true})
	}
	for _, p := range missedProbes {
		deps = append(deps, dep{path: p, present: false})
	}
	unitDigest := digest(src)
	key, ok := transitiveKey(fs, fingerprint, unit, unitDigest, deps)
	if !ok {
		return
	}
	dk := depKeyOf(fingerprint, unit, unitDigest)
	s.mu.Lock()
	s.tick++
	s.depLists[dk] = &depList{deps: deps, key: key}
	if _, exists := s.entries[key]; !exists {
		s.entries[key] = &entry{art: art, depKey: dk, lastUse: s.tick}
		s.evictLocked()
	} else {
		s.entries[key].lastUse = s.tick
	}
	d, retain := s.disk, s.retainTokens
	s.mu.Unlock()

	// Persist outside the lock: the write is temp-file + fsync + atomic
	// rename, so concurrent writers of the same key converge on one
	// complete entry and a crash at any instant leaves either the old
	// entry, the new entry, or a stripped temp file — never a torn one.
	if d != nil && art.Tokens != nil {
		if file, err := d.write(key, fingerprint, unit, unitDigest, deps, art); err == nil {
			s.diskWrites.Add(1)
			s.mu.Lock()
			s.diskIdx[key] = file
			s.mu.Unlock()
		}
		if !retain {
			// Clear under the artifact lock: the entry is already
			// published, so a concurrent TokensRef may be reading.
			art.mu.Lock()
			art.Tokens = nil
			art.mu.Unlock()
		}
	}
}

// SetRetainTokens controls whether resident artifacts keep their
// preprocessed token streams (see Artifact.Tokens). Off by default;
// fleet workers enable it so warm shard lookups can serve tokens.
func (s *Store) SetRetainTokens(on bool) {
	s.mu.Lock()
	s.retainTokens = on
	s.mu.Unlock()
}

// RetainsTokens reports whether the store keeps token streams resident.
func (s *Store) RetainsTokens() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retainTokens
}

// evictLocked drops least-recently-used entries until the store is within
// bounds. Callers hold s.mu.
func (s *Store) evictLocked() {
	for len(s.entries) > s.maxUnits {
		var victimKey string
		var victim *entry
		for k, e := range s.entries {
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if dl, ok := s.depLists[victim.depKey]; ok && dl.key == victimKey {
			// The dep list stays if the disk tier still holds the entry:
			// it is the map from content to key that lets a later lookup
			// find the on-disk artifact again.
			if _, onDisk := s.diskIdx[victimKey]; !onDisk {
				delete(s.depLists, victim.depKey)
			}
		}
		delete(s.entries, victimKey)
		s.evictions.Add(1)
	}
}

// Stats returns current counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	units := len(s.entries)
	diskEntries := len(s.diskIdx)
	graphs := 0
	for _, e := range s.entries {
		graphs += e.art.GraphCount()
	}
	s.mu.Unlock()
	return Stats{
		UnitHits:    s.hits.Load(),
		UnitMisses:  s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Units:       units,
		Graphs:      graphs,
		LookupNs:    s.lookupNs.Load(),
		DiskEntries: diskEntries,
		DiskHits:    s.diskHits.Load(),
		DiskWrites:  s.diskWrites.Load(),
		DiskCorrupt: s.diskCorrupt.Load(),
	}
}

// Flush empties the store, including any attached disk tier (counters
// are preserved). Used when a caller knows the world changed in a way
// the digests cannot see.
func (s *Store) Flush() {
	s.mu.Lock()
	s.entries = make(map[string]*entry)
	s.depLists = make(map[string]*depList)
	var files []string
	d := s.disk
	if d != nil {
		files = make([]string, 0, len(s.diskIdx))
		for _, f := range s.diskIdx {
			files = append(files, f)
		}
		s.diskIdx = make(map[string]string)
	}
	s.mu.Unlock()
	for _, f := range files {
		d.remove(f)
	}
}

// AttachDisk backs the store with a crash-safe persistent tier rooted
// at dir (created if absent). Existing entries are scanned: checksums
// verified, torn or corrupt files evicted (counted in Stats.DiskCorrupt)
// and temp files from crashed writers removed; surviving entries seed
// the dependency index so lookups hit disk across process restarts.
func (s *Store) AttachDisk(dir string) error {
	d, scanned, corrupt, err := openDisk(dir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.disk = d
	s.diskIdx = make(map[string]string, len(scanned))
	for _, e := range scanned {
		s.depLists[e.depKey] = &depList{deps: e.deps, key: e.key}
		s.diskIdx[e.key] = e.file
	}
	s.mu.Unlock()
	s.diskCorrupt.Add(corrupt)
	return nil
}

// Persistent reports whether a disk tier is attached. The frontend uses
// it to decide whether to hand Add the unit's token stream (the disk
// serialization form) along with the parse tree.
func (s *Store) Persistent() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk != nil
}
