// The snapshot store's persistent tier: one file per cached unit,
// written atomically (temp file + fsync + rename) and verified by a
// whole-payload SHA-256 checksum on every read. Corruption — a torn
// write from a crash, a flipped bit, a truncated file — is detected,
// the entry evicted, and the unit recomputed on the next cold run, so
// the cache self-heals without operator intervention.
//
// What gets persisted is deliberately not the parse tree: ASTs share
// typed pointers whose identity gob cannot preserve, and CFGs contain
// cycles gob cannot encode. The unit's preprocessed token stream is
// flat exported data that round-trips exactly, and reparsing it is
// deterministic — warm-from-disk output is byte-identical to cold.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"

	"deviant/internal/cparse"
	"deviant/internal/ctoken"
)

// diskMagic leads every entry file; a file without it is not ours.
var diskMagic = []byte("DVSNAP1\n")

// tmpPrefix marks in-progress writes. A crash between create and rename
// leaves one of these behind; openDisk sweeps them.
const tmpPrefix = ".tmp-"

const entrySuffix = ".art"

// diskDep mirrors dep with exported fields for gob.
type diskDep struct {
	Path    string
	Present bool
}

// diskEntry is the serialized form of one cached unit: enough metadata
// to rebuild the store's dependency index at startup, plus the token
// stream and rendered diagnostics to rehydrate the artifact.
type diskEntry struct {
	Fingerprint string
	Unit        string
	UnitDigest  string
	Key         string
	Deps        []diskDep
	Lines       int
	ParseErrors []string
	Tokens      []ctoken.Token
}

type disk struct {
	dir string
}

// scannedEntry is what openDisk reports per surviving file: the index
// material, without retaining the (potentially large) token stream.
type scannedEntry struct {
	key    string
	depKey string
	deps   []dep
	file   string
}

// openDisk prepares dir as a persistent tier: creates it if needed,
// removes temp files abandoned by crashed writers, verifies every
// entry's checksum and name, and deletes the ones that fail (returned
// as the corrupt count).
func openDisk(dir string) (*disk, []scannedEntry, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	var scanned []scannedEntry
	var corrupt int64
	for _, de := range names {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		e, ok := readEntry(filepath.Join(dir, name))
		if !ok || name != e.Key+entrySuffix {
			os.Remove(filepath.Join(dir, name))
			corrupt++
			continue
		}
		deps := make([]dep, len(e.Deps))
		for i, dd := range e.Deps {
			deps[i] = dep{path: dd.Path, present: dd.Present}
		}
		scanned = append(scanned, scannedEntry{
			key:    e.Key,
			depKey: depKeyOf(e.Fingerprint, e.Unit, e.UnitDigest),
			deps:   deps,
			file:   name,
		})
	}
	return &disk{dir: dir}, scanned, corrupt, nil
}

// readEntry reads one file and returns its decoded payload only if the
// magic, checksum and gob decode all hold.
func readEntry(path string) (*diskEntry, bool) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < len(diskMagic)+sha256.Size {
		return nil, false
	}
	if !bytes.Equal(raw[:len(diskMagic)], diskMagic) {
		return nil, false
	}
	sum := raw[len(diskMagic) : len(diskMagic)+sha256.Size]
	payload := raw[len(diskMagic)+sha256.Size:]
	if got := sha256.Sum256(payload); !bytes.Equal(sum, got[:]) {
		return nil, false
	}
	var e diskEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return nil, false
	}
	return &e, true
}

// load rehydrates one entry: the persisted token stream reparses into a
// fresh tree (CFGs rebuild lazily as checkers request them), and parse
// diagnostics are restored from their persisted rendering — exactly
// what the original run reported, so warm output stays byte-identical.
// keepTokens additionally leaves the token stream on the artifact, for
// stores that retain tokens (fleet workers shipping shard payloads).
func (d *disk) load(file string, keepTokens bool) (*Artifact, bool) {
	e, ok := readEntry(filepath.Join(d.dir, file))
	if !ok {
		return nil, false
	}
	f, _ := cparse.ParseFile(e.Unit, e.Tokens)
	if f == nil {
		return nil, false
	}
	var errs []error
	for _, s := range e.ParseErrors {
		errs = append(errs, errors.New(s))
	}
	art := &Artifact{File: f, ParseErrors: errs, Lines: e.Lines}
	if keepTokens {
		art.Tokens = e.Tokens
	}
	return art, true
}

// write persists one entry atomically: temp file in the same directory,
// full payload + checksum, fsync, close, rename. A crash at any point
// leaves either the previous entry or a temp file openDisk will sweep —
// never a partially visible entry.
func (d *disk) write(key, fingerprint, unit, unitDigest string, deps []dep, art *Artifact) (string, error) {
	e := diskEntry{
		Fingerprint: fingerprint,
		Unit:        unit,
		UnitDigest:  unitDigest,
		Key:         key,
		Lines:       art.Lines,
		Tokens:      art.Tokens,
	}
	for _, dp := range deps {
		e.Deps = append(e.Deps, diskDep{Path: dp.path, Present: dp.present})
	}
	for _, err := range art.ParseErrors {
		e.ParseErrors = append(e.ParseErrors, err.Error())
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&e); err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload.Bytes())

	f, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	_, werr := f.Write(diskMagic)
	if werr == nil {
		_, werr = f.Write(sum[:])
	}
	if werr == nil {
		_, werr = f.Write(payload.Bytes())
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", werr
	}
	file := key + entrySuffix
	if err := os.Rename(tmp, filepath.Join(d.dir, file)); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return file, nil
}

func (d *disk) remove(file string) {
	os.Remove(filepath.Join(d.dir, file))
}
