package core

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cparse"
	"deviant/internal/cpp"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/fault"
	"deviant/internal/intern"
	"deviant/internal/obs"
	"deviant/internal/report"
	"deviant/internal/snapshot"
)

// newResult returns an empty Result with every container initialized.
func newResult() *Result {
	return &Result{
		Reports:     report.NewCollector(),
		EngineStats: make(map[string]engine.RunStats),
		Timing:      Timing{Checkers: make(map[string]time.Duration)},
	}
}

// unitOut is one translation unit's frontend output before the fold.
type unitOut struct {
	file        *cast.File
	toks        []ctoken.Token // retained only when the caller wants tokens
	errs        []error
	readErr     error
	lines       int
	ppDur       time.Duration
	parse       time.Duration
	art         *snapshot.Artifact
	reused      bool
	quarantined bool
}

// runFrontend preprocesses and parses every unit concurrently. With a
// snapshot store attached, a unit whose transitive content digest
// matches a cached artifact reuses the previous parse tree outright;
// only genuinely changed units pay for preprocessing and parsing.
//
// wantTokens additionally retains each unit's preprocessed token stream
// (the distributed shard payload). A snapshot hit whose artifact holds
// no retained tokens is then treated as a miss — a hit must carry
// everything the caller needs or it is recomputed.
func (a *Analyzer) runFrontend(fs cpp.FileProvider, units []string, res *Result, qc *quarantine, root *obs.Span, wantTokens bool) []unitOut {
	workers := a.opts.Workers
	tr := a.opts.Tracer
	deadline := a.opts.Deadline
	deadlinePassed := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	snap := a.opts.Snapshot
	var confFP string
	if snap != nil {
		confFP = a.configFingerprint()
	}
	cache := cpp.NewTokenCache()
	// One identifier interner per run: every preprocessor shares it, so a
	// spelling is allocated once run-wide and equal identifier Texts share
	// a pointer (string comparison fast-paths on pointer equality).
	interner := intern.NewTable()
	outs := make([]unitOut, len(units))
	feStart := time.Now()
	feSpan := root.Child("frontend")
	parallelDo(workers, len(units), func(i int) {
		o := &outs[i]
		var usp *obs.Span
		if tr != nil {
			usp = feSpan.Fork("unit", obs.A("file", units[i]))
			defer usp.End()
		}
		if deadlinePassed() {
			o.quarantined = true
			qc.stageDeadline("frontend")
			return
		}
		panicked := false
		func() {
			defer qc.recoverInto("frontend", units[i], &panicked)
			if snap != nil {
				if art, ok := snap.Lookup(fs, confFP, units[i]); ok {
					var toks []ctoken.Token
					if wantTokens {
						toks = art.TokensRef()
					}
					if !wantTokens || toks != nil {
						o.file, o.errs, o.lines = art.File, art.ParseErrors, art.Lines
						o.art, o.reused, o.toks = art, true, toks
						usp.SetAttr("reused", "true")
						return
					}
				}
			}
			pp := cpp.New(fs, a.opts.IncludeDirs...)
			pp.UseCache(cache)
			pp.SetInterner(interner)
			for k, v := range a.opts.Defines {
				pp.Define(k, v)
			}
			src, err := fs.ReadFile(units[i])
			if err != nil {
				o.readErr = err
				return
			}
			o.lines = bytes.Count(src, []byte{'\n'}) + 1
			psp := usp.Child("preprocess")
			pp.SetTrace(psp)
			t0 := time.Now()
			toks, err := pp.ProcessBytes(units[i], src)
			o.ppDur = time.Since(t0)
			psp.End()
			if err != nil {
				o.errs = append(o.errs, pp.Errs()...)
			}
			psp = usp.Child("parse")
			t0 = time.Now()
			f, perrs := cparse.ParseFile(units[i], toks)
			o.parse = time.Since(t0)
			psp.End()
			o.errs = append(o.errs, perrs...)
			o.file = f
			if wantTokens {
				o.toks = toks
			}
			for _, d := range f.Decls {
				if fd, ok := d.(*cast.FuncDecl); ok {
					fault.Trap("frontend", fd.Name)
				}
			}
			if a.opts.UnitDeadline > 0 && o.ppDur+o.parse > a.opts.UnitDeadline {
				// Skip snap.Add too: a cached artifact would be reused on
				// the next run and silently un-quarantine the unit.
				qc.add("frontend", units[i], frontendBudgetCause(a.opts.UnitDeadline))
				o.quarantined = true
				o.file, o.toks = nil, nil
				return
			}
			if snap != nil {
				o.art = &snapshot.Artifact{File: f, ParseErrors: o.errs, Lines: o.lines}
				if snap.Persistent() || snap.RetainsTokens() {
					o.art.Tokens = toks
				}
				snap.Add(fs, confFP, units[i], pp.IncludeDeps(), pp.MissedProbes(), o.art)
			}
		}()
		if panicked {
			o.quarantined = true
			o.file, o.errs, o.art, o.toks = nil, nil, nil, nil
		}
	})
	feSpan.End()
	res.Timing.Frontend = time.Since(feStart)
	cstats := cache.Stats()
	res.Timing.TokenCacheHits, res.Timing.TokenCacheMisses = cstats.Hits, cstats.Misses
	res.Snapshot.Enabled = snap != nil
	return outs
}

// FrontendUnit is one translation unit's portable frontend output: the
// preprocessed token stream plus the diagnostics and line count the
// coordinator-side fold needs. Reparsing Tokens with cparse.ParseFile
// reproduces the unit's parse tree and diagnostics exactly (the same
// property the snapshot disk tier relies on), which is what makes the
// token stream a sufficient shard wire payload.
type FrontendUnit struct {
	Unit        string
	Tokens      []ctoken.Token
	Errs        []error
	Lines       int
	Reused      bool
	Preprocess  time.Duration
	Parse       time.Duration
	Quarantined bool
}

// FrontendResult is the per-unit half of a run: what a fleet worker
// computes for its shard and ships back for the global merge.
type FrontendResult struct {
	// Units holds one entry per requested unit, in request order. A
	// quarantined unit keeps its slot (Quarantined set, Tokens nil) so
	// positional folds stay aligned.
	Units []FrontendUnit
	// Records are the canonicalized frontend quarantine records and
	// Panics the recovered-panic count behind them.
	Records []fault.Record
	Panics  int
	// Snapshot reports reuse against Options.Snapshot, if any.
	Snapshot snapshot.RunStats
}

// Frontend runs only the per-unit half of the pipeline — preprocess and
// parse, with snapshot reuse — and returns portable per-unit outputs.
// It is the worker side of a distributed run: semantic indexing, CFGs,
// checkers and ranking are cross-unit by construction (the paper's
// statistics are only meaningful corpus-wide) and stay with the caller.
func (a *Analyzer) Frontend(fs cpp.FileProvider, units []string) (*FrontendResult, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("core: no translation units")
	}
	res := newResult()
	tr := a.opts.Tracer
	root := tr.Start("frontend", obs.A("units", strconv.Itoa(len(units))))
	defer root.End()
	qc := &quarantine{}
	outs := a.runFrontend(fs, units, res, qc, root, true)
	fr := &FrontendResult{Units: make([]FrontendUnit, len(units))}
	for i := range outs {
		if outs[i].readErr != nil {
			return nil, fmt.Errorf("core: %w", outs[i].readErr)
		}
		u := &fr.Units[i]
		u.Unit = units[i]
		u.Quarantined = outs[i].quarantined
		if outs[i].quarantined {
			continue
		}
		u.Tokens, u.Errs, u.Lines = outs[i].toks, outs[i].errs, outs[i].lines
		u.Reused = outs[i].reused
		u.Preprocess, u.Parse = outs[i].ppDur, outs[i].parse
		if res.Snapshot.Enabled {
			if outs[i].reused {
				res.Snapshot.UnitsReused++
			} else {
				res.Snapshot.UnitsParsed++
			}
		}
	}
	fr.Snapshot = res.Snapshot
	fr.Records, fr.Panics = qc.drain()
	return fr, nil
}

// ParsedUnit is one translation unit's decoded frontend output, ready
// for the global half of the pipeline.
type ParsedUnit struct {
	Name        string
	File        *cast.File // nil marks a unit quarantined upstream
	ParseErrors []error
	Lines       int
}

// AnalyzeParsed runs the global half of the pipeline — semantic
// indexing, CFG construction, checkers, derivation and ranking — over
// units parsed elsewhere, folding them in slice order. Callers must
// present units in the same sorted order AnalyzeSources uses; the
// result is then byte-identical to a single-process run over the same
// corpus, because the fold and everything downstream of it are exactly
// the code AnalyzeFS runs.
//
// pre seeds the quarantine with upstream failures (worker-side frontend
// records, fleet-level losses) and prePanics the recovered-panic count
// behind them; both merge canonically with any failures the global half
// adds.
func (a *Analyzer) AnalyzeParsed(units []ParsedUnit, pre []fault.Record, prePanics int) (*Result, error) {
	if len(units) == 0 && len(pre) == 0 {
		return nil, fmt.Errorf("core: no translation units")
	}
	start := time.Now()
	res := newResult()
	tr := a.opts.Tracer
	root := tr.Start("analyze-parsed", obs.A("units", strconv.Itoa(len(units))))
	defer root.End()
	qc := &quarantine{}
	qc.preload(pre, prePanics)
	files := make([]*cast.File, 0, len(units))
	for i := range units {
		if units[i].File == nil {
			continue
		}
		res.LineCount += units[i].Lines
		res.ParseErrors = append(res.ParseErrors, units[i].ParseErrors...)
		files = append(files, units[i].File)
	}
	return a.downstream(res, qc, root, start, files, nil)
}
