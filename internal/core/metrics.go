package core

import (
	"strings"

	"deviant/internal/obs"
)

// Metric family names shared by the CLI's -stats table and deviantd's
// /metrics endpoint, so the same run reads identically in both.
const (
	MetricStageSeconds    = "deviant_stage_seconds_total"
	MetricCheckerSeconds  = "deviant_checker_seconds_total"
	MetricCheckerReports  = "deviant_checker_reports_total"
	MetricCheckerVisits   = "deviant_checker_visits_total"
	MetricCheckerMemoHits = "deviant_checker_memo_hits_total"
	MetricReportZ         = "deviant_report_z"
	MetricTokenCacheHits  = "deviant_token_cache_hits_total"
	MetricTokenCacheMiss  = "deviant_token_cache_misses_total"
	MetricSnapshotUnits   = "deviant_snapshot_units_total"
	MetricSnapshotGraphs  = "deviant_snapshot_graphs_total"
	MetricFunctions       = "deviant_functions_analyzed_total"
	MetricLines           = "deviant_lines_analyzed_total"
	MetricRuns            = "deviant_runs_total"
	MetricQuarantined     = "deviant_quarantined_units_total"
	MetricPanics          = "deviant_recovered_panics_total"
	MetricDegradedRuns    = "deviant_degraded_runs_total"
)

// CheckerBase maps a report's checker name onto its top-level checker:
// "null/check-then-use" counts toward "null". Metric labels use the base
// name so one family row lines up with Timing.Checkers and EngineStats.
func CheckerBase(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// RecordMetrics folds this run's statistics into reg: per-stage and
// per-checker durations, per-checker report counts and z-score
// distributions, engine traversal effort, token-cache and snapshot
// reuse. Counters accumulate across runs, so a long-lived registry (the
// daemon's) sees service-lifetime totals while a fresh one (the CLI's)
// sees exactly one run. A nil registry is a no-op, keeping the library
// path instrumentation-free.
func (r *Result) RecordMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricRuns, "Analysis runs recorded.").Inc()
	stages := []struct {
		name string
		sec  float64
	}{
		{"frontend", r.Timing.Frontend.Seconds()},
		{"preprocess", r.Timing.Preprocess.Seconds()},
		{"parse", r.Timing.Parse.Seconds()},
		{"semantic", r.Timing.Semantic.Seconds()},
		{"cfg", r.Timing.CFG.Seconds()},
		{"total", r.Timing.Total.Seconds()},
	}
	for _, s := range stages {
		reg.Counter(MetricStageSeconds,
			"Wall-clock seconds per pipeline stage (preprocess/parse summed over units).",
			obs.L("stage", s.name)).Add(s.sec)
	}
	for name, d := range r.Timing.Checkers {
		reg.Counter(MetricCheckerSeconds, "Wall-clock seconds per checker.",
			obs.L("checker", name)).Add(d.Seconds())
		// Create the reports row eagerly so a checker that found nothing
		// still shows a zero instead of a missing series.
		reg.Counter(MetricCheckerReports, "Ranked reports emitted per checker.",
			obs.L("checker", name)).Add(0)
	}
	for name, st := range r.EngineStats {
		reg.Counter(MetricCheckerVisits, "CFG block visits performed per checker.",
			obs.L("checker", name)).Add(float64(st.Visits))
		reg.Counter(MetricCheckerMemoHits, "Block visits skipped by memoization per checker.",
			obs.L("checker", name)).Add(float64(st.MemoHits))
	}
	for _, rep := range r.Reports.Ranked() {
		base := CheckerBase(rep.Checker)
		reg.Counter(MetricCheckerReports, "", obs.L("checker", base)).Inc()
		if rep.Statistical() {
			reg.Histogram(MetricReportZ,
				"Distribution of z scores over each checker's statistical reports.",
				obs.ZScoreBuckets, obs.L("checker", base)).Observe(rep.Z)
		}
	}
	reg.Counter(MetricTokenCacheHits,
		"Header scans absorbed by the shared token cache.").Add(float64(r.Timing.TokenCacheHits))
	reg.Counter(MetricTokenCacheMiss,
		"Header scans that had to lex the file.").Add(float64(r.Timing.TokenCacheMisses))
	if r.Snapshot.Enabled {
		reg.Counter(MetricSnapshotUnits, "Translation units served per snapshot outcome.",
			obs.L("outcome", "reused")).Add(float64(r.Snapshot.UnitsReused))
		reg.Counter(MetricSnapshotUnits, "", obs.L("outcome", "parsed")).Add(float64(r.Snapshot.UnitsParsed))
		reg.Counter(MetricSnapshotGraphs, "Function CFGs served per snapshot outcome.",
			obs.L("outcome", "reused")).Add(float64(r.Snapshot.GraphsReused))
		reg.Counter(MetricSnapshotGraphs, "", obs.L("outcome", "built")).Add(float64(r.Snapshot.GraphsBuilt))
	}
	reg.Counter(MetricFunctions, "Functions analyzed.").Add(float64(r.FuncCount))
	reg.Counter(MetricLines, "Source lines analyzed.").Add(float64(r.LineCount))
	for _, q := range r.Quarantined {
		// Label by top-level stage ("checker:null" → "checker") to keep
		// series cardinality fixed regardless of checker selection.
		stage := q.Stage
		if i := strings.IndexByte(stage, ':'); i >= 0 {
			stage = stage[:i]
		}
		reg.Counter(MetricQuarantined,
			"Units of work quarantined instead of analyzed, by pipeline stage.",
			obs.L("stage", stage)).Inc()
	}
	if r.PanicsRecovered > 0 {
		reg.Counter(MetricPanics,
			"Worker panics recovered into quarantine records.").Add(float64(r.PanicsRecovered))
	}
	if r.Degraded {
		reg.Counter(MetricDegradedRuns,
			"Runs that completed with at least one quarantined unit.").Inc()
	}
}
