package core

import (
	"fmt"
	"sync"
	"time"

	"deviant/internal/fault"
)

// quarantine accumulates fault records from concurrent pipeline
// workers. Collection order is scheduling-dependent; finalize()
// canonicalizes (sort + dedup), which is what makes the quarantine
// section of a run byte-identical across worker counts.
type quarantine struct {
	mu       sync.Mutex
	recs     []fault.Record
	panics   int
	deadline bool
}

func (q *quarantine) add(stage, unit, cause string) {
	q.mu.Lock()
	q.recs = append(q.recs, fault.Record{Unit: unit, Stage: stage, Cause: cause})
	q.mu.Unlock()
}

// recoverInto is deferred around one unit of work: a panic becomes a
// quarantine record, and when flag is non-nil *flag signals the caller
// to discard the unit's partial outputs.
func (q *quarantine) recoverInto(stage, unit string, flag *bool) {
	r := recover()
	if r == nil {
		return
	}
	q.mu.Lock()
	q.panics++
	q.recs = append(q.recs, fault.Record{Unit: unit, Stage: stage, Cause: fault.Redact(r)})
	q.mu.Unlock()
	if flag != nil {
		*flag = true
	}
}

// preload seeds the quarantine with records produced upstream of this
// process — a coordinator folding worker-side frontend failures (and
// their recovered-panic counts) into the global half of a distributed
// run. finalize canonicalizes the union, so preloaded and local records
// end up in one deterministic (stage, unit, cause) order.
func (q *quarantine) preload(recs []fault.Record, panics int) {
	q.mu.Lock()
	q.recs = append(q.recs, recs...)
	q.panics += panics
	q.mu.Unlock()
}

// stageDeadline records that a stage stopped taking work at the run
// deadline: one aggregate record per stage (finalize dedups), since a
// per-item record for every piece of skipped work would bloat the
// quarantine list without adding information.
func (q *quarantine) stageDeadline(stage string) {
	q.mu.Lock()
	q.deadline = true
	q.recs = append(q.recs, fault.Record{Unit: "*", Stage: stage, Cause: "deadline-exceeded"})
	q.mu.Unlock()
}

func (q *quarantine) markDeadline() {
	q.mu.Lock()
	q.deadline = true
	q.mu.Unlock()
}

// drain returns the canonicalized records and the recovered-panic count
// without touching a Result — the worker-side path, where records travel
// over the wire to a coordinator instead of into a local run.
func (q *quarantine) drain() ([]fault.Record, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return fault.Canonicalize(q.recs), q.panics
}

func (q *quarantine) finalize(res *Result) {
	q.mu.Lock()
	defer q.mu.Unlock()
	res.Quarantined = fault.Canonicalize(q.recs)
	res.Degraded = len(res.Quarantined) > 0
	res.PanicsRecovered = q.panics
	res.DeadlineExceeded = res.DeadlineExceeded || q.deadline
}

func visitBudgetCause(budget int) string {
	return fmt.Sprintf("budget-exceeded: visit ceiling %d", budget)
}

func frontendBudgetCause(d time.Duration) string {
	return "budget-exceeded: frontend wall clock over " + d.String()
}
