package core

import (
	"sync"
	"sync/atomic"
)

// parallelDo runs fn(i) for every i in [0, n) using at most workers
// goroutines, handing out indices dynamically so uneven items cannot
// serialize a stage. With one worker (or one item) it runs inline on the
// caller's goroutine — the serial path has no scheduling overhead.
func parallelDo(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// span is one contiguous shard of the function list. Shards are always
// contiguous and always folded back in index order: that is what makes
// every sharded accumulator — site lists, first-seen maps, path lists,
// report collectors — end up byte-identical to the serial run no matter
// how many workers raced over the shards.
type span struct{ lo, hi int }

// chunkSpans partitions [0, n) into contiguous, roughly equal spans,
// several per worker for load balance. One worker gets one span.
func chunkSpans(n, workers int) []span {
	if n <= 0 {
		return nil
	}
	const perWorker = 4
	count := workers * perWorker
	if workers <= 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	out := make([]span, 0, count)
	for i := 0; i < count; i++ {
		lo, hi := i*n/count, (i+1)*n/count
		if lo < hi {
			out = append(out, span{lo, hi})
		}
	}
	return out
}
