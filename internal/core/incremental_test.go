package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deviant/internal/snapshot"
)

// incrHeader is shared by every unit of the incremental test corpus.
const incrHeader = `
#define NULL 0
struct dev { int count; int *buf; struct lock *lk; };
struct lock { int held; };
void *kmalloc(int n);
void kfree(void *p);
void printk(const char *fmt, ...);
void spin_lock(struct lock *l);
void spin_unlock(struct lock *l);
void panic(const char *fmt, ...);
`

// incrSources is a three-unit corpus with cross-unit statistical signal
// (kmalloc checked in some callers, not others) so that editing one unit
// perturbs global rule derivation and ranking.
func incrSources() map[string]string {
	return map[string]string{
		"include/kernel.h": incrHeader,
		"alpha.c": `
#include "kernel.h"
int alpha_init(struct dev *d) {
	int *b = kmalloc(16);
	if (!b)
		return -1;
	d->buf = b;
	return 0;
}
int alpha_reset(struct dev *d) {
	if (d == NULL)
		printk("reset %d\n", d->count);
	return 0;
}
`,
		"beta.c": `
#include "kernel.h"
int beta_grow(struct dev *d, int n) {
	int *b = kmalloc(n);
	if (!b)
		return -1;
	d->buf = b;
	return 0;
}
void beta_work(struct dev *d) {
	spin_lock(d->lk);
	d->count++;
	spin_unlock(d->lk);
}
`,
		"gamma.c": `
#include "kernel.h"
int gamma_open(struct dev *d) {
	int *b = kmalloc(8);
	b[0] = 1;
	return 0;
}
`,
	}
}

// renderResult flattens everything user-visible about a run into one
// string, so byte-identity between warm and cold runs is a single compare.
func renderResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "funcs=%d lines=%d parse_errors=%d\n",
		res.FuncCount, res.LineCount, len(res.ParseErrors))
	for i, r := range res.Reports.Ranked() {
		fmt.Fprintf(&b, "%4d. %s\n", i+1, r.String())
	}
	for _, p := range res.Pairs {
		fmt.Fprintf(&b, "pair %s/%s %d/%d z=%.4f\n", p.A, p.B, p.Examples(), p.Checks, p.Z)
	}
	for _, d := range res.CanFail {
		fmt.Fprintf(&b, "canfail %s %d/%d z=%.4f\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
	for _, bd := range res.LockBindings {
		fmt.Fprintf(&b, "lock %s/%s %d/%d z=%.4f\n", bd.Lock, bd.Var, bd.Examples(), bd.Checks, bd.Z)
	}
	return b.String()
}

// TestIncrementalDeterminism is the acceptance pin for the snapshot
// subsystem: after editing 1 of 3 units, a warm run over the store must
// re-parse only the edited unit (asserted via the run's cache counters)
// and produce output byte-identical to a cold full run.
func TestIncrementalDeterminism(t *testing.T) {
	store := snapshot.NewStore(0)
	warmOpts := DefaultOptions()
	warmOpts.Snapshot = store
	warm := New(warmOpts, nil)

	v1 := incrSources()
	r1, err := warm.AnalyzeSources(v1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Snapshot.UnitsParsed != 3 || r1.Snapshot.UnitsReused != 0 {
		t.Fatalf("cold fill: %+v, want 3 parsed / 0 reused", r1.Snapshot)
	}
	if r1.Snapshot.GraphsBuilt == 0 || r1.Snapshot.GraphsReused != 0 {
		t.Fatalf("cold fill graphs: %+v", r1.Snapshot)
	}

	// Edit one unit: gamma_open grows a check, shifting the global
	// can-fail evidence for kmalloc.
	v2 := incrSources()
	v2["gamma.c"] = `
#include "kernel.h"
int gamma_open(struct dev *d) {
	int *b = kmalloc(8);
	if (!b)
		return -1;
	b[0] = 1;
	return 0;
}
`
	r2, err := warm.AnalyzeSources(v2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Snapshot.UnitsReused != 2 || r2.Snapshot.UnitsParsed != 1 {
		t.Fatalf("warm run: %+v, want 2 reused / 1 parsed", r2.Snapshot)
	}
	if r2.Snapshot.GraphsReused == 0 {
		t.Fatalf("warm run reused no graphs: %+v", r2.Snapshot)
	}

	cold, err := New(DefaultOptions(), nil).AnalyzeSources(v2)
	if err != nil {
		t.Fatal(err)
	}
	warmOut, coldOut := renderResult(r2), renderResult(cold)
	if warmOut != coldOut {
		t.Errorf("warm incremental output diverges from cold run:\n--- warm\n%s--- cold\n%s", warmOut, coldOut)
	}
	if !strings.Contains(warmOut, "canfail kmalloc") {
		t.Errorf("corpus lost its statistical signal:\n%s", warmOut)
	}

	// The edit must actually change analysis output (otherwise this test
	// could pass by serving fully stale results).
	if renderResult(r1) == warmOut {
		t.Error("editing gamma.c did not change output; test corpus is too weak")
	}
}

// TestIncrementalDeterminismAcrossWorkers pins that reuse composes with
// the parallel pipeline: every worker count over a warm store yields the
// same bytes.
func TestIncrementalDeterminismAcrossWorkers(t *testing.T) {
	v2 := incrSources()
	v2["beta.c"] = strings.Replace(v2["beta.c"], "d->count++", "d->count += 2", 1)

	var want string
	for _, workers := range []int{1, 4, 8} {
		store := snapshot.NewStore(0)
		opts := DefaultOptions()
		opts.Snapshot = store
		opts.Workers = workers
		a := New(opts, nil)
		if _, err := a.AnalyzeSources(incrSources()); err != nil {
			t.Fatal(err)
		}
		res, err := a.AnalyzeSources(v2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Snapshot.UnitsReused != 2 {
			t.Fatalf("workers=%d: %+v, want 2 reused", workers, res.Snapshot)
		}
		out := renderResult(res)
		if want == "" {
			want = out
		} else if out != want {
			t.Errorf("workers=%d: output differs from workers=1", workers)
		}
	}
}

// TestSnapshotDisabledIsZeroValued pins that runs without a store report
// no reuse stats, so callers can gate display on Snapshot.Enabled.
func TestSnapshotDisabledIsZeroValued(t *testing.T) {
	res, err := New(DefaultOptions(), nil).AnalyzeSources(incrSources())
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != (snapshot.RunStats{}) {
		t.Errorf("Snapshot = %+v, want zero value", res.Snapshot)
	}
}

// TestPersistentSnapshotAcrossRestart is the acceptance pin for the
// snapshot store's disk tier: a fresh Store over the same cache
// directory (a simulated process restart) must reuse every unit and
// produce byte-identical output; corrupting an entry on disk must be
// detected, evicted and recomputed — after which warm equals cold
// again.
func TestPersistentSnapshotAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srcs := incrSources()

	cold := func() (*Result, *snapshot.Store) {
		store := snapshot.NewStore(0)
		if err := store.AttachDisk(dir); err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Snapshot = store
		res, err := New(opts, nil).AnalyzeSources(srcs)
		if err != nil {
			t.Fatal(err)
		}
		return res, store
	}

	r1, s1 := cold()
	if r1.Snapshot.UnitsParsed != 3 {
		t.Fatalf("first run: %+v, want 3 parsed", r1.Snapshot)
	}
	if st := s1.Stats(); st.DiskWrites != 3 {
		t.Fatalf("first run disk writes: %+v", st)
	}
	want := renderResult(r1)

	// Restart: brand-new store, same directory, all units from disk.
	r2, s2 := cold()
	if r2.Snapshot.UnitsReused != 3 || r2.Snapshot.UnitsParsed != 0 {
		t.Fatalf("restart run: %+v, want 3 reused", r2.Snapshot)
	}
	if st := s2.Stats(); st.DiskHits != 3 {
		t.Fatalf("restart disk hits: %+v", st)
	}
	if got := renderResult(r2); got != want {
		t.Errorf("warm-from-disk output differs from cold:\n--- cold ---\n%s--- warm ---\n%s", want, got)
	}

	// Corrupt one entry (flip a payload byte): the next restart detects
	// it, re-parses exactly that unit, rewrites it, and output is still
	// byte-identical.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".art") || corrupted {
			continue
		}
		p := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
	}
	if !corrupted {
		t.Fatal("no entry file found to corrupt")
	}

	r3, s3 := cold()
	if st := s3.Stats(); st.DiskCorrupt != 1 {
		t.Fatalf("corruption not detected: %+v", st)
	}
	if r3.Snapshot.UnitsReused != 2 || r3.Snapshot.UnitsParsed != 1 {
		t.Fatalf("post-corruption run: %+v, want 2 reused / 1 parsed", r3.Snapshot)
	}
	if got := renderResult(r3); got != want {
		t.Errorf("post-corruption output differs from cold:\n%s", got)
	}

	// Fully healed: one more restart reuses everything again.
	r4, _ := cold()
	if r4.Snapshot.UnitsReused != 3 {
		t.Fatalf("healed run: %+v, want 3 reused", r4.Snapshot)
	}
	if got := renderResult(r4); got != want {
		t.Errorf("healed output differs from cold")
	}
}
