package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"deviant/internal/fault"
)

// quarantineSources is a small multi-unit corpus with distinctive
// function names the failpoint tests can target.
func quarantineSources() map[string]string {
	return map[string]string{
		"a.c": `
void *kmalloc(int n);
int qtrap_alpha(int *p) {
	if (p == 0)
		return -1;
	return *p;
}
int healthy_a(void) {
	int *b = kmalloc(4);
	if (!b)
		return -1;
	b[0] = 1;
	return 0;
}
`,
		"b.c": `
void *kmalloc(int n);
int qtrap_beta(int x) {
	return x + 1;
}
int healthy_b(int *p) {
	return p ? *p : 0;
}
`,
		"c.c": `
int healthy_c(int v) {
	if (v > 0)
		return v;
	return -v;
}
`,
	}
}

// renderWithQuarantine extends the determinism rendering with the
// quarantine section so byte-identity pins cover it.
func renderWithQuarantine(res *Result) string {
	var b strings.Builder
	b.WriteString(renderResult(res))
	fmt.Fprintf(&b, "degraded=%v panics=%d\n", res.Degraded, res.PanicsRecovered)
	for _, q := range res.Quarantined {
		fmt.Fprintf(&b, "quarantine %s\n", q)
	}
	return b.String()
}

func analyzeWorkers(t *testing.T, srcs map[string]string, workers int, mutate func(*Options)) *Result {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	if mutate != nil {
		mutate(&opts)
	}
	res, err := New(opts, nil).AnalyzeSources(srcs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A panic injected into the checker stage must quarantine exactly the
// trapped functions — per checker — while every other function's
// reports survive, byte-identically across Workers 1/4/8.
func TestQuarantineCheckerDeterminism(t *testing.T) {
	fault.Arm("checker", "qtrap")
	defer fault.Reset()

	var renders []string
	for _, w := range []int{1, 4, 8} {
		res := analyzeWorkers(t, quarantineSources(), w, nil)
		if !res.Degraded || len(res.Quarantined) == 0 {
			t.Fatalf("workers=%d: no quarantine despite armed trap", w)
		}
		if res.PanicsRecovered == 0 {
			t.Fatalf("workers=%d: PanicsRecovered=0", w)
		}
		for _, q := range res.Quarantined {
			if !strings.HasPrefix(q.Stage, "checker:") {
				t.Fatalf("workers=%d: unexpected stage %q", w, q.Stage)
			}
			if !strings.Contains(q.Unit, "qtrap") {
				t.Fatalf("workers=%d: healthy function %q quarantined", w, q.Unit)
			}
			if !strings.HasPrefix(q.Cause, "injected: ") {
				t.Fatalf("workers=%d: cause not redacted-injected: %q", w, q.Cause)
			}
		}
		renders = append(renders, renderWithQuarantine(res))
	}
	if renders[0] != renders[1] || renders[0] != renders[2] {
		t.Errorf("output differs across worker counts:\n-- w1 --\n%s\n-- w4 --\n%s\n-- w8 --\n%s",
			renders[0], renders[1], renders[2])
	}
	// Healthy functions must still be analyzed: the run is degraded, not
	// dead.
	res := analyzeWorkers(t, quarantineSources(), 4, nil)
	if res.FuncCount != 5 {
		t.Errorf("FuncCount = %d, want 5 (semantic index keeps all)", res.FuncCount)
	}
}

// A frontend panic quarantines the whole translation unit: its lines,
// diagnostics and declarations vanish from the result, other units are
// untouched, and the quarantine section is worker-count independent.
func TestQuarantineFrontend(t *testing.T) {
	fault.Arm("frontend", "qtrap_beta")
	defer fault.Reset()

	var renders []string
	for _, w := range []int{1, 4, 8} {
		res := analyzeWorkers(t, quarantineSources(), w, nil)
		if len(res.Quarantined) != 1 {
			t.Fatalf("workers=%d: quarantined = %v, want exactly b.c", w, res.Quarantined)
		}
		q := res.Quarantined[0]
		if q.Stage != "frontend" || q.Unit != "b.c" {
			t.Fatalf("workers=%d: record %+v, want frontend b.c", w, q)
		}
		// b.c's two functions are gone; a.c and c.c's three remain.
		if res.FuncCount != 3 {
			t.Fatalf("workers=%d: FuncCount = %d, want 3", w, res.FuncCount)
		}
		renders = append(renders, renderWithQuarantine(res))
	}
	if renders[0] != renders[1] || renders[0] != renders[2] {
		t.Errorf("frontend quarantine output differs across worker counts")
	}
}

// A CFG-stage panic quarantines one function: it drops out of every
// checker, the rest of its unit survives.
func TestQuarantineCFG(t *testing.T) {
	fault.Arm("cfg", "qtrap_alpha")
	defer fault.Reset()

	var renders []string
	for _, w := range []int{1, 4, 8} {
		res := analyzeWorkers(t, quarantineSources(), w, nil)
		if len(res.Quarantined) != 1 {
			t.Fatalf("workers=%d: quarantined = %v", w, res.Quarantined)
		}
		q := res.Quarantined[0]
		if q.Stage != "cfg" || q.Unit != "qtrap_alpha" {
			t.Fatalf("workers=%d: record %+v, want cfg qtrap_alpha", w, q)
		}
		// The function still exists semantically but was never checked.
		if res.FuncCount != 5 {
			t.Fatalf("workers=%d: FuncCount = %d, want 5", w, res.FuncCount)
		}
		for _, r := range res.Reports.Ranked() {
			if strings.Contains(r.Message, "qtrap_alpha") {
				t.Fatalf("workers=%d: quarantined function still produced report %s", w, r.String())
			}
		}
		renders = append(renders, renderWithQuarantine(res))
	}
	if renders[0] != renders[1] || renders[0] != renders[2] {
		t.Errorf("cfg quarantine output differs across worker counts")
	}
}

// Disarmed failpoints must change nothing: same bytes as a run that
// never knew about fault containment.
func TestQuarantineDisarmedIsClean(t *testing.T) {
	fault.Reset()
	res := analyzeWorkers(t, quarantineSources(), 4, nil)
	if res.Degraded || len(res.Quarantined) != 0 || res.PanicsRecovered != 0 {
		t.Fatalf("clean run degraded: %+v", res.Quarantined)
	}
}

// A tiny visit budget quarantines the functions that blow it — the same
// set for every worker count, since visit counts are content-driven.
func TestQuarantineVisitBudget(t *testing.T) {
	fault.Reset()
	withBudget := func(o *Options) { o.VisitBudget = 2 }
	var renders []string
	for _, w := range []int{1, 4, 8} {
		res := analyzeWorkers(t, quarantineSources(), w, withBudget)
		if !res.Degraded {
			t.Fatalf("workers=%d: VisitBudget=2 quarantined nothing", w)
		}
		for _, q := range res.Quarantined {
			if !strings.HasPrefix(q.Stage, "checker:") || !strings.HasPrefix(q.Cause, "budget-exceeded:") {
				t.Fatalf("workers=%d: unexpected record %+v", w, q)
			}
		}
		if res.PanicsRecovered != 0 {
			t.Errorf("workers=%d: budget overrun counted as panic", w)
		}
		renders = append(renders, renderWithQuarantine(res))
	}
	if renders[0] != renders[1] || renders[0] != renders[2] {
		t.Errorf("visit-budget quarantine differs across worker counts:\n%s\nvs\n%s\nvs\n%s",
			renders[0], renders[1], renders[2])
	}
	// A generous budget quarantines nothing and matches the default run.
	loose := analyzeWorkers(t, quarantineSources(), 4, func(o *Options) { o.VisitBudget = 1 << 20 })
	if loose.Degraded {
		t.Errorf("generous budget still quarantined: %v", loose.Quarantined)
	}
}

// An already-expired run deadline yields a degraded result with
// DeadlineExceeded set and aggregate per-stage records — not an error,
// not a hang, not a crash.
func TestQuarantineRunDeadline(t *testing.T) {
	fault.Reset()
	res := analyzeWorkers(t, quarantineSources(), 4, func(o *Options) {
		o.Deadline = time.Now().Add(-time.Second)
	})
	if !res.DeadlineExceeded || !res.Degraded {
		t.Fatalf("expired deadline: DeadlineExceeded=%v Degraded=%v", res.DeadlineExceeded, res.Degraded)
	}
	if res.FuncCount != 0 {
		t.Errorf("FuncCount = %d after pre-expired deadline, want 0", res.FuncCount)
	}
	seen := false
	for _, q := range res.Quarantined {
		if q.Unit != "*" || q.Cause != "deadline-exceeded" {
			t.Errorf("unexpected deadline record %+v", q)
		}
		if q.Stage == "frontend" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("no frontend deadline record: %v", res.Quarantined)
	}
}

// Quarantine must also be invariant to memoization: the trap fires
// before the engine touches the accumulator, so memo on/off sees the
// same quarantine set.
func TestQuarantineMemoInvariant(t *testing.T) {
	fault.Arm("checker", "qtrap")
	defer fault.Reset()
	on := analyzeWorkers(t, quarantineSources(), 4, nil)
	off := analyzeWorkers(t, quarantineSources(), 4, func(o *Options) { o.Memoize = false })
	a, b := fmt.Sprint(on.Quarantined), fmt.Sprint(off.Quarantined)
	if a != b {
		t.Errorf("quarantine differs memo on/off:\n%s\nvs\n%s", a, b)
	}
}
