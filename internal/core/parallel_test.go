package core

import (
	"sync/atomic"
	"testing"
)

func TestChunkSpansCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 2}, {64, 1}, {64, 4}, {100, 8}, {3, 16},
	} {
		spans := chunkSpans(tc.n, tc.workers)
		next := 0
		for _, s := range spans {
			if s.lo != next {
				t.Fatalf("chunkSpans(%d, %d): span starts at %d, want %d", tc.n, tc.workers, s.lo, next)
			}
			if s.hi <= s.lo {
				t.Fatalf("chunkSpans(%d, %d): empty span %+v", tc.n, tc.workers, s)
			}
			next = s.hi
		}
		if next != tc.n {
			t.Fatalf("chunkSpans(%d, %d): covers [0, %d), want [0, %d)", tc.n, tc.workers, next, tc.n)
		}
		if tc.workers <= 1 && tc.n > 0 && len(spans) != 1 {
			t.Fatalf("chunkSpans(%d, 1) = %d spans, want 1 (serial path must see one shard)", tc.n, len(spans))
		}
	}
}

func TestParallelDoVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 200
		var hits [n]atomic.Int32
		parallelDo(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}
