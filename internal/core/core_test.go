package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deviant/internal/checkers/null"
	"deviant/internal/cpp"
)

const miniHeader = `
#define NULL 0
struct s { int x; struct s *next; };
void *kmalloc(int n);
void printk(const char *fmt, ...);
void panic(const char *fmt, ...);
`

func analyzeSrc(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	res, err := New(opts, nil).AnalyzeSources(map[string]string{
		"unit.c":           src,
		"include/kernel.h": miniHeader,
	})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func TestPipelineFindsNullBug(t *testing.T) {
	res := analyzeSrc(t, `
#include "kernel.h"
void f(struct s *p) {
	if (p == NULL)
		printk("%d\n", p->x);
}
`, DefaultOptions())
	rs := res.Reports.ByChecker("null")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", res.Reports.Ranked())
	}
	if !strings.Contains(rs[0].Message, "p") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestChecksSubset(t *testing.T) {
	src := `
#include "kernel.h"
void f(struct s *p) {
	if (p == NULL)
		printk("%d\n", p->x);
}
`
	opts := DefaultOptions()
	opts.Checks = Checks{Fail: true} // null checker off
	res := analyzeSrc(t, src, opts)
	if len(res.Reports.ByChecker("null")) != 0 {
		t.Error("disabled checker produced reports")
	}
}

func TestNullConfigOverride(t *testing.T) {
	src := `
#include "kernel.h"
void f(struct s *p) {
	if (p == NULL)
		printk("%d\n", p->x);
}
`
	opts := DefaultOptions()
	cfgn := null.Config{UseThenCheck: true} // check-then-use off
	opts.NullConfig = &cfgn
	res := analyzeSrc(t, src, opts)
	if len(res.Reports.ByChecker("null/check-then-use")) != 0 {
		t.Error("overridden config ignored")
	}
}

func TestParseErrorsNonFatal(t *testing.T) {
	res := analyzeSrc(t, `
#include "kernel.h"
int bad syntax here @;
void f(struct s *p) {
	if (p == NULL)
		printk("%d\n", p->x);
}
`, DefaultOptions())
	if len(res.ParseErrors) == 0 {
		t.Error("expected frontend diagnostics")
	}
	if len(res.Reports.ByChecker("null")) != 1 {
		t.Errorf("analysis should survive parse errors: %+v", res.Reports.Ranked())
	}
}

func TestMissingIncludeSurfacesError(t *testing.T) {
	res, err := New(DefaultOptions(), nil).AnalyzeSources(map[string]string{
		"unit.c": "#include \"nope.h\"\nint x;\n",
	})
	if err != nil {
		t.Fatalf("missing include should be a diagnostic, not fatal: %v", err)
	}
	if len(res.ParseErrors) == 0 {
		t.Error("missing include not reported")
	}
}

func TestNoUnitsErrors(t *testing.T) {
	if _, err := New(DefaultOptions(), nil).AnalyzeSources(map[string]string{"a.h": "int x;"}); err == nil {
		t.Error("no .c units should error")
	}
}

func TestDefines(t *testing.T) {
	opts := DefaultOptions()
	opts.Defines = map[string]string{"CONFIG_SMP": "1"}
	res, err := New(opts, nil).AnalyzeSources(map[string]string{
		"a.c": `
#define NULL 0
struct s { int x; };
#ifdef CONFIG_SMP
void f(struct s *p) { if (p == NULL) use(p->x); }
#endif
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports.ByChecker("null")) != 1 {
		t.Errorf("define not applied: %+v", res.Reports.Ranked())
	}
}

func TestEngineStatsPopulated(t *testing.T) {
	res := analyzeSrc(t, `
#include "kernel.h"
void f(struct s *p) { use(p->x); }
`, DefaultOptions())
	st, ok := res.EngineStats["null"]
	if !ok || st.Visits == 0 {
		t.Errorf("engine stats: %+v", res.EngineStats)
	}
}

func TestAnalyzeFSWithDirFS(t *testing.T) {
	dir := t.TempDir()
	fs := cpp.MapFS{} // sanity: MapFS path also works through AnalyzeFS
	_ = fs
	writeFile(t, dir+"/m.c", "#include \"k.h\"\nvoid f(struct s *p) { if (p == NULL) use(p->x); }\n")
	writeFile(t, dir+"/include/k.h", miniHeader)
	res, err := New(DefaultOptions(), nil).AnalyzeFS(cpp.DirFS(dir), []string{"m.c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports.ByChecker("null")) != 1 {
		t.Errorf("DirFS analysis: %+v", res.Reports.Ranked())
	}
}

func TestLineAndFuncCounts(t *testing.T) {
	res := analyzeSrc(t, `
#include "kernel.h"
void f(void) { }
void g(void) { }
`, DefaultOptions())
	if res.FuncCount != 2 {
		t.Errorf("funcs: %d", res.FuncCount)
	}
	if res.LineCount < 4 {
		t.Errorf("lines: %d", res.LineCount)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
