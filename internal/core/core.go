// Package core wires the full analysis pipeline together: preprocess,
// parse, index, build CFGs (with crash-path pruning), run the selected
// checkers down every path, and collect ranked reports. It is the
// internal engine behind the public deviant package.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/checkers/fail"
	"deviant/internal/checkers/freecheck"
	"deviant/internal/checkers/intr"
	"deviant/internal/checkers/iserr"
	"deviant/internal/checkers/lockvar"
	"deviant/internal/checkers/null"
	"deviant/internal/checkers/pairing"
	"deviant/internal/checkers/redundant"
	"deviant/internal/checkers/retconv"
	"deviant/internal/checkers/reverse"
	"deviant/internal/checkers/seccheck"
	"deviant/internal/checkers/userptr"
	"deviant/internal/cpp"
	"deviant/internal/csem"
	"deviant/internal/engine"
	"deviant/internal/fault"
	"deviant/internal/latent"
	"deviant/internal/obs"
	"deviant/internal/report"
	"deviant/internal/snapshot"
	"deviant/internal/stats"
)

// Checks selects which checkers run.
type Checks struct {
	Null      bool
	Free      bool
	UserPtr   bool
	IsErr     bool
	Fail      bool
	LockVar   bool
	Pairing   bool
	Intr      bool
	SecCheck  bool
	Reverse   bool
	RetConv   bool
	Redundant bool
}

// AllChecks enables everything.
func AllChecks() Checks {
	return Checks{Null: true, Free: true, UserPtr: true, IsErr: true, Fail: true,
		LockVar: true, Pairing: true, Intr: true, SecCheck: true, Reverse: true,
		RetConv: true, Redundant: true}
}

// ParseChecks parses a comma-separated checker subset ("null,fail,..."),
// the format shared by deviant's -checkers flag and deviantd's request
// options. Empty and blank elements are ignored; an unknown name is an
// error naming the offender.
func ParseChecks(s string) (Checks, error) {
	var c Checks
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "null":
			c.Null = true
		case "free":
			c.Free = true
		case "userptr":
			c.UserPtr = true
		case "iserr":
			c.IsErr = true
		case "fail":
			c.Fail = true
		case "lockvar":
			c.LockVar = true
		case "pairing":
			c.Pairing = true
		case "intr":
			c.Intr = true
		case "seccheck":
			c.SecCheck = true
		case "reverse":
			c.Reverse = true
		case "retconv":
			c.RetConv = true
		case "redundant":
			c.Redundant = true
		case "":
		default:
			return Checks{}, fmt.Errorf("unknown checker %q", strings.TrimSpace(name))
		}
	}
	return c, nil
}

// Options configures a run.
type Options struct {
	Checks Checks
	// IncludeDirs are searched by #include (default: "include").
	IncludeDirs []string
	// Defines are predefined macros (as with -D).
	Defines map[string]string
	// P0 is the expected example probability for z ranking.
	P0 float64
	// MinPairExamples is the evidence floor for reporting pair
	// violations.
	MinPairExamples int
	// MinPairScore is the z+boost floor below which pair violations are
	// derived but not reported.
	MinPairScore float64
	// Memoize controls engine state memoization (ablation knob).
	Memoize bool
	// DisableCrashPruning keeps panic/BUG paths alive (ablation knob).
	DisableCrashPruning bool
	// NullConfig overrides the null checker configuration.
	NullConfig *null.Config
	// Workers bounds pipeline concurrency: translation units are
	// preprocessed and parsed concurrently, CFGs build concurrently, and
	// each checker runs over contiguous shards of the function list on
	// this many goroutines. Results are merged in shard order, so output
	// is identical for every worker count. Zero or negative means
	// runtime.NumCPU(); 1 forces the fully serial path.
	Workers int
	// Snapshot, when non-nil, caches per-unit frontend artifacts (parse
	// trees, diagnostics, per-function CFGs) across runs keyed by
	// transitive content digest. Units whose full input closure is
	// unchanged skip preprocessing, parsing and CFG construction; the
	// semantic index, every checker, rule derivation and ranking still run
	// globally, so warm output is byte-identical to a cold run.
	Snapshot *snapshot.Store
	// Tracer, when non-nil, records one span per pipeline stage, per
	// translation unit (with nested preprocess/parse/include spans), per
	// function CFG build, per checker, per rule derivation, and per
	// engine traversal — exportable as Chrome trace-event JSON. Nil (the
	// default) disables tracing entirely: instrumentation sites reduce to
	// a pointer check, and no clock reads happen. Tracing never feeds
	// back into analysis, so output stays byte-identical with or without
	// it, for any worker count.
	Tracer *obs.Tracer
	// Journal, when non-nil, receives structured run-provenance events
	// (quarantines from core; placement/shard lifecycle/merge from the
	// coordinator; run start/rank from the serving layer) as JSONL.
	// Like Tracer it is write-only telemetry: journal output never
	// feeds back into analysis, so it cannot perturb determinism.
	Journal *obs.Journal
	// VisitBudget, when positive, is a hard per-function visit ceiling
	// for every path-sensitive checker: a function that hits it is
	// quarantined for that checker (its reports dropped, the overrun
	// recorded) instead of silently truncated. Zero keeps the legacy
	// behavior — the engine's soft DefaultMaxVisits truncation with no
	// quarantine. Visit counts are a pure function of the input for a
	// fixed Memoize setting, so budget quarantines are deterministic
	// across worker counts.
	VisitBudget int
	// UnitDeadline, when positive, bounds per-unit wall clock: a
	// translation unit whose frontend work exceeds it, or a function
	// whose engine traversal exceeds it, is quarantined through the
	// same path as a panic. Wall-clock budgets are inherently
	// machine-dependent, so this knob is off by default and excluded
	// from the determinism oracles.
	UnitDeadline time.Duration
	// Deadline, when non-zero, is the whole-run deadline (the CLI's
	// -timeout): stages stop taking new work once the clock passes it,
	// completed work is kept, and Result.DeadlineExceeded is set to
	// flag the output as partial.
	Deadline time.Time
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Checks:          AllChecks(),
		IncludeDirs:     []string{"include"},
		P0:              stats.DefaultP0,
		MinPairExamples: 2,
		MinPairScore:    1.0,
		Memoize:         true,
	}
}

// Result is everything a run produces.
type Result struct {
	// Reports holds all checker errors, ranked.
	Reports *report.Collector
	// Fingerprints computes stable report identities against this run's
	// parsed corpus. Reports in Reports are already stamped; callers
	// that append reports after analysis (version drift) re-stamp with
	// Reports.SetFingerprints(Fingerprints).
	Fingerprints *report.Fingerprinter
	// Prog is the semantic index of the analyzed code.
	Prog *csem.Program
	// ParseErrors are non-fatal frontend diagnostics.
	ParseErrors []error

	// Derived rule instances, for the experiment tables.
	Pairs        []pairing.Pair
	CanFail      []fail.Derived
	CanFailNever []fail.Derived
	IsErrFuncs   []iserr.Derived
	LockBindings []lockvar.Binding
	IntrFuncs    []intr.Derived
	SecChecks    []seccheck.Derived
	Reversals    []reverse.Reversal

	// EngineStats aggregates traversal effort per checker name.
	EngineStats map[string]engine.RunStats

	// Functions analyzed and total source lines (scalability metrics).
	FuncCount int
	LineCount int

	// Snapshot reports what this run reused from Options.Snapshot
	// (zero-valued when no store was attached).
	Snapshot snapshot.RunStats

	// Degraded reports that some work was quarantined rather than
	// analyzed: the run completed, but Reports cover only the healthy
	// remainder. Quarantined lists one record per contained failure in
	// canonical (stage, unit, cause) order — a pure function of the
	// input, identical across worker counts.
	Degraded    bool
	Quarantined []fault.Record
	// PanicsRecovered counts worker panics converted into quarantine
	// records (budget overruns quarantine without panicking and are
	// not counted here).
	PanicsRecovered int
	// DeadlineExceeded reports that Options.Deadline cut the run
	// short; Reports are a partial view of the full analysis.
	DeadlineExceeded bool

	// Timing is the per-stage wall clock of this run.
	Timing Timing
}

// Timing records where a run spent its time, stage by stage. Frontend,
// Semantic, CFG, Total and the Checkers entries are wall clock;
// Preprocess and Parse are summed across translation units, so under a
// parallel frontend they add up to more than Frontend — the ratio is the
// frontend's effective parallelism.
type Timing struct {
	Preprocess time.Duration // preprocessing, summed over units
	Parse      time.Duration // parsing, summed over units
	Frontend   time.Duration // wall clock of the whole frontend stage
	Semantic   time.Duration // semantic indexing (serial)
	CFG        time.Duration // CFG construction
	Checkers   map[string]time.Duration
	Total      time.Duration

	// TokenCacheHits / TokenCacheMisses count this run's shared
	// header-scan cache traffic: hits are file scans the cache absorbed,
	// misses are files that had to be lexed.
	TokenCacheHits   int64
	TokenCacheMisses int64
}

// String renders the timing table (the CLI's -stats output).
func (t Timing) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s  (preprocess %s + parse %s summed over units)\n",
		"frontend", t.Frontend.Round(time.Microsecond),
		t.Preprocess.Round(time.Microsecond), t.Parse.Round(time.Microsecond))
	if t.TokenCacheHits+t.TokenCacheMisses > 0 {
		fmt.Fprintf(&b, "%-12s %6d hits, %d misses (%.0f%% of file scans absorbed)\n",
			"scan-cache", t.TokenCacheHits, t.TokenCacheMisses,
			100*float64(t.TokenCacheHits)/float64(t.TokenCacheHits+t.TokenCacheMisses))
	}
	fmt.Fprintf(&b, "%-12s %12s\n", "semantic", t.Semantic.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-12s %12s\n", "cfg", t.CFG.Round(time.Microsecond))
	names := make([]string, 0, len(t.Checkers))
	for n := range t.Checkers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-12s %12s\n", "  "+n, t.Checkers[n].Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "%-12s %12s\n", "total", t.Total.Round(time.Microsecond))
	return b.String()
}

// Analyzer runs the pipeline over a file provider.
type Analyzer struct {
	opts Options
	conv *latent.Conventions
}

// New returns an analyzer. A nil conventions argument uses the defaults.
func New(opts Options, conv *latent.Conventions) *Analyzer {
	if conv == nil {
		conv = latent.Default()
	}
	if opts.P0 == 0 {
		opts.P0 = stats.DefaultP0
	}
	if opts.MinPairExamples == 0 {
		opts.MinPairExamples = 2
	}
	if len(opts.IncludeDirs) == 0 {
		opts.IncludeDirs = []string{"include"}
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	return &Analyzer{opts: opts, conv: conv}
}

// configFingerprint hashes every option that changes frontend or CFG
// output into the snapshot cache key: include search dirs, predefined
// macros, crash-path pruning, and the latent conventions (whose crash
// routines drive pruning). Checker selection, p0 and memoization are
// deliberately excluded — they run downstream of the cached artifacts.
// Go's fmt prints maps with sorted keys, so the conventions render
// deterministically.
func (a *Analyzer) configFingerprint() string {
	defs := make([]string, 0, len(a.opts.Defines))
	for k, v := range a.opts.Defines {
		defs = append(defs, k+"="+v)
	}
	sort.Strings(defs)
	return snapshot.Fingerprint(
		"includes:"+strings.Join(a.opts.IncludeDirs, "\x01"),
		"defines:"+strings.Join(defs, "\x01"),
		fmt.Sprintf("prune:%v", !a.opts.DisableCrashPruning),
		fmt.Sprintf("conv:%+v", *a.conv),
	)
}

// AnalyzeSources is a convenience over AnalyzeFS for in-memory code: every
// ".c" key is a translation unit, everything else is includable.
func (a *Analyzer) AnalyzeSources(srcs map[string]string) (*Result, error) {
	fs := cpp.MapFS(srcs)
	var units []string
	for name := range srcs {
		if strings.HasSuffix(name, ".c") {
			units = append(units, name)
		}
	}
	sort.Strings(units)
	return a.AnalyzeFS(fs, units)
}

// AnalyzeFS preprocesses, parses and checks the given translation units.
//
// Every stage runs on Options.Workers goroutines: units go through the
// frontend concurrently (sharing a scan cache so common headers are lexed
// once per run instead of once per includer), per-function CFGs build
// concurrently, and each checker runs over contiguous shards of the
// function list with a forked accumulator and a private report collector
// per shard. Shards fold back in function order, which makes every
// counter, site list, derived table and ranked report byte-identical to
// the Workers=1 run — scheduling can reorder the work but never the
// merge.
func (a *Analyzer) AnalyzeFS(fs cpp.FileProvider, units []string) (*Result, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("core: no translation units")
	}
	start := time.Now()
	res := newResult()
	tr := a.opts.Tracer
	root := tr.Start("analyze", obs.A("units", strconv.Itoa(len(units))))
	defer root.End()

	qc := &quarantine{}
	outs := a.runFrontend(fs, units, res, qc, root, false)
	files := make([]*cast.File, 0, len(units))
	for i := range outs {
		if outs[i].readErr != nil {
			return nil, fmt.Errorf("core: %w", outs[i].readErr)
		}
		res.Timing.Preprocess += outs[i].ppDur
		res.Timing.Parse += outs[i].parse
		if outs[i].quarantined {
			// The unit contributes nothing downstream: no lines, no
			// diagnostics, no declarations. Its failure is recorded in
			// res.Quarantined.
			continue
		}
		res.LineCount += outs[i].lines
		res.ParseErrors = append(res.ParseErrors, outs[i].errs...)
		if res.Snapshot.Enabled {
			if outs[i].reused {
				res.Snapshot.UnitsReused++
			} else {
				res.Snapshot.UnitsParsed++
			}
		}
		files = append(files, outs[i].file)
	}

	// Map each parsed function to the snapshot artifact that owns it, so
	// the CFG stage can reuse and record graphs on the right cache entry.
	var owner map[*cast.FuncDecl]*snapshot.Artifact
	if a.opts.Snapshot != nil {
		owner = make(map[*cast.FuncDecl]*snapshot.Artifact, len(units))
		for i := range outs {
			if outs[i].art == nil || outs[i].file == nil {
				continue
			}
			for _, d := range outs[i].file.Decls {
				if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
					owner[fd] = outs[i].art
				}
			}
		}
	}
	return a.downstream(res, qc, root, start, files, owner)
}

// downstream runs the global half of the pipeline — semantic indexing,
// CFG construction, every checker, rule derivation and ranking — over
// already-parsed files, then folds quarantine state into the final
// result. It is shared by AnalyzeFS (same-process frontend) and
// AnalyzeParsed (frontend partials merged from a worker fleet): both
// fold units in deterministic order before calling it, so its output
// depends only on the parsed input, never on which process parsed it.
// owner maps functions to the snapshot artifacts that cache their CFGs
// (nil when no store is attached).
func (a *Analyzer) downstream(res *Result, qc *quarantine, root *obs.Span, start time.Time, files []*cast.File, owner map[*cast.FuncDecl]*snapshot.Artifact) (*Result, error) {
	workers := a.opts.Workers
	tr := a.opts.Tracer
	deadline := a.opts.Deadline
	deadlinePassed := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	t0 := time.Now()
	semSpan := root.Child("semantic")
	res.Prog = csem.Analyze(files)
	semSpan.End()
	res.Timing.Semantic = time.Since(t0)
	res.FuncCount = len(res.Prog.Funcs)

	// ---- CFGs, built once and shared by all checkers. Functions are
	// independent, so construction is embarrassingly parallel. With a
	// snapshot store, graphs built from a cached unit's tree in a previous
	// run are reused: the graph depends only on the function's AST and the
	// pruning configuration, both covered by the artifact's cache key.
	var noReturn func(string) bool
	if !a.opts.DisableCrashPruning {
		noReturn = a.conv.IsCrashRoutine
	}
	names := res.Prog.FuncNames()
	built := make([]*cfg.Graph, len(names))
	graphReused := make([]bool, len(names))
	t0 = time.Now()
	cfgSpan := root.Child("cfg")
	parallelDo(workers, len(names), func(i int) {
		if tr != nil {
			fsp := cfgSpan.Fork("cfg-func", obs.A("func", names[i]))
			defer fsp.End()
		}
		if deadlinePassed() {
			qc.stageDeadline("cfg")
			return
		}
		panicked := false
		func() {
			defer qc.recoverInto("cfg", names[i], &panicked)
			fault.Trap("cfg", names[i])
			fd := res.Prog.Funcs[names[i]]
			art := owner[fd]
			if art != nil {
				if g, ok := art.Graph(names[i]); ok {
					built[i], graphReused[i] = g, true
					return
				}
			}
			built[i] = cfg.Build(fd, cfg.Options{NoReturn: noReturn})
			if art != nil {
				art.SetGraph(names[i], built[i])
			}
		}()
		if panicked {
			built[i] = nil
		}
	})
	cfgSpan.End()
	// Functions whose CFG build was quarantined (or skipped at the run
	// deadline) drop out of the checker stage; the rest proceed.
	graphs := make(map[string]*cfg.Graph, len(names))
	checkNames := make([]string, 0, len(names))
	for i, name := range names {
		if built[i] == nil {
			continue
		}
		checkNames = append(checkNames, name)
		graphs[name] = built[i]
		if res.Snapshot.Enabled {
			if graphReused[i] {
				res.Snapshot.GraphsReused++
			} else {
				res.Snapshot.GraphsBuilt++
			}
		}
	}
	res.Timing.CFG = time.Since(t0)

	eopts := engine.Options{Memoize: a.opts.Memoize}
	if a.opts.VisitBudget > 0 {
		eopts.MaxVisits = a.opts.VisitBudget
	}
	spans := chunkSpans(len(checkNames), workers)

	// checkerSpan/deriveSpan trace one checker's traversal and its rule
	// derivation. Forked (own lane): the program-level checkers run
	// concurrently with each other.
	checkerSpan := func(name string) *obs.Span {
		if tr == nil {
			return nil
		}
		return root.Fork("checker", obs.A("checker", name))
	}
	deriveSpan := func(name string) *obs.Span {
		if tr == nil {
			return nil
		}
		return root.Fork("derive", obs.A("checker", name))
	}

	// contain runs one serial derivation step (Finish/Ranked) under
	// panic isolation: a panic quarantines the checker's derived output
	// instead of the run.
	contain := func(stage string, f func()) {
		defer qc.recoverInto(stage, "*", nil)
		f()
	}

	// runEngine drives one engine checker over every function: each shard
	// gets a forked accumulator and a private collector, folded back in
	// shard order. Each function runs under panic isolation with its own
	// sub-collector; a function that panics or blows its budget is
	// quarantined — its reports dropped, the rest of the shard unharmed.
	// The failpoint fires before the traversal touches the accumulator,
	// so an injected fault never leaks partial state into derived rules.
	runEngine := func(name string, fork func() engine.Checker, merge func(engine.Checker)) {
		stage := "checker:" + name
		t := time.Now()
		chSpan := checkerSpan(name)
		defer chSpan.End()
		defer func() { res.Timing.Checkers[name] = time.Since(t) }()
		if deadlinePassed() {
			qc.stageDeadline(stage)
			return
		}
		eo := eopts
		eo.Span = chSpan
		shards := make([]engine.Checker, len(spans))
		cols := make([]*report.Collector, len(spans))
		sts := make([]engine.RunStats, len(spans))
		parallelDo(workers, len(spans), func(si int) {
			ch := fork()
			col := report.NewCollector()
			var total engine.RunStats
			// One traversal runner and one scratch collector per shard:
			// the memo table, key buffer and report map are reused across
			// every function in the shard instead of reallocated per run.
			var runner engine.Runner
			fcol := report.NewCollector()
			runOne := func(fn string) {
				defer qc.recoverInto(stage, fn, nil)
				fault.Trap("checker", fn)
				eoFn := eo
				eoFn.Deadline = deadline
				if a.opts.UnitDeadline > 0 {
					if ud := time.Now().Add(a.opts.UnitDeadline); eoFn.Deadline.IsZero() || ud.Before(eoFn.Deadline) {
						eoFn.Deadline = ud
					}
				}
				fcol.Reset()
				s := runner.Run(graphs[fn], ch, fcol, eoFn)
				total.Visits += s.Visits
				total.MemoHits += s.MemoHits
				total.Truncated = total.Truncated || s.Truncated
				if a.opts.VisitBudget > 0 && s.Truncated {
					qc.add(stage, fn, visitBudgetCause(a.opts.VisitBudget))
					return
				}
				if s.DeadlineExceeded {
					if deadlinePassed() {
						qc.markDeadline()
					}
					qc.add(stage, fn, "deadline-exceeded")
					return
				}
				col.Merge(fcol)
			}
			for _, fn := range checkNames[spans[si].lo:spans[si].hi] {
				runOne(fn)
			}
			shards[si], cols[si], sts[si] = ch, col, total
		})
		var agg engine.RunStats
		for si := range spans {
			merge(shards[si])
			res.Reports.Merge(cols[si])
			agg.Visits += sts[si].Visits
			agg.MemoHits += sts[si].MemoHits
			agg.Truncated = agg.Truncated || sts[si].Truncated
		}
		res.EngineStats[name] = agg
	}

	if a.opts.Checks.Null {
		cfgn := null.AllChecks()
		if a.opts.NullConfig != nil {
			cfgn = *a.opts.NullConfig
		}
		ch := null.New(cfgn)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*null.Checker)) })
		dsp := deriveSpan(ch.Name())
		contain("checker:"+ch.Name(), func() { ch.Finish(res.Reports) })
		dsp.End()
	}
	if a.opts.Checks.Free {
		ch := freecheck.New(a.conv)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*freecheck.Checker)) })
	}

	// The three program-level AST checkers are independent of each other;
	// run them concurrently, each into a private collector, merged in the
	// fixed serial order.
	type progStage struct {
		name    string
		enabled bool
		run     func(*report.Collector)
	}
	progStages := []progStage{
		{"redundant", a.opts.Checks.Redundant, func(col *report.Collector) {
			redundant.New(res.Prog).Run(col)
		}},
		{"retconv", a.opts.Checks.RetConv, func(col *report.Collector) {
			ch := retconv.New(res.Prog, a.conv)
			ch.SetP0(a.opts.P0)
			ch.Run(col)
		}},
		{"userptr", a.opts.Checks.UserPtr, func(col *report.Collector) {
			userptr.New(res.Prog, a.conv).Run(col)
		}},
	}
	progCols := make([]*report.Collector, len(progStages))
	progDur := make([]time.Duration, len(progStages))
	parallelDo(workers, len(progStages), func(i int) {
		if !progStages[i].enabled {
			return
		}
		if deadlinePassed() {
			qc.stageDeadline("checker:" + progStages[i].name)
			return
		}
		sp := checkerSpan(progStages[i].name)
		t := time.Now()
		col := report.NewCollector()
		panicked := false
		func() {
			defer qc.recoverInto("checker:"+progStages[i].name, "*", &panicked)
			fault.Trap("checker", progStages[i].name)
			progStages[i].run(col)
		}()
		if !panicked {
			progCols[i] = col
		}
		progDur[i] = time.Since(t)
		sp.End()
	})
	for i, st := range progStages {
		if progCols[i] != nil {
			res.Reports.Merge(progCols[i])
			res.Timing.Checkers[st.name] = progDur[i]
		}
	}

	if a.opts.Checks.IsErr {
		ch := iserr.New(a.conv)
		ch.SetP0(a.opts.P0)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*iserr.Checker)) })
		dsp := deriveSpan(ch.Name())
		contain("checker:"+ch.Name(), func() {
			ch.Finish(res.Reports)
			res.IsErrFuncs = ch.Ranked()
		})
		dsp.End()
	}
	if a.opts.Checks.Fail {
		ch := fail.New(a.conv)
		ch.SetP0(a.opts.P0)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*fail.Checker)) })
		dsp := deriveSpan(ch.Name())
		contain("checker:"+ch.Name(), func() {
			ch.Finish(res.Reports)
			res.CanFail = ch.Ranked()
			res.CanFailNever = ch.InverseRanked()
		})
		dsp.End()
	}
	if a.opts.Checks.LockVar {
		ch := lockvar.New(res.Prog, a.conv)
		ch.SetP0(a.opts.P0)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*lockvar.Checker)) })
		dsp := deriveSpan(ch.Name())
		contain("checker:"+ch.Name(), func() {
			ch.Finish(res.Reports)
			res.LockBindings = ch.Bindings()
		})
		dsp.End()
	}
	if a.opts.Checks.Pairing {
		if deadlinePassed() {
			qc.stageDeadline("checker:pairing")
		} else {
			t := time.Now()
			sp := checkerSpan("pairing")
			ch := pairing.New(a.conv, pairing.DefaultLimits())
			forks := make([]*pairing.Checker, len(spans))
			parallelDo(workers, len(spans), func(si int) {
				f := ch.Fork()
				for _, fn := range checkNames[spans[si].lo:spans[si].hi] {
					func() {
						defer qc.recoverInto("checker:pairing", fn, nil)
						fault.Trap("checker", fn)
						f.AddFunction(graphs[fn])
					}()
				}
				forks[si] = f
			})
			for _, f := range forks {
				ch.Merge(f)
			}
			sp.End()
			dsp := deriveSpan("pairing")
			contain("checker:pairing", func() {
				res.Pairs = ch.Finish(res.Reports, a.opts.P0, a.opts.MinPairExamples, a.opts.MinPairScore)
			})
			dsp.End()
			res.Timing.Checkers["pairing"] = time.Since(t)
		}
	}
	if a.opts.Checks.Intr {
		ch := intr.New(a.conv)
		ch.SetP0(a.opts.P0)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*intr.Checker)) })
		dsp := deriveSpan(ch.Name())
		contain("checker:"+ch.Name(), func() {
			ch.Finish(res.Reports)
			res.IntrFuncs = ch.Ranked()
		})
		dsp.End()
	}
	if a.opts.Checks.SecCheck {
		ch := seccheck.New(nil)
		ch.SetP0(a.opts.P0)
		runEngine(ch.Name(),
			func() engine.Checker { return ch.Fork() },
			func(w engine.Checker) { ch.Merge(w.(*seccheck.Checker)) })
		dsp := deriveSpan(ch.Name())
		contain("checker:"+ch.Name(), func() {
			ch.Finish(res.Reports)
			res.SecChecks = ch.Ranked()
		})
		dsp.End()
	}
	if a.opts.Checks.Reverse {
		if deadlinePassed() {
			qc.stageDeadline("checker:reverse")
		} else {
			t := time.Now()
			sp := checkerSpan("reverse")
			ch := reverse.New(a.conv, reverse.DefaultLimits())
			forks := make([]*reverse.Checker, len(spans))
			parallelDo(workers, len(spans), func(si int) {
				f := ch.Fork()
				for _, fn := range checkNames[spans[si].lo:spans[si].hi] {
					func() {
						defer qc.recoverInto("checker:reverse", fn, nil)
						fault.Trap("checker", fn)
						f.AddFunction(graphs[fn])
					}()
				}
				forks[si] = f
			})
			for _, f := range forks {
				ch.Merge(f)
			}
			sp.End()
			dsp := deriveSpan("reverse")
			contain("checker:reverse", func() {
				res.Reversals = ch.Finish(res.Reports, a.opts.P0, a.opts.MinPairExamples, a.opts.MinPairScore)
			})
			dsp.End()
			res.Timing.Checkers["reverse"] = time.Since(t)
		}
	}
	res.Timing.Total = time.Since(start)

	// Stable identities, computed from the same parsed files the
	// checkers saw. Built here — the shared tail of AnalyzeFS and
	// AnalyzeParsed — so fleet-merged runs stamp the same fingerprints
	// as single-process ones, byte for byte.
	fpSpan := root.Child("fingerprint")
	res.Fingerprints = report.NewFingerprinter(files)
	res.Reports.SetFingerprints(res.Fingerprints)
	fpSpan.End()

	qc.finalize(res)
	if j := a.opts.Journal; j != nil {
		// Canonicalized records, so the journal's quarantine section is
		// as deterministic as the result's.
		for _, rec := range res.Quarantined {
			j.Event("quarantine",
				obs.A("stage", rec.Stage), obs.A("unit", rec.Unit), obs.A("cause", rec.Cause))
		}
	}
	return res, nil
}
