// Package core wires the full analysis pipeline together: preprocess,
// parse, index, build CFGs (with crash-path pruning), run the selected
// checkers down every path, and collect ranked reports. It is the
// internal engine behind the public deviant package.
package core

import (
	"fmt"
	"sort"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/checkers/fail"
	"deviant/internal/checkers/freecheck"
	"deviant/internal/checkers/intr"
	"deviant/internal/checkers/iserr"
	"deviant/internal/checkers/lockvar"
	"deviant/internal/checkers/null"
	"deviant/internal/checkers/pairing"
	"deviant/internal/checkers/redundant"
	"deviant/internal/checkers/retconv"
	"deviant/internal/checkers/reverse"
	"deviant/internal/checkers/seccheck"
	"deviant/internal/checkers/userptr"
	"deviant/internal/cparse"
	"deviant/internal/cpp"
	"deviant/internal/csem"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// Checks selects which checkers run.
type Checks struct {
	Null      bool
	Free      bool
	UserPtr   bool
	IsErr     bool
	Fail      bool
	LockVar   bool
	Pairing   bool
	Intr      bool
	SecCheck  bool
	Reverse   bool
	RetConv   bool
	Redundant bool
}

// AllChecks enables everything.
func AllChecks() Checks {
	return Checks{Null: true, Free: true, UserPtr: true, IsErr: true, Fail: true,
		LockVar: true, Pairing: true, Intr: true, SecCheck: true, Reverse: true,
		RetConv: true, Redundant: true}
}

// Options configures a run.
type Options struct {
	Checks Checks
	// IncludeDirs are searched by #include (default: "include").
	IncludeDirs []string
	// Defines are predefined macros (as with -D).
	Defines map[string]string
	// P0 is the expected example probability for z ranking.
	P0 float64
	// MinPairExamples is the evidence floor for reporting pair
	// violations.
	MinPairExamples int
	// MinPairScore is the z+boost floor below which pair violations are
	// derived but not reported.
	MinPairScore float64
	// Memoize controls engine state memoization (ablation knob).
	Memoize bool
	// DisableCrashPruning keeps panic/BUG paths alive (ablation knob).
	DisableCrashPruning bool
	// NullConfig overrides the null checker configuration.
	NullConfig *null.Config
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Checks:          AllChecks(),
		IncludeDirs:     []string{"include"},
		P0:              stats.DefaultP0,
		MinPairExamples: 2,
		MinPairScore:    1.0,
		Memoize:         true,
	}
}

// Result is everything a run produces.
type Result struct {
	// Reports holds all checker errors, ranked.
	Reports *report.Collector
	// Prog is the semantic index of the analyzed code.
	Prog *csem.Program
	// ParseErrors are non-fatal frontend diagnostics.
	ParseErrors []error

	// Derived rule instances, for the experiment tables.
	Pairs        []pairing.Pair
	CanFail      []fail.Derived
	CanFailNever []fail.Derived
	IsErrFuncs   []iserr.Derived
	LockBindings []lockvar.Binding
	IntrFuncs    []intr.Derived
	SecChecks    []seccheck.Derived
	Reversals    []reverse.Reversal

	// EngineStats aggregates traversal effort per checker name.
	EngineStats map[string]engine.RunStats

	// Functions analyzed and total source lines (scalability metrics).
	FuncCount int
	LineCount int
}

// Analyzer runs the pipeline over a file provider.
type Analyzer struct {
	opts Options
	conv *latent.Conventions
}

// New returns an analyzer. A nil conventions argument uses the defaults.
func New(opts Options, conv *latent.Conventions) *Analyzer {
	if conv == nil {
		conv = latent.Default()
	}
	if opts.P0 == 0 {
		opts.P0 = stats.DefaultP0
	}
	if opts.MinPairExamples == 0 {
		opts.MinPairExamples = 2
	}
	if len(opts.IncludeDirs) == 0 {
		opts.IncludeDirs = []string{"include"}
	}
	return &Analyzer{opts: opts, conv: conv}
}

// AnalyzeSources is a convenience over AnalyzeFS for in-memory code: every
// ".c" key is a translation unit, everything else is includable.
func (a *Analyzer) AnalyzeSources(srcs map[string]string) (*Result, error) {
	fs := cpp.MapFS(srcs)
	var units []string
	for name := range srcs {
		if strings.HasSuffix(name, ".c") {
			units = append(units, name)
		}
	}
	sort.Strings(units)
	return a.AnalyzeFS(fs, units)
}

// AnalyzeFS preprocesses, parses and checks the given translation units.
func (a *Analyzer) AnalyzeFS(fs cpp.FileProvider, units []string) (*Result, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("core: no translation units")
	}
	res := &Result{
		Reports:     report.NewCollector(),
		EngineStats: make(map[string]engine.RunStats),
	}

	var files []*cast.File
	for _, unit := range units {
		pp := cpp.New(fs, a.opts.IncludeDirs...)
		for k, v := range a.opts.Defines {
			pp.Define(k, v)
		}
		src, err := fs.ReadFile(unit)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.LineCount += strings.Count(src, "\n") + 1
		toks, err := pp.ProcessSource(unit, src)
		if err != nil {
			res.ParseErrors = append(res.ParseErrors, pp.Errs()...)
		}
		f, perrs := cparse.ParseFile(unit, toks)
		res.ParseErrors = append(res.ParseErrors, perrs...)
		files = append(files, f)
	}
	res.Prog = csem.Analyze(files)
	res.FuncCount = len(res.Prog.Funcs)

	// Build CFGs once, shared by all checkers.
	var noReturn func(string) bool
	if !a.opts.DisableCrashPruning {
		noReturn = a.conv.IsCrashRoutine
	}
	graphs := make(map[string]*cfg.Graph, len(res.Prog.Funcs))
	for _, name := range res.Prog.FuncNames() {
		graphs[name] = cfg.Build(res.Prog.Funcs[name], cfg.Options{NoReturn: noReturn})
	}
	eopts := engine.Options{Memoize: a.opts.Memoize}

	runEngine := func(ch engine.Checker) {
		total := engine.RunStats{}
		for _, name := range res.Prog.FuncNames() {
			s := engine.Run(graphs[name], ch, res.Reports, eopts)
			total.Visits += s.Visits
			total.MemoHits += s.MemoHits
			total.Truncated = total.Truncated || s.Truncated
		}
		res.EngineStats[ch.Name()] = total
	}

	if a.opts.Checks.Null {
		cfgn := null.AllChecks()
		if a.opts.NullConfig != nil {
			cfgn = *a.opts.NullConfig
		}
		ch := null.New(cfgn)
		runEngine(ch)
		ch.Finish(res.Reports)
	}
	if a.opts.Checks.Free {
		ch := freecheck.New(a.conv)
		runEngine(ch)
	}
	if a.opts.Checks.Redundant {
		redundant.New(res.Prog).Run(res.Reports)
	}
	if a.opts.Checks.RetConv {
		retconv.New(res.Prog, a.conv).Run(res.Reports)
	}
	if a.opts.Checks.UserPtr {
		ch := userptr.New(res.Prog, a.conv)
		ch.Run(res.Reports)
	}
	if a.opts.Checks.IsErr {
		ch := iserr.New(a.conv)
		runEngine(ch)
		ch.Finish(res.Reports)
		res.IsErrFuncs = ch.Ranked()
	}
	if a.opts.Checks.Fail {
		ch := fail.New(a.conv)
		runEngine(ch)
		ch.Finish(res.Reports)
		res.CanFail = ch.Ranked()
		res.CanFailNever = ch.InverseRanked()
	}
	if a.opts.Checks.LockVar {
		ch := lockvar.New(res.Prog, a.conv)
		runEngine(ch)
		ch.Finish(res.Reports)
		res.LockBindings = ch.Bindings()
	}
	if a.opts.Checks.Pairing {
		ch := pairing.New(a.conv, pairing.DefaultLimits())
		for _, name := range res.Prog.FuncNames() {
			ch.AddFunction(graphs[name])
		}
		res.Pairs = ch.Finish(res.Reports, a.opts.P0, a.opts.MinPairExamples, a.opts.MinPairScore)
	}
	if a.opts.Checks.Intr {
		ch := intr.New(a.conv)
		runEngine(ch)
		ch.Finish(res.Reports)
		res.IntrFuncs = ch.Ranked()
	}
	if a.opts.Checks.SecCheck {
		ch := seccheck.New(nil)
		runEngine(ch)
		ch.Finish(res.Reports)
		res.SecChecks = ch.Ranked()
	}
	if a.opts.Checks.Reverse {
		ch := reverse.New(a.conv, reverse.DefaultLimits())
		for _, name := range res.Prog.FuncNames() {
			ch.AddFunction(graphs[name])
		}
		res.Reversals = ch.Finish(res.Reports, a.opts.P0, a.opts.MinPairExamples, a.opts.MinPairScore)
	}
	return res, nil
}
