// Package null implements the internal null consistency checkers of
// Section 6. One automaton tracks per-pointer belief sets and flags three
// kinds of contradictory or redundant beliefs:
//
//  1. check-then-use: a pointer believed null is dereferenced;
//  2. use-then-check: a dereferenced pointer is subsequently checked
//     against null (error only if every path into the check carries the
//     dereference belief);
//  3. redundant checks: a pointer whose value is already known is checked
//     again (error only if every path agrees on the known value).
//
// Beliefs originating in macro expansions are not tracked (§6: almost all
// false positives came from context-insensitive checks inside macros), and
// paths through panic/BUG were already pruned by the CFG builder.
package null

import (
	"fmt"
	"strconv"
	"strings"

	"deviant/internal/belief"
	"deviant/internal/cast"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/report"
)

// SpanThreshold is the maximum distance in lines between establishing a
// belief and contradicting it for use-then-check and redundant-check
// errors; farther apart is considered robust programming practice (§6:
// "We arbitrarily set this threshold to be roughly 10 executable lines").
const SpanThreshold = 10

// Config enables individual sub-checkers.
type Config struct {
	CheckThenUse   bool
	UseThenCheck   bool
	RedundantCheck bool
	// TrackMacros disables the macro-origin truncation (ablation knob;
	// the paper's configuration leaves this false).
	TrackMacros bool
}

// AllChecks enables the full checker.
func AllChecks() Config {
	return Config{CheckThenUse: true, UseThenCheck: true, RedundantCheck: true}
}

// Checker is the null consistency automaton. One Checker may be run over
// many functions; call Finish once at the end to emit the all-path
// (use-then-check / redundant) errors.
type Checker struct {
	cfgn Config
	// checkObs aggregates, per null-check site, the belief observations
	// arriving on every path (use-then-check and redundant-check demand
	// agreement across paths).
	checkObs map[string]*checkObservation
	// keyCache memoizes keyOf per AST node: the engine revisits the same
	// expressions once per path, and member-chain keys concatenate.
	// Per-fork (single goroutine), like obsBuf below.
	keyCache map[cast.Expr]string
	// obsBuf is the reusable scratch for observe's site keys.
	obsBuf []byte
}

type checkObservation struct {
	pos      ctoken.Pos
	key      string
	facts    belief.Fact // union of facts over all visiting paths
	srcs     map[belief.Source]bool
	minSpan  int
	derefPos int // line of the most recent deref feeding the belief
}

// New returns a checker with the given configuration.
func New(cfgn Config) *Checker {
	return &Checker{
		cfgn:     cfgn,
		checkObs: make(map[string]*checkObservation),
		keyCache: make(map[cast.Expr]string),
	}
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "null" }

// state is the per-path belief environment plus the function's pointer
// key universe. The environment is embedded by value so a path state is
// one allocation, not a state box plus an Env box.
type state struct {
	env belief.Env
	// ptrKeys is shared (read-only) across the function's states.
	ptrKeys map[string]bool
}

func (s *state) Clone() engine.State {
	return &state{env: s.env.CloneValue(), ptrKeys: s.ptrKeys}
}

func (s *state) Key() string { return s.env.Key() }

// AppendKey implements engine.AppendKeyer via the environment's
// allocation-free encoder.
func (s *state) AppendKey(b []byte) []byte { return s.env.AppendKey(b) }

// NewState implements engine.Checker: it computes the pointer-key universe
// for fn (declared pointer variables plus anything dereferenced).
func (c *Checker) NewState(fn *cast.FuncDecl) engine.State {
	ptr := make(map[string]bool)
	for _, p := range fn.Params {
		if p.Type != nil && p.Type.IsPointer() && p.Name != "" {
			ptr[p.Name] = true
		}
	}
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.VarDecl:
			if x.Type != nil && x.Type.IsPointer() {
				ptr[x.Name] = true
			}
		case *cast.UnaryExpr:
			if x.Op == ctoken.Star {
				if k := keyOf(x.X); k != "" {
					ptr[k] = true
				}
			}
		case *cast.MemberExpr:
			if x.Arrow {
				if k := keyOf(x.X); k != "" {
					ptr[k] = true
				}
			}
		case *cast.IndexExpr:
			if k := keyOf(x.X); k != "" {
				ptr[k] = true
			}
		}
		return true
	})
	return &state{ptrKeys: ptr}
}

// keyOfCached is keyOf memoized per AST node on the fork-local cache.
func (c *Checker) keyOfCached(e cast.Expr) string {
	if k, ok := c.keyCache[e]; ok {
		return k
	}
	k := keyOf(e)
	c.keyCache[e] = k
	return k
}

// keyOf canonicalizes a slot-instance expression: identifiers, member
// chains and single dereferences of those. Returns "" for untrackable
// expressions.
func keyOf(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := keyOf(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	case *cast.UnaryExpr:
		if x.Op == ctoken.Star {
			base := keyOf(x.X)
			if base == "" {
				return ""
			}
			return "*" + base
		}
	}
	return ""
}

// isNullExpr recognizes null constants: 0, NULL, (void*)0.
func isNullExpr(e cast.Expr) bool {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.IntLit:
		return x.Value == 0
	case *cast.Ident:
		return x.Name == "NULL" || x.Name == "nil"
	}
	return false
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*state)
	switch ev.Kind {
	case engine.EvDeref:
		c.deref(s, ev.Ptr, ev.Pos, ctx)
	case engine.EvAssign:
		c.assign(s, ev.LHS, ev.RHS)
	case engine.EvDecl:
		if ev.Decl.Init != nil {
			c.assignKey(s, ev.Decl.Name, ev.Decl.Init, ev.Pos)
		}
	case engine.EvCall:
		c.call(s, ev.Call)
	}
}

func (c *Checker) deref(s *state, ptr cast.Expr, pos ctoken.Pos, ctx *engine.Ctx) {
	if !c.cfgn.TrackMacros && ptr.FromMacro() {
		return
	}
	key := c.keyOfCached(ptr)
	if key == "" || !s.ptrKeys[key] {
		return
	}
	info := s.env.Get(key)
	if c.cfgn.CheckThenUse && info.Facts.Exactly(belief.Null) {
		span := pos.Line - info.Line
		if span < 0 {
			span = -span
		}
		how := "checked against null"
		if info.Src == belief.SrcAssign {
			how = "assigned null"
		}
		ctx.Reports.AddMust(
			"null/check-then-use",
			"do not dereference null pointer "+key,
			pos,
			report.Serious,
			span,
			fmt.Sprintf("dereferencing %q which was %s at line %d", key, how, info.Line),
		)
	}
	// The dereference implies the belief that key is not null.
	src := info.Src
	if !info.Facts.Exactly(belief.NotNull) || src != belief.SrcDeref {
		src = belief.SrcDeref
	}
	s.env.Set(key, belief.Info{Facts: belief.NotNull, Src: src, Line: pos.Line})
}

func (c *Checker) assign(s *state, lhs, rhs cast.Expr) {
	key := c.keyOfCached(lhs)
	if key == "" {
		return
	}
	if rhs == nil { // ++/--
		s.env.ForgetDerived(key)
		return
	}
	c.assignKey(s, key, rhs, lhs.Pos())
}

func (c *Checker) assignKey(s *state, key string, rhs cast.Expr, pos ctoken.Pos) {
	s.env.ForgetDerived(key)
	if !s.ptrKeys[key] {
		return
	}
	if rhs.FromMacro() && !c.cfgn.TrackMacros {
		return
	}
	if isNullExpr(rhs) {
		s.env.Set(key, belief.Info{Facts: belief.Null, Src: belief.SrcAssign, Line: pos.Line})
		return
	}
	// p = q copies q's belief.
	if rk := c.keyOfCached(rhs); rk != "" {
		if info := s.env.Get(rk); info.Facts != belief.Unknown {
			s.env.Set(key, belief.Info{Facts: info.Facts, Src: belief.SrcAssign, Line: pos.Line})
			return
		}
	}
	// &x is never null.
	if u, ok := cast.StripParensAndCasts(rhs).(*cast.UnaryExpr); ok && u.Op == ctoken.Amp {
		s.env.Set(key, belief.Info{Facts: belief.NotNull, Src: belief.SrcAssign, Line: pos.Line})
	}
}

// call invalidates beliefs for anything whose address escapes into the
// call (the callee may reassign it).
func (c *Checker) call(s *state, call *cast.CallExpr) {
	for _, a := range call.Args {
		if u, ok := cast.StripParensAndCasts(a).(*cast.UnaryExpr); ok && u.Op == ctoken.Amp {
			if k := c.keyOfCached(u.X); k != "" {
				s.env.ForgetDerived(k)
			}
		}
	}
}

// Branch implements engine.Checker: a branch on a null comparison (or a
// bare pointer truth test) both *observes* the pre-branch belief (feeding
// use-then-check and redundant-check) and *establishes* the post-branch
// belief.
func (c *Checker) Branch(st engine.State, cond cast.Expr, val bool, ctx *engine.Ctx) {
	s := st.(*state)
	key, nullWhenTrue, ok := c.nullCheckShape(cond)
	if !ok || !s.ptrKeys[key] {
		return
	}
	if cond.FromMacro() && !c.cfgn.TrackMacros {
		return
	}

	// Observe the pre-branch belief once per check site (val==true arm;
	// both arms share the same pre-branch state).
	if val {
		c.observe(s, key, cond.Pos(), ctx)
	}

	// Establish the post-branch belief.
	facts := belief.NotNull
	if nullWhenTrue == val {
		facts = belief.Null
	}
	s.env.Set(key, belief.Info{Facts: facts, Src: belief.SrcCheck, Line: cond.Pos().Line})
}

// observe accumulates what this path believed just before a null check.
func (c *Checker) observe(s *state, key string, pos ctoken.Pos, ctx *engine.Ctx) {
	info := s.env.Get(key)
	// Build the site key in the reusable scratch; the map lookup on a
	// string(b) conversion does not allocate, only a first-visit insert
	// does.
	b := append(c.obsBuf[:0], pos.File...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(pos.Line), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(pos.Col), 10)
	b = append(b, '|')
	b = append(b, key...)
	c.obsBuf = b
	obs := c.checkObs[string(b)]
	if obs == nil {
		obs = &checkObservation{pos: pos, key: key, srcs: make(map[belief.Source]bool), minSpan: 1 << 30}
		c.checkObs[string(b)] = obs
	}
	obs.facts |= info.Facts
	if info.Facts == belief.Unknown {
		// A path with no knowledge defeats "known on every path".
		obs.facts = belief.Either
	}
	obs.srcs[info.Src] = true
	span := pos.Line - info.Line
	if span < 0 {
		span = -span
	}
	if info.Facts != belief.Unknown && span < obs.minSpan {
		obs.minSpan = span
	}
	if info.Src == belief.SrcDeref || info.Src == belief.SrcMixed {
		obs.derefPos = info.Line
	}
}

// nullCheckShape decides whether cond is a null check of some slot and
// returns (key, nullWhenTrue). Recognized shapes: p == NULL, p != NULL,
// NULL == p, and the bare truth test p (null when false).
func (c *Checker) nullCheckShape(cond cast.Expr) (string, bool, bool) {
	switch x := cast.StripParensAndCasts(cond).(type) {
	case *cast.BinaryExpr:
		if x.Op != ctoken.EqEq && x.Op != ctoken.NotEq {
			return "", false, false
		}
		var side cast.Expr
		switch {
		case isNullExpr(x.Y):
			side = x.X
		case isNullExpr(x.X):
			side = x.Y
		default:
			return "", false, false
		}
		key := c.keyOfCached(side)
		if key == "" {
			return "", false, false
		}
		return key, x.Op == ctoken.EqEq, true
	default:
		key := c.keyOfCached(cond)
		if key == "" {
			return "", false, false
		}
		return key, false, true
	}
}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Finish emits the errors that require agreement across every path into a
// check site: use-then-check and redundant-check. Call it once after all
// functions have been analyzed.
func (c *Checker) Finish(col *report.Collector) {
	for _, obs := range c.checkObs {
		// All paths must agree on a precise value.
		var known belief.Fact
		switch {
		case obs.facts.Exactly(belief.NotNull):
			known = belief.NotNull
		case obs.facts.Exactly(belief.Null):
			known = belief.Null
		default:
			continue
		}
		if obs.minSpan > SpanThreshold {
			continue // distant enough to be defensive programming
		}
		derefed := obs.srcs[belief.SrcDeref] || obs.srcs[belief.SrcMixed]
		if c.cfgn.UseThenCheck && known == belief.NotNull && derefed {
			col.AddMust(
				"null/use-then-check",
				"do not check pointer "+obs.key+" after dereferencing it",
				obs.pos,
				report.Serious,
				obs.minSpan,
				fmt.Sprintf("checking %q against null, but it was dereferenced at line %d; either the check is impossible or the dereference can crash", obs.key, obs.derefPos),
			)
			continue
		}
		if c.cfgn.RedundantCheck && !derefed {
			col.AddMust(
				"null/redundant-check",
				"do not test pointer "+obs.key+" whose value is known",
				obs.pos,
				report.Minor,
				obs.minSpan,
				fmt.Sprintf("redundant check: %q is already known to be %s here", obs.key, strings.ToLower(known.String())),
			)
		}
	}
}

// Reset clears accumulated cross-path observations (for reuse across
// corpora).
func (c *Checker) Reset() { c.checkObs = make(map[string]*checkObservation) }

// Fork returns a checker with c's configuration and an empty observation
// table, for one worker's shard of functions.
func (c *Checker) Fork() *Checker { return New(c.cfgn) }

// Merge folds a fork's observations back into c. A check site belongs to
// exactly one function, so function-disjoint shards observe disjoint
// sites and the union cannot depend on merge order; colliding keys are
// still folded field-by-field for safety.
func (c *Checker) Merge(o *Checker) {
	for k, obs := range o.checkObs {
		have, ok := c.checkObs[k]
		if !ok {
			c.checkObs[k] = obs
			continue
		}
		have.facts |= obs.facts
		for s := range obs.srcs {
			have.srcs[s] = true
		}
		if obs.minSpan < have.minSpan {
			have.minSpan = obs.minSpan
		}
		if obs.derefPos != 0 {
			have.derefPos = obs.derefPos
		}
	}
}
