package null

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

// analyze runs the null checker over every function in src and returns the
// ranked reports.
func analyze(t *testing.T, src string, cfgn Config) []report.Report {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	ch := New(cfgn)
	col := report.NewCollector()
	for _, d := range f.Decls {
		fd, ok := d.(*cast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
		engine.Run(g, ch, col, engine.Options{Memoize: true})
	}
	ch.Finish(col)
	return col.Ranked()
}

func messages(rs []report.Report) string {
	var parts []string
	for _, r := range rs {
		parts = append(parts, r.Checker+"@"+r.Pos.String()+": "+r.Message)
	}
	return strings.Join(parts, "\n")
}

func countChecker(rs []report.Report, name string) int {
	n := 0
	for _, r := range rs {
		if r.Checker == name {
			n++
		}
	}
	return n
}

func TestPaperCheckThenUse(t *testing.T) {
	// §3.1 first fragment: 2.4.1:drivers/isdn/avmb1/capidrv.c
	src := `
void f(struct capi_ctr *card, int id) {
	if (card == NULL) {
		printk("capidrv-%d: incoming call on unbound id %d!\n",
			card->contrnr, id);
	}
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Fatalf("want 1 check-then-use:\n%s", messages(rs))
	}
	if !strings.Contains(rs[0].Message, "card") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestPaperUseThenCheck(t *testing.T) {
	// §3.1 second fragment: 2.4.7:drivers/char/mxser.c
	src := `
int mxser_write(struct tty_struct *tty, int from_user) {
	struct mxser_struct *info = tty->driver_data;
	unsigned long flags;

	if (!tty || !info->xmit_buf)
		return 0;
	return 1;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/use-then-check") != 1 {
		t.Fatalf("want 1 use-then-check:\n%s", messages(rs))
	}
	if !strings.Contains(messages(rs), "tty") {
		t.Errorf("should name tty:\n%s", messages(rs))
	}
}

func TestCleanGuardNoError(t *testing.T) {
	// Correct code: check before use, null path exits.
	src := `
int f(struct s *p) {
	if (p == NULL)
		return -1;
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("clean code flagged:\n%s", messages(rs))
	}
}

func TestCheckThenUseOnFallthroughPath(t *testing.T) {
	// The true branch does not return, so the null path reaches the
	// dereference.
	src := `
int f(struct s *p) {
	if (p == NULL)
		log_warning();
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Fatalf("want 1 check-then-use:\n%s", messages(rs))
	}
}

func TestAssignNullThenDeref(t *testing.T) {
	src := `
void f(void) {
	struct s *p = NULL;
	p->x = 1;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Fatalf("want 1 check-then-use:\n%s", messages(rs))
	}
	if !strings.Contains(rs[0].Message, "assigned null") {
		t.Errorf("message should note assignment: %s", rs[0].Message)
	}
}

func TestRedundantCheck(t *testing.T) {
	src := `
int f(struct s *p) {
	if (p == NULL)
		return -1;
	if (p == NULL)
		return -2;
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/redundant-check") != 1 {
		t.Fatalf("want 1 redundant-check:\n%s", messages(rs))
	}
}

func TestRedundantCheckSuppressedWhenPathsDisagree(t *testing.T) {
	// One path knows p, the other does not: not redundant.
	src := `
int f(struct s *p, int flag) {
	if (flag)
		p = get_ptr();
	else
		p = NULL;
	if (p == NULL)
		return -1;
	return 0;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/redundant-check") != 0 {
		t.Errorf("paths disagree, no redundancy:\n%s", messages(rs))
	}
}

func TestUseThenCheckSuppressedWhenSomePathLacksDeref(t *testing.T) {
	// §6: "this is only an error if no other path leading to the check
	// has the opposite belief".
	src := `
int f(struct tty_struct *tty, int mode) {
	if (mode)
		use(tty->field);
	if (!tty)
		return 0;
	return 1;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/use-then-check") != 0 {
		t.Errorf("deref only on one path, check is legitimate:\n%s", messages(rs))
	}
}

func TestPanicPathSuppression(t *testing.T) {
	// §6: the panic call makes the null path impossible.
	src := `
void f(struct proc *idle, int cpu) {
	if (!idle)
		panic("no idle process for CPU %d", cpu);
	idle->processor = cpu;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("panic path should be pruned:\n%s", messages(rs))
	}
}

func TestMacroBeliefTruncation(t *testing.T) {
	// A macro that checks its argument internally must not leak the
	// null belief to the caller (§6: macro false positives).
	src := `
#define WARN_IF_NULL(p) if ((p) == NULL) log_warning()
int f(struct s *q) {
	WARN_IF_NULL(q);
	return q->other;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 0 {
		t.Errorf("macro-origin belief leaked:\n%s", messages(rs))
	}

	// Ablation: with TrackMacros the false positive appears, showing the
	// truncation is what suppresses it.
	cfgn := AllChecks()
	cfgn.TrackMacros = true
	rs2 := analyze(t, src, cfgn)
	if countChecker(rs2, "null/check-then-use") == 0 {
		t.Errorf("ablation should reintroduce the macro false positive")
	}
}

func TestReassignmentClearsBelief(t *testing.T) {
	src := `
int f(struct s *p) {
	if (p == NULL) {
		p = fallback();
		if (p == NULL)
			return -1;
	}
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("reassignment resets belief:\n%s", messages(rs))
	}
}

func TestAddressEscapeClearsBelief(t *testing.T) {
	src := `
int f(struct s *p) {
	if (p == NULL)
		refill(&p);
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 0 {
		t.Errorf("&p escape should clear belief:\n%s", messages(rs))
	}
}

func TestBareTruthTest(t *testing.T) {
	src := `
int f(struct s *p) {
	if (!p)
		return -1;
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("clean truth-test guard flagged:\n%s", messages(rs))
	}
}

func TestMemberChainSlots(t *testing.T) {
	// Beliefs attach to member chains too: tty->link checked null then
	// dereferenced.
	src := `
void f(struct tty_struct *tty) {
	if (tty->link == NULL) {
		tty->link->count = 0;
	}
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Fatalf("member chain not tracked:\n%s", messages(rs))
	}
}

func TestUseThenCheckCutAndPasteIdiom(t *testing.T) {
	// §6.1: "a dereference of a pointer in an initializer followed by a
	// subsequent null check ... cut-and-paste into twenty locations".
	src := `
int a(struct tty_struct *tty) {
	struct mx *info = tty->driver_data;
	if (!tty)
		return 0;
	return 1;
}
int b(struct tty_struct *tty) {
	struct mx *info = tty->driver_data;
	if (!tty)
		return 0;
	return 1;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/use-then-check") != 2 {
		t.Fatalf("want 2 use-then-check (one per copy):\n%s", messages(rs))
	}
}

func TestSpanThresholdSuppressesDistantChecks(t *testing.T) {
	// A re-check far from the first is defensive programming (§6).
	var sb strings.Builder
	sb.WriteString("int f(struct s *p) {\n")
	sb.WriteString("\tif (p == NULL) return -1;\n")
	for i := 0; i < 20; i++ {
		sb.WriteString("\twork();\n")
	}
	sb.WriteString("\tif (p == NULL) return -2;\n")
	sb.WriteString("\treturn p->x;\n}\n")
	rs := analyze(t, sb.String(), AllChecks())
	if countChecker(rs, "null/redundant-check") != 0 {
		t.Errorf("distant check should be suppressed:\n%s", messages(rs))
	}
}

func TestConfigDisablesSubCheckers(t *testing.T) {
	src := `
void f(struct s *p) {
	if (p == NULL)
		use(p->x);
}`
	rs := analyze(t, src, Config{UseThenCheck: true, RedundantCheck: true})
	if countChecker(rs, "null/check-then-use") != 0 {
		t.Errorf("disabled checker fired:\n%s", messages(rs))
	}
}

func TestNotEqualShape(t *testing.T) {
	src := `
int f(struct s *p) {
	if (p != NULL)
		return p->x;
	return p->y;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Fatalf("p->y on the null path:\n%s", messages(rs))
	}
	if rs[0].Pos.Line != 5 {
		t.Errorf("error should be at the p->y dereference (line 5):\n%s", messages(rs))
	}
}

func TestNullOnLeftSide(t *testing.T) {
	src := `
int f(struct s *p) {
	if (NULL == p)
		return p->x;
	return 0;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Fatalf("NULL == p shape missed:\n%s", messages(rs))
	}
}

func TestLoopListWalkClean(t *testing.T) {
	src := `
void f(struct node *list) {
	struct node *p;
	for (p = list; p; p = p->next)
		visit(p->data);
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("list walk flagged:\n%s", messages(rs))
	}
}

func TestResetClearsObservations(t *testing.T) {
	ch := New(AllChecks())
	ch.checkObs["x"] = &checkObservation{}
	ch.Reset()
	if len(ch.checkObs) != 0 {
		t.Error("reset failed")
	}
}

func TestTernaryGuardClean(t *testing.T) {
	// "p ? p->x : 0" — the dereference happens only on the non-null arm.
	src := `
int f(struct s *p) {
	int v;
	v = p ? p->x : 0;
	return v;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("guarded ternary flagged:\n%s", messages(rs))
	}
}

func TestTernaryInvertedArmsBug(t *testing.T) {
	// "p ? 0 : p->x" dereferences on the null arm: a real bug.
	src := `
int f(struct s *p) {
	int v;
	v = p ? 0 : p->x;
	return v;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Errorf("null-arm dereference missed:\n%s", messages(rs))
	}
}

func TestTernaryReturnGuardClean(t *testing.T) {
	src := `
int f(struct s *p) {
	return p ? p->x : -1;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("guarded ternary return flagged:\n%s", messages(rs))
	}
}

func TestGotoErrorPathIdiom(t *testing.T) {
	// The classic kernel error-path idiom must stay clean.
	src := `
int f(struct s *p) {
	int ret = -1;
	if (p == NULL)
		goto out;
	ret = p->x;
out:
	return ret;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("goto error path flagged:\n%s", messages(rs))
	}
}

func TestGotoIntoDerefIsBug(t *testing.T) {
	// Jumping to a label that dereferences while null is a bug.
	src := `
int f(struct s *p) {
	if (p == NULL)
		goto use;
	return 0;
use:
	return p->x;
}`
	rs := analyze(t, src, AllChecks())
	if countChecker(rs, "null/check-then-use") != 1 {
		t.Errorf("goto-reached deref missed:\n%s", messages(rs))
	}
}

func TestWhileNotNullLoop(t *testing.T) {
	src := `
void f(struct node *p) {
	while (p != NULL) {
		visit(p->v);
		p = p->next;
	}
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("while-not-null loop flagged:\n%s", messages(rs))
	}
}

func TestIntegersNotTracked(t *testing.T) {
	// Repeated checks of a plain int are not "redundant pointer checks".
	src := `
int f(int n) {
	if (n == 0)
		return 1;
	if (n == 0)
		return 2;
	return 0;
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("integer checks tracked as pointers:\n%s", messages(rs))
	}
}

func TestDoWhileGuard(t *testing.T) {
	src := `
void f(struct s *p) {
	if (!p)
		return;
	do {
		consume(p->x);
		p = p->next;
	} while (p);
}`
	rs := analyze(t, src, AllChecks())
	if len(rs) != 0 {
		t.Errorf("do-while walk flagged:\n%s", messages(rs))
	}
}
