// Package userptr implements the Section 7 security checker: "is <p> a
// dangerous user pointer?" Passing p to a paranoid copy routine
// (copy_from_user, copyin, ...) implies the MUST belief that p is an
// unsafe user pointer; dereferencing p implies the MUST belief that it is
// a safe kernel pointer. A pointer holding both beliefs is a security
// hole — no ranking needed, contradictions are definite (Table 1).
//
// Beliefs propagate three ways:
//
//  1. within one function (both beliefs about the same parameter);
//  2. through direct calls (passing a parameter onward to a routine that
//     treats that position as a user pointer taints the caller's
//     parameter), iterated to a fixpoint;
//  3. across interface equivalence classes (§4.2): all implementations
//     of ->ioctl receive the same arguments, so one implementation
//     treating parameter i as a user pointer convicts a sibling that
//     dereferences it.
package userptr

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/csem"
	"deviant/internal/ctoken"
	"deviant/internal/latent"
	"deviant/internal/report"
)

// Belief origin for diagnostics.
type origin int

const (
	fromCopyCall origin = iota
	fromCallee
	fromInterface
)

type userFact struct {
	pos ctoken.Pos
	org origin
	via string // callee or sibling that induced the belief
}

// funcFacts holds per-parameter evidence for one function.
type funcFacts struct {
	fn *cast.FuncDecl
	// user[i] is set when parameter i is believed to be a user pointer.
	user map[int]*userFact
	// deref[i] records the first dereference site of parameter i.
	deref map[int]ctoken.Pos
}

// Checker runs the whole-program analysis.
type Checker struct {
	prog  *csem.Program
	conv  *latent.Conventions
	facts map[string]*funcFacts
}

// New prepares the checker for prog.
func New(prog *csem.Program, conv *latent.Conventions) *Checker {
	return &Checker{prog: prog, conv: conv, facts: make(map[string]*funcFacts)}
}

// Run performs the analysis and emits contradictions into col.
func (c *Checker) Run(col *report.Collector) {
	for name, fd := range c.prog.Funcs {
		c.facts[name] = c.localFacts(fd)
	}
	c.propagateCalls()
	c.propagateInterfaces()
	c.reportContradictions(col)
}

// paramIndex returns fn's parameter index for ident name, or -1.
func paramIndex(fn *cast.FuncDecl, name string) int {
	for i, p := range fn.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// localFacts computes the directly observable beliefs in one function.
func (c *Checker) localFacts(fd *cast.FuncDecl) *funcFacts {
	ff := &funcFacts{fn: fd, user: make(map[int]*userFact), deref: make(map[int]ctoken.Pos)}

	recordDeref := func(base cast.Expr, pos ctoken.Pos) {
		base = cast.StripParensAndCasts(base)
		id, ok := base.(*cast.Ident)
		if !ok || id.Macro {
			return
		}
		if i := paramIndex(fd, id.Name); i >= 0 {
			if _, seen := ff.deref[i]; !seen {
				ff.deref[i] = pos
			}
		}
	}

	cast.Inspect(fd.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.UnaryExpr:
			if x.Op == ctoken.Star {
				recordDeref(x.X, x.OpPos)
			}
		case *cast.MemberExpr:
			if x.Arrow {
				recordDeref(x.X, x.MemPos)
			}
		case *cast.IndexExpr:
			recordDeref(x.X, x.X.Pos())
		case *cast.CallExpr:
			callee := cast.CalleeName(x)
			if callee == "" {
				return true
			}
			idx, ok := c.conv.UserPointerArg(callee)
			if !ok || idx >= len(x.Args) {
				return true
			}
			arg := cast.StripParensAndCasts(x.Args[idx])
			if id, isIdent := arg.(*cast.Ident); isIdent {
				if i := paramIndex(fd, id.Name); i >= 0 && ff.user[i] == nil {
					ff.user[i] = &userFact{pos: x.Lparen, org: fromCopyCall, via: callee}
				}
			}
		}
		return true
	})
	return ff
}

// propagateCalls pushes user beliefs from callees to callers: if f passes
// its parameter p straight to g, and g treats that position as a user
// pointer, then f must believe p is a user pointer too. Iterates to a
// fixpoint (belief chains through wrappers).
func (c *Checker) propagateCalls() {
	for changed := true; changed; {
		changed = false
		for name, ff := range c.facts {
			fd := c.prog.Funcs[name]
			cast.Inspect(fd.Body, func(n cast.Node) bool {
				call, ok := n.(*cast.CallExpr)
				if !ok {
					return true
				}
				callee := cast.CalleeName(call)
				gf, defined := c.facts[callee]
				if !defined {
					return true
				}
				for ai, arg := range call.Args {
					uf := gf.user[ai]
					if uf == nil {
						continue
					}
					a := cast.StripParensAndCasts(arg)
					id, isIdent := a.(*cast.Ident)
					if !isIdent {
						continue
					}
					if pi := paramIndex(fd, id.Name); pi >= 0 && ff.user[pi] == nil {
						ff.user[pi] = &userFact{pos: call.Lparen, org: fromCallee, via: callee}
						changed = true
					}
				}
				return true
			})
		}
	}
}

// propagateInterfaces unions user beliefs across interface equivalence
// classes: every implementation of the same interface receives the same
// execution context and argument restrictions (§4.2).
func (c *Checker) propagateInterfaces() {
	for class, members := range c.prog.InterfaceClasses() {
		// Union of user-believed parameter indexes across the class.
		union := map[int]string{} // index -> member that established it
		for _, m := range members {
			if ff, ok := c.facts[m]; ok {
				for i, uf := range ff.user {
					if uf.org != fromInterface {
						if _, have := union[i]; !have {
							union[i] = m
						}
					}
				}
			}
		}
		for _, m := range members {
			ff, ok := c.facts[m]
			if !ok {
				continue
			}
			for i, via := range union {
				if ff.user[i] == nil && i < len(ff.fn.Params) {
					ff.user[i] = &userFact{
						pos: ff.fn.NamePos,
						org: fromInterface,
						via: via + " (same interface " + class + ")",
					}
				}
			}
		}
	}
}

func (c *Checker) reportContradictions(col *report.Collector) {
	names := make([]string, 0, len(c.facts))
	for n := range c.facts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ff := c.facts[name]
		for i, uf := range ff.user {
			dpos, derefed := ff.deref[i]
			if !derefed {
				continue
			}
			param := "?"
			if i < len(ff.fn.Params) {
				param = ff.fn.Params[i].Name
			}
			span := dpos.Line - uf.pos.Line
			if span < 0 {
				span = -span
			}
			var how string
			switch uf.org {
			case fromCopyCall:
				how = fmt.Sprintf("passed to %s at line %d", uf.via, uf.pos.Line)
			case fromCallee:
				how = fmt.Sprintf("passed to %s, which treats it as a user pointer", uf.via)
			case fromInterface:
				how = fmt.Sprintf("treated as a user pointer by %s", uf.via)
				span = 0 // cross-function: keep it inspectable
			}
			col.AddMust(
				"userptr",
				fmt.Sprintf("do not dereference user pointer %s in %s", param, name),
				dpos,
				report.Serious,
				span,
				fmt.Sprintf("%s dereferences %q, but it is a dangerous user pointer: %s", name, param, how),
			)
		}
	}
}

// UserParams returns, for diagnostics and the experiment tables, the
// user-pointer parameter indexes believed for fn.
func (c *Checker) UserParams(fn string) []int {
	ff, ok := c.facts[fn]
	if !ok {
		return nil
	}
	var out []int
	for i := range ff.user {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
