package userptr

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
	"deviant/internal/csem"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) (*Checker, []report.Report) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	prog := csem.Analyze([]*cast.File{f})
	c := New(prog, latent.Default())
	col := report.NewCollector()
	c.Run(col)
	return c, col.ByChecker("userptr")
}

func TestIntraFunctionContradiction(t *testing.T) {
	// Table 1: "p passed to copyout or copyin -> dangerous user pointer;
	// *p -> safe system pointer" — both is an error.
	src := `
int sys_write_cfg(struct cfg *u, int len) {
	int first = u->magic;
	if (copy_from_user(kbuf, u, len))
		return -1;
	return first;
}
`
	_, rs := run(t, src)
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "user pointer") || !strings.Contains(rs[0].Message, "copy_from_user") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestConsistentUsageClean(t *testing.T) {
	src := `
int sys_read_cfg(struct cfg *u, int len) {
	struct cfg k;
	if (copy_from_user(&k, u, len))
		return -1;
	return k.magic;
}
`
	_, rs := run(t, src)
	if len(rs) != 0 {
		t.Errorf("clean code flagged: %+v", rs)
	}
}

func TestKernelOnlyClean(t *testing.T) {
	src := `
int helper(struct cfg *k) {
	return k->magic;
}
`
	_, rs := run(t, src)
	if len(rs) != 0 {
		t.Errorf("kernel-only deref flagged: %+v", rs)
	}
}

func TestCalleePropagation(t *testing.T) {
	// wrapper passes p to a routine that copies from user space; the
	// wrapper's own deref of p is the bug.
	src := `
int do_copy(char *up, int n) {
	return copy_from_user(kbuf, up, n);
}
int wrapper(char *p, int n) {
	char c = p[0];
	return do_copy(p, n);
}
`
	_, rs := run(t, src)
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "wrapper") {
		t.Errorf("should blame wrapper: %s", rs[0].Message)
	}
}

func TestFixpointThroughTwoWrappers(t *testing.T) {
	src := `
int level0(char *up, int n) {
	return copy_from_user(kbuf, up, n);
}
int level1(char *p, int n) {
	return level0(p, n);
}
int level2(char *q, int n) {
	char c = *q;
	return level1(q, n);
}
`
	c, rs := run(t, src)
	if got := c.UserParams("level2"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("level2 user params: %v", got)
	}
	if len(rs) != 1 || !strings.Contains(rs[0].Message, "level2") {
		t.Errorf("reports: %+v", rs)
	}
}

func TestInterfacePropagation(t *testing.T) {
	// Two ioctl implementations in the same interface; one copies from
	// user space, the sibling dereferences directly (§7's scenario).
	src := `
struct file_operations {
	int (*ioctl)(struct file *f, unsigned int cmd, char *arg);
};
int good_ioctl(struct file *f, unsigned int cmd, char *arg) {
	char k[8];
	if (copy_from_user(k, arg, 8))
		return -1;
	return 0;
}
int bad_ioctl(struct file *f, unsigned int cmd, char *arg) {
	return arg[0];
}
struct file_operations a_fops = { .ioctl = good_ioctl };
struct file_operations b_fops = { .ioctl = bad_ioctl };
`
	_, rs := run(t, src)
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "bad_ioctl") || !strings.Contains(rs[0].Message, "good_ioctl") {
		t.Errorf("should blame bad_ioctl via good_ioctl: %s", rs[0].Message)
	}
}

func TestInterfaceNoFalsePositiveWithoutDeref(t *testing.T) {
	src := `
struct ops { int (*h)(char *arg); };
int h1(char *arg) { return copy_from_user(k, arg, 4); }
int h2(char *arg) { return copy_from_user(k, arg, 4); }
struct ops o1 = { .h = h1 };
struct ops o2 = { .h = h2 };
`
	_, rs := run(t, src)
	if len(rs) != 0 {
		t.Errorf("consistent siblings flagged: %+v", rs)
	}
}

func TestCopyToUserDirection(t *testing.T) {
	// copy_to_user's arg 0 is the user pointer.
	src := `
int sys_get(struct stat *ubuf) {
	ubuf->size = 1;
	return copy_to_user(ubuf, &kstat, 16);
}
`
	_, rs := run(t, src)
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
}

func TestMacroDerefIgnored(t *testing.T) {
	src := `
#define PEEK(p) (*(p))
int sys_x(char *u) {
	int v = PEEK(u);
	return copy_from_user(k, u, 4);
}
`
	_, rs := run(t, src)
	if len(rs) != 0 {
		t.Errorf("macro deref should not convict: %+v", rs)
	}
}

func TestCastDerefConvicts(t *testing.T) {
	// The ioctl idiom: *(int *)arg dereferences the user pointer through
	// a cast.
	src := `
int dev_ioctl(struct file *f, unsigned int cmd, char *arg) {
	int v = *(int *)arg;
	if (copy_from_user(kbuf, arg, 4))
		return -1;
	return v;
}
`
	_, rs := run(t, src)
	if len(rs) != 1 {
		t.Fatalf("cast deref missed: %+v", rs)
	}
}

func TestMultiFileInterfacePropagation(t *testing.T) {
	// The good and bad implementations live in different files.
	good, errs := cparse.ParseSource("good.c", `
struct file_operations { int (*ioctl)(struct file *f, char *arg); };
int good_ioctl(struct file *f, char *arg) {
	if (copy_from_user(k, arg, 8))
		return -1;
	return 0;
}
struct file_operations good_fops = { .ioctl = good_ioctl };
`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	bad, errs := cparse.ParseSource("bad.c", `
struct file_operations { int (*ioctl)(struct file *f, char *arg); };
int bad_ioctl(struct file *f, char *arg) {
	return arg[0];
}
struct file_operations bad_fops = { .ioctl = bad_ioctl };
`)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	prog := csem.Analyze([]*cast.File{good, bad})
	col := report.NewCollector()
	New(prog, latent.Default()).Run(col)
	rs := col.ByChecker("userptr")
	if len(rs) != 1 || rs[0].Pos.File != "bad.c" {
		t.Errorf("cross-file conviction failed: %+v", rs)
	}
}
