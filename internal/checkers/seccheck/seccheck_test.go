package seccheck

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) (*Checker, *report.Collector) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(nil)
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, c, col, engine.Options{Memoize: true})
		}
	}
	c.Finish(col)
	return c, col
}

func TestGuardedCallCounted(t *testing.T) {
	src := `
int f(void) {
	if (!capable(21))
		return -1;
	set_port_state(1);
	return 0;
}
`
	c, col := run(t, src)
	got := c.Counter("set_port_state", "capable")
	if got.Checks == 0 || got.Errors != 0 {
		t.Errorf("counter: %+v", got)
	}
	if col.Len() != 0 {
		t.Errorf("clean code flagged: %d", col.Len())
	}
}

func TestUnguardedCallFlagged(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, `
int f%d(void) {
	if (!capable(21))
		return -1;
	set_port_state(%d);
	return 0;
}`, i, i)
	}
	sb.WriteString(`
int bad(void) {
	set_port_state(9);
	return 0;
}`)
	c, col := run(t, sb.String())
	got := c.Counter("set_port_state", "capable")
	if got.Checks != 10 || got.Errors != 1 {
		t.Fatalf("counter: %+v", got)
	}
	rs := col.ByChecker("seccheck")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "capable") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestNeverGuardedSilent(t *testing.T) {
	src := `
void a(void) { helper(); }
void b(void) { helper(); if (!capable(1)) return; privileged(); }
`
	_, col := run(t, src)
	for _, r := range col.ByChecker("seccheck") {
		if strings.Contains(r.Message, "helper") {
			t.Errorf("helper is never guarded, must stay silent: %+v", r)
		}
	}
}

func TestSuserIdiom(t *testing.T) {
	src := `
int f(void) {
	if (suser()) {
		write_rom(1);
	}
	return 0;
}
`
	c, _ := run(t, src)
	if got := c.Counter("write_rom", "suser"); got.Checks != 1 || got.Errors != 0 {
		t.Errorf("suser idiom: %+v", got)
	}
}

func TestRankedTable(t *testing.T) {
	src := `
int f(void) {
	if (!capable(1)) return -1;
	sensitive_op();
	return 0;
}
int g(void) {
	sensitive_op();
	return 0;
}
`
	c, _ := run(t, src)
	r := c.Ranked()
	found := false
	for _, d := range r {
		if d.Action == "sensitive_op" && d.Check == "capable" {
			found = true
			if d.Checks != 2 || d.Errors != 1 {
				t.Errorf("evidence: %+v", d)
			}
		}
	}
	if !found {
		t.Errorf("missing instance: %+v", r)
	}
}

func TestGuardedInsideLoop(t *testing.T) {
	src := `
int f(int n) {
	int i;
	if (!capable(21))
		return -1;
	for (i = 0; i < n; i++)
		set_port_state(i);
	return 0;
}
`
	c, col := run(t, src)
	got := c.Counter("set_port_state", "capable")
	if got.Errors != 0 {
		t.Errorf("loop body loses domination: %+v", got)
	}
	if col.Len() != 0 {
		t.Errorf("clean loop flagged")
	}
}

func TestCheckOnOneBranchOnly(t *testing.T) {
	// The unchecked else-branch call counts as an error candidate.
	src := `
int f(int privileged) {
	if (privileged) {
		if (!capable(21))
			return -1;
		set_port_state(1);
	} else {
		set_port_state(2);
	}
	return 0;
}
`
	c, _ := run(t, src)
	got := c.Counter("set_port_state", "capable")
	if got.Checks != 2 || got.Errors != 1 {
		t.Errorf("branch sensitivity: %+v", got)
	}
}
