// Package seccheck derives the rule template "does security check <Y>
// protect <X>?" (Table 2). The examples are calls to X dominated by a
// branch on a permission predicate Y (capable(), suser(), ...); the
// population is all calls to X. Calls to X reachable without the check
// are the error candidates, ranked by the (X, Y) pair's z statistic.
package seccheck

import (
	"fmt"
	"sort"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// maxSites bounds recorded unprotected call sites per (X, Y) pair.
const maxSites = 64

// DefaultPredicates are the permission predicates recognized as security
// checks, per the Unix idiom set.
func DefaultPredicates() map[string]bool {
	return map[string]bool{
		"capable": true, "suser": true, "fsuser": true,
		"permission": true, "security_check": true, "access_ok": true,
	}
}

// Checker accumulates security-check evidence across a program.
type Checker struct {
	preds map[string]bool
	p0    float64

	pop      *stats.Population       // key: x + "?" + y
	errSites map[string][]ctoken.Pos // unprotected call sites
	// xCalls tracks which predicates were ever seen so the universe of
	// Y slots is bounded by reality.
	seenPreds map[string]bool
	// pairCache precomputes the (y, "x?y") entries for a callee x: the
	// predicate set is frozen at New, and concatenating the pair key per
	// call site was a dominant allocation. Fork-local (single goroutine).
	pairCache map[string][]xyPair
}

// xyPair is one precomputed (check, "action?check") entry.
type xyPair struct {
	check, key string
}

// New returns a checker using the given predicate set (nil = defaults).
func New(preds map[string]bool) *Checker {
	if preds == nil {
		preds = DefaultPredicates()
	}
	return &Checker{
		preds:     preds,
		p0:        stats.DefaultP0,
		pop:       stats.NewPopulation(),
		errSites:  make(map[string][]ctoken.Pos),
		seenPreds: make(map[string]bool),
		pairCache: make(map[string][]xyPair),
	}
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "seccheck" }

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0 }

// state carries the set of predicates that dominated the current point.
type state struct {
	checked map[string]bool
}

func (s *state) Clone() engine.State {
	ns := &state{}
	if len(s.checked) > 0 {
		ns.checked = make(map[string]bool, len(s.checked))
		for k := range s.checked {
			ns.checked[k] = true
		}
	}
	return ns
}

func (s *state) Key() string {
	if len(s.checked) == 0 {
		return ""
	}
	return string(s.AppendKey(nil))
}

// AppendKey implements engine.AppendKeyer: the checked set in ascending
// order, comma-terminated, built without allocating.
func (s *state) AppendKey(b []byte) []byte {
	for k := engine.NextKey(s.checked, ""); k != ""; k = engine.NextKey(s.checked, k) {
		b = append(append(b, k...), ',')
	}
	return b
}

// NewState implements engine.Checker. The checked set is allocated on
// first insertion: most paths never see a predicate call, and the engine
// creates one state per function plus one per branch clone.
func (c *Checker) NewState(*cast.FuncDecl) engine.State {
	return &state{}
}

// Event implements engine.Checker: every non-predicate call is counted
// against each known predicate.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	if ev.Kind != engine.EvCall {
		return
	}
	s := st.(*state)
	name := cast.CalleeName(ev.Call)
	if name == "" || c.preds[name] {
		return
	}
	for _, p := range c.pairs(name) {
		errHere := !s.checked[p.check]
		c.pop.Check(p.key, errHere)
		if errHere && len(c.errSites[p.key]) < maxSites {
			c.errSites[p.key] = append(c.errSites[p.key], ev.Pos)
		}
	}
}

// pairs returns the cached (y, "x?y") list for callee x, building it on
// first sight. Per-key effects in the caller's loop are independent, so
// the order the list snapshots is irrelevant (as it was when iterating
// the predicate map directly).
func (c *Checker) pairs(x string) []xyPair {
	ps, ok := c.pairCache[x]
	if !ok {
		ps = make([]xyPair, 0, len(c.preds))
		for y := range c.preds {
			ps = append(ps, xyPair{check: y, key: x + "?" + y})
		}
		c.pairCache[x] = ps
	}
	return ps
}

// Branch implements engine.Checker: a branch whose condition calls a
// predicate marks the predicate checked on both arms. (Which arm is the
// privileged one varies with the idiom — "if (!capable(..)) return" and
// "if (suser()) { ... }" both occur — so domination by the check is what
// we measure, matching the template's "y checked before x".)
func (c *Checker) Branch(st engine.State, cond cast.Expr, val bool, ctx *engine.Ctx) {
	s := st.(*state)
	found := false
	cast.Inspect(cond, func(n cast.Node) bool {
		if call, ok := n.(*cast.CallExpr); ok {
			if name := cast.CalleeName(call); c.preds[name] {
				if s.checked == nil {
					s.checked = make(map[string]bool)
				}
				s.checked[name] = true
				c.seenPreds[name] = true
				found = true
			}
		}
		return !found
	})
}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns an empty checker sharing c's predicate set, for one
// worker's shard of functions.
func (c *Checker) Fork() *Checker {
	return &Checker{
		preds:     c.preds,
		p0:        c.p0,
		pop:       stats.NewPopulation(),
		errSites:  make(map[string][]ctoken.Pos),
		seenPreds: make(map[string]bool),
		pairCache: make(map[string][]xyPair),
	}
}

// Merge folds a fork's evidence into c: counters sum, seen-predicate sets
// union, site lists concatenate in merge order and re-truncate.
func (c *Checker) Merge(o *Checker) {
	c.pop.Merge(o.pop)
	for k := range o.seenPreds {
		c.seenPreds[k] = true
	}
	for k, v := range o.errSites {
		s := append(c.errSites[k], v...)
		if len(s) > maxSites {
			s = s[:maxSites]
		}
		c.errSites[k] = s
	}
}

// Derived is the evidence for one (X, Y) instance.
type Derived struct {
	Action, Check string
	stats.Counter
	Z float64
}

// Ranked returns (X, Y) instances for predicates actually seen, ordered
// by z.
func (c *Checker) Ranked() []Derived {
	var out []Derived
	for _, key := range c.pop.Keys() {
		x, y, ok := strings.Cut(key, "?")
		if !ok || !c.seenPreds[y] {
			continue
		}
		cnt := c.pop.Get(key)
		out = append(out, Derived{Action: x, Check: y, Counter: cnt, Z: cnt.Z(c.p0)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		if out[i].Action != out[j].Action {
			return out[i].Action < out[j].Action
		}
		return out[i].Check < out[j].Check
	})
	return out
}

// Counter exposes the evidence for (x, y).
func (c *Checker) Counter(x, y string) stats.Counter { return c.pop.Get(x + "?" + y) }

// Finish reports unprotected calls to actions that are usually guarded,
// ranked by z.
func (c *Checker) Finish(col *report.Collector) {
	for _, d := range c.Ranked() {
		if d.Errors == 0 || d.Examples() == 0 {
			continue
		}
		key := d.Action + "?" + d.Check
		rule := fmt.Sprintf("security check %s must protect %s", d.Check, d.Action)
		for _, pos := range c.errSites[key] {
			col.AddStat("seccheck", rule, pos, d.Z, d.Checks, d.Examples(),
				fmt.Sprintf("%s called without a %s check; %d/%d call sites are guarded",
					d.Action, d.Check, d.Examples(), d.Checks))
		}
	}
}
