package version

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
	"deviant/internal/csem"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func prog(t *testing.T, src string) *csem.Program {
	t.Helper()
	f, errs := cparse.ParseSource("v.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	return csem.Analyze([]*cast.File{f})
}

func diff(t *testing.T, oldSrc, newSrc string) ([]Drift, *report.Collector) {
	t.Helper()
	col := report.NewCollector()
	drifts := Diff(prog(t, oldSrc), prog(t, newSrc), latent.Default(), col)
	return drifts, col
}

func TestDroppedNullCheck(t *testing.T) {
	oldSrc := `
int f(struct s *p) {
	if (!p)
		return -1;
	return p->x;
}`
	newSrc := `
int f(struct s *p) {
	return p->x;
}`
	drifts, col := diff(t, oldSrc, newSrc)
	if len(drifts) != 1 || drifts[0].Kind != "dropped-null-check" {
		t.Fatalf("drifts: %+v", drifts)
	}
	if col.Len() != 1 {
		t.Errorf("reports: %d", col.Len())
	}
	if !strings.Contains(drifts[0].Msg, "p") {
		t.Errorf("msg: %s", drifts[0].Msg)
	}
}

func TestNoDriftWhenBothGuard(t *testing.T) {
	src := `
int f(struct s *p) {
	if (!p)
		return -1;
	return p->x;
}`
	drifts, _ := diff(t, src, src)
	if len(drifts) != 0 {
		t.Errorf("identical versions drifted: %+v", drifts)
	}
}

func TestNoDriftWhenOldWasAlsoUnguarded(t *testing.T) {
	src := `
int f(struct s *p) {
	return p->x;
}`
	drifts, _ := diff(t, src, src)
	if len(drifts) != 0 {
		t.Errorf("old code was equally sloppy; not a regression: %+v", drifts)
	}
}

func TestUserPointerRegression(t *testing.T) {
	oldSrc := `
int ioctl(struct file *f, char *arg) {
	char k[8];
	if (copy_from_user(k, arg, 8))
		return -1;
	return k[0];
}`
	newSrc := `
int ioctl(struct file *f, char *arg) {
	return arg[0];
}`
	drifts, _ := diff(t, oldSrc, newSrc)
	found := false
	for _, d := range drifts {
		if d.Kind == "user-pointer-regression" {
			found = true
		}
	}
	if !found {
		t.Errorf("drifts: %+v", drifts)
	}
}

func TestDroppedResultCheck(t *testing.T) {
	oldSrc := `
int f(void) {
	struct b *p = kmalloc(8);
	if (!p)
		return -1;
	return p->len;
}`
	newSrc := `
int f(void) {
	struct b *p = kmalloc(8);
	return p->len;
}`
	drifts, _ := diff(t, oldSrc, newSrc)
	found := false
	for _, d := range drifts {
		if d.Kind == "dropped-result-check" && strings.Contains(d.Msg, "kmalloc") {
			found = true
		}
	}
	if !found {
		t.Fatalf("drifts: %+v", drifts)
	}
}

func TestErrorConventionFlip(t *testing.T) {
	oldSrc := `
int f(int x) {
	if (x < 0)
		return -1;
	return 0;
}`
	newSrc := `
int f(int x) {
	if (x < 0)
		return 1;
	return 0;
}`
	drifts, _ := diff(t, oldSrc, newSrc)
	if len(drifts) != 1 || drifts[0].Kind != "error-convention-flip" {
		t.Fatalf("drifts: %+v", drifts)
	}
}

func TestRenamedFunctionsIgnored(t *testing.T) {
	oldSrc := `int f(struct s *p) { if (!p) return -1; return p->x; }`
	newSrc := `int g(struct s *p) { return p->x; }`
	drifts, _ := diff(t, oldSrc, newSrc)
	if len(drifts) != 0 {
		t.Errorf("unrelated functions compared: %+v", drifts)
	}
}

func TestIsErrCountsAsCheck(t *testing.T) {
	oldSrc := `
int f(void) {
	struct d *p = lookup(1);
	if (!p)
		return -1;
	return p->n;
}`
	newSrc := `
int f(void) {
	struct d *p = lookup(1);
	if (IS_ERR(p))
		return -1;
	return p->n;
}`
	drifts, _ := diff(t, oldSrc, newSrc)
	if len(drifts) != 0 {
		t.Errorf("IS_ERR still checks the result: %+v", drifts)
	}
}

func TestGuardedDerefAfterCheckNotUnguarded(t *testing.T) {
	p := prog(t, `
int f(struct s *p) {
	if (!p)
		return -1;
	return p->x;
}`)
	s := Summarize(p, latent.Default())["f"]
	if s.ParamDerefUnguarded[0] {
		t.Error("deref after guard should not be unguarded")
	}
	if !s.ParamGuarded[0] {
		t.Error("guard not recorded")
	}
}
