// Package version cross-checks a routine against itself through time
// (§4.2: "One simple technique is to relate the same routine to itself
// through time across different versions. Once the implementation becomes
// stable, we can check that any modifications do not violate invariants
// implied by the old code.").
//
// The old version's code implies MUST beliefs — parameters it guards
// against null, parameters it treats as dangerous user pointers, callees
// whose results it checks, the sign convention of its error returns. A
// new version that contradicts one of those beliefs is flagged: either
// the old invariant was spurious, or the modification introduced a bug.
package version

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/csem"
	"deviant/internal/ctoken"
	"deviant/internal/latent"
	"deviant/internal/report"
)

// Summary captures the externally comparable beliefs one function's body
// implies.
type Summary struct {
	Name string
	// ParamGuarded[i]: parameter i is compared against null somewhere.
	ParamGuarded []bool
	// ParamDerefUnguarded[i]: parameter i is dereferenced at a point not
	// preceded (in source order) by any null check of it.
	ParamDerefUnguarded []bool
	// ParamDerefPos[i]: site of the first unguarded dereference.
	ParamDerefPos []ctoken.Pos
	// ParamUser[i]: parameter i is passed to a user-copy routine.
	ParamUser []bool
	// CheckedCallees: callees whose stored result is null/IS_ERR-checked.
	CheckedCallees map[string]bool
	// UncheckedCallees: callees whose stored result is dereferenced with
	// no preceding check, with the site.
	UncheckedCallees map[string]ctoken.Pos
	// NegReturns / PosReturns: the function returns negative / positive
	// non-zero integer constants somewhere (error-convention signal).
	NegReturns bool
	PosReturns bool
	PosPos     ctoken.Pos
}

// Summarize computes summaries for every defined function in prog.
func Summarize(prog *csem.Program, conv *latent.Conventions) map[string]*Summary {
	out := make(map[string]*Summary, len(prog.Funcs))
	for name, fd := range prog.Funcs {
		out[name] = summarizeFunc(fd, conv)
	}
	return out
}

func paramIndex(fn *cast.FuncDecl, name string) int {
	for i, p := range fn.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

func identName(e cast.Expr) string {
	if id, ok := cast.StripParensAndCasts(e).(*cast.Ident); ok {
		return id.Name
	}
	return ""
}

func isNullConst(e cast.Expr) bool {
	switch x := cast.StripParensAndCasts(e).(type) {
	case *cast.IntLit:
		return x.Value == 0
	case *cast.Ident:
		return x.Name == "NULL"
	}
	return false
}

// nullCheckedName extracts the identifier a condition tests against null
// ("p == NULL", "!p", "p", "IS_ERR(p)").
func nullCheckedName(cond cast.Expr, conv *latent.Conventions) string {
	switch x := cast.StripParensAndCasts(cond).(type) {
	case *cast.BinaryExpr:
		if x.Op != ctoken.EqEq && x.Op != ctoken.NotEq {
			return ""
		}
		if isNullConst(x.Y) {
			return identName(x.X)
		}
		if isNullConst(x.X) {
			return identName(x.Y)
		}
		return ""
	case *cast.UnaryExpr:
		if x.Op == ctoken.Not {
			return identName(x.X)
		}
		return ""
	case *cast.CallExpr:
		if cast.CalleeName(x) == conv.ErrPtrCheck && len(x.Args) == 1 {
			return identName(x.Args[0])
		}
		return ""
	case *cast.Ident:
		return x.Name
	}
	return ""
}

// summarizeFunc walks the body in source (pre-)order, tracking which
// names have been checked so far. This is a linearization of the path
// structure — cheap and adequate for cross-version diffing, where both
// sides are approximated identically.
func summarizeFunc(fd *cast.FuncDecl, conv *latent.Conventions) *Summary {
	n := len(fd.Params)
	s := &Summary{
		Name:                fd.Name,
		ParamGuarded:        make([]bool, n),
		ParamDerefUnguarded: make([]bool, n),
		ParamDerefPos:       make([]ctoken.Pos, n),
		ParamUser:           make([]bool, n),
		CheckedCallees:      make(map[string]bool),
		UncheckedCallees:    make(map[string]ctoken.Pos),
	}
	checked := map[string]bool{} // names null-checked so far
	varCallee := map[string]string{}

	markDeref := func(base cast.Expr, pos ctoken.Pos) {
		name := identName(base)
		if name == "" || checked[name] {
			return
		}
		if i := paramIndex(fd, name); i >= 0 {
			if !s.ParamDerefUnguarded[i] {
				s.ParamDerefUnguarded[i] = true
				s.ParamDerefPos[i] = pos
			}
		}
		if callee, ok := varCallee[name]; ok {
			if _, seen := s.UncheckedCallees[callee]; !seen {
				s.UncheckedCallees[callee] = pos
			}
		}
	}

	cast.Inspect(fd.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.IfStmt:
			if name := nullCheckedName(x.Cond, conv); name != "" {
				if i := paramIndex(fd, name); i >= 0 {
					s.ParamGuarded[i] = true
				}
				if callee, ok := varCallee[name]; ok {
					s.CheckedCallees[callee] = true
				}
				checked[name] = true
			}
		case *cast.UnaryExpr:
			if x.Op == ctoken.Star {
				markDeref(x.X, x.OpPos)
			}
		case *cast.MemberExpr:
			if x.Arrow {
				markDeref(x.X, x.MemPos)
			}
		case *cast.IndexExpr:
			markDeref(x.X, x.X.Pos())
		case *cast.VarDecl:
			if x.Init != nil {
				if call, ok := cast.StripParensAndCasts(x.Init).(*cast.CallExpr); ok {
					if callee := cast.CalleeName(call); callee != "" {
						varCallee[x.Name] = callee
					}
				}
			}
		case *cast.AssignExpr:
			if lhs := identName(x.L); lhs != "" {
				delete(varCallee, lhs)
				delete(checked, lhs)
				if call, ok := cast.StripParensAndCasts(x.R).(*cast.CallExpr); ok {
					if callee := cast.CalleeName(call); callee != "" {
						varCallee[lhs] = callee
					}
				}
			}
		case *cast.CallExpr:
			callee := cast.CalleeName(x)
			if idx, ok := conv.UserPointerArg(callee); ok && idx < len(x.Args) {
				if name := identName(x.Args[idx]); name != "" {
					if i := paramIndex(fd, name); i >= 0 {
						s.ParamUser[i] = true
					}
				}
			}
		case *cast.ReturnStmt:
			if x.X != nil {
				switch r := cast.StripParensAndCasts(x.X).(type) {
				case *cast.UnaryExpr:
					if r.Op == ctoken.Minus {
						s.NegReturns = true
					}
				case *cast.IntLit:
					if r.Value > 0 {
						s.PosReturns = true
						if !s.PosPos.IsValid() {
							s.PosPos = r.LitPos
						}
					}
				}
			}
		}
		return true
	})
	return s
}

// Drift is one cross-version contradiction.
type Drift struct {
	Func string
	Kind string
	Pos  ctoken.Pos // site in the new version
	Msg  string
}

// Compare cross-checks new-version summaries against old-version ones and
// returns the contradictions, also adding them to col if non-nil.
func Compare(oldS, newS map[string]*Summary, fns map[string]*cast.FuncDecl, col *report.Collector) []Drift {
	var drifts []Drift
	add := func(fn, kind string, pos ctoken.Pos, msg string) {
		drifts = append(drifts, Drift{Func: fn, Kind: kind, Pos: pos, Msg: msg})
		if col != nil {
			col.AddMust("version/"+kind, "new version of "+fn+" must preserve old invariants",
				pos, report.Serious, 0, msg)
		}
	}

	names := make([]string, 0, len(newS))
	for name := range newS {
		if _, ok := oldS[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		o, n := oldS[name], newS[name]
		fd := fns[name]
		params := min(len(o.ParamGuarded), len(n.ParamGuarded))
		for i := 0; i < params; i++ {
			pname := fmt.Sprintf("#%d", i)
			if fd != nil && i < len(fd.Params) {
				pname = fd.Params[i].Name
			}
			if o.ParamGuarded[i] && !o.ParamDerefUnguarded[i] && n.ParamDerefUnguarded[i] {
				add(name, "dropped-null-check", n.ParamDerefPos[i],
					fmt.Sprintf("%s dereferences %q without the null check the previous version had", name, pname))
			}
			if o.ParamUser[i] && !o.ParamDerefUnguarded[i] && n.ParamDerefUnguarded[i] && !n.ParamUser[i] {
				add(name, "user-pointer-regression", n.ParamDerefPos[i],
					fmt.Sprintf("%s now dereferences %q, which the previous version treated as a user pointer", name, pname))
			}
		}
		for callee := range o.CheckedCallees {
			if pos, ok := n.UncheckedCallees[callee]; ok && !n.CheckedCallees[callee] {
				if _, oldUnchecked := o.UncheckedCallees[callee]; oldUnchecked {
					continue // the old version was equally sloppy
				}
				add(name, "dropped-result-check", pos,
					fmt.Sprintf("%s no longer checks the result of %s before using it", name, callee))
			}
		}
		if o.NegReturns && !o.PosReturns && n.PosReturns {
			add(name, "error-convention-flip", n.PosPos,
				fmt.Sprintf("%s returned negative error codes; the new version returns a positive constant", name))
		}
	}
	return drifts
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Diff is the convenience entry point: summarize both programs and
// compare.
func Diff(oldProg, newProg *csem.Program, conv *latent.Conventions, col *report.Collector) []Drift {
	return Compare(Summarize(oldProg, conv), Summarize(newProg, conv), newProg.Funcs, col)
}
