package pairing

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

func build(t *testing.T, src string) *Checker {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(conv, DefaultLimits())
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			c.AddFunction(cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine}))
		}
	}
	return c
}

func findPair(pairs []Pair, a, b string) (Pair, bool) {
	for _, p := range pairs {
		if p.A == a && p.B == b {
			return p, true
		}
	}
	return Pair{}, false
}

func TestDeriveSimplePair(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, "void f%d(void) { spin_lock(l); work%d(); spin_unlock(l); }\n", i, i)
	}
	sb.WriteString("void bad(void) { spin_lock(l); work_bad(); }\n")
	c := build(t, sb.String())
	pairs := c.Derive(stats.DefaultP0)
	p, ok := findPair(pairs, "spin_lock", "spin_unlock")
	if !ok {
		t.Fatalf("pair not derived: %+v", pairs)
	}
	if p.Checks != 10 || p.Errors != 1 {
		t.Errorf("counts: %+v", p)
	}
	// The lock pair must rank first: high z plus latent boost.
	if pairs[0].A != "spin_lock" || pairs[0].B != "spin_unlock" {
		t.Errorf("top pair: %+v", pairs[0])
	}
}

func TestPaperThousandPaths(t *testing.T) {
	// §1: "If the pairing happens 999 out of 1000 times, though, then it
	// is probably a valid belief and the sole deviation a probable
	// error." We approximate with 99/100 to keep the test fast.
	var sb strings.Builder
	for i := 0; i < 99; i++ {
		fmt.Fprintf(&sb, "void f%d(void) { my_begin(); my_end(); }\n", i)
	}
	sb.WriteString("void dev(void) { my_begin(); }\n")
	c := build(t, sb.String())
	pairs := c.Derive(stats.DefaultP0)
	p, ok := findPair(pairs, "my_begin", "my_end")
	if !ok {
		t.Fatal("pair not derived")
	}
	if p.Examples() != 99 || p.Errors != 1 {
		t.Errorf("counts: %+v", p)
	}
	if p.Z < 2.0 {
		t.Errorf("strong pairing should have high z: %v", p.Z)
	}
}

func TestCoincidenceRanksLow(t *testing.T) {
	src := `
void f1(void) { alpha(); beta(); }
void f2(void) { alpha(); gamma(); }
void f3(void) { alpha(); delta(); }
void f4(void) { alpha(); }
`
	c := build(t, src)
	pairs := c.Derive(stats.DefaultP0)
	p, ok := findPair(pairs, "alpha", "beta")
	if !ok {
		t.Fatal("candidate missing")
	}
	// 1 example out of 4 paths: strongly negative z.
	if p.Z >= 0 {
		t.Errorf("coincidence should rank below p0: %+v", p)
	}
}

func TestBranchPathsSeparate(t *testing.T) {
	// b() happens only on one branch: the path without it is a
	// counter-example.
	src := `
void f(int x) {
	open_session();
	if (x)
		close_session();
}
`
	c := build(t, src)
	if c.PathCount() != 2 {
		t.Fatalf("paths: %d", c.PathCount())
	}
	pairs := c.Derive(stats.DefaultP0)
	p, ok := findPair(pairs, "open_session", "close_session")
	if !ok {
		t.Fatal("pair missing")
	}
	if p.Checks != 2 || p.Errors != 1 {
		t.Errorf("counts: %+v", p)
	}
}

func TestErrorReportsRankedByZ(t *testing.T) {
	var sb strings.Builder
	// Strong pair: 30 good paths, 1 bad.
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "void s%d(void) { res_get(); res_put(); }\n", i)
	}
	sb.WriteString("void sbad(void) { res_get(); }\n")
	// Weak pair: 3 good paths, 1 bad.
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&sb, "void w%d(void) { weak_a(); weak_b(); }\n", i)
	}
	sb.WriteString("void wbad(void) { weak_a(); }\n")

	c := build(t, sb.String())
	col := report.NewCollector()
	c.Finish(col, stats.DefaultP0, 1, -100)
	rs := col.ByChecker("pairing")
	if len(rs) < 2 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "res_get") {
		t.Errorf("strong pair's violation should rank first:\n%v\n%v", rs[0], rs[1])
	}
}

func TestCrashRoutinesExcluded(t *testing.T) {
	src := `
void f(void) { begin_io(); panic("boom"); }
void g(void) { begin_io(); end_io(); }
`
	c := build(t, src)
	pairs := c.Derive(stats.DefaultP0)
	if _, ok := findPair(pairs, "begin_io", "panic"); ok {
		t.Error("panic must not appear as a pairing candidate")
	}
}

func TestIgnoredCalleesExcluded(t *testing.T) {
	src := `
void f(void) { start_tx(); printk("x"); finish_tx(); }
void g(void) { start_tx(); printk("y"); finish_tx(); }
`
	c := build(t, src)
	pairs := c.Derive(stats.DefaultP0)
	if _, ok := findPair(pairs, "start_tx", "printk"); ok {
		t.Error("printk is ignored")
	}
	if _, ok := findPair(pairs, "start_tx", "finish_tx"); !ok {
		t.Error("real pair missing")
	}
}

func TestMinExamplesFilter(t *testing.T) {
	src := `
void f(void) { once_a(); once_b(); }
void g(void) { once_a(); }
`
	c := build(t, src)
	col := report.NewCollector()
	c.Finish(col, stats.DefaultP0, 2, -100)
	if col.Len() != 0 {
		t.Errorf("single-example pair should not be reported: %d", col.Len())
	}
}

func TestLatentBoostOrdersTies(t *testing.T) {
	src := `
void f1(void) { dev_lock(); dev_unlock(); }
void f2(void) { dev_lock(); dev_unlock(); }
void g1(void) { misc_x(); misc_y(); }
void g2(void) { misc_x(); misc_y(); }
`
	c := build(t, src)
	pairs := c.Derive(stats.DefaultP0)
	// Same evidence; the lock pair should rank first via the boost.
	li, mi := -1, -1
	for i, p := range pairs {
		if p.A == "dev_lock" && p.B == "dev_unlock" {
			li = i
		}
		if p.A == "misc_x" && p.B == "misc_y" {
			mi = i
		}
	}
	if li == -1 || mi == -1 || li > mi {
		t.Errorf("boost should order lock pair first: lock=%d misc=%d", li, mi)
	}
}

func TestLoopBodiesContribute(t *testing.T) {
	src := `
void f(int n) {
	while (n--) {
		buf_get();
		buf_release();
	}
}
`
	c := build(t, src)
	pairs := c.Derive(stats.DefaultP0)
	if _, ok := findPair(pairs, "buf_get", "buf_release"); !ok {
		t.Errorf("loop-body pair missing: %+v", pairs)
	}
}

func TestCrashPathsNotViolations(t *testing.T) {
	// §5.2: paths that panic never execute past the crash, so the broken
	// pairing on them is not an error.
	src := `
void a1(void) { res_lock(); res_unlock(); }
void a2(void) { res_lock(); res_unlock(); }
void a3(int x) {
	res_lock();
	if (x)
		panic("fatal");
	res_unlock();
}
`
	c := build(t, src)
	pairs := c.Derive(stats.DefaultP0)
	p, ok := findPair(pairs, "res_lock", "res_unlock")
	if !ok {
		t.Fatalf("pair missing: %+v", pairs)
	}
	if p.Errors != 0 {
		t.Errorf("panic path counted as violation: %+v", p)
	}
}
