// Package pairing derives instances of the rule template "<a> must be
// paired with <b>" directly from code (Section 9 / Table 2). For every
// execution path it records the function-call sequence; a candidate pair
// (a, b) is any ordered pair observed together on some path. Per the
// paper's counting: the population is paths containing a, the examples
// are paths where some later b pairs it. Candidates rank by the z
// statistic, with a latent-specification boost for names matching
// open/close conventions (lock/unlock, request/release, cli/sti, ...).
//
// Violations — paths with a call to a but no matching b — are reported
// ranked by the pair's z, which is how the paper keeps noise from
// coincidental couplings inspectable.
package pairing

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/ctoken"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// Limits bound path enumeration per function.
type Limits struct {
	MaxPaths int // paths enumerated per function
	MaxCalls int // calls recorded per path
}

// DefaultLimits are generous enough for kernel-style functions.
func DefaultLimits() Limits { return Limits{MaxPaths: 128, MaxCalls: 64} }

type callRef struct {
	name string
	pos  ctoken.Pos
}

// Checker accumulates call-sequence paths across a program, then derives
// and checks pairings.
type Checker struct {
	conv   *latent.Conventions
	limits Limits
	paths  [][]callRef
	// Ignore lists calls excluded from pairing (diagnostic printers and
	// crash routines pair with nothing).
	Ignore map[string]bool
}

// New returns an empty pairing deriver.
func New(conv *latent.Conventions, limits Limits) *Checker {
	return &Checker{
		conv:   conv,
		limits: limits,
		Ignore: map[string]bool{"printk": true, "printf": true, "sprintf": true},
	}
}

// AddFunction enumerates g's paths and records their call sequences.
// Loops are unrolled once — each block may repeat once per path, so a
// one-iteration trip exposes the body's calls, and paths trapped in a
// cycle are abandoned rather than recorded as truncated (a truncated
// record would claim the path "never reached the unlock").
func (c *Checker) AddFunction(g *cfg.Graph) {
	var cur []callRef
	paths := 0
	var walk func(b *cfg.Block, onPath map[int]int)
	walk = func(b *cfg.Block, onPath map[int]int) {
		if b == nil || paths >= c.limits.MaxPaths {
			return
		}
		if onPath[b.ID] >= 2 {
			return // abandoned: cycle with no way forward on this trace
		}
		onPath[b.ID]++
		defer func() { onPath[b.ID]-- }()

		mark := len(cur)
		crashed := false
		for _, n := range b.Nodes {
			cur = c.collectCalls(n, cur)
			if c.callsCrash(n) {
				crashed = true
			}
		}
		if b.Cond != nil {
			cur = c.collectCalls(b.Cond, cur)
		}
		if crashed {
			// §5.2: panic/BUG paths never execute past the crash; they
			// must not count as broken pairings.
			cur = cur[:mark]
			return
		}
		if len(b.Succs) == 0 {
			c.record(cur)
			paths++
		} else {
			for _, e := range b.Succs {
				walk(e.To, onPath)
			}
		}
		cur = cur[:mark]
	}
	walk(g.Entry, map[int]int{})
}

func (c *Checker) collectCalls(n cast.Node, cur []callRef) []callRef {
	cast.Inspect(n, func(m cast.Node) bool {
		if len(cur) >= c.limits.MaxCalls {
			return false
		}
		if call, ok := m.(*cast.CallExpr); ok {
			name := cast.CalleeName(call)
			if name != "" && !c.Ignore[name] && !c.conv.IsCrashRoutine(name) {
				cur = append(cur, callRef{name: name, pos: call.Lparen})
			}
		}
		return true
	})
	return cur
}

// callsCrash reports whether node n contains a call to a never-returns
// routine.
func (c *Checker) callsCrash(n cast.Node) bool {
	found := false
	cast.Inspect(n, func(m cast.Node) bool {
		if call, ok := m.(*cast.CallExpr); ok {
			if name := cast.CalleeName(call); name != "" && c.conv.IsCrashRoutine(name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (c *Checker) record(path []callRef) {
	if len(path) == 0 {
		return
	}
	cp := make([]callRef, len(path))
	copy(cp, path)
	c.paths = append(c.paths, cp)
}

// Fork returns an empty deriver sharing c's configuration (conventions,
// limits, and ignore set are read-only), for one worker's shard of
// functions.
func (c *Checker) Fork() *Checker {
	return &Checker{conv: c.conv, limits: c.limits, Ignore: c.Ignore}
}

// Merge appends a fork's recorded paths to c. Folding shards in function
// order reproduces the serial path list exactly, so Derive and Finish see
// the same evidence in the same order.
func (c *Checker) Merge(o *Checker) {
	c.paths = append(c.paths, o.paths...)
}

// Pair is one derived slot-instance combination for the template
// "<a> must be paired with <b>".
type Pair struct {
	A, B string
	stats.Counter
	Z     float64
	Boost float64 // latent naming-convention bonus
}

// Score is the inspection ranking score (z plus the latent boost).
func (p Pair) Score() float64 { return p.Z + p.Boost }

// Derive computes all candidate pairs with their evidence, ranked by
// score (descending).
func (c *Checker) Derive(p0 float64) []Pair {
	// Candidate universe: (a, b) that were actually paired on >= 1 path.
	candidates := make(map[string]map[string]bool)
	seen := map[string]int{} // reused (cleared) across paths
	for _, path := range c.paths {
		clear(seen)
		for i, cr := range path {
			if _, ok := seen[cr.name]; !ok {
				seen[cr.name] = i
			}
		}
		for a, ai := range seen {
			for j := ai + 1; j < len(path); j++ {
				b := path[j].name
				if b == a {
					continue
				}
				if candidates[a] == nil {
					candidates[a] = make(map[string]bool)
				}
				candidates[a][b] = true
			}
		}
	}

	// Count: population = paths with a; example = b follows the first a.
	pop := stats.NewPopulation()
	first := map[string]int{} // reused (cleared) across paths
	for _, path := range c.paths {
		clear(first)
		for i, cr := range path {
			if _, ok := first[cr.name]; !ok {
				first[cr.name] = i
			}
		}
		after := func(name string, idx int) bool {
			for j := idx + 1; j < len(path); j++ {
				if path[j].name == name {
					return true
				}
			}
			return false
		}
		for a, ai := range first {
			for b := range candidates[a] {
				pop.Check(a+":"+b, !after(b, ai))
			}
		}
	}

	var out []Pair
	for _, key := range pop.Keys() {
		cnt := pop.Get(key)
		var a, b string
		for i := 0; i < len(key); i++ {
			if key[i] == ':' {
				a, b = key[:i], key[i+1:]
				break
			}
		}
		out = append(out, Pair{
			A: a, B: b, Counter: cnt,
			Z:     cnt.Z(p0),
			Boost: c.conv.PairBoost(a, b),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(), out[j].Score()
		if si != sj {
			return si > sj
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Finish derives pairs and reports violations of every plausible pair:
// at least minExamples paired paths, at least one violation, and a
// ranking score (z plus latent boost) of at least minScore. The score
// floor is what keeps coincidental couplings out of the report stream —
// they remain visible in the Derive table, ranked at the bottom.
func (c *Checker) Finish(col *report.Collector, p0 float64, minExamples int, minScore float64) []Pair {
	pairs := c.Derive(p0)
	for _, p := range pairs {
		if p.Errors == 0 || p.Examples() < minExamples || p.Score() < minScore {
			continue
		}
		// Report each unpaired occurrence of A.
		for _, path := range c.paths {
			for i, cr := range path {
				if cr.name != p.A {
					continue
				}
				paired := false
				for j := i + 1; j < len(path); j++ {
					if path[j].name == p.B {
						paired = true
						break
					}
				}
				if !paired {
					col.AddStat(
						"pairing",
						fmt.Sprintf("%s must be paired with %s", p.A, p.B),
						cr.pos,
						p.Score(),
						p.Checks,
						p.Examples(),
						fmt.Sprintf("call to %s is not followed by %s on this path (paired %d/%d elsewhere)",
							p.A, p.B, p.Examples(), p.Checks),
					)
				}
				break // population counts the first occurrence per path
			}
		}
	}
	return pairs
}

// PathCount returns the number of recorded paths (for tests and the
// scalability experiment).
func (c *Checker) PathCount() int { return len(c.paths) }
