package freecheck

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) *report.Collector {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(conv)
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, c, col, engine.Options{Memoize: true})
		}
	}
	return col
}

func TestUseAfterFreeDeref(t *testing.T) {
	col := run(t, `
void f(struct buf *b) {
	kfree(b);
	b->len = 0;
}`)
	rs := col.ByChecker("free/use-after-free")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", col.Ranked())
	}
	if !strings.Contains(rs[0].Message, "freed at line 3") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestUseAfterFreePassed(t *testing.T) {
	col := run(t, `
void f(struct buf *b) {
	kfree(b);
	enqueue(b);
}`)
	if len(col.ByChecker("free/use-after-free")) != 1 {
		t.Fatalf("reports: %+v", col.Ranked())
	}
}

func TestDoubleFree(t *testing.T) {
	col := run(t, `
void f(struct buf *b) {
	kfree(b);
	kfree(b);
}`)
	if len(col.ByChecker("free/double-free")) != 1 {
		t.Fatalf("reports: %+v", col.Ranked())
	}
}

func TestFreeThenReassignClean(t *testing.T) {
	col := run(t, `
void f(struct buf *b) {
	kfree(b);
	b = alloc_buf();
	b->len = 0;
}`)
	if col.Len() != 0 {
		t.Errorf("reassignment clears freed state: %+v", col.Ranked())
	}
}

func TestFreeOnOnePathOnly(t *testing.T) {
	col := run(t, `
void f(struct buf *b, int keep) {
	if (!keep)
		kfree(b);
	else
		b->len = 1;
}`)
	if col.Len() != 0 {
		t.Errorf("use and free on different paths is clean: %+v", col.Ranked())
	}
}

func TestNullCheckOfFreedPointerClean(t *testing.T) {
	col := run(t, `
void f(struct buf *b) {
	kfree(b);
	if (b == 0)
		return;
}`)
	if col.Len() != 0 {
		t.Errorf("checking a freed pointer is not a use: %+v", col.Ranked())
	}
}

func TestMemberSlotFreed(t *testing.T) {
	col := run(t, `
void f(struct buf *b) {
	kfree(b->data);
	use_bytes(b->data);
}`)
	if len(col.ByChecker("free/use-after-free")) != 1 {
		t.Fatalf("member-slot use-after-free missed: %+v", col.Ranked())
	}
}

func TestFreeFamilyNames(t *testing.T) {
	col := run(t, `
void f(struct sk_buff *s, char *v) {
	skb_free(s);
	vfree(v);
	s->len = 1;
	*v = 0;
}`)
	if len(col.ByChecker("free/use-after-free")) != 2 {
		t.Fatalf("family names missed: %+v", col.Ranked())
	}
}

func TestReleaseNotTreatedAsFree(t *testing.T) {
	// release/put drop references; they are not deallocations for a
	// MUST checker.
	col := run(t, `
void f(struct dev *d) {
	dev_put(d);
	d->refs = 0;
}`)
	if col.Len() != 0 {
		t.Errorf("dev_put treated as free: %+v", col.Ranked())
	}
}

func TestFreeingParentInvalidation(t *testing.T) {
	// Freeing b then reassigning b clears b->data tracking too.
	col := run(t, `
void f(struct buf *b) {
	kfree(b->data);
	b = fresh();
	use_bytes(b->data);
}`)
	if col.Len() != 0 {
		t.Errorf("parent reassignment should clear member slots: %+v", col.Ranked())
	}
}
