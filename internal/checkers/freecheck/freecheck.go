// Package freecheck implements the deallocation MUST beliefs of §4.1:
// "deallocation of a pointer p implies a belief that it was dynamically
// allocated (pre-condition) and will not be used after the deallocation
// (post-condition)." Contradictions are definite errors:
//
//   - use-after-free: a freed pointer is dereferenced or passed onward;
//   - double-free: a freed pointer is freed again.
//
// Free routines are recognized by the latent "free" naming convention
// (§5.2) with a single pointer argument.
package freecheck

import (
	"fmt"
	"strconv"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

// Checker is the use-after-free automaton.
type Checker struct {
	conv *latent.Conventions
}

// New returns a freecheck checker.
func New(conv *latent.Conventions) *Checker { return &Checker{conv: conv} }

// Name implements engine.Checker.
func (c *Checker) Name() string { return "free" }

// state maps slot keys to the line where they were freed.
type state struct {
	freed map[string]int
}

func (s *state) Clone() engine.State {
	ns := &state{}
	if len(s.freed) > 0 {
		ns.freed = make(map[string]int, len(s.freed))
		for k, v := range s.freed {
			ns.freed[k] = v
		}
	}
	return ns
}

func (s *state) Key() string {
	if len(s.freed) == 0 {
		return ""
	}
	return string(s.AppendKey(nil))
}

// AppendKey implements engine.AppendKeyer: the freed slots in ascending
// key order with their free line, built without allocating.
func (s *state) AppendKey(b []byte) []byte {
	for k := engine.NextKey(s.freed, ""); k != ""; k = engine.NextKey(s.freed, k) {
		b = append(b, k...)
		b = append(b, '@')
		b = strconv.AppendInt(b, int64(s.freed[k]), 10)
		b = append(b, ';')
	}
	return b
}

// NewState implements engine.Checker. The freed map is allocated on the
// first free() call: most functions free nothing, and the engine creates
// one state per function plus one per branch clone.
func (c *Checker) NewState(*cast.FuncDecl) engine.State {
	return &state{}
}

func keyOf(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := keyOf(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	}
	return ""
}

// isFreeCall recognizes single-argument deallocators by the "free"
// naming token ("kfree", "skb_free", "free"). The broader LooksFree set
// (release/put/destroy) is deliberately excluded — those often drop a
// reference rather than deallocate, and a MUST checker cannot afford the
// coincidences.
func isFreeCall(name string) bool {
	lower := strings.ToLower(name)
	if lower == "free" {
		return true
	}
	for s := lower; ; {
		i := strings.IndexByte(s, '_')
		tok := s
		if i >= 0 {
			tok = s[:i]
		}
		if tok == "free" || tok == "kfree" || tok == "vfree" {
			return true
		}
		if i < 0 {
			break
		}
		s = s[i+1:]
	}
	return strings.HasSuffix(lower, "free") || strings.HasPrefix(lower, "free")
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*state)
	switch ev.Kind {
	case engine.EvCall:
		name := cast.CalleeName(ev.Call)
		if name == "" {
			return
		}
		if isFreeCall(name) && len(ev.Call.Args) == 1 {
			key := keyOf(ev.Call.Args[0])
			if key == "" || ev.Call.Args[0].FromMacro() {
				return
			}
			if line, dead := s.freed[key]; dead {
				ctx.Reports.AddMust("free/double-free",
					"do not free "+key+" twice", ev.Pos, report.Serious,
					span(ev.Pos.Line, line),
					fmt.Sprintf("%q was already freed at line %d", key, line))
			}
			if s.freed == nil {
				s.freed = make(map[string]int)
			}
			s.freed[key] = ev.Pos.Line
			return
		}
		// Passing a freed pointer onward is a use.
		for _, a := range ev.Call.Args {
			if key := keyOf(a); key != "" {
				if line, dead := s.freed[key]; dead {
					ctx.Reports.AddMust("free/use-after-free",
						"do not use freed pointer "+key, ev.Pos, report.Serious,
						span(ev.Pos.Line, line),
						fmt.Sprintf("%q passed to %s after being freed at line %d", key, name, line))
					delete(s.freed, key) // report once per path
				}
			}
		}
	case engine.EvDeref:
		key := keyOf(ev.Ptr)
		if key == "" {
			return
		}
		if line, dead := s.freed[key]; dead {
			ctx.Reports.AddMust("free/use-after-free",
				"do not use freed pointer "+key, ev.Pos, report.Serious,
				span(ev.Pos.Line, line),
				fmt.Sprintf("%q dereferenced after being freed at line %d", key, line))
			delete(s.freed, key)
		}
	case engine.EvAssign:
		if key := keyOf(ev.LHS); key != "" {
			delete(s.freed, key)
			// Freeing p also invalidates p->field slots; reassigning p
			// clears them too.
			for k := range s.freed {
				if strings.HasPrefix(k, key+"->") || strings.HasPrefix(k, key+".") {
					delete(s.freed, k)
				}
			}
		}
	case engine.EvDecl:
		delete(s.freed, ev.Decl.Name)
	}
}

func span(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Branch implements engine.Checker: null checks of freed pointers are
// legitimate (freeing does not null the variable), so branches do not
// affect the freed set.
func (c *Checker) Branch(engine.State, cast.Expr, bool, *engine.Ctx) {}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns a per-worker view for the parallel pipeline. The checker
// accumulates nothing across functions (all its state lives in the path
// state and reports flow through the per-shard collector), so the fork is
// the checker itself.
func (c *Checker) Fork() *Checker { return c }

// Merge is a no-op; see Fork.
func (c *Checker) Merge(*Checker) {}
