package intr

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) (*Checker, *report.Collector) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(conv)
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, c, col, engine.Options{Memoize: true})
		}
	}
	c.Finish(col)
	return c, col
}

func TestDisabledCallsCounted(t *testing.T) {
	src := `
void f(void) {
	cli();
	touch_hw();
	sti();
}
`
	c, _ := run(t, src)
	got := c.Counter("touch_hw")
	if got.Checks != 1 || got.Errors != 0 {
		t.Errorf("touch_hw: %+v", got)
	}
}

func TestEnabledCallFlagged(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, "void f%d(void) { cli(); touch_hw(); sti(); }\n", i)
	}
	sb.WriteString("void bad(void) { touch_hw(); }\n")
	c, col := run(t, sb.String())
	got := c.Counter("touch_hw")
	if got.Checks != 10 || got.Errors != 1 {
		t.Fatalf("touch_hw: %+v", got)
	}
	rs := col.ByChecker("intr")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "interrupts enabled") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestBackwardPropagationFromEnable(t *testing.T) {
	// restore_flags first implies interrupts were disabled at entry.
	src := `
void f(void) {
	touch_hw();
	restore_flags();
}
`
	c, _ := run(t, src)
	got := c.Counter("touch_hw")
	if got.Checks != 1 || got.Errors != 0 {
		t.Errorf("entry-disabled inference: %+v", got)
	}
}

func TestInverseRanking(t *testing.T) {
	src := `
void f(void) { might_sleep_fn(); }
void g(void) { might_sleep_fn(); }
void h(void) { cli(); hw_op(); sti(); }
`
	c, _ := run(t, src)
	inv := c.InverseRanked()
	if len(inv) == 0 || inv[0].Func != "might_sleep_fn" {
		t.Errorf("inverse should rank always-enabled first: %+v", inv)
	}
}

func TestNeverDisabledNotReported(t *testing.T) {
	src := `
void f(void) { helper(); }
void g(void) { helper(); }
`
	_, col := run(t, src)
	if col.Len() != 0 {
		t.Errorf("no evidence of a discipline: %d reports", col.Len())
	}
}

func TestBranchesKeepFlag(t *testing.T) {
	src := `
void f(int x) {
	cli();
	if (x)
		hw_a();
	else
		hw_b();
	sti();
}
`
	c, _ := run(t, src)
	if got := c.Counter("hw_a"); got.Errors != 0 || got.Checks != 1 {
		t.Errorf("hw_a: %+v", got)
	}
	if got := c.Counter("hw_b"); got.Errors != 0 || got.Checks != 1 {
		t.Errorf("hw_b: %+v", got)
	}
}
