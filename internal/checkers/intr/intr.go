// Package intr derives the rule template "must <f> be called with
// interrupts disabled?" (Table 2). The path state is the interrupt flag
// driven by cli/sti-style calls; every other call is counted against the
// template, and calls made with interrupts enabled are the error
// candidates, ranked by z. The inverse ranking ("must be called with
// interrupts enabled" — e.g. routines that can sleep) is exposed as well.
package intr

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// maxSites bounds recorded sites per callee.
const maxSites = 64

// Checker accumulates interrupt-context evidence across a program.
type Checker struct {
	conv *latent.Conventions
	p0   float64

	pop          *stats.Population       // key: callee; example = called disabled
	enabledSites map[string][]ctoken.Pos // calls made with interrupts enabled
	disabledSite map[string][]ctoken.Pos // calls made with interrupts disabled
}

// New returns an empty interrupt-discipline checker.
func New(conv *latent.Conventions) *Checker {
	return &Checker{
		conv:         conv,
		p0:           stats.DefaultP0,
		pop:          stats.NewPopulation(),
		enabledSites: make(map[string][]ctoken.Pos),
		disabledSite: make(map[string][]ctoken.Pos),
	}
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "intr" }

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0 }

type state struct {
	disabled bool
}

func (s *state) Clone() engine.State { return &state{disabled: s.disabled} }

func (s *state) Key() string {
	if s.disabled {
		return "d"
	}
	return "e"
}

// NewState implements engine.Checker. Like the lock checker, beliefs
// propagate backward: a function whose first interrupt event is an enable
// (sti/restore_flags) believes interrupts were disabled at its entry.
func (c *Checker) NewState(fn *cast.FuncDecl) engine.State {
	st := &state{}
	done := false
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		if done {
			return false
		}
		call, ok := n.(*cast.CallExpr)
		if !ok {
			return true
		}
		name := cast.CalleeName(call)
		switch {
		case c.conv.IntrDisable[name]:
			done = true
		case c.conv.IntrEnable[name]:
			st.disabled = true
			done = true
		}
		return true
	})
	return st
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	if ev.Kind != engine.EvCall {
		return
	}
	s := st.(*state)
	name := cast.CalleeName(ev.Call)
	if name == "" {
		return
	}
	switch {
	case c.conv.IntrDisable[name]:
		s.disabled = true
	case c.conv.IntrEnable[name]:
		s.disabled = false
	default:
		c.pop.Check(name, !s.disabled)
		if s.disabled {
			if len(c.disabledSite[name]) < maxSites {
				c.disabledSite[name] = append(c.disabledSite[name], ev.Pos)
			}
		} else {
			if len(c.enabledSites[name]) < maxSites {
				c.enabledSites[name] = append(c.enabledSites[name], ev.Pos)
			}
		}
	}
}

// Branch implements engine.Checker.
func (c *Checker) Branch(engine.State, cast.Expr, bool, *engine.Ctx) {}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns an empty checker sharing c's configuration, for one
// worker's shard of functions.
func (c *Checker) Fork() *Checker { f := New(c.conv); f.p0 = c.p0; return f }

// Merge folds a fork's evidence into c: counters sum, site lists
// concatenate in merge order and re-truncate to the cap.
func (c *Checker) Merge(o *Checker) {
	c.pop.Merge(o.pop)
	mergeSites(c.enabledSites, o.enabledSites)
	mergeSites(c.disabledSite, o.disabledSite)
}

func mergeSites(dst, src map[string][]ctoken.Pos) {
	for k, v := range src {
		s := append(dst[k], v...)
		if len(s) > maxSites {
			s = s[:maxSites]
		}
		dst[k] = s
	}
}

// Derived is one routine's interrupt-context evidence.
type Derived struct {
	Func          string
	stats.Counter // Checks = all calls; Errors = calls with intr enabled
	Z             float64
}

// Ranked orders routines by how strongly the code believes they need
// interrupts disabled.
func (c *Checker) Ranked() []Derived {
	var out []Derived
	for _, key := range c.pop.Keys() {
		cnt := c.pop.Get(key)
		out = append(out, Derived{Func: key, Counter: cnt, Z: cnt.Z(c.p0)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// InverseRanked orders routines by how strongly the code believes they
// must be called with interrupts enabled.
func (c *Checker) InverseRanked() []Derived {
	var out []Derived
	for _, key := range c.pop.Keys() {
		cnt := c.pop.Get(key)
		out = append(out, Derived{
			Func: key, Counter: cnt,
			Z: stats.ZInverse(cnt.Checks, cnt.Examples(), c.p0),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// Counter exposes one routine's evidence.
func (c *Checker) Counter(fn string) stats.Counter { return c.pop.Get(fn) }

// Finish reports enabled-context calls to routines usually called with
// interrupts disabled, ranked by z. Routines with no disabled-context
// examples are coincidences and stay silent.
func (c *Checker) Finish(col *report.Collector) {
	for _, d := range c.Ranked() {
		if d.Errors == 0 || d.Examples() == 0 {
			continue
		}
		rule := fmt.Sprintf("%s must be called with interrupts disabled", d.Func)
		for _, pos := range c.enabledSites[d.Func] {
			col.AddStat("intr", rule, pos, d.Z, d.Checks, d.Examples(),
				fmt.Sprintf("%s called with interrupts enabled; %d/%d call sites disable them",
					d.Func, d.Examples(), d.Checks))
		}
	}
}
