// Package lockvar implements the statistical "does lock <l> protect
// variable <v>" checker of Section 3.3. It treats every (variable, lock)
// combination as a candidate MUST belief, counts protected and
// unprotected accesses, and ranks the unprotected ones (the errors) by
// the z statistic of the pair's evidence.
//
// The checker also applies the non-spurious principle (§5): a critical
// section that accesses exactly one shared variable promotes the MAY
// belief "l protects v" to a MUST belief, and a lock protecting nothing
// at an acceptable rank is itself suspicious.
package lockvar

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/csem"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// maxSitesPerPair bounds recorded error sites per (v, l) instance.
const maxSitesPerPair = 64

// Checker accumulates lock/variable evidence across a whole program.
type Checker struct {
	conv     *latent.Conventions
	globals  map[string]bool // shared-variable universe
	locks    map[string]bool // lock-id universe
	lockList []string        // locks, sorted; frozen after New, shared by forks
	p0       float64

	// Evidence, factored by the identity Checks(v,l) = accesses(v) and
	// Examples(v,l) = heldAt(v,l): a pair's Checks counter does not
	// depend on the lock at all, and its Examples counter only grows
	// when the lock is actually held — so one statement costs one
	// accesses bump plus one bump per held lock (usually zero), instead
	// of a counter update per lock in the universe. The O(vars × locks)
	// pair table exists only as the materialized Bindings slice.
	accesses map[string]int // v → shared accesses (= Checks of every pair of v)
	heldAt   map[vl]int     // (v, l) → accesses of v made while l held (= Examples)
	must     map[vl]bool    // promoted MUST pairs (single-var critical sections)
	mustSite map[vl]ctoken.Pos

	// Unprotected access sites, as one flat event-ordered log keyed by
	// (v, held-set signature): the record is an error site for every
	// candidate (v, l) whose lock is absent from the signature. siteN
	// caps records per (v, signature) — retaining each signature's first
	// maxSitesPerPair records retains every pair's first
	// maxSitesPerPair matching records, which is all reporting reads.
	siteLog []siteRec
	siteN   map[vl]int // key: {v, sig}

	// Fork-local hot-path caches (single goroutine each): slot keys and
	// lock ids are functions of the AST node alone, and the engine
	// revisits the same nodes once per path.
	keyCache map[cast.Expr]string
	lockIDs  map[*cast.CallExpr]string

	bindings []Binding // memoized Bindings(); nil = stale
}

// vl identifies one (variable, lock) candidate pair. In the site log an
// empty lock means the record applies to every pair of the variable.
type vl struct {
	v, l string
}

// siteRec is one recorded shared-variable access with the lock-set held
// at the time, as the state's comma-terminated sorted signature (empty =
// no locks held). Log position is event order (fork order then
// within-fork order after Merge).
type siteRec struct {
	v, sig string
	pos    ctoken.Pos
}

// sigHas reports whether the comma-terminated signature contains l as a
// whole token.
func sigHas(sig, l string) bool {
	for len(sig) > 0 {
		i := strings.IndexByte(sig, ',')
		if sig[:i] == l {
			return true
		}
		sig = sig[i+1:]
	}
	return false
}

// vlLess orders pairs exactly as the former "v+\"@\"+l" string keys
// sorted, without building them: when one variable is a strict prefix of
// the other, the shorter key continues with '@' where the longer
// continues with the next byte of its variable (e.g. "a.b@…" < "a@…"
// because '.' < '@').
func vlLess(a, b vl) bool {
	if a.v != b.v {
		if strings.HasPrefix(b.v, a.v) {
			return '@' < b.v[len(a.v)]
		}
		if strings.HasPrefix(a.v, b.v) {
			return a.v[len(b.v)] < '@'
		}
		return a.v < b.v
	}
	return a.l < b.l
}

// New builds a checker for prog. The pre-pass derives the lock universe
// (arguments of acquire/release-shaped calls, or the callee name for
// argument-less locks like lock_kernel) and the shared-variable universe
// (file-scope variables that are not locks).
func New(prog *csem.Program, conv *latent.Conventions) *Checker {
	c := &Checker{
		conv:     conv,
		globals:  make(map[string]bool),
		locks:    make(map[string]bool),
		p0:       stats.DefaultP0,
		accesses: make(map[string]int),
		heldAt:   make(map[vl]int),
		must:     make(map[vl]bool),
		mustSite: make(map[vl]ctoken.Pos),
		siteN:    make(map[vl]int),
		keyCache: make(map[cast.Expr]string),
		lockIDs:  make(map[*cast.CallExpr]string),
	}
	for _, fd := range prog.Funcs {
		cast.Inspect(fd.Body, func(n cast.Node) bool {
			call, ok := n.(*cast.CallExpr)
			if !ok {
				return true
			}
			name := cast.CalleeName(call)
			if name == "" {
				return true
			}
			if c.conv.IsLockAcquire(name) || c.conv.IsLockRelease(name) {
				if id := LockID(call); id != "" {
					c.locks[id] = true
				}
			}
			return true
		})
	}
	c.lockList = make([]string, 0, len(c.locks))
	for l := range c.locks {
		c.lockList = append(c.lockList, l)
	}
	sort.Strings(c.lockList)
	for name, vd := range prog.Globals {
		if c.locks[name] {
			continue
		}
		lower := strings.ToLower(name + " " + typeName(vd))
		if strings.Contains(lower, "lock") || strings.Contains(lower, "mutex") ||
			strings.Contains(lower, "sem") {
			continue
		}
		c.globals[name] = true
	}
	for _, fd := range prog.Funcs {
		c.promoteSingleVarSections(fd)
	}
	return c
}

func typeName(vd *cast.VarDecl) string {
	if vd.Type == nil {
		return ""
	}
	return vd.Type.TypeString()
}

// LockID extracts the lock identity from an acquire/release call: the
// first argument (stripping & and casts), or the callee name for
// argument-less global locks. Argless release names canonicalize onto
// their acquire ("unlock_kernel" and "lock_kernel" are the same lock).
func LockID(call *cast.CallExpr) string {
	if len(call.Args) == 0 {
		name := cast.CalleeName(call)
		if strings.HasPrefix(name, "un") {
			return name[2:]
		}
		return name
	}
	a := cast.StripParensAndCasts(call.Args[0])
	if u, ok := a.(*cast.UnaryExpr); ok && u.Op == ctoken.Amp {
		a = cast.StripParensAndCasts(u.X)
	}
	if k := exprKey(a); k != "" {
		return k
	}
	return cast.CalleeName(call)
}

func exprKey(e cast.Expr) string {
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	}
	return ""
}

// exprKeyCached memoizes exprKey per AST node: the engine revisits the
// same expressions once per path, and member-chain keys concatenate.
func (c *Checker) exprKeyCached(e cast.Expr) string {
	if k, ok := c.keyCache[e]; ok {
		return k
	}
	k := exprKey(e)
	c.keyCache[e] = k
	return k
}

// lockIDCached memoizes LockID per call node.
func (c *Checker) lockIDCached(call *cast.CallExpr) string {
	if id, ok := c.lockIDs[call]; ok {
		return id
	}
	id := LockID(call)
	c.lockIDs[call] = id
	return id
}

// baseOf returns the leading identifier of a slot key ("dev->cnt" -> "dev").
func baseOf(key string) string {
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case '-', '.', '[':
			return key[:i]
		}
	}
	return key
}

// promoteSingleVarSections scans statement lists for
// acquire(l); <stmts>; release(l) spans whose statements access exactly
// one shared variable, promoting (v, l) to a MUST belief (§5).
func (c *Checker) promoteSingleVarSections(fd *cast.FuncDecl) {
	cast.Inspect(fd.Body, func(n cast.Node) bool {
		cs, ok := n.(*cast.CompoundStmt)
		if !ok {
			return true
		}
		for i := 0; i < len(cs.List); i++ {
			lock, lockID := c.lockCall(cs.List[i], true)
			if lock == nil {
				continue
			}
			vars := map[string]bool{}
			for j := i + 1; j < len(cs.List); j++ {
				if rel, relID := c.lockCall(cs.List[j], false); rel != nil && relID == lockID {
					if len(vars) == 1 {
						for v := range vars {
							key := vl{v, lockID}
							c.must[key] = true
							c.mustSite[key] = lock.Lparen
						}
					}
					break
				}
				c.collectShared(cs.List[j], vars)
			}
		}
		return true
	})
}

// lockCall returns the call and lock id if s is an expression statement
// calling an acquire (wantAcquire) or release routine.
func (c *Checker) lockCall(s cast.Stmt, wantAcquire bool) (*cast.CallExpr, string) {
	es, ok := s.(*cast.ExprStmt)
	if !ok || es.X == nil {
		return nil, ""
	}
	call, ok := es.X.(*cast.CallExpr)
	if !ok {
		return nil, ""
	}
	name := cast.CalleeName(call)
	if name == "" {
		return nil, ""
	}
	if wantAcquire && !c.conv.IsLockAcquire(name) {
		return nil, ""
	}
	if !wantAcquire && !c.conv.IsLockRelease(name) {
		return nil, ""
	}
	return call, LockID(call)
}

func (c *Checker) collectShared(s cast.Stmt, vars map[string]bool) {
	cast.Inspect(s, func(n cast.Node) bool {
		var k string
		switch x := n.(type) {
		case *cast.Ident:
			k = x.Name
		case *cast.MemberExpr:
			k = exprKey(x)
		default:
			return true
		}
		if k != "" && c.globals[baseOf(k)] && !c.locks[k] {
			vars[k] = true
		}
		return true
	})
	dropKeyPrefixes(vars)
}

// dropKeyPrefixes removes keys that are strict prefixes of other keys in
// the set: accessing dev.count touches "dev" too, but only the most
// specific slot is the shared datum.
func dropKeyPrefixes(keys map[string]bool) {
	for a := range keys {
		for b := range keys {
			if a == b {
				continue
			}
			if slotDerived(b, a) {
				delete(keys, a)
				break
			}
		}
	}
}

// slotDerived reports whether slot b extends slot a ("a.…", "a->…" or
// "a[…") — equivalent to prefix tests against a+".", a+"->" and a+"["
// without building the concatenated needles.
func slotDerived(b, a string) bool {
	if len(b) <= len(a) || !strings.HasPrefix(b, a) {
		return false
	}
	switch b[len(a)] {
	case '.', '[':
		return true
	case '-':
		return len(b) > len(a)+1 && b[len(a)+1] == '>'
	}
	return false
}

// ---------------------------------------------------------------------------
// engine.Checker implementation

// state is the per-path lock-set plus the transient per-statement access
// buffer (excluded from Key: statements never span memoization points).
// sig caches the held-set signature between lock events — lock
// operations are rare next to accesses, so the signature string is built
// once per (path, lock-set) instead of once per statement.
type state struct {
	held     map[string]bool
	stmtVars map[string]bool
	sig      string
	sigOK    bool
}

func (s *state) Clone() engine.State {
	ns := &state{sig: s.sig, sigOK: s.sigOK}
	if len(s.held) > 0 {
		ns.held = make(map[string]bool, len(s.held))
		for k := range s.held {
			ns.held[k] = true
		}
	}
	return ns
}

// sigFor returns the cached comma-terminated sorted signature of the
// held set ("" when no locks are held).
func (s *state) sigFor() string {
	if !s.sigOK {
		if len(s.held) == 0 {
			s.sig = ""
		} else {
			s.sig = string(s.AppendKey(nil))
		}
		s.sigOK = true
	}
	return s.sig
}

func (s *state) Key() string {
	if len(s.held) == 0 {
		return ""
	}
	return string(s.AppendKey(nil))
}

// AppendKey implements engine.AppendKeyer: the held set in ascending
// order, comma-terminated, built without allocating.
func (s *state) AppendKey(b []byte) []byte {
	for k := engine.NextKey(s.held, ""); k != ""; k = engine.NextKey(s.held, k) {
		b = append(append(b, k...), ',')
	}
	return b
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "lockvar" }

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0; c.bindings = nil }

// NewState implements engine.Checker. Beliefs about locks propagate
// backward as well as forward (§3.3: "unlock(l) implies a belief that l
// was locked before"): if the first lock event for l in the function is a
// release, l is believed held at entry.
func (c *Checker) NewState(fn *cast.FuncDecl) engine.State {
	var held, seen map[string]bool
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		call, ok := n.(*cast.CallExpr)
		if !ok {
			return true
		}
		name := cast.CalleeName(call)
		if name == "" {
			return true
		}
		acq, rel := c.conv.IsLockAcquire(name), c.conv.IsLockRelease(name)
		if !acq && !rel {
			return true
		}
		id := LockID(call)
		if id == "" || seen[id] {
			return true
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		seen[id] = true
		if rel {
			if held == nil {
				held = make(map[string]bool)
			}
			held[id] = true
		}
		return true
	})
	return &state{held: held}
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*state)
	switch ev.Kind {
	case engine.EvCall:
		name := cast.CalleeName(ev.Call)
		if name == "" {
			return
		}
		isAcq, isRel := c.conv.IsLockAcquire(name), c.conv.IsLockRelease(name)
		if isAcq || isRel {
			// The lock operand expression is not a data access; drop any
			// uses this statement's argument evaluation buffered.
			for k := range s.stmtVars {
				delete(s.stmtVars, k)
			}
		}
		switch {
		case isAcq:
			if id := c.lockIDCached(ev.Call); id != "" {
				// §3.3: "As a side-effect, this checker could catch
				// double-lock and double-unlock errors" — lock(l) implies
				// the belief l was NOT locked before.
				if s.held[id] {
					ctx.Reports.AddMust("lockvar/double-lock",
						"do not acquire held lock "+id, ev.Pos, report.Serious, 0,
						fmt.Sprintf("%s acquires %q, which this path already holds", name, id))
				}
				if s.held == nil {
					s.held = make(map[string]bool)
				}
				s.held[id] = true
				s.sigOK = false
			}
		case isRel:
			if id := c.lockIDCached(ev.Call); id != "" {
				if !s.held[id] && c.locks[id] {
					ctx.Reports.AddMust("lockvar/double-unlock",
						"do not release unheld lock "+id, ev.Pos, report.Serious, 0,
						fmt.Sprintf("%s releases %q, which this path does not hold", name, id))
				}
				delete(s.held, id)
				s.sigOK = false
			}
		}
	case engine.EvUse:
		if k := c.exprKeyCached(cast.StripParensAndCasts(ev.Expr)); k != "" && c.globals[baseOf(k)] && !c.locks[k] {
			if s.stmtVars == nil {
				s.stmtVars = make(map[string]bool)
			}
			s.stmtVars[k] = true
		}
	case engine.EvAssign:
		if k := c.exprKeyCached(cast.StripParensAndCasts(ev.LHS)); k != "" && c.globals[baseOf(k)] && !c.locks[k] {
			if s.stmtVars == nil {
				s.stmtVars = make(map[string]bool)
			}
			s.stmtVars[k] = true
		}
	case engine.EvStmtEnd:
		dropKeyPrefixes(s.stmtVars)
		if len(s.stmtVars) > 0 {
			c.bindings = nil
		}
		sig := s.sigFor()
		for v := range s.stmtVars {
			c.accesses[v]++
			for l := range s.held {
				c.heldAt[vl{v, l}]++
			}
			k := vl{v, sig}
			if c.siteN[k] < maxSitesPerPair {
				c.siteN[k]++
				c.siteLog = append(c.siteLog, siteRec{v: v, sig: sig, pos: ev.Pos})
			}
		}
		for v := range s.stmtVars {
			delete(s.stmtVars, v)
		}
	}
}

// Branch implements engine.Checker (lock state is unaffected by branches).
func (c *Checker) Branch(engine.State, cast.Expr, bool, *engine.Ctx) {}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns a checker for one worker's shard of functions. The
// pre-pass products (lock and shared-variable universes, promoted MUST
// pairs) are shared read-only; only the evidence accumulators are fresh.
func (c *Checker) Fork() *Checker {
	return &Checker{
		conv:     c.conv,
		globals:  c.globals,
		locks:    c.locks,
		lockList: c.lockList,
		p0:       c.p0,
		accesses: make(map[string]int),
		heldAt:   make(map[vl]int),
		must:     c.must,
		mustSite: c.mustSite,
		siteN:    make(map[vl]int),
		keyCache: make(map[cast.Expr]string),
		lockIDs:  make(map[*cast.CallExpr]string),
	}
}

// Merge folds a fork's evidence into c: counters sum; the site logs
// concatenate in merge order (fork order, then within-fork event order),
// re-applying the per-key cap.
func (c *Checker) Merge(o *Checker) {
	c.bindings = nil
	if len(c.accesses) == 0 && len(c.siteLog) == 0 {
		// First fork folds into an empty root (always the case for the
		// serial pipeline): adopt its accumulators instead of re-building
		// them one insert at a time.
		c.accesses, c.heldAt, c.siteN, c.siteLog = o.accesses, o.heldAt, o.siteN, o.siteLog
		return
	}
	for v, n := range o.accesses {
		c.accesses[v] += n
	}
	for k, n := range o.heldAt {
		c.heldAt[k] += n
	}
	for _, r := range o.siteLog {
		k := vl{r.v, r.sig}
		if c.siteN[k] < maxSitesPerPair {
			c.siteN[k]++
			c.siteLog = append(c.siteLog, r)
		}
	}
}


// ---------------------------------------------------------------------------
// results

// Binding reports the evidence for one (variable, lock) candidate.
type Binding struct {
	Var, Lock string
	stats.Counter
	Z    float64
	Must bool // promoted by the single-variable critical-section rule
}

// Bindings returns all candidate (v, l) instances ranked by z. The
// ranking (a sort over every pair) is memoized; new evidence via Event
// or Merge invalidates it. Results-stage callers (Finish, SpuriousLocks,
// the pipeline's LockBindings) therefore share one sort.
func (c *Checker) Bindings() []Binding {
	if c.bindings != nil {
		return c.bindings
	}
	out := make([]Binding, 0, len(c.accesses)*len(c.lockList))
	for v, n := range c.accesses {
		for _, l := range c.lockList {
			cnt := stats.Counter{Checks: n, Errors: n - c.heldAt[vl{v, l}]}
			out = append(out, Binding{
				Var: v, Lock: l, Counter: cnt, Z: cnt.Z(c.p0), Must: c.must[vl{v, l}],
			})
		}
	}
	slices.SortFunc(out, func(a, b Binding) int {
		if a.Z != b.Z {
			if a.Z > b.Z {
				return -1
			}
			return 1
		}
		if vlLess(vl{a.Var, a.Lock}, vl{b.Var, b.Lock}) {
			return -1
		}
		return 1
	})
	c.bindings = out
	return out
}

// Counter returns the evidence counter for (v, l) — exposed for the
// Figure 1 reproduction.
func (c *Checker) Counter(v, l string) stats.Counter {
	n := c.accesses[v]
	if n == 0 {
		return stats.Counter{}
	}
	return stats.Counter{Checks: n, Errors: n - c.heldAt[vl{v, l}]}
}

// SpuriousLocks returns locks for which no variable reaches minZ: either
// the analysis misunderstands the lock binding or the program has a
// serious error set (the non-spurious principle, §5).
func (c *Checker) SpuriousLocks(minZ float64) []string {
	best := make(map[string]float64)
	for l := range c.locks {
		best[l] = -1 << 30
	}
	for _, b := range c.Bindings() {
		if b.Z > best[b.Lock] {
			best[b.Lock] = b.Z
		}
	}
	var out []string
	for l, z := range best {
		if z < minZ {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// Finish emits ranked error reports: every unprotected access of v for a
// plausible (v, l) binding. Promoted MUST pairs report as definite errors.
func (c *Checker) Finish(col *report.Collector) {
	// Reportable bindings: errors exist and the belief is plausible —
	// implausible beliefs (never held while used) are coincidences, not
	// protection protocols. Index them by variable first so one pass
	// over the site log, in event order, distributes every binding's
	// first maxSitesPerPair unprotected accesses.
	bindings := c.Bindings()
	byVar := make(map[string][]int)
	nRep := 0
	for i := range bindings {
		b := &bindings[i]
		if b.Errors == 0 || b.Examples() == 0 {
			continue
		}
		byVar[b.Var] = append(byVar[b.Var], i)
		nRep++
	}
	if nRep == 0 {
		return
	}
	sites := make(map[int][]ctoken.Pos, nRep)
	for _, r := range c.siteLog {
		for _, i := range byVar[r.v] {
			if len(sites[i]) < maxSitesPerPair && !sigHas(r.sig, bindings[i].Lock) {
				sites[i] = append(sites[i], r.pos)
			}
		}
	}
	for i := range bindings {
		b := &bindings[i]
		if b.Errors == 0 || b.Examples() == 0 {
			continue
		}
		rule := fmt.Sprintf("variable %s must be protected by lock %s", b.Var, b.Lock)
		for _, pos := range sites[i] {
			msg := fmt.Sprintf("%s accessed without %s held (protected %d/%d times elsewhere)",
				b.Var, b.Lock, b.Examples(), b.Checks)
			if b.Must {
				col.AddMust("lockvar", rule, pos, report.Serious, 0, msg+" [promoted: sole variable of a critical section]")
			} else {
				col.AddStat("lockvar", rule, pos, b.Z, b.Checks, b.Examples(), msg)
			}
		}
	}
}
