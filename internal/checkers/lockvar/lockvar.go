// Package lockvar implements the statistical "does lock <l> protect
// variable <v>" checker of Section 3.3. It treats every (variable, lock)
// combination as a candidate MUST belief, counts protected and
// unprotected accesses, and ranks the unprotected ones (the errors) by
// the z statistic of the pair's evidence.
//
// The checker also applies the non-spurious principle (§5): a critical
// section that accesses exactly one shared variable promotes the MAY
// belief "l protects v" to a MUST belief, and a lock protecting nothing
// at an acceptable rank is itself suspicious.
package lockvar

import (
	"fmt"
	"sort"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/csem"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// maxSitesPerPair bounds recorded error sites per (v, l) instance.
const maxSitesPerPair = 64

// Checker accumulates lock/variable evidence across a whole program.
type Checker struct {
	conv    *latent.Conventions
	globals map[string]bool // shared-variable universe
	locks   map[string]bool // lock-id universe
	p0      float64

	pop      *stats.Population       // key: v + "@" + l
	errSites map[string][]ctoken.Pos // unprotected access sites per key
	must     map[string]bool         // promoted MUST pairs (single-var critical sections)
	mustSite map[string]ctoken.Pos   // where the promotion was observed
}

// New builds a checker for prog. The pre-pass derives the lock universe
// (arguments of acquire/release-shaped calls, or the callee name for
// argument-less locks like lock_kernel) and the shared-variable universe
// (file-scope variables that are not locks).
func New(prog *csem.Program, conv *latent.Conventions) *Checker {
	c := &Checker{
		conv:     conv,
		globals:  make(map[string]bool),
		locks:    make(map[string]bool),
		p0:       stats.DefaultP0,
		pop:      stats.NewPopulation(),
		errSites: make(map[string][]ctoken.Pos),
		must:     make(map[string]bool),
		mustSite: make(map[string]ctoken.Pos),
	}
	for _, fd := range prog.Funcs {
		cast.Inspect(fd.Body, func(n cast.Node) bool {
			call, ok := n.(*cast.CallExpr)
			if !ok {
				return true
			}
			name := cast.CalleeName(call)
			if name == "" {
				return true
			}
			if c.conv.IsLockAcquire(name) || c.conv.IsLockRelease(name) {
				if id := LockID(call); id != "" {
					c.locks[id] = true
				}
			}
			return true
		})
	}
	for name, vd := range prog.Globals {
		if c.locks[name] {
			continue
		}
		lower := strings.ToLower(name + " " + typeName(vd))
		if strings.Contains(lower, "lock") || strings.Contains(lower, "mutex") ||
			strings.Contains(lower, "sem") {
			continue
		}
		c.globals[name] = true
	}
	for _, fd := range prog.Funcs {
		c.promoteSingleVarSections(fd)
	}
	return c
}

func typeName(vd *cast.VarDecl) string {
	if vd.Type == nil {
		return ""
	}
	return vd.Type.TypeString()
}

// LockID extracts the lock identity from an acquire/release call: the
// first argument (stripping & and casts), or the callee name for
// argument-less global locks. Argless release names canonicalize onto
// their acquire ("unlock_kernel" and "lock_kernel" are the same lock).
func LockID(call *cast.CallExpr) string {
	if len(call.Args) == 0 {
		name := cast.CalleeName(call)
		if strings.HasPrefix(name, "un") {
			return name[2:]
		}
		return name
	}
	a := cast.StripParensAndCasts(call.Args[0])
	if u, ok := a.(*cast.UnaryExpr); ok && u.Op == ctoken.Amp {
		a = cast.StripParensAndCasts(u.X)
	}
	if k := exprKey(a); k != "" {
		return k
	}
	return cast.CalleeName(call)
}

func exprKey(e cast.Expr) string {
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	}
	return ""
}

// baseOf returns the leading identifier of a slot key ("dev->cnt" -> "dev").
func baseOf(key string) string {
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case '-', '.', '[':
			return key[:i]
		}
	}
	return key
}

// promoteSingleVarSections scans statement lists for
// acquire(l); <stmts>; release(l) spans whose statements access exactly
// one shared variable, promoting (v, l) to a MUST belief (§5).
func (c *Checker) promoteSingleVarSections(fd *cast.FuncDecl) {
	cast.Inspect(fd.Body, func(n cast.Node) bool {
		cs, ok := n.(*cast.CompoundStmt)
		if !ok {
			return true
		}
		for i := 0; i < len(cs.List); i++ {
			lock, lockID := c.lockCall(cs.List[i], true)
			if lock == nil {
				continue
			}
			vars := map[string]bool{}
			for j := i + 1; j < len(cs.List); j++ {
				if rel, relID := c.lockCall(cs.List[j], false); rel != nil && relID == lockID {
					if len(vars) == 1 {
						for v := range vars {
							key := v + "@" + lockID
							c.must[key] = true
							c.mustSite[key] = lock.Lparen
						}
					}
					break
				}
				c.collectShared(cs.List[j], vars)
			}
		}
		return true
	})
}

// lockCall returns the call and lock id if s is an expression statement
// calling an acquire (wantAcquire) or release routine.
func (c *Checker) lockCall(s cast.Stmt, wantAcquire bool) (*cast.CallExpr, string) {
	es, ok := s.(*cast.ExprStmt)
	if !ok || es.X == nil {
		return nil, ""
	}
	call, ok := es.X.(*cast.CallExpr)
	if !ok {
		return nil, ""
	}
	name := cast.CalleeName(call)
	if name == "" {
		return nil, ""
	}
	if wantAcquire && !c.conv.IsLockAcquire(name) {
		return nil, ""
	}
	if !wantAcquire && !c.conv.IsLockRelease(name) {
		return nil, ""
	}
	return call, LockID(call)
}

func (c *Checker) collectShared(s cast.Stmt, vars map[string]bool) {
	cast.Inspect(s, func(n cast.Node) bool {
		var k string
		switch x := n.(type) {
		case *cast.Ident:
			k = x.Name
		case *cast.MemberExpr:
			k = exprKey(x)
		default:
			return true
		}
		if k != "" && c.globals[baseOf(k)] && !c.locks[k] {
			vars[k] = true
		}
		return true
	})
	dropKeyPrefixes(vars)
}

// dropKeyPrefixes removes keys that are strict prefixes of other keys in
// the set: accessing dev.count touches "dev" too, but only the most
// specific slot is the shared datum.
func dropKeyPrefixes(keys map[string]bool) {
	for a := range keys {
		for b := range keys {
			if a == b {
				continue
			}
			if strings.HasPrefix(b, a+".") || strings.HasPrefix(b, a+"->") || strings.HasPrefix(b, a+"[") {
				delete(keys, a)
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// engine.Checker implementation

// state is the per-path lock-set plus the transient per-statement access
// buffer (excluded from Key: statements never span memoization points).
type state struct {
	held     map[string]bool
	stmtVars map[string]bool
}

func (s *state) Clone() engine.State {
	ns := &state{held: make(map[string]bool, len(s.held)), stmtVars: make(map[string]bool)}
	for k := range s.held {
		ns.held[k] = true
	}
	return ns
}

func (s *state) Key() string {
	if len(s.held) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "lockvar" }

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0 }

// NewState implements engine.Checker. Beliefs about locks propagate
// backward as well as forward (§3.3: "unlock(l) implies a belief that l
// was locked before"): if the first lock event for l in the function is a
// release, l is believed held at entry.
func (c *Checker) NewState(fn *cast.FuncDecl) engine.State {
	held := make(map[string]bool)
	seen := make(map[string]bool)
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		call, ok := n.(*cast.CallExpr)
		if !ok {
			return true
		}
		name := cast.CalleeName(call)
		if name == "" {
			return true
		}
		acq, rel := c.conv.IsLockAcquire(name), c.conv.IsLockRelease(name)
		if !acq && !rel {
			return true
		}
		id := LockID(call)
		if id == "" || seen[id] {
			return true
		}
		seen[id] = true
		if rel {
			held[id] = true
		}
		return true
	})
	return &state{held: held, stmtVars: make(map[string]bool)}
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*state)
	switch ev.Kind {
	case engine.EvCall:
		name := cast.CalleeName(ev.Call)
		if name == "" {
			return
		}
		isAcq, isRel := c.conv.IsLockAcquire(name), c.conv.IsLockRelease(name)
		if isAcq || isRel {
			// The lock operand expression is not a data access; drop any
			// uses this statement's argument evaluation buffered.
			for k := range s.stmtVars {
				delete(s.stmtVars, k)
			}
		}
		switch {
		case isAcq:
			if id := LockID(ev.Call); id != "" {
				// §3.3: "As a side-effect, this checker could catch
				// double-lock and double-unlock errors" — lock(l) implies
				// the belief l was NOT locked before.
				if s.held[id] {
					ctx.Reports.AddMust("lockvar/double-lock",
						"do not acquire held lock "+id, ev.Pos, report.Serious, 0,
						fmt.Sprintf("%s acquires %q, which this path already holds", name, id))
				}
				s.held[id] = true
			}
		case isRel:
			if id := LockID(ev.Call); id != "" {
				if !s.held[id] && c.locks[id] {
					ctx.Reports.AddMust("lockvar/double-unlock",
						"do not release unheld lock "+id, ev.Pos, report.Serious, 0,
						fmt.Sprintf("%s releases %q, which this path does not hold", name, id))
				}
				delete(s.held, id)
			}
		}
	case engine.EvUse:
		if k := exprKey(cast.StripParensAndCasts(ev.Expr)); k != "" && c.globals[baseOf(k)] && !c.locks[k] {
			s.stmtVars[k] = true
		}
	case engine.EvAssign:
		if k := exprKey(cast.StripParensAndCasts(ev.LHS)); k != "" && c.globals[baseOf(k)] && !c.locks[k] {
			s.stmtVars[k] = true
		}
	case engine.EvStmtEnd:
		dropKeyPrefixes(s.stmtVars)
		for v := range s.stmtVars {
			for l := range c.locks {
				key := v + "@" + l
				errHere := !s.held[l]
				c.pop.Check(key, errHere)
				if errHere && len(c.errSites[key]) < maxSitesPerPair {
					c.errSites[key] = append(c.errSites[key], ev.Pos)
				}
			}
		}
		for v := range s.stmtVars {
			delete(s.stmtVars, v)
		}
	}
}

// Branch implements engine.Checker (lock state is unaffected by branches).
func (c *Checker) Branch(engine.State, cast.Expr, bool, *engine.Ctx) {}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns a checker for one worker's shard of functions. The
// pre-pass products (lock and shared-variable universes, promoted MUST
// pairs) are shared read-only; only the evidence accumulators are fresh.
func (c *Checker) Fork() *Checker {
	return &Checker{
		conv:     c.conv,
		globals:  c.globals,
		locks:    c.locks,
		p0:       c.p0,
		pop:      stats.NewPopulation(),
		errSites: make(map[string][]ctoken.Pos),
		must:     c.must,
		mustSite: c.mustSite,
	}
}

// Merge folds a fork's evidence into c: counters sum, error-site lists
// concatenate in merge order and re-truncate to the cap.
func (c *Checker) Merge(o *Checker) {
	c.pop.Merge(o.pop)
	for k, v := range o.errSites {
		s := append(c.errSites[k], v...)
		if len(s) > maxSitesPerPair {
			s = s[:maxSitesPerPair]
		}
		c.errSites[k] = s
	}
}

// ---------------------------------------------------------------------------
// results

// Binding reports the evidence for one (variable, lock) candidate.
type Binding struct {
	Var, Lock string
	stats.Counter
	Z    float64
	Must bool // promoted by the single-variable critical-section rule
}

// Bindings returns all candidate (v, l) instances ranked by z.
func (c *Checker) Bindings() []Binding {
	ranked := c.pop.RankedInstances(c.p0, nil)
	out := make([]Binding, 0, len(ranked))
	for _, r := range ranked {
		v, l, ok := strings.Cut(r.Key, "@")
		if !ok {
			continue
		}
		out = append(out, Binding{
			Var: v, Lock: l, Counter: r.Counter, Z: r.ZVal, Must: c.must[r.Key],
		})
	}
	return out
}

// Counter returns the evidence counter for (v, l) — exposed for the
// Figure 1 reproduction.
func (c *Checker) Counter(v, l string) stats.Counter { return c.pop.Get(v + "@" + l) }

// SpuriousLocks returns locks for which no variable reaches minZ: either
// the analysis misunderstands the lock binding or the program has a
// serious error set (the non-spurious principle, §5).
func (c *Checker) SpuriousLocks(minZ float64) []string {
	best := make(map[string]float64)
	for l := range c.locks {
		best[l] = -1 << 30
	}
	for _, b := range c.Bindings() {
		if b.Z > best[b.Lock] {
			best[b.Lock] = b.Z
		}
	}
	var out []string
	for l, z := range best {
		if z < minZ {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// Finish emits ranked error reports: every unprotected access of v for a
// plausible (v, l) binding. Promoted MUST pairs report as definite errors.
func (c *Checker) Finish(col *report.Collector) {
	for _, b := range c.Bindings() {
		key := b.Var + "@" + b.Lock
		if b.Errors == 0 {
			continue
		}
		// Implausible beliefs (never held while used) are not worth
		// reporting — they are coincidences, not protection protocols.
		if b.Examples() == 0 {
			continue
		}
		rule := fmt.Sprintf("variable %s must be protected by lock %s", b.Var, b.Lock)
		for _, pos := range c.errSites[key] {
			msg := fmt.Sprintf("%s accessed without %s held (protected %d/%d times elsewhere)",
				b.Var, b.Lock, b.Examples(), b.Checks)
			if b.Must {
				col.AddMust("lockvar", rule, pos, report.Serious, 0, msg+" [promoted: sole variable of a critical section]")
			} else {
				col.AddStat("lockvar", rule, pos, b.Z, b.Checks, b.Examples(), msg)
			}
		}
	}
}
