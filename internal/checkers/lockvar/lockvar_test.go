package lockvar

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/csem"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

// figure1 is the paper's contrived lock example (Figure 1), verbatim in
// structure.
const figure1 = `
typedef int lock_t;
lock_t l;
int a, b;
void foo(void) {
	lock(l);
	a = a + b;
	unlock(l);
	b = b + 1;
}
void bar(void) {
	lock(l);
	a = a + 1;
	unlock(l);
}
void baz(void) {
	a = a + 1;
	unlock(l);
	b = b - 1;
	a = a / 5;
}
`

func run(t *testing.T, src string) (*Checker, *report.Collector) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	prog := csem.Analyze([]*cast.File{f})
	conv := latent.Default()
	c := New(prog, conv)
	col := report.NewCollector()
	for _, name := range prog.FuncNames() {
		fd := prog.Funcs[name]
		g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
		engine.Run(g, c, col, engine.Options{Memoize: true})
	}
	c.Finish(col)
	return c, col
}

func TestFigure1Counts(t *testing.T) {
	c, _ := run(t, figure1)
	// Paper §3.4: "(a, l) has four check messages ... and one error";
	// "(b, l) has three check messages ... and two errors".
	a := c.Counter("a", "l")
	if a.Checks != 4 || a.Errors != 1 {
		t.Errorf("(a,l): got %d checks %d errors, want 4/1 (bindings: %+v)",
			a.Checks, a.Errors, c.Bindings())
	}
	b := c.Counter("b", "l")
	if b.Checks != 3 || b.Errors != 2 {
		t.Errorf("(b,l): got %d checks %d errors, want 3/2", b.Checks, b.Errors)
	}
}

func TestFigure1Ranking(t *testing.T) {
	c, _ := run(t, figure1)
	bs := c.Bindings()
	if len(bs) < 2 {
		t.Fatalf("bindings: %+v", bs)
	}
	if bs[0].Var != "a" || bs[0].Lock != "l" {
		t.Errorf("(a,l) should rank above (b,l): %+v", bs)
	}
	if bs[0].Z <= bs[1].Z {
		t.Errorf("z order: %+v", bs)
	}
}

func TestFigure1ErrorReports(t *testing.T) {
	_, col := run(t, figure1)
	rs := col.ByChecker("lockvar")
	// Errors at: a/5 (line 20), b+1 (line 9), b-1 (line 19). All three
	// reported; the (a,l) one ranks above the (b,l) ones.
	if len(rs) != 3 {
		t.Fatalf("reports: %d\n%+v", len(rs), rs)
	}
	joined := ""
	for _, r := range rs {
		joined += r.Message + "\n"
	}
	if !strings.Contains(joined, "a accessed without l held") {
		t.Errorf("missing a error:\n%s", joined)
	}
	if !strings.Contains(joined, "b accessed without l held") {
		t.Errorf("missing b error:\n%s", joined)
	}
}

func TestSingleVarPromotion(t *testing.T) {
	// bar() is a critical section whose only shared access is a: the
	// (a, l) belief is promoted to MUST (§5).
	c, col := run(t, figure1)
	var promoted bool
	for _, b := range c.Bindings() {
		if b.Var == "a" && b.Lock == "l" && b.Must {
			promoted = true
		}
	}
	if !promoted {
		t.Fatalf("(a,l) should be promoted: %+v", c.Bindings())
	}
	// Promotion upgrades (a,l) violations to MUST reports, which outrank
	// all statistical ones.
	rs := col.ByChecker("lockvar")
	if rs[0].Statistical() || !strings.Contains(rs[0].Message, "a accessed") {
		t.Errorf("top report should be the promoted MUST error: %+v", rs[0])
	}
}

func TestBackwardPropagationFromUnlock(t *testing.T) {
	// baz() starts with an access then unlock: the unlock implies l was
	// held at entry, so the first access is protected.
	src := `
typedef int lock_t;
lock_t l;
int v;
void f(void) {
	v = v + 1;
	unlock(l);
}
`
	c, _ := run(t, src)
	got := c.Counter("v", "l")
	if got.Checks != 1 || got.Errors != 0 {
		t.Errorf("(v,l): %+v — entry-held inference failed", got)
	}
}

func TestPerStatementDeduplication(t *testing.T) {
	// "v = v + v * v" accesses v several times but is one check.
	src := `
typedef int lock_t;
lock_t l;
int v;
void f(void) {
	lock(l);
	v = v + v * v;
	unlock(l);
}
`
	c, _ := run(t, src)
	if got := c.Counter("v", "l"); got.Checks != 1 {
		t.Errorf("(v,l) checks: %d, want 1", got.Checks)
	}
}

func TestLocalsNotCounted(t *testing.T) {
	src := `
typedef int lock_t;
lock_t l;
int shared;
void f(void) {
	int local;
	lock(l);
	local = 1;
	shared = local;
	unlock(l);
}
`
	c, _ := run(t, src)
	if got := c.Counter("local", "l"); got.Checks != 0 {
		t.Errorf("locals must not be counted: %+v", got)
	}
	if got := c.Counter("shared", "l"); got.Checks != 1 {
		t.Errorf("shared: %+v", got)
	}
}

func TestSpinLockStyleWithAddressArg(t *testing.T) {
	src := `
struct spinlock { int raw; };
struct spinlock dev_lock;
int count;
void f(void) {
	spin_lock(&dev_lock);
	count = count + 1;
	spin_unlock(&dev_lock);
}
void g(void) {
	count = count - 1;
}
`
	c, col := run(t, src)
	got := c.Counter("count", "dev_lock")
	if got.Checks != 2 || got.Errors != 1 {
		t.Errorf("(count,dev_lock): %+v", got)
	}
	rs := col.ByChecker("lockvar")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if rs[0].Pos.Line != 11 {
		t.Errorf("error should be at line 11 (g's access): %v", rs[0].Pos)
	}
}

func TestNoLockNoNoise(t *testing.T) {
	src := `
int x;
void f(void) { x = 1; }
void g(void) { x = 2; }
`
	c, col := run(t, src)
	if len(c.Bindings()) != 0 {
		t.Errorf("no locks, no bindings: %+v", c.Bindings())
	}
	if col.Len() != 0 {
		t.Errorf("no reports expected")
	}
}

func TestNeverProtectedPairSuppressed(t *testing.T) {
	// u is never accessed with the lock held: a coincidence, not a
	// protocol; no reports for it.
	src := `
typedef int lock_t;
lock_t l;
int p, u;
void f(void) {
	lock(l);
	p = 1;
	unlock(l);
	u = 1;
}
void g(void) {
	u = 2;
}
`
	_, col := run(t, src)
	for _, r := range col.ByChecker("lockvar") {
		if strings.Contains(r.Message, "u accessed") {
			t.Errorf("never-protected pair reported: %+v", r)
		}
	}
}

func TestSpuriousLocks(t *testing.T) {
	src := `
typedef int lock_t;
lock_t l, dead;
int v;
void f(void) {
	lock(l);
	v = v + 1;
	unlock(l);
	lock(dead);
	unlock(dead);
}
`
	c, _ := run(t, src)
	spurious := c.SpuriousLocks(0)
	found := false
	for _, s := range spurious {
		if s == "dead" {
			found = true
		}
		if s == "l" {
			t.Errorf("l protects v, not spurious: %v", spurious)
		}
	}
	if !found {
		t.Errorf("dead protects nothing: %v", spurious)
	}
}

func TestLockKernelStyleNoArgs(t *testing.T) {
	src := `
int jiffies_state;
void f(void) {
	lock_kernel();
	jiffies_state = 1;
	unlock_kernel();
}
void g(void) {
	jiffies_state = 2;
}
`
	c, _ := run(t, src)
	got := c.Counter("jiffies_state", "lock_kernel")
	if got.Checks != 2 || got.Errors != 1 {
		t.Errorf("argless lock: %+v (bindings %+v)", got, c.Bindings())
	}
}

func TestDoubleLockDetected(t *testing.T) {
	src := `
typedef int lock_t;
lock_t l;
int v;
void f(void) {
	lock(l);
	lock(l);
	v = 1;
	unlock(l);
}
`
	_, col := run(t, src)
	rs := col.ByChecker("lockvar/double-lock")
	if len(rs) != 1 {
		t.Fatalf("double-lock reports: %+v", col.Ranked())
	}
	if rs[0].Pos.Line != 7 {
		t.Errorf("site: %v", rs[0].Pos)
	}
}

func TestDoubleUnlockDetected(t *testing.T) {
	src := `
typedef int lock_t;
lock_t l;
int v;
void f(void) {
	lock(l);
	v = 1;
	unlock(l);
	unlock(l);
}
`
	_, col := run(t, src)
	rs := col.ByChecker("lockvar/double-unlock")
	if len(rs) != 1 {
		t.Fatalf("double-unlock reports: %+v", col.Ranked())
	}
}

func TestConditionalDoubleLockOnOnePath(t *testing.T) {
	// Only the x-true path double-acquires.
	src := `
typedef int lock_t;
lock_t l;
int v;
void f(int x) {
	if (x)
		lock(l);
	lock(l);
	v = 1;
	unlock(l);
}
`
	_, col := run(t, src)
	if len(col.ByChecker("lockvar/double-lock")) != 1 {
		t.Fatalf("path-sensitive double-lock: %+v", col.Ranked())
	}
}

func TestBalancedLockingNoDoubleReports(t *testing.T) {
	_, col := run(t, figure1)
	if n := len(col.ByChecker("lockvar/double-lock")) + len(col.ByChecker("lockvar/double-unlock")); n != 0 {
		t.Errorf("figure 1 is balanced, got %d double reports", n)
	}
}

func TestMemberLockProtectsMemberState(t *testing.T) {
	// Real kernels lock through struct members: dev.lock protects
	// dev.count. The lock operand itself must not count as a data
	// access.
	src := `
struct devstate { struct spinlock lock; int count; };
struct devstate dev;
void f(int d) {
	spin_lock(&dev.lock);
	dev.count = dev.count + d;
	spin_unlock(&dev.lock);
}
void g(void) {
	dev.count = 0;
}
`
	c, col := run(t, src)
	got := c.Counter("dev.count", "dev.lock")
	if got.Checks != 2 || got.Errors != 1 {
		t.Fatalf("(dev.count, dev.lock): %+v (bindings %+v)", got, c.Bindings())
	}
	// No (dev.lock, dev.lock) or lock-operand noise instances.
	for _, b := range c.Bindings() {
		if b.Var == "dev.lock" || b.Var == "dev" {
			t.Errorf("lock operand counted as shared data: %+v", b)
		}
	}
	rs := col.ByChecker("lockvar")
	if len(rs) != 1 || rs[0].Pos.Line != 10 {
		t.Errorf("reports: %+v", rs)
	}
}
