// Package redundant flags operations that contradict the belief that code
// does useful work (§4.1: "If we further assume that code intends to do
// useful work, we can infer that code believes that actions are not
// redundant. ... flagging such redundancies points out where programmers
// are confused and hence have made errors"). The null checker covers
// redundant *checks*; this checker covers redundant *mutations and
// computations*:
//
//   - self-assignment: x = x (a classic transcription bug: meant x = y);
//   - self-operation: x - x, x / x, x & x, x | x, x ^ x with identical
//     operands, which are constants or no-ops the programmer almost
//     certainly did not intend to write;
//   - identical branch arms: if (c) S else S — the condition is dead.
//
// These are minor-severity reports: like redundant null checks (§6.1),
// they rarely crash anything themselves but correlate strongly with
// genuine confusion nearby.
package redundant

import (
	"fmt"

	"deviant/internal/cast"
	"deviant/internal/csem"
	"deviant/internal/ctoken"
	"deviant/internal/report"
)

// Checker scans a program for redundant operations. It is purely
// syntactic — no path sensitivity needed.
type Checker struct {
	prog *csem.Program
}

// New returns a redundancy checker for prog.
func New(prog *csem.Program) *Checker { return &Checker{prog: prog} }

// Run emits all findings into col.
func (c *Checker) Run(col *report.Collector) {
	for _, name := range c.prog.FuncNames() {
		fd := c.prog.Funcs[name]
		cast.Inspect(fd.Body, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.AssignExpr:
				c.checkAssign(x, col)
			case *cast.BinaryExpr:
				c.checkBinop(x, col)
			case *cast.IfStmt:
				c.checkBranches(x, col)
			}
			return true
		})
	}
}

// sameExpr reports whether two expressions are syntactically identical
// and side-effect free (no calls, no ++/--).
func sameExpr(a, b cast.Expr) bool {
	if hasSideEffects(a) || hasSideEffects(b) {
		return false
	}
	return cast.ExprString(a) == cast.ExprString(b)
}

func hasSideEffects(e cast.Expr) bool {
	found := false
	cast.Inspect(e, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.CallExpr, *cast.AssignExpr, *cast.PostfixExpr:
			found = true
		case *cast.UnaryExpr:
			if x.Op == ctoken.Inc || x.Op == ctoken.Dec {
				found = true
			}
		}
		return !found
	})
	return found
}

func (c *Checker) checkAssign(x *cast.AssignExpr, col *report.Collector) {
	if x.Op != ctoken.Assign || x.L.FromMacro() || x.R.FromMacro() {
		return
	}
	if sameExpr(x.L, x.R) {
		lhs := cast.ExprString(x.L)
		col.AddMust("redundant/self-assign",
			"assignment of "+lhs+" to itself does no work",
			x.L.Pos(), report.Minor, 0,
			fmt.Sprintf("%s = %s assigns a value to itself; a different right-hand side was probably intended", lhs, lhs))
	}
}

// selfBinopKinds are operators for which identical operands produce a
// constant or the operand itself — writing them is almost always a typo.
var selfBinopKinds = map[ctoken.Kind]string{
	ctoken.Minus:   "always 0",
	ctoken.Slash:   "always 1",
	ctoken.Percent: "always 0",
	ctoken.Caret:   "always 0",
	ctoken.Amp:     "a no-op",
	ctoken.Pipe:    "a no-op",
}

func (c *Checker) checkBinop(x *cast.BinaryExpr, col *report.Collector) {
	what, interesting := selfBinopKinds[x.Op]
	if !interesting || x.X.FromMacro() || x.Y.FromMacro() {
		return
	}
	// Literal operands ("1 | 1") are usually deliberate flag spelling;
	// only identifier-based operands signal confusion.
	if isLiteral(x.X) {
		return
	}
	if sameExpr(x.X, x.Y) {
		op := x.Op.String()
		e := cast.ExprString(x.X)
		col.AddMust("redundant/self-operation",
			"operation "+e+" "+op+" "+e+" is redundant",
			x.X.Pos(), report.Minor, 0,
			fmt.Sprintf("%s %s %s is %s; one operand was probably meant to be something else", e, op, e, what))
	}
}

func isLiteral(e cast.Expr) bool {
	switch cast.StripParensAndCasts(e).(type) {
	case *cast.IntLit, *cast.FloatLit, *cast.CharLit, *cast.StringLit:
		return true
	}
	return false
}

func (c *Checker) checkBranches(x *cast.IfStmt, col *report.Collector) {
	if x.Else == nil {
		return
	}
	if stmtString(x.Then) == stmtString(x.Else) {
		col.AddMust("redundant/identical-branches",
			"both branches of this condition do the same thing",
			x.IfPos, report.Minor, 0,
			"the then and else branches are identical, so the condition is dead; one branch was probably meant to differ")
	}
}

// stmtString canonicalizes a statement subtree for comparison. Statements
// containing calls still compare equal when truly identical — identical
// call sequences in both arms are exactly the bug pattern — but position
// information is excluded.
func stmtString(s cast.Stmt) string {
	out := ""
	cast.Inspect(s, func(n cast.Node) bool {
		switch x := n.(type) {
		case cast.Expr:
			out += cast.ExprString(x) + ";"
			return false // ExprString covers the subtree
		case *cast.ReturnStmt:
			out += "return "
		case *cast.BreakStmt:
			out += "break;"
		case *cast.ContinueStmt:
			out += "continue;"
		case *cast.GotoStmt:
			out += "goto " + x.Label + ";"
		case *cast.IfStmt:
			out += "if "
		case *cast.WhileStmt:
			out += "while "
		case *cast.VarDecl:
			out += "decl " + x.Name + ";"
		}
		return true
	})
	return out
}
