package redundant

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
	"deviant/internal/csem"
	"deviant/internal/report"
)

func run(t *testing.T, src string) *report.Collector {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	prog := csem.Analyze([]*cast.File{f})
	col := report.NewCollector()
	New(prog).Run(col)
	return col
}

func TestSelfAssign(t *testing.T) {
	col := run(t, `
void f(struct s *a, struct s *b) {
	a->x = a->x;
	b->x = a->x;
}`)
	rs := col.ByChecker("redundant/self-assign")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", col.Ranked())
	}
	if !strings.Contains(rs[0].Message, "a->x") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestSelfAssignWithCallsSuppressed(t *testing.T) {
	// f() = f() style nonsense aside: calls may differ between
	// evaluations, so identical texts with side effects stay silent.
	col := run(t, `
void f(int *p) {
	p[next()] = p[next()];
}`)
	if col.Len() != 0 {
		t.Errorf("side-effecting operands flagged: %+v", col.Ranked())
	}
}

func TestSelfOperations(t *testing.T) {
	col := run(t, `
int f(int n, int m) {
	int a = n - n;
	int b = n / n;
	int c = n & n;
	int d = n ^ n;
	int e = n - m;
	return a + b + c + d + e;
}`)
	rs := col.ByChecker("redundant/self-operation")
	if len(rs) != 4 {
		t.Fatalf("want 4 self-operations: %+v", rs)
	}
}

func TestLiteralFlagsNotFlagged(t *testing.T) {
	col := run(t, `
int f(void) {
	return 1 | 1;
}`)
	if col.Len() != 0 {
		t.Errorf("literal flag spelling flagged: %+v", col.Ranked())
	}
}

func TestIdenticalBranches(t *testing.T) {
	col := run(t, `
int f(int c, int v) {
	if (c)
		v = v + 1;
	else
		v = v + 1;
	return v;
}`)
	rs := col.ByChecker("redundant/identical-branches")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", col.Ranked())
	}
}

func TestDifferentBranchesClean(t *testing.T) {
	col := run(t, `
int f(int c, int v) {
	if (c)
		v = v + 1;
	else
		v = v - 1;
	return v;
}`)
	if col.Len() != 0 {
		t.Errorf("distinct branches flagged: %+v", col.Ranked())
	}
}

func TestMacroOperandsSuppressed(t *testing.T) {
	// Macro expansion frequently produces x = x after substitution;
	// flagging it would blame the macro user.
	col := run(t, `
#define KEEP(field) (field) = (field)
void f(struct s *a) {
	KEEP(a->x);
}`)
	if col.Len() != 0 {
		t.Errorf("macro-produced self-assign flagged: %+v", col.Ranked())
	}
}

func TestReportsAreMinor(t *testing.T) {
	col := run(t, "void f(int v) { v = v; }")
	rs := col.Ranked()
	if len(rs) != 1 || rs[0].Severity != report.Minor {
		t.Fatalf("redundancy should be minor: %+v", rs)
	}
}
