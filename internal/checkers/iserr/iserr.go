// Package iserr implements the IS_ERR consistency checker of Table 1 /
// Section 8.3: "must IS_ERR be used to check routine <F>'s returned
// result?" A routine whose result is checked with IS_ERR anywhere must
// always be checked that way — a caller testing it against null (or not
// at all) misses the encoded error pointer. Conversely, IS_ERR applied to
// a routine nobody else checks that way is itself flagged (the inverse
// direction).
//
// The two directions are separated by majority: the minority side's sites
// are the errors, ranked by the z statistic of the majority's evidence.
package iserr

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// maxSites bounds recorded sites per callee per side.
const maxSites = 64

// Checker accumulates IS_ERR usage evidence across a program.
type Checker struct {
	conv *latent.Conventions
	p0   float64

	// Per callee: how many results were IS_ERR-checked vs. used/checked
	// otherwise, with representative sites for both sides.
	isErrCount map[string]int
	otherCount map[string]int
	otherSites map[string][]ctoken.Pos
	isErrSites map[string][]ctoken.Pos
}

// New returns an empty IS_ERR checker.
func New(conv *latent.Conventions) *Checker {
	return &Checker{
		conv:       conv,
		p0:         stats.DefaultP0,
		isErrCount: make(map[string]int),
		otherCount: make(map[string]int),
		otherSites: make(map[string][]ctoken.Pos),
		isErrSites: make(map[string][]ctoken.Pos),
	}
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "iserr" }

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0 }

type tracked struct {
	callee string
}

type state struct {
	vars map[string]tracked
}

func (s *state) Clone() engine.State {
	ns := &state{}
	if len(s.vars) > 0 {
		ns.vars = make(map[string]tracked, len(s.vars))
		for k, v := range s.vars {
			ns.vars[k] = v
		}
	}
	return ns
}

func (s *state) Key() string {
	if len(s.vars) == 0 {
		return ""
	}
	return string(s.AppendKey(nil))
}

// AppendKey implements engine.AppendKeyer: the tracked bindings in
// ascending key order, built without allocating.
func (s *state) AppendKey(b []byte) []byte {
	for k := engine.NextKey(s.vars, ""); k != ""; k = engine.NextKey(s.vars, k) {
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, s.vars[k].callee...)
		b = append(b, ';')
	}
	return b
}

// NewState implements engine.Checker. The tracked-variable map is
// allocated on first binding: most functions never call an ERR_PTR
// returner, and the engine creates one state per function plus one per
// branch clone.
func (c *Checker) NewState(*cast.FuncDecl) engine.State {
	return &state{}
}

func keyOf(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := keyOf(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	}
	return ""
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*state)
	switch ev.Kind {
	case engine.EvDecl:
		if ev.Decl.Init != nil {
			c.bind(s, ev.Decl.Name, ev.Decl.Init)
		}
	case engine.EvAssign:
		if k := keyOf(ev.LHS); k != "" {
			if ev.RHS != nil {
				c.bind(s, k, ev.RHS)
			} else {
				delete(s.vars, k)
			}
		}
	case engine.EvDeref:
		// A dereference before any IS_ERR check resolves the instance as
		// "used otherwise".
		c.resolveOther(s, keyOf(ev.Ptr), ev.Pos)
	case engine.EvCall:
		name := cast.CalleeName(ev.Call)
		if name == c.conv.ErrPtrCheck || name == "PTR_ERR" {
			return // handled at Branch / not a use
		}
		for _, a := range ev.Call.Args {
			c.resolveOther(s, keyOf(a), ev.Pos)
		}
	case engine.EvReturn:
		if ev.Expr != nil {
			c.resolveOther(s, keyOf(ev.Expr), ev.Pos)
		}
	}
}

func (c *Checker) bind(s *state, key string, rhs cast.Expr) {
	rhs = cast.StripParensAndCasts(rhs)
	if call, ok := rhs.(*cast.CallExpr); ok {
		if callee := cast.CalleeName(call); callee != "" && callee != c.conv.ErrPtrCheck {
			if s.vars == nil {
				s.vars = make(map[string]tracked)
			}
			s.vars[key] = tracked{callee: callee}
			return
		}
	}
	delete(s.vars, key)
}

func (c *Checker) resolveOther(s *state, key string, pos ctoken.Pos) {
	if key == "" {
		return
	}
	tr, ok := s.vars[key]
	if !ok {
		return
	}
	c.otherCount[tr.callee]++
	if len(c.otherSites[tr.callee]) < maxSites {
		c.otherSites[tr.callee] = append(c.otherSites[tr.callee], pos)
	}
	delete(s.vars, key)
}

// Branch implements engine.Checker: IS_ERR(v) resolves v's instance as
// properly checked; a null-shaped test of v resolves it as "checked
// otherwise" (the classic wrong-predicate bug).
func (c *Checker) Branch(st engine.State, cond cast.Expr, val bool, ctx *engine.Ctx) {
	s := st.(*state)
	cond = cast.StripParensAndCasts(cond)
	// Branch runs once per outgoing edge with a cloned state; count the
	// observation on the true arm only, but resolve the instance in both
	// clones so neither arm re-counts it later.
	if call, ok := cond.(*cast.CallExpr); ok {
		if cast.CalleeName(call) == c.conv.ErrPtrCheck && len(call.Args) == 1 {
			key := keyOf(call.Args[0])
			if tr, ok := s.vars[key]; ok {
				if val {
					c.isErrCount[tr.callee]++
					if len(c.isErrSites[tr.callee]) < maxSites {
						c.isErrSites[tr.callee] = append(c.isErrSites[tr.callee], cond.Pos())
					}
				}
				delete(s.vars, key)
			}
		}
		return
	}
	// Null-shaped checks: p == NULL, !p, p != NULL, bare p.
	if key := nullCheckedVar(cond); key != "" {
		if val {
			c.resolveOther(s, key, cond.Pos())
		} else {
			delete(s.vars, key)
		}
	}
}

func nullCheckedVar(cond cast.Expr) string {
	switch x := cond.(type) {
	case *cast.BinaryExpr:
		if x.Op != ctoken.EqEq && x.Op != ctoken.NotEq {
			return ""
		}
		if isNull(x.Y) {
			return keyOf(x.X)
		}
		if isNull(x.X) {
			return keyOf(x.Y)
		}
		return ""
	default:
		return keyOf(cond)
	}
}

func isNull(e cast.Expr) bool {
	switch x := cast.StripParensAndCasts(e).(type) {
	case *cast.IntLit:
		return x.Value == 0
	case *cast.Ident:
		return x.Name == "NULL"
	}
	return false
}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns an empty checker sharing c's configuration, for one
// worker's shard of functions.
func (c *Checker) Fork() *Checker { f := New(c.conv); f.p0 = c.p0; return f }

// Merge folds a fork's evidence into c. Counts are sums; site lists
// concatenate in merge order and re-truncate, so folding shards in
// function order reproduces the serial site lists exactly (per-shard
// truncation only ever drops sites past the global cap).
func (c *Checker) Merge(o *Checker) {
	for k, v := range o.isErrCount {
		c.isErrCount[k] += v
	}
	for k, v := range o.otherCount {
		c.otherCount[k] += v
	}
	mergeSites(c.isErrSites, o.isErrSites)
	mergeSites(c.otherSites, o.otherSites)
}

func mergeSites(dst, src map[string][]ctoken.Pos) {
	for k, v := range src {
		s := append(dst[k], v...)
		if len(s) > maxSites {
			s = s[:maxSites]
		}
		dst[k] = s
	}
}

// Derived is the IS_ERR evidence for one routine.
type Derived struct {
	Func           string
	IsErrChecked   int // results checked with IS_ERR
	CheckedOtherly int // results used or checked some other way
	Z              float64
	// MustUseIsErr is true when the IS_ERR side is the majority.
	MustUseIsErr bool
}

// Ranked returns per-routine evidence ordered by |z| of the majority
// belief.
func (c *Checker) Ranked() []Derived {
	names := map[string]bool{}
	for n := range c.isErrCount {
		names[n] = true
	}
	for n := range c.otherCount {
		names[n] = true
	}
	var out []Derived
	for n := range names {
		ie, ot := c.isErrCount[n], c.otherCount[n]
		total := ie + ot
		d := Derived{Func: n, IsErrChecked: ie, CheckedOtherly: ot, MustUseIsErr: ie >= ot}
		if d.MustUseIsErr {
			d.Z = stats.Z(total, ie, c.p0)
		} else {
			d.Z = stats.Z(total, ot, c.p0)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// Finish reports contradictions: for each routine with evidence on both
// sides, the minority side's sites are flagged, ranked by the majority's
// z.
func (c *Checker) Finish(col *report.Collector) {
	for _, d := range c.Ranked() {
		if d.IsErrChecked == 0 || d.CheckedOtherly == 0 {
			continue // no contradiction
		}
		total := d.IsErrChecked + d.CheckedOtherly
		if d.MustUseIsErr {
			rule := fmt.Sprintf("result of %s must be checked with IS_ERR", d.Func)
			for _, pos := range c.otherSites[d.Func] {
				col.AddStat("iserr", rule, pos, d.Z, total, d.IsErrChecked,
					fmt.Sprintf("result of %s used without IS_ERR check (%d/%d callers use IS_ERR); a null test misses encoded error pointers",
						d.Func, d.IsErrChecked, total))
			}
		} else {
			rule := fmt.Sprintf("result of %s must never be checked with IS_ERR", d.Func)
			for _, pos := range c.isErrSites[d.Func] {
				col.AddStat("iserr", rule, pos, d.Z, total, d.CheckedOtherly,
					fmt.Sprintf("IS_ERR applied to result of %s, which %d/%d callers treat as a plain pointer",
						d.Func, d.CheckedOtherly, total))
			}
		}
	}
}
