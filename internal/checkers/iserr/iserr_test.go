package iserr

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) (*Checker, *report.Collector) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(conv)
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, c, col, engine.Options{Memoize: true})
		}
	}
	c.Finish(col)
	return c, col
}

func TestConsistentIsErrNoReports(t *testing.T) {
	src := `
void f(void) {
	struct dentry *d = lookup_one(1);
	if (IS_ERR(d))
		return;
	use(d);
}
`
	_, col := run(t, src)
	if col.Len() != 0 {
		t.Errorf("consistent usage flagged: %d", col.Len())
	}
}

func TestNullCheckOnIsErrRoutineFlagged(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&sb, `
void f%d(void) {
	struct dentry *d = lookup_one(%d);
	if (IS_ERR(d))
		return;
	use(d);
}`, i, i)
	}
	// The deviant caller tests against null: misses ERR_PTR values.
	sb.WriteString(`
void bad(void) {
	struct dentry *d = lookup_one(9);
	if (d == NULL)
		return;
	use(d);
}`)
	c, col := run(t, sb.String())
	rs := col.ByChecker("iserr")
	if len(rs) != 1 {
		t.Fatalf("reports: %d (%+v)", len(rs), c.Ranked())
	}
	if !strings.Contains(rs[0].Message, "IS_ERR") || !strings.Contains(rs[0].Message, "lookup_one") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestUncheckedUseOfIsErrRoutineFlagged(t *testing.T) {
	src := `
void a(void) {
	struct inode *i = open_node(1);
	if (IS_ERR(i))
		return;
	use(i);
}
void b(void) {
	struct inode *i = open_node(2);
	if (IS_ERR(i))
		return;
	use(i);
}
void bad(void) {
	struct inode *i = open_node(3);
	i->count = 1;
}
`
	c, col := run(t, src)
	rs := col.ByChecker("iserr")
	if len(rs) != 1 {
		t.Fatalf("reports: %d (%+v)", len(rs), c.Ranked())
	}
	if rs[0].Pos.Line != 16 {
		t.Errorf("site should be the unchecked i->count deref: %v", rs[0].Pos)
	}
}

func TestSpuriousIsErrFlagged(t *testing.T) {
	// Majority treats make_buf as a plain pointer; the IS_ERR caller is
	// the deviant (inverse direction: "must never use IS_ERR").
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, `
void f%d(void) {
	struct buf *p = make_buf(%d);
	if (p == NULL)
		return;
	use(p);
}`, i, i)
	}
	sb.WriteString(`
void odd(void) {
	struct buf *p = make_buf(7);
	if (IS_ERR(p))
		return;
	use(p);
}`)
	_, col := run(t, sb.String())
	rs := col.ByChecker("iserr")
	if len(rs) != 1 {
		t.Fatalf("reports: %d", len(rs))
	}
	if !strings.Contains(rs[0].Message, "never") && !strings.Contains(rs[0].Rule, "never") {
		t.Errorf("should flag the spurious IS_ERR: %+v", rs[0])
	}
}

func TestRankedEvidence(t *testing.T) {
	src := `
void a(void) {
	struct d *x = fn_a(1);
	if (IS_ERR(x)) return;
	use(x);
}
void b(void) {
	struct d *x = fn_a(2);
	x->f = 1;
}
`
	c, _ := run(t, src)
	r := c.Ranked()
	if len(r) != 1 || r[0].Func != "fn_a" {
		t.Fatalf("ranked: %+v", r)
	}
	if r[0].IsErrChecked != 1 || r[0].CheckedOtherly != 1 {
		t.Errorf("counts: %+v", r[0])
	}
}

func TestPassingResolvesAsOther(t *testing.T) {
	src := `
void a(void) {
	struct d *x = fn_b(1);
	if (IS_ERR(x)) return;
	use(x);
}
void b(void) {
	struct d *x = fn_b(2);
	consume(x);
}
`
	c, _ := run(t, src)
	r := c.Ranked()
	if len(r) != 1 || r[0].CheckedOtherly != 1 {
		t.Errorf("passing should resolve as other: %+v", r)
	}
}

func TestReturnResolvesAsOther(t *testing.T) {
	src := `
struct d *wrap(void) {
	struct d *x = fn_c(1);
	return x;
}
void a(void) {
	struct d *x = fn_c(2);
	if (IS_ERR(x)) return;
	use(x);
}
`
	c, _ := run(t, src)
	r := c.Ranked()
	if len(r) != 1 || r[0].CheckedOtherly != 1 || r[0].IsErrChecked != 1 {
		t.Errorf("return should resolve as other: %+v", r)
	}
}

func TestPtrErrNotAUse(t *testing.T) {
	// Extracting the error code with PTR_ERR is part of the discipline,
	// not an unchecked use.
	src := `
int a(void) {
	struct d *x = fn_d(1);
	if (IS_ERR(x))
		return PTR_ERR(x);
	use(x);
	return 0;
}
int b(void) {
	struct d *x = fn_d(2);
	if (IS_ERR(x))
		return PTR_ERR(x);
	use(x);
	return 0;
}
`
	c, col := run(t, src)
	if col.Len() != 0 {
		t.Errorf("PTR_ERR flagged: %+v (ranked %+v)", col.Ranked(), c.Ranked())
	}
}

func TestReassignmentDropsIsErrTracking(t *testing.T) {
	src := `
void a(void) {
	struct d *x = fn_e(1);
	x = other();
	x->f = 1;
}
void b(void) {
	struct d *x = fn_e(2);
	if (IS_ERR(x)) return;
	use(x);
}
`
	c, col := run(t, src)
	rs := col.ByChecker("iserr")
	if len(rs) != 0 {
		t.Errorf("reassigned result flagged: %+v (%+v)", rs, c.Ranked())
	}
}
