// Package reverse derives the rule template "does <a> reverse <b>?"
// (Table 2): on error paths, actions performed earlier (allocation,
// registration, locking) must be undone before the error return. The
// population is error paths containing b; the examples are those where a
// later a reverses it. Error paths are recognized by their return value —
// a negative constant or a null pointer, the error idioms §5.2 lists as
// latent specifications.
package reverse

import (
	"fmt"
	"sort"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/ctoken"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// Limits bound path enumeration per function.
type Limits struct {
	MaxPaths int
	MaxCalls int
}

// DefaultLimits mirror the pairing checker's bounds.
func DefaultLimits() Limits { return Limits{MaxPaths: 128, MaxCalls: 64} }

type callRef struct {
	name string
	pos  ctoken.Pos
}

type pathInfo struct {
	calls   []callRef
	isError bool
}

// Checker accumulates error-path call sequences across a program.
type Checker struct {
	conv   *latent.Conventions
	limits Limits
	paths  []pathInfo
}

// New returns an empty reversal deriver.
func New(conv *latent.Conventions, limits Limits) *Checker {
	return &Checker{conv: conv, limits: limits}
}

// AddFunction enumerates g's paths, recording each path's calls and
// whether it ends in an error return.
func (c *Checker) AddFunction(g *cfg.Graph) {
	var cur []callRef
	paths := 0
	var walk func(b *cfg.Block, onPath map[int]int, isErr bool)
	record := func(isErr bool) {
		if len(cur) == 0 {
			return
		}
		cp := make([]callRef, len(cur))
		copy(cp, cur)
		c.paths = append(c.paths, pathInfo{calls: cp, isError: isErr})
	}
	// Loops unroll once; cyclic traces are abandoned, not recorded as
	// truncated paths (see pairing.AddFunction).
	walk = func(b *cfg.Block, onPath map[int]int, isErr bool) {
		if b == nil || paths >= c.limits.MaxPaths {
			return
		}
		if onPath[b.ID] >= 2 {
			return
		}
		onPath[b.ID]++
		defer func() { onPath[b.ID]-- }()

		mark := len(cur)
		crashed := false
		for _, n := range b.Nodes {
			switch x := n.(type) {
			case *cast.ReturnStmt:
				if isErrorReturn(x.X) {
					isErr = true
				}
			default:
				cur = c.collectCalls(n, cur)
				if c.callsCrash(n) {
					crashed = true
				}
			}
		}
		if b.Cond != nil {
			cur = c.collectCalls(b.Cond, cur)
		}
		if crashed {
			// §5.2: crash paths never continue; nothing to reverse.
			cur = cur[:mark]
			return
		}
		if len(b.Succs) == 0 {
			record(isErr)
			paths++
		} else {
			for _, e := range b.Succs {
				walk(e.To, onPath, isErr)
			}
		}
		cur = cur[:mark]
	}
	walk(g.Entry, map[int]int{}, false)
}

func (c *Checker) collectCalls(n cast.Node, cur []callRef) []callRef {
	cast.Inspect(n, func(m cast.Node) bool {
		if len(cur) >= c.limits.MaxCalls {
			return false
		}
		if call, ok := m.(*cast.CallExpr); ok {
			name := cast.CalleeName(call)
			if name != "" && name != "printk" && !c.conv.IsCrashRoutine(name) {
				cur = append(cur, callRef{name: name, pos: call.Lparen})
			}
		}
		return true
	})
	return cur
}

// callsCrash reports whether node n contains a call to a never-returns
// routine.
func (c *Checker) callsCrash(n cast.Node) bool {
	found := false
	cast.Inspect(n, func(m cast.Node) bool {
		if call, ok := m.(*cast.CallExpr); ok {
			if name := cast.CalleeName(call); name != "" && c.conv.IsCrashRoutine(name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isErrorReturn recognizes the error idioms: return of a negative
// constant, NULL, or an -Exxx identifier.
func isErrorReturn(e cast.Expr) bool {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.UnaryExpr:
		if x.Op != ctoken.Minus {
			return false
		}
		switch y := cast.StripParensAndCasts(x.X).(type) {
		case *cast.IntLit:
			return y.Value > 0
		case *cast.Ident:
			return strings.HasPrefix(y.Name, "E")
		}
		return false
	case *cast.IntLit:
		return false // "return 0" is success
	case *cast.Ident:
		return x.Name == "NULL"
	}
	return false
}

// Fork returns an empty deriver sharing c's configuration, for one
// worker's shard of functions.
func (c *Checker) Fork() *Checker {
	return &Checker{conv: c.conv, limits: c.limits}
}

// Merge appends a fork's recorded paths to c; folding shards in function
// order reproduces the serial path list exactly.
func (c *Checker) Merge(o *Checker) {
	c.paths = append(c.paths, o.paths...)
}

// Reversal is one derived (b, a) instance: a reverses b on error paths.
type Reversal struct {
	Forward, Undo string
	stats.Counter // Checks = error paths with Forward; Errors = unreversed
	Z             float64
	Boost         float64
}

// Score is the ranking score.
func (r Reversal) Score() float64 { return r.Z + r.Boost }

// Derive computes reversal candidates over the recorded error paths.
func (c *Checker) Derive(p0 float64) []Reversal {
	// Candidates: (forward, undo) observed in that order on >= 1 error
	// path.
	candidates := make(map[string]map[string]bool)
	for _, p := range c.paths {
		if !p.isError {
			continue
		}
		first := map[string]int{}
		for i, cr := range p.calls {
			if _, ok := first[cr.name]; !ok {
				first[cr.name] = i
			}
		}
		for b, bi := range first {
			for j := bi + 1; j < len(p.calls); j++ {
				a := p.calls[j].name
				if a == b {
					continue
				}
				if candidates[b] == nil {
					candidates[b] = make(map[string]bool)
				}
				candidates[b][a] = true
			}
		}
	}

	pop := stats.NewPopulation()
	for _, p := range c.paths {
		if !p.isError {
			continue
		}
		first := map[string]int{}
		for i, cr := range p.calls {
			if _, ok := first[cr.name]; !ok {
				first[cr.name] = i
			}
		}
		for b, bi := range first {
			for a := range candidates[b] {
				reversed := false
				for j := bi + 1; j < len(p.calls); j++ {
					if p.calls[j].name == a {
						reversed = true
						break
					}
				}
				pop.Check(b+">"+a, !reversed)
			}
		}
	}

	var out []Reversal
	for _, key := range pop.Keys() {
		b, a, ok := strings.Cut(key, ">")
		if !ok {
			continue
		}
		cnt := pop.Get(key)
		out = append(out, Reversal{
			Forward: b, Undo: a, Counter: cnt,
			Z:     cnt.Z(p0),
			Boost: c.conv.PairBoost(b, a),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(), out[j].Score()
		if si != sj {
			return si > sj
		}
		if out[i].Forward != out[j].Forward {
			return out[i].Forward < out[j].Forward
		}
		return out[i].Undo < out[j].Undo
	})
	return out
}

// Finish derives reversals and reports error paths where a plausible
// reversal is missing.
func (c *Checker) Finish(col *report.Collector, p0 float64, minExamples int, minScore float64) []Reversal {
	revs := c.Derive(p0)
	for _, r := range revs {
		if r.Errors == 0 || r.Examples() < minExamples || r.Score() < minScore {
			continue
		}
		for _, p := range c.paths {
			if !p.isError {
				continue
			}
			for i, cr := range p.calls {
				if cr.name != r.Forward {
					continue
				}
				reversed := false
				for j := i + 1; j < len(p.calls); j++ {
					if p.calls[j].name == r.Undo {
						reversed = true
						break
					}
				}
				if !reversed {
					col.AddStat(
						"reverse",
						fmt.Sprintf("%s must be reversed by %s on error paths", r.Forward, r.Undo),
						cr.pos,
						r.Score(),
						r.Checks,
						r.Examples(),
						fmt.Sprintf("error path does not undo %s with %s (reversed %d/%d elsewhere)",
							r.Forward, r.Undo, r.Examples(), r.Checks),
					)
				}
				break
			}
		}
	}
	return revs
}

// ErrorPathCount returns how many error paths were recorded.
func (c *Checker) ErrorPathCount() int {
	n := 0
	for _, p := range c.paths {
		if p.isError {
			n++
		}
	}
	return n
}
