package reverse

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

func build(t *testing.T, src string) *Checker {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(conv, DefaultLimits())
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			c.AddFunction(cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine}))
		}
	}
	return c
}

func find(revs []Reversal, fwd, undo string) (Reversal, bool) {
	for _, r := range revs {
		if r.Forward == fwd && r.Undo == undo {
			return r, true
		}
	}
	return Reversal{}, false
}

func TestErrorPathRecognition(t *testing.T) {
	c := build(t, `
int f(int x) {
	setup_dev();
	if (x < 0)
		return -1;
	return 0;
}
`)
	if got := c.ErrorPathCount(); got != 1 {
		t.Errorf("error paths: %d", got)
	}
}

func TestErrnoStyleReturn(t *testing.T) {
	c := build(t, `
int f(int x) {
	setup_dev();
	if (x < 0)
		return -EINVAL;
	return 0;
}
`)
	if got := c.ErrorPathCount(); got != 1 {
		t.Errorf("-EINVAL path not recognized: %d", got)
	}
}

func TestDeriveReversal(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, `
int f%d(int x) {
	buf_alloc(%d);
	if (x < 0) {
		buf_free(%d);
		return -1;
	}
	return 0;
}`, i, i, i)
	}
	// The deviant error path forgets the cleanup.
	sb.WriteString(`
int leak(int x) {
	buf_alloc(9);
	if (x < 0)
		return -1;
	return 0;
}`)
	c := build(t, sb.String())
	revs := c.Derive(stats.DefaultP0)
	r, ok := find(revs, "buf_alloc", "buf_free")
	if !ok {
		t.Fatalf("reversal not derived: %+v", revs)
	}
	if r.Checks != 7 || r.Errors != 1 {
		t.Errorf("counts: %+v", r)
	}
	if r.Boost <= 0 {
		t.Errorf("alloc/free should get the latent boost: %+v", r)
	}

	col := report.NewCollector()
	c.Finish(col, stats.DefaultP0, 2, 0)
	rs := col.ByChecker("reverse")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "buf_free") {
		t.Errorf("message: %s", rs[0].Message)
	}
}

func TestSuccessPathsNotCounted(t *testing.T) {
	// The success path does not free (ownership transfers): that is not
	// an error-path violation.
	c := build(t, `
int f(int x) {
	buf_alloc(1);
	if (x < 0) {
		buf_free(1);
		return -1;
	}
	register_buf();
	return 0;
}
`)
	revs := c.Derive(stats.DefaultP0)
	if r, ok := find(revs, "buf_alloc", "buf_free"); !ok || r.Errors != 0 {
		t.Errorf("success path wrongly counted: %+v", revs)
	}
}

func TestNoErrorPathsNoCandidates(t *testing.T) {
	c := build(t, `
int f(void) {
	open_dev();
	close_dev();
	return 0;
}
`)
	if len(c.Derive(stats.DefaultP0)) != 0 {
		t.Errorf("no error paths, no candidates: %+v", c.Derive(stats.DefaultP0))
	}
}
