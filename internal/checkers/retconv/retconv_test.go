package retconv

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
	"deviant/internal/csem"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) ([]Finding, *report.Collector) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	prog := csem.Analyze([]*cast.File{f})
	col := report.NewCollector()
	findings := New(prog, latent.Default()).Run(col)
	return findings, col
}

// iface builds N same-interface open() implementations with the given
// error-return constants.
func iface(consts ...string) string {
	var sb strings.Builder
	sb.WriteString("struct ops { int (*open)(int n); };\n")
	for i, c := range consts {
		fmt.Fprintf(&sb, "int open%d(int n) { if (n < 0) return %s; return 0; }\n", i, c)
	}
	for i := range consts {
		fmt.Fprintf(&sb, "struct ops o%d = { .open = open%d };\n", i, i)
	}
	return sb.String()
}

func TestMinorityPositiveFlagged(t *testing.T) {
	findings, col := run(t, iface("-1", "-1", "-1", "-1", "1"))
	if len(findings) != 1 {
		t.Fatalf("findings: %+v", findings)
	}
	if findings[0].Func != "open4" || findings[0].Majority != "negative" {
		t.Errorf("finding: %+v", findings[0])
	}
	rs := col.ByChecker("retconv")
	if len(rs) != 1 || !strings.Contains(rs[0].Message, "open4") {
		t.Errorf("reports: %+v", rs)
	}
}

func TestMinorityNegativeFlagged(t *testing.T) {
	findings, _ := run(t, iface("1", "1", "1", "-1"))
	if len(findings) != 1 || findings[0].Func != "open3" || findings[0].Majority != "positive" {
		t.Fatalf("findings: %+v", findings)
	}
}

func TestUnanimousSilent(t *testing.T) {
	findings, _ := run(t, iface("-1", "-2", "-3"))
	if len(findings) != 0 {
		t.Errorf("unanimous class flagged: %+v", findings)
	}
}

func TestTieSilent(t *testing.T) {
	findings, _ := run(t, iface("-1", "1"))
	if len(findings) != 0 {
		t.Errorf("no majority, no belief: %+v", findings)
	}
}

func TestErrnoIdentifiersCount(t *testing.T) {
	findings, _ := run(t, iface("-EINVAL", "-EIO", "-ENOMEM", "7"))
	if len(findings) != 1 || findings[0].Func != "open3" {
		t.Fatalf("findings: %+v", findings)
	}
}

func TestNonInterfaceFunctionsIgnored(t *testing.T) {
	src := `
int lonely_pos(int n) { if (n < 0) return 1; return 0; }
int lonely_neg(int n) { if (n < 0) return -1; return 0; }
`
	findings, _ := run(t, src)
	if len(findings) != 0 {
		t.Errorf("functions outside interfaces compared: %+v", findings)
	}
}
