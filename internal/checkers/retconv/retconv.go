// Package retconv cross-checks error-return conventions across interface
// equivalence classes (§4.2: "Example contradictions in these categories
// include: ... a returns positive integers to signal errors, b returns
// negative integers"). All implementations of the same interface must
// produce the same error behavior; a member whose sign convention
// contradicts its siblings is flagged, with the majority convention as
// evidence.
package retconv

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/csem"
	"deviant/internal/ctoken"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// convention classifies a function's non-zero constant returns.
type convention int

const (
	convNone convention = iota // no constant error returns observed
	convNeg                    // returns negative constants
	convPos                    // returns positive constants
	convBoth                   // mixes both (unclassifiable)
)

type funcConv struct {
	conv   convention
	posPos ctoken.Pos // site of the first positive constant return
	negPos ctoken.Pos
}

// Checker cross-checks one program.
type Checker struct {
	prog *csem.Program
	conv *latent.Conventions
	p0   float64
}

// New returns a return-convention checker for prog.
func New(prog *csem.Program, conv *latent.Conventions) *Checker {
	return &Checker{prog: prog, conv: conv, p0: stats.DefaultP0}
}

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0 }

func classify(fd *cast.FuncDecl) funcConv {
	var fc funcConv
	cast.Inspect(fd.Body, func(n cast.Node) bool {
		ret, ok := n.(*cast.ReturnStmt)
		if !ok || ret.X == nil {
			return true
		}
		switch r := cast.StripParensAndCasts(ret.X).(type) {
		case *cast.UnaryExpr:
			if r.Op == ctoken.Minus {
				if !fc.negPos.IsValid() {
					fc.negPos = ret.ReturnPos
				}
				fc.conv |= convNeg
			}
		case *cast.IntLit:
			if r.Value > 0 {
				if !fc.posPos.IsValid() {
					fc.posPos = ret.ReturnPos
				}
				fc.conv |= convPos
			}
		}
		return true
	})
	return fc
}

// Finding is one convention contradiction.
type Finding struct {
	Class    string
	Func     string
	Pos      ctoken.Pos
	Majority string
	Minority string
	Z        float64
}

// Run cross-checks every interface class and reports contradictions.
func (c *Checker) Run(col *report.Collector) []Finding {
	var out []Finding
	classes := c.prog.InterfaceClasses()
	names := make([]string, 0, len(classes))
	for k := range classes {
		names = append(names, k)
	}
	sort.Strings(names)

	for _, class := range names {
		members := classes[class]
		convs := make(map[string]funcConv, len(members))
		neg, pos := 0, 0
		for _, m := range members {
			fd, ok := c.prog.Funcs[m]
			if !ok {
				continue
			}
			fc := classify(fd)
			convs[m] = fc
			switch fc.conv {
			case convNeg:
				neg++
			case convPos:
				pos++
			}
		}
		total := neg + pos
		if total < 2 || neg == 0 || pos == 0 {
			continue // unanimous or not enough evidence
		}
		majority, minority := "negative", "positive"
		majCount := neg
		flagPos := true
		if pos > neg {
			majority, minority = "positive", "negative"
			majCount = pos
			flagPos = false
		} else if pos == neg {
			continue // no majority, no belief
		}
		z := stats.Z(total, majCount, c.p0)
		for _, m := range members {
			fc := convs[m]
			if (flagPos && fc.conv == convPos) || (!flagPos && fc.conv == convNeg) {
				site := fc.posPos
				if !flagPos {
					site = fc.negPos
				}
				out = append(out, Finding{
					Class: class, Func: m, Pos: site,
					Majority: majority, Minority: minority, Z: z,
				})
				col.AddStat("retconv",
					fmt.Sprintf("implementations of %s must return %s error codes", class, majority),
					site, z, total, majCount,
					fmt.Sprintf("%s returns %s error constants; %d of %d %s implementations return %s ones",
						m, minority, majCount, total, class, majority))
			}
		}
	}
	return out
}
