package fail

import (
	"fmt"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
)

func run(t *testing.T, src string) (*Checker, *report.Collector) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	conv := latent.Default()
	c := New(conv)
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, c, col, engine.Options{Memoize: true})
		}
	}
	c.Finish(col)
	return c, col
}

func TestCheckedUseIsExample(t *testing.T) {
	src := `
void f(void) {
	struct buf *p = kmalloc(10);
	if (p == NULL)
		return;
	p->len = 0;
}
`
	c, col := run(t, src)
	got := c.Counter("kmalloc")
	if got.Checks != 1 || got.Errors != 0 {
		t.Errorf("kmalloc: %+v", got)
	}
	if col.Len() != 0 {
		t.Errorf("no errors expected")
	}
}

func TestUncheckedDerefIsError(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, `
void f%d(void) {
	struct buf *p = kmalloc(10);
	if (!p)
		return;
	p->len = %d;
}`, i, i)
	}
	sb.WriteString(`
void bad(void) {
	struct buf *p = kmalloc(10);
	p->len = 99;
}`)
	c, col := run(t, sb.String())
	got := c.Counter("kmalloc")
	if got.Checks != 10 || got.Errors != 1 {
		t.Fatalf("kmalloc: %+v", got)
	}
	rs := col.ByChecker("fail")
	if len(rs) != 1 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "kmalloc") || rs[0].Counter.Examples != 9 {
		t.Errorf("report: %+v", rs[0])
	}
}

func TestNeverCheckedNotReported(t *testing.T) {
	// current() never fails in anyone's belief; unchecked use is fine.
	src := `
void f(void) {
	struct task *t = get_current();
	t->state = 1;
}
void g(void) {
	struct task *t = get_current();
	t->state = 2;
}
`
	_, col := run(t, src)
	if col.Len() != 0 {
		t.Errorf("never-checked callee reported: %d", col.Len())
	}
}

func TestInversePrinciple(t *testing.T) {
	src := `
void f(void) {
	struct task *t = get_current();
	t->state = 1;
}
void g(void) {
	struct task *t = get_current();
	t->state = 2;
}
void h(void) {
	struct buf *p = kmalloc(4);
	if (!p)
		return;
	p->len = 1;
}
`
	c, _ := run(t, src)
	inv := c.InverseRanked()
	if len(inv) == 0 || inv[0].Func != "get_current" {
		t.Errorf("inverse ranking should put never-fails first: %+v", inv)
	}
}

func TestAllocBoostInRanking(t *testing.T) {
	src := `
void f(void) {
	struct b *p = dev_alloc(4);
	if (!p) return;
	p->x = 1;
}
void g(void) {
	struct b *q = misc_fn(4);
	if (!q) return;
	q->x = 1;
}
`
	c, _ := run(t, src)
	r := c.Ranked()
	if len(r) != 2 || r[0].Func != "dev_alloc" {
		t.Errorf("alloc boost should win ties: %+v", r)
	}
}

func TestComparisonWithConstIsCheck(t *testing.T) {
	src := `
void f(void) {
	int *fd = open_chan(1);
	if (fd == 0)
		return;
	*fd = 7;
}
`
	c, _ := run(t, src)
	if got := c.Counter("open_chan"); got.Errors != 0 || got.Checks != 1 {
		t.Errorf("const compare counts as check: %+v", got)
	}
}

func TestReassignmentDropsTracking(t *testing.T) {
	src := `
void f(struct b *other) {
	struct b *p = make_buf();
	p = other;
	p->x = 1;
}
`
	c, _ := run(t, src)
	if got := c.Counter("make_buf"); got.Checks != 0 {
		t.Errorf("reassigned result should not count: %+v", got)
	}
}

func TestRankingOrdersEvidence(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "void a%d(void) { struct b *p = strong_alloc(1); if (!p) return; p->x = 1; }\n", i)
	}
	sb.WriteString("void abad(void) { struct b *p = strong_alloc(1); p->x = 2; }\n")
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&sb, "void w%d(void) { struct b *p = weak_fn(1); if (!p) return; p->x = 1; }\n", i)
	}
	sb.WriteString("void wbad(void) { struct b *p = weak_fn(1); p->x = 2; }\n")
	_, col := run(t, sb.String())
	rs := col.ByChecker("fail")
	if len(rs) != 2 {
		t.Fatalf("reports: %+v", rs)
	}
	if !strings.Contains(rs[0].Message, "strong_alloc") {
		t.Errorf("stronger evidence should rank first: %+v", rs)
	}
}
