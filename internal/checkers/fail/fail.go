// Package fail derives the rule template "can routine <f> fail?" from
// code (Section 8 / Table 2). The population is uses of f's result; the
// examples are results checked (against null or truth-tested) before use.
// A dereference of an unchecked result is an error candidate, ranked by
// the z statistic of f's evidence, boosted when f's name looks like an
// allocator (latent specification).
//
// The inverse principle applies too: InverseRanked ranks routines that
// are essentially never checked — checking such a routine's result is
// itself deviant (a spurious check).
package fail

import (
	"fmt"
	"sort"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// maxSitesPerFunc bounds recorded unchecked-use sites per callee.
const maxSitesPerFunc = 64

// Checker accumulates evidence across a program.
type Checker struct {
	conv *latent.Conventions
	p0   float64

	pop      *stats.Population       // key: callee name
	errSites map[string][]ctoken.Pos // unchecked dereference sites
	// checkSites records one example site per callee for diagnostics.
	checkSites map[string]ctoken.Pos
}

// New returns an empty can-fail deriver.
func New(conv *latent.Conventions) *Checker {
	return &Checker{
		conv:       conv,
		p0:         stats.DefaultP0,
		pop:        stats.NewPopulation(),
		errSites:   make(map[string][]ctoken.Pos),
		checkSites: make(map[string]ctoken.Pos),
	}
}

// Name implements engine.Checker.
func (c *Checker) Name() string { return "fail" }

// SetP0 overrides the expected example probability used for z ranking
// (deviant's -p0 flag; defaults to stats.DefaultP0).
func (c *Checker) SetP0(p0 float64) { c.p0 = p0 }

type tracked struct {
	callee  string
	checked bool
}

// state maps variable keys to the call whose fresh result they hold.
type state struct {
	vars map[string]tracked
}

func (s *state) Clone() engine.State {
	ns := &state{}
	if len(s.vars) > 0 {
		ns.vars = make(map[string]tracked, len(s.vars))
		for k, v := range s.vars {
			ns.vars[k] = v
		}
	}
	return ns
}

func (s *state) Key() string {
	if len(s.vars) == 0 {
		return ""
	}
	return string(s.AppendKey(nil))
}

// AppendKey implements engine.AppendKeyer: the tracked bindings in
// ascending key order, built without allocating.
func (s *state) AppendKey(b []byte) []byte {
	for k := engine.NextKey(s.vars, ""); k != ""; k = engine.NextKey(s.vars, k) {
		v := s.vars[k]
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, v.callee...)
		if v.checked {
			b = append(b, 'c')
		} else {
			b = append(b, 'u')
		}
		b = append(b, ';')
	}
	return b
}

// NewState implements engine.Checker. The tracked-result map is
// allocated on first binding: most functions never bind a checked
// callee's result, and the engine creates one state per function plus
// one per branch clone.
func (c *Checker) NewState(*cast.FuncDecl) engine.State {
	return &state{}
}

func keyOf(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name
	case *cast.MemberExpr:
		base := keyOf(x.X)
		if base == "" {
			return ""
		}
		if x.Arrow {
			return base + "->" + x.Member
		}
		return base + "." + x.Member
	}
	return ""
}

// callResult returns the callee name if e is (a cast of) a direct call.
func callResult(e cast.Expr) string {
	e = cast.StripParensAndCasts(e)
	if call, ok := e.(*cast.CallExpr); ok {
		return cast.CalleeName(call)
	}
	return ""
}

// Event implements engine.Checker.
func (c *Checker) Event(st engine.State, ev *engine.Event, ctx *engine.Ctx) {
	s := st.(*state)
	switch ev.Kind {
	case engine.EvDecl:
		if ev.Decl.Init != nil {
			c.bind(s, ev.Decl.Name, ev.Decl.Init)
		}
	case engine.EvAssign:
		if k := keyOf(ev.LHS); k != "" {
			if ev.RHS != nil {
				c.bind(s, k, ev.RHS)
			} else {
				delete(s.vars, k)
			}
		}
	case engine.EvDeref:
		k := keyOf(ev.Ptr)
		if k == "" {
			return
		}
		tr, ok := s.vars[k]
		if !ok {
			return
		}
		// One outcome per tracked result: either it was checked first
		// (example) or this dereference is unchecked (counter-example).
		c.pop.Check(tr.callee, !tr.checked)
		if !tr.checked {
			if len(c.errSites[tr.callee]) < maxSitesPerFunc {
				c.errSites[tr.callee] = append(c.errSites[tr.callee], ev.Pos)
			}
		} else if _, seen := c.checkSites[tr.callee]; !seen {
			c.checkSites[tr.callee] = ev.Pos
		}
		delete(s.vars, k)
	}
}

func (c *Checker) bind(s *state, key string, rhs cast.Expr) {
	if callee := callResult(rhs); callee != "" {
		if s.vars == nil {
			s.vars = make(map[string]tracked)
		}
		s.vars[key] = tracked{callee: callee}
		return
	}
	delete(s.vars, key)
}

// Branch implements engine.Checker: a null comparison or truth test of a
// tracked variable marks the result checked on both arms. (The checked
// bit records that the programmer tested the result at all; which arm
// survives is the null checker's business, not ours.)
func (c *Checker) Branch(st engine.State, cond cast.Expr, val bool, ctx *engine.Ctx) {
	s := st.(*state)
	key := checkedVar(cond)
	if key == "" {
		return
	}
	if tr, ok := s.vars[key]; ok && !tr.checked {
		tr.checked = true
		s.vars[key] = tr
	}
}

// checkedVar extracts the variable a branch condition tests against
// null/zero, or "" if the condition has another shape.
func checkedVar(cond cast.Expr) string {
	switch x := cast.StripParensAndCasts(cond).(type) {
	case *cast.CallExpr:
		// A predicate applied to the result (IS_ERR(d), unlikely(!p))
		// counts as checking it.
		if len(x.Args) == 1 {
			return keyOf(x.Args[0])
		}
		return ""
	case *cast.BinaryExpr:
		if x.Op != ctoken.EqEq && x.Op != ctoken.NotEq &&
			x.Op != ctoken.Lt && x.Op != ctoken.Le &&
			x.Op != ctoken.Gt && x.Op != ctoken.Ge {
			return ""
		}
		if k := keyOf(x.X); k != "" && isConstish(x.Y) {
			return k
		}
		if k := keyOf(x.Y); k != "" && isConstish(x.X) {
			return k
		}
		return ""
	default:
		return keyOf(cond)
	}
}

func isConstish(e cast.Expr) bool {
	switch x := cast.StripParensAndCasts(e).(type) {
	case *cast.IntLit:
		return true
	case *cast.UnaryExpr:
		return x.Op == ctoken.Minus && isConstish(x.X)
	case *cast.Ident:
		return x.Name == "NULL"
	}
	return false
}

// FuncEnd implements engine.Checker.
func (c *Checker) FuncEnd(engine.State, *engine.Ctx) {}

// Fork returns an empty checker sharing c's configuration, for one
// worker's shard of functions.
func (c *Checker) Fork() *Checker { f := New(c.conv); f.p0 = c.p0; return f }

// Merge folds a fork's evidence into c: counters sum, error-site lists
// concatenate in merge order (re-truncated to the cap), and the earliest
// merge wins a callee's representative check site — so folding shards in
// function order reproduces the serial accumulators exactly.
func (c *Checker) Merge(o *Checker) {
	c.pop.Merge(o.pop)
	for k, v := range o.errSites {
		s := append(c.errSites[k], v...)
		if len(s) > maxSitesPerFunc {
			s = s[:maxSitesPerFunc]
		}
		c.errSites[k] = s
	}
	for k, v := range o.checkSites {
		if _, ok := c.checkSites[k]; !ok {
			c.checkSites[k] = v
		}
	}
}

// Derived is the evidence for one routine.
type Derived struct {
	Func string
	stats.Counter
	Z     float64
	Boost float64
}

// Score is the ranking score (z plus allocator-name boost).
func (d Derived) Score() float64 { return d.Z + d.Boost }

// Ranked returns the derived "can fail" instances ordered by score.
func (c *Checker) Ranked() []Derived {
	var out []Derived
	for _, key := range c.pop.Keys() {
		cnt := c.pop.Get(key)
		boost := 0.0
		if c.conv.LooksAlloc(key) {
			boost = 1.0
		}
		out = append(out, Derived{Func: key, Counter: cnt, Z: cnt.Z(c.p0), Boost: boost})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(), out[j].Score()
		if si != sj {
			return si > sj
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// InverseRanked ranks the negated template "F never fails" (§5's inverse
// principle): functions whose results are essentially never checked.
func (c *Checker) InverseRanked() []Derived {
	var out []Derived
	for _, key := range c.pop.Keys() {
		cnt := c.pop.Get(key)
		out = append(out, Derived{
			Func: key, Counter: cnt,
			Z: stats.ZInverse(cnt.Checks, cnt.Examples(), c.p0),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Z != out[j].Z {
			return out[i].Z > out[j].Z
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// Counter exposes one routine's evidence.
func (c *Checker) Counter(fn string) stats.Counter { return c.pop.Get(fn) }

// Finish reports unchecked uses of results from routines that are checked
// elsewhere, ranked by the routine's z.
func (c *Checker) Finish(col *report.Collector) {
	for _, d := range c.Ranked() {
		if d.Errors == 0 || d.Examples() == 0 {
			continue
		}
		rule := fmt.Sprintf("result of %s must be checked before use", d.Func)
		for _, pos := range c.errSites[d.Func] {
			col.AddStat("fail", rule, pos, d.Score(), d.Checks, d.Examples(),
				fmt.Sprintf("result of %s dereferenced without a check; %d/%d callers check it",
					d.Func, d.Examples(), d.Checks))
		}
	}
}
