package arena

import "testing"

func TestNewAndNewFrom(t *testing.T) {
	var a Arena[int]
	seen := make(map[*int]bool)
	for i := 0; i < 3*maxSlab; i++ {
		p := a.NewFrom(i)
		if *p != i {
			t.Fatalf("NewFrom(%d) = %d", i, *p)
		}
		if seen[p] {
			t.Fatalf("pointer %p handed out twice", p)
		}
		seen[p] = true
	}
}

func TestSlabGrowth(t *testing.T) {
	var a Arena[int]
	a.New()
	if len(a.slab)+1 != minSlab {
		t.Fatalf("first slab size %d, want %d", len(a.slab)+1, minSlab)
	}
	for i := 0; i < 10*maxSlab; i++ {
		a.New()
	}
	if a.next != maxSlab {
		t.Fatalf("slab growth not capped: next = %d", a.next)
	}
}

func TestSlice(t *testing.T) {
	var a Arena[byte]
	if s := a.Slice(0); s != nil {
		t.Fatalf("Slice(0) = %v, want nil", s)
	}
	s1 := a.Slice(10)
	s2 := a.Slice(10)
	if len(s1) != 10 || len(s2) != 10 {
		t.Fatalf("bad lengths %d %d", len(s1), len(s2))
	}
	// Appending to a full-capacity arena slice must not clobber neighbors.
	if cap(s1) != 10 {
		t.Fatalf("cap(s1) = %d, want 10", cap(s1))
	}
	s1 = append(s1, 0xFF)
	for i, b := range s2 {
		if b != 0 {
			t.Fatalf("append to s1 clobbered s2[%d] = %#x", i, b)
		}
	}
	// Oversized requests fall through to direct allocation.
	big := a.Slice(maxSlab + 1)
	if len(big) != maxSlab+1 {
		t.Fatalf("big slice len %d", len(big))
	}
	// A request that does not fit the current slab's remainder starts a
	// fresh slab and still returns the full length.
	var b Arena[int]
	b.Slice(minSlab - 2)
	s := b.Slice(maxSlab)
	if len(s) != maxSlab {
		t.Fatalf("cross-slab slice len %d", len(s))
	}
}
