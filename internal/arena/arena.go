// Package arena implements slab allocation for the frontend's per-unit
// object populations: tokens and AST nodes.
//
// The frontend allocates millions of small, identically-typed objects per
// run, almost all of which share one lifetime — they live exactly as long
// as the translation unit's artifacts (or die at the end of the unit's
// frontend pass). Allocating each from the general heap costs an object
// header, a size-class lookup and a GC mark per node. An Arena hands out
// objects by bump pointer from typed slabs instead: one heap allocation
// per slab, one GC mark per slab, and wholesale release — when the last
// reference into a unit's artifacts drops (its snapshot entry is evicted,
// or no snapshot store is attached and the run's Result dies), every slab
// goes with it in one sweep.
//
// Slabs grow geometrically from minSlab to maxSlab, like append: a unit
// with a dozen nodes of some type wastes at most a small first slab,
// while a unit with thousands converges to one allocation per maxSlab
// nodes. With one arena per hot node type per unit, that keeps the tail
// waste of small units negligible.
//
// Arenas are single-goroutine by design: the pipeline creates one per
// translation unit inside that unit's frontend worker. Objects handed out
// by an arena are ordinary Go pointers and may be retained anywhere;
// "freed wholesale" is the normal GC reclaiming unreferenced slabs, never
// manual invalidation, so a dangling arena pointer is impossible.
package arena

const (
	minSlab = 16
	maxSlab = 512
)

// Arena bump-allocates values of type T from typed slabs.
type Arena[T any] struct {
	slab []T // current slab; allocation slices off the front
	next int // size of the next slab (geometric, capped at maxSlab)
}

// grow replaces the exhausted slab with the next one, at least min long.
func (a *Arena[T]) grow(min int) {
	n := a.next
	if n < minSlab {
		n = minSlab
	}
	if n < min {
		n = min
	}
	a.slab = make([]T, n)
	if n < maxSlab {
		a.next = n * 2
	} else {
		a.next = maxSlab
	}
}

// New returns a pointer to a zeroed T from the arena.
func (a *Arena[T]) New() *T {
	if len(a.slab) == 0 {
		a.grow(1)
	}
	p := &a.slab[0]
	a.slab = a.slab[1:]
	return p
}

// NewFrom returns a pointer to a copy of v placed in the arena.
func (a *Arena[T]) NewFrom(v T) *T {
	p := a.New()
	*p = v
	return p
}

// Slice returns a zeroed []T of length n from the arena. Slices longer
// than a slab fall through to a direct allocation; short ones pack
// together. The returned slice has capacity exactly n — appending to it
// reallocates rather than clobbering a neighbor.
func (a *Arena[T]) Slice(n int) []T {
	if n == 0 {
		return nil
	}
	if n > maxSlab {
		return make([]T, n)
	}
	if len(a.slab) < n {
		a.grow(n)
	}
	s := a.slab[:n:n]
	a.slab = a.slab[n:]
	return s
}
