// Package engine applies checkers down the execution paths of a CFG,
// memoizing checker state per basic block — the analysis core of xgcc
// (§3.5: "the extensions are applied down each execution path in that
// function. The system memoizes extension results, making the analyses
// usually roughly linear in code length").
//
// A checker supplies a state (cloneable, with a canonical Key), receives a
// stream of events (dereferences, calls, assignments, uses, returns) plus
// branch assumptions, and reports errors through the shared collector.
package engine

import (
	"strconv"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/ctoken"
	"deviant/internal/obs"
	"deviant/internal/report"
)

// State is a checker's per-path analysis state.
type State interface {
	// Clone returns an independent copy.
	Clone() State
	// Key canonically encodes the state for memoization. Two states with
	// equal keys must behave identically for the rest of the path.
	Key() string
}

// AppendKeyer is an optional fast path for State.Key: AppendKey appends
// the same canonical encoding to b and returns it, letting the engine
// build memo keys in a reused buffer instead of allocating a string per
// block visit. Implementations must keep AppendKey and Key consistent.
type AppendKeyer interface {
	AppendKey(b []byte) []byte
}

// NextKey returns the smallest non-empty key of m strictly greater than
// prev, or "" when none remains. Starting from prev == "" and feeding
// each result back in visits every non-empty key in ascending order
// without allocating — the building block for AppendKey implementations
// over the small per-path maps of checker states. Callers must not use
// "" as a map key (checker slot keys never are).
func NextKey[V any](m map[string]V, prev string) string {
	next := ""
	for k := range m {
		if k > prev && (next == "" || k < next) {
			next = k
		}
	}
	return next
}

// EventKind discriminates events.
type EventKind int

// Event kinds.
const (
	// EvDeref: Ptr was dereferenced (*p, p->f, p[i]).
	EvDeref EventKind = iota
	// EvUse: an identifier or member chain was read (Expr holds it).
	EvUse
	// EvCall: Call holds the call expression.
	EvCall
	// EvAssign: LHS = RHS (RHS nil for ++/--).
	EvAssign
	// EvDecl: Decl holds a local declaration (Init handled as assign).
	EvDecl
	// EvReturn: Expr holds the returned value (nil for bare return).
	EvReturn
	// EvStmtEnd marks the end of one statement-level unit; checkers that
	// count per-statement (the lock checker's access counting) flush
	// transient buffers here. Transient per-statement state need not be
	// part of State.Key since units never span memoization points.
	EvStmtEnd
)

// Event is one action on a path.
type Event struct {
	Kind EventKind
	Ptr  cast.Expr // EvDeref: the pointer operand
	Expr cast.Expr // EvUse / EvReturn payload
	Call *cast.CallExpr
	LHS  cast.Expr
	RHS  cast.Expr
	Decl *cast.VarDecl
	Pos  ctoken.Pos
}

// Ctx gives checkers access to the surrounding function and the report
// collector.
type Ctx struct {
	Fn      *cast.FuncDecl
	File    string
	Reports *report.Collector
}

// Checker is the interface analyses implement; it corresponds to one
// metal extension.
type Checker interface {
	// Name identifies the checker in reports.
	Name() string
	// NewState returns the state at function entry.
	NewState(fn *cast.FuncDecl) State
	// Event processes one straight-line action, mutating st.
	Event(st State, ev *Event, ctx *Ctx)
	// Branch incorporates the assumption that cond evaluated to val,
	// mutating st (called once per outgoing CFG edge with a cloned st).
	Branch(st State, cond cast.Expr, val bool, ctx *Ctx)
	// FuncEnd is called when a path reaches the function exit.
	FuncEnd(st State, ctx *Ctx)
}

// Options tunes the traversal.
type Options struct {
	// Memoize prunes (block, state) pairs already visited. Disabling it
	// reproduces naive exhaustive path exploration (the E10 ablation).
	Memoize bool
	// MaxVisits bounds total block visits as a safety valve; <= 0 means
	// the default.
	MaxVisits int
	// LoopBound bounds how many times a block may repeat on one path
	// when memoization is off; <= 0 means the default of 2.
	LoopBound int
	// Span, when non-nil, is the tracing parent: Run emits one "engine"
	// span per function under it (attrs: func, checker). Nil costs one
	// pointer check per Run.
	Span *obs.Span
	// Deadline, when non-zero, is a wall-clock budget: traversal stops
	// once the clock passes it and RunStats.DeadlineExceeded is set.
	// The clock is sampled every deadlineStride visits, so overrun is
	// bounded by the cost of that many visits, not by path length.
	Deadline time.Time
}

// DefaultMaxVisits bounds traversal work per function.
const DefaultMaxVisits = 200000

// deadlineStride is how many block visits pass between clock samples
// when Options.Deadline is set.
const deadlineStride = 64

// RunStats reports traversal effort, used by the scalability experiment.
type RunStats struct {
	Visits           int  // block visits performed
	MemoHits         int  // visits skipped by memoization
	Truncated        bool // hit MaxVisits
	DeadlineExceeded bool // hit Options.Deadline
}

type runner struct {
	g      *cfg.Graph
	ch     Checker
	ctx    Ctx
	opts   Options
	memo   map[string]bool
	onPath map[int]int
	stats  RunStats

	// ev is the shared event scratch: events are delivered synchronously
	// and checkers do not retain the *Event past the call (they keep the
	// AST nodes it points at, which live independently), so one Event per
	// runner replaces one allocation per emitted event.
	ev Event
	// keyBuf is the reused memo-key buffer; map lookups convert it with
	// a non-escaping string conversion, so only first-time inserts copy.
	keyBuf []byte
}

// fire delivers ev to the checker through the shared scratch slot.
func (r *runner) fire(st State, ev Event) {
	r.ev = ev
	r.ch.Event(st, &r.ev, &r.ctx)
}

// A Runner amortizes per-function traversal state — the memoization
// table, path counters and key buffer — across many Run calls. Reusing
// one Runner per worker goroutine drops the per-function allocation
// count to the states the checker itself creates. The zero value is
// ready to use; a Runner must not be shared between goroutines.
type Runner struct {
	r runner
}

// Run applies ch to every path of g and returns traversal statistics.
func (rn *Runner) Run(g *cfg.Graph, ch Checker, col *report.Collector, opts Options) RunStats {
	if opts.MaxVisits <= 0 {
		opts.MaxVisits = DefaultMaxVisits
	}
	if opts.LoopBound <= 0 {
		opts.LoopBound = 2
	}
	if opts.Span != nil {
		// Fork, not Child: shards of one checker run concurrently, and
		// forked spans get their own trace lanes.
		sp := opts.Span.Fork("engine", obs.A("func", g.Fn.Name), obs.A("checker", ch.Name()))
		defer sp.End()
	}
	r := &rn.r
	r.g = g
	r.ch = ch
	r.ctx = Ctx{Fn: g.Fn, File: g.Fn.NamePos.File, Reports: col}
	r.opts = opts
	r.stats = RunStats{}
	if r.memo == nil {
		r.memo = make(map[string]bool)
	} else {
		clear(r.memo)
	}
	if r.onPath == nil {
		r.onPath = make(map[int]int)
	} else {
		clear(r.onPath)
	}
	st := ch.NewState(g.Fn)
	r.visit(g.Entry, st, r.onPath)
	// Drop the per-call references so a retained Runner does not pin a
	// finished function's graph or checker between calls.
	r.g, r.ch, r.ctx = nil, nil, Ctx{}
	return r.stats
}

// Run applies ch to every path of g and returns traversal statistics.
// It is the single-shot form of Runner.Run; loops over many functions
// should reuse a Runner.
func Run(g *cfg.Graph, ch Checker, col *report.Collector, opts Options) RunStats {
	var rn Runner
	return rn.Run(g, ch, col, opts)
}

// visit processes blk under st. onPath counts per-block occurrences on the
// current path (loop bounding for the unmemoized mode).
func (r *runner) visit(blk *cfg.Block, st State, onPath map[int]int) {
	if blk == nil || r.stats.Truncated || r.stats.DeadlineExceeded {
		return
	}
	if r.stats.Visits >= r.opts.MaxVisits {
		r.stats.Truncated = true
		return
	}
	if !r.opts.Deadline.IsZero() && r.stats.Visits%deadlineStride == 0 &&
		time.Now().After(r.opts.Deadline) {
		r.stats.DeadlineExceeded = true
		return
	}
	if r.opts.Memoize {
		b := strconv.AppendInt(r.keyBuf[:0], int64(blk.ID), 10)
		b = append(b, '|')
		if ak, ok := st.(AppendKeyer); ok {
			b = ak.AppendKey(b)
		} else {
			b = append(b, st.Key()...)
		}
		r.keyBuf = b
		if r.memo[string(b)] {
			r.stats.MemoHits++
			return
		}
		r.memo[string(b)] = true
	} else {
		if onPath[blk.ID] >= r.opts.LoopBound {
			return
		}
		onPath[blk.ID]++
		defer func() { onPath[blk.ID]-- }()
	}
	r.stats.Visits++

	for _, n := range blk.Nodes {
		r.node(st, n)
		r.fire(st, Event{Kind: EvStmtEnd, Pos: n.Pos()})
	}
	if blk.Cond != nil {
		r.emitExpr(st, blk.Cond)
		r.fire(st, Event{Kind: EvStmtEnd, Pos: blk.Cond.Pos()})
	}

	if len(blk.Succs) == 0 || blk == r.g.Exit {
		r.ch.FuncEnd(st, &r.ctx)
		if blk == r.g.Exit {
			return
		}
	}
	for i, e := range blk.Succs {
		// The last edge takes ownership of st instead of cloning: st is
		// dead after this loop, so straight-line code (one successor)
		// traverses with zero state copies. Traversal order, and hence
		// every report, is unchanged.
		next := st
		if i < len(blk.Succs)-1 {
			next = st.Clone()
		}
		if blk.Cond != nil {
			r.ch.Branch(next, blk.Cond, e.Branch, &r.ctx)
		}
		r.visit(e.To, next, onPath)
	}
}

func (r *runner) node(st State, n cast.Node) {
	switch x := n.(type) {
	case *cast.VarDecl:
		if x.Init != nil {
			r.emitExpr(st, x.Init)
		}
		r.fire(st, Event{Kind: EvDecl, Decl: x, Pos: x.NamePos})
	case *cast.ReturnStmt:
		// The returned expression's events were emitted when the builder
		// placed it ahead of the ReturnStmt node; the builder emits the
		// expr as part of the return unit here instead:
		r.fire(st, Event{Kind: EvReturn, Expr: x.X, Pos: x.ReturnPos})
	case cast.Expr:
		r.emitExpr(st, x)
	}
}

// emitExpr walks e in evaluation order emitting events.
func (r *runner) emitExpr(st State, e cast.Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *cast.Ident:
		r.fire(st, Event{Kind: EvUse, Expr: x, Pos: x.NamePos})
	case *cast.IntLit, *cast.FloatLit, *cast.CharLit, *cast.StringLit, *cast.SizeofTypeExpr:
		return
	case *cast.UnaryExpr:
		switch x.Op {
		case ctoken.Star:
			r.emitExpr(st, x.X)
			r.fire(st, Event{Kind: EvDeref, Ptr: x.X, Pos: x.OpPos})
		case ctoken.KwSizeof:
			// sizeof does not evaluate its operand: no events.
			return
		case ctoken.Inc, ctoken.Dec:
			r.emitExpr(st, x.X)
			r.fire(st, Event{Kind: EvAssign, LHS: x.X, Pos: x.OpPos})
		case ctoken.Amp:
			// &x computes an address; if x itself contains dereferences
			// they still count, but a bare &ident is not a use.
			if _, isIdent := x.X.(*cast.Ident); !isIdent {
				r.emitExpr(st, x.X)
			}
		default:
			r.emitExpr(st, x.X)
		}
	case *cast.PostfixExpr:
		r.emitExpr(st, x.X)
		r.fire(st, Event{Kind: EvAssign, LHS: x.X, Pos: x.X.Pos()})
	case *cast.BinaryExpr:
		r.emitExpr(st, x.X)
		r.emitExpr(st, x.Y)
	case *cast.AssignExpr:
		r.emitExpr(st, x.R)
		// LHS: inner dereferences happen, and the location is written.
		r.emitLValue(st, x.L)
		r.fire(st, Event{Kind: EvAssign, LHS: x.L, RHS: x.R, Pos: x.L.Pos()})
	case *cast.CondExpr:
		r.emitExpr(st, x.Cond)
		// Both arms are emitted on this path: a deliberate approximation
		// (in-expression ternaries are rare in the code we check).
		r.emitExpr(st, x.Then)
		r.emitExpr(st, x.Else)
	case *cast.CallExpr:
		if _, isIdent := x.Fun.(*cast.Ident); !isIdent {
			r.emitExpr(st, x.Fun)
		}
		for _, a := range x.Args {
			r.emitExpr(st, a)
		}
		r.fire(st, Event{Kind: EvCall, Call: x, Pos: x.Lparen})
	case *cast.IndexExpr:
		r.emitExpr(st, x.X)
		r.emitExpr(st, x.Index)
		r.fire(st, Event{Kind: EvDeref, Ptr: x.X, Pos: x.X.Pos()})
	case *cast.MemberExpr:
		r.emitExpr(st, x.X)
		if x.Arrow {
			r.fire(st, Event{Kind: EvDeref, Ptr: x.X, Pos: x.MemPos})
		}
		r.fire(st, Event{Kind: EvUse, Expr: x, Pos: x.MemPos})
	case *cast.CastExpr:
		r.emitExpr(st, x.X)
	case *cast.CommaExpr:
		r.emitExpr(st, x.X)
		r.emitExpr(st, x.Y)
	case *cast.InitListExpr:
		for _, it := range x.Items {
			r.emitExpr(st, it)
		}
	}
}

// emitLValue emits the evaluation events of an assignment target: the
// address computation evaluates (and dereferences) everything except the
// outermost location itself.
func (r *runner) emitLValue(st State, l cast.Expr) {
	switch x := l.(type) {
	case *cast.Ident:
		// Writing an ident evaluates nothing.
	case *cast.UnaryExpr:
		if x.Op == ctoken.Star {
			r.emitExpr(st, x.X)
			r.fire(st, Event{Kind: EvDeref, Ptr: x.X, Pos: x.OpPos})
			return
		}
		r.emitExpr(st, x)
	case *cast.MemberExpr:
		r.emitExpr(st, x.X)
		if x.Arrow {
			r.fire(st, Event{Kind: EvDeref, Ptr: x.X, Pos: x.MemPos})
		}
	case *cast.IndexExpr:
		r.emitExpr(st, x.X)
		r.emitExpr(st, x.Index)
		r.fire(st, Event{Kind: EvDeref, Ptr: x.X, Pos: x.X.Pos()})
	default:
		r.emitExpr(st, l)
	}
}
