// Package engine applies checkers down the execution paths of a CFG,
// memoizing checker state per basic block — the analysis core of xgcc
// (§3.5: "the extensions are applied down each execution path in that
// function. The system memoizes extension results, making the analyses
// usually roughly linear in code length").
//
// A checker supplies a state (cloneable, with a canonical Key), receives a
// stream of events (dereferences, calls, assignments, uses, returns) plus
// branch assumptions, and reports errors through the shared collector.
package engine

import (
	"strconv"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/ctoken"
	"deviant/internal/obs"
	"deviant/internal/report"
)

// State is a checker's per-path analysis state.
type State interface {
	// Clone returns an independent copy.
	Clone() State
	// Key canonically encodes the state for memoization. Two states with
	// equal keys must behave identically for the rest of the path.
	Key() string
}

// EventKind discriminates events.
type EventKind int

// Event kinds.
const (
	// EvDeref: Ptr was dereferenced (*p, p->f, p[i]).
	EvDeref EventKind = iota
	// EvUse: an identifier or member chain was read (Expr holds it).
	EvUse
	// EvCall: Call holds the call expression.
	EvCall
	// EvAssign: LHS = RHS (RHS nil for ++/--).
	EvAssign
	// EvDecl: Decl holds a local declaration (Init handled as assign).
	EvDecl
	// EvReturn: Expr holds the returned value (nil for bare return).
	EvReturn
	// EvStmtEnd marks the end of one statement-level unit; checkers that
	// count per-statement (the lock checker's access counting) flush
	// transient buffers here. Transient per-statement state need not be
	// part of State.Key since units never span memoization points.
	EvStmtEnd
)

// Event is one action on a path.
type Event struct {
	Kind EventKind
	Ptr  cast.Expr // EvDeref: the pointer operand
	Expr cast.Expr // EvUse / EvReturn payload
	Call *cast.CallExpr
	LHS  cast.Expr
	RHS  cast.Expr
	Decl *cast.VarDecl
	Pos  ctoken.Pos
}

// Ctx gives checkers access to the surrounding function and the report
// collector.
type Ctx struct {
	Fn      *cast.FuncDecl
	File    string
	Reports *report.Collector
}

// Checker is the interface analyses implement; it corresponds to one
// metal extension.
type Checker interface {
	// Name identifies the checker in reports.
	Name() string
	// NewState returns the state at function entry.
	NewState(fn *cast.FuncDecl) State
	// Event processes one straight-line action, mutating st.
	Event(st State, ev *Event, ctx *Ctx)
	// Branch incorporates the assumption that cond evaluated to val,
	// mutating st (called once per outgoing CFG edge with a cloned st).
	Branch(st State, cond cast.Expr, val bool, ctx *Ctx)
	// FuncEnd is called when a path reaches the function exit.
	FuncEnd(st State, ctx *Ctx)
}

// Options tunes the traversal.
type Options struct {
	// Memoize prunes (block, state) pairs already visited. Disabling it
	// reproduces naive exhaustive path exploration (the E10 ablation).
	Memoize bool
	// MaxVisits bounds total block visits as a safety valve; <= 0 means
	// the default.
	MaxVisits int
	// LoopBound bounds how many times a block may repeat on one path
	// when memoization is off; <= 0 means the default of 2.
	LoopBound int
	// Span, when non-nil, is the tracing parent: Run emits one "engine"
	// span per function under it (attrs: func, checker). Nil costs one
	// pointer check per Run.
	Span *obs.Span
	// Deadline, when non-zero, is a wall-clock budget: traversal stops
	// once the clock passes it and RunStats.DeadlineExceeded is set.
	// The clock is sampled every deadlineStride visits, so overrun is
	// bounded by the cost of that many visits, not by path length.
	Deadline time.Time
}

// DefaultMaxVisits bounds traversal work per function.
const DefaultMaxVisits = 200000

// deadlineStride is how many block visits pass between clock samples
// when Options.Deadline is set.
const deadlineStride = 64

// RunStats reports traversal effort, used by the scalability experiment.
type RunStats struct {
	Visits           int  // block visits performed
	MemoHits         int  // visits skipped by memoization
	Truncated        bool // hit MaxVisits
	DeadlineExceeded bool // hit Options.Deadline
}

type runner struct {
	g     *cfg.Graph
	ch    Checker
	ctx   *Ctx
	opts  Options
	memo  map[string]bool
	stats RunStats
}

// Run applies ch to every path of g and returns traversal statistics.
func Run(g *cfg.Graph, ch Checker, col *report.Collector, opts Options) RunStats {
	if opts.MaxVisits <= 0 {
		opts.MaxVisits = DefaultMaxVisits
	}
	if opts.LoopBound <= 0 {
		opts.LoopBound = 2
	}
	if opts.Span != nil {
		// Fork, not Child: shards of one checker run concurrently, and
		// forked spans get their own trace lanes.
		sp := opts.Span.Fork("engine", obs.A("func", g.Fn.Name), obs.A("checker", ch.Name()))
		defer sp.End()
	}
	r := &runner{
		g:    g,
		ch:   ch,
		ctx:  &Ctx{Fn: g.Fn, File: g.Fn.NamePos.File, Reports: col},
		opts: opts,
		memo: make(map[string]bool),
	}
	st := ch.NewState(g.Fn)
	r.visit(g.Entry, st, make(map[int]int))
	return r.stats
}

// visit processes blk under st. onPath counts per-block occurrences on the
// current path (loop bounding for the unmemoized mode).
func (r *runner) visit(blk *cfg.Block, st State, onPath map[int]int) {
	if blk == nil || r.stats.Truncated || r.stats.DeadlineExceeded {
		return
	}
	if r.stats.Visits >= r.opts.MaxVisits {
		r.stats.Truncated = true
		return
	}
	if !r.opts.Deadline.IsZero() && r.stats.Visits%deadlineStride == 0 &&
		time.Now().After(r.opts.Deadline) {
		r.stats.DeadlineExceeded = true
		return
	}
	if r.opts.Memoize {
		k := stateKey(blk.ID, st)
		if r.memo[k] {
			r.stats.MemoHits++
			return
		}
		r.memo[k] = true
	} else {
		if onPath[blk.ID] >= r.opts.LoopBound {
			return
		}
		onPath[blk.ID]++
		defer func() { onPath[blk.ID]-- }()
	}
	r.stats.Visits++

	for _, n := range blk.Nodes {
		r.node(st, n)
		r.ch.Event(st, &Event{Kind: EvStmtEnd, Pos: n.Pos()}, r.ctx)
	}
	if blk.Cond != nil {
		emitExpr(blk.Cond, func(ev *Event) { r.ch.Event(st, ev, r.ctx) })
		r.ch.Event(st, &Event{Kind: EvStmtEnd, Pos: blk.Cond.Pos()}, r.ctx)
	}

	if len(blk.Succs) == 0 || blk == r.g.Exit {
		r.ch.FuncEnd(st, r.ctx)
		if blk == r.g.Exit {
			return
		}
	}
	for _, e := range blk.Succs {
		next := st.Clone()
		if blk.Cond != nil {
			r.ch.Branch(next, blk.Cond, e.Branch, r.ctx)
		}
		r.visit(e.To, next, onPath)
	}
}

func (r *runner) node(st State, n cast.Node) {
	emit := func(ev *Event) { r.ch.Event(st, ev, r.ctx) }
	switch x := n.(type) {
	case *cast.VarDecl:
		if x.Init != nil {
			emitExpr(x.Init, emit)
		}
		emit(&Event{Kind: EvDecl, Decl: x, Pos: x.NamePos})
	case *cast.ReturnStmt:
		// The returned expression's events were emitted when the builder
		// placed it ahead of the ReturnStmt node; the builder emits the
		// expr as part of the return unit here instead:
		emit(&Event{Kind: EvReturn, Expr: x.X, Pos: x.ReturnPos})
	case cast.Expr:
		emitExpr(x, emit)
	}
}

func stateKey(blockID int, st State) string {
	return strconv.Itoa(blockID) + "|" + st.Key()
}

// emitExpr walks e in evaluation order emitting events.
func emitExpr(e cast.Expr, emit func(*Event)) {
	switch x := e.(type) {
	case nil:
		return
	case *cast.Ident:
		emit(&Event{Kind: EvUse, Expr: x, Pos: x.NamePos})
	case *cast.IntLit, *cast.FloatLit, *cast.CharLit, *cast.StringLit, *cast.SizeofTypeExpr:
		return
	case *cast.UnaryExpr:
		switch x.Op {
		case ctoken.Star:
			emitExpr(x.X, emit)
			emit(&Event{Kind: EvDeref, Ptr: x.X, Pos: x.OpPos})
		case ctoken.KwSizeof:
			// sizeof does not evaluate its operand: no events.
			return
		case ctoken.Inc, ctoken.Dec:
			emitExpr(x.X, emit)
			emit(&Event{Kind: EvAssign, LHS: x.X, Pos: x.OpPos})
		case ctoken.Amp:
			// &x computes an address; if x itself contains dereferences
			// they still count, but a bare &ident is not a use.
			if _, isIdent := x.X.(*cast.Ident); !isIdent {
				emitExpr(x.X, emit)
			}
		default:
			emitExpr(x.X, emit)
		}
	case *cast.PostfixExpr:
		emitExpr(x.X, emit)
		emit(&Event{Kind: EvAssign, LHS: x.X, Pos: x.X.Pos()})
	case *cast.BinaryExpr:
		emitExpr(x.X, emit)
		emitExpr(x.Y, emit)
	case *cast.AssignExpr:
		emitExpr(x.R, emit)
		// LHS: inner dereferences happen, and the location is written.
		emitLValue(x.L, emit)
		emit(&Event{Kind: EvAssign, LHS: x.L, RHS: x.R, Pos: x.L.Pos()})
	case *cast.CondExpr:
		emitExpr(x.Cond, emit)
		// Both arms are emitted on this path: a deliberate approximation
		// (in-expression ternaries are rare in the code we check).
		emitExpr(x.Then, emit)
		emitExpr(x.Else, emit)
	case *cast.CallExpr:
		if _, isIdent := x.Fun.(*cast.Ident); !isIdent {
			emitExpr(x.Fun, emit)
		}
		for _, a := range x.Args {
			emitExpr(a, emit)
		}
		emit(&Event{Kind: EvCall, Call: x, Pos: x.Lparen})
	case *cast.IndexExpr:
		emitExpr(x.X, emit)
		emitExpr(x.Index, emit)
		emit(&Event{Kind: EvDeref, Ptr: x.X, Pos: x.X.Pos()})
	case *cast.MemberExpr:
		emitExpr(x.X, emit)
		if x.Arrow {
			emit(&Event{Kind: EvDeref, Ptr: x.X, Pos: x.MemPos})
		}
		emit(&Event{Kind: EvUse, Expr: x, Pos: x.MemPos})
	case *cast.CastExpr:
		emitExpr(x.X, emit)
	case *cast.CommaExpr:
		emitExpr(x.X, emit)
		emitExpr(x.Y, emit)
	case *cast.InitListExpr:
		for _, it := range x.Items {
			emitExpr(it, emit)
		}
	}
}

// emitLValue emits the evaluation events of an assignment target: the
// address computation evaluates (and dereferences) everything except the
// outermost location itself.
func emitLValue(l cast.Expr, emit func(*Event)) {
	switch x := l.(type) {
	case *cast.Ident:
		// Writing an ident evaluates nothing.
	case *cast.UnaryExpr:
		if x.Op == ctoken.Star {
			emitExpr(x.X, emit)
			emit(&Event{Kind: EvDeref, Ptr: x.X, Pos: x.OpPos})
			return
		}
		emitExpr(x, emit)
	case *cast.MemberExpr:
		emitExpr(x.X, emit)
		if x.Arrow {
			emit(&Event{Kind: EvDeref, Ptr: x.X, Pos: x.MemPos})
		}
	case *cast.IndexExpr:
		emitExpr(x.X, emit)
		emitExpr(x.Index, emit)
		emit(&Event{Kind: EvDeref, Ptr: x.X, Pos: x.X.Pos()})
	default:
		emitExpr(l, emit)
	}
}
