package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/cparse"
	"deviant/internal/report"
)

// traceState records nothing; the checker is stateless so all paths memo
// together after joins.
type traceState struct{ id string }

func (s *traceState) Clone() State { return &traceState{id: s.id} }
func (s *traceState) Key() string  { return s.id }

// traceChecker records the event stream.
type traceChecker struct {
	events   []string
	branches []string
	ends     int
}

func (c *traceChecker) Name() string                  { return "trace" }
func (c *traceChecker) NewState(*cast.FuncDecl) State { return &traceState{} }

func (c *traceChecker) Event(st State, ev *Event, ctx *Ctx) {
	switch ev.Kind {
	case EvDeref:
		c.events = append(c.events, "deref:"+cast.ExprString(ev.Ptr))
	case EvUse:
		c.events = append(c.events, "use:"+cast.ExprString(ev.Expr))
	case EvCall:
		c.events = append(c.events, "call:"+cast.CalleeName(ev.Call))
	case EvAssign:
		c.events = append(c.events, "assign:"+cast.ExprString(ev.LHS))
	case EvDecl:
		c.events = append(c.events, "decl:"+ev.Decl.Name)
	case EvReturn:
		c.events = append(c.events, "return")
	}
}

func (c *traceChecker) Branch(st State, cond cast.Expr, val bool, ctx *Ctx) {
	c.branches = append(c.branches, fmt.Sprintf("%s=%v", cast.ExprString(cond), val))
}

func (c *traceChecker) FuncEnd(st State, ctx *Ctx) { c.ends++ }

func runOn(t *testing.T, src string, opts Options) (*traceChecker, RunStats) {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	var fd *cast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*cast.FuncDecl); ok && x.Body != nil {
			fd = x
			break
		}
	}
	if fd == nil {
		t.Fatal("no function")
	}
	g := cfg.Build(fd, cfg.Options{})
	ch := &traceChecker{}
	col := report.NewCollector()
	stats := Run(g, ch, col, opts)
	return ch, stats
}

func TestEventOrderLinear(t *testing.T) {
	ch, _ := runOn(t, `void f(struct s *p) {
		int x = p->a;
		g(x);
		*p = 1;
	}`, Options{Memoize: true})
	want := []string{
		"use:p", "deref:p", "use:p->a", "decl:x",
		"use:x", "call:g",
		"use:p", "deref:p", "assign:*p",
	}
	if strings.Join(ch.events, ",") != strings.Join(want, ",") {
		t.Errorf("events:\n got %v\nwant %v", ch.events, want)
	}
}

func TestBranchEvents(t *testing.T) {
	ch, _ := runOn(t, "void f(int *p) { if (p == 0) a(); else b(); }", Options{Memoize: true})
	// Two branch applications, one per edge.
	if len(ch.branches) != 2 {
		t.Fatalf("branches: %v", ch.branches)
	}
	joined := strings.Join(ch.branches, ",")
	if !strings.Contains(joined, "=true") || !strings.Contains(joined, "=false") {
		t.Errorf("branches: %v", ch.branches)
	}
}

func TestAssignEmitsRHSBeforeLHS(t *testing.T) {
	ch, _ := runOn(t, "void f(struct s *p, struct s *q) { p->x = q->y; }", Options{Memoize: true})
	want := []string{
		"use:q", "deref:q", "use:q->y",
		"use:p", "deref:p",
		"assign:p->x",
	}
	if strings.Join(ch.events, ",") != strings.Join(want, ",") {
		t.Errorf("events: %v", ch.events)
	}
}

func TestCallArgsEmitted(t *testing.T) {
	ch, _ := runOn(t, "void f(int a, int b) { g(a, h(b)); }", Options{Memoize: true})
	want := []string{"use:a", "use:b", "call:h", "call:g"}
	if strings.Join(ch.events, ",") != strings.Join(want, ",") {
		t.Errorf("events: %v", ch.events)
	}
}

func TestSizeofDoesNotEvaluate(t *testing.T) {
	ch, _ := runOn(t, "void f(struct s *p) { int n = sizeof(*p); use(n); }", Options{Memoize: true})
	for _, e := range ch.events {
		if e == "deref:p" {
			t.Errorf("sizeof operand must not be evaluated: %v", ch.events)
		}
	}
}

func TestFuncEndPerTerminalState(t *testing.T) {
	ch, _ := runOn(t, "int f(int x) { if (x) return 1; return 0; }", Options{Memoize: true})
	// Stateless checker: exit block visited once (memoized).
	if ch.ends < 1 {
		t.Errorf("ends: %d", ch.ends)
	}
}

func TestMemoizationCutsVisits(t *testing.T) {
	// Diamond chains: stateless checker should visit each block once
	// when memoized; unmemoized exploration visits exponentially many.
	src := `void f(int a, int b, int c, int d) {
		if (a) x1(); else y1();
		if (b) x2(); else y2();
		if (c) x3(); else y3();
		if (d) x4(); else y4();
		done();
	}`
	_, memoStats := runOn(t, src, Options{Memoize: true})
	_, rawStats := runOn(t, src, Options{Memoize: false})
	if memoStats.Visits >= rawStats.Visits {
		t.Errorf("memoized %d visits should be fewer than raw %d",
			memoStats.Visits, rawStats.Visits)
	}
	if memoStats.MemoHits == 0 {
		t.Error("expected memo hits on diamond joins")
	}
}

func TestLoopTerminates(t *testing.T) {
	_, stats := runOn(t, `void f(int n) {
		while (n) {
			if (n == 2) step();
			n--;
		}
	}`, Options{Memoize: true})
	if stats.Truncated {
		t.Error("loop analysis should converge via memoization")
	}
	_, stats2 := runOn(t, `void f(int n) {
		while (n) { n--; }
	}`, Options{Memoize: false})
	if stats2.Truncated {
		t.Error("loop bound should terminate unmemoized mode")
	}
}

func TestMaxVisitsTruncates(t *testing.T) {
	src := `void f(int a, int b, int c, int d, int e) {
		if (a) x1(); else y1();
		if (b) x2(); else y2();
		if (c) x3(); else y3();
		if (d) x4(); else y4();
		if (e) x5(); else y5();
	}`
	_, stats := runOn(t, src, Options{Memoize: false, MaxVisits: 5})
	if !stats.Truncated {
		t.Error("tiny MaxVisits should truncate")
	}
}

func TestAmpIdentNotUse(t *testing.T) {
	ch, _ := runOn(t, "void f(int x) { g(&x); h(&p->field); }", Options{Memoize: true})
	joined := strings.Join(ch.events, ",")
	if strings.Contains(joined, "use:x") {
		t.Errorf("&x should not be a use: %v", ch.events)
	}
	if !strings.Contains(joined, "deref:p") {
		t.Errorf("&p->field still dereferences p: %v", ch.events)
	}
}

func TestIndexDerefs(t *testing.T) {
	ch, _ := runOn(t, "void f(int *a, int i) { use(a[i]); }", Options{Memoize: true})
	joined := strings.Join(ch.events, ",")
	if !strings.Contains(joined, "deref:a") {
		t.Errorf("a[i] should deref a: %v", ch.events)
	}
}

func TestIncDecAreAssigns(t *testing.T) {
	ch, _ := runOn(t, "void f(int n) { n++; --n; }", Options{Memoize: true})
	count := 0
	for _, e := range ch.events {
		if e == "assign:n" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("want 2 assigns to n: %v", ch.events)
	}
}

func TestConditionEventsBeforeBranch(t *testing.T) {
	// Dereference inside a condition must be seen as an event.
	ch, _ := runOn(t, "void f(struct s *p) { if (p->flag) a(); }", Options{Memoize: true})
	joined := strings.Join(ch.events, ",")
	if !strings.Contains(joined, "deref:p") {
		t.Errorf("condition deref missing: %v", ch.events)
	}
	if len(ch.branches) != 2 {
		t.Errorf("branches: %v", ch.branches)
	}
}

// gotoChecker verifies that path state flows through goto edges: it
// tracks a single flag set by a call to mark() and asserts the engine
// reports the flag state at done().
type flagState struct{ set bool }

func (s *flagState) Clone() State { return &flagState{set: s.set} }
func (s *flagState) Key() string {
	if s.set {
		return "1"
	}
	return "0"
}

type gotoChecker struct{ doneStates map[string]bool }

func (c *gotoChecker) Name() string                  { return "goto" }
func (c *gotoChecker) NewState(*cast.FuncDecl) State { return &flagState{} }
func (c *gotoChecker) Event(st State, ev *Event, ctx *Ctx) {
	if ev.Kind != EvCall {
		return
	}
	s := st.(*flagState)
	switch cast.CalleeName(ev.Call) {
	case "mark":
		s.set = true
	case "done":
		c.doneStates[s.Key()] = true
	}
}
func (c *gotoChecker) Branch(State, cast.Expr, bool, *Ctx) {}
func (c *gotoChecker) FuncEnd(State, *Ctx)                 {}

func TestStateFlowsThroughGoto(t *testing.T) {
	src := `
void f(int x) {
	if (x)
		goto fin;
	mark();
fin:
	done();
}`
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	var fd *cast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*cast.FuncDecl); ok && x.Body != nil {
			fd = x
		}
	}
	g := cfg.Build(fd, cfg.Options{})
	ch := &gotoChecker{doneStates: map[string]bool{}}
	Run(g, ch, report.NewCollector(), Options{Memoize: true})
	// done() is reachable both with the flag set (fallthrough path) and
	// unset (goto path): the engine must visit it under both states.
	if !ch.doneStates["0"] || !ch.doneStates["1"] {
		t.Errorf("goto state flow: %+v", ch.doneStates)
	}
}

// A deadline already in the past must stop traversal at the very first
// clock sample, before any block is processed; a far-future deadline
// must not perturb the event stream at all.
func TestDeadline(t *testing.T) {
	src := "void f(int a) { if (a) g(); else h(); k(); }"
	_, st := runOn(t, src, Options{Memoize: true, Deadline: time.Now().Add(-time.Second)})
	if !st.DeadlineExceeded {
		t.Fatal("expired deadline did not set DeadlineExceeded")
	}
	if st.Visits != 0 {
		t.Errorf("expired deadline still performed %d visits", st.Visits)
	}

	base, bs := runOn(t, src, Options{Memoize: true})
	far, fs := runOn(t, src, Options{Memoize: true, Deadline: time.Now().Add(time.Hour)})
	if fs.DeadlineExceeded {
		t.Error("far-future deadline reported exceeded")
	}
	if strings.Join(base.events, ",") != strings.Join(far.events, ",") || bs.Visits != fs.Visits {
		t.Errorf("deadline-armed run diverged: %v vs %v (visits %d vs %d)",
			base.events, far.events, bs.Visits, fs.Visits)
	}
}
