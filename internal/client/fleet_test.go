package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"deviant/internal/dist"
	"deviant/internal/service"
)

// Client must satisfy the coordinator's scatter interface.
var _ dist.ShardCaller = (*Client)(nil)

// TestShardAgainstRealService drives the worker endpoint over real HTTP
// and pins request-ID propagation: the header the coordinator sets is
// the header the worker sees, on the first attempt and on retries.
func TestShardAgainstRealService(t *testing.T) {
	s := service.New(service.Config{})
	var rejects atomic.Int64
	var seen atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get(dist.RequestIDHeader))
		// One synthetic 429 forces a retry; the header must survive it.
		if rejects.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		s.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := New(srv.URL)
	tame(c)
	resp, err := c.Shard(context.Background(), &dist.ShardRequest{
		Sources: clientSources(),
		Units:   []string{"m.c"},
	}, "coord-r000007")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Partials) != 1 || resp.Partials[0].Unit != "m.c" {
		t.Fatalf("shard partials: %+v", resp.Partials)
	}
	if got := seen.Load(); got != "coord-r000007" {
		t.Fatalf("request id header on retried attempt = %q", got)
	}

	c.CloseIdleConnections() // must not disturb a live client
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after CloseIdleConnections: %v", err)
	}
}

// TestWithHeaderOnEveryVerb pins the per-request header option across
// the client surface.
func TestWithHeaderOnEveryVerb(t *testing.T) {
	s := service.New(service.Config{})
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Test"))
		s.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := New(srv.URL)
	tame(c)
	opt := WithHeader("X-Test", "yes")
	if _, err := c.Analyze(context.Background(),
		service.AnalyzeRequest{Sources: clientSources()}, opt); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "yes" {
		t.Fatal("analyze dropped the request header")
	}
	got.Store("")
	if _, err := c.Rules(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "yes" {
		t.Fatal("rules dropped the request header")
	}
	got.Store("")
	if _, err := c.Health(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "yes" {
		t.Fatal("health dropped the request header")
	}
}
