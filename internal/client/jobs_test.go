package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"deviant/internal/service"
)

// Regression: a backoff sleep interrupted by context cancellation must
// surface ctx.Err(), not the transient failure the client was waiting
// out. Callers cancel a context to stop the retry loop; getting back
// "connection refused" made cancellation indistinguishable from the
// server staying down.
func TestCanceledBackoffReturnsCtxErr(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // transport errors from now on

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := New(srv.URL)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the caller gives up mid-backoff
		return ctx.Err()
	}
	_, err := c.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// WaitJob keeps polling through injected 503s: a balancer hiccup or a
// briefly-draining server must not abort a poll loop that the job will
// outlive. The 503s are consumed by the per-poll retry discipline,
// honoring Retry-After.
func TestWaitJobRetriesInjected503(t *testing.T) {
	result := `{"units":1,"functions":1,"lines":2,"parse_errors":0,"reports":[],"snapshot":{}}`
	var statusCalls, faults atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/job-7":
			// Fault injection: every other status probe is shed with 503.
			if statusCalls.Add(1)%2 == 1 {
				faults.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
				return
			}
			state := service.JobRunning
			if statusCalls.Load() >= 4 {
				state = service.JobDone
			}
			json.NewEncoder(w).Encode(service.JobStatus{ID: "job-7", Tenant: "t", State: state})
		case "/v1/jobs/job-7/result":
			w.Write([]byte(result))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := New(srv.URL)
	waits := tame(c)
	resp, err := c.WaitJob(context.Background(), "job-7", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Units != 1 {
		t.Fatalf("result units = %d", resp.Units)
	}
	if faults.Load() == 0 {
		t.Fatal("no 503 was injected; test is vacuous")
	}
	// Every injected 503 was waited out on the server's hint, never
	// surfaced to the caller.
	hinted := 0
	for _, w := range *waits {
		if w == time.Second {
			hinted++
		}
	}
	if int64(hinted) != faults.Load() {
		t.Fatalf("%d Retry-After sleeps for %d injected 503s (all waits: %v)",
			hinted, faults.Load(), *waits)
	}
}

// WaitJob outlasting the retry budget: when a draining stretch is long
// enough that the per-poll retry discipline gives up, the waiter itself
// absorbs the 429/503 and keeps polling at the server's Retry-After
// pace — the job outlives the blip, so the waiter must too.
func TestWaitJobOutlastsRetryBudget(t *testing.T) {
	result := `{"units":1,"functions":0,"lines":1,"parse_errors":0,"reports":[],"snapshot":{}}`
	var statusCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/job-3":
			// A draining stretch three polls long, each poll given zero
			// retries: every one of these surfaces as a *StatusError.
			if statusCalls.Add(1) <= 3 {
				w.Header().Set("Retry-After", "2")
				http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
				return
			}
			json.NewEncoder(w).Encode(service.JobStatus{ID: "job-3", Tenant: "t", State: service.JobDone})
		case "/v1/jobs/job-3/result":
			w.Write([]byte(result))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := New(srv.URL, WithMaxRetries(0))
	waits := tame(c)
	resp, err := c.WaitJob(context.Background(), "job-3", 10*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob gave up on a draining server: %v", err)
	}
	if resp.Units != 1 {
		t.Fatalf("result units = %d", resp.Units)
	}
	hinted := 0
	for _, w := range *waits {
		if w == 2*time.Second {
			hinted++
		}
	}
	if hinted != 3 {
		t.Fatalf("want 3 Retry-After-paced waits, got %d (all: %v)", hinted, *waits)
	}
}

// WaitJob never starts a sleep it cannot finish: with the deadline
// nearer than the next poll, a healthy-but-unfinished job surfaces
// DeadlineExceeded immediately, and a failing poll surfaces the real
// failure instead of a later context error.
func TestWaitJobDeadlineCapsPollSleep(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatus{ID: "job-5", Tenant: "t", State: service.JobRunning})
	}))
	defer srv.Close()
	c := New(srv.URL)
	waits := tame(c)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := c.WaitJob(ctx, "job-5", time.Hour)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if len(*waits) != 0 {
		t.Fatalf("slept %v past the deadline", *waits)
	}

	srv503 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
	}))
	defer srv503.Close()
	c2 := New(srv503.URL, WithMaxRetries(0))
	tame(c2)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	var se *StatusError
	if _, err := c2.WaitJob(ctx2, "job-5", time.Hour); !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the 503 StatusError", err)
	}
}

// The job verbs against the real service: submit with a tenant, wait,
// and the result matches what the synchronous path returns for the
// same tree on an equally fresh server.
func TestJobVerbsAgainstRealService(t *testing.T) {
	syncResp, err := New(newServiceURL(t)).Analyze(context.Background(),
		service.AnalyzeRequest{Sources: clientSources()})
	if err != nil {
		t.Fatal(err)
	}

	c := New(newServiceURL(t))
	st, err := c.SubmitJob(context.Background(),
		service.AnalyzeRequest{Sources: clientSources()}, WithTenant("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme" || st.State != service.JobQueued {
		t.Fatalf("submit status: %+v", st)
	}
	resp, err := c.WaitJob(context.Background(), st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(resp)
	want, _ := json.Marshal(syncResp)
	if string(got) != string(want) {
		t.Fatalf("job result differs from sync analyze\n got %s\nwant %s", got, want)
	}

	// Status of a done job, result re-fetch, and the 404 for unknowns.
	if st, err = c.JobStatus(context.Background(), st.ID); err != nil || st.State != service.JobDone {
		t.Fatalf("status after wait: %v %+v", err, st)
	}
	var se *StatusError
	if _, err := c.JobResult(context.Background(), "job-999"); !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("unknown job result: %v, want 404", err)
	}
}

// CancelJob maps the server's answers faithfully: 200 with the updated
// status, and 409 once the job is terminal.
func TestCancelJobVerb(t *testing.T) {
	var canceled atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete {
			http.NotFound(w, r)
			return
		}
		if canceled.Swap(true) {
			http.Error(w, `{"error":"job job-1 already canceled"}`, http.StatusConflict)
			return
		}
		json.NewEncoder(w).Encode(service.JobStatus{ID: "job-1", Tenant: "t", State: service.JobCanceled})
	}))
	defer srv.Close()

	c := New(srv.URL)
	st, err := c.CancelJob(context.Background(), "job-1")
	if err != nil || st.State != service.JobCanceled {
		t.Fatalf("cancel: %v %+v", err, st)
	}
	var se *StatusError
	if _, err := c.CancelJob(context.Background(), "job-1"); !errors.As(err, &se) || se.Status != http.StatusConflict {
		t.Fatalf("double cancel: %v, want 409", err)
	}
}

// newServiceURL boots a fresh real service and returns its base URL.
func newServiceURL(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(service.New(service.Config{}))
	t.Cleanup(srv.Close)
	return srv.URL
}
