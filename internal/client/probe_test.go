package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"deviant/internal/dist"
	"deviant/internal/obs"
	"deviant/internal/service"
)

// TestProbeCallerNoRetries pins the probe half of the client: one
// attempt per call — a prober supplies its own cadence, so the retry
// budget that guards analyses must not blur probe signal — with health
// returning the build record and scrape returning parsed scalars.
func TestProbeCallerNoRetries(t *testing.T) {
	var healthCalls, metricCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			if healthCalls.Add(1) == 1 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			json.NewEncoder(w).Encode(service.HealthResponse{
				Status: "ok",
				Build:  obs.Build{Version: "v9", GoVersion: "go1.24"},
			})
		case "/metrics":
			if metricCalls.Add(1) == 1 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "# TYPE go_goroutines gauge")
			fmt.Fprintln(w, "go_goroutines 7")
			fmt.Fprintln(w, `deviantd_requests_total{endpoint="analyze"} 3`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL)

	// First calls hit the 503 and must NOT retry into the second.
	if _, err := c.ProbeHealth(context.Background()); err == nil {
		t.Fatal("probe swallowed a 503")
	}
	if n := healthCalls.Load(); n != 1 {
		t.Fatalf("probe retried: %d /healthz calls", n)
	}
	if _, err := c.ScrapeMetrics(context.Background()); err == nil {
		t.Fatal("scrape swallowed a 503")
	}
	if n := metricCalls.Load(); n != 1 {
		t.Fatalf("scrape retried: %d /metrics calls", n)
	}

	build, err := c.ProbeHealth(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if build.Version != "v9" || build.GoVersion != "go1.24" {
		t.Fatalf("build = %+v", build)
	}
	samples, err := c.ScrapeMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if s := byName["go_goroutines"]; s.Value != 7 {
		t.Fatalf("go_goroutines = %+v", s)
	}
	if s := byName["deviantd_requests_total"]; s.Value != 3 ||
		len(s.Labels) != 1 || s.Labels[0].Value != "analyze" {
		t.Fatalf("deviantd_requests_total = %+v", s)
	}
}

// TestFleetStatusClient decodes a coordinator's fleet summary through
// the typed client method.
func TestFleetStatusClient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fleet/status" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(dist.FleetStatus{
			Size: 2, Healthy: 1,
			Workers: []dist.WorkerStatus{
				{Name: "a", Healthy: true},
				{Name: "b", Healthy: false, LastError: "health probe failed"},
			},
		})
	}))
	defer srv.Close()

	st, err := New(srv.URL).FleetStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 2 || st.Healthy != 1 || len(st.Workers) != 2 || st.Workers[1].LastError == "" {
		t.Fatalf("fleet status = %+v", st)
	}
}
