package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deviant/internal/service"
)

// tame pins the client's nondeterminism for byte-exact backoff asserts:
// jitter always 0.5, sleeps recorded instead of slept.
func tame(c *Client) *[]time.Duration {
	var waits []time.Duration
	c.rng = func() float64 { return 0.5 }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return ctx.Err()
	}
	return &waits
}

func clientSources() map[string]string {
	return map[string]string{
		"m.c": "void *kmalloc(int n);\nint m(int *p) { if (p) return *p; return 0; }\n",
	}
}

// Transient 429s are retried on the equal-jitter exponential schedule
// and the request eventually succeeds.
func TestRetryScheduleAndSuccess(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			http.Error(w, `{"error":"queue full, retry later"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"units":1,"functions":1,"lines":2,"parse_errors":0,"reports":[],"snapshot":{}}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	waits := tame(c)
	resp, err := c.Analyze(context.Background(), service.AnalyzeRequest{Sources: clientSources()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Units != 1 || attempts.Load() != 3 {
		t.Fatalf("units=%d attempts=%d", resp.Units, attempts.Load())
	}
	// base 100ms: step d doubles per attempt, wait = d/2 + 0.5*(d/2).
	want := []time.Duration{75 * time.Millisecond, 150 * time.Millisecond}
	if len(*waits) != 2 || (*waits)[0] != want[0] || (*waits)[1] != want[1] {
		t.Errorf("waits = %v, want %v", *waits, want)
	}
}

// A Retry-After hint overrides the exponential schedule, clamped to the
// configured ceiling.
func TestRetryAfterHonored(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch attempts.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		case 2:
			w.Header().Set("Retry-After", "9999")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"status":"ok","build":{}}`))
		}
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(100*time.Millisecond, 5*time.Second))
	waits := tame(c)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{3 * time.Second, 5 * time.Second}
	if len(*waits) != 2 || (*waits)[0] != want[0] || (*waits)[1] != want[1] {
		t.Errorf("waits = %v, want %v", *waits, want)
	}
}

// Client faults are final: no retry, and the server's message survives
// into the error.
func TestClientFaultNoRetry(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"no .c translation units in sources"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := New(srv.URL)
	tame(c)
	_, err := c.Analyze(context.Background(), service.AnalyzeRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if !strings.Contains(se.Message, "no .c translation units") {
		t.Errorf("server message lost: %q", se.Message)
	}
	if attempts.Load() != 1 {
		t.Errorf("400 was retried: %d attempts", attempts.Load())
	}
}

// When the budget runs out the last transient error is returned, after
// exactly maxRetries+1 attempts.
func TestRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"queue full, retry later"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := New(srv.URL, WithMaxRetries(2))
	tame(c)
	_, err := c.Rules(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want StatusError 429", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("attempts = %d, want 3", attempts.Load())
	}
}

// A retry that cannot finish before the caller's deadline is never
// started: the client returns the real failure immediately instead of
// sleeping into a context error.
func TestDeadlineBoundsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "10")
		http.Error(w, `{"error":"queue full, retry later"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(100*time.Millisecond, time.Hour))
	waits := tame(c)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Rules(ctx)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the 429, not a context error", err)
	}
	if len(*waits) != 0 {
		t.Errorf("client slept %v despite an unmeetable deadline", *waits)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Errorf("deadline-bounded request took %v", time.Since(start))
	}
}

// Transport-level failures (nothing listening) are retried like 429s.
func TestTransportErrorRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listening at srv.URL now

	c := New(srv.URL, WithMaxRetries(2))
	waits := tame(c)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("dialing a closed server succeeded")
	}
	if len(*waits) != 2 {
		t.Errorf("slept %d times, want 2", len(*waits))
	}
}

// End to end against the real service handler: analyze, rules, health,
// and the draining path whose Retry-After the client obeys.
func TestAgainstRealService(t *testing.T) {
	s := service.New(service.Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	c := New(srv.URL)
	tame(c)
	resp, err := c.Analyze(context.Background(), service.AnalyzeRequest{Sources: clientSources()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Units != 1 || resp.Functions != 1 {
		t.Fatalf("analyze summary: %+v", resp)
	}
	rules, err := c.Rules(context.Background())
	if err != nil || rules.Analysis != 1 {
		t.Fatalf("rules: %v %+v", err, rules)
	}
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %v %+v", err, h)
	}

	s.SetDraining(true)
	c2 := New(srv.URL, WithMaxRetries(1))
	waits := tame(c2)
	_, err = c2.Analyze(context.Background(), service.AnalyzeRequest{Sources: clientSources()})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining: err = %v, want 503", err)
	}
	// The server's queue was empty, so its hint is 1s — and the client
	// used it rather than its own schedule.
	if len(*waits) != 1 || (*waits)[0] != time.Second {
		t.Errorf("draining waits = %v, want [1s]", *waits)
	}
}
