// Package client is a retrying HTTP client for deviantd. It speaks the
// wire types from internal/service and encodes the backoff discipline
// the server's admission control expects: 429 (queue full) and 503
// (draining) are transient and retried with capped, jittered exponential
// backoff, honoring the server's Retry-After hint when present; 4xx
// client faults are returned immediately; and no retry ever sleeps past
// the caller's context deadline — a bounded request stays bounded.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"deviant/internal/dist"
	"deviant/internal/obs"
	"deviant/internal/service"
)

// StatusError is a non-2xx response: the HTTP status plus the server's
// JSON error message (or a summary of the body when it isn't ours).
// RetryAfter carries the server's Retry-After hint (0 when absent), so
// pollers like WaitJob can pace themselves by it even after the inner
// retry budget is spent.
type StatusError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("deviantd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// Client talks to one deviantd base URL.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int           // retries after the first attempt
	baseWait   time.Duration // first backoff step (doubles per attempt)
	maxWait    time.Duration // backoff and Retry-After ceiling

	// Test seams: jitter source and interruptible sleep.
	rng   func() float64
	sleep func(ctx context.Context, d time.Duration) error
}

// Option tunes a Client.
type Option func(*Client)

// RequestOption customizes a single request before it is sent. The
// option is re-applied on every retry attempt, so headers survive
// backoff.
type RequestOption func(*http.Request)

// WithHeader sets one header on the request. The coordinator uses it to
// propagate its request ID to workers, so one distributed run shares
// one ID across every node's structured log.
func WithHeader(key, value string) RequestOption {
	return func(r *http.Request) { r.Header.Set(key, value) }
}

// WithHTTPClient substitutes the underlying transport (default
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries caps how many times a transient failure is retried
// after the first attempt (default 4).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the first backoff step and the ceiling both the
// exponential schedule and Retry-After hints are clamped to
// (defaults 100ms and 5s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseWait, c.maxWait = base, max }
}

// New returns a client for the deviantd at base (e.g.
// "http://127.0.0.1:8477").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         http.DefaultClient,
		maxRetries: 4,
		baseWait:   100 * time.Millisecond,
		maxWait:    5 * time.Second,
		rng:        rand.Float64,
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Analyze runs one analysis request.
func (c *Client) Analyze(ctx context.Context, req service.AnalyzeRequest, opts ...RequestOption) (*service.AnalyzeResponse, error) {
	var resp service.AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Shard runs one worker shard request: the frontend half of a
// distributed analysis, answered with mergeable token-stream partials.
// A non-empty requestID rides the X-Deviant-Request-Id header so the
// worker logs under the coordinator's ID. Client implements
// dist.ShardCaller, so a slice of Clients is a fleet.
func (c *Client) Shard(ctx context.Context, req *dist.ShardRequest, requestID string) (*dist.ShardResponse, error) {
	var opts []RequestOption
	if requestID != "" {
		opts = append(opts, WithHeader(dist.RequestIDHeader, requestID))
	}
	var resp dist.ShardResponse
	if err := c.post(ctx, "/v1/shard", req, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Diff runs one cross-version check.
func (c *Client) Diff(ctx context.Context, req service.DiffRequest, opts ...RequestOption) (*service.DiffResponse, error) {
	var resp service.DiffResponse
	if err := c.post(ctx, "/v1/diff", req, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WithTenant names the submitting tenant on a job request, for the
// server's per-tenant quotas and fair scheduling.
func WithTenant(tenant string) RequestOption {
	return WithHeader(service.TenantHeader, tenant)
}

// SubmitJob queues one analysis asynchronously and returns its handle.
// Quota and queue-pressure 429s are retried on the usual backoff
// schedule; once accepted, poll with JobStatus or block with WaitJob.
func (c *Client) SubmitJob(ctx context.Context, req service.AnalyzeRequest, opts ...RequestOption) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.post(ctx, "/v1/jobs", req, &st, opts); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobStatus fetches one job's current state.
func (c *Client) JobStatus(ctx context.Context, id string, opts ...RequestOption) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, opts); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobResult fetches a finished job's analysis — the same bytes a
// synchronous Analyze of the same tree would have returned. A job that
// is not done answers a *StatusError: 409 while queued/running or
// canceled, 500 for a failed job, 404 for an unknown id.
func (c *Client) JobResult(ctx context.Context, id string, opts ...RequestOption) (*service.AnalyzeResponse, error) {
	var resp service.AnalyzeResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string, opts ...RequestOption) (*service.JobStatus, error) {
	var st service.JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st, opts); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitJob polls a job until it is terminal and returns its result.
// Each poll rides the client's retry discipline, and a poll that STILL
// fails with 429/503 after that budget — the server shedding load, or
// draining for a restart it will come back from — keeps WaitJob waiting
// at the server's Retry-After pace (capped at the backoff ceiling)
// rather than giving up: the job outlives the blip, so the waiter
// should too. Other failures are final. poll <= 0 defaults to 50ms. No
// sleep ever extends past the caller's deadline: when the next wait
// cannot complete in time, WaitJob surfaces the last poll failure (or
// the deadline) instead of burning the remaining budget. A canceled or
// failed job returns the result endpoint's *StatusError; a canceled ctx
// returns ctx.Err().
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration, opts ...RequestOption) (*service.AnalyzeResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		wait := poll
		st, err := c.JobStatus(ctx, id, opts...)
		switch {
		case err == nil:
			switch st.State {
			case service.JobDone, service.JobFailed, service.JobCanceled:
				return c.JobResult(ctx, id, opts...)
			}
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			se, ok := err.(*StatusError)
			if !ok || !retryable(se.Status) {
				return nil, err
			}
			if se.RetryAfter > wait {
				wait = se.RetryAfter
				if wait > c.maxWait {
					wait = c.maxWait
				}
			}
		}
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
			if err != nil {
				return nil, err
			}
			return nil, context.DeadlineExceeded
		}
		if serr := c.sleep(ctx, wait); serr != nil {
			return nil, ctx.Err()
		}
	}
}

// Rules fetches the rule instances derived by the last analysis.
func (c *Client) Rules(ctx context.Context, opts ...RequestOption) (*service.RulesResponse, error) {
	var resp service.RulesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/rules", nil, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health reports the server's liveness and build identity. A draining
// server answers 503, which is returned as a *StatusError after the
// retry budget (it may come back) — callers probing a single moment
// should use a short context.
func (c *Client) Health(ctx context.Context, opts ...RequestOption) (*service.HealthResponse, error) {
	var resp service.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ProbeHealth is the health half of dist.ProbeCaller: one /healthz
// round trip with no retries (a prober supplies its own cadence;
// retrying inside a probe would only blur the signal), returning the
// worker's build identity on success.
func (c *Client) ProbeHealth(ctx context.Context) (obs.Build, error) {
	var resp service.HealthResponse
	if _, err := c.attempt(ctx, http.MethodGet, "/healthz", nil, &resp, nil); err != nil {
		return obs.Build{}, err
	}
	return resp.Build, nil
}

// ScrapeMetrics is the metrics half of dist.ProbeCaller: GET /metrics,
// parsed from the Prometheus text format into scalar samples (histogram
// bucket series are dropped). No retries, like ProbeHealth.
func (c *Client) ScrapeMetrics(ctx context.Context) ([]obs.Sample, error) {
	text, err := c.getRaw(ctx, "/metrics")
	if err != nil {
		return nil, err
	}
	return obs.ParsePrometheus(text), nil
}

// FleetStatus fetches a coordinator's fleet summary.
func (c *Client) FleetStatus(ctx context.Context, opts ...RequestOption) (*dist.FleetStatus, error) {
	var resp dist.FleetStatus
	if err := c.do(ctx, http.MethodGet, "/v1/fleet/status", nil, &resp, opts); err != nil {
		return nil, err
	}
	return &resp, nil
}

// getRaw performs one plain-text GET (non-JSON endpoints: /metrics).
func (c *Client) getRaw(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", &StatusError{Status: resp.StatusCode, Message: errorMessage(data)}
	}
	return string(data), nil
}

// CloseIdleConnections releases the transport's pooled keep-alive
// connections. Fleet coordinators call it on drain so worker sockets
// don't linger past the daemon's shutdown.
func (c *Client) CloseIdleConnections() {
	c.hc.CloseIdleConnections()
}

func (c *Client) post(ctx context.Context, path string, req, out any, opts []RequestOption) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, body, out, opts)
}

// retryable reports whether a status invites another attempt: the two
// load-shedding statuses admission control hands out. Everything else —
// 400s, 413, 500 — would fail identically on a resend.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// do issues one logical request with retries. The body is re-sent from
// the same buffer on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, opts []RequestOption) error {
	var last error
	for attempt := 0; ; attempt++ {
		var hint time.Duration
		resp, err := c.attempt(ctx, method, path, body, out, opts)
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case resp != nil:
			se := err.(*StatusError)
			if !retryable(se.Status) {
				return se
			}
			last = se
			hint = se.RetryAfter
		default:
			last = err // transport error: connection refused, reset, ...
		}
		if attempt >= c.maxRetries {
			return last
		}
		wait := c.backoff(attempt, hint)
		// A retry that cannot complete before the deadline is not worth
		// starting; surface the last real failure instead of a later
		// context error.
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
			return last
		}
		// A canceled backoff sleep means the caller gave up: report the
		// cancellation, not the transient failure we were waiting out —
		// callers select on ctx.Err() to distinguish "you stopped me"
		// from "the server kept refusing".
		if err := c.sleep(ctx, wait); err != nil {
			if ce := ctx.Err(); ce != nil {
				return ce
			}
			return last
		}
	}
}

// attempt runs one HTTP exchange. A non-2xx returns the response (for
// its headers) together with a *StatusError.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any, opts []RequestOption) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, o := range opts {
		o(req)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return resp, &StatusError{Status: resp.StatusCode, Message: errorMessage(data),
			RetryAfter: retryAfterOf(resp)}
	}
	if out == nil {
		return resp, nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return nil, fmt.Errorf("deviantd: decoding %s response: %w", path, err)
	}
	return resp, nil
}

// errorMessage extracts the server's JSON error field, falling back to a
// clipped raw body for responses that aren't deviantd's.
func errorMessage(data []byte) string {
	var e service.ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(data))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// retryAfterOf parses a Retry-After seconds value (0 when absent or not
// an integer; HTTP-date values are rare enough here to ignore).
func retryAfterOf(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff picks the wait before retry number attempt+1: the server's
// hint when it gave one, otherwise equal-jitter exponential — half the
// doubling step deterministic, half random, so synchronized clients
// desynchronize while no one retries absurdly early.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		if hint > c.maxWait {
			return c.maxWait
		}
		return hint
	}
	d := c.baseWait << attempt
	if d > c.maxWait || d <= 0 {
		d = c.maxWait
	}
	half := d / 2
	return half + time.Duration(c.rng()*float64(half))
}
