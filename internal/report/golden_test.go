package report

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"deviant/internal/ctoken"
)

// goldenCollector builds a fixed mix of definite and statistical reports
// covering every JSONReport field combination: definite (no z block),
// statistical with evidence, and a z that is negative (regression guard
// for sign handling in encoding).
func goldenCollector() *Collector {
	c := NewCollector()
	pos := func(file string, line, col int) ctoken.Pos {
		return ctoken.Pos{File: file, Line: line, Col: col}
	}
	c.AddStat("null/check-then-use", "pointer p checked against null",
		pos("drv/card.c", 112, 9), 3.61, 17, 16,
		"pointer p dereferenced after null check")
	c.AddMust("null/use-then-check", "do not check p after dereference",
		pos("drv/card.c", 58, 5), Serious, 3,
		"pointer p checked after unconditional dereference")
	c.AddStat("pairing", "spin_lock must be paired with spin_unlock",
		pos("fs/inode.c", 902, 2), 2.08, 31, 29,
		"exit path missing spin_unlock after spin_lock")
	c.AddMust("redundant/dead-assign", "assignment is never read",
		pos("fs/inode.c", 14, 1), Minor, 0,
		"value assigned to err is overwritten before use")
	c.AddStat("failcheck", "result of kmalloc must be checked before use",
		pos("mm/pool.c", 7, 12), -0.52, 4, 3,
		"unchecked kmalloc result dereferenced")
	return c
}

// The JSON wire shape is a compatibility contract: rank ordering, field
// order within each object, and omission of the evidence block on
// definite reports. Any diff against the golden file is an intentional
// schema change and must be reviewed (regenerate with UPDATE_GOLDEN=1).
func TestJSONReportGolden(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	ranked := goldenCollector().Ranked()
	for i := range ranked {
		if err := enc.Encode(ToJSON(i+1, &ranked[i])); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, filepath.Join("testdata", "json_report.golden"), buf.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file %s updated", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// Field order inside each JSON object is part of the contract (consumers
// diff raw lines); spot-check the serialized key sequence directly.
func TestJSONReportFieldOrder(t *testing.T) {
	r := Report{
		Checker: "pairing", Rule: "a pairs b", Pos: ctoken.Pos{File: "x.c", Line: 1, Col: 2},
		Message: "m", Z: 1.5, Counter: CounterInfo{Checks: 10, Examples: 9},
	}
	b, err := json.Marshal(ToJSON(1, &r))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"rank":1,"checker":"pairing","file":"x.c","line":1,"col":2,"rule":"a pairs b","message":"m","definite":false,"z":1.5,"checks":10,"examples":9}`
	if string(b) != want {
		t.Fatalf("field order drifted:\n got %s\nwant %s", b, want)
	}
	// A definite report must omit the statistical block entirely.
	r.Z = math.NaN()
	b, err = json.Marshal(ToJSON(2, &r))
	if err != nil {
		t.Fatal(err)
	}
	want = `{"rank":2,"checker":"pairing","file":"x.c","line":1,"col":2,"rule":"a pairs b","message":"m","definite":true}`
	if string(b) != want {
		t.Fatalf("definite report shape drifted:\n got %s\nwant %s", b, want)
	}
}
