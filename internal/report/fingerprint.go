// Report fingerprints: stable identities that survive re-analysis.
//
// A report's position (file:line:col) is the wrong identity for
// longitudinal use — it changes whenever unrelated code above the error
// moves — and its rule string is wrong too, because rules embed
// identifier names that refactors rename. The fingerprint replaces both
// with structure: the error's position is expressed relative to a
// structural hash of its enclosing function body (no positions, no raw
// names), and every identifier slot in the rule is rewritten to either
// the defined function's structural hash or the identifier's
// first-occurrence index inside the enclosing function. The result is
// invariant under consistent alpha-renaming and under reordering of
// function definitions — exactly the metamorphic transforms
// internal/fuzzgen uses as the invariance contract — while still
// distinguishing the same rule violated at two different sites.
package report

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
)

// FingerprintVersion prefixes every fingerprint so consumers can detect
// algorithm changes: fingerprints are only comparable within a version.
const FingerprintVersion = "v1"

// extent is one function definition's anchor inside a file: where its
// text begins, the structural hash of its body, and the first-occurrence
// index of every identifier mentioned in it.
type extent struct {
	start  int
	hash   string
	idents map[string]int
}

// Fingerprinter computes stable fingerprints for reports against one
// analyzed corpus. Build it once per run with NewFingerprinter; it is
// read-only afterwards and safe for concurrent use.
type Fingerprinter struct {
	// extents maps a file name to its function extents sorted by start
	// line; a report line is attributed to the greatest extent starting
	// at or before it.
	extents map[string][]extent
	// funcs maps a defined function name to its structural hash (a
	// sorted "+"-join when one name has several distinct definitions),
	// used to rewrite function-name slots in rule strings.
	funcs map[string]string
	// decls maps every other file-scope declared name — globals,
	// typedefs, prototypes, struct members, enumerators — to its
	// declaration position(s). Declarations live in preludes and
	// headers, which the invariance transforms never move, so the
	// position is a stable identity for names a rule mentions but the
	// enclosing function does not (a lock the function failed to take).
	decls map[string]string
}

// NewFingerprinter indexes the parsed files of a run. Files must be the
// same parsed forms the checkers saw so extents line up with report
// positions.
func NewFingerprinter(files []*cast.File) *Fingerprinter {
	fp := &Fingerprinter{
		extents: make(map[string][]extent),
		funcs:   make(map[string]string),
		decls:   make(map[string]string),
	}
	hashes := make(map[string][]string)
	declPos := make(map[string][]string)
	addDecl := func(name string, pos ctoken.Pos) {
		if name == "" {
			return
		}
		declPos[name] = append(declPos[name], pos.String())
	}
	for _, f := range files {
		if f == nil {
			continue
		}
		for _, d := range f.Decls {
			switch x := d.(type) {
			case *cast.FuncDecl:
				if x.Body == nil {
					addDecl(x.Name, x.NamePos)
					continue
				}
				h, ids := funcShape(x)
				hashes[x.Name] = append(hashes[x.Name], h)
				file := x.NamePos.File
				fp.extents[file] = append(fp.extents[file], extent{
					start:  x.NamePos.Line,
					hash:   h,
					idents: ids,
				})
			case *cast.VarDecl:
				addDecl(x.Name, x.NamePos)
			case *cast.TypedefDecl:
				addDecl(x.Name, x.NamePos)
			case *cast.RecordDecl:
				if x.Type != nil {
					addDecl(x.Type.Tag, x.TagPos)
					for _, fld := range x.Type.Fields {
						addDecl(fld.Name, fld.NamePos)
					}
				}
			case *cast.EnumDecl:
				if x.Type != nil {
					addDecl(x.Type.Tag, x.TagPos)
				}
				for _, v := range x.Values {
					addDecl(v.Name, v.NamePos)
				}
			}
		}
	}
	for name, ps := range declPos {
		sort.Strings(ps)
		uniq := ps[:0]
		for i, p := range ps {
			if i == 0 || p != ps[i-1] {
				uniq = append(uniq, p)
			}
		}
		fp.decls[name] = strings.Join(uniq, "+")
	}
	// One name can be defined several times (static functions in
	// different units). Rule-slot rewriting must stay deterministic and
	// transform-invariant, so join the sorted distinct hashes: the join
	// is the same no matter which definition order the files arrived in.
	for name, hs := range hashes {
		sort.Strings(hs)
		uniq := hs[:0]
		for i, h := range hs {
			if i == 0 || h != hs[i-1] {
				uniq = append(uniq, h)
			}
		}
		fp.funcs[name] = strings.Join(uniq, "+")
	}
	for file := range fp.extents {
		exts := fp.extents[file]
		sort.Slice(exts, func(i, j int) bool { return exts[i].start < exts[j].start })
	}
	return fp
}

// Fingerprint computes the stable identity of one report:
//
//	v1:<hex> where hex = sha256(checker \x00 normalized-rule \x00 structural-position)[:10]
//
// The structural position is "<body-hash>:+<line-offset>:<col>" for a
// report inside a known function extent, or the raw "file:line:col" for
// reports outside any function (prelude and header lines, which the
// invariance transforms never move).
func (fp *Fingerprinter) Fingerprint(r *Report) string {
	pos, ids := fp.structPos(r.Pos)
	h := sha256.New()
	h.Write([]byte(r.Checker))
	h.Write([]byte{0})
	h.Write([]byte(fp.normRule(r.Rule, ids)))
	h.Write([]byte{0})
	h.Write([]byte(pos))
	sum := h.Sum(nil)
	return FingerprintVersion + ":" + hex.EncodeToString(sum[:10])
}

// structPos renders a report position structurally and returns the
// enclosing function's identifier index (nil outside any function).
func (fp *Fingerprinter) structPos(pos ctoken.Pos) (string, map[string]int) {
	exts := fp.extents[pos.File]
	// Greatest extent starting at or before the report line. Function
	// texts are contiguous, so this is the enclosing definition.
	i := sort.Search(len(exts), func(i int) bool { return exts[i].start > pos.Line })
	if i == 0 {
		return pos.File + ":" + strconv.Itoa(pos.Line) + ":" + strconv.Itoa(pos.Col), nil
	}
	ext := &exts[i-1]
	return ext.hash + ":+" + strconv.Itoa(pos.Line-ext.start) + ":" + strconv.Itoa(pos.Col), ext.idents
}

// normRule rewrites the identifier slots of a rule string: a defined
// function name becomes F(<its structural hash>), any other identifier
// mentioned in the enclosing function becomes L<first-occurrence index>,
// a file-scope declared name becomes G(<its declaration position>), and
// everything else — the rule template's fixed words and punctuation —
// passes through verbatim. The scan mirrors the fuzzgen alpha-rename
// word scanner so the two agree on what an identifier token is.
func (fp *Fingerprinter) normRule(rule string, ids map[string]int) string {
	var b strings.Builder
	b.Grow(len(rule))
	i, n := 0, len(rule)
	for i < n {
		c := rule[i]
		if !isWordStart(c) {
			b.WriteByte(c)
			i++
			continue
		}
		j := i
		for j < n && isWordCont(rule[j]) {
			j++
		}
		word := rule[i:j]
		if h, ok := fp.funcs[word]; ok {
			b.WriteString("F(")
			b.WriteString(h)
			b.WriteString(")")
		} else if idx, ok := ids[word]; ok {
			b.WriteString("L")
			b.WriteString(strconv.Itoa(idx))
		} else if pos, ok := fp.decls[word]; ok {
			b.WriteString("G(")
			b.WriteString(pos)
			b.WriteString(")")
		} else {
			b.WriteString(word)
		}
		i = j
	}
	return b.String()
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordCont(c byte) bool { return isWordStart(c) || (c >= '0' && c <= '9') }

// funcShape hashes a function definition's structure: node kinds,
// operator kinds, literal texts, arity, and identifiers normalized to
// their first-occurrence index. No positions and no raw names enter the
// hash, so it is invariant under consistent renaming and under moving
// the function's text. It also returns the identifier index used for
// the normalization, keyed by original name, for rule-slot rewriting.
func funcShape(fd *cast.FuncDecl) (string, map[string]int) {
	ids := make(map[string]int)
	buf := make([]byte, 0, 512)
	idx := func(name string) int {
		if i, ok := ids[name]; ok {
			return i
		}
		i := len(ids)
		ids[name] = i
		return i
	}
	emit := func(tag byte, vals ...int) {
		buf = append(buf, tag)
		for _, v := range vals {
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
	}
	emitText := func(tag byte, s string) {
		buf = append(buf, tag)
		buf = append(buf, s...)
		buf = append(buf, 0, ';')
	}
	b01 := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}

	cast.Inspect(fd, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.FuncDecl:
			emit('f', len(x.Params), b01(x.Variadic), b01(x.Static), b01(x.Inline))
		case *cast.ParamDecl:
			emit('p', idx(x.Name))
		case *cast.VarDecl:
			emit('v', idx(x.Name), b01(x.Init != nil), b01(x.Static))
		case *cast.CompoundStmt:
			emit('B', len(x.List))
		case *cast.ExprStmt:
			emit('E', b01(x.X != nil))
		case *cast.DeclStmt:
			emit('D', len(x.Decls))
		case *cast.IfStmt:
			emit('I', b01(x.Else != nil))
		case *cast.WhileStmt:
			emit('W')
		case *cast.DoWhileStmt:
			emit('O')
		case *cast.ForStmt:
			emit('F', b01(x.Init != nil), b01(x.Cond != nil), b01(x.Post != nil))
		case *cast.SwitchStmt:
			emit('S')
		case *cast.CaseStmt:
			emit('C', b01(x.Value != nil))
		case *cast.ReturnStmt:
			emit('R', b01(x.X != nil))
		case *cast.BreakStmt:
			emit('K')
		case *cast.ContinueStmt:
			emit('N')
		case *cast.GotoStmt:
			emit('G', idx(x.Label))
		case *cast.LabelStmt:
			emit('L', idx(x.Name))
		case *cast.Ident:
			emit('i', idx(x.Name))
		case *cast.IntLit:
			emitText('1', x.Text)
		case *cast.FloatLit:
			emitText('2', x.Text)
		case *cast.CharLit:
			emitText('3', x.Text)
		case *cast.StringLit:
			emitText('4', x.Text)
		case *cast.UnaryExpr:
			emit('u', int(x.Op))
		case *cast.PostfixExpr:
			emit('o', int(x.Op))
		case *cast.BinaryExpr:
			emit('b', int(x.Op))
		case *cast.AssignExpr:
			emit('a', int(x.Op))
		case *cast.CondExpr:
			emit('?')
		case *cast.CallExpr:
			emit('c', len(x.Args))
		case *cast.IndexExpr:
			emit('x')
		case *cast.MemberExpr:
			emit('m', b01(x.Arrow), idx(x.Member))
		case *cast.CastExpr:
			emit('t')
		case *cast.SizeofTypeExpr:
			emit('z')
		case *cast.CommaExpr:
			emit('j')
		case *cast.InitListExpr:
			emit('l', len(x.Items))
		default:
			emit('n')
		}
		return true
	})
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8]), ids
}

// SetFingerprints stamps every collected report with its fingerprint.
// Safe to call again after more reports arrive (recomputation is
// idempotent); callers re-stamp after post-analysis stages (version
// drift) append to the collector.
func (c *Collector) SetFingerprints(fp *Fingerprinter) {
	if fp == nil {
		return
	}
	for _, k := range c.keys {
		r := c.byKey[k]
		r.Fingerprint = fp.Fingerprint(r)
	}
}
