package report

import (
	"math"
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
	"deviant/internal/ctoken"
)

// fpFor parses src as one file and fingerprints a report at (line, col)
// with the given checker and rule.
func fpFor(t *testing.T, src, checker, rule string, line, col int) string {
	t.Helper()
	f, errs := cparse.ParseSource("u.c", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	fp := NewFingerprinter([]*cast.File{f})
	r := Report{
		Checker: checker,
		Rule:    rule,
		Pos:     ctoken.Pos{File: "u.c", Line: line, Col: col},
		Z:       math.NaN(),
	}
	return fp.Fingerprint(&r)
}

const fpSrcA = `int id1000(int *id2000) {
	if (id2000) {
		return *id2000;
	}
	return 0;
}

int id3000(int *id4000) {
	int id5000 = *id4000;
	return id5000 + 1;
}
`

// lineOf returns the 1-based line of the first occurrence of needle.
func lineOf(t *testing.T, src, needle string) int {
	t.Helper()
	i := strings.Index(src, needle)
	if i < 0 {
		t.Fatalf("needle %q not in source", needle)
	}
	return 1 + strings.Count(src[:i], "\n")
}

func TestFingerprintStableAcrossReparse(t *testing.T) {
	line := lineOf(t, fpSrcA, "*id4000;")
	a := fpFor(t, fpSrcA, "null", "check id2000 before use", line, 15)
	b := fpFor(t, fpSrcA, "null", "check id2000 before use", line, 15)
	if a != b {
		t.Fatalf("re-parse changed fingerprint: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, FingerprintVersion+":") {
		t.Fatalf("fingerprint %q lacks version prefix", a)
	}
}

func TestFingerprintAlphaRenameInvariant(t *testing.T) {
	// Same-length consistent rename, the fuzzgen contract: positions do
	// not move, identifier names do.
	ren := strings.NewReplacer(
		"id1000", "rn1000", "id2000", "rn2000", "id3000", "rn3000",
		"id4000", "rn4000", "id5000", "rn5000",
	).Replace(fpSrcA)
	line := lineOf(t, fpSrcA, "*id4000;")
	a := fpFor(t, fpSrcA, "null", "do not dereference id4000 unchecked", line, 15)
	b := fpFor(t, ren, "null", "do not dereference rn4000 unchecked", line, 15)
	if a != b {
		t.Fatalf("alpha-rename changed fingerprint: %s vs %s", a, b)
	}
	// The rename must not collapse the fingerprint into one that
	// ignores the rule's identifier slot entirely: a rule naming a
	// different local must differ.
	c := fpFor(t, fpSrcA, "null", "do not dereference id5000 unchecked", line, 15)
	if a == c {
		t.Fatal("rule identifier slot is not part of the fingerprint")
	}
}

func TestFingerprintFunctionNameSlot(t *testing.T) {
	// A rule naming a defined function resolves through the function's
	// structural hash, so renaming the function keeps the fingerprint.
	ren := strings.NewReplacer(
		"id1000", "rn1000", "id2000", "rn2000", "id3000", "rn3000",
		"id4000", "rn4000", "id5000", "rn5000",
	).Replace(fpSrcA)
	line := lineOf(t, fpSrcA, "return id5000")
	a := fpFor(t, fpSrcA, "fail", "id1000 can fail", line, 9)
	b := fpFor(t, ren, "fail", "rn1000 can fail", line, 9)
	if a != b {
		t.Fatalf("function rename changed fingerprint: %s vs %s", a, b)
	}
}

func TestFingerprintReorderInvariant(t *testing.T) {
	first := `int one(int *p) {
	return *p;
}

int two(int *q) {
	if (q) {
		return 1;
	}
	return *q;
}
`
	second := `int two(int *q) {
	if (q) {
		return 1;
	}
	return *q;
}

int one(int *p) {
	return *p;
}
`
	// The report anchors to "return *q;" inside two() in both orders.
	la := lineOf(t, first, "return *q;")
	lb := lineOf(t, second, "return *q;")
	a := fpFor(t, first, "null", "check q before use", la, 9)
	b := fpFor(t, second, "null", "check q before use", lb, 9)
	if a != b {
		t.Fatalf("function reorder changed fingerprint: %s vs %s", a, b)
	}
}

func TestFingerprintDistinguishesSites(t *testing.T) {
	line := lineOf(t, fpSrcA, "*id4000;")
	a := fpFor(t, fpSrcA, "null", "check id4000 before use", line, 15)
	b := fpFor(t, fpSrcA, "null", "check id4000 before use", line, 3)
	if a == b {
		t.Fatal("different columns produced the same fingerprint")
	}
	c := fpFor(t, fpSrcA, "free", "check id4000 before use", line, 15)
	if a == c {
		t.Fatal("different checkers produced the same fingerprint")
	}
}

func TestFingerprintOutsideFunctionFallsBack(t *testing.T) {
	// Line 0 precedes every extent: raw-position identity, stable
	// across re-analysis of the same bytes.
	a := fpFor(t, fpSrcA, "userptr", "tainted global", 1, 1)
	b := fpFor(t, fpSrcA, "userptr", "tainted global", 1, 1)
	if a != b {
		t.Fatal("prelude fingerprint unstable")
	}
}

func TestSetFingerprintsStampsCollector(t *testing.T) {
	f, errs := cparse.ParseSource("u.c", fpSrcA)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	fp := NewFingerprinter([]*cast.File{f})
	c := NewCollector()
	c.AddMust("null", "check id2000 before use",
		ctoken.Pos{File: "u.c", Line: 3, Col: 10}, Serious, 1, "m")
	c.AddStat("fail", "id1000 can fail",
		ctoken.Pos{File: "u.c", Line: 9, Col: 2}, 2.5, 10, 9, "s")
	c.SetFingerprints(fp)
	for _, r := range c.Ranked() {
		if !strings.HasPrefix(r.Fingerprint, FingerprintVersion+":") {
			t.Fatalf("report %s missing fingerprint", r.String())
		}
	}
	// nil fingerprinter is a no-op, not a panic.
	c.SetFingerprints(nil)
}
