package report

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"deviant/internal/ctoken"
)

// stampedRanked returns the golden collector's ranked reports with real
// fingerprints. The empty-corpus fingerprinter exercises the raw
// file:line:col fallback, which is deterministic, so these bytes pin
// both the file formats and the hash function itself.
func stampedRanked() []Report {
	c := goldenCollector()
	c.SetFingerprints(NewFingerprinter(nil))
	return c.Ranked()
}

// TestBaselineGolden pins the baseline file format: the header line,
// the fingerprint sort order, and the field order of each entry.
// Regenerate with UPDATE_GOLDEN=1 only for intentional format changes.
func TestBaselineGolden(t *testing.T) {
	b := NewBaseline(stampedRanked())
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "baseline.golden"), buf.Bytes())
}

// TestCompactGolden pins the compact JSONL stream: one object per
// ranked finding, rank order, one-letter fields, evidence collapsed.
func TestCompactGolden(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	ranked := stampedRanked()
	for i := range ranked {
		if err := enc.Encode(ToCompact(&ranked[i])); err != nil {
			t.Fatal(err)
		}
	}
	compareGolden(t, filepath.Join("testdata", "compact_report.golden"), buf.Bytes())
}

func TestCompactFieldOrder(t *testing.T) {
	r := Report{
		Checker: "pairing", Rule: "a pairs b",
		Pos: ctoken.Pos{File: "x.c", Line: 1, Col: 2}, Message: "m",
		Z: 1.5, Counter: CounterInfo{Checks: 10, Examples: 9},
		Fingerprint: "v1:aabb",
	}
	b, err := json.Marshal(ToCompact(&r))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"f":"v1:aabb","c":"pairing","p":"x.c:1:2","m":"m","z":1.5,"e":"9/10"}`
	if string(b) != want {
		t.Fatalf("compact field order drifted:\n got %s\nwant %s", b, want)
	}
	r.Z = math.NaN()
	b, err = json.Marshal(ToCompact(&r))
	if err != nil {
		t.Fatal(err)
	}
	want = `{"f":"v1:aabb","c":"pairing","p":"x.c:1:2","m":"m","d":true}`
	if string(b) != want {
		t.Fatalf("compact definite shape drifted:\n got %s\nwant %s", b, want)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	ranked := stampedRanked()
	b := NewBaseline(ranked)
	if b.Len() != len(ranked) {
		t.Fatalf("baseline holds %d entries, want %d", b.Len(), len(ranked))
	}
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ranked {
		if !got.Has(ranked[i].Fingerprint) {
			t.Fatalf("round trip lost %s", ranked[i].Fingerprint)
		}
	}
	// Write must be deterministic: same set, same bytes.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("baseline serialization is not canonical")
	}
}

func TestReadBaselineRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad magic":   `{"format":"other/v9","reports":0}` + "\n",
		"bad entry":   `{"format":"deviant-baseline/v1","reports":1}` + "\nnope\n",
		"no fp":       `{"format":"deviant-baseline/v1","reports":1}` + "\n" + `{"checker":"x"}` + "\n",
		"count drift": `{"format":"deviant-baseline/v1","reports":2}` + "\n" + `{"fingerprint":"v1:aa"}` + "\n",
	}
	for name, src := range cases {
		if _, err := ReadBaseline(strings.NewReader(src)); err == nil {
			t.Errorf("%s: corrupt baseline accepted", name)
		}
	}
}

func TestPartition(t *testing.T) {
	ranked := stampedRanked()
	b := NewBaseline(ranked[:2])
	kept, suppressed := Partition(ranked, b)
	if len(suppressed) != 2 || len(kept) != len(ranked)-2 {
		t.Fatalf("partition: %d kept, %d suppressed", len(kept), len(suppressed))
	}
	// Rank order preserved within each half.
	for i := 1; i < len(kept); i++ {
		if less(&kept[i], &kept[i-1]) {
			t.Fatal("kept reports out of rank order")
		}
	}
	// Unfingerprinted reports are never suppressed.
	plain := []Report{{Checker: "x", Z: math.NaN()}}
	kept, suppressed = Partition(plain, b)
	if len(kept) != 1 || len(suppressed) != 0 {
		t.Fatal("unfingerprinted report was suppressed")
	}
	// nil baseline keeps everything.
	kept, suppressed = Partition(ranked, nil)
	if len(kept) != len(ranked) || suppressed != nil {
		t.Fatal("nil baseline altered the report set")
	}
}

func TestDiffByFingerprint(t *testing.T) {
	ranked := stampedRanked()
	oldRun := ranked[:3] // loses ranked[3:] → those are "new"
	newRun := ranked[1:] // loses ranked[0] → that one is "fixed"
	newOnly, fixed := DiffByFingerprint(oldRun, newRun)
	if len(newOnly) != len(ranked)-3 {
		t.Fatalf("new findings: got %d, want %d", len(newOnly), len(ranked)-3)
	}
	if len(fixed) != 1 || fixed[0].Fingerprint != ranked[0].Fingerprint {
		t.Fatalf("fixed findings wrong: %+v", fixed)
	}
	// Identical runs: nothing new, nothing fixed.
	newOnly, fixed = DiffByFingerprint(ranked, ranked)
	if len(newOnly) != 0 || len(fixed) != 0 {
		t.Fatal("identical runs diffed non-empty")
	}
}
