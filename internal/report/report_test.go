package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"deviant/internal/ctoken"
)

func pos(line int) ctoken.Pos { return ctoken.Pos{File: "a.c", Line: line, Col: 1} }

func TestDeduplication(t *testing.T) {
	c := NewCollector()
	c.AddMust("null/check-then-use", "rule-p", pos(3), Serious, 1, "deref null p")
	c.AddMust("null/check-then-use", "rule-p", pos(3), Serious, 1, "deref null p")
	if c.Len() != 1 {
		t.Errorf("len: %d", c.Len())
	}
	c.AddMust("null/check-then-use", "rule-q", pos(3), Serious, 1, "deref null q")
	if c.Len() != 2 {
		t.Errorf("len: %d", c.Len())
	}
}

func TestStatKeepsHigherZ(t *testing.T) {
	c := NewCollector()
	c.AddStat("pairing", "lock:unlock", pos(5), 1.0, 10, 9, "unpaired")
	c.AddStat("pairing", "lock:unlock", pos(5), 2.0, 20, 19, "unpaired")
	r := c.Ranked()
	if len(r) != 1 || r[0].Z != 2.0 {
		t.Errorf("reports: %+v", r)
	}
}

func TestRankingMustBeforeStat(t *testing.T) {
	c := NewCollector()
	c.AddStat("pairing", "a:b", pos(9), 5.0, 10, 9, "stat err")
	c.AddMust("null", "rule", pos(10), Serious, 2, "must err")
	r := c.Ranked()
	if r[0].Message != "must err" {
		t.Errorf("order: %+v", r)
	}
}

func TestRankingSeverityLocalitySpan(t *testing.T) {
	c := NewCollector()
	c.AddMust("null", "r1", pos(1), Minor, 1, "minor")
	c.AddMust("null", "r2", pos(2), Serious, 50, "serious nonlocal")
	c.AddMust("null", "r3", pos(3), Serious, 2, "serious local")
	r := c.Ranked()
	if r[0].Message != "serious local" || r[1].Message != "serious nonlocal" || r[2].Message != "minor" {
		t.Errorf("order: %v, %v, %v", r[0].Message, r[1].Message, r[2].Message)
	}
}

func TestRankingStatByZ(t *testing.T) {
	c := NewCollector()
	c.AddStat("lockvar", "v1@l", pos(1), 1.5, 10, 9, "e1")
	c.AddStat("lockvar", "v2@l", pos(2), 3.0, 100, 99, "e2")
	c.AddStat("lockvar", "v3@l", pos(3), 0.5, 4, 3, "e3")
	r := c.Ranked()
	if r[0].Message != "e2" || r[1].Message != "e1" || r[2].Message != "e3" {
		t.Errorf("order: %+v", r)
	}
}

func TestByChecker(t *testing.T) {
	c := NewCollector()
	c.AddMust("null/check-then-use", "r", pos(1), Serious, 1, "a")
	c.AddMust("null/redundant-check", "r", pos(2), Minor, 1, "b")
	c.AddStat("pairing", "r", pos(3), 1.0, 2, 1, "c")
	if got := len(c.ByChecker("null")); got != 2 {
		t.Errorf("null reports: %d", got)
	}
	if got := len(c.ByChecker("null/check-then-use")); got != 1 {
		t.Errorf("exact match: %d", got)
	}
	if got := len(c.ByChecker("pairing")); got != 1 {
		t.Errorf("pairing: %d", got)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Checker: "null", Pos: pos(7), Message: "boom", Z: math.NaN()}
	if !strings.Contains(r.String(), "a.c:7:1") || !strings.Contains(r.String(), "boom") {
		t.Errorf("string: %q", r.String())
	}
	rs := Report{Checker: "pair", Pos: pos(7), Message: "x", Z: 2.5, Counter: CounterInfo{Checks: 10, Examples: 9}}
	if !strings.Contains(rs.String(), "z=2.50") || !strings.Contains(rs.String(), "9/10") {
		t.Errorf("stat string: %q", rs.String())
	}
}

func TestMustLocalityFromSpan(t *testing.T) {
	c := NewCollector()
	c.AddMust("null", "r", pos(1), Serious, 3, "local")
	c.AddMust("null", "r2", pos(2), Serious, 30, "global")
	r := c.Ranked()
	if !r[0].Local || r[0].Message != "local" {
		t.Errorf("span<=10 should be local: %+v", r[0])
	}
	if r[1].Local {
		t.Errorf("span>10 should be non-local: %+v", r[1])
	}
}

func TestTrustModelRanking(t *testing.T) {
	c := NewCollector()
	// Two statistical reports with identical z; one sits in a file that
	// also holds a definite error.
	c.AddStat("lockvar", "r1", ctoken.Pos{File: "clean.c", Line: 5, Col: 1}, 1.0, 10, 9, "in clean file")
	c.AddStat("lockvar", "r2", ctoken.Pos{File: "messy.c", Line: 5, Col: 1}, 1.0, 10, 9, "in messy file")
	c.AddMust("null/check-then-use", "r3", ctoken.Pos{File: "messy.c", Line: 9, Col: 1}, Serious, 1, "definite")

	tm := c.TrustFromMustErrors()
	if tm.Errors("messy.c") != 1 || tm.Errors("clean.c") != 0 {
		t.Fatalf("trust observations wrong")
	}
	if tm.Weight("messy.c") >= tm.Weight("clean.c") {
		t.Error("messy file should weigh less")
	}

	ranked := c.RankedWithTrust(tm)
	// MUST first, then the messy-file statistical report boosted above
	// the clean-file tie.
	if ranked[0].Message != "definite" {
		t.Fatalf("MUST should stay first: %+v", ranked[0])
	}
	if ranked[1].Message != "in messy file" {
		t.Errorf("suspicion boost should break the tie: %v then %v", ranked[1].Message, ranked[2].Message)
	}
}

func TestTrustBoostDoesNotOverrideEvidence(t *testing.T) {
	c := NewCollector()
	c.AddStat("lockvar", "strong", ctoken.Pos{File: "clean.c", Line: 1, Col: 1}, 5.0, 100, 99, "strong evidence")
	c.AddStat("lockvar", "weak", ctoken.Pos{File: "messy.c", Line: 1, Col: 1}, 0.5, 4, 3, "weak evidence")
	c.AddMust("null", "m", ctoken.Pos{File: "messy.c", Line: 2, Col: 1}, Serious, 1, "definite")
	tm := c.TrustFromMustErrors()
	ranked := c.RankedWithTrust(tm)
	// Statistical portion: strong evidence must stay above boosted weak.
	var stats []Report
	for _, r := range ranked {
		if r.Statistical() {
			stats = append(stats, r)
		}
	}
	if stats[0].Message != "strong evidence" {
		t.Errorf("boost overrode evidence: %+v", stats)
	}
}

func TestRankedByCustomBoost(t *testing.T) {
	c := NewCollector()
	c.AddStat("lockvar", "cold", ctoken.Pos{File: "cold.c", Line: 1, Col: 1}, 1.0, 10, 9, "cold path")
	c.AddStat("lockvar", "hot", ctoken.Pos{File: "hot.c", Line: 1, Col: 1}, 1.0, 10, 9, "hot path")
	// Profile-style boost: the hot file's violations float up.
	profile := map[string]float64{"hot.c": 0.5}
	ranked := c.RankedBy(func(r *Report) float64 { return profile[r.Pos.File] })
	if ranked[0].Message != "hot path" {
		t.Errorf("profile boost ignored: %+v", ranked[0])
	}
}

// Property: Ranked returns a permutation of everything added, in an order
// consistent with the documented comparator (MUST first; statistical by
// decreasing z).
func TestRankedIsCompleteAndOrdered(t *testing.T) {
	f := func(zs []float64, musts uint8) bool {
		c := NewCollector()
		n := 0
		for i, z := range zs {
			if z != z || len(zs) > 24 { // skip NaN inputs and huge cases
				continue
			}
			c.AddStat("st", "r", ctoken.Pos{File: "f.c", Line: i + 1, Col: 1}, z, 10, 9, "s")
			n++
		}
		m := int(musts % 8)
		for i := 0; i < m; i++ {
			c.AddMust("mu", "r", ctoken.Pos{File: "g.c", Line: i + 1, Col: 1}, Serious, 1, "m")
		}
		ranked := c.Ranked()
		if len(ranked) != n+m {
			return false
		}
		sawStat := false
		var prevZ float64
		for _, r := range ranked {
			if !r.Statistical() {
				if sawStat {
					return false // MUST after statistical
				}
				continue
			}
			if sawStat && r.Z > prevZ {
				return false // z must be non-increasing
			}
			sawStat = true
			prevZ = r.Z
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
