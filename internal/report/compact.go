// Compact JSONL report shape: one small object per finding, sized for
// agent and pipeline consumers that pay per byte. Field names are one
// letter; evidence collapses to "examples/checks"; zero values vanish.
// The full JSONReport shape remains the contract for everything that
// wants self-describing output.
package report

import "fmt"

// CompactReport is the one-line wire shape of one ranked finding.
// Field order is part of the format: fingerprint first (the identity
// consumers key on), then checker, position, message, then optional
// definiteness and statistical evidence.
type CompactReport struct {
	F string  `json:"f"`           // fingerprint ("" when no fingerprinter ran)
	C string  `json:"c"`           // checker
	P string  `json:"p"`           // file:line:col
	M string  `json:"m"`           // message
	D bool    `json:"d,omitempty"` // definite (MUST-belief contradiction)
	Z float64 `json:"z,omitempty"` // rank statistic (MAY beliefs)
	E string  `json:"e,omitempty"` // evidence, "examples/checks"
}

// ToCompact converts one ranked report to its compact shape.
func ToCompact(r *Report) CompactReport {
	cr := CompactReport{
		F: r.Fingerprint,
		C: r.Checker,
		P: r.Pos.String(),
		M: r.Message,
		D: !r.Statistical(),
	}
	if r.Statistical() {
		cr.Z = r.Z
		cr.E = fmt.Sprintf("%d/%d", r.Counter.Examples, r.Counter.Checks)
	}
	return cr
}
