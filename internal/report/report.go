// Package report collects, deduplicates and ranks checker error messages.
//
// Ranking follows §3.5: "our ranking criteria places local errors over
// global ones, errors that span few source lines or conditionals over ones
// with many, serious errors over minor ones" — and, for statistical
// checkers, §5's rule that the z statistic ranks error messages, not
// beliefs.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"deviant/internal/ctoken"
	"deviant/internal/stats"
)

// Severity classifies how bad a violated belief is.
type Severity int

// Severities, most serious first.
const (
	Serious Severity = iota // crashes, security holes
	Minor                   // redundancy, confusion indicators
)

// String renders the severity.
func (s Severity) String() string {
	if s == Serious {
		return "serious"
	}
	return "minor"
}

// Report is one error message from a checker.
type Report struct {
	Checker  string      // checker name, e.g. "null/check-then-use"
	Rule     string      // instantiated rule, e.g. "do not dereference null pointer card"
	Pos      ctoken.Pos  // error location
	Message  string      // human-readable diagnosis
	Severity Severity    // serious or minor
	Local    bool        // confined to one function / few lines
	Span     int         // source lines between belief and contradiction
	Z        float64     // rank statistic for MAY-belief errors (NaN for MUST)
	Counter  CounterInfo // evidence for statistical errors

	// Fingerprint is the report's stable identity across re-analysis
	// (see Fingerprinter), stamped after collection by SetFingerprints.
	// Not part of Key(): deduplication stays positional within one run.
	Fingerprint string
}

// CounterInfo carries the statistical evidence behind a MAY-belief error.
type CounterInfo struct {
	Checks   int
	Examples int
}

// Statistical reports whether the report came from a statistical checker
// (carries a meaningful z value).
func (r *Report) Statistical() bool { return !math.IsNaN(r.Z) }

// Key identifies a report for deduplication. Path-sensitive traversal can
// reach the same error along many (block, state) pairs; the user sees it
// once.
func (r *Report) Key() string {
	return r.Checker + "|" + r.Pos.String() + "|" + r.Rule
}

// String renders the report as a compiler-style diagnostic.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: [%s] %s", r.Pos, r.Checker, r.Message)
	if r.Statistical() {
		fmt.Fprintf(&sb, " (z=%.2f, %d/%d)", r.Z, r.Counter.Examples, r.Counter.Checks)
	}
	return sb.String()
}

// Collector accumulates deduplicated reports. Insertion order is
// preserved so that ranking ties resolve identically from run to run, and
// so that merging per-worker collectors in shard order reproduces the
// serial collector exactly.
type Collector struct {
	byKey map[string]*Report
	keys  []string // insertion order of first occurrence
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byKey: make(map[string]*Report)}
}

// Reset clears the collector for reuse, keeping allocated capacity.
// Reports previously merged out of it are value copies and stay valid.
func (c *Collector) Reset() {
	clear(c.byKey)
	c.keys = c.keys[:0]
}

// Add records r unless an identical report was already seen. MUST-belief
// reports should have Z = NaN (use AddMust/AddStat helpers to get this
// right).
func (c *Collector) Add(r Report) {
	k := r.Key()
	if old, ok := c.byKey[k]; ok {
		// Keep the higher-z duplicate (counters can improve as evidence
		// accumulates during a run).
		if r.Statistical() && old.Statistical() && r.Z > old.Z {
			c.byKey[k] = &r
		}
		return
	}
	c.byKey[k] = &r
	c.keys = append(c.keys, k)
}

// Merge folds another collector into c, replaying o's reports in their
// original insertion order. Folding per-shard collectors back in shard
// order therefore yields the same contents — including which duplicate
// survived — as collecting serially.
func (c *Collector) Merge(o *Collector) {
	for _, k := range o.keys {
		c.Add(*o.byKey[k])
	}
}

// all returns the reports in insertion order.
func (c *Collector) all() []Report {
	out := make([]Report, 0, len(c.keys))
	for _, k := range c.keys {
		out = append(out, *c.byKey[k])
	}
	return out
}

// AddMust records an internal-consistency (MUST belief) error.
func (c *Collector) AddMust(checker, rule string, pos ctoken.Pos, sev Severity, span int, msg string) {
	c.Add(Report{
		Checker:  checker,
		Rule:     rule,
		Pos:      pos,
		Message:  msg,
		Severity: sev,
		Local:    span >= 0 && span <= 10,
		Span:     span,
		Z:        math.NaN(),
	})
}

// AddStat records a statistical (MAY belief) error with its evidence.
func (c *Collector) AddStat(checker, rule string, pos ctoken.Pos, z float64, checks, examples int, msg string) {
	c.Add(Report{
		Checker:  checker,
		Rule:     rule,
		Pos:      pos,
		Message:  msg,
		Severity: Serious,
		Local:    true,
		Z:        z,
		Counter:  CounterInfo{Checks: checks, Examples: examples},
	})
}

// Len returns the number of distinct reports.
func (c *Collector) Len() int { return len(c.byKey) }

// Ranked returns all reports ordered for inspection: statistical reports
// by decreasing z; MUST reports by severity, locality, span; ties broken
// by position. Statistical and MUST reports are ranked within their own
// checkers' namespaces but interleave stably (MUST contradictions are
// definite errors, so they sort before statistical ones of the same
// checker prefix ordering).
func (c *Collector) Ranked() []Report {
	out := c.all()
	sort.SliceStable(out, func(i, j int) bool { return less(&out[i], &out[j]) })
	return out
}

// RankedBy ranks like Ranked but adds boost(r) (in z units) to every
// statistical report's score. MUST reports are unaffected —
// contradictions need no rank help. This is the hook for the paper's
// ranking augmentations: code trustworthiness (§5, see RankedWithTrust)
// and profile-driven ranking (§2's future work: a boost derived from
// execution counts floats bugs in hot code to the top).
func (c *Collector) RankedBy(boost func(*Report) float64) []Report {
	out := c.all()
	adj := func(r *Report) float64 {
		if !r.Statistical() {
			return 0
		}
		return r.Z + boost(r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		am, bm := !a.Statistical(), !b.Statistical()
		if am != bm {
			return am
		}
		if am {
			return less(a, b)
		}
		za, zb := adj(a), adj(b)
		if za != zb {
			return za > zb
		}
		return tieLess(a, b)
	})
	return out
}

// RankedWithTrust ranks like Ranked but augments statistical scores with
// file trustworthiness (§5): a violation in a file that already holds
// definite errors gets tm's suspicion boost, nudging near-ties toward the
// files where confusion has been demonstrated.
func (c *Collector) RankedWithTrust(tm *stats.TrustModel) []Report {
	return c.RankedBy(func(r *Report) float64 { return tm.SuspicionBoost(r.Pos.File) })
}

// TrustFromMustErrors builds a TrustModel from the collector's definite
// (MUST-belief) reports: each one marks its file as less trustworthy.
func (c *Collector) TrustFromMustErrors() *stats.TrustModel {
	tm := stats.NewTrustModel()
	for _, k := range c.keys {
		if r := c.byKey[k]; !r.Statistical() {
			tm.Observe(r.Pos.File)
		}
	}
	return tm
}

// JSONReport is the machine-readable shape of one ranked report, shared
// by the CLI's -json mode and the deviantd service responses so scripts
// see one schema everywhere.
type JSONReport struct {
	Rank     int     `json:"rank"`
	Checker  string  `json:"checker"`
	File     string  `json:"file"`
	Line     int     `json:"line"`
	Col      int     `json:"col"`
	Rule     string  `json:"rule"`
	Message  string  `json:"message"`
	Definite bool    `json:"definite"` // MUST-belief contradiction
	Z        float64 `json:"z,omitempty"`
	Checks   int     `json:"checks,omitempty"`
	Examples int     `json:"examples,omitempty"`
	// Fingerprint is appended last so pre-fingerprint consumers keep
	// their field positions; it is omitted when no fingerprinter ran.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// ToJSON converts one ranked report (1-based rank) to its wire shape.
// Statistical evidence fields are populated only for MAY-belief errors;
// MUST contradictions are marked definite and carry no z.
func ToJSON(rank int, r *Report) JSONReport {
	jr := JSONReport{
		Rank: rank, Checker: r.Checker,
		File: r.Pos.File, Line: r.Pos.Line, Col: r.Pos.Col,
		Rule: r.Rule, Message: r.Message,
		Definite:    !r.Statistical(),
		Fingerprint: r.Fingerprint,
	}
	if r.Statistical() {
		jr.Z = r.Z
		jr.Checks = r.Counter.Checks
		jr.Examples = r.Counter.Examples
	}
	return jr
}

// ByChecker returns the ranked reports produced by one checker.
func (c *Collector) ByChecker(name string) []Report {
	var out []Report
	for _, r := range c.Ranked() {
		if r.Checker == name || strings.HasPrefix(r.Checker, name+"/") {
			out = append(out, r)
		}
	}
	return out
}

func less(a, b *Report) bool {
	// Definite (MUST) errors ahead of statistical ones.
	am, bm := !a.Statistical(), !b.Statistical()
	if am != bm {
		return am
	}
	if am {
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Local != b.Local {
			return a.Local
		}
		if a.Span != b.Span {
			return a.Span < b.Span
		}
		return tieLess(a, b)
	}
	if a.Z != b.Z {
		return a.Z > b.Z
	}
	return tieLess(a, b)
}

// tieLess is the final total-order tiebreak: position, then checker, then
// rule. Distinct reports can share a position (different rules at one
// site), so ordering must not stop at posLess or the ranking would depend
// on map iteration order.
func tieLess(a, b *Report) bool {
	if a.Pos != b.Pos {
		return posLess(a.Pos, b.Pos)
	}
	if a.Checker != b.Checker {
		return a.Checker < b.Checker
	}
	return a.Rule < b.Rule
}

func posLess(a, b ctoken.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}
