// Suppression baselines: a recorded set of known findings, keyed by
// fingerprint, that later runs subtract. The workflow the FP/FN
// literature says analyzers die without: adopt the tool, baseline the
// existing noise, and from then on only new findings interrupt anyone.
//
// The file format is line-oriented JSON with a deterministic field
// order, like the run journal: one header line, then one entry per
// fingerprint sorted lexicographically. Same findings in, same bytes
// out — baselines diff cleanly under version control.
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BaselineFormat is the header magic of a baseline file; bump with the
// fingerprint version.
const BaselineFormat = "deviant-baseline/v1"

// BaselineEntry is one suppressed finding. Checker, rule and file are
// carried for human review of the baseline only — matching is by
// fingerprint alone.
type BaselineEntry struct {
	Fingerprint string `json:"fingerprint"`
	Checker     string `json:"checker"`
	Rule        string `json:"rule"`
	File        string `json:"file"`
}

type baselineHeader struct {
	Format  string `json:"format"`
	Reports int    `json:"reports"`
}

// Baseline is a set of known fingerprints.
type Baseline struct {
	entries map[string]BaselineEntry
}

// NewBaseline records every fingerprinted report in ranked. Reports
// without fingerprints (pre-fingerprint producers) are skipped; reports
// sharing a fingerprint collapse into one entry.
func NewBaseline(ranked []Report) *Baseline {
	b := &Baseline{entries: make(map[string]BaselineEntry, len(ranked))}
	for i := range ranked {
		r := &ranked[i]
		if r.Fingerprint == "" {
			continue
		}
		if _, ok := b.entries[r.Fingerprint]; ok {
			continue
		}
		b.entries[r.Fingerprint] = BaselineEntry{
			Fingerprint: r.Fingerprint,
			Checker:     r.Checker,
			Rule:        r.Rule,
			File:        r.Pos.File,
		}
	}
	return b
}

// Len returns the number of distinct suppressed fingerprints.
func (b *Baseline) Len() int { return len(b.entries) }

// Has reports whether fp is baselined.
func (b *Baseline) Has(fp string) bool {
	_, ok := b.entries[fp]
	return ok
}

// Write renders the baseline deterministically: header, then entries
// sorted by fingerprint, one JSON object per line.
func (b *Baseline) Write(w io.Writer) error {
	fps := make([]string, 0, len(b.entries))
	for fp := range b.entries {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(baselineHeader{Format: BaselineFormat, Reports: len(fps)})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, fp := range fps {
		e := b.entries[fp]
		line, err := json.Marshal(&e)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadBaseline parses a baseline file, validating the header magic and
// the entry count.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("baseline: empty file")
	}
	var hdr baselineHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("baseline: bad header: %w", err)
	}
	if hdr.Format != BaselineFormat {
		return nil, fmt.Errorf("baseline: format %q, want %q", hdr.Format, BaselineFormat)
	}
	b := &Baseline{entries: make(map[string]BaselineEntry, hdr.Reports)}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e BaselineEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("baseline: bad entry: %w", err)
		}
		if e.Fingerprint == "" {
			return nil, fmt.Errorf("baseline: entry without fingerprint")
		}
		b.entries[e.Fingerprint] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.entries) != hdr.Reports {
		return nil, fmt.Errorf("baseline: header says %d reports, found %d", hdr.Reports, len(b.entries))
	}
	return b, nil
}

// Partition splits ranked reports into those the baseline does not
// cover (kept, in their original rank order) and those it suppresses.
// A nil baseline keeps everything.
func Partition(ranked []Report, b *Baseline) (kept, suppressed []Report) {
	if b == nil {
		return ranked, nil
	}
	kept = make([]Report, 0, len(ranked))
	for i := range ranked {
		if ranked[i].Fingerprint != "" && b.Has(ranked[i].Fingerprint) {
			suppressed = append(suppressed, ranked[i])
		} else {
			kept = append(kept, ranked[i])
		}
	}
	return kept, suppressed
}

// DiffByFingerprint compares two runs by identity: reports whose
// fingerprints appear only in the new run (new findings, new-run rank
// order) and only in the old run (fixed findings, old-run rank order).
// Reports without fingerprints are treated as always-new/always-fixed —
// they carry no identity to match on.
func DiffByFingerprint(oldRanked, newRanked []Report) (newOnly, fixed []Report) {
	oldSet := make(map[string]bool, len(oldRanked))
	for i := range oldRanked {
		if fp := oldRanked[i].Fingerprint; fp != "" {
			oldSet[fp] = true
		}
	}
	newSet := make(map[string]bool, len(newRanked))
	for i := range newRanked {
		if fp := newRanked[i].Fingerprint; fp != "" {
			newSet[fp] = true
		}
	}
	for i := range newRanked {
		if fp := newRanked[i].Fingerprint; fp == "" || !oldSet[fp] {
			newOnly = append(newOnly, newRanked[i])
		}
	}
	for i := range oldRanked {
		if fp := oldRanked[i].Fingerprint; fp == "" || !newSet[fp] {
			fixed = append(fixed, oldRanked[i])
		}
	}
	return newOnly, fixed
}
