package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root", A("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	child := sp.Child("child")
	fork := sp.Fork("fork")
	child.SetAttr("a", "b")
	child.End()
	fork.End()
	sp.End()
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer recorded spans: %v", got)
	}
}

func TestSpanNestingAndLanes(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("analyze")
	fe := root.Child("frontend")
	u := fe.Fork("unit", A("file", "a.c"))
	u.SetAttr("reused", "false")
	u.End()
	fe.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["frontend"].Lane != byName["analyze"].Lane {
		t.Error("Child must share its parent's lane")
	}
	if byName["unit"].Lane == byName["frontend"].Lane {
		t.Error("Fork must take a fresh lane")
	}
	if got := byName["unit"].Attrs; len(got) != 2 || got[1] != A("reused", "false") {
		t.Errorf("unit attrs = %v", got)
	}
	// A child's interval must sit inside its parent's.
	if byName["frontend"].Start < byName["analyze"].Start || byName["frontend"].End > byName["analyze"].End {
		t.Error("child span escapes its parent's interval")
	}
}

func TestLaneReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	a.End()
	b := tr.Start("b")
	b.End()
	spans := tr.Spans()
	if spans[0].Lane != spans[1].Lane {
		t.Errorf("sequential top-level spans should reuse the freed lane: %d vs %d",
			spans[0].Lane, spans[1].Lane)
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("x")
	sp.End()
	sp.End()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("double End recorded %d spans, want 1", got)
	}
}

func TestConcurrentForks(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Fork("work")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 65 {
		t.Errorf("got %d spans, want 65", got)
	}
}

// TestWriteChromeTrace checks the export is valid JSON in the Chrome
// trace-event shape Perfetto loads: a traceEvents array of complete ("X")
// events with microsecond ts/dur and args from the span attrs.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("analyze", A("units", "2"))
	c := root.Child("frontend")
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("event %q has negative ts/dur", ev.Name)
		}
	}
	// Events are sorted by start time: the root starts first.
	if out.TraceEvents[0].Name != "analyze" {
		t.Errorf("first event = %q, want analyze", out.TraceEvents[0].Name)
	}
	if out.TraceEvents[0].Args["units"] != "2" {
		t.Errorf("root args = %v", out.TraceEvents[0].Args)
	}
}

func TestBuildInfo(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" {
		t.Error("BuildInfo must always report the Go version")
	}
	if b.Version == "" {
		t.Error("BuildInfo must always report a module version")
	}
}
