package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Journal is a per-run structured event log: one JSON object per line,
// in the order events were recorded. Every line carries the run id (the
// adopted X-Deviant-Request-Id for daemon runs), a per-journal sequence
// number, a wall-clock timestamp, the event name, and the event's
// attributes — so the full story of a distributed run (placement, shard
// lifecycle, re-scatter, quarantine, merge, rank) reads back from one
// file even when the work spanned many processes.
//
// A nil *Journal is a valid "journaling off" value: Event no-ops. Like
// the tracer, journal output never feeds back into analysis, so it
// cannot perturb output determinism; only ts (and the run id, when it
// comes from a request header) vary between identical runs.
type Journal struct {
	run string
	w   io.Writer

	mu  sync.Mutex
	seq int
	err error
}

// NewJournal returns a journal writing events for the given run id to w.
// The caller owns w's lifecycle (the journal never closes it).
func NewJournal(w io.Writer, run string) *Journal {
	return &Journal{run: run, w: w}
}

// Run returns the journal's run id ("" on a nil journal).
func (j *Journal) Run() string {
	if j == nil {
		return ""
	}
	return j.run
}

// Err returns the first write error, if any. Journaling is best-effort:
// a failed write disables nothing, but the error is kept for callers
// that want to warn.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Event appends one line. Attrs render in argument order after the fixed
// fields, giving a deterministic byte layout:
//
//	{"run":"...","seq":3,"ts":"2026-08-08T12:00:00.000Z","event":"shard_sent","worker":"w1","units":"4"}
//
// Safe for concurrent use; seq reflects the order lines hit the writer.
func (j *Journal) Event(event string, attrs ...Attr) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var b strings.Builder
	b.WriteString(`{"run":`)
	b.Write(jsonString(j.run))
	b.WriteString(`,"seq":`)
	b.WriteString(strconv.Itoa(j.seq))
	b.WriteString(`,"ts":"`)
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(`","event":`)
	b.Write(jsonString(event))
	for _, a := range attrs {
		b.WriteByte(',')
		b.Write(jsonString(a.Key))
		b.WriteByte(':')
		b.Write(jsonString(a.Value))
	}
	b.WriteString("}\n")
	j.seq++
	if _, err := io.WriteString(j.w, b.String()); err != nil && j.err == nil {
		j.err = err
	}
}

// jsonString renders s as a JSON string literal. json.Marshal on a
// string cannot fail.
func jsonString(s string) []byte {
	b, _ := json.Marshal(s)
	return b
}
