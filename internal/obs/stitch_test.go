package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// stitchTrace decodes a WriteChromeTrace export for assertions.
type stitchEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

func decodeTrace(t *testing.T, tr *Tracer) []stitchEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []stitchEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return out.TraceEvents
}

func TestExportRoundTrip(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("frontend", A("units", "3"))
	u := sp.Fork("unit", A("file", "a.c"))
	u.End()
	sp.End()

	ex := tr.Export()
	if ex == nil {
		t.Fatal("Export returned nil on a live tracer")
	}
	if ex.DurNs <= 0 {
		t.Errorf("DurNs = %d, want > 0", ex.DurNs)
	}
	if len(ex.Spans) != 2 {
		t.Fatalf("got %d wire spans, want 2", len(ex.Spans))
	}
	for _, s := range ex.Spans {
		if s.EndNs < s.StartNs {
			t.Errorf("span %q ends before it starts", s.Name)
		}
	}
	// The wire form must survive JSON (it rides inside shard responses).
	raw, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceExport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != 2 || back.Spans[0].Name != ex.Spans[0].Name {
		t.Errorf("round trip lost spans: %+v", back)
	}

	var nilTr *Tracer
	if nilTr.Export() != nil {
		t.Error("nil tracer must export nil")
	}
	if nilTr.Elapsed() != 0 {
		t.Error("nil tracer Elapsed must be 0")
	}
}

// TestStitchedProcessLanes is the lane-collision regression test: a
// worker whose lane ids overlap the coordinator's must still render on
// its own pid, with deterministic pid assignment by sorted worker name
// and process_name metadata labeling every process.
func TestStitchedProcessLanes(t *testing.T) {
	coord := NewTracer()
	root := coord.Start("analyze") // coordinator lane 0
	fork := root.Fork("scatter")   // coordinator lane 1
	fork.End()
	root.End()

	// Both workers also use lanes 0 and 1 — guaranteed collision if
	// stitched spans shared the coordinator's lane namespace.
	worker := func() *TraceExport {
		wt := NewTracer()
		sp := wt.Start("shard")
		u := sp.Fork("unit")
		u.End()
		sp.End()
		return wt.Export()
	}
	// Import out of sorted order to prove pid order follows the name.
	coord.ImportProcess("worker-b", 2*time.Millisecond, worker())
	coord.ImportProcess("worker-a", 1*time.Millisecond, worker())

	events := decodeTrace(t, coord)

	pidsByName := map[string]int{}
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pidsByName[ev.Args["name"]] = ev.Pid
		}
	}
	want := map[string]int{CoordinatorProcessName: 1, "worker-a": 2, "worker-b": 3}
	for name, pid := range want {
		if pidsByName[name] != pid {
			t.Errorf("process %q got pid %d, want %d (all: %v)", name, pidsByName[name], pid, pidsByName)
		}
	}

	// Every span event's (pid, tid) pair must be unique per concurrent
	// region; at minimum no worker span may land on pid 1.
	perPid := map[int][]string{}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		perPid[ev.Pid] = append(perPid[ev.Pid], ev.Name)
	}
	if got := strings.Join(perPid[1], ","); got != "analyze,scatter" && got != "scatter,analyze" {
		t.Errorf("coordinator pid 1 spans = %v", perPid[1])
	}
	for _, pid := range []int{2, 3} {
		names := strings.Join(perPid[pid], ",")
		if !strings.Contains(names, "shard") || !strings.Contains(names, "unit") {
			t.Errorf("worker pid %d spans = %v, want shard+unit", pid, perPid[pid])
		}
	}

	// Offsets shift imported timestamps onto the local timeline.
	for _, ev := range events {
		if ev.Ph == "X" && ev.Pid == 2 && ev.Name == "shard" {
			if ev.Ts < 1000 { // worker-a offset = 1ms = 1000µs
				t.Errorf("worker-a shard ts = %v µs, want >= 1000", ev.Ts)
			}
		}
	}
}

// TestSingleProcessTraceUnchanged pins that a trace with no imports
// emits no metadata events — the pre-stitching byte format.
func TestSingleProcessTraceUnchanged(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("analyze")
	sp.End()
	for _, ev := range decodeTrace(t, tr) {
		if ev.Ph != "X" {
			t.Errorf("single-process trace emitted a %q event", ev.Ph)
		}
		if ev.Pid != 1 {
			t.Errorf("single-process span on pid %d, want 1", ev.Pid)
		}
	}
}

// TestImportProcessMergesByName: a worker answering two scatter rounds
// is still one process lane.
func TestImportProcessMergesByName(t *testing.T) {
	coord := NewTracer()
	mk := func(name string) *TraceExport {
		wt := NewTracer()
		s := wt.Start(name)
		s.End()
		return wt.Export()
	}
	coord.ImportProcess("w", 0, mk("round1"))
	coord.ImportProcess("w", 0, mk("round2"))
	imp := coord.Imported()
	if len(imp) != 1 {
		t.Fatalf("got %d imported processes, want 1", len(imp))
	}
	if len(imp[0].Spans) != 2 {
		t.Errorf("merged process has %d spans, want 2", len(imp[0].Spans))
	}
	// Nil export and nil tracer are no-ops.
	coord.ImportProcess("x", 0, nil)
	if len(coord.Imported()) != 1 {
		t.Error("nil export must not create a process")
	}
	var nilTr *Tracer
	nilTr.ImportProcess("w", 0, mk("z"))
	if nilTr.Imported() != nil {
		t.Error("nil tracer must report no imports")
	}
}
