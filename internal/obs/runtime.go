package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RegisterRuntimeMetrics registers callback-backed Go runtime
// self-metrics on the registry, sampled at scrape time:
//
//	go_goroutines                     current goroutine count
//	go_heap_alloc_bytes              live heap bytes (HeapAlloc)
//	go_gc_pause_seconds_total        cumulative stop-the-world pause time
//	go_gc_cycles_total               completed GC cycles
//	go_sched_latency_seconds{q=...}  p50/p99 goroutine scheduling latency
//
// plus a deviantd_build_info gauge pinned at 1 whose version/go labels
// carry the binary's identity — the standard build-info idiom, so a
// metrics browser can tell which build each fleet member runs. Nil-safe.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative garbage collection stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	r.CounterFunc("go_gc_cycles_total", "Completed garbage collection cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	r.GaugeFunc("go_sched_latency_seconds", "Approximate goroutine scheduling latency quantile.",
		func() float64 { return schedLatencyQuantile(0.50) }, L("q", "0.5"))
	r.GaugeFunc("go_sched_latency_seconds", "Approximate goroutine scheduling latency quantile.",
		func() float64 { return schedLatencyQuantile(0.99) }, L("q", "0.99"))

	b := BuildInfo()
	r.Gauge("deviantd_build_info",
		"Build identity of this process; always 1, the labels carry the data.",
		L("version", b.Version), L("go", b.GoVersion)).Set(1)
}

// schedLatencyQuantile reads the runtime's goroutine scheduling latency
// distribution and returns an approximate quantile (seconds). Returns 0
// if the runtime does not expose the histogram.
func schedLatencyQuantile(q float64) float64 {
	sample := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := sample[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i] and Buckets[i+1] bound bucket i; the first and
			// last bounds may be ±Inf, so fall back to the finite edge.
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			switch {
			case math.IsInf(lo, -1):
				return hi
			case math.IsInf(hi, 1):
				return lo
			default:
				return (lo + hi) / 2
			}
		}
	}
	return 0
}
