package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "things")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("x_total", ""); again != c {
		t.Error("Counter not idempotent: second call returned a new handle")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.Add(-3)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %v, want 1", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", LinearBuckets(0, 1, 3)).Observe(2)
	r.CounterFunc("d", "", func() float64 { return 1 })
	r.GaugeFunc("e", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram should snapshot empty")
	}
}

// TestHistogramBucketMath pins the le-semantics of bucket assignment: an
// observation equal to an upper bound lands in that bucket, one just
// above it spills into the next, and values past the last bound land in
// +Inf.
func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.0001, 2, 3.9, 4, 4.0001, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// v <= 1: {0, 1}; 1 < v <= 2: {1.0001, 2}; 2 < v <= 4: {3.9, 4}; v > 4: {4.0001, 100}
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if wantSum := 0 + 1 + 1.0001 + 2 + 3.9 + 4 + 4.0001 + 100; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2})
	h.Observe(1.5)
	s := h.Snapshot()
	if s.Upper[0] != 1 || s.Upper[1] != 2 || s.Upper[2] != 4 {
		t.Fatalf("buckets not sorted: %v", s.Upper)
	}
	if s.Counts[1] != 1 {
		t.Errorf("1.5 should land in the le=2 bucket: %v", s.Counts)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 0.5, 4)
	if want := []float64{0, 0.5, 1, 1.5}; !equalFloats(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalFloats(exp, want) {
		t.Errorf("ExpBuckets = %v, want %v", exp, want)
	}
	if len(LatencyBuckets) == 0 || len(ZScoreBuckets) == 0 {
		t.Error("default bucket sets must be non-empty")
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests served", L("endpoint", "analyze")).Add(2)
	r.Counter("req_total", "", L("endpoint", "diff")).Inc()
	r.Gauge("depth", "queue depth").Set(3)
	r.GaugeFunc("live", "callback gauge", func() float64 { return 7 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total requests served\n",
		"# TYPE req_total counter\n",
		`req_total{endpoint="analyze"} 2`,
		`req_total{endpoint="diff"} 1`,
		"# TYPE depth gauge\n",
		"depth 3",
		"live 7",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families must render sorted by name.
	if strings.Index(out, "# TYPE depth") > strings.Index(out, "# TYPE lat_seconds") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `c_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing %q:\n%s", want, b.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("redeclaring a counter as a gauge should panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "line one\nline \\two").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `# HELP c_total line one\nline \\two` + "\n"; !strings.Contains(b.String(), want) {
		t.Errorf("escaped help missing %q:\n%s", want, b.String())
	}
}

func TestHistogramBucketConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "", []float64{1, 2, 4})
	if again := r.Histogram("h", "", nil); again == nil {
		t.Fatal("nil buckets should return the registered histogram")
	}
	r.Histogram("h", "", []float64{4, 2, 1}) // same layout, different order: ok
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram with different buckets should panic")
		}
	}()
	r.Histogram("h", "", []float64{1, 2, 8})
}

// TestConcurrentRegisterAndWrite races series creation against scrapes:
// Result.RecordMetrics creates new label combinations on every request
// while GET /metrics renders, so WritePrometheus must copy series under
// the registry lock. Run with -race.
func TestConcurrentRegisterAndWrite(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				lbl := L("checker", strings.Repeat("c", i%7+1))
				r.Counter("reports_total", "", lbl).Inc()
				r.Gauge("depth", "", lbl).Set(float64(i))
				r.Histogram("z", "", ZScoreBuckets, lbl).Observe(float64(i % 15))
				if w == 0 && i%100 == 0 {
					r.GaugeFunc("live", "", func() float64 { return float64(i) }, L("i", strings.Repeat("x", i/100+1)))
				}
			}
		}(w)
	}
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", LinearBuckets(0, 1, 4))
	c := r.Counter("c_total", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 5))
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Count)
	}
}
