package obs

import (
	"strings"
	"testing"
)

func TestSamplesSkipHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "h", L("endpoint", "/v1/analyze")).Add(3)
	r.Gauge("queue_depth", "h").Set(2)
	r.GaugeFunc("goroutines", "h", func() float64 { return 7 })
	r.Histogram("latency_seconds", "h", LatencyBuckets).Observe(0.01)

	samples := r.Samples()
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if _, ok := byName["latency_seconds"]; ok {
		t.Error("histogram series must not appear in Samples()")
	}
	if got := byName["reqs_total"]; got.Value != 3 || len(got.Labels) != 1 || got.Labels[0] != L("endpoint", "/v1/analyze") {
		t.Errorf("reqs_total = %+v", got)
	}
	if byName["queue_depth"].Value != 2 {
		t.Errorf("queue_depth = %+v", byName["queue_depth"])
	}
	if byName["goroutines"].Value != 7 {
		t.Errorf("goroutines (callback) = %+v", byName["goroutines"])
	}
	// Deterministic order: sorted by name+labels.
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Name > samples[i].Name {
			t.Errorf("samples out of order: %q after %q", samples[i].Name, samples[i-1].Name)
		}
	}
	var nilReg *Registry
	if nilReg.Samples() != nil {
		t.Error("nil registry must return nil samples")
	}
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", L("endpoint", "/v1/analyze"), L("code", "200")).Add(5)
	r.Gauge("up", "is up").Set(1)
	r.Histogram("lat", "latency", []float64{0.1, 1}).Observe(0.5)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := ParsePrometheus(buf.String())
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if got := byName["reqs_total"]; got.Value != 5 || len(got.Labels) != 2 {
		t.Errorf("reqs_total = %+v", got)
	}
	if byName["up"].Value != 1 {
		t.Errorf("up = %+v", byName["up"])
	}
	if _, ok := byName["lat_bucket"]; ok {
		t.Error("le-labeled bucket series must be dropped")
	}
	// _sum/_count pass through as scalars.
	if byName["lat_sum"].Value != 0.5 || byName["lat_count"].Value != 1 {
		t.Errorf("lat_sum/count = %+v / %+v", byName["lat_sum"], byName["lat_count"])
	}
}

func TestParsePrometheusHostile(t *testing.T) {
	in := strings.Join([]string{
		"# HELP x y",
		"# TYPE x counter",
		"",
		"x 1",
		`y{a="with \"quotes\" and \\slash\\ and \n newline"} 2.5`,
		"garbage line without value",
		`z{unterminated="oops 3`,
		`w{} 4`,
		"nan_metric NaN",
	}, "\n")
	samples := ParsePrometheus(in)
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name] = s
	}
	if byName["x"].Value != 1 {
		t.Errorf("x = %+v", byName["x"])
	}
	y := byName["y"]
	if len(y.Labels) != 1 || y.Labels[0].Value != "with \"quotes\" and \\slash\\ and \n newline" || y.Value != 2.5 {
		t.Errorf("y = %+v", y)
	}
	if byName["w"].Value != 4 {
		t.Errorf("w (empty label set) = %+v", byName["w"])
	}
	if _, ok := byName["z"]; ok {
		t.Error("unterminated label string must be skipped")
	}
	if _, ok := byName["garbage"]; ok {
		t.Error("garbage must be skipped")
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"go_goroutines ",
		"go_heap_alloc_bytes ",
		"go_gc_pause_seconds_total ",
		"go_gc_cycles_total ",
		`go_sched_latency_seconds{q="0.5"}`,
		`go_sched_latency_seconds{q="0.99"}`,
		`deviantd_build_info{go="`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q in:\n%s", want, out)
		}
	}
	// Goroutine count must be live and positive.
	samples := r.Samples()
	for _, s := range samples {
		if s.Name == "go_goroutines" && s.Value < 1 {
			t.Errorf("go_goroutines = %v, want >= 1", s.Value)
		}
		if s.Name == "deviantd_build_info" && s.Value != 1 {
			t.Errorf("deviantd_build_info = %v, want 1", s.Value)
		}
	}
	RegisterRuntimeMetrics(nil) // must not panic
}
