package obs

import (
	"sort"
	"strconv"
	"strings"
)

// Sample is one scalar metric reading — the unit of metrics federation.
// Workers embed samples in shard responses and serve them on /metrics;
// the coordinator republishes them under fleet_-prefixed names with a
// worker label (see internal/dist). Histogram series do not travel as
// samples: cross-process bucket merging needs aligned layouts, and the
// fleet rollup only promises scalar families.
type Sample struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Samples snapshots every counter, gauge, and callback-backed series in
// the registry as scalar samples, sorted by name then rendered labels.
// Histogram families are skipped (see Sample). Nil-safe.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	type keyed struct {
		key string
		s   Sample
		fn  func() float64
	}
	// Copy series pointers and callbacks under the lock; run the callbacks
	// after unlocking, since they may call back into subsystems that take
	// their own locks (the same discipline WritePrometheus follows).
	r.mu.Lock()
	var out []keyed
	for _, f := range r.families {
		if f.kind == kindHistogram {
			continue
		}
		for key, s := range f.series {
			k := keyed{key: f.name + key, s: Sample{Name: f.name, Labels: append([]Label(nil), s.labels...)}}
			switch {
			case s.fn != nil:
				k.fn = s.fn
			case s.counter != nil:
				k.s.Value = s.counter.Value()
			case s.gauge != nil:
				k.s.Value = s.gauge.Value()
			}
			out = append(out, k)
		}
	}
	r.mu.Unlock()
	for i := range out {
		if out[i].fn != nil {
			out[i].s.Value = out[i].fn()
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].key < out[b].key })
	samples := make([]Sample, len(out))
	for j, k := range out {
		samples[j] = k.s
	}
	return samples
}

// ParsePrometheus parses text in the Prometheus exposition format into
// scalar samples. It is the scrape half of metrics federation: the
// coordinator GETs a worker's /metrics and republishes what it finds.
// Comment lines, blank lines, unparsable lines, and histogram bucket
// series (any series carrying an le label) are skipped; _sum/_count
// series pass through as plain scalars.
func ParsePrometheus(text string) []Sample {
	var out []Sample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, valueStr, ok := splitPromLine(line)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			continue
		}
		isBucket := false
		for _, l := range labels {
			if l.Name == "le" {
				isBucket = true
				break
			}
		}
		if isBucket {
			continue
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	return out
}

// splitPromLine splits `name{a="b",c="d"} 42` (labels optional) into its
// parts. Label values may contain escaped quotes, backslashes, and \n.
func splitPromLine(line string) (name string, labels []Label, value string, ok bool) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return "", nil, "", false
		}
		return line[:sp], nil, strings.TrimSpace(line[sp:]), true
	}
	name = line[:brace]
	rest := line[brace+1:]
	for {
		rest = strings.TrimLeft(rest, ", \t")
		if rest == "" {
			return "", nil, "", false
		}
		if rest[0] == '}' {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, "", false
		}
		lname := strings.TrimSpace(rest[:eq])
		lval, remaining, vok := readQuoted(rest[eq+2:])
		if !vok {
			return "", nil, "", false
		}
		labels = append(labels, Label{Name: lname, Value: lval})
		rest = remaining
	}
	return name, labels, strings.TrimSpace(rest), true
}

// readQuoted consumes an exposition-format quoted string body (opening
// quote already consumed), returning the unescaped value and what
// follows the closing quote.
func readQuoted(s string) (value, rest string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}
