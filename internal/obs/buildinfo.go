package obs

import (
	"runtime"
	"runtime/debug"
)

// Build describes the running binary, for health endpoints and logs.
type Build struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// BuildInfo reads the binary's embedded module and VCS metadata
// (debug.ReadBuildInfo). Fields missing from the build — e.g. the VCS
// revision in a plain `go test` binary — are left empty.
func BuildInfo() Build {
	b := Build{Version: "(devel)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}
