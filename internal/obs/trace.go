// Package obs is deviant's zero-dependency observability layer: spans
// for tracing where a run spends its time, a small metrics registry
// (counters, gauges, fixed-bucket histograms) rendered in Prometheus
// text format, and build metadata for health endpoints.
//
// Everything here is designed to be *off by default and nil-safe*: every
// method on a nil *Tracer or nil *Span is a no-op that does not read the
// clock, so library users who never attach a tracer pay only a pointer
// check per instrumentation site. Instrumented output never feeds back
// into the analysis itself, so tracing cannot perturb the byte-identical
// determinism the pipeline guarantees.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attrs are part of a span's
// identity for the determinism tests (the set of (name, attrs) pairs a
// run emits must not depend on the worker count), so values must be
// derived from the input, never from scheduling. The JSON tags are the
// shard wire format: worker span streams travel inside shard responses.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanInfo is one finished span as recorded by the tracer: times are
// offsets from the tracer's creation, and Lane is the virtual thread the
// Chrome trace export places the span on.
type SpanInfo struct {
	Name  string
	Attrs []Attr
	Lane  int
	Start time.Duration
	End   time.Duration
}

// Tracer collects finished spans. It is safe for concurrent use; the
// parallel pipeline forks spans from many goroutines at once.
//
// The zero tracer is not useful — use NewTracer — but a nil *Tracer is a
// valid "tracing off" value: Start returns a nil span and every
// downstream call no-ops.
type Tracer struct {
	start time.Time

	mu        sync.Mutex
	done      []SpanInfo
	freeLanes []int
	nextLane  int
	imported  []importedProcess
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Elapsed returns how long the tracer's clock has been running. The
// value is monotonic (Go's time.Time carries the monotonic reading), so
// it is safe to use as an anchor when aligning a remote span stream
// onto this tracer's timeline. Zero on a nil tracer.
func (t *Tracer) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

func (t *Tracer) acquireLane() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.freeLanes); n > 0 {
		l := t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		return l
	}
	l := t.nextLane
	t.nextLane++
	return l
}

// Span is one timed region. Spans form a tree: Child starts sequential
// sub-work on the same display lane (the caller's goroutine), Fork starts
// concurrent sub-work on a fresh lane. A span must End before its parent
// does; Chrome's trace viewer requires events on one lane to nest.
type Span struct {
	t       *Tracer
	name    string
	attrs   []Attr
	lane    int
	ownLane bool
	start   time.Time
	ended   bool
}

// Start opens a top-level span on a fresh lane. On a nil tracer it
// returns nil, and every method on a nil span is a no-op.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, attrs: attrs, lane: t.acquireLane(), ownLane: true, start: time.Now()}
}

// Child opens a nested span on the parent's lane. Use it for sequential
// sub-stages running on the same goroutine; concurrent children must use
// Fork or the lane's events would overlap without nesting.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, attrs: attrs, lane: s.lane, start: time.Now()}
}

// Fork opens a nested span on a fresh lane. Use it for sub-work that runs
// concurrently with the parent's goroutine (per-unit frontend, per-function
// CFG builds, checker shards). Safe to call from any goroutine.
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, attrs: attrs, lane: s.t.acquireLane(), ownLane: true, start: time.Now()}
}

// SetAttr appends an annotation discovered mid-span (for example whether a
// unit was served from the snapshot store). Call only from the goroutine
// that owns the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and records it on the tracer. Ending twice is a
// no-op, as is ending a nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := time.Now()
	t := s.t
	t.mu.Lock()
	if s.ownLane {
		t.freeLanes = append(t.freeLanes, s.lane)
	}
	t.done = append(t.done, SpanInfo{
		Name:  s.name,
		Attrs: s.attrs,
		Lane:  s.lane,
		Start: s.start.Sub(t.start),
		End:   end.Sub(t.start),
	})
	t.mu.Unlock()
}

// Spans returns a copy of every finished span, in completion order.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.done))
	copy(out, t.done)
	return out
}

// WireSpan is one finished span in wire form: times are nanosecond
// offsets from the owning tracer's start, so a stream is meaningful on
// any machine once the receiver knows where that start sits on its own
// timeline (see Tracer.ImportProcess).
type WireSpan struct {
	Name    string `json:"name"`
	Attrs   []Attr `json:"attrs,omitempty"`
	Lane    int    `json:"lane"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// TraceExport is a tracer's finished spans plus the monotonic clock
// anchor a receiver needs to align them: DurNs is how long the tracer's
// clock had been running at export time. A coordinator that measured
// the request round trip can place the worker's tracer start at
// send + (rtt - DurNs)/2 on its own timeline — the classic symmetric-
// delay offset estimate — and every span offset follows.
type TraceExport struct {
	DurNs int64      `json:"dur_ns"`
	Spans []WireSpan `json:"spans,omitempty"`
}

// Export snapshots the tracer's finished spans in wire form. Nil on a
// nil tracer. Imported foreign spans are not re-exported: stitching is
// one level deep (workers export, the coordinator imports), matching
// the fleet's one-coordinator topology.
func (t *Tracer) Export() *TraceExport {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	ex := &TraceExport{DurNs: t.Elapsed().Nanoseconds(), Spans: make([]WireSpan, len(spans))}
	for i, s := range spans {
		ex.Spans[i] = WireSpan{
			Name:    s.Name,
			Attrs:   s.Attrs,
			Lane:    s.Lane,
			StartNs: s.Start.Nanoseconds(),
			EndNs:   s.End.Nanoseconds(),
		}
	}
	return ex
}

// importedProcess is one foreign span stream stitched into this trace:
// a remote process's exported spans plus where its tracer start sits on
// the local timeline.
type importedProcess struct {
	name   string
	offset time.Duration
	spans  []WireSpan
}

// ImportProcess stitches a foreign span stream into this trace under
// the given process name, with the foreign tracer's start placed at
// offset on this tracer's timeline. Importing the same name again
// appends to that process's stream (a worker answering both scatter
// rounds is still one process). Safe for concurrent use; no-op on a
// nil tracer or nil export.
//
// Imported spans render as their own Perfetto process lane (see
// WriteChromeTrace), so their lane ids live in a per-process namespace
// and can never collide with this tracer's own Child/Fork lanes.
func (t *Tracer) ImportProcess(name string, offset time.Duration, ex *TraceExport) {
	if t == nil || ex == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.imported {
		if t.imported[i].name == name {
			t.imported[i].spans = append(t.imported[i].spans, ex.Spans...)
			return
		}
	}
	t.imported = append(t.imported, importedProcess{name: name, offset: offset, spans: append([]WireSpan(nil), ex.Spans...)})
}

// ImportedProcess is a read-only view of one stitched foreign process.
type ImportedProcess struct {
	Name   string
	Offset time.Duration
	Spans  []WireSpan
}

// Imported returns copies of the stitched foreign processes, sorted by
// name (the same deterministic order WriteChromeTrace assigns process
// ids in).
func (t *Tracer) Imported() []ImportedProcess {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ImportedProcess, len(t.imported))
	for i, p := range t.imported {
		out[i] = ImportedProcess{Name: p.name, Offset: p.offset, Spans: append([]WireSpan(nil), p.spans...)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Perfetto
// and chrome://tracing load a JSON object holding a traceEvents array of
// these; ts/dur are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// CoordinatorProcessName labels the local process's lane group in a
// stitched multi-process trace.
const CoordinatorProcessName = "coordinator"

// WriteChromeTrace writes the finished spans as Chrome trace-event JSON,
// loadable directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Events are sorted by start time so the output is stable for a given
// span recording.
//
// Local spans render on process id 1. Foreign span streams stitched in
// with ImportProcess each get their own process id, assigned 2, 3, ...
// in sorted process-name order — a deterministic per-worker lane
// namespace, so a worker's lane 0 can never collide with the
// coordinator's lane 0 or another worker's. When any foreign process is
// present, process_name metadata events label every lane group (the
// local one as "coordinator"), which Perfetto renders as one process
// track per fleet member.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	imported := t.Imported()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64((s.End - s.Start).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Lane,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	for pi, p := range imported {
		pid := 2 + pi // Imported() sorts by name, so ids are deterministic.
		for _, s := range p.Spans {
			ev := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				Ts:   float64((p.Offset + time.Duration(s.StartNs)).Nanoseconds()) / 1e3,
				Dur:  float64(s.EndNs-s.StartNs) / 1e3,
				Pid:  pid,
				Tid:  s.Lane,
			}
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]string, len(s.Attrs))
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
			}
			events = append(events, ev)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		if events[i].Pid != events[j].Pid {
			return events[i].Pid < events[j].Pid
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Name < events[j].Name
	})
	if len(imported) > 0 {
		// Only a stitched trace gets metadata events, so a single-process
		// trace's bytes are unchanged from before stitching existed.
		meta := make([]chromeEvent, 0, 1+len(imported))
		meta = append(meta, chromeEvent{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]string{"name": CoordinatorProcessName}})
		for pi, p := range imported {
			meta = append(meta, chromeEvent{Name: "process_name", Ph: "M", Pid: 2 + pi, Args: map[string]string{"name": p.Name}})
		}
		events = append(meta, events...)
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
