// Package obs is deviant's zero-dependency observability layer: spans
// for tracing where a run spends its time, a small metrics registry
// (counters, gauges, fixed-bucket histograms) rendered in Prometheus
// text format, and build metadata for health endpoints.
//
// Everything here is designed to be *off by default and nil-safe*: every
// method on a nil *Tracer or nil *Span is a no-op that does not read the
// clock, so library users who never attach a tracer pay only a pointer
// check per instrumentation site. Instrumented output never feeds back
// into the analysis itself, so tracing cannot perturb the byte-identical
// determinism the pipeline guarantees.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attrs are part of a span's
// identity for the determinism tests (the set of (name, attrs) pairs a
// run emits must not depend on the worker count), so values must be
// derived from the input, never from scheduling.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanInfo is one finished span as recorded by the tracer: times are
// offsets from the tracer's creation, and Lane is the virtual thread the
// Chrome trace export places the span on.
type SpanInfo struct {
	Name  string
	Attrs []Attr
	Lane  int
	Start time.Duration
	End   time.Duration
}

// Tracer collects finished spans. It is safe for concurrent use; the
// parallel pipeline forks spans from many goroutines at once.
//
// The zero tracer is not useful — use NewTracer — but a nil *Tracer is a
// valid "tracing off" value: Start returns a nil span and every
// downstream call no-ops.
type Tracer struct {
	start time.Time

	mu        sync.Mutex
	done      []SpanInfo
	freeLanes []int
	nextLane  int
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

func (t *Tracer) acquireLane() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.freeLanes); n > 0 {
		l := t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		return l
	}
	l := t.nextLane
	t.nextLane++
	return l
}

// Span is one timed region. Spans form a tree: Child starts sequential
// sub-work on the same display lane (the caller's goroutine), Fork starts
// concurrent sub-work on a fresh lane. A span must End before its parent
// does; Chrome's trace viewer requires events on one lane to nest.
type Span struct {
	t       *Tracer
	name    string
	attrs   []Attr
	lane    int
	ownLane bool
	start   time.Time
	ended   bool
}

// Start opens a top-level span on a fresh lane. On a nil tracer it
// returns nil, and every method on a nil span is a no-op.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, attrs: attrs, lane: t.acquireLane(), ownLane: true, start: time.Now()}
}

// Child opens a nested span on the parent's lane. Use it for sequential
// sub-stages running on the same goroutine; concurrent children must use
// Fork or the lane's events would overlap without nesting.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, attrs: attrs, lane: s.lane, start: time.Now()}
}

// Fork opens a nested span on a fresh lane. Use it for sub-work that runs
// concurrently with the parent's goroutine (per-unit frontend, per-function
// CFG builds, checker shards). Safe to call from any goroutine.
func (s *Span) Fork(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, attrs: attrs, lane: s.t.acquireLane(), ownLane: true, start: time.Now()}
}

// SetAttr appends an annotation discovered mid-span (for example whether a
// unit was served from the snapshot store). Call only from the goroutine
// that owns the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and records it on the tracer. Ending twice is a
// no-op, as is ending a nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := time.Now()
	t := s.t
	t.mu.Lock()
	if s.ownLane {
		t.freeLanes = append(t.freeLanes, s.lane)
	}
	t.done = append(t.done, SpanInfo{
		Name:  s.name,
		Attrs: s.attrs,
		Lane:  s.lane,
		Start: s.start.Sub(t.start),
		End:   end.Sub(t.start),
	})
	t.mu.Unlock()
}

// Spans returns a copy of every finished span, in completion order.
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanInfo, len(t.done))
	copy(out, t.done)
	return out
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Perfetto
// and chrome://tracing load a JSON object holding a traceEvents array of
// these; ts/dur are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the finished spans as Chrome trace-event JSON,
// loadable directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Events are sorted by start time so the output is stable for a given
// span recording.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64((s.End - s.Start).Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Lane,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Name < events[j].Name
	})
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
