package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (rendered as {name="value"}). Keep
// cardinality low: labels come from fixed sets (endpoint names, checker
// names), never from user input.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// atomicFloat is a float64 with atomic add/load, for counters and gauges
// shared across request goroutines.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value. All methods are nil-safe
// so callers can hold a nil handle when metrics are disabled.
type Counter struct{ f atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (v must be >= 0; negative deltas are
// dropped to preserve monotonicity).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.f.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.f.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ f atomicFloat }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.f.Store(v)
}

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.f.Add(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.f.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with upper[i-1] < v <= upper[i] (Prometheus "le"
// semantics); one implicit +Inf bucket catches the tail.
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; last is +Inf
	sum    atomicFloat
	total  atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; past the end means +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram: Counts[i] is the
// raw (non-cumulative) count of bucket i, with Counts[len(Upper)] the
// +Inf bucket.
type HistSnapshot struct {
	Upper  []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Upper:  append([]float64(nil), h.upper...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns count upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 1ms to ~8s, the range of one analysis request.
var LatencyBuckets = ExpBuckets(0.001, 2, 14)

// ZScoreBuckets spans the z statistic's useful range: reports rank by z,
// and almost everything interesting lands in [0, 15).
var ZScoreBuckets = LinearBuckets(0, 1, 15)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one label combination within a family: exactly one of the
// value fields is set.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // callback-backed counter or gauge
	hist    *Histogram
}

type metricFamily struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by rendered label string
}

// Registry holds metric families and renders them in Prometheus text
// format with # HELP and # TYPE metadata. Getter methods are idempotent:
// asking for an existing (name, labels) pair returns the same handle, so
// instrumentation sites need no registration phase. A nil *Registry
// hands out nil handles, whose methods all no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*metricFamily
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*metricFamily)}
}

func (r *Registry) family(name, help string, kind metricKind) *metricFamily {
	f, ok := r.families[name]
	if !ok {
		f = &metricFamily{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q redeclared as %s (was %s)", name, kind, f.kind))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, counter: &Counter{}}
		f.series[key] = s
	}
	return s.counter
}

// CounterFunc registers a callback-backed counter (e.g. a cumulative
// total owned by another subsystem). Re-registering replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	f.series[renderLabels(labels)] = &series{labels: labels, fn: fn}
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, gauge: &Gauge{}}
		f.series[key] = s
	}
	return s.gauge
}

// GaugeFunc registers a callback-backed gauge, sampled at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	f.series[renderLabels(labels)] = &series{labels: labels, fn: fn}
}

// Histogram returns (creating if needed) the histogram for name+labels.
// The bucket layout is fixed on first creation; later calls may pass nil
// to mean "whatever was registered", but passing a different non-nil
// layout panics — two call sites silently sharing mismatched buckets
// would corrupt the data.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels, hist: newHistogram(buckets)}
		f.series[key] = s
	} else if buckets != nil && !sameBuckets(s.hist.upper, buckets) {
		panic(fmt.Sprintf("obs: histogram %s%s re-registered with buckets %v (was %v)",
			name, key, buckets, s.hist.upper))
	}
	return s.hist
}

// sameBuckets reports whether the requested bucket layout matches the
// registered one, ignoring order (newHistogram sorts on creation).
func sameBuckets(registered, requested []float64) bool {
	if len(registered) != len(requested) {
		return false
	}
	sorted := append([]float64(nil), requested...)
	sort.Float64s(sorted)
	for i := range sorted {
		if sorted[i] != registered[i] {
			return false
		}
	}
	return true
}

// escapeHelp escapes HELP text per the exposition format, where only
// backslash and line feed are special (quotes are not).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels renders {a="b",c="d"} (empty string for no labels), which
// doubles as the series key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// withLe splices an le="..." label into an already-rendered label string.
func withLe(rendered, le string) string {
	if rendered == "" {
		return `{le="` + le + `"}`
	}
	return rendered[:len(rendered)-1] + `,le="` + le + `"}`
}

// formatVal renders integers without an exponent or decimal point so
// simple counters read naturally ("2", not "2e+00").
func formatVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderedSeries pairs a series pointer with its pre-rendered label key,
// copied out of the family map under the registry lock so rendering never
// touches the live maps.
type renderedSeries struct {
	key string
	s   *series
}

type renderedFamily struct {
	name   string
	help   string
	kind   metricKind
	series []renderedSeries
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families and series sorted by name so scrapes are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Copy everything we need — family metadata and series pointers — while
	// holding the lock: getters insert into both maps concurrently, and the
	// series values themselves are immutable once published. Rendering and
	// fn callbacks then run unlocked, since callbacks may call back into
	// subsystems that take their own locks.
	r.mu.Lock()
	fams := make([]renderedFamily, 0, len(r.families))
	for _, f := range r.families {
		rf := renderedFamily{
			name:   f.name,
			help:   f.help,
			kind:   f.kind,
			series: make([]renderedSeries, 0, len(f.series)),
		}
		for key, s := range f.series {
			rf.series = append(rf.series, renderedSeries{key: key, s: s})
		}
		sort.Slice(rf.series, func(i, j int) bool { return rf.series[i].key < rf.series[j].key })
		fams = append(fams, rf)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, rs := range f.series {
			key, s := rs.key, rs.s
			switch {
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatVal(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatVal(s.counter.Value()))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatVal(s.gauge.Value()))
			case s.hist != nil:
				snap := s.hist.Snapshot()
				cum := int64(0)
				for bi, upper := range snap.Upper {
					cum += snap.Counts[bi]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLe(key, formatBound(upper)), cum)
				}
				cum += snap.Counts[len(snap.Upper)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLe(key, "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, key, formatVal(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, key, snap.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
