package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestJournalLineShape(t *testing.T) {
	var buf strings.Builder
	j := NewJournal(&buf, "req-123")
	j.Event("run_start", A("corpus", "demo"), A("units", "6"))
	j.Event("rank", A("reports", "4"))

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	// Fixed field order is part of the format (golden tests depend on it).
	if !strings.HasPrefix(lines[0], `{"run":"req-123","seq":0,"ts":"`) {
		t.Errorf("line 0 prefix = %s", lines[0])
	}
	if !strings.Contains(lines[0], `"event":"run_start","corpus":"demo","units":"6"}`) {
		t.Errorf("line 0 = %s", lines[0])
	}
	// Every line is standalone valid JSON carrying the run id.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if m["run"] != "req-123" {
			t.Errorf("line %d run = %v", i, m["run"])
		}
		if int(m["seq"].(float64)) != i {
			t.Errorf("line %d seq = %v", i, m["seq"])
		}
	}
}

func TestJournalEscaping(t *testing.T) {
	var buf strings.Builder
	j := NewJournal(&buf, `r"un`)
	j.Event("ev", A("msg", "a\"b\nc\\d"))
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &m); err != nil {
		t.Fatalf("escaped line not valid JSON: %v\n%s", err, buf.String())
	}
	if m["msg"] != "a\"b\nc\\d" {
		t.Errorf("msg = %q", m["msg"])
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Event("anything", A("k", "v")) // must not panic
	if j.Run() != "" || j.Err() != nil {
		t.Error("nil journal must report empty run and no error")
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestJournalKeepsFirstError(t *testing.T) {
	want := errors.New("disk full")
	j := NewJournal(failWriter{err: want}, "r")
	j.Event("a")
	j.Event("b")
	if got := j.Err(); !errors.Is(got, want) {
		t.Errorf("Err() = %v, want %v", got, want)
	}
}

func TestJournalConcurrentSeq(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	j := NewJournal(lockedWriter, "r")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j.Event("tick")
		}()
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	mu.Unlock()
	if len(lines) != 32 {
		t.Fatalf("got %d lines, want 32", len(lines))
	}
	seen := map[int]bool{}
	for _, line := range lines {
		var m struct {
			Seq int `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		if seen[m.Seq] {
			t.Errorf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
