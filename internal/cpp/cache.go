package cpp

import (
	"sync"
	"sync/atomic"

	"deviant/internal/ctoken"
)

// TokenCache shares the raw scanned token stream of each file across
// translation units. Every unit of a kernel-style tree includes the same
// headers, and with one Preprocessor per unit each header was previously
// re-lexed once per includer; a cache keyed by file name lexes it once for
// the whole run. Only the *scan* is shared — scanning depends on nothing
// but the file contents — while directive evaluation and macro expansion
// still run per unit, so conditional compilation and macro state stay
// exactly as precise as before.
//
// The cache is safe for concurrent use; the parallel frontend hands one
// instance to every worker's Preprocessor. Cached token slices are
// treated as read-only by the preprocessor (macro bodies and expansions
// are always copied before mutation).
type TokenCache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// CacheStats is a point-in-time snapshot of cache effectiveness. A hit is
// a scan avoided; a miss is a file that had to be lexed (two workers
// racing on the same cold header each count a miss, so misses can
// slightly exceed the distinct file count). hits/(hits+misses) is the
// fraction of file scans the cache absorbed.
type CacheStats struct {
	Hits   int64
	Misses int64
}

type cacheEntry struct {
	toks []ctoken.Token
	errs []error
}

// NewTokenCache returns an empty cache.
func NewTokenCache() *TokenCache {
	return &TokenCache{entries: make(map[string]*cacheEntry)}
}

func (c *TokenCache) get(name string) ([]ctoken.Token, []error, bool) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	return e.toks, e.errs, true
}

func (c *TokenCache) put(name string, toks []ctoken.Token, errs []error) {
	c.mu.Lock()
	if _, ok := c.entries[name]; !ok {
		c.entries[name] = &cacheEntry{toks: toks, errs: errs}
	}
	c.mu.Unlock()
}

// Len returns the number of cached files.
func (c *TokenCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the hit/miss counters accumulated so far.
func (c *TokenCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
