package cpp

import (
	"sync"

	"deviant/internal/ctoken"
)

// TokenCache shares the raw scanned token stream of each file across
// translation units. Every unit of a kernel-style tree includes the same
// headers, and with one Preprocessor per unit each header was previously
// re-lexed once per includer; a cache keyed by file name lexes it once for
// the whole run. Only the *scan* is shared — scanning depends on nothing
// but the file contents — while directive evaluation and macro expansion
// still run per unit, so conditional compilation and macro state stay
// exactly as precise as before.
//
// The cache is safe for concurrent use; the parallel frontend hands one
// instance to every worker's Preprocessor. Cached token slices are
// treated as read-only by the preprocessor (macro bodies and expansions
// are always copied before mutation).
type TokenCache struct {
	mu      sync.RWMutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	toks []ctoken.Token
	errs []error
}

// NewTokenCache returns an empty cache.
func NewTokenCache() *TokenCache {
	return &TokenCache{entries: make(map[string]*cacheEntry)}
}

func (c *TokenCache) get(name string) ([]ctoken.Token, []error, bool) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return nil, nil, false
	}
	return e.toks, e.errs, true
}

func (c *TokenCache) put(name string, toks []ctoken.Token, errs []error) {
	c.mu.Lock()
	if _, ok := c.entries[name]; !ok {
		c.entries[name] = &cacheEntry{toks: toks, errs: errs}
	}
	c.mu.Unlock()
}

// Len returns the number of cached files.
func (c *TokenCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
