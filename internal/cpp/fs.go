package cpp

import (
	"os"
	"path/filepath"
)

// DirFS is a FileProvider rooted at a directory on disk.
type DirFS string

// ReadFile implements FileProvider.
func (d DirFS) ReadFile(name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(string(d), name))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
