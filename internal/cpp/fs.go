package cpp

import (
	"os"
	"path/filepath"
)

// DirFS is a FileProvider rooted at a directory on disk.
type DirFS string

// ReadFile implements FileProvider. The read buffer is returned as-is —
// no string round-trip — and flows straight into the scanner.
func (d DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(string(d), name))
}
