package cpp

import (
	"fmt"
	"testing"
)

// FuzzPreprocess feeds arbitrary bytes through the preprocessor with a
// small fixed header tree available for inclusion. Invariants: no panic,
// and both the token stream and the diagnostic set are deterministic.
func FuzzPreprocess(f *testing.F) {
	f.Add("#include \"fz.h\"\nint x = FZ_ONE;\n")
	f.Add("#define A(x) B(x)\n#define B(x) A(x)\nA(1)\n")
	f.Add("#include \"loop.h\"\n")
	f.Add("#if defined(X)\n#elif 0\n#else\n#endif\n#endif\n")
	f.Add("#define CAT(a,b) a##b\nCAT(id,0) CAT(,) CAT(a)\n")
	f.Add("#define S(x) #x\nS(\"quote \\\" inside\")\n")
	f.Add("#ifdef OPEN\nnever closed\n")
	f.Add("#include <missing.h>\n#define\n#undef\n#line\n")
	fs := MapFS{
		"fz.h":   "#ifndef FZ_H\n#define FZ_H\n#define FZ_ONE 1\n#endif\n",
		"loop.h": "#include \"loop.h\"\n",
	}
	f.Fuzz(func(t *testing.T, src string) {
		run := func() ([]string, string) {
			p := New(fs, ".")
			toks, err := p.ProcessSource("fuzz.c", src)
			out := make([]string, 0, len(toks))
			for _, tok := range toks {
				out = append(out, fmt.Sprintf("%v %q %v", tok.Kind, tok.Text, tok.Pos))
			}
			diag := fmt.Sprintf("%v %v", err, p.Errs())
			return out, diag
		}
		a, ad := run()
		b, bd := run()
		if ad != bd {
			t.Fatalf("non-deterministic diagnostics:\n%s\nvs\n%s", ad, bd)
		}
		if len(a) != len(b) {
			t.Fatalf("non-deterministic: %d vs %d tokens", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("non-deterministic at token %d: %s vs %s", i, a[i], b[i])
			}
		}
	})
}
