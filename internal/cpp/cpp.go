// Package cpp implements a C preprocessor over ctoken streams.
//
// It supports #include, object-like and function-like #define (including
// stringizing # and pasting ##), #undef, and the conditional directives
// #if/#ifdef/#ifndef/#elif/#else/#endif with constant-expression
// evaluation.
//
// Following the paper (Section 6), every token produced by a macro
// expansion is marked FromMacro. Checkers use the mark to truncate belief
// propagation at macro boundaries, which removes the dominant source of
// null-checker false positives the paper reports.
package cpp

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"unsafe"

	"deviant/internal/ctoken"
	"deviant/internal/intern"
	"deviant/internal/obs"
)

// FileProvider supplies source text for #include resolution. Using an
// interface keeps the preprocessor independent of the filesystem: the
// synthetic corpus serves includes from memory.
//
// Contents are served as []byte so disk providers can hand the read
// buffer straight to the scanner with no string round-trip. Callers
// treat the returned bytes as immutable.
type FileProvider interface {
	// ReadFile returns the contents of name, or an error if it does not
	// exist.
	ReadFile(name string) ([]byte, error)
}

// MapFS is an in-memory FileProvider.
type MapFS map[string]string

// ReadFile implements FileProvider. The returned slice is a zero-copy
// view of the stored string; callers must not mutate it.
func (m MapFS) ReadFile(name string) ([]byte, error) {
	if src, ok := m[name]; ok {
		return stringBytes(src), nil
	}
	return nil, fmt.Errorf("cpp: file %q not found", name)
}

// stringBytes views s as bytes without copying. The result must never be
// written through — FileProvider contents are immutable by contract.
func stringBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// bytesString views b as a string without copying. Safe under the same
// immutability contract as stringBytes.
func bytesString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

type macro struct {
	name     string
	funcLike bool
	params   []string
	variadic bool
	body     []ctoken.Token
}

// Preprocessor expands one translation unit.
type Preprocessor struct {
	fs       FileProvider
	includes []string // include search directories
	macros   map[string]*macro
	out      []ctoken.Token
	errs     []error
	depth    int // include nesting depth
	included map[string]bool
	missing  map[string]bool // include candidates probed and not found
	cache    *TokenCache     // optional shared scan cache
	interner *intern.Table   // optional per-run identifier interner
	trace    *obs.Span       // optional tracing parent for include spans
}

const maxIncludeDepth = 40

// New returns a preprocessor reading includes from fs, searching dirs.
func New(fs FileProvider, dirs ...string) *Preprocessor {
	return &Preprocessor{
		fs:       fs,
		includes: dirs,
		macros:   make(map[string]*macro),
		included: make(map[string]bool),
	}
}

// UseCache makes p consult (and populate) a shared scan cache, so files
// included by many translation units are lexed only once per run.
func (p *Preprocessor) UseCache(c *TokenCache) { p.cache = c }

// SetInterner attaches a per-run identifier interner: every Ident token
// p scans gets its Text rebound to the table's canonical string. Attach
// the same table to every preprocessor of a run (and to its TokenCache
// users) so equal spellings share one allocation run-wide.
func (p *Preprocessor) SetInterner(t *intern.Table) { p.interner = t }

// SetTrace makes p emit one child span per resolved #include under sp
// (attr: file), so a trace shows which headers a unit's expansion paid
// for. Includes are processed on the caller's goroutine, so the spans
// nest properly on sp's lane. A nil span disables include tracing.
func (p *Preprocessor) SetTrace(sp *obs.Span) { p.trace = sp }

// Define installs an object-like macro, as with -Dname=value.
func (p *Preprocessor) Define(name, value string) {
	s := ctoken.NewScanner("<cmdline>", value)
	toks := s.ScanAll()
	toks = toks[:len(toks)-1] // drop EOF
	p.macros[name] = &macro{name: name, body: toks}
}

// Errs returns accumulated preprocessing errors.
func (p *Preprocessor) Errs() []error { return p.errs }

// IncludeDeps returns the resolved path of every file pulled in via
// #include while expanding the unit, sorted. Together with the unit
// itself these are the files whose contents determine the expanded token
// stream, which is what a content-addressed frontend cache must hash.
func (p *Preprocessor) IncludeDeps() []string {
	deps := make([]string, 0, len(p.included))
	for name := range p.included {
		deps = append(deps, name)
	}
	sort.Strings(deps)
	return deps
}

// MissedProbes returns every include search candidate that was probed and
// not found, sorted. A cache that records these can detect that creating
// such a file would shadow a previously resolved include and change the
// expansion, even though every previously read file is unchanged.
func (p *Preprocessor) MissedProbes() []string {
	probes := make([]string, 0, len(p.missing))
	for name := range p.missing {
		probes = append(probes, name)
	}
	sort.Strings(probes)
	return probes
}

// Macros returns the names of all currently defined macros, sorted.
func (p *Preprocessor) Macros() []string {
	names := make([]string, 0, len(p.macros))
	for n := range p.macros {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (p *Preprocessor) errorf(pos ctoken.Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// Process preprocesses the named file and returns the expanded token
// stream, terminated by EOF.
func (p *Preprocessor) Process(name string) ([]ctoken.Token, error) {
	src, err := p.fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return p.ProcessSource(name, bytesString(src))
}

// ProcessBytes preprocesses src without copying it, reporting positions
// against name. src must stay unmutated while the returned tokens are
// live — literal token texts alias it.
func (p *Preprocessor) ProcessBytes(name string, src []byte) ([]ctoken.Token, error) {
	return p.ProcessSource(name, bytesString(src))
}

// ProcessSource preprocesses src, reporting positions against name.
func (p *Preprocessor) ProcessSource(name, src string) ([]ctoken.Token, error) {
	p.out = p.out[:0]
	p.processFile(name, src)
	p.out = append(p.out, ctoken.Token{Kind: ctoken.EOF})
	out := make([]ctoken.Token, len(p.out))
	copy(out, p.out)
	if len(p.errs) > 0 {
		return out, p.errs[0]
	}
	return out, nil
}

// condState tracks one #if level.
type condState struct {
	active      bool // current branch is emitting tokens
	takenBranch bool // some branch at this level was already taken
	parentLive  bool // enclosing context was emitting
	sawElse     bool
}

func (p *Preprocessor) processFile(name, src string) {
	if p.depth >= maxIncludeDepth {
		p.errorf(ctoken.Pos{File: name, Line: 1}, "include depth exceeds %d", maxIncludeDepth)
		return
	}
	p.depth++
	defer func() { p.depth-- }()

	toks := p.scanFile(name, src)

	var conds []condState
	live := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	i := 0
	for i < len(toks) {
		// Directive: '#' as the first token of a line.
		if toks[i].Kind == ctoken.Hash {
			line, next := grabLine(toks, i+1)
			i = next
			p.directive(line, &conds, live())
			continue
		}
		if toks[i].Kind == ctoken.Newline || toks[i].Kind == ctoken.EOF {
			i++
			continue
		}
		line, next := grabLine(toks, i)
		i = next
		if live() {
			p.out = append(p.out, p.expand(line, nil)...)
		}
	}
	if len(conds) != 0 {
		p.errorf(ctoken.Pos{File: name}, "unterminated #if")
	}
}

// scanFile lexes src (keeping newlines, which directive parsing needs),
// consulting the shared cache when one is attached. Scanner diagnostics
// replay into p.errs on every use so cached and uncached includes report
// identically.
func (p *Preprocessor) scanFile(name, src string) []ctoken.Token {
	if p.cache != nil {
		if toks, errs, ok := p.cache.get(name); ok {
			p.errs = append(p.errs, errs...)
			return toks
		}
	}
	s := ctoken.NewScanner(name, src)
	s.KeepNewlines = true
	s.Interner = p.interner
	toks := s.ScanAll()
	serrs := s.Errs()
	if p.cache != nil {
		p.cache.put(name, toks, serrs)
	}
	p.errs = append(p.errs, serrs...)
	return toks
}

// grabLine collects tokens up to (not including) the next Newline/EOF and
// returns the index just past the newline.
func grabLine(toks []ctoken.Token, i int) ([]ctoken.Token, int) {
	start := i
	for i < len(toks) && toks[i].Kind != ctoken.Newline && toks[i].Kind != ctoken.EOF {
		i++
	}
	line := toks[start:i]
	if i < len(toks) && toks[i].Kind == ctoken.Newline {
		i++
	}
	return line, i
}

func (p *Preprocessor) directive(line []ctoken.Token, conds *[]condState, live bool) {
	if len(line) == 0 {
		return // null directive
	}
	name := line[0].Text
	switch line[0].Kind {
	case ctoken.KwIf:
		name = "if"
	case ctoken.KwElse:
		name = "else"
	}
	rest := line[1:]
	switch name {
	case "if", "ifdef", "ifndef":
		cs := condState{parentLive: live}
		if live {
			var val bool
			switch name {
			case "ifdef":
				val = len(rest) > 0 && p.macros[rest[0].Text] != nil
			case "ifndef":
				val = len(rest) > 0 && p.macros[rest[0].Text] == nil
			default:
				val = p.evalCond(rest)
			}
			cs.active = val
			cs.takenBranch = val
		}
		*conds = append(*conds, cs)
	case "elif":
		if len(*conds) == 0 {
			p.errorf(line[0].Pos, "#elif without #if")
			return
		}
		cs := &(*conds)[len(*conds)-1]
		if cs.sawElse {
			p.errorf(line[0].Pos, "#elif after #else")
		}
		if cs.parentLive && !cs.takenBranch && p.evalCond(rest) {
			cs.active = true
			cs.takenBranch = true
		} else {
			cs.active = false
		}
	case "else":
		if len(*conds) == 0 {
			p.errorf(line[0].Pos, "#else without #if")
			return
		}
		cs := &(*conds)[len(*conds)-1]
		cs.sawElse = true
		cs.active = cs.parentLive && !cs.takenBranch
		cs.takenBranch = true
	case "endif":
		if len(*conds) == 0 {
			p.errorf(line[0].Pos, "#endif without #if")
			return
		}
		*conds = (*conds)[:len(*conds)-1]
	case "define":
		if live {
			p.define(rest)
		}
	case "undef":
		if live && len(rest) > 0 {
			delete(p.macros, rest[0].Text)
		}
	case "include":
		if live {
			p.include(rest)
		}
	case "pragma", "error", "warning", "line":
		// Accepted and ignored; #error in a live branch is reported.
		if live && name == "error" {
			p.errorf(line[0].Pos, "#error %s", tokensText(rest))
		}
	default:
		if live {
			p.errorf(line[0].Pos, "unknown directive #%s", name)
		}
	}
}

func tokensText(toks []ctoken.Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.Text != "" {
			b.WriteString(t.Text)
		} else {
			b.WriteString(t.Kind.String())
		}
	}
	return b.String()
}

func (p *Preprocessor) define(rest []ctoken.Token) {
	if len(rest) == 0 || (rest[0].Kind != ctoken.Ident && !rest[0].Kind.IsKeyword()) {
		if len(rest) > 0 {
			p.errorf(rest[0].Pos, "bad #define")
		}
		return
	}
	m := &macro{name: rest[0].Text}
	body := rest[1:]
	// Function-like only when '(' immediately follows the name; the
	// scanner drops spacing, so approximate with column adjacency.
	if len(body) > 0 && body[0].Kind == ctoken.LParen &&
		body[0].Pos.Col == rest[0].Pos.Col+len(rest[0].Text) {
		m.funcLike = true
		j := 1
		for j < len(body) && body[j].Kind != ctoken.RParen {
			switch body[j].Kind {
			case ctoken.Ident:
				m.params = append(m.params, body[j].Text)
			case ctoken.Ellipsis:
				m.variadic = true
			case ctoken.Comma:
			default:
				p.errorf(body[j].Pos, "bad macro parameter")
			}
			j++
		}
		if j < len(body) {
			j++ // skip ')'
		}
		body = body[j:]
	}
	m.body = make([]ctoken.Token, len(body))
	copy(m.body, body)
	p.macros[m.name] = m
}

func (p *Preprocessor) include(rest []ctoken.Token) {
	if len(rest) == 0 {
		return
	}
	var name string
	switch rest[0].Kind {
	case ctoken.StringLit:
		name = strings.Trim(rest[0].Text, `"`)
	case ctoken.Lt:
		var b strings.Builder
		for _, t := range rest[1:] {
			if t.Kind == ctoken.Gt {
				break
			}
			if t.Text != "" {
				b.WriteString(t.Text)
			} else {
				b.WriteString(t.Kind.String())
			}
		}
		name = b.String()
	default:
		p.errorf(rest[0].Pos, "bad #include")
		return
	}
	candidates := []string{name}
	for _, d := range p.includes {
		candidates = append(candidates, path.Join(d, name))
	}
	for _, c := range candidates {
		src, err := p.fs.ReadFile(c)
		if err == nil {
			if p.included[c] {
				return // idempotent headers: every corpus header has a guard role
			}
			p.included[c] = true
			if p.trace != nil {
				sp := p.trace.Child("include", obs.A("file", c))
				p.processFile(c, bytesString(src))
				sp.End()
				return
			}
			p.processFile(c, bytesString(src))
			return
		}
		if p.missing == nil {
			p.missing = make(map[string]bool)
		}
		p.missing[c] = true
	}
	p.errorf(rest[0].Pos, "include %q not found", name)
}

// activeSet carries the macro names whose expansion is in progress, as
// an immutable linked list threaded down the recursion: pushing a frame
// is one fixed-size allocation (often stack-escaping only once), where
// the old map representation copied every entry per function-like
// expansion. Recursion depth is bounded by macro nesting, so the linear
// has() walk is short.
type activeSet struct {
	name string
	next *activeSet
}

func (a *activeSet) has(name string) bool {
	for ; a != nil; a = a.next {
		if a.name == name {
			return true
		}
	}
	return false
}

// expand macro-expands a token sequence. active carries macro names whose
// expansion is in progress, to block recursion.
func (p *Preprocessor) expand(toks []ctoken.Token, active *activeSet) []ctoken.Token {
	// Most sequences expand to themselves (or nearly), so start at the
	// input length: one allocation instead of a growth chain of appends.
	out := make([]ctoken.Token, 0, len(toks))
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.Kind != ctoken.Ident || t.NoExpand {
			out = append(out, t)
			i++
			continue
		}
		// Builtin magic macros.
		switch t.Text {
		case "__LINE__":
			out = append(out, ctoken.Token{
				Kind: ctoken.IntLit, Text: strconv.Itoa(t.Pos.Line),
				Pos: t.Pos, FromMacro: true,
			})
			i++
			continue
		case "__FILE__":
			out = append(out, ctoken.Token{
				Kind: ctoken.StringLit, Text: strconv.Quote(t.Pos.File),
				Pos: t.Pos, FromMacro: true,
			})
			i++
			continue
		}
		m := p.macros[t.Text]
		if m == nil || active.has(t.Text) {
			if m != nil {
				t.NoExpand = true
			}
			out = append(out, t)
			i++
			continue
		}
		if !m.funcLike {
			na := &activeSet{name: m.name, next: active}
			exp := p.expand(markMacro(m.body, t.Pos), na)
			out = append(out, exp...)
			i++
			continue
		}
		// Function-like: require '('; otherwise leave the name alone.
		if i+1 >= len(toks) || toks[i+1].Kind != ctoken.LParen {
			out = append(out, t)
			i++
			continue
		}
		args, next, ok := gatherArgs(toks, i+2)
		if !ok {
			p.errorf(t.Pos, "unterminated macro invocation of %s", m.name)
			out = append(out, t)
			i++
			continue
		}
		// C semantics: arguments are fully macro-expanded before
		// substitution (except as operands of # and ##, which use the
		// raw tokens); the macro's own name is hidden only during the
		// rescan of its expansion, not while expanding arguments.
		expArgs := make([][]ctoken.Token, len(args))
		for ai, a := range args {
			expArgs[ai] = p.expand(a, active)
		}
		body := p.substitute(m, args, expArgs, t.Pos)
		na := &activeSet{name: m.name, next: active}
		out = append(out, p.expand(body, na)...)
		i = next
	}
	return out
}

// markMacro stamps FromMacro and the invocation position onto body copies.
func markMacro(body []ctoken.Token, pos ctoken.Pos) []ctoken.Token {
	out := make([]ctoken.Token, len(body))
	for i, t := range body {
		t.FromMacro = true
		t.Pos = pos
		out[i] = t
	}
	return out
}

// gatherArgs collects comma-separated macro arguments starting just past
// the opening paren at index i. Returns the args, the index just past the
// closing paren, and whether the invocation was terminated.
func gatherArgs(toks []ctoken.Token, i int) ([][]ctoken.Token, int, bool) {
	var args [][]ctoken.Token
	var cur []ctoken.Token
	depth := 0
	for i < len(toks) {
		t := toks[i]
		switch t.Kind {
		case ctoken.LParen, ctoken.LBracket:
			depth++
			cur = append(cur, t)
		case ctoken.RBracket:
			depth--
			cur = append(cur, t)
		case ctoken.RParen:
			if depth == 0 {
				if len(cur) > 0 || len(args) > 0 {
					args = append(args, cur)
				}
				return args, i + 1, true
			}
			depth--
			cur = append(cur, t)
		case ctoken.Comma:
			if depth == 0 {
				args = append(args, cur)
				cur = nil
			} else {
				cur = append(cur, t)
			}
		default:
			cur = append(cur, t)
		}
		i++
	}
	return nil, i, false
}

// substitute replaces parameters in m's body with arguments, handling
// # and ##. rawArgs feed # and ## operands; expArgs feed ordinary
// parameter references.
func (p *Preprocessor) substitute(m *macro, rawArgs, expArgs [][]ctoken.Token, pos ctoken.Pos) []ctoken.Token {
	paramIdx := func(name string) int {
		for i, pn := range m.params {
			if pn == name {
				return i
			}
		}
		return -1
	}
	rawFor := func(idx int) []ctoken.Token {
		if idx < len(rawArgs) {
			return rawArgs[idx]
		}
		return nil
	}
	argFor := func(idx int) []ctoken.Token {
		if idx < len(expArgs) {
			return expArgs[idx]
		}
		return nil
	}

	var out []ctoken.Token
	body := m.body
	for i := 0; i < len(body); i++ {
		t := body[i]
		// Stringize: # param
		if t.Kind == ctoken.Hash && i+1 < len(body) && body[i+1].Kind == ctoken.Ident {
			if idx := paramIdx(body[i+1].Text); idx >= 0 {
				out = append(out, ctoken.Token{
					Kind:      ctoken.StringLit,
					Text:      strconv.Quote(tokensText(rawFor(idx))),
					Pos:       pos,
					FromMacro: true,
				})
				i++
				continue
			}
		}
		// Paste: X ## Y (operands use raw argument tokens)
		if i+2 < len(body) && body[i+1].Kind == ctoken.HashHash {
			left := p.substOne(t, paramIdx, rawFor, pos)
			right := p.substOne(body[i+2], paramIdx, rawFor, pos)
			out = append(out, pasteTokens(left, right, pos)...)
			i += 2
			continue
		}
		out = append(out, p.substOne(t, paramIdx, argFor, pos)...)
	}
	return out
}

func (p *Preprocessor) substOne(t ctoken.Token, paramIdx func(string) int, argFor func(int) []ctoken.Token, pos ctoken.Pos) []ctoken.Token {
	if t.Kind == ctoken.Ident {
		if idx := paramIdx(t.Text); idx >= 0 {
			return markMacro(argFor(idx), pos)
		}
	}
	return markMacro([]ctoken.Token{t}, pos)
}

// pasteTokens glues the last token of left to the first of right and
// rescans the result.
func pasteTokens(left, right []ctoken.Token, pos ctoken.Pos) []ctoken.Token {
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	l := left[len(left)-1]
	r := right[0]
	glued := l.Text + r.Text
	if l.Text == "" {
		glued = l.Kind.String() + r.Text
	}
	s := ctoken.NewScanner(pos.File, glued)
	rescanned := s.ScanAll()
	rescanned = rescanned[:len(rescanned)-1]
	out := append([]ctoken.Token{}, left[:len(left)-1]...)
	out = append(out, markMacro(rescanned, pos)...)
	out = append(out, right[1:]...)
	return out
}

// evalCond evaluates an #if/#elif expression.
func (p *Preprocessor) evalCond(toks []ctoken.Token) bool {
	// Replace defined(X)/defined X before macro expansion.
	var pre []ctoken.Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == ctoken.Ident && t.Text == "defined" {
			name := ""
			if i+1 < len(toks) && toks[i+1].Kind == ctoken.Ident {
				name = toks[i+1].Text
				i++
			} else if i+3 < len(toks) && toks[i+1].Kind == ctoken.LParen &&
				toks[i+2].Kind == ctoken.Ident && toks[i+3].Kind == ctoken.RParen {
				name = toks[i+2].Text
				i += 3
			}
			val := "0"
			if p.macros[name] != nil {
				val = "1"
			}
			pre = append(pre, ctoken.Token{Kind: ctoken.IntLit, Text: val, Pos: t.Pos})
			continue
		}
		pre = append(pre, t)
	}
	expanded := p.expand(pre, nil)
	ev := condEval{toks: expanded, pp: p}
	v := ev.ternary()
	return v != 0
}

// condEval is a tiny recursive-descent evaluator for #if expressions.
type condEval struct {
	toks []ctoken.Token
	pos  int
	pp   *Preprocessor
}

func (e *condEval) peek() ctoken.Kind {
	if e.pos >= len(e.toks) {
		return ctoken.EOF
	}
	return e.toks[e.pos].Kind
}

func (e *condEval) next() ctoken.Token {
	t := e.toks[e.pos]
	e.pos++
	return t
}

func (e *condEval) ternary() int64 {
	c := e.logicalOr()
	if e.peek() == ctoken.Question {
		e.next()
		a := e.ternary()
		if e.peek() == ctoken.Colon {
			e.next()
		}
		b := e.ternary()
		if c != 0 {
			return a
		}
		return b
	}
	return c
}

func (e *condEval) logicalOr() int64 {
	v := e.logicalAnd()
	for e.peek() == ctoken.OrOr {
		e.next()
		r := e.logicalAnd()
		if v != 0 || r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) logicalAnd() int64 {
	v := e.bitOr()
	for e.peek() == ctoken.AndAnd {
		e.next()
		r := e.bitOr()
		if v != 0 && r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) bitOr() int64 {
	v := e.bitXor()
	for e.peek() == ctoken.Pipe {
		e.next()
		v |= e.bitXor()
	}
	return v
}

func (e *condEval) bitXor() int64 {
	v := e.bitAnd()
	for e.peek() == ctoken.Caret {
		e.next()
		v ^= e.bitAnd()
	}
	return v
}

func (e *condEval) bitAnd() int64 {
	v := e.equality()
	for e.peek() == ctoken.Amp {
		e.next()
		v &= e.equality()
	}
	return v
}

func (e *condEval) equality() int64 {
	v := e.relational()
	for {
		switch e.peek() {
		case ctoken.EqEq:
			e.next()
			v = b2i(v == e.relational())
		case ctoken.NotEq:
			e.next()
			v = b2i(v != e.relational())
		default:
			return v
		}
	}
}

func (e *condEval) relational() int64 {
	v := e.shift()
	for {
		switch e.peek() {
		case ctoken.Lt:
			e.next()
			v = b2i(v < e.shift())
		case ctoken.Gt:
			e.next()
			v = b2i(v > e.shift())
		case ctoken.Le:
			e.next()
			v = b2i(v <= e.shift())
		case ctoken.Ge:
			e.next()
			v = b2i(v >= e.shift())
		default:
			return v
		}
	}
}

func (e *condEval) shift() int64 {
	v := e.additive()
	for {
		switch e.peek() {
		case ctoken.Shl:
			e.next()
			v <<= uint(e.additive() & 63)
		case ctoken.Shr:
			e.next()
			v >>= uint(e.additive() & 63)
		default:
			return v
		}
	}
}

func (e *condEval) additive() int64 {
	v := e.multiplicative()
	for {
		switch e.peek() {
		case ctoken.Plus:
			e.next()
			v += e.multiplicative()
		case ctoken.Minus:
			e.next()
			v -= e.multiplicative()
		default:
			return v
		}
	}
}

func (e *condEval) multiplicative() int64 {
	v := e.unary()
	for {
		switch e.peek() {
		case ctoken.Star:
			e.next()
			v *= e.unary()
		case ctoken.Slash:
			e.next()
			if d := e.unary(); d != 0 {
				v /= d
			} else {
				v = 0
			}
		case ctoken.Percent:
			e.next()
			if d := e.unary(); d != 0 {
				v %= d
			} else {
				v = 0
			}
		default:
			return v
		}
	}
}

func (e *condEval) unary() int64 {
	switch e.peek() {
	case ctoken.Not:
		e.next()
		return b2i(e.unary() == 0)
	case ctoken.Tilde:
		e.next()
		return ^e.unary()
	case ctoken.Minus:
		e.next()
		return -e.unary()
	case ctoken.Plus:
		e.next()
		return e.unary()
	case ctoken.LParen:
		e.next()
		v := e.ternary()
		if e.peek() == ctoken.RParen {
			e.next()
		}
		return v
	case ctoken.IntLit, ctoken.CharLit:
		t := e.next()
		return parseIntLit(t.Text)
	case ctoken.Ident:
		e.next()
		return 0 // undefined identifiers evaluate to 0 in #if
	case ctoken.EOF:
		return 0
	default:
		e.next()
		return 0
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// parseIntLit parses a C integer or character literal value.
func parseIntLit(text string) int64 {
	if strings.HasPrefix(text, "'") {
		inner := strings.Trim(text, "'")
		if strings.HasPrefix(inner, "\\") && len(inner) >= 2 {
			switch inner[1] {
			case 'n':
				return '\n'
			case 't':
				return '\t'
			case '0':
				return 0
			case 'r':
				return '\r'
			case '\\':
				return '\\'
			case '\'':
				return '\''
			default:
				return int64(inner[1])
			}
		}
		if len(inner) > 0 {
			return int64(inner[0])
		}
		return 0
	}
	text = strings.TrimRight(text, "uUlL")
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		// Try unsigned range.
		if u, uerr := strconv.ParseUint(text, 0, 64); uerr == nil {
			return int64(u)
		}
		return 0
	}
	return v
}

// ParseIntLit exposes integer-literal parsing to other packages (the
// parser and constant folding reuse it).
func ParseIntLit(text string) int64 { return parseIntLit(text) }
