package cpp

import (
	"strings"
	"testing"
	"testing/quick"

	"deviant/internal/ctoken"
)

func expandStr(t *testing.T, fs MapFS, file string) string {
	t.Helper()
	pp := New(fs, "include")
	toks, err := pp.Process(file)
	if err != nil {
		t.Fatalf("process: %v (errs %v)", err, pp.Errs())
	}
	return render(toks)
}

func render(toks []ctoken.Token) string {
	var parts []string
	for _, tok := range toks {
		if tok.Kind == ctoken.EOF {
			break
		}
		if tok.Text != "" {
			parts = append(parts, tok.Text)
		} else {
			parts = append(parts, tok.Kind.String())
		}
	}
	return strings.Join(parts, " ")
}

func TestObjectMacro(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define N 10\nint x = N;\n"}, "a.c")
	if got != "int x = 10 ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacro(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define SQ(x) ((x)*(x))\nint y = SQ(a+1);\n"}, "a.c")
	if got != "int y = ( ( a + 1 ) * ( a + 1 ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroMultipleParams(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define MAX(a,b) ((a)>(b)?(a):(b))\nint z = MAX(p, q);\n"}, "a.c")
	if got != "int z = ( ( p ) > ( q ) ? ( p ) : ( q ) ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestMacroNotFunctionWithoutParen(t *testing.T) {
	// A function-like macro name not followed by ( is left alone.
	got := expandStr(t, MapFS{"a.c": "#define F(x) x\nint a = F;\n"}, "a.c")
	if got != "int a = F ;" {
		t.Errorf("got %q", got)
	}
}

func TestObjectMacroWithParenBody(t *testing.T) {
	// Space between name and ( makes it object-like.
	got := expandStr(t, MapFS{"a.c": "#define P (1+2)\nint a = P;\n"}, "a.c")
	if got != "int a = ( 1 + 2 ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define A A\nint x = A;\n"}, "a.c")
	if got != "int x = A ;" {
		t.Errorf("got %q", got)
	}
}

func TestMutualRecursionStops(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define A B\n#define B A\nint x = A;\n"}, "a.c")
	if got != "int x = A ;" {
		t.Errorf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define N 1\n#undef N\nint x = N;\n"}, "a.c")
	if got != "int x = N ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfdef(t *testing.T) {
	src := "#define YES 1\n#ifdef YES\nint a;\n#endif\n#ifdef NO\nint b;\n#endif\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int a ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfndefElse(t *testing.T) {
	src := "#ifndef X\nint a;\n#else\nint b;\n#endif\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int a ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfExpression(t *testing.T) {
	src := "#define VER 247\n#if VER > 200 && VER < 300\nint ok;\n#elif VER >= 300\nint high;\n#else\nint low;\n#endif\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int ok ;" {
		t.Errorf("got %q", got)
	}
}

func TestIfDefinedOperator(t *testing.T) {
	src := "#define A 1\n#if defined(A) && !defined B\nint yes;\n#endif\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int yes ;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := "#if 1\n#if 0\nint a;\n#else\nint b;\n#endif\n#endif\n#if 0\n#if 1\nint c;\n#endif\n#endif\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int b ;" {
		t.Errorf("got %q", got)
	}
}

func TestElifChain(t *testing.T) {
	src := "#if 0\nint a;\n#elif 0\nint b;\n#elif 1\nint c;\n#elif 1\nint d;\n#else\nint e;\n#endif\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int c ;" {
		t.Errorf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	fs := MapFS{
		"main.c":         "#include \"defs.h\"\nint x = VAL;\n",
		"include/defs.h": "#define VAL 7\n",
	}
	got := expandStr(t, fs, "main.c")
	if got != "int x = 7 ;" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeAngle(t *testing.T) {
	fs := MapFS{
		"main.c":               "#include <linux/defs.h>\nint x = VAL;\n",
		"include/linux/defs.h": "#define VAL 9\n",
	}
	got := expandStr(t, fs, "main.c")
	if got != "int x = 9 ;" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeOnce(t *testing.T) {
	fs := MapFS{
		"main.c":      "#include \"d.h\"\n#include \"d.h\"\nint x = V;\n",
		"include/d.h": "#define V 3\nint decl;\n",
	}
	got := expandStr(t, fs, "main.c")
	if got != "int decl ; int x = 3 ;" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeMissing(t *testing.T) {
	pp := New(MapFS{"a.c": "#include \"nope.h\"\n"})
	_, err := pp.Process("a.c")
	if err == nil {
		t.Fatal("want error for missing include")
	}
}

func TestFromMacroMarking(t *testing.T) {
	pp := New(MapFS{"a.c": "#define DEREF(p) (*(p))\nint x = DEREF(q) + y;\n"})
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatal(err)
	}
	var sawMacroStar, sawPlainY bool
	for _, tok := range toks {
		if tok.Kind == ctoken.Star && tok.FromMacro {
			sawMacroStar = true
		}
		if tok.Kind == ctoken.Ident && tok.Text == "y" && !tok.FromMacro {
			sawPlainY = true
		}
		if tok.Kind == ctoken.Ident && tok.Text == "q" && !tok.FromMacro {
			t.Error("argument q inside expansion should be FromMacro")
		}
	}
	if !sawMacroStar {
		t.Error("macro-produced * not marked FromMacro")
	}
	if !sawPlainY {
		t.Error("non-macro token y wrongly marked or missing")
	}
}

func TestStringize(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define S(x) #x\nchar *s = S(hello world);\n"}, "a.c")
	if !strings.Contains(got, `"hello world"`) {
		t.Errorf("got %q", got)
	}
}

func TestPaste(t *testing.T) {
	got := expandStr(t, MapFS{"a.c": "#define GLUE(a,b) a##b\nint GLUE(foo,bar) = 1;\n"}, "a.c")
	if got != "int foobar = 1 ;" {
		t.Errorf("got %q", got)
	}
}

func TestDefineCmdline(t *testing.T) {
	pp := New(MapFS{"a.c": "#ifdef __KERNEL__\nint k;\n#endif\n"})
	pp.Define("__KERNEL__", "1")
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatal(err)
	}
	if got := render(toks); got != "int k ;" {
		t.Errorf("got %q", got)
	}
}

func TestUnterminatedIf(t *testing.T) {
	pp := New(MapFS{"a.c": "#if 1\nint x;\n"})
	_, err := pp.Process("a.c")
	if err == nil {
		t.Fatal("want error for unterminated #if")
	}
}

func TestMacrosListing(t *testing.T) {
	pp := New(MapFS{})
	pp.Define("B", "1")
	pp.Define("A", "2")
	got := pp.Macros()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("macros: %v", got)
	}
}

func TestParseIntLit(t *testing.T) {
	cases := map[string]int64{
		"0":     0,
		"42":    42,
		"0x10":  16,
		"0755":  493,
		"7UL":   7,
		"'a'":   97,
		"'\\n'": 10,
		"'\\0'": 0,
	}
	for text, want := range cases {
		if got := ParseIntLit(text); got != want {
			t.Errorf("ParseIntLit(%q) = %d, want %d", text, got, want)
		}
	}
}

func TestNestedMacroCalls(t *testing.T) {
	src := "#define A(x) (x+1)\n#define B(x) A(A(x))\nint v = B(0);\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int v = ( ( 0 + 1 ) + 1 ) ;" {
		t.Errorf("got %q", got)
	}
}

func TestMacroArgWithCommasInParens(t *testing.T) {
	src := "#define FIRST(a,b) a\nint v = FIRST(f(1,2), 3);\n"
	got := expandStr(t, MapFS{"a.c": src}, "a.c")
	if got != "int v = f ( 1 , 2 ) ;" {
		t.Errorf("got %q", got)
	}
}

// Property: preprocessing any identifier/whitespace soup never panics and
// yields an EOF-terminated stream.
func TestProcessArbitraryTerminates(t *testing.T) {
	f := func(body string) bool {
		pp := New(MapFS{"f.c": body})
		toks, _ := pp.Process("f.c")
		return len(toks) > 0 && toks[len(toks)-1].Kind == ctoken.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: expanding a stream with no macros defined is the identity on
// token texts (modulo newline removal).
func TestNoMacroIdentity(t *testing.T) {
	srcs := []string{
		"int main(void) { return 0; }",
		"struct s { int x; };",
		"a = b ? c : d;",
	}
	for _, src := range srcs {
		pp := New(MapFS{"f.c": src})
		toks, err := pp.Process("f.c")
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		s := ctoken.NewScanner("f.c", src)
		want := s.ScanAll()
		if len(toks) != len(want) {
			t.Fatalf("%q: token count %d != %d", src, len(toks), len(want))
		}
		for i := range want {
			if toks[i].Kind != want[i].Kind || toks[i].Text != want[i].Text {
				t.Errorf("%q token %d: got %v want %v", src, i, toks[i], want[i])
			}
		}
	}
}

func TestBuiltinLineAndFile(t *testing.T) {
	pp := New(MapFS{"a.c": "int x = __LINE__;\nchar *f = __FILE__;\n"})
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatal(err)
	}
	got := render(toks)
	if !strings.Contains(got, "int x = 1") {
		t.Errorf("__LINE__: %q", got)
	}
	if !strings.Contains(got, `"a.c"`) {
		t.Errorf("__FILE__: %q", got)
	}
}

func TestBuiltinLineInsideMacro(t *testing.T) {
	// The classic assert idiom: the macro stringizes the caller's file
	// and embeds the line.
	src := "#define WARN() printk(__FILE__, __LINE__)\nvoid f(void) {\nWARN();\n}\n"
	pp := New(MapFS{"a.c": src})
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatal(err)
	}
	got := render(toks)
	if !strings.Contains(got, `printk ( "a.c" , 3 )`) {
		t.Errorf("macro __LINE__/__FILE__: %q", got)
	}
}

func TestErrorDirective(t *testing.T) {
	pp := New(MapFS{"a.c": "#if 1\n#error unsupported config\n#endif\n"})
	if _, err := pp.Process("a.c"); err == nil {
		t.Fatal("#error in live branch should fail")
	}
	// In a dead branch it is ignored.
	pp2 := New(MapFS{"a.c": "#if 0\n#error never\n#endif\nint x;\n"})
	toks, err := pp2.Process("a.c")
	if err != nil {
		t.Fatalf("dead #error: %v", err)
	}
	if render(toks) != "int x ;" {
		t.Errorf("got %q", render(toks))
	}
}

func TestPragmaIgnored(t *testing.T) {
	pp := New(MapFS{"a.c": "#pragma pack(1)\nint x;\n"})
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatal(err)
	}
	if render(toks) != "int x ;" {
		t.Errorf("got %q", render(toks))
	}
}

func TestUnknownDirective(t *testing.T) {
	pp := New(MapFS{"a.c": "#frobnicate\nint x;\n"})
	if _, err := pp.Process("a.c"); err == nil {
		t.Fatal("unknown directive should be diagnosed")
	}
}

func TestElifAfterElse(t *testing.T) {
	pp := New(MapFS{"a.c": "#if 0\n#else\n#elif 1\n#endif\n"})
	if _, err := pp.Process("a.c"); err == nil {
		t.Fatal("#elif after #else should be diagnosed")
	}
}

func TestElseWithoutIf(t *testing.T) {
	pp := New(MapFS{"a.c": "#else\n"})
	if _, err := pp.Process("a.c"); err == nil {
		t.Fatal("#else without #if should be diagnosed")
	}
	pp2 := New(MapFS{"a.c": "#endif\n"})
	if _, err := pp2.Process("a.c"); err == nil {
		t.Fatal("#endif without #if should be diagnosed")
	}
}

func TestUnterminatedMacroInvocation(t *testing.T) {
	pp := New(MapFS{"a.c": "#define F(a) a\nint x = F(1;\n"})
	if _, err := pp.Process("a.c"); err == nil {
		t.Fatal("unterminated invocation should be diagnosed")
	}
}

func TestIncludeDepthBounded(t *testing.T) {
	// a file including itself without a guard terminates via the
	// include-once rule; build a two-file cycle to exercise depth anyway.
	fs := MapFS{"a.c": "#include \"a.c\"\nint x;\n"}
	pp := New(fs)
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatalf("self include: %v", err)
	}
	if !strings.Contains(render(toks), "int x ;") {
		t.Errorf("got %q", render(toks))
	}
}

func TestCondEvalOperators(t *testing.T) {
	cases := map[string]string{
		"#if 7 % 3 == 1\nint a;\n#endif\n":            "int a ;",
		"#if (2 ^ 3) == 1\nint b;\n#endif\n":          "int b ;",
		"#if ~0 < 0\nint c;\n#endif\n":                "int c ;",
		"#if 1 ? 5 : 6\nint d;\n#endif\n":             "int d ;",
		"#if (16 >> 2) == 4\nint e;\n#endif\n":        "int e ;",
		"#if (1 << 3) > 7\nint f;\n#endif\n":          "int f ;",
		"#if -2 + +3 == 1\nint g;\n#endif\n":          "int g ;",
		"#if 'a' == 97\nint h;\n#endif\n":             "int h ;",
		"#if UNDEFINED_SYMBOL == 0\nint i;\n#endif\n": "int i ;",
		"#if 5 / 0 == 0\nint j;\n#endif\n":            "int j ;", // div by zero -> 0
	}
	for src, want := range cases {
		pp := New(MapFS{"a.c": src})
		toks, err := pp.Process("a.c")
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if got := render(toks); got != want {
			t.Errorf("%q: got %q want %q", src, got, want)
		}
	}
}

func TestBadDefineDiagnosed(t *testing.T) {
	pp := New(MapFS{"a.c": "#define 42 bogus\n"})
	if _, err := pp.Process("a.c"); err == nil {
		t.Fatal("non-identifier #define should be diagnosed")
	}
}

func TestUndefOfFunctionMacro(t *testing.T) {
	src := "#define F(x) ((x)+1)\n#undef F\nint v = F;\n"
	pp := New(MapFS{"a.c": src})
	toks, err := pp.Process("a.c")
	if err != nil {
		t.Fatal(err)
	}
	if render(toks) != "int v = F ;" {
		t.Errorf("got %q", render(toks))
	}
}
