package cpp

import (
	"sync"
	"testing"
)

// TestTokenCacheSharedAcrossUnits checks that two units including the
// same header produce identical output with and without a shared cache,
// and that the header is scanned once.
func TestTokenCacheSharedAcrossUnits(t *testing.T) {
	files := map[string]string{
		"include/defs.h": "#define N 3\nint shared(int x);\n",
		"a.c":            "#include <defs.h>\nint a(void) { return N; }\n",
		"b.c":            "#include <defs.h>\nint b(void) { return N + 1; }\n",
	}
	fs := MapFS(files)

	process := func(unit string, cache *TokenCache) string {
		pp := New(fs, "include")
		if cache != nil {
			pp.UseCache(cache)
		}
		toks, err := pp.Process(unit)
		if err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
		out := ""
		for _, tk := range toks {
			out += tk.Text + " "
		}
		return out
	}

	cache := NewTokenCache()
	for _, unit := range []string{"a.c", "b.c"} {
		plain := process(unit, nil)
		cached := process(unit, cache)
		if plain != cached {
			t.Errorf("%s: cached output differs from uncached:\n  plain:  %s\n  cached: %s",
				unit, plain, cached)
		}
	}
	// a.c, b.c and defs.h each scanned exactly once.
	if got := cache.Len(); got != 3 {
		t.Errorf("cache holds %d files, want 3", got)
	}
}

// TestTokenCacheConditionalCompilation checks that sharing scanned tokens
// does not leak macro state between units: the same header must expand
// differently under different -D sets.
func TestTokenCacheConditionalCompilation(t *testing.T) {
	files := map[string]string{
		"include/cfg.h": "#ifdef FAST\n#define MODE 1\n#else\n#define MODE 2\n#endif\n",
		"u.c":           "#include <cfg.h>\nint mode(void) { return MODE; }\n",
	}
	fs := MapFS(files)
	cache := NewTokenCache()

	run := func(fast bool) string {
		pp := New(fs, "include")
		pp.UseCache(cache)
		if fast {
			pp.Define("FAST", "1")
		}
		toks, err := pp.Process("u.c")
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tk := range toks {
			out += tk.Text + " "
		}
		return out
	}

	withFast := run(true)
	without := run(false)
	if withFast == without {
		t.Fatalf("conditional compilation lost under shared cache: both runs produced %q", withFast)
	}
}

// TestTokenCacheStats checks the hit/miss counters: the first unit scans
// itself plus the header cold (two misses), the second unit misses on its
// own file but hits the shared header.
func TestTokenCacheStats(t *testing.T) {
	files := map[string]string{
		"include/defs.h": "#define N 3\n",
		"a.c":            "#include <defs.h>\nint a(void) { return N; }\n",
		"b.c":            "#include <defs.h>\nint b(void) { return N + 1; }\n",
	}
	fs := MapFS(files)
	cache := NewTokenCache()
	for _, unit := range []string{"a.c", "b.c"} {
		pp := New(fs, "include")
		pp.UseCache(cache)
		if _, err := pp.Process(unit); err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
	}
	st := cache.Stats()
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3 (a.c, b.c, defs.h each scanned once)", st.Misses)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (defs.h reused by b.c)", st.Hits)
	}
}

// TestPreprocessorDeps checks the include-dependency record: resolved
// includes (transitively) and the search candidates probed before each
// resolution.
func TestPreprocessorDeps(t *testing.T) {
	files := map[string]string{
		"include/outer.h": "#include <inner.h>\n#define OUT 1\n",
		"include/inner.h": "#define IN 2\n",
		"u.c":             "#include <outer.h>\nint f(void) { return OUT + IN; }\n",
	}
	pp := New(MapFS(files), "include")
	if _, err := pp.Process("u.c"); err != nil {
		t.Fatal(err)
	}
	deps := pp.IncludeDeps()
	want := []string{"include/inner.h", "include/outer.h"}
	if len(deps) != len(want) || deps[0] != want[0] || deps[1] != want[1] {
		t.Errorf("IncludeDeps = %v, want %v", deps, want)
	}
	// <outer.h> and <inner.h> are probed as bare names (the unit-relative
	// candidate) before resolving under include/.
	probes := pp.MissedProbes()
	if len(probes) != 2 || probes[0] != "inner.h" || probes[1] != "outer.h" {
		t.Errorf("MissedProbes = %v, want [inner.h outer.h]", probes)
	}
}

// TestTokenCacheConcurrent exercises the cache from many goroutines; run
// with -race.
func TestTokenCacheConcurrent(t *testing.T) {
	files := map[string]string{
		"include/h.h": "#define V 9\n",
		"c.c":         "#include <h.h>\nint f(void) { return V; }\n",
	}
	fs := MapFS(files)
	cache := NewTokenCache()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pp := New(fs, "include")
			pp.UseCache(cache)
			if _, err := pp.Process("c.c"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
