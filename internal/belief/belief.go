// Package belief implements the paper's belief sets (§3.2): the facts a
// slot instance (usually a pointer) is believed to satisfy at a program
// point, together with the provenance of the belief.
//
// For the null checkers a belief set takes one of four values: nothing is
// known, definitely null, definitely not null, or either. Beliefs union at
// path joins. Provenance records *how* the most recent precise belief was
// established (a comparison, a dereference, an assignment), which is what
// distinguishes a use-then-check error from a redundant check.
package belief

import (
	"fmt"
	"strconv"
	"strings"
)

// Fact is a bitmask of atomic beliefs about a slot instance.
type Fact uint8

// Atomic facts.
const (
	Null    Fact = 1 << iota // the pointer is null
	NotNull                  // the pointer is not null
)

// Unknown is the empty belief set (nothing known). Either means the value
// could be null or not null — distinct from Unknown: Either is the
// *validated* belief that both are possible (e.g. just before a null
// check), while Unknown carries no information.
const (
	Unknown Fact = 0
	Either  Fact = Null | NotNull
)

// Has reports whether f contains fact x.
func (f Fact) Has(x Fact) bool { return f&x != 0 }

// Exactly reports whether f is precisely x.
func (f Fact) Exactly(x Fact) bool { return f == x }

// String renders the set.
func (f Fact) String() string {
	switch f {
	case Unknown:
		return "unknown"
	case Null:
		return "null"
	case NotNull:
		return "notnull"
	case Either:
		return "either"
	}
	return fmt.Sprintf("Fact(%d)", uint8(f))
}

// Source says how a belief was established.
type Source uint8

// Belief sources.
const (
	SrcNone   Source = iota
	SrcCheck         // a null comparison
	SrcDeref         // a dereference
	SrcAssign        // an assignment of a known value
	SrcMixed         // joined paths disagreed on the source
)

// String renders the source.
func (s Source) String() string {
	switch s {
	case SrcNone:
		return "none"
	case SrcCheck:
		return "check"
	case SrcDeref:
		return "deref"
	case SrcAssign:
		return "assign"
	case SrcMixed:
		return "mixed"
	}
	return fmt.Sprintf("Source(%d)", uint8(s))
}

// Info is the belief set for one slot instance plus provenance.
type Info struct {
	Facts Fact
	Src   Source
	Line  int // line where the current facts were established
}

// Join merges beliefs arriving on two paths: facts union; differing
// sources become SrcMixed; the line is the latest establishment point.
func (a Info) Join(b Info) Info {
	out := Info{Facts: a.Facts | b.Facts}
	switch {
	case a.Src == b.Src:
		out.Src = a.Src
	case a.Src == SrcNone:
		out.Src = b.Src
	case b.Src == SrcNone:
		out.Src = a.Src
	default:
		out.Src = SrcMixed
	}
	if a.Line > b.Line {
		out.Line = a.Line
	} else {
		out.Line = b.Line
	}
	return out
}

// Env maps slot-instance keys (canonical expression strings, e.g. "p" or
// "tty->driver_data") to their belief Info. Env is the per-path state of
// the internal-consistency checkers.
type Env struct {
	m map[string]Info
}

// NewEnv returns an empty environment. The slot map is allocated on the
// first Set: the engine creates an environment per function and per
// branch clone, and most track no slots at all.
func NewEnv() *Env { return &Env{} }

// Get returns the belief for key (zero Info if absent).
func (e *Env) Get(key string) Info { return e.m[key] }

// Set records a belief for key.
func (e *Env) Set(key string, info Info) {
	if info.Facts == Unknown && info.Src == SrcNone {
		delete(e.m, key)
		return
	}
	if e.m == nil {
		e.m = make(map[string]Info)
	}
	e.m[key] = info
}

// Forget drops all knowledge about key.
func (e *Env) Forget(key string) { delete(e.m, key) }

// ForgetDerived drops key and any belief whose slot is syntactically
// derived from it ("p" invalidates "p->next" and "p->buf" too): used when
// a pointer is reassigned.
func (e *Env) ForgetDerived(key string) {
	delete(e.m, key)
	for k := range e.m {
		if derivedFrom(k, key) {
			delete(e.m, k)
		}
	}
}

// derivedFrom reports whether slot k is syntactically derived from key:
// "key->…", "key.…", "key[…" or "*key…". Equivalent to prefix tests
// against key+"->" etc., without building the concatenated needles.
func derivedFrom(k, key string) bool {
	if len(k) > 0 && k[0] == '*' && strings.HasPrefix(k[1:], key) {
		return true
	}
	if len(k) <= len(key) || !strings.HasPrefix(k, key) {
		return false
	}
	switch k[len(key)] {
	case '.', '[':
		return true
	case '-':
		return len(k) > len(key)+1 && k[len(key)+1] == '>'
	}
	return false
}

// Len returns the number of tracked slots.
func (e *Env) Len() int { return len(e.m) }

// Clone returns a deep copy.
func (e *Env) Clone() *Env {
	ne := e.CloneValue()
	return &ne
}

// CloneValue returns a deep copy as a value, for callers that embed Env
// in a larger state struct and want one allocation, not two.
func (e *Env) CloneValue() Env {
	var ne Env
	if len(e.m) > 0 {
		ne.m = make(map[string]Info, len(e.m))
		for k, v := range e.m {
			ne.m[k] = v
		}
	}
	return ne
}

// Key returns a canonical string for memoization: two environments with
// equal Keys are indistinguishable to a checker.
func (e *Env) Key() string {
	if len(e.m) == 0 {
		return ""
	}
	return string(e.AppendKey(nil))
}

// AppendKey appends Key's canonical encoding to b and returns it, so
// callers on the memoization hot path can reuse one buffer instead of
// allocating a string per probe. Keys are emitted in ascending order by
// repeated minimum selection: O(n²) in the slot count, but per-path
// environments hold a handful of slots and the alternative allocates a
// slice plus a sort per call.
func (e *Env) AppendKey(b []byte) []byte {
	prev := ""
	for n := 0; n < len(e.m); n++ {
		k := ""
		for cand := range e.m {
			if cand > prev && (k == "" || cand < k) {
				k = cand
			}
		}
		prev = k
		i := e.m[k]
		b = append(b, k...)
		b = append(b, '=')
		b = strconv.AppendUint(b, uint64(i.Facts), 10)
		b = append(b, ':')
		b = strconv.AppendUint(b, uint64(i.Src), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(i.Line), 10)
		b = append(b, ';')
	}
	return b
}

// JoinFrom unions other's beliefs into e (per-key Join; keys only in one
// env keep/gain that env's info joined with the zero Info). It reports
// whether e changed. JoinFrom implements the paper's path-join rule: "The
// null checker takes the union of all beliefs on the joining paths."
func (e *Env) JoinFrom(other *Env) bool {
	changed := false
	for k, ov := range other.m {
		cur, ok := e.m[k]
		if !ok {
			if e.m == nil {
				e.m = make(map[string]Info)
			}
			e.m[k] = ov
			changed = true
			continue
		}
		j := cur.Join(ov)
		if j != cur {
			e.m[k] = j
			changed = true
		}
	}
	return changed
}
