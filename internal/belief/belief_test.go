package belief

import (
	"testing"
	"testing/quick"
)

func TestFactBasics(t *testing.T) {
	if !Either.Has(Null) || !Either.Has(NotNull) {
		t.Error("either contains both")
	}
	if Null.Has(NotNull) {
		t.Error("null does not contain notnull")
	}
	if !Null.Exactly(Null) || Null.Exactly(Either) {
		t.Error("exactly")
	}
	if Unknown.String() != "unknown" || Either.String() != "either" {
		t.Error("strings")
	}
}

func TestInfoJoin(t *testing.T) {
	a := Info{Facts: Null, Src: SrcCheck, Line: 3}
	b := Info{Facts: NotNull, Src: SrcCheck, Line: 5}
	j := a.Join(b)
	if j.Facts != Either {
		t.Errorf("facts: %v", j.Facts)
	}
	if j.Src != SrcCheck {
		t.Errorf("src: %v", j.Src)
	}
	if j.Line != 5 {
		t.Errorf("line: %d", j.Line)
	}

	c := Info{Facts: NotNull, Src: SrcDeref, Line: 2}
	j2 := a.Join(c)
	if j2.Src != SrcMixed {
		t.Errorf("differing sources join to mixed: %v", j2.Src)
	}

	none := Info{}
	j3 := a.Join(none)
	if j3.Src != SrcCheck || j3.Facts != Null {
		t.Errorf("join with empty: %+v", j3)
	}
}

func TestEnvSetGetForget(t *testing.T) {
	e := NewEnv()
	e.Set("p", Info{Facts: Null, Src: SrcCheck, Line: 1})
	if got := e.Get("p"); got.Facts != Null {
		t.Errorf("get: %+v", got)
	}
	if e.Get("q").Facts != Unknown {
		t.Error("absent key is unknown")
	}
	e.Forget("p")
	if e.Len() != 0 {
		t.Error("forget failed")
	}
	// Setting a zero Info removes the entry rather than storing noise.
	e.Set("p", Info{})
	if e.Len() != 0 {
		t.Error("zero info should not be stored")
	}
}

func TestForgetDerived(t *testing.T) {
	e := NewEnv()
	e.Set("p", Info{Facts: NotNull, Src: SrcDeref, Line: 1})
	e.Set("p->next", Info{Facts: Null, Src: SrcCheck, Line: 2})
	e.Set("p.f", Info{Facts: Null, Src: SrcCheck, Line: 2})
	e.Set("*p", Info{Facts: Null, Src: SrcCheck, Line: 2})
	e.Set("q->next", Info{Facts: Null, Src: SrcCheck, Line: 3})
	e.ForgetDerived("p")
	if e.Len() != 1 || e.Get("q->next").Facts != Null {
		t.Errorf("derived forget wrong: %d tracked", e.Len())
	}
}

func TestEnvCloneIndependent(t *testing.T) {
	e := NewEnv()
	e.Set("p", Info{Facts: Null, Src: SrcCheck, Line: 1})
	c := e.Clone()
	c.Set("p", Info{Facts: NotNull, Src: SrcDeref, Line: 2})
	if e.Get("p").Facts != Null {
		t.Error("clone aliases parent")
	}
}

func TestEnvKeyStableAndDiscriminating(t *testing.T) {
	a := NewEnv()
	a.Set("p", Info{Facts: Null, Src: SrcCheck, Line: 1})
	a.Set("q", Info{Facts: NotNull, Src: SrcDeref, Line: 2})

	b := NewEnv()
	b.Set("q", Info{Facts: NotNull, Src: SrcDeref, Line: 2})
	b.Set("p", Info{Facts: Null, Src: SrcCheck, Line: 1})

	if a.Key() != b.Key() {
		t.Error("insertion order must not affect Key")
	}
	b.Set("p", Info{Facts: NotNull, Src: SrcCheck, Line: 1})
	if a.Key() == b.Key() {
		t.Error("different beliefs must differ in Key")
	}
	if NewEnv().Key() != "" {
		t.Error("empty env key")
	}
}

func TestJoinFrom(t *testing.T) {
	a := NewEnv()
	a.Set("p", Info{Facts: Null, Src: SrcCheck, Line: 1})
	b := NewEnv()
	b.Set("p", Info{Facts: NotNull, Src: SrcCheck, Line: 2})
	b.Set("q", Info{Facts: NotNull, Src: SrcDeref, Line: 3})

	changed := a.JoinFrom(b)
	if !changed {
		t.Error("join should report change")
	}
	if a.Get("p").Facts != Either {
		t.Errorf("p: %v", a.Get("p").Facts)
	}
	if a.Get("q").Facts != NotNull {
		t.Errorf("q: %v", a.Get("q").Facts)
	}
	// Joining the same env again is a fixpoint.
	if a.JoinFrom(b) {
		t.Error("second join must not change")
	}
}

// Property: Join is commutative and idempotent on facts.
func TestJoinProperties(t *testing.T) {
	f := func(fa, fb uint8, la, lb int8) bool {
		a := Info{Facts: Fact(fa) & Either, Src: SrcCheck, Line: int(la)}
		b := Info{Facts: Fact(fb) & Either, Src: SrcDeref, Line: int(lb)}
		ab := a.Join(b)
		ba := b.Join(a)
		if ab.Facts != ba.Facts || ab.Line != ba.Line {
			return false
		}
		return a.Join(a).Facts == a.Facts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
