package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternBasics(t *testing.T) {
	tb := NewTable()
	s1, n1 := tb.Intern([]byte("foo"))
	s2, n2 := tb.Intern([]byte("foo"))
	if s1 != s2 || n1 != "foo" || n2 != "foo" {
		t.Fatalf("foo interned twice: (%d,%q) vs (%d,%q)", s1, n1, s2, n2)
	}
	if s1 == None {
		t.Fatal("interned sym must not be None")
	}
	s3, _ := tb.Intern([]byte("bar"))
	if s3 == s1 {
		t.Fatal("distinct strings share a Sym")
	}
	if got, name := tb.InternString("foo"); got != s1 || name != "foo" {
		t.Fatalf("InternString(foo) = (%d,%q), want (%d,foo)", got, name, s1)
	}
	if got := tb.NameOf(s3); got != "bar" {
		t.Fatalf("NameOf = %q, want bar", got)
	}
	if got := tb.NameOf(None); got != "" {
		t.Fatalf("NameOf(None) = %q, want empty", got)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

// TestInternConcurrent hammers one table from many goroutines (run under
// -race in CI): every goroutine interns an overlapping window of names
// and records the Sym it saw; all goroutines must agree per name, and
// every Sym must resolve back to its own name.
func TestInternConcurrent(t *testing.T) {
	tb := NewTable()
	const goroutines = 16
	const names = 500
	got := make([]map[string]Sym, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := make(map[string]Sym, names)
			for i := 0; i < names; i++ {
				// Overlapping windows so goroutines race on the same names.
				name := fmt.Sprintf("ident_%d", (i+g*7)%names)
				sym, canon := tb.Intern([]byte(name))
				if canon != name {
					t.Errorf("Intern(%q) returned name %q", name, canon)
				}
				if prev, ok := m[name]; ok && prev != sym {
					t.Errorf("goroutine %d saw %q as both %d and %d", g, name, prev, sym)
				}
				m[name] = sym
			}
			got[g] = m
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		for name, sym := range got[g] {
			if got[0][name] != sym {
				t.Fatalf("goroutines 0 and %d disagree on %q: %d vs %d", g, name, got[0][name], sym)
			}
		}
	}
	if tb.Len() != names {
		t.Fatalf("Len = %d, want %d", tb.Len(), names)
	}
	for name, sym := range got[0] {
		if tb.NameOf(sym) != name {
			t.Fatalf("NameOf(%d) = %q, want %q", sym, tb.NameOf(sym), name)
		}
	}
}

// TestInternNoAliasing pins that the canonical string does not alias the
// caller's mutable buffer.
func TestInternNoAliasing(t *testing.T) {
	tb := NewTable()
	buf := []byte("mutate_me")
	sym, name := tb.Intern(buf)
	buf[0] = 'X'
	if name != "mutate_me" {
		t.Fatalf("canonical string aliased caller buffer: %q", name)
	}
	if tb.NameOf(sym) != "mutate_me" {
		t.Fatalf("NameOf corrupted: %q", tb.NameOf(sym))
	}
}

func BenchmarkInternHit(b *testing.B) {
	tb := NewTable()
	names := make([][]byte, 64)
	for i := range names {
		names[i] = []byte(fmt.Sprintf("identifier_%d", i))
		tb.Intern(names[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Intern(names[i%len(names)])
	}
}

// TestInternWorkerCountIndependence pins the property the pipeline's
// determinism rests on: however many workers intern (and in whatever
// interleaving), the table ends up with the same *name set* and the same
// grouping — every name resolves to itself and distinct names never
// collapse. Sym values may differ between runs (they are assignment-order
// dependent), which is exactly why no Sym may ever leak into output; this
// test re-derives the order-independent view a run is allowed to depend on.
func TestInternWorkerCountIndependence(t *testing.T) {
	const names = 400
	resolve := func(workers int) map[string]string {
		tb := NewTable()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker interns every name, starting at a different
				// offset so first-interner varies with the worker count.
				for i := 0; i < names; i++ {
					name := fmt.Sprintf("slot_%d", (i+w*names/workers)%names)
					sym, _ := tb.Intern([]byte(name))
					if tb.NameOf(sym) != name {
						t.Errorf("workers=%d: NameOf(Intern(%q)) = %q", workers, name, tb.NameOf(sym))
					}
				}
			}(w)
		}
		wg.Wait()
		out := make(map[string]string, names)
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("slot_%d", i)
			sym, canon := tb.InternString(name)
			out[name] = canon
			if other, _ := tb.InternString(fmt.Sprintf("slot_%d", (i+1)%names)); other == sym {
				t.Errorf("workers=%d: distinct names share Sym %d", workers, sym)
			}
		}
		if tb.Len() != names {
			t.Errorf("workers=%d: Len = %d, want %d", workers, tb.Len(), names)
		}
		return out
	}
	base := resolve(1)
	for _, w := range []int{4, 8} {
		got := resolve(w)
		for name, canon := range got {
			if base[name] != canon {
				t.Fatalf("workers=%d resolves %q to %q; workers=1 to %q", w, name, canon, base[name])
			}
		}
	}
}
