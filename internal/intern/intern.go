// Package intern implements a per-run identifier interner.
//
// Scanning from []byte sources (the zero-copy frontend) would otherwise
// allocate a fresh string for every identifier occurrence; the interner
// collapses those to one canonical string per distinct spelling, and hands
// out a small integer Sym alongside it so downstream consumers (macro
// tables, the belief engine's slot environments) can compare identifiers
// by integer equality instead of string comparison.
//
// One Table is created per analysis run and shared by every frontend and
// checker worker. Interning is concurrency-safe, but Sym *values* are
// assigned in arrival order and therefore depend on goroutine scheduling:
// two runs (or two worker counts) may number the same name differently.
// That is deliberate and safe under the pipeline's determinism contract,
// with one rule: Syms carry equality only. Nothing may sort, range over,
// or persist Syms where the order or value could reach the output — the
// deterministic in-order fold compares and prints strings, never Syms.
// (The engine's memo keys may embed Syms: memoization groups equal states,
// and the *grouping* induced by Sym equality is identical however the
// Syms are numbered.)
package intern

import (
	"strings"
	"sync"
)

// Sym identifies one interned string within a single Table. The zero Sym
// is reserved as "not interned" so a zero-valued token field is inert.
type Sym uint32

// None is the zero Sym: no interned identity.
const None Sym = 0

// shardBits picks the shard count; 16 shards keeps contention negligible
// for the worker counts the pipeline uses without bloating the table.
const shardBits = 4

type entry struct {
	sym  Sym
	name string // the canonical string, readable without the table lock
}

type shard struct {
	mu   sync.RWMutex
	syms map[string]entry
}

// Table interns strings for one run.
type Table struct {
	shards [1 << shardBits]shard

	mu    sync.Mutex
	names []string // Sym -> name; index 0 is the reserved None slot
}

// NewTable returns an empty interner.
func NewTable() *Table {
	t := &Table{names: make([]string, 1, 1024)}
	for i := range t.shards {
		t.shards[i].syms = make(map[string]entry)
	}
	return t
}

// fnv1a hashes b for shard selection.
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func fnv1aString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Intern returns the Sym and canonical string for b, interning it on
// first sight. The canonical string is allocated once per distinct
// spelling for the life of the table; callers may hold it without copying.
func (t *Table) Intern(b []byte) (Sym, string) {
	sh := &t.shards[fnv1a(b)>>(32-shardBits)]
	sh.mu.RLock()
	e, ok := sh.syms[string(b)] // no alloc: map lookup by converted []byte
	sh.mu.RUnlock()
	if ok {
		return e.sym, e.name
	}
	return t.insert(sh, string(b))
}

// InternString is Intern for callers that already hold a string. Like
// Intern it returns the canonical copy, which never aliases name's
// backing array — callers scanning substrings of a large source buffer
// can drop the buffer without the table pinning it.
func (t *Table) InternString(name string) (Sym, string) {
	sh := &t.shards[fnv1aString(name)>>(32-shardBits)]
	sh.mu.RLock()
	e, ok := sh.syms[name]
	sh.mu.RUnlock()
	if ok {
		return e.sym, e.name
	}
	return t.insert(sh, strings.Clone(name))
}

func (t *Table) insert(sh *shard, name string) (Sym, string) {
	sh.mu.Lock()
	if e, ok := sh.syms[name]; ok {
		sh.mu.Unlock()
		return e.sym, e.name
	}
	t.mu.Lock()
	s := Sym(len(t.names))
	t.names = append(t.names, name)
	t.mu.Unlock()
	sh.syms[name] = entry{sym: s, name: name}
	sh.mu.Unlock()
	return s, name
}

// NameOf returns the canonical string for s ("" for None). It takes the
// table lock, so it belongs on cold paths (diagnostics, derived-slot
// invalidation), not per-token ones — Intern returns the name for those.
func (t *Table) NameOf(s Sym) string {
	if s == None {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(s) >= len(t.names) {
		return ""
	}
	return t.names[s]
}

// Len returns the number of distinct strings interned so far.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.names) - 1
}
