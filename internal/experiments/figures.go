package experiments

import (
	"fmt"
	"strings"
	"time"

	"deviant/internal/cast"
	"deviant/internal/cfg"
	"deviant/internal/checkers/lockvar"
	"deviant/internal/checkers/null"
	"deviant/internal/core"
	"deviant/internal/corpus"
	"deviant/internal/cparse"
	"deviant/internal/csem"
	"deviant/internal/engine"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/sm"
	"deviant/internal/stats"
)

// Figure1Source is the paper's contrived lock example, structurally
// verbatim (Figure 1).
const Figure1Source = `
typedef int lock_t;
lock_t l;
int a, b;
void foo(void) {
	lock(l);
	a = a + b;
	unlock(l);
	b = b + 1;
}
void bar(void) {
	lock(l);
	a = a + 1;
	unlock(l);
}
void baz(void) {
	a = a + 1;
	unlock(l);
	b = b - 1;
	a = a / 5;
}
`

// Figure1 reproduces the Figure 1 walk-through: the lock checker derives
// (a,l) with 4 checks / 1 error and (b,l) with 3 checks / 2 errors, and
// ranks (a,l) first (§3.3–3.4).
func Figure1() (string, error) {
	f, errs := cparse.ParseSource("figure1.c", Figure1Source)
	if len(errs) != 0 {
		return "", fmt.Errorf("figure1 parse: %v", errs[0])
	}
	prog := csem.Analyze([]*cast.File{f})
	conv := latent.Default()
	ch := lockvar.New(prog, conv)
	col := report.NewCollector()
	for _, name := range prog.FuncNames() {
		g := cfg.Build(prog.Funcs[name], cfg.Options{NoReturn: conv.IsCrashRoutine})
		engine.Run(g, ch, col, engine.Options{Memoize: true})
	}
	ch.Finish(col)

	var b strings.Builder
	b.WriteString("Figure 1: statistical lock inference on the paper's example\n")
	a := ch.Counter("a", "l")
	bb := ch.Counter("b", "l")
	za := a.Z(stats.DefaultP0)
	zb := bb.Z(stats.DefaultP0)
	fmt.Fprintf(&b, "  (a,l): %d checks, %d errors  z=%.2f   (paper: 4 checks, 1 error)\n", a.Checks, a.Errors, za)
	fmt.Fprintf(&b, "  (b,l): %d checks, %d errors  z=%.2f   (paper: 3 checks, 2 errors)\n", bb.Checks, bb.Errors, zb)
	fmt.Fprintf(&b, "  ranking: (a,l) %s (b,l)\n", cmp(za, zb))
	for _, r := range col.ByChecker("lockvar") {
		fmt.Fprintf(&b, "  %s\n", r.String())
	}
	return b.String(), nil
}

func cmp(a, b float64) string {
	if a > b {
		return "outranks"
	}
	return "does NOT outrank"
}

// figure2Source bundles the two §3.1 bug fragments the metal checker of
// Figure 2 must flag.
const figure2Source = `
void capidrv_fragment(struct capi_ctr *card, int id) {
	if (card == NULL) {
		printk("capidrv-%d: incoming call on unbound id %d!\n",
			card->contrnr, id);
	}
}
int clean_guard(struct s *p) {
	if (p == NULL)
		return -1;
	return p->x;
}
`

// Figure2 reproduces Figure 2: the transcribed metal extension
// (sm.FigureTwoChecker) flags the §3.1 null dereference and stays silent
// on the clean guard.
func Figure2() (string, error) {
	f, errs := cparse.ParseSource("figure2.c", figure2Source)
	if len(errs) != 0 {
		return "", fmt.Errorf("figure2 parse: %v", errs[0])
	}
	conv := latent.Default()
	col := report.NewCollector()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			g := cfg.Build(fd, cfg.Options{NoReturn: conv.IsCrashRoutine})
			engine.Run(g, &sm.Runner{M: sm.FigureTwoChecker()}, col, engine.Options{Memoize: true})
		}
	}
	var b strings.Builder
	b.WriteString("Figure 2: metal-style internal_null_checker (sm framework)\n")
	for _, r := range col.Ranked() {
		fmt.Fprintf(&b, "  %s\n", r.String())
	}
	fmt.Fprintf(&b, "  reports: %d (expected 1: the capidrv fragment)\n", col.Len())
	return b.String(), nil
}

// Figure3 reproduces the §5.1 methodology claim: ranking error messages
// by z beats thresholding beliefs. It runs the lock checker on the
// linux-2.4.7-like corpus (whose fnCoincidence functions seed weak,
// coincidental beliefs), then compares (a) inspecting the z-ranked error
// list top-down against (b) inspecting the unranked violation pool of
// beliefs above a threshold t, for several t.
func Figure3() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	res, err := run(c)
	if err != nil {
		return "", err
	}
	lockReports := checkerLines(res, "lockvar")
	isBug := func(r report.Report) bool {
		return c.IsBugAt(corpus.UnlockedAccess, r.Pos.File, r.Pos.Line, 2)
	}

	var b strings.Builder
	b.WriteString("Figure 3: rank errors, not beliefs (§5.1)\n")
	fmt.Fprintf(&b, "corpus %s: %d lock-checker messages, %d seeded bugs\n",
		c.Spec.Name, len(lockReports), c.CountOf(corpus.UnlockedAccess))

	// Strategy A: inspect the z-ranked list top-down.
	curve := stats.InspectionCurve(len(lockReports), func(i int) bool { return isBug(lockReports[i]) })
	b.WriteString("strategy A (rank errors by z): cumulative bugs at rank k\n")
	for _, k := range []int{1, 2, 3, 5, 8, 13, 21, len(curve)} {
		if k > len(curve) {
			break
		}
		pt := curve[k-1]
		fmt.Fprintf(&b, "  k=%3d: %d bugs, %d false positives\n", pt.Rank, pt.Hits, pt.FalsePositives)
	}
	stop := stats.StopAtNoise(curve, 0.34)
	fmt.Fprintf(&b, "  inspector stops at rank %d (noise > 1/3)\n", stop)

	// Strategy B: threshold beliefs at t, inspect the whole pool.
	b.WriteString("strategy B (threshold beliefs at t, unranked pool):\n")
	for _, t := range []float64{-6, -3, -1, 0, 1} {
		pool := 0
		bugs := 0
		for _, r := range lockReports {
			if r.Z >= t {
				pool++
				if isBug(r) {
					bugs++
				}
			}
		}
		fmt.Fprintf(&b, "  t=%+4.1f: pool=%3d messages, %d real bugs (%.0f%% noise)\n",
			t, pool, bugs, noisePct(pool, bugs))
	}
	b.WriteString("conclusion: thresholding works only inside a narrow, corpus-dependent\n")
	b.WriteString("band of t; the ranked list needs no tuning and concentrates the bugs\n")
	b.WriteString("at the top (§5.1: \"ranking error messages rather than beliefs\n")
	b.WriteString("completely avoids these problems\").\n")
	return b.String(), nil
}

func noisePct(pool, bugs int) float64 {
	if pool == 0 {
		return 0
	}
	return 100 * float64(pool-bugs) / float64(pool)
}

// Figure4 reproduces the §3.5 scalability claim: with memoization the
// analyses are roughly linear in code length. It times the full pipeline
// over growing corpora, with and without memoization.
func Figure4() (string, error) {
	specs := []corpus.Spec{
		{Name: "tiny", Seed: 1, Modules: 6, FuncsPerModule: 13, Rates: corpus.DefaultRates()},
		{Name: "small", Seed: 2, Modules: 18, FuncsPerModule: 13, Rates: corpus.DefaultRates()},
		{Name: "medium", Seed: 3, Modules: 36, FuncsPerModule: 13, Rates: corpus.DefaultRates()},
		{Name: "large", Seed: 4, Modules: 72, FuncsPerModule: 13, Rates: corpus.DefaultRates()},
	}
	var b strings.Builder
	b.WriteString("Figure 4: scalability — analysis effort vs code size (§3.5)\n")
	fmt.Fprintf(&b, "%-8s %8s %7s | %12s %10s | %14s\n",
		"corpus", "lines", "funcs", "memo visits", "time", "no-memo visits")
	var first, last Timing
	for i, spec := range specs {
		tm, err := measure(spec, true)
		if err != nil {
			return "", err
		}
		tn, err := measure(spec, false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s %8d %7d | %12d %10s | %14d\n",
			spec.Name, tm.Lines, tm.Funcs, tm.Visits, tm.Elapsed.Round(time.Millisecond), tn.Visits)
		if i == 0 {
			first = tm
		}
		last = tm
	}
	lineRatio := float64(last.Lines) / float64(first.Lines)
	visitRatio := float64(last.Visits) / float64(first.Visits)
	fmt.Fprintf(&b, "lines grew %.1fx, memoized visits grew %.1fx (roughly linear)\n",
		lineRatio, visitRatio)
	return b.String(), nil
}

// AblationPruning measures the false-positive contribution of crash-path
// pruning (§6) on the null checkers.
func AblationPruning() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	on, err := run(c)
	if err != nil {
		return "", err
	}
	opts := core.DefaultOptions()
	opts.DisableCrashPruning = true
	off, err := runOpts(c, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Ablation: crash-path pruning (panic/BUG paths)\n")
	fmt.Fprintf(&b, "  null-checker reports with pruning:    %d\n", len(on.Reports.ByChecker("null")))
	fmt.Fprintf(&b, "  null-checker reports without pruning: %d\n", len(off.Reports.ByChecker("null")))
	fmt.Fprintf(&b, "  (the corpus has %d panic-guard functions; each is a potential FP)\n",
		countFuncsWithPrefixSuffix(on, "_claim"))
	return b.String(), nil
}

func countFuncsWithPrefixSuffix(res *core.Result, sub string) int {
	n := 0
	for _, name := range res.Prog.FuncNames() {
		if strings.Contains(name, sub) {
			n++
		}
	}
	return n
}

// AblationMacros measures the false-positive contribution of the
// macro-origin belief truncation (§6: "almost all false positives we
// observed were due to such macros").
func AblationMacros() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	on, err := run(c)
	if err != nil {
		return "", err
	}
	opts := core.DefaultOptions()
	nc := null.AllChecks()
	nc.TrackMacros = true
	opts.NullConfig = &nc
	off, err := runOpts(c, opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Ablation: macro-origin belief truncation\n")
	fmt.Fprintf(&b, "  null-checker reports with truncation:    %d\n", len(on.Reports.ByChecker("null")))
	fmt.Fprintf(&b, "  null-checker reports without truncation: %d\n", len(off.Reports.ByChecker("null")))
	fmt.Fprintf(&b, "  (the corpus has %d warn-macro functions; each is a potential FP)\n",
		countFuncsWithPrefixSuffix(on, "_touch"))
	return b.String(), nil
}
