package experiments

import (
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"null pointer", "user pointer", "IS_ERR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable2DerivesAllTemplates(t *testing.T) {
	out, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Does lock <l> protect <v>?",
		"Must <a> be paired with <b>?",
		"Can routine <f> fail?",
		"Does security check <y> protect <x>?",
		"Does <a> reverse <b>?",
		"interrupts off",
		"inverse",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing template %q:\n%s", want, out)
		}
	}
	// The derived instances must be the right ones.
	for _, want := range []string{"kmalloc", "spin_lock", "capable"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing derived instance %q:\n%s", want, out)
		}
	}
}

func TestTable3CoversThreeSystems(t *testing.T) {
	out, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"linux-2.4.1-like", "linux-2.4.7-like", "openbsd-2.8-like",
		"check-then-use", "use-then-check", "redundant"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable4(t *testing.T) {
	out, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "interfaces") {
		t.Errorf("missing interface column:\n%s", out)
	}
}

func TestTable5RanksKmallocTop(t *testing.T) {
	out, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	// kmalloc must appear in the can-fail top list.
	idx := strings.Index(out, "kmalloc")
	if idx < 0 {
		t.Fatalf("kmalloc missing:\n%s", out)
	}
}

func TestTable6(t *testing.T) {
	out, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spin_lock") || !strings.Contains(out, "ablation") {
		t.Errorf("table 6 incomplete:\n%s", out)
	}
}

func TestFigure1MatchesPaperCounts(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(a,l): 4 checks, 1 errors") {
		t.Errorf("(a,l) counts wrong:\n%s", out)
	}
	if !strings.Contains(out, "(b,l): 3 checks, 2 errors") {
		t.Errorf("(b,l) counts wrong:\n%s", out)
	}
	if !strings.Contains(out, "(a,l) outranks (b,l)") {
		t.Errorf("ranking wrong:\n%s", out)
	}
}

func TestFigure2FindsExactlyTheBug(t *testing.T) {
	out, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reports: 1") {
		t.Errorf("figure 2 should find exactly 1 bug:\n%s", out)
	}
	if !strings.Contains(out, "card") {
		t.Errorf("should flag card:\n%s", out)
	}
}

func TestFigure3RankingBeatsThreshold(t *testing.T) {
	out, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy A") || !strings.Contains(out, "strategy B") {
		t.Fatalf("missing strategies:\n%s", out)
	}
}

func TestFigure4RoughlyLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep is slow")
	}
	out, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "roughly linear") {
		t.Errorf("figure 4 incomplete:\n%s", out)
	}
}

func TestAblationPruning(t *testing.T) {
	out, err := AblationPruning()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "with pruning") {
		t.Errorf("ablation incomplete:\n%s", out)
	}
}

func TestTable7CrossVersion(t *testing.T) {
	out, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + out)
	if !strings.Contains(out, "regressions") {
		t.Errorf("table 7 incomplete:\n%s", out)
	}
	// Every visible regression must be flagged with no extra noise.
	if !strings.Contains(out, "extra flags: 0") {
		t.Errorf("cross-version diff produced noise:\n%s", out)
	}
}
