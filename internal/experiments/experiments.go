// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each experiment
// returns a rendered text block — the same rows/series the paper reports —
// plus structured data where the benchmarks assert on shape.
//
// The corpora are the synthetic kernel trees from internal/corpus; see
// DESIGN.md §2 for why that substitution preserves the behaviour each
// checker keys on.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"deviant/internal/checkers/version"
	"deviant/internal/core"
	"deviant/internal/corpus"
	"deviant/internal/latent"
	"deviant/internal/report"
	"deviant/internal/stats"
)

// run analyzes a corpus with the default (paper-faithful) options.
func run(c *corpus.Corpus) (*core.Result, error) {
	return core.New(core.DefaultOptions(), nil).AnalyzeSources(c.Files)
}

func runOpts(c *corpus.Corpus, opts core.Options) (*core.Result, error) {
	return core.New(opts, nil).AnalyzeSources(c.Files)
}

// scoreKind computes TP/FP/FN for one checker on one corpus. Checkers
// overlap: path-pair templates also rediscover leaked locks and broken
// IS_ERR disciplines, so those kinds absolve each other's reports.
func scoreKind(c *corpus.Corpus, res *core.Result, kind corpus.BugKind) corpus.Score {
	match := []corpus.BugKind{kind}
	switch kind {
	case corpus.MissingRevert:
		match = append(match, corpus.MissingUnlock, corpus.WrongErrCheck)
	case corpus.MissingUnlock:
		match = append(match, corpus.WrongErrCheck, corpus.IntrEnabled)
	}
	return corpus.ScoreReportsKinds(c, res.Reports.Ranked(), kind, match, 2)
}

// Table1 reproduces Table 1: the questions answerable with internal
// consistency, evaluated on the linux-2.4.7-like corpus. For each
// question it reports the contradictions found and the seeded truth.
func Table1() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	res, err := run(c)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: internal consistency questions (corpus %s, %d funcs, %d lines)\n",
		c.Spec.Name, res.FuncCount, res.LineCount)
	fmt.Fprintf(&b, "%-44s %8s %8s %8s\n", "question (template)", "seeded", "found", "false")
	rows := []struct {
		q    string
		kind corpus.BugKind
	}{
		{"Is <p> a null pointer? (check-then-use)", corpus.CheckThenUse},
		{"Is <p> a null pointer? (use-then-check)", corpus.UseThenCheck},
		{"Is <p> a null pointer? (redundant check)", corpus.RedundantCheck},
		{"Is <p> a dangerous user pointer?", corpus.UserPtrDeref},
		{"Must IS_ERR check <f>'s result?", corpus.WrongErrCheck},
	}
	for _, r := range rows {
		sc := scoreKind(c, res, r.kind)
		fmt.Fprintf(&b, "%-44s %8d %8d %8d\n", r.q, c.CountOf(r.kind), sc.TruePositives, sc.FalsePositives)
	}
	return b.String(), nil
}

// Table2 reproduces Table 2: the templates derivable with statistical
// analysis. For each template it shows the top derived slot instance with
// its examples/population evidence and z value, plus the checking yield.
func Table2() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	res, err := run(c)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: statistically derived templates (corpus %s)\n", c.Spec.Name)
	fmt.Fprintf(&b, "%-42s %-36s %9s %7s\n", "template", "top derived instance", "E/N", "z")

	row := func(template, instance string, cnt stats.Counter, z float64) {
		fmt.Fprintf(&b, "%-42s %-36s %4d/%-4d %7.2f\n", template, instance, cnt.Examples(), cnt.Checks, z)
	}

	if len(res.LockBindings) > 0 {
		top := res.LockBindings[0]
		row("Does lock <l> protect <v>?", top.Var+" by "+top.Lock, top.Counter, top.Z)
	}
	if len(res.Pairs) > 0 {
		top := res.Pairs[0]
		row("Must <a> be paired with <b>?", top.A+" / "+top.B, top.Counter, top.Z)
	}
	if len(res.CanFail) > 0 {
		top := res.CanFail[0]
		row("Can routine <f> fail?", top.Func, top.Counter, top.Z)
	}
	if len(res.SecChecks) > 0 {
		top := res.SecChecks[0]
		row("Does security check <y> protect <x>?", top.Check+" guards "+top.Action, top.Counter, top.Z)
	}
	if len(res.Reversals) > 0 {
		top := res.Reversals[0]
		row("Does <a> reverse <b>?", top.Undo+" reverses "+top.Forward, top.Counter, top.Z)
	}
	if len(res.IntrFuncs) > 0 {
		top := res.IntrFuncs[0]
		row("Must <f> be called with interrupts off?", top.Func, top.Counter, top.Z)
	}
	// Inverse principle demonstration (§5): rank the negated can-fail
	// template.
	if len(res.CanFailNever) > 0 {
		top := res.CanFailNever[0]
		fmt.Fprintf(&b, "%-42s %-36s %4d/%-4d %7.2f   (inverse z(n, n-e))\n",
			"Routine <f> never fails (inverse)", top.Func,
			top.Counter.Errors, top.Counter.Checks, top.Z)
	}
	return b.String(), nil
}

// Table3 reproduces Table 3 (§6.1): the internal null consistency results
// across systems. Rows are the three sub-checkers; columns report seeded
// bugs, bugs found, and false positives for each corpus.
func Table3() (string, error) {
	specs := []corpus.Spec{corpus.Linux241(), corpus.Linux247(), corpus.OpenBSD28()}
	kinds := []corpus.BugKind{corpus.CheckThenUse, corpus.UseThenCheck, corpus.RedundantCheck}

	var b strings.Builder
	b.WriteString("Table 3: internal null consistency errors\n")
	fmt.Fprintf(&b, "%-24s", "checker")
	for _, s := range specs {
		fmt.Fprintf(&b, " | %-24s", s.Name+" (bug/FP/seed)")
	}
	b.WriteString("\n")
	type cell struct{ tp, fp, seeded int }
	grid := make(map[corpus.BugKind][]cell)
	for _, spec := range specs {
		c := corpus.Generate(spec)
		res, err := run(c)
		if err != nil {
			return "", err
		}
		for _, k := range kinds {
			sc := scoreKind(c, res, k)
			grid[k] = append(grid[k], cell{sc.TruePositives, sc.FalsePositives, c.CountOf(k)})
		}
	}
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-24s", string(k))
		for _, cl := range grid[k] {
			fmt.Fprintf(&b, " | %8d/%2d/%2d        ", cl.tp, cl.fp, cl.seeded)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Table4 reproduces the Section 7 results: the user-pointer security
// checker on two systems, including cross-interface propagation.
func Table4() (string, error) {
	var b strings.Builder
	b.WriteString("Table 4: user-pointer security checker (§7)\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %12s\n", "corpus", "seeded", "found", "false", "interfaces")
	for _, spec := range []corpus.Spec{corpus.Linux247(), corpus.OpenBSD28()} {
		c := corpus.Generate(spec)
		res, err := run(c)
		if err != nil {
			return "", err
		}
		sc := scoreKind(c, res, corpus.UserPtrDeref)
		classes := len(res.Prog.InterfaceClasses())
		fmt.Fprintf(&b, "%-22s %8d %8d %8d %12d\n",
			spec.Name, c.CountOf(corpus.UserPtrDeref), sc.TruePositives, sc.FalsePositives, classes)
	}
	return b.String(), nil
}

// Table5 reproduces the Section 8 results: derivation of routines that
// can fail (top-ranked by z) and the IS_ERR discipline, with the errors
// each yields.
func Table5() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	res, err := run(c)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 5: derived failure rules (§8)\n")
	b.WriteString("top routines by z for \"can <f> fail?\":\n")
	fmt.Fprintf(&b, "  %-22s %9s %7s\n", "routine", "E/N", "z")
	for i, d := range res.CanFail {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %-22s %4d/%-4d %7.2f\n", d.Func, d.Examples(), d.Checks, d.Z)
	}
	scFail := scoreKind(c, res, corpus.UncheckedAlloc)
	fmt.Fprintf(&b, "unchecked-use errors: %d found, %d false (seeded %d)\n",
		scFail.TruePositives, scFail.FalsePositives, c.CountOf(corpus.UncheckedAlloc))

	b.WriteString("IS_ERR discipline (§8.3):\n")
	fmt.Fprintf(&b, "  %-22s %8s %8s %7s\n", "routine", "IS_ERR", "other", "z")
	for i, d := range res.IsErrFuncs {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %-22s %8d %8d %7.2f\n", d.Func, d.IsErrChecked, d.CheckedOtherly, d.Z)
	}
	scErr := scoreKind(c, res, corpus.WrongErrCheck)
	fmt.Fprintf(&b, "wrong-check errors: %d found, %d false (seeded %d)\n",
		scErr.TruePositives, scErr.FalsePositives, c.CountOf(corpus.WrongErrCheck))
	return b.String(), nil
}

// Table6 reproduces the Section 9 results: derived <a>,<b> pairs ranked
// by z plus the latent-specification boost, the violations they yield,
// and the latent-boost ablation.
func Table6() (string, error) {
	c := corpus.Generate(corpus.Linux247())
	res, err := run(c)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 6: derived function pairs (§9)\n")
	fmt.Fprintf(&b, "  %-20s %-20s %9s %7s %6s\n", "a", "b", "E/N", "z", "boost")
	for i, p := range res.Pairs {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&b, "  %-20s %-20s %4d/%-4d %7.2f %6.1f\n",
			p.A, p.B, p.Examples(), p.Checks, p.Z, p.Boost)
	}
	sc := scoreKind(c, res, corpus.MissingUnlock)
	fmt.Fprintf(&b, "pairing violations: %d found, %d false (seeded %d)\n",
		sc.TruePositives, sc.FalsePositives, c.CountOf(corpus.MissingUnlock))

	// Ablation: rank of the spin_lock/spin_unlock pair with and without
	// the latent boost.
	withBoost, withoutBoost := -1, -1
	for i, p := range res.Pairs {
		if p.A == "spin_lock" && p.B == "spin_unlock" {
			withBoost = i
		}
	}
	type scored struct {
		idx int
		z   float64
	}
	zs := make([]scored, len(res.Pairs))
	for i, p := range res.Pairs {
		zs[i] = scored{i, p.Z}
	}
	sort.SliceStable(zs, func(i, j int) bool { return zs[i].z > zs[j].z })
	for rank, s := range zs {
		p := res.Pairs[s.idx]
		if p.A == "spin_lock" && p.B == "spin_unlock" {
			withoutBoost = rank
		}
	}
	fmt.Fprintf(&b, "latent boost ablation: spin_lock/spin_unlock ranks #%d with boost, #%d without\n",
		withBoost+1, withoutBoost+1)
	return b.String(), nil
}

// ranked reports helper: ByChecker then positions as strings.
func checkerLines(res *core.Result, name string) []report.Report {
	return res.Reports.ByChecker(name)
}

// Timing is one point of the scalability figure.
type Timing struct {
	Name     string
	Lines    int
	Funcs    int
	Elapsed  time.Duration
	Visits   int
	MemoHits int
}

// measure runs the full pipeline and clocks it.
func measure(spec corpus.Spec, memoize bool) (Timing, error) {
	c := corpus.Generate(spec)
	opts := core.DefaultOptions()
	opts.Memoize = memoize
	start := time.Now()
	res, err := runOpts(c, opts)
	if err != nil {
		return Timing{}, err
	}
	elapsed := time.Since(start)
	visits, hits := 0, 0
	for _, s := range res.EngineStats {
		visits += s.Visits
		hits += s.MemoHits
	}
	return Timing{
		Name: spec.Name, Lines: res.LineCount, Funcs: res.FuncCount,
		Elapsed: elapsed, Visits: visits, MemoHits: hits,
	}, nil
}

// Table7 reproduces the §4.2 cross-version consistency idea: "relate the
// same routine to itself through time across different versions" and flag
// modifications that violate invariants implied by the old code. The two
// corpus snapshots share every clean function; the new one introduces
// regressions at known sites.
func Table7() (string, error) {
	oldC, newC, regressions := corpus.VersionPair(corpus.Linux241(), 2.5)
	oldRes, err := runOpts(oldC, core.Options{Checks: core.Checks{}})
	if err != nil {
		return "", err
	}
	newRes, err := runOpts(newC, core.Options{Checks: core.Checks{}})
	if err != nil {
		return "", err
	}
	col := report.NewCollector()
	drifts := version.Diff(oldRes.Prog, newRes.Prog, latent.Default(), col)

	// Which regressions is cross-version diffing expected to see?
	visible := map[corpus.BugKind]bool{
		corpus.UseThenCheck:   true, // dropped null guard
		corpus.UncheckedAlloc: true, // dropped result check
		corpus.UserPtrDeref:   true, // dropped copy_from_user
	}
	expected := map[string]corpus.BugKind{}
	for _, r := range regressions {
		if visible[r.Kind] {
			expected[r.Func] = r.Kind
		}
	}
	found := map[string]bool{}
	falsePos := 0
	for _, d := range drifts {
		if _, ok := expected[d.Func]; ok {
			found[d.Func] = true
		} else {
			falsePos++
		}
	}

	var b strings.Builder
	b.WriteString("Table 7: cross-version consistency (§4.2)\n")
	fmt.Fprintf(&b, "old: %s (%d bugs)   new: %s (%d bugs, %d regressions)\n",
		oldC.Spec.Name, len(oldC.Bugs), newC.Spec.Name, len(newC.Bugs), len(regressions))
	byKind := map[string]int{}
	for _, d := range drifts {
		byKind[d.Kind]++
	}
	for _, k := range []string{"dropped-null-check", "dropped-result-check", "user-pointer-regression", "error-convention-flip"} {
		fmt.Fprintf(&b, "  %-28s %d drifts\n", k, byKind[k])
	}
	fmt.Fprintf(&b, "visible regressions: %d, flagged: %d, extra flags: %d\n",
		len(expected), len(found), falsePos)
	return b.String(), nil
}
