package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTrajectory renders a two-run history and checks the grouping
// contract: one section per benchmark sorted by name, rows in file
// (chronological) order, readings rescaled to ms/MB.
func TestTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.json")
	if err := os.WriteFile(path, []byte(`{"entries":[
		{"date":"2026-08-05","benchmarks":[
			{"name":"BenchmarkAnalyzeParallel","iterations":1,"ns_per_op":575500000,"bytes_per_op":162300000,"allocs_per_op":1157636}]},
		{"date":"2026-08-08","benchmarks":[
			{"name":"BenchmarkAnalyzeParallel","iterations":3,"ns_per_op":166843340,"bytes_per_op":64295674,"allocs_per_op":222497},
			{"name":"BenchmarkAnalyzeFleetTraceOn","iterations":3,"ns_per_op":200000000,"bytes_per_op":80000000,"allocs_per_op":300000}]}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Trajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 runs, 2 benchmarks") {
		t.Errorf("header wrong:\n%s", out)
	}
	// Sections sorted by name: FleetTraceOn before Parallel.
	fleet := strings.Index(out, "BenchmarkAnalyzeFleetTraceOn")
	par := strings.Index(out, "BenchmarkAnalyzeParallel")
	if fleet < 0 || par < 0 || fleet > par {
		t.Errorf("sections out of order (fleet at %d, parallel at %d):\n%s", fleet, par, out)
	}
	// Chronological rows within a section, with rescaled readings.
	parSection := out[par:]
	d5 := strings.Index(parSection, "2026-08-05")
	d8 := strings.Index(parSection, "2026-08-08")
	if d5 < 0 || d8 < 0 || d5 > d8 {
		t.Errorf("rows not chronological:\n%s", out)
	}
	for _, want := range []string{"575.5", "162.3", "1157636", "166.8", "200.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	if _, err := Trajectory(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
}
