package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// trajectoryFile mirrors the shape cmd/benchjson appends to
// BENCH_trajectory.json: one entry per bench-json run, dated, each
// carrying the standard Go benchmark readings.
type trajectoryFile struct {
	Entries []struct {
		Date       string `json:"date"`
		Benchmarks []struct {
			Name        string  `json:"name"`
			Iterations  int     `json:"iterations"`
			NsPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  float64 `json:"bytes_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	} `json:"entries"`
}

// Trajectory renders the benchmark history cmd/benchjson accumulates:
// one section per benchmark (sorted by name), one row per recorded run
// in file order (chronological — benchjson only appends). It is how
// EXPERIMENTS.md's perf-over-time tables are produced; rendering is
// pure formatting, so the table is reproducible from the JSON alone.
func Trajectory(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var tf trajectoryFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return "", fmt.Errorf("experiments: %s: %w", path, err)
	}

	type row struct {
		date        string
		iterations  int
		nsPerOp     float64
		bytesPerOp  float64
		allocsPerOp float64
	}
	byName := map[string][]row{}
	for _, e := range tf.Entries {
		for _, b := range e.Benchmarks {
			byName[b.Name] = append(byName[b.Name], row{
				date:        e.Date,
				iterations:  b.Iterations,
				nsPerOp:     b.NsPerOp,
				bytesPerOp:  b.BytesPerOp,
				allocsPerOp: b.AllocsPerOp,
			})
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "benchmark trajectory (%s): %d runs, %d benchmarks\n", path, len(tf.Entries), len(names))
	for _, name := range names {
		fmt.Fprintf(&b, "\n%s\n", name)
		fmt.Fprintf(&b, "  %-12s %8s %12s %10s %12s\n", "date", "iters", "ms/op", "MB/op", "allocs/op")
		for _, r := range byName[name] {
			fmt.Fprintf(&b, "  %-12s %8d %12.1f %10.1f %12.0f\n",
				r.date, r.iterations, r.nsPerOp/1e6, r.bytesPerOp/1e6, r.allocsPerOp)
		}
	}
	return b.String(), nil
}
