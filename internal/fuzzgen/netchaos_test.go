package fuzzgen

import (
	"testing"
	"time"

	"deviant/internal/dist"
	"deviant/internal/fault"
)

// TestNetChaosOracle runs the ninth oracle standalone over a few seeds:
// no violations, and the right number of fleet runs (the matrix is
// fixed, so a miscounted stats total means a leg silently vanished).
func TestNetChaosOracle(t *testing.T) {
	defer fault.Reset()
	for seed := int64(1); seed <= 4; seed++ {
		sources := Generate(seed).Sources()
		base := guardedAnalyze(sources, soakOptions(1, true, nil), 30*time.Second)
		if !ok(base) || base.err != nil {
			t.Fatalf("seed %d: baseline broken: %+v", seed, base)
		}
		var stats SeedStats
		vs := checkNetChaos(sources, canonical(base), 30*time.Second, &stats)
		for _, v := range vs {
			t.Errorf("seed %d: %s", seed, v)
		}
		// 5 transient + 2 drop-all + 3 epochs.
		if stats.Analyses != 10 {
			t.Errorf("seed %d: %d chaos runs, want 10", seed, stats.Analyses)
		}
	}
}

// TestNetChaosNotVacuous pins that the oracle's injections actually
// bite: a persistent drop-all really quarantines work, and a transient
// drop really costs a retry — otherwise every assertion above would
// pass against a transport that ignores its failpoints.
func TestNetChaosNotVacuous(t *testing.T) {
	defer fault.Reset()
	sources := Generate(1).Sources()

	c, _ := newFuzzFleet(2)
	fault.ArmNet(dist.NetPoint, "fz-w", fault.NetFault{Action: fault.NetDrop})
	dead := guardedFleetRun(c, sources, soakOptions(2, true, nil), 30*time.Second)
	fault.Reset()
	if !ok(dead) || dead.err != nil {
		t.Fatalf("drop-all run broken: %+v", dead)
	}
	if dead.res == nil || !dead.res.Degraded || len(dead.res.Quarantined) == 0 {
		t.Fatal("persistent drop-all quarantined nothing; chaos injection is not reaching the transport")
	}

	c1, _ := newFuzzFleet(1)
	fault.ArmNet(dist.NetPoint, "fz-w0", fault.NetFault{Action: fault.NetDrop, Times: 1})
	one := guardedFleetRun(c1, sources, soakOptions(2, true, nil), 30*time.Second)
	fault.Reset()
	if !ok(one) || one.err != nil {
		t.Fatalf("one-drop run broken: %+v", one)
	}
	if one.res == nil || one.res.Degraded {
		t.Fatal("single transient drop on the only worker should be absorbed by the retry")
	}
}
