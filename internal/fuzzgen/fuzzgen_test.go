package fuzzgen

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"deviant/internal/core"
	"deviant/internal/fault"
)

// Generation must be a pure function of the seed: the soak runner's repro
// contract ("deviantfuzz -seed N") depends on it.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 999} {
		a := Generate(seed).Sources()
		b := Generate(seed).Sources()
		if len(a) != len(b) {
			t.Fatalf("seed %d: file counts differ: %d vs %d", seed, len(a), len(b))
		}
		for name, src := range a {
			if b[name] != src {
				t.Fatalf("seed %d: %s differs between generations", seed, name)
			}
		}
	}
}

func TestMutateDeterministic(t *testing.T) {
	src := Generate(3).Sources()
	a := Mutate(src, rand.New(rand.NewSource(9)))
	b := Mutate(src, rand.New(rand.NewSource(9)))
	for name := range a {
		if a[name] != b[name] {
			t.Fatalf("mutation of %s not deterministic in rng", name)
		}
	}
}

// Unmutated programs must be clean C as far as the frontend is concerned:
// the metamorphic oracles argue about program semantics, which requires
// the program to actually parse.
func TestGeneratedParsesClean(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := Generate(seed)
		res, err := core.New(core.DefaultOptions(), nil).AnalyzeSources(p.Sources())
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		// The only diagnostics a fresh program may carry are the
		// deliberately-missing includes the grammar injects.
		for _, e := range res.ParseErrors {
			if !strings.Contains(e.Error(), "fzmissing") {
				t.Fatalf("seed %d: unexpected frontend diagnostic: %v", seed, e)
			}
		}
		if res.FuncCount == 0 {
			t.Fatalf("seed %d: no functions survived the frontend", seed)
		}
	}
}

// Renaming must preserve byte length (so report positions survive) and
// substitute every generated identifier consistently.
func TestRenamePreservesLayout(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := Generate(seed)
		orig := p.Sources()
		ren := p.SourcesRenamed()
		for name, src := range orig {
			if len(ren[name]) != len(src) {
				t.Fatalf("seed %d: %s changed length under rename: %d vs %d",
					seed, name, len(src), len(ren[name]))
			}
		}
		for _, id := range p.Renames {
			for name, src := range ren {
				if containsWord(src, id) {
					t.Fatalf("seed %d: %s still contains %q after rename", seed, name, id)
				}
			}
		}
	}
}

func containsWord(src, word string) bool {
	for i := 0; ; {
		j := strings.Index(src[i:], word)
		if j < 0 {
			return false
		}
		j += i
		before := j == 0 || !isWordCont(src[j-1])
		after := j+len(word) == len(src) || !isWordCont(src[j+len(word)])
		if before && after {
			return true
		}
		i = j + 1
	}
}

// A small slice of the soak: every oracle over a couple dozen seeds. The
// full 200-seed run lives in `make soak-smoke`.
func TestMiniSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("mini-soak skipped in -short mode")
	}
	for seed := int64(1); seed <= 12; seed++ {
		_, vs, st := CheckSeed(seed, 30*time.Second)
		for _, v := range vs {
			t.Errorf("seed %d (mutated=%v): %s", seed, st.Mutated, v)
		}
		if st.Analyses == 0 {
			t.Errorf("seed %d: no analyses ran", seed)
		}
	}
}

// The quarantine oracle must not pass vacuously: within a small seed
// range some program carries trap bait, and arming the failpoints over
// it actually quarantines work.
func TestTrapBaitReachable(t *testing.T) {
	defer fault.Reset()
	for seed := int64(1); seed <= 40; seed++ {
		p := Generate(seed)
		has := false
		for _, u := range p.Units {
			for _, fn := range u.Funcs {
				if strings.Contains(fn, "fztrap") {
					has = true
				}
			}
		}
		if !has {
			continue
		}
		for _, name := range p.Renames {
			if strings.Contains(name, "fztrap") {
				t.Fatalf("seed %d: trap bait leaked into Renames", seed)
			}
		}
		fault.Arm("frontend", "fztrapf")
		fault.Arm("cfg", "fztrapc")
		fault.Arm("checker", "fztrapk")
		opts := core.DefaultOptions()
		res, err := core.New(opts, nil).AnalyzeSources(p.Sources())
		fault.Reset()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Degraded || len(res.Quarantined) == 0 {
			t.Fatalf("seed %d: armed traps over bait quarantined nothing", seed)
		}
		return
	}
	t.Fatal("no seed in 1..40 generated trap bait; raise the bait probability")
}
