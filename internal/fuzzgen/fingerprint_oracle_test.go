package fuzzgen

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestFingerprintOracle is the eighth oracle run deterministically: for
// a fixed seed range, the fingerprint multiset must be byte-identical
// across worker counts 1/4, memo on/off, fleet shapes 1/2, and under
// the alpha-rename and function-reorder metamorphic transforms. This is
// the invariance contract baselines and fingerprint-keyed diffs depend
// on; `make fuzz-smoke` runs it alongside the native fuzz targets, and
// the randomized soak (`make soak-smoke`) extends the same checks to
// 200 adversarial seeds via CheckSeed.
func TestFingerprintOracle(t *testing.T) {
	const timeout = 30 * time.Second
	seedsWithReports := 0
	for seed := int64(1); seed <= 8; seed++ {
		p := Generate(seed)
		sources := p.Sources()

		base := guardedAnalyze(sources, soakOptions(1, true, nil), timeout)
		if !ok(base) || base.res == nil {
			t.Fatalf("seed %d: baseline run failed: panicked=%q hung=%v err=%v",
				seed, firstLine(base.panicked), base.hung, base.err)
		}
		baseFP := fpSet(base.res)
		if !strings.HasPrefix(baseFP, "missing=0") {
			t.Errorf("seed %d: baseline produced unstamped reports: %s", seed, firstLine(baseFP))
		}
		if base.res.Reports.Len() > 0 {
			seedsWithReports++
		}

		expect := func(config string, out runOut) {
			t.Helper()
			if !ok(out) || out.res == nil {
				t.Errorf("seed %d: %s run failed: panicked=%q hung=%v err=%v",
					seed, config, firstLine(out.panicked), out.hung, out.err)
				return
			}
			if got := fpSet(out.res); got != baseFP {
				t.Errorf("seed %d: %s fingerprint set diverged: %s",
					seed, config, diffDetail(baseFP, got))
			}
		}

		expect("workers=4", guardedAnalyze(sources, soakOptions(4, true, nil), timeout))

		memOff := guardedAnalyze(sources, soakOptions(1, false, nil), timeout)
		if ok(memOff) && !truncated(base) && !truncated(memOff) {
			expect("memo=off", memOff)
		}

		expect("alpha-rename", guardedAnalyze(p.SourcesRenamed(), soakOptions(1, true, nil), timeout))
		expect("function-reorder",
			guardedAnalyze(p.SourcesReordered(rand.New(rand.NewSource(seed*7+1))), soakOptions(1, true, nil), timeout))

		for _, n := range []int{1, 2} {
			c, _ := newFuzzFleet(n)
			out := guardedFleetRun(c, sources, soakOptions(2, true, nil), timeout)
			expect("fleet-"+string(rune('0'+n)), out)
		}
	}
	if seedsWithReports == 0 {
		t.Fatal("oracle vacuous: no seed in range produced any reports")
	}
}
