// Corpus mutation: given a rendered source map, apply destructive
// byte-level edits — truncation, deleted and duplicated line spans,
// unbalanced delimiters, injected garbage. The result is usually not
// valid C; the frontend must diagnose and recover, and every differential
// oracle except the metamorphic one still applies (the same broken input
// must produce the same output for every worker count, memo setting and
// snapshot temperature, with no crash and no hang).
package fuzzgen

import (
	"math/rand"
	"sort"
	"strings"
)

// garbage is the injection pool: directive fragments, unterminated
// literals, stray punctuation, digraph-ish noise.
var garbage = []string{
	"#define ", "#if 0\n", "#include \"", "/*", "*/", "\\\n", "\"",
	"'", "{{", "}}", ";;", "->", "...", "0x", "##", "#", "??(",
	"\x00", "\t\t\t", "else", "case 0:", "goto ",
}

// Mutate returns a mutated copy of sources: 1..3 files receive 1..4
// random edits each. Deterministic in rng.
func Mutate(sources map[string]string, rng *rand.Rand) map[string]string {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make(map[string]string, len(sources))
	for name, src := range sources {
		out[name] = src
	}
	nfiles := 1 + rng.Intn(3)
	for i := 0; i < nfiles; i++ {
		name := names[rng.Intn(len(names))]
		src := out[name]
		nedits := 1 + rng.Intn(4)
		for e := 0; e < nedits; e++ {
			src = mutateOnce(src, rng)
		}
		out[name] = src
	}
	return out
}

func mutateOnce(src string, rng *rand.Rand) string {
	if len(src) == 0 {
		return garbage[rng.Intn(len(garbage))]
	}
	switch rng.Intn(6) {
	case 0: // truncate at an arbitrary byte
		return src[:rng.Intn(len(src))]
	case 1: // delete a byte span
		i := rng.Intn(len(src))
		j := i + 1 + rng.Intn(minInt(64, len(src)-i))
		return src[:i] + src[j:]
	case 2: // duplicate a line
		lines := strings.SplitAfter(src, "\n")
		i := rng.Intn(len(lines))
		lines = append(lines[:i+1], append([]string{lines[i]}, lines[i+1:]...)...)
		return strings.Join(lines, "")
	case 3: // unbalance a delimiter
		delims := "{}()\"'"
		var idxs []int
		for i := 0; i < len(src); i++ {
			if strings.IndexByte(delims, src[i]) >= 0 {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			return src + "}"
		}
		i := idxs[rng.Intn(len(idxs))]
		if rng.Intn(2) == 0 {
			return src[:i] + src[i+1:] // drop it
		}
		return src[:i] + string(delims[rng.Intn(len(delims))]) + src[i+1:] // swap it
	case 4: // inject garbage
		i := rng.Intn(len(src) + 1)
		return src[:i] + garbage[rng.Intn(len(garbage))] + src[i:]
	default: // splice: swap two chunks
		if len(src) < 8 {
			return src
		}
		a := rng.Intn(len(src) / 2)
		b := len(src)/2 + rng.Intn(len(src)/2)
		alen := 1 + rng.Intn(minInt(32, len(src)/2-a))
		blen := 1 + rng.Intn(minInt(32, len(src)-b))
		return src[:a] + src[b:b+blen] + src[a+alen:b] + src[a:a+alen] + src[b+blen:]
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
