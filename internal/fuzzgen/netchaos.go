// The ninth differential oracle: network chaos. The shard transport
// must absorb every transient network fault class (drop, delay,
// corrupt-bytes, truncate, duplicate) byte-identically — retries and the
// merge's idempotence make one blip invisible — while persistent faults
// degrade the run deterministically, never fail it. Live membership
// reshapes (SetWorkers shrink/grow) must bump the epoch and leave output
// bytes untouched at every epoch: placement is a pure function of
// (epoch member set, unit digests).
package fuzzgen

import (
	"fmt"
	"time"

	"deviant/internal/dist"
	"deviant/internal/fault"
)

// netChaosFaults is the transient injection matrix: one instance of each
// fault class. Delays stay in the low milliseconds so a soak's thousands
// of runs don't serialize on sleeps.
func netChaosFaults() []fault.NetFault {
	return []fault.NetFault{
		{Action: fault.NetDrop, Times: 1},
		{Action: fault.NetDelay, Delay: 2 * time.Millisecond, Times: 1},
		{Action: fault.NetCorrupt, Times: 1},
		{Action: fault.NetTruncate, Times: 1},
		{Action: fault.NetDuplicate, Times: 1},
	}
}

// checkNetChaos runs the network-chaos oracle against the single-process
// baseline canon. Each returned Violation has Oracle "netchaos", or
// "robust" for a panic/hang inside a chaos run.
func checkNetChaos(sources map[string]string, baseCanon string, timeout time.Duration, stats *SeedStats) []Violation {
	var vs []Violation
	run := func(c *dist.Coordinator, label string) runOut {
		stats.Analyses++
		out := guardedFleetRun(c, sources, soakOptions(2, true, nil), timeout)
		if out.panicked != "" {
			vs = append(vs, Violation{"robust", "netchaos " + label + " panic: " + firstLine(out.panicked)})
		}
		if out.hung {
			vs = append(vs, Violation{"robust", fmt.Sprintf("netchaos %s run exceeded %v", label, timeout)})
		}
		return out
	}

	// Transient faults: each class armed for exactly one call against one
	// worker of three. The transport's retry (or the merge's idempotence,
	// for duplicates) must absorb the blip: byte-identical, not degraded.
	for _, f := range netChaosFaults() {
		c, _ := newFuzzFleet(3)
		fault.ArmNet(dist.NetPoint, "fz-w1", f)
		out := run(c, "transient-"+f.Action.String())
		fault.Reset()
		if ok(out) {
			if canonical(out) != baseCanon {
				vs = append(vs, Violation{"netchaos",
					fmt.Sprintf("transient %s diverged from single-process: %s", f.Action, diffDetail(baseCanon, canonical(out)))})
			}
			if out.res != nil && out.res.Degraded {
				vs = append(vs, Violation{"netchaos",
					fmt.Sprintf("transient %s degraded the run instead of being absorbed", f.Action)})
			}
		}
	}

	// Persistent drop on every link: nothing can serve any shard, so the
	// run must degrade — never error — and degrade identically on a
	// second attempt.
	c2, _ := newFuzzFleet(2)
	fault.ArmNet(dist.NetPoint, "fz-w", fault.NetFault{Action: fault.NetDrop})
	dead1 := run(c2, "drop-all-1")
	dead2 := run(c2, "drop-all-2")
	fault.Reset()
	if ok(dead1) && ok(dead2) {
		if dead1.err != nil {
			vs = append(vs, Violation{"netchaos", "all-links-dead failed instead of degrading: " + dead1.err.Error()})
		} else if dead1.res != nil && !dead1.res.Degraded {
			vs = append(vs, Violation{"netchaos", "all-links-dead run not marked degraded"})
		}
		if canonical(dead1) != canonical(dead2) {
			vs = append(vs, Violation{"netchaos",
				"all-links-dead degradation is nondeterministic: " + diffDetail(canonical(dead1), canonical(dead2))})
		}
	}

	// Live membership reshape: shrink three workers to two, grow back.
	// Each reload must bump the epoch, and every epoch's run must
	// reproduce the baseline bytes.
	c3, ws := newFuzzFleet(3)
	full := make([]dist.Worker, len(ws))
	for i := range ws {
		full[i] = dist.Worker{Name: fmt.Sprintf("fz-w%d", i), Caller: ws[i]}
	}
	if out := run(c3, "epoch1"); ok(out) && canonical(out) != baseCanon {
		vs = append(vs, Violation{"netchaos", "epoch-1 fleet diverged: " + diffDetail(baseCanon, canonical(out))})
	}
	if err := c3.SetWorkers(full[:2]); err != nil {
		vs = append(vs, Violation{"netchaos", "shrink reload failed: " + err.Error()})
		return vs
	}
	if out := run(c3, "epoch2"); ok(out) && canonical(out) != baseCanon {
		vs = append(vs, Violation{"netchaos", "post-shrink run diverged: " + diffDetail(baseCanon, canonical(out))})
	}
	if err := c3.SetWorkers(full); err != nil {
		vs = append(vs, Violation{"netchaos", "grow reload failed: " + err.Error()})
		return vs
	}
	if got := c3.Epoch(); got != 3 {
		vs = append(vs, Violation{"netchaos", fmt.Sprintf("epoch after two reloads = %d, want 3", got)})
	}
	if out := run(c3, "epoch3"); ok(out) && canonical(out) != baseCanon {
		vs = append(vs, Violation{"netchaos", "post-grow run diverged: " + diffDetail(baseCanon, canonical(out))})
	}
	return vs
}
