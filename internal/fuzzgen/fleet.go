// The seventh differential oracle: fleet determinism. A distributed run
// (coordinator sharding units across N workers, merging token-stream
// partials, running the global half locally) must be byte-identical to
// the single-process pipeline for every fleet shape, warm or cold, and
// must stay identical when a worker dies mid-run (re-scatter absorbs
// the loss). With every worker dead the run must degrade — never fail —
// and degrade identically on every attempt.
package fuzzgen

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"deviant/internal/core"
	"deviant/internal/dist"
	"deviant/internal/snapshot"
)

// fleetWorker is an in-process dist.ShardCaller: the real worker code
// path (RunShard over its own snapshot store) minus the HTTP hop, which
// cmd/deviantd's fleet smoke test covers.
type fleetWorker struct {
	store *snapshot.Store
	down  atomic.Bool
}

func (w *fleetWorker) Shard(ctx context.Context, req *dist.ShardRequest, requestID string) (*dist.ShardResponse, error) {
	if w.down.Load() {
		return nil, errors.New("fuzz worker down")
	}
	return dist.RunShard(req, w.store, 0)
}

// newFuzzFleet builds an n-worker coordinator over in-process workers.
func newFuzzFleet(n int) (*dist.Coordinator, []*fleetWorker) {
	ws := make([]*fleetWorker, n)
	workers := make([]dist.Worker, n)
	for i := range ws {
		ws[i] = &fleetWorker{store: snapshot.NewStore(0)}
		workers[i] = dist.Worker{Name: fmt.Sprintf("fz-w%d", i), Caller: ws[i]}
	}
	c, err := dist.NewCoordinator(workers)
	if err != nil {
		panic(err) // static shape, cannot fail
	}
	return c, ws
}

// guardedFleetRun mirrors guardedAnalyze for a coordinator run.
func guardedFleetRun(c *dist.Coordinator, sources map[string]string, opts core.Options, timeout time.Duration) runOut {
	done := make(chan runOut, 1)
	go func() {
		out := runOut{}
		defer func() {
			if r := recover(); r != nil {
				out.panicked = fmt.Sprintf("%v\n%s", r, debug.Stack())
			}
			done <- out
		}()
		out.res, out.err = c.Run(context.Background(), sources, opts, "fuzz")
	}()
	select {
	case out := <-done:
		return out
	case <-time.After(timeout):
		return runOut{hung: true}
	}
}

// checkFleet runs the fleet oracle against the single-process baseline
// canon and fingerprint set. Each returned Violation has Oracle "fleet",
// "fingerprint" (fleet-merged runs must stamp the same identities as a
// single process), or "robust" for a panic/hang inside a fleet run.
func checkFleet(sources map[string]string, baseCanon, baseFP string, timeout time.Duration, stats *SeedStats) []Violation {
	var vs []Violation
	run := func(c *dist.Coordinator, opts core.Options) runOut {
		stats.Analyses++
		out := guardedFleetRun(c, sources, opts, timeout)
		if out.panicked != "" {
			vs = append(vs, Violation{"robust", "fleet panic: " + firstLine(out.panicked)})
		}
		if out.hung {
			vs = append(vs, Violation{"robust", fmt.Sprintf("fleet run exceeded %v", timeout)})
		}
		return out
	}

	// Shapes 1, 2, 3: cold fleets, byte-identical to single-process —
	// including the fingerprint multiset, which the coordinator's merged
	// downstream must stamp exactly as a single process would.
	for _, n := range []int{1, 2, 3} {
		c, _ := newFuzzFleet(n)
		out := run(c, soakOptions(2, true, nil))
		if ok(out) && canonical(out) != baseCanon {
			vs = append(vs, Violation{"fleet",
				fmt.Sprintf("%d-worker fleet diverged from single-process: %s", n, diffDetail(baseCanon, canonical(out)))})
		}
		if ok(out) && out.res != nil && fpSet(out.res) != baseFP {
			vs = append(vs, Violation{"fingerprint",
				fmt.Sprintf("%d-worker fleet fingerprint set diverged: %s", n, diffDetail(baseFP, fpSet(out.res)))})
		}
	}

	// Warm rerun: the second run over the same fleet serves every unit
	// from the workers' snapshot stores (token retention) and must still
	// reproduce the baseline bytes.
	c3, ws := newFuzzFleet(3)
	cold := run(c3, soakOptions(2, true, nil))
	warm := run(c3, soakOptions(2, true, nil))
	if ok(cold) && ok(warm) {
		if canonical(warm) != baseCanon {
			vs = append(vs, Violation{"fleet", "warm fleet rerun diverged: " + diffDetail(baseCanon, canonical(warm))})
		}
		if warm.res != nil && fpSet(warm.res) != baseFP {
			vs = append(vs, Violation{"fingerprint", "warm fleet fingerprint set diverged: " + diffDetail(baseFP, fpSet(warm.res))})
		}
		if warm.res != nil && warm.res.Snapshot.UnitsParsed != 0 {
			vs = append(vs, Violation{"fleet",
				fmt.Sprintf("warm fleet reparsed %d units; token retention should serve all of them", warm.res.Snapshot.UnitsParsed)})
		}
	}

	// Kill one worker: its shard re-scatters to the survivors, so the
	// run is neither degraded nor different.
	ws[1].down.Store(true)
	lost := run(c3, soakOptions(2, true, nil))
	if ok(lost) {
		if canonical(lost) != baseCanon {
			vs = append(vs, Violation{"fleet", "1-dead-worker run diverged: " + diffDetail(baseCanon, canonical(lost))})
		}
		if lost.res != nil && lost.res.Degraded {
			vs = append(vs, Violation{"fleet", "1 dead worker of 3 degraded the run; re-scatter should absorb it"})
		}
	}

	// Kill the whole fleet: the run must degrade — quarantining every
	// unit with fixed causes, never failing — and degrade identically
	// on a second attempt.
	for _, w := range ws {
		w.down.Store(true)
	}
	dead1 := run(c3, soakOptions(2, true, nil))
	dead2 := run(c3, soakOptions(2, true, nil))
	if ok(dead1) && ok(dead2) {
		if dead1.err != nil {
			vs = append(vs, Violation{"fleet", "all-dead fleet failed instead of degrading: " + dead1.err.Error()})
		} else if dead1.res != nil && !dead1.res.Degraded {
			vs = append(vs, Violation{"fleet", "all-dead fleet run not marked degraded"})
		}
		if canonical(dead1) != canonical(dead2) {
			vs = append(vs, Violation{"fleet", "all-dead degradation is nondeterministic: " + diffDetail(canonical(dead1), canonical(dead2))})
		}
	}
	return vs
}
