// Package fuzzgen generates adversarial C translation units and drives
// the full analysis pipeline against differential oracles. Where
// internal/corpus emits clean kernel-flavoured trees with line-exact
// ground truth for the experiment tables, fuzzgen's goal is the opposite:
// programs chosen to stress the frontend and the engine — deep macro
// nesting, pathological include graphs, giant switch/goto CFGs, truncated
// and token-unbalanced sources — paired with machine-checked equivalence
// oracles (oracles.go) that pin the analyzer's own invariants:
// determinism across worker counts, memoization soundness, snapshot
// warm/cold equivalence, metamorphic invariance under alpha-renaming and
// function reordering, and no-crash/no-hang on arbitrary input.
//
// Generation is deterministic in the seed: cmd/deviantfuzz prints the
// seed of every violation, and `deviantfuzz -seed N -n 1` replays it
// exactly.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Program is one generated compilation job: a set of headers plus
// translation units whose function chunks are kept separate so the
// metamorphic transforms (metamorph.go) can reorder them without
// re-parsing.
type Program struct {
	Seed int64
	// Headers maps header path -> content ("include/..." paths).
	Headers map[string]string
	// Units are the ".c" translation units, in generation order.
	Units []Unit
	// Renames lists every generated identifier that is safe to
	// alpha-rename: the names are of the fixed form "idNNNN", chosen to
	// avoid every latent-convention substring (lock, free, alloc, ...)
	// so a consistent rename cannot change checker behavior.
	Renames []string
}

// Unit is one translation unit: prelude lines (includes, macro
// definitions, file-scope globals) followed by independent function
// definitions. Generated functions never call each other, only the fixed
// external routines declared in the base header, so any permutation of
// Funcs is behavior-equivalent.
type Unit struct {
	Name    string
	Prelude []string
	Funcs   []string
}

// Render builds the unit's source text.
func (u *Unit) Render() string {
	var sb strings.Builder
	for _, l := range u.Prelude {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for _, fn := range u.Funcs {
		sb.WriteByte('\n')
		sb.WriteString(fn)
	}
	return sb.String()
}

// Sources renders the program in its natural order as an Analyze input
// map: headers plus units.
func (p *Program) Sources() map[string]string {
	out := make(map[string]string, len(p.Headers)+len(p.Units))
	for name, src := range p.Headers {
		out[name] = src
	}
	for i := range p.Units {
		out[p.Units[i].Name] = p.Units[i].Render()
	}
	return out
}

// baseHeader declares the fixed systems vocabulary every generated unit
// builds on. The names are the idioms the checkers key on (spin locks,
// allocators, user copies, IS_ERR, cli/sti, panic) — none are ever
// renamed.
const baseHeader = `#ifndef _FZ_H
#define _FZ_H
#define NULL 0
struct fzlock { int raw; };
struct fzbuf { int len; char *data; struct fzbuf *next; };
struct fznode { int num; int mode; void *priv; struct fzbuf *q; };
void *kmalloc(int size);
void kfree(void *p);
void printk(const char *fmt, ...);
void panic(const char *fmt, ...);
int copy_from_user(void *to, const void *from, int n);
int copy_to_user(void *to, const void *from, int n);
void spin_lock(struct fzlock *l);
void spin_unlock(struct fzlock *l);
void cli(void);
void sti(void);
int IS_ERR(void *p);
int capable(int cap);
struct fznode *fz_find(int num);
void touch_hw_port(int port);
void set_port_state(int v);
void request_region(int port);
void release_region(int port);
#define FZ_WARN_NULL(p) if ((p) == NULL) printk("null!\n")
#endif
`

// gen carries generator state for one program.
type gen struct {
	rng *rand.Rand
	p   *Program
	n   int // identifier counter
}

// Generate builds a deterministic adversarial program for seed.
func Generate(seed int64) *Program {
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		p: &Program{
			Seed:    seed,
			Headers: map[string]string{"include/fz.h": baseHeader},
		},
	}
	g.emitHeaderChain()
	units := 1 + g.rng.Intn(3)
	for i := 0; i < units; i++ {
		g.emitUnit(i)
	}
	sort.Strings(g.p.Renames)
	return g.p
}

// fresh mints a rename-safe identifier. The fixed "idNNNN" shape matters
// twice: it contains no latent-convention substring, and the metamorphic
// rename maps it to the same-length "rnNNNN", so line AND column numbers
// of every report survive the transform.
func (g *gen) fresh() string {
	g.n++
	name := fmt.Sprintf("id%04d", g.n)
	g.p.Renames = append(g.p.Renames, name)
	return name
}

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// pick returns a random int in [lo, hi].
func (g *gen) pick(lo, hi int) int { return lo + g.rng.Intn(hi-lo+1) }

// emitHeaderChain generates a pathological include graph: a linear chain
// of guarded headers fzh0 -> fzh1 -> ... -> fzhD, plus (sometimes) a
// diamond where two chain heads converge on a shared tail. Each header
// contributes object-like macros that reference the next header's macros,
// so expansion depth compounds with include depth.
func (g *gen) emitHeaderChain() {
	depth := g.pick(0, 10)
	for i := depth; i >= 0; i-- {
		var sb strings.Builder
		fmt.Fprintf(&sb, "#ifndef _FZH%d_H\n#define _FZH%d_H\n", i, i)
		if i < depth {
			fmt.Fprintf(&sb, "#include \"fzh%d.h\"\n", i+1)
			fmt.Fprintf(&sb, "#define FZD%d (FZD%d + %d)\n", i, i+1, g.pick(1, 9))
		} else {
			fmt.Fprintf(&sb, "#define FZD%d %d\n", i, g.pick(1, 9))
		}
		if g.chance(0.3) {
			fmt.Fprintf(&sb, "#if FZD%d > %d\n#define FZSEL%d 1\n#else\n#define FZSEL%d 0\n#endif\n", i, g.pick(1, 20), i, i)
		}
		sb.WriteString("#endif\n")
		g.p.Headers[fmt.Sprintf("include/fzh%d.h", i)] = sb.String()
	}
	if depth >= 2 && g.chance(0.4) {
		// Diamond: a second entry header that re-includes deep into the
		// chain; include guards must collapse it.
		g.p.Headers["include/fzdia.h"] = fmt.Sprintf(
			"#ifndef _FZDIA_H\n#define _FZDIA_H\n#include \"fzh0.h\"\n#include \"fzh%d.h\"\n#define FZDIA (FZD0 + FZD%d)\n#endif\n",
			depth/2, depth/2)
	}
}

// emitUnit generates one translation unit: includes, a nested
// function-like macro tower, file-scope globals, and a run of function
// definitions drawn from the adversarial template set.
func (g *gen) emitUnit(idx int) {
	u := Unit{Name: fmt.Sprintf("fz%d.c", idx)}
	u.Prelude = append(u.Prelude, `#include "fz.h"`)
	u.Prelude = append(u.Prelude, `#include "fzh0.h"`)
	if _, ok := g.p.Headers["include/fzdia.h"]; ok && g.chance(0.5) {
		u.Prelude = append(u.Prelude, `#include "fzdia.h"`)
	}
	if g.chance(0.15) {
		// A dangling include: the frontend must diagnose and carry on.
		u.Prelude = append(u.Prelude, fmt.Sprintf(`#include "fzmissing%d.h"`, idx))
	}

	// Macro tower: FZM0..FZMk, each expanding through the previous one,
	// with a stringize/paste layer on top. Depth up to 8 — expansion is
	// exponential in the nesting, the paper's §6 stress case.
	mdepth := g.pick(2, 8)
	u.Prelude = append(u.Prelude, "#define FZM0(x) ((x) + 1)")
	for i := 1; i <= mdepth; i++ {
		u.Prelude = append(u.Prelude,
			fmt.Sprintf("#define FZM%d(x) (FZM%d(x) + FZM%d((x) - %d))", i, i-1, i-1, g.pick(1, 3)))
	}
	u.Prelude = append(u.Prelude, "#define FZSTR(x) #x")
	u.Prelude = append(u.Prelude, "#define FZCAT(a, b) a##b")

	// File-scope state the lock/pairing checkers can bind to.
	lock := g.fresh()
	count := g.fresh()
	queue := g.fresh()
	u.Prelude = append(u.Prelude,
		fmt.Sprintf("static struct fzlock %s;", lock),
		fmt.Sprintf("static int %s;", count),
		fmt.Sprintf("static struct fzbuf *%s;", queue))

	st := &unitState{lock: lock, count: count, queue: queue, macroDepth: mdepth}
	tpls := []func(*unitState) string{
		g.fnGiantSwitch,
		g.fnGotoWeb,
		g.fnNullIdiom,
		g.fnAllocIdiom,
		g.fnLockIdiom,
		g.fnUserPtrIdiom,
		g.fnIsErrIdiom,
		g.fnIntrIdiom,
		g.fnMacroExpr,
		g.fnNestedControl,
		g.fnPanicGuard,
		g.fnFreeIdiom,
	}
	nf := g.pick(3, 9)
	for i := 0; i < nf; i++ {
		tpl := tpls[g.rng.Intn(len(tpls))]
		u.Funcs = append(u.Funcs, tpl(st))
	}
	if g.chance(0.2) {
		u.Funcs = append(u.Funcs, g.fnTrapBait())
	}
	g.p.Units = append(g.p.Units, u)
}

// fnTrapBait emits an inert, healthy function whose name carries one of
// the failpoint prefixes the quarantine oracle arms ("fztrapf" =
// frontend, "fztrapc" = cfg, "fztrapk" = checker). Disarmed — every run
// outside that oracle — it is ordinary code; armed, it marks exactly
// this function (frontend: its whole unit) for quarantine,
// deterministically in the seed. The name never enters Renames: the
// alpha-rename transform must not detach it from the armed substring.
func (g *gen) fnTrapBait() string {
	prefix := [...]string{"fztrapf", "fztrapc", "fztrapk"}[g.rng.Intn(3)]
	g.n++
	name := fmt.Sprintf("%s%04d", prefix, g.n)
	arg := g.fresh()
	var f fb
	f.w("static int %s(int %s) {", name, arg)
	f.w("\tif (%s > 0)", arg)
	f.w("\t\treturn %s + 1;", arg)
	f.w("\treturn 0;")
	f.w("}")
	return f.String()
}

// unitState carries the unit's shared globals into the templates.
type unitState struct {
	lock, count, queue string
	macroDepth         int
}

// fb builds one function's text line by line.
type fb struct {
	sb strings.Builder
}

func (f *fb) w(format string, args ...any) {
	fmt.Fprintf(&f.sb, format, args...)
	f.sb.WriteByte('\n')
}

func (f *fb) String() string { return f.sb.String() }

// fnGiantSwitch emits a switch with up to dozens of cases, mixed
// fallthroughs, and case bodies that jump to shared labels — a wide, flat
// CFG with join points the memoizer must collapse.
func (g *gen) fnGiantSwitch(st *unitState) string {
	name := g.fresh()
	arg := g.fresh()
	buf := g.fresh()
	acc := g.fresh()
	cases := g.pick(8, 48)
	var f fb
	f.w("static int %s(int %s, struct fzbuf *%s) {", name, arg, buf)
	f.w("\tint %s = 0;", acc)
	f.w("\tif (%s == NULL)", buf)
	f.w("\t\treturn -1;")
	f.w("\tswitch (%s & %d) {", arg, cases-1)
	for c := 0; c < cases; c++ {
		f.w("\tcase %d:", c)
		switch g.rng.Intn(4) {
		case 0:
			f.w("\t\t%s += %s->len + %d;", acc, buf, c)
			f.w("\t\tbreak;")
		case 1:
			f.w("\t\t%s -= %d;", acc, c)
			// fall through into the next case (or the closing brace).
		case 2:
			f.w("\t\tgoto out_%s;", name)
		default:
			f.w("\t\t%s = %s * 2 + %d;", acc, acc, c)
			f.w("\t\tbreak;")
		}
	}
	f.w("\tdefault:")
	f.w("\t\t%s = -%s;", acc, acc)
	f.w("\t}")
	f.w("\t%s += %s->len;", acc, buf)
	f.w("out_%s:", name)
	f.w("\treturn %s;", acc)
	f.w("}")
	return f.String()
}

// fnGotoWeb emits a ladder of labels connected by conditional forward
// gotos (and, rarely, one backward goto that the engine's loop handling
// must bound).
func (g *gen) fnGotoWeb(st *unitState) string {
	name := g.fresh()
	v := g.fresh()
	rungs := g.pick(3, 8)
	back := g.chance(0.15)
	var f fb
	f.w("static int %s(int %s) {", name, v)
	for r := 0; r < rungs; r++ {
		f.w("l%d_%s:", r, name)
		f.w("\t%s = %s + %d;", v, v, r+1)
		if r+1 < rungs {
			f.w("\tif (%s > %d)", v, g.pick(5, 60))
			f.w("\t\tgoto l%d_%s;", g.pick(r+1, rungs-1), name)
		}
	}
	if back {
		f.w("\tif (%s < %d)", v, g.pick(1, 4))
		f.w("\t\tgoto l0_%s;", name)
	}
	f.w("\treturn %s;", v)
	f.w("}")
	return f.String()
}

// fnNullIdiom emits the §3.1 null idioms: check-then-use (buggy variant
// dereferences on the null path) or use-then-check.
func (g *gen) fnNullIdiom(st *unitState) string {
	name := g.fresh()
	ptr := g.fresh()
	n := g.fresh()
	var f fb
	f.w("static int %s(struct fzbuf *%s, int %s) {", name, ptr, n)
	if g.chance(0.3) {
		f.w("\tif (%s == NULL) {", ptr)
		f.w("\t\tprintk(\"bad %%d %%d\\n\", %s->len, %s);", ptr, n)
		f.w("\t\treturn -1;")
		f.w("\t}")
	} else if g.chance(0.3) {
		f.w("\t%s = %s + %s->len;", n, n, ptr)
		f.w("\tif (!%s)", ptr)
		f.w("\t\treturn 0;")
	} else {
		f.w("\tif (%s == NULL)", ptr)
		f.w("\t\treturn -1;")
	}
	f.w("\treturn %s->len + %s;", ptr, n)
	f.w("}")
	return f.String()
}

// fnAllocIdiom emits kmalloc with or without the failure check.
func (g *gen) fnAllocIdiom(st *unitState) string {
	name := g.fresh()
	sz := g.fresh()
	buf := g.fresh()
	var f fb
	f.w("static int %s(int %s) {", name, sz)
	f.w("\tstruct fzbuf *%s = kmalloc(%d + %s);", buf, g.pick(8, 128), sz)
	if g.chance(0.7) {
		f.w("\tif (!%s)", buf)
		f.w("\t\treturn -1;")
	}
	f.w("\t%s->len = %s;", buf, sz)
	f.w("\t%s->next = NULL;", buf)
	f.w("\treturn 0;")
	f.w("}")
	return f.String()
}

// fnLockIdiom emits a critical section over the unit's shared counter,
// with random early returns that may or may not release the lock, and a
// possible post-section unprotected access.
func (g *gen) fnLockIdiom(st *unitState) string {
	name := g.fresh()
	d := g.fresh()
	var f fb
	f.w("static int %s(int %s) {", name, d)
	f.w("\tspin_lock(&%s);", st.lock)
	f.w("\t%s = %s + %s;", st.count, st.count, d)
	if g.chance(0.25) {
		f.w("\tif (%s < 0)", st.count)
		f.w("\t\treturn -1;")
		f.w("\tspin_unlock(&%s);", st.lock)
	} else {
		f.w("\tif (%s < 0) {", st.count)
		f.w("\t\tspin_unlock(&%s);", st.lock)
		f.w("\t\treturn -1;")
		f.w("\t}")
		f.w("\tspin_unlock(&%s);", st.lock)
	}
	if g.chance(0.25) {
		f.w("\t%s = %s - 1;", st.count, st.count)
	}
	f.w("\treturn %s;", d)
	f.w("}")
	return f.String()
}

// fnUserPtrIdiom emits an ioctl-shaped handler: copy_from_user, or the §7
// direct dereference of the user pointer.
func (g *gen) fnUserPtrIdiom(st *unitState) string {
	name := g.fresh()
	arg := g.fresh()
	cmd := g.fresh()
	var f fb
	f.w("static int %s(unsigned int %s, char *%s) {", name, cmd, arg)
	f.w("\tchar kb[%d];", g.pick(8, 32))
	if g.chance(0.3) {
		f.w("\tkb[0] = %s[0];", arg)
	} else {
		f.w("\tif (copy_from_user(kb, %s, %d))", arg, g.pick(8, 16))
		f.w("\t\treturn -1;")
	}
	f.w("\treturn kb[0] + %s;", cmd)
	f.w("}")
	return f.String()
}

// fnIsErrIdiom emits the encoded-error-pointer idiom with either the
// correct IS_ERR test or the wrong NULL test.
func (g *gen) fnIsErrIdiom(st *unitState) string {
	name := g.fresh()
	num := g.fresh()
	nd := g.fresh()
	var f fb
	f.w("static int %s(int %s) {", name, num)
	f.w("\tstruct fznode *%s = fz_find(%s);", nd, num)
	if g.chance(0.3) {
		f.w("\tif (%s == NULL)", nd)
	} else {
		f.w("\tif (IS_ERR(%s))", nd)
	}
	f.w("\t\treturn -1;")
	f.w("\treturn %s->num;", nd)
	f.w("}")
	return f.String()
}

// fnIntrIdiom emits cli/sti-bracketed hardware pokes, sometimes with the
// poke outside the protected region.
func (g *gen) fnIntrIdiom(st *unitState) string {
	name := g.fresh()
	port := g.pick(0, 7)
	var f fb
	f.w("static void %s(void) {", name)
	if g.chance(0.3) {
		f.w("\ttouch_hw_port(%d);", port)
		f.w("\tcli();")
		f.w("\tsti();")
	} else {
		f.w("\tcli();")
		f.w("\ttouch_hw_port(%d);", port)
		f.w("\tsti();")
	}
	f.w("}")
	return f.String()
}

// fnMacroExpr emits expressions routed through the unit's macro tower at
// its full nesting depth, plus stringize and paste uses.
func (g *gen) fnMacroExpr(st *unitState) string {
	name := g.fresh()
	a := g.fresh()
	b := g.fresh()
	// FZCAT(b, x) pastes a new identifier b+"x"; register it as
	// renameable so a consistent alpha-rename maps the paste operands and
	// the direct uses of the pasted name together.
	g.p.Renames = append(g.p.Renames, b+"x")
	var f fb
	f.w("static int %s(int %s) {", name, a)
	f.w("\tint %s = FZM%d(%s);", b, st.macroDepth, a)
	f.w("\tint FZCAT(%s, x) = FZM%d(%s + FZD0);", b, st.macroDepth/2, b)
	f.w("\tprintk(FZSTR(%s));", b)
	f.w("\tif (FZCAT(%s, x) > %d)", b, g.pick(10, 500))
	f.w("\t\treturn FZM1(%s);", b)
	f.w("\treturn %s + %sx;", b, b)
	f.w("}")
	return f.String()
}

// fnNestedControl emits a random statement tree: nested if/while/for/
// switch up to a bounded depth, with dereferences and external calls in
// the leaves. Sequential branching is capped so path counts stay inside
// the engine's non-memoized visit budget (memo-oracle runs must not
// truncate).
func (g *gen) fnNestedControl(st *unitState) string {
	name := g.fresh()
	p := g.fresh()
	v := g.fresh()
	var f fb
	f.w("static int %s(struct fznode *%s, int %s) {", name, p, v)
	f.w("\tif (!%s)", p)
	f.w("\t\treturn -1;")
	branches := 0
	g.stmtTree(&f, st, p, v, 1, g.pick(2, 4), &branches)
	f.w("\treturn %s + %s->num;", v, p)
	f.w("}")
	return f.String()
}

const maxSequentialBranches = 9

// stmtTree recursively emits statements at the given indent depth.
func (g *gen) stmtTree(f *fb, st *unitState, p, v string, indent, depth int, branches *int) {
	tabs := strings.Repeat("\t", indent)
	n := g.pick(1, 3)
	for i := 0; i < n; i++ {
		if *branches >= maxSequentialBranches || depth <= 0 {
			f.w("%s%s = %s + %d;", tabs, v, v, g.pick(1, 99))
			continue
		}
		switch g.rng.Intn(5) {
		case 0:
			*branches++
			f.w("%sif (%s > %d) {", tabs, v, g.pick(0, 50))
			g.stmtTree(f, st, p, v, indent+1, depth-1, branches)
			if g.chance(0.5) {
				f.w("%s} else {", tabs)
				g.stmtTree(f, st, p, v, indent+1, depth-1, branches)
			}
			f.w("%s}", tabs)
		case 1:
			*branches++
			f.w("%swhile (%s > %d) {", tabs, v, g.pick(1, 9))
			f.w("%s\t%s = %s - %d;", tabs, v, v, g.pick(1, 3))
			f.w("%s}", tabs)
		case 2:
			*branches++
			f.w("%sfor (%s = 0; %s < %d; %s++) {", tabs, v, v, g.pick(2, 12), v)
			g.stmtTree(f, st, p, v, indent+1, depth-1, branches)
			f.w("%s}", tabs)
		case 3:
			*branches++
			k := g.pick(2, 5)
			f.w("%sswitch (%s %% %d) {", tabs, v, k)
			for c := 0; c < k; c++ {
				f.w("%scase %d:", tabs, c)
				f.w("%s\t%s = %s + %d;", tabs, v, v, c)
				f.w("%s\tbreak;", tabs)
			}
			f.w("%s}", tabs)
		default:
			f.w("%s%s = %s + %s->num;", tabs, v, v, p)
		}
	}
}

// fnPanicGuard emits the §6 crash-path idiom: the null path panics, so
// the following dereference is safe; crash-path pruning must keep this
// from becoming a false positive (and oracle comparisons must agree on
// it for every configuration that shares the pruning setting).
func (g *gen) fnPanicGuard(st *unitState) string {
	name := g.fresh()
	b := g.fresh()
	var f fb
	f.w("static int %s(struct fzbuf *%s) {", name, b)
	if g.chance(0.5) {
		f.w("\tif (!%s)", b)
		f.w("\t\tpanic(\"no buffer\");")
	} else {
		f.w("\tFZ_WARN_NULL(%s);", b)
	}
	f.w("\t%s->len = 0;", b)
	f.w("\treturn 0;")
	f.w("}")
	return f.String()
}

// fnFreeIdiom emits teardown with kfree, sometimes touching the buffer
// after the free.
func (g *gen) fnFreeIdiom(st *unitState) string {
	name := g.fresh()
	b := g.fresh()
	var f fb
	f.w("static void %s(struct fzbuf *%s) {", name, b)
	f.w("\tif (!%s)", b)
	f.w("\t\treturn;")
	if g.chance(0.3) {
		f.w("\tkfree(%s);", b)
		f.w("\t%s->len = 0;", b)
	} else {
		f.w("\t%s->len = 0;", b)
		f.w("\tkfree(%s);", b)
	}
	f.w("}")
	return f.String()
}
