package fuzzgen

import (
	"testing"
	"time"
)

// TestAlphaRenameInterningRegression pins the metamorphic alpha-rename
// oracle on fixed seeds: consistently renaming every identifier must
// leave report positions and the z ranking untouched. This is the
// regression test for identifier interning — the interner assigns Syms
// in first-intern order, so a rename permutes every Sym value; if any
// Sym ever leaked into ranking, tie-breaking, or report text as a
// number, this test (and the soak's oracle 4) would catch it.
func TestAlphaRenameInterningRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline metamorphic runs skipped in -short mode")
	}
	for _, seed := range []int64{1, 7, 42} {
		p := Generate(seed)
		base := guardedAnalyze(p.Sources(), soakOptions(1, true, nil), 30*time.Second)
		if !ok(base) || base.res == nil {
			t.Fatalf("seed %d: baseline run failed: panic=%q hung=%v", seed, base.panicked, base.hung)
		}
		ren := guardedAnalyze(p.SourcesRenamed(), soakOptions(1, true, nil), 30*time.Second)
		if !ok(ren) || ren.res == nil {
			t.Fatalf("seed %d: renamed run failed: panic=%q hung=%v", seed, ren.panicked, ren.hung)
		}
		if a, b := posShape(base.res), posShape(ren.res); a != b {
			t.Errorf("seed %d: alpha-rename changed report positions: %s", seed, diffDetail(a, b))
		}
		if !sameZSeq(base.res, ren.res) {
			t.Errorf("seed %d: alpha-rename changed the z ranking", seed)
		}
	}
}
