// The nine differential oracles. Each one runs the full pipeline over
// the same sources under two configurations whose outputs are provably
// related, and reports any divergence as a Violation:
//
//	workers     Workers=1 vs Workers=N must be byte-identical (the
//	            parallel merge is deterministic by construction).
//	memo        Memoization on/off must find the same error set: the
//	            memo contract says equal-key states behave identically
//	            for the rest of the path, so pruning may change visit
//	            counts (and therefore z evidence) but never which
//	            (checker, position, rule) errors exist. Vacuous when
//	            either run hits the engine's visit budget — truncation
//	            legitimately cuts exploration short.
//	snapshot    A warm snapshot-store run must be byte-identical to a
//	            cold one and to a store-less baseline, and must actually
//	            reuse every unit (same sources, same fingerprint).
//	metamorph   Alpha-renaming must preserve every report position and
//	            the z ranking; function reordering must preserve the
//	            position-free report shape and the z ranking. Applied
//	            only to unmutated programs (mutation breaks the
//	            transforms' equivalence argument).
//	quarantine  With the generator's fztrap* failpoints armed, fault
//	            containment must quarantine the same work — rendered
//	            byte-identically — across worker counts and with
//	            memoization on or off, and disarming must restore the
//	            baseline bytes exactly.
//	fleet       A coordinator/worker fleet (1, 2 or 3 in-process
//	            workers) must produce the single-process bytes exactly,
//	            cold and warm; killing 1 of 3 workers must change
//	            nothing (re-scatter); killing all of them must degrade
//	            the run deterministically, never fail it. See fleet.go.
//	fingerprint Every report carries a stable identity, and the
//	            fingerprint multiset is byte-identical across worker
//	            counts, memo on/off (unless truncated), and fleet
//	            shapes — and, on unmutated programs, invariant under
//	            alpha-renaming and function reordering. This is the
//	            identity contract baselines and -diff are built on:
//	            positions and rule spellings may shift, identity
//	            may not.
//	netchaos    Under injected network faults on the shard transport
//	            (drop, delay, corrupt-bytes, truncate, duplicate), a
//	            transient fault must be absorbed byte-identically, a
//	            persistent one must degrade the run deterministically,
//	            and live membership reshapes (SetWorkers) must bump the
//	            epoch without perturbing output. See netchaos.go.
//	robust      No analysis run may panic or outrun its deadline. This
//	            oracle wraps every run the others perform.
package fuzzgen

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"deviant/internal/core"
	"deviant/internal/fault"
	"deviant/internal/snapshot"
)

// Violation is one oracle failure.
type Violation struct {
	Oracle string // workers | memo | snapshot | metamorph | quarantine | fleet | fingerprint | netchaos | robust
	Detail string
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// SeedStats summarizes one seed's run for the soak report.
type SeedStats struct {
	Mutated     bool
	Analyses    int
	MemoVacuous bool // truncation made the memo oracle a no-op
	Reports     int  // baseline ranked report count
}

// CheckSeed generates the program for seed, optionally mutates it, and
// runs every applicable oracle. It returns the sources under test (for
// failure archiving), the violations, and run statistics.
func CheckSeed(seed int64, timeout time.Duration) (map[string]string, []Violation, SeedStats) {
	p := Generate(seed)
	// A derived rng decides mutation and the reorder permutation, so the
	// whole trial replays from the one seed.
	aux := newAuxRNG(seed)
	var stats SeedStats
	stats.Mutated = aux.Float64() < 0.35
	sources := p.Sources()
	if stats.Mutated {
		sources = Mutate(sources, aux.Rand)
	}

	var vs []Violation
	run := func(opts core.Options) runOut {
		stats.Analyses++
		out := guardedAnalyze(sources, opts, timeout)
		if out.panicked != "" {
			vs = append(vs, Violation{"robust", "panic: " + firstLine(out.panicked)})
		}
		if out.hung {
			vs = append(vs, Violation{"robust", fmt.Sprintf("analysis exceeded %v", timeout)})
		}
		return out
	}

	base := run(soakOptions(1, true, nil))
	if base.panicked != "" || base.hung {
		return sources, vs, stats
	}
	if base.res != nil {
		stats.Reports = base.res.Reports.Len()
	}
	baseCanon := canonical(base)

	// Oracle 8 comparand: the baseline fingerprint multiset. Computed
	// up front so every other configuration's run can be held to it.
	var baseFP string
	if base.res != nil {
		baseFP = fpSet(base.res)
		if strings.HasPrefix(baseFP, "missing=") && !strings.HasPrefix(baseFP, "missing=0") {
			vs = append(vs, Violation{"fingerprint", "baseline run produced unstamped reports: " + firstLine(baseFP)})
		}
	}

	// Oracle 1: worker-count determinism, byte for byte.
	par := run(soakOptions(4, true, nil))
	if ok(par) && canonical(par) != baseCanon {
		vs = append(vs, Violation{"workers", diffDetail(baseCanon, canonical(par))})
	}
	if ok(par) && par.res != nil && fpSet(par.res) != baseFP {
		vs = append(vs, Violation{"fingerprint", "workers 1 vs 4 fingerprint sets differ: " + diffDetail(baseFP, fpSet(par.res))})
	}

	// Oracle 2: memoization soundness on the error set.
	memOff := run(soakOptions(1, false, nil))
	if ok(memOff) && ok(base) {
		if truncated(base) || truncated(memOff) {
			stats.MemoVacuous = true
		} else {
			if a, b := reportKeySet(base), reportKeySet(memOff); a != b {
				vs = append(vs, Violation{"memo", diffDetail(a, b)})
			}
			if memOff.res != nil && fpSet(memOff.res) != baseFP {
				vs = append(vs, Violation{"fingerprint", "memo on/off fingerprint sets differ: " + diffDetail(baseFP, fpSet(memOff.res))})
			}
		}
	}

	// Oracle 3: snapshot warm/cold equivalence. The cold run populates a
	// fresh store; the warm run must reuse every unit and reproduce the
	// baseline byte for byte.
	store := snapshot.NewStore(0)
	cold := run(soakOptions(1, true, store))
	if ok(cold) && canonical(cold) != baseCanon {
		vs = append(vs, Violation{"snapshot", "cold store run diverged from store-less baseline: " + diffDetail(baseCanon, canonical(cold))})
	}
	warm := run(soakOptions(1, true, store))
	if ok(warm) {
		if canonical(warm) != baseCanon {
			vs = append(vs, Violation{"snapshot", "warm run diverged from baseline: " + diffDetail(baseCanon, canonical(warm))})
		}
		if warm.res != nil && warm.res.Snapshot.UnitsReused != len(p.Units) {
			vs = append(vs, Violation{"snapshot",
				fmt.Sprintf("warm run reused %d/%d units", warm.res.Snapshot.UnitsReused, len(p.Units))})
		}
	}

	// Oracle 4: metamorphic invariance, unmutated programs only.
	if !stats.Mutated && base.res != nil {
		renamed := sources
		sources = p.SourcesRenamed()
		ren := run(soakOptions(1, true, nil))
		sources = renamed
		if ok(ren) && ren.res != nil {
			if a, b := posShape(base.res), posShape(ren.res); a != b {
				vs = append(vs, Violation{"metamorph", "alpha-rename changed report positions: " + diffDetail(a, b)})
			}
			if !sameZSeq(base.res, ren.res) {
				vs = append(vs, Violation{"metamorph", "alpha-rename changed the z ranking"})
			}
			if fpSet(ren.res) != baseFP {
				vs = append(vs, Violation{"fingerprint", "alpha-rename changed fingerprints: " + diffDetail(baseFP, fpSet(ren.res))})
			}
		}

		reordered := sources
		sources = p.SourcesReordered(aux.Rand)
		reo := run(soakOptions(1, true, nil))
		sources = reordered
		if ok(reo) && reo.res != nil {
			if a, b := shapeNoPos(base.res), shapeNoPos(reo.res); a != b {
				vs = append(vs, Violation{"metamorph", "function reorder changed report shape: " + diffDetail(a, b)})
			}
			if !sameZSeq(base.res, reo.res) {
				vs = append(vs, Violation{"metamorph", "function reorder changed the z ranking"})
			}
			if fpSet(reo.res) != baseFP {
				vs = append(vs, Violation{"fingerprint", "function reorder changed fingerprints: " + diffDetail(baseFP, fpSet(reo.res))})
			}
		}
	}

	// Oracle 5: quarantine determinism. Arm every fztrap* failpoint the
	// generator may have planted (a program without bait still must agree
	// on "nothing quarantined"), then require the armed runs to agree —
	// full canonical bytes across worker counts, quarantine shape across
	// memo on/off (memoization legitimately changes visit evidence, never
	// what is quarantined) — and the disarmed rerun to reproduce the
	// baseline exactly.
	fault.Arm("frontend", "fztrapf")
	fault.Arm("cfg", "fztrapc")
	fault.Arm("checker", "fztrapk")
	q1 := run(soakOptions(1, true, nil))
	q8 := run(soakOptions(8, true, nil))
	qm := run(soakOptions(4, false, nil))
	fault.Reset()
	if ok(q1) && ok(q8) && canonical(q8) != canonical(q1) {
		vs = append(vs, Violation{"quarantine",
			"worker counts diverge under armed traps: " + diffDetail(canonical(q1), canonical(q8))})
	}
	if ok(q1) && ok(qm) && q1.res != nil && qm.res != nil {
		if a, b := quarantineShape(q1.res), quarantineShape(qm.res); a != b {
			vs = append(vs, Violation{"quarantine", "memo on/off quarantine sets differ: " + diffDetail(a, b)})
		}
	}
	disarmed := run(soakOptions(1, true, nil))
	if ok(disarmed) && canonical(disarmed) != baseCanon {
		vs = append(vs, Violation{"quarantine",
			"disarmed rerun diverged from baseline: " + diffDetail(baseCanon, canonical(disarmed))})
	}

	// Oracle 6: fleet determinism — distributed runs against the
	// single-process baseline bytes, plus degradation determinism when
	// workers die. Skipped when the baseline itself errored: the fleet
	// has nothing canonical to reproduce.
	if base.err == nil {
		vs = append(vs, checkFleet(sources, baseCanon, baseFP, timeout, &stats)...)
		// Oracle 9: network chaos over the same baseline — transient
		// shard-transport faults absorbed byte-identically, persistent
		// ones degrading deterministically, membership reshapes inert.
		vs = append(vs, checkNetChaos(sources, baseCanon, timeout, &stats)...)
	}
	return sources, vs, stats
}

// fpSet renders the sorted fingerprint multiset of a run plus a count of
// reports that carry no fingerprint (which must be zero — every report
// is stamped). Two runs whose error sets agree must agree here byte for
// byte: this is the identity contract the eighth oracle enforces.
func fpSet(res *core.Result) string {
	ranked := res.Reports.Ranked()
	missing := 0
	fps := make([]string, 0, len(ranked))
	for i := range ranked {
		if ranked[i].Fingerprint == "" {
			missing++
			continue
		}
		fps = append(fps, ranked[i].Fingerprint)
	}
	sort.Strings(fps)
	return fmt.Sprintf("missing=%d\n", missing) + strings.Join(fps, "\n")
}

// quarantineShape renders what fault containment did, without visit
// evidence: the memo-invariance comparand.
func quarantineShape(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "degraded=%v panics=%d\n", res.Degraded, res.PanicsRecovered)
	for _, q := range res.Quarantined {
		fmt.Fprintf(&b, "%s\n", q)
	}
	return b.String()
}

// newAuxRNG returns the per-seed auxiliary rng, offset from the
// generator's stream so mutation choices don't correlate with program
// shape.
func newAuxRNG(seed int64) *auxRNG {
	return &auxRNG{rand.New(rand.NewSource(seed ^ 0x5eed5eed))}
}

type auxRNG struct{ *rand.Rand }

func soakOptions(workers int, memoize bool, store *snapshot.Store) core.Options {
	opts := core.DefaultOptions()
	opts.Workers = workers
	opts.Memoize = memoize
	opts.Snapshot = store
	return opts
}

type runOut struct {
	res      *core.Result
	err      error
	panicked string
	hung     bool
}

func ok(o runOut) bool { return o.panicked == "" && !o.hung }

func truncated(o runOut) bool {
	if o.res == nil {
		return false
	}
	for _, st := range o.res.EngineStats {
		if st.Truncated {
			return true
		}
	}
	return false
}

// guardedAnalyze runs one analysis with panic capture and a deadline. A
// run that outlives the deadline is reported as hung; its goroutine is
// abandoned (the engine's visit budget makes true non-termination a bug,
// which is exactly what this oracle exists to catch).
func guardedAnalyze(sources map[string]string, opts core.Options, timeout time.Duration) runOut {
	done := make(chan runOut, 1)
	go func() {
		out := runOut{}
		defer func() {
			if r := recover(); r != nil {
				out.panicked = fmt.Sprintf("%v\n%s", r, debug.Stack())
			}
			done <- out
		}()
		out.res, out.err = core.New(opts, nil).AnalyzeSources(sources)
	}()
	select {
	case out := <-done:
		return out
	case <-time.After(timeout):
		return runOut{hung: true}
	}
}

// canonical renders everything a run produced that must be deterministic:
// corpus accounting, frontend diagnostics, ranked reports, and every
// derived rule table. Two runs expected to be equivalent must render
// byte-identically.
func canonical(o runOut) string {
	var b strings.Builder
	if o.err != nil {
		fmt.Fprintf(&b, "err: %v\n", o.err)
		return b.String()
	}
	res := o.res
	fmt.Fprintf(&b, "funcs=%d lines=%d\n", res.FuncCount, res.LineCount)
	fmt.Fprintf(&b, "degraded=%v panics=%d\n", res.Degraded, res.PanicsRecovered)
	for _, q := range res.Quarantined {
		fmt.Fprintf(&b, "quarantine: %s\n", q)
	}
	for _, e := range res.ParseErrors {
		fmt.Fprintf(&b, "diag: %v\n", e)
	}
	for _, r := range res.Reports.Ranked() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "pairs: %+v\n", res.Pairs)
	fmt.Fprintf(&b, "canfail: %+v\n", res.CanFail)
	fmt.Fprintf(&b, "canfailnever: %+v\n", res.CanFailNever)
	fmt.Fprintf(&b, "iserr: %+v\n", res.IsErrFuncs)
	fmt.Fprintf(&b, "locks: %+v\n", res.LockBindings)
	fmt.Fprintf(&b, "intr: %+v\n", res.IntrFuncs)
	fmt.Fprintf(&b, "sec: %+v\n", res.SecChecks)
	fmt.Fprintf(&b, "rev: %+v\n", res.Reversals)
	return b.String()
}

// reportKeySet renders the sorted set of report identities plus their
// definiteness — the memo oracle's comparand.
func reportKeySet(o runOut) string {
	if o.res == nil {
		return fmt.Sprintf("err: %v", o.err)
	}
	ranked := o.res.Reports.Ranked()
	keys := make([]string, 0, len(ranked))
	for i := range ranked {
		r := &ranked[i]
		keys = append(keys, fmt.Sprintf("%s|%s|%s|definite=%v", r.Checker, r.Pos, r.Rule, !r.Statistical()))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// posShape renders the sorted multiset of report identities with full
// positions and evidence but no name-carrying strings — invariant under
// same-length alpha-renaming.
func posShape(res *core.Result) string {
	ranked := res.Reports.Ranked()
	lines := make([]string, 0, len(ranked)+1)
	lines = append(lines, fmt.Sprintf("funcs=%d lines=%d diags=%d reports=%d",
		res.FuncCount, res.LineCount, len(res.ParseErrors), len(ranked)))
	for i := range ranked {
		r := &ranked[i]
		lines = append(lines, fmt.Sprintf("%s|%s|sev=%d|span=%d|z=%x|%d/%d",
			r.Checker, r.Pos, r.Severity, r.Span,
			math.Float64bits(r.Z), r.Counter.Examples, r.Counter.Checks))
	}
	sort.Strings(lines[1:])
	return strings.Join(lines, "\n")
}

// shapeNoPos renders the sorted multiset of report identities with rules
// but no positions — invariant under reordering of independent functions.
func shapeNoPos(res *core.Result) string {
	ranked := res.Reports.Ranked()
	lines := make([]string, 0, len(ranked)+1)
	lines = append(lines, fmt.Sprintf("funcs=%d lines=%d diags=%d reports=%d",
		res.FuncCount, res.LineCount, len(res.ParseErrors), len(ranked)))
	for i := range ranked {
		r := &ranked[i]
		lines = append(lines, fmt.Sprintf("%s|%s|sev=%d|span=%d|z=%x|%d/%d",
			r.Checker, r.Rule, r.Severity, r.Span,
			math.Float64bits(r.Z), r.Counter.Examples, r.Counter.Checks))
	}
	sort.Strings(lines[1:])
	return strings.Join(lines, "\n")
}

// sameZSeq compares the ranked z sequences (statistical reports only,
// rank order): the metamorphic transforms must not perturb the ranking.
func sameZSeq(a, b *core.Result) bool {
	return zSeq(a) == zSeq(b)
}

func zSeq(res *core.Result) string {
	var sb strings.Builder
	for _, r := range res.Reports.Ranked() {
		if r.Statistical() {
			fmt.Fprintf(&sb, "%x,", math.Float64bits(r.Z))
		}
	}
	return sb.String()
}

// diffDetail renders the first differing line of two canonical strings,
// keeping violation messages bounded.
func diffDetail(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, clip(al[i]), clip(bl[i]))
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
