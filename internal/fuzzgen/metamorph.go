// Metamorphic transforms: semantics-preserving rewrites of a generated
// program whose analysis output must be preserved in a checkable way.
// Two are implemented, matching the paper's belief model:
//
//   - Alpha-renaming: consistently renaming every generated identifier
//     cannot change what the checkers believe, because beliefs attach to
//     code structure and convention substrings, never to the arbitrary
//     part of a name. Renames map "idNNNN" to "rnNNNN" — same length, so
//     every report position (file, line, column) must survive exactly.
//   - Function reordering: generated functions never call each other, so
//     any permutation within a unit is behavior-equivalent; the evidence
//     counters, derived rules and z scores must be unchanged (positions
//     shift with the line numbers, so the oracle compares position-free
//     shapes).
package fuzzgen

import "math/rand"

// RenameMap maps every renameable identifier to its same-length fresh
// name.
func RenameMap(p *Program) map[string]string {
	m := make(map[string]string, len(p.Renames))
	for _, name := range p.Renames {
		m[name] = "rn" + name[2:]
	}
	return m
}

// SourcesRenamed renders the program with every renameable identifier
// consistently alpha-renamed.
func (p *Program) SourcesRenamed() map[string]string {
	m := RenameMap(p)
	out := p.Sources()
	for name, src := range out {
		out[name] = applyRename(src, m)
	}
	return out
}

// SourcesReordered renders the program with the functions of every unit
// permuted by rng. Headers and preludes are untouched.
func (p *Program) SourcesReordered(rng *rand.Rand) map[string]string {
	out := make(map[string]string, len(p.Headers)+len(p.Units))
	for name, src := range p.Headers {
		out[name] = src
	}
	for i := range p.Units {
		u := p.Units[i] // copy; don't disturb the original order
		perm := rng.Perm(len(u.Funcs))
		funcs := make([]string, len(u.Funcs))
		for j, k := range perm {
			funcs[j] = u.Funcs[k]
		}
		u.Funcs = funcs
		out[u.Name] = u.Render()
	}
	return out
}

// applyRename rewrites whole identifier tokens of src according to m,
// leaving string literals, character constants and comments untouched. It
// is a byte-level scan rather than a ctoken pass so it also works on
// mutated sources with unbalanced tokens.
func applyRename(src string, m map[string]string) string {
	var out []byte
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '"' || c == '\'':
			// String/char literal: copy through the closing quote,
			// honoring backslash escapes. Unterminated literals (from
			// mutation) copy to EOF, which is fine — the scan just stops
			// renaming inside them.
			q := c
			out = append(out, c)
			i++
			for i < n {
				out = append(out, src[i])
				if src[i] == '\\' && i+1 < n {
					out = append(out, src[i+1])
					i += 2
					continue
				}
				if src[i] == q {
					i++
					break
				}
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				out = append(out, src[i])
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			out = append(out, '/', '*')
			i += 2
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					out = append(out, '*', '/')
					i += 2
					break
				}
				out = append(out, src[i])
				i++
			}
		case isWordStart(c):
			j := i
			for j < n && isWordCont(src[j]) {
				j++
			}
			word := src[i:j]
			if repl, ok := m[word]; ok {
				out = append(out, repl...)
			} else {
				out = append(out, word...)
			}
			i = j
		default:
			out = append(out, c)
			i++
		}
	}
	return string(out)
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordCont(c byte) bool { return isWordStart(c) || (c >= '0' && c <= '9') }
