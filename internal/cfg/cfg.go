// Package cfg builds per-function control-flow graphs from cast trees.
//
// Conditions are decomposed: short-circuit && and || become CFG structure,
// so a guard like "if (!tty || !info->xmit_buf)" yields one branch per
// operand. That is what lets belief propagation attribute null/not-null
// facts to the right path (paper §3.1).
//
// The builder also performs the paper's crash-path pruning (§6): calls to
// "no return" routines such as panic and BUG terminate the path, removing
// the dominant class of impossible-path false positives.
package cfg

import (
	"fmt"
	"slices"
	"strings"

	"deviant/internal/arena"
	"deviant/internal/cast"
	"deviant/internal/ctoken"
)

// Block is a basic block. Nodes holds the straight-line work: cast.Expr
// values evaluated for effect, *cast.VarDecl entries for local
// declarations, and *cast.ReturnStmt for returns.
//
// If Cond is non-nil the block ends in a branch on Cond and has exactly
// two successor edges (true and false). Otherwise all successor edges are
// unconditional.
type Block struct {
	ID    int
	Nodes []cast.Node
	Cond  cast.Expr
	Succs []Edge
	Preds []*Block

	// nodesBuf inline-backs Nodes for the common short block (builder
	// blocks only): appends spill to the heap past its capacity.
	nodesBuf [4]cast.Node
}

// Edge is one control-flow edge. For conditional blocks Branch gives the
// value of Cond along the edge.
type Edge struct {
	To     *Block
	Branch bool
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *cast.FuncDecl
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Options configures CFG construction.
type Options struct {
	// NoReturn reports whether a call to the named function never
	// returns (panic, BUG, ...). Paths are pruned after such calls.
	NoReturn func(name string) bool
}

type builder struct {
	g      *Graph
	opts   Options
	blocks arena.Arena[Block] // slab-backed; blocks live as long as the Graph
	labels map[string]*Block
	gotos  []pendingGoto
	// loop/switch context for break/continue
	breakTargets    []*Block
	continueTargets []*Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG for fn. It panics if fn has no body.
func Build(fn *cast.FuncDecl, opts Options) *Graph {
	if fn.Body == nil {
		panic("cfg: Build called on prototype " + fn.Name)
	}
	b := &builder{
		g:    &Graph{Fn: fn},
		opts: opts,
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	last := b.stmts(b.g.Entry, fn.Body.List)
	b.link(last, b.g.Exit)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.link(pg.from, target)
		} else {
			// Unknown label: treat as function exit.
			b.link(pg.from, b.g.Exit)
		}
	}
	b.prune()
	b.number()
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := b.blocks.New()
	blk.Nodes = blk.nodesBuf[:0:len(blk.nodesBuf)]
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// link adds an unconditional edge from from to to; from may be nil
// (unreachable predecessor), in which case nothing happens.
func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to})
	to.Preds = append(to.Preds, from)
}

func (b *builder) linkBranch(from, to *Block, branch bool) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, Edge{To: to, Branch: branch})
	to.Preds = append(to.Preds, from)
}

// stmts lowers a statement list starting in cur and returns the block at
// the fall-through end (nil if control cannot fall through).
func (b *builder) stmts(cur *Block, list []cast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s cast.Stmt) *Block {
	switch x := s.(type) {
	case *cast.CompoundStmt:
		return b.stmts(cur, x.List)

	case *cast.ExprStmt:
		if x.X == nil {
			return cur
		}
		// Lower statement-level ternaries into real branches so belief
		// propagation sees both arms under the right condition:
		// "x = c ? a : b;" becomes "if (c) x = a; else x = b;".
		if asg, ok := x.X.(*cast.AssignExpr); ok && asg.Op == ctoken.Assign {
			if ce, ok := asg.R.(*cast.CondExpr); ok {
				return b.lowerCond(cur, ce, func(arm cast.Expr) cast.Expr {
					return &cast.AssignExpr{Op: asg.Op, L: asg.L, R: arm}
				})
			}
		}
		return b.exprUnit(cur, x.X)

	case *cast.DeclStmt:
		if cur == nil {
			return nil
		}
		for _, d := range x.Decls {
			cur.Nodes = append(cur.Nodes, d)
		}
		return cur

	case *cast.IfStmt:
		if cur == nil {
			return nil
		}
		thenB := b.newBlock()
		elseB := b.newBlock()
		join := b.newBlock()
		b.cond(cur, x.Cond, thenB, elseB)
		tEnd := b.stmt(thenB, x.Then)
		b.link(tEnd, join)
		if x.Else != nil {
			eEnd := b.stmt(elseB, x.Else)
			b.link(eEnd, join)
		} else {
			b.link(elseB, join)
		}
		return join

	case *cast.WhileStmt:
		if cur == nil {
			return nil
		}
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.link(cur, head)
		b.cond(head, x.Cond, body, exit)
		b.pushLoop(exit, head)
		bEnd := b.stmt(body, x.Body)
		b.popLoop()
		b.link(bEnd, head)
		return exit

	case *cast.DoWhileStmt:
		if cur == nil {
			return nil
		}
		body := b.newBlock()
		check := b.newBlock()
		exit := b.newBlock()
		b.link(cur, body)
		b.pushLoop(exit, check)
		bEnd := b.stmt(body, x.Body)
		b.popLoop()
		b.link(bEnd, check)
		b.cond(check, x.Cond, body, exit)
		return exit

	case *cast.ForStmt:
		if cur == nil {
			return nil
		}
		if x.Init != nil {
			cur = b.stmt(cur, x.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.link(cur, head)
		if x.Cond != nil {
			b.cond(head, x.Cond, body, exit)
		} else {
			b.link(head, body)
		}
		b.pushLoop(exit, post)
		bEnd := b.stmt(body, x.Body)
		b.popLoop()
		b.link(bEnd, post)
		if x.Post != nil {
			post = b.exprUnit(post, x.Post)
		}
		b.link(post, head)
		return exit

	case *cast.SwitchStmt:
		return b.switchStmt(cur, x)

	case *cast.CaseStmt:
		// A case label outside a switch body scan (shouldn't happen);
		// treat as no-op.
		return cur

	case *cast.ReturnStmt:
		if cur == nil {
			return nil
		}
		// "return c ? a : b;" lowers to branched returns.
		if ce, ok := x.X.(*cast.CondExpr); ok {
			thenB := b.newBlock()
			elseB := b.newBlock()
			b.cond(cur, ce.Cond, thenB, elseB)
			b.stmt(thenB, &cast.ReturnStmt{ReturnPos: x.ReturnPos, X: ce.Then})
			b.stmt(elseB, &cast.ReturnStmt{ReturnPos: x.ReturnPos, X: ce.Else})
			return nil
		}
		if x.X != nil {
			cur = b.exprUnit(cur, x.X)
			if cur == nil {
				return nil
			}
		}
		cur.Nodes = append(cur.Nodes, x)
		b.link(cur, b.g.Exit)
		return nil

	case *cast.BreakStmt:
		if cur == nil {
			return nil
		}
		if n := len(b.breakTargets); n > 0 {
			b.link(cur, b.breakTargets[n-1])
		} else {
			b.link(cur, b.g.Exit)
		}
		return nil

	case *cast.ContinueStmt:
		if cur == nil {
			return nil
		}
		if n := len(b.continueTargets); n > 0 {
			b.link(cur, b.continueTargets[n-1])
		} else {
			b.link(cur, b.g.Exit)
		}
		return nil

	case *cast.GotoStmt:
		if cur == nil {
			return nil
		}
		b.gotos = append(b.gotos, pendingGoto{from: cur, label: x.Label})
		return nil

	case *cast.LabelStmt:
		lb := b.newBlock()
		b.link(cur, lb) // fall-through into the label
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[x.Name] = lb
		if x.Stmt != nil {
			return b.stmt(lb, x.Stmt)
		}
		return lb

	default:
		return cur
	}
}

// lowerCond branches on ce.Cond and runs wrap(arm) as the straight-line
// unit of each arm, rejoining afterwards.
func (b *builder) lowerCond(cur *Block, ce *cast.CondExpr, wrap func(cast.Expr) cast.Expr) *Block {
	if cur == nil {
		return nil
	}
	thenB := b.newBlock()
	elseB := b.newBlock()
	join := b.newBlock()
	b.cond(cur, ce.Cond, thenB, elseB)
	tEnd := b.exprUnit(thenB, wrap(ce.Then))
	b.link(tEnd, join)
	eEnd := b.exprUnit(elseB, wrap(ce.Else))
	b.link(eEnd, join)
	return join
}

// pushLoop / popLoop manage break/continue targets.
func (b *builder) pushLoop(brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
}

func (b *builder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// exprUnit appends an expression unit to cur, terminating the path if the
// expression calls a no-return routine.
func (b *builder) exprUnit(cur *Block, e cast.Expr) *Block {
	if cur == nil {
		return nil
	}
	cur.Nodes = append(cur.Nodes, e)
	if b.callsNoReturn(e) {
		// Crash-path pruning: nothing follows panic/BUG on this path.
		return nil
	}
	return cur
}

func (b *builder) callsNoReturn(e cast.Expr) bool {
	if b.opts.NoReturn == nil {
		return false
	}
	found := false
	cast.Inspect(e, func(n cast.Node) bool {
		if c, ok := n.(*cast.CallExpr); ok {
			if name := cast.CalleeName(c); name != "" && b.opts.NoReturn(name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// cond lowers a branch on e from cur to tblk/fblk, decomposing
// short-circuit operators and negation into CFG structure.
func (b *builder) cond(cur *Block, e cast.Expr, tblk, fblk *Block) {
	if cur == nil {
		return
	}
	switch x := e.(type) {
	case *cast.BinaryExpr:
		switch x.Op {
		case ctoken.AndAnd:
			mid := b.newBlock()
			b.cond(cur, x.X, mid, fblk)
			b.cond(mid, x.Y, tblk, fblk)
			return
		case ctoken.OrOr:
			mid := b.newBlock()
			b.cond(cur, x.X, tblk, mid)
			b.cond(mid, x.Y, tblk, fblk)
			return
		}
	case *cast.UnaryExpr:
		if x.Op == ctoken.Not {
			b.cond(cur, x.X, fblk, tblk)
			return
		}
	}
	cur.Cond = e
	b.linkBranch(cur, tblk, true)
	b.linkBranch(cur, fblk, false)
}

// switchStmt lowers a switch. Cases fall through; break exits.
func (b *builder) switchStmt(cur *Block, x *cast.SwitchStmt) *Block {
	if cur == nil {
		return nil
	}
	cur = b.exprUnit(cur, x.Tag)
	if cur == nil {
		return nil
	}
	exit := b.newBlock()
	body, ok := x.Body.(*cast.CompoundStmt)
	if !ok {
		// Degenerate switch; body executes or not.
		inner := b.newBlock()
		b.link(cur, inner)
		b.link(cur, exit)
		end := b.stmt(inner, x.Body)
		b.link(end, exit)
		return exit
	}

	// Split the body into case-labeled segments.
	type segment struct {
		hasDefault bool
		start      *Block
		stmts      []cast.Stmt
	}
	var segs []segment
	for _, s := range body.List {
		if cs, ok := s.(*cast.CaseStmt); ok {
			segs = append(segs, segment{hasDefault: cs.Value == nil, start: b.newBlock()})
			continue
		}
		if len(segs) == 0 {
			// Statements before any case label are unreachable; skip.
			continue
		}
		segs[len(segs)-1].stmts = append(segs[len(segs)-1].stmts, s)
	}

	hasDefault := false
	for _, seg := range segs {
		if seg.hasDefault {
			hasDefault = true
		}
		b.link(cur, seg.start)
	}
	if !hasDefault {
		b.link(cur, exit)
	}

	b.breakTargets = append(b.breakTargets, exit)
	for i, seg := range segs {
		end := b.stmts(seg.start, seg.stmts)
		if i+1 < len(segs) {
			b.link(end, segs[i+1].start) // fall through
		} else {
			b.link(end, exit)
		}
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	return exit
}

// prune removes blocks unreachable from the entry and compresses empty
// pass-through blocks out of edge lists.
func (b *builder) prune() {
	// Compress: an empty block with exactly one unconditional successor
	// is bypassed. The cycle guard is shared across calls (cleared, not
	// reallocated — redirect runs once per edge).
	seen := map[*Block]bool{}
	redirect := func(blk *Block) *Block {
		clear(seen)
		for blk != nil && blk.Cond == nil && len(blk.Nodes) == 0 &&
			len(blk.Succs) == 1 && blk != b.g.Exit && !seen[blk] {
			seen[blk] = true
			blk = blk.Succs[0].To
		}
		return blk
	}
	for _, blk := range b.g.Blocks {
		for i := range blk.Succs {
			blk.Succs[i].To = redirect(blk.Succs[i].To)
		}
	}
	b.g.Entry = redirect(b.g.Entry)

	// Reachability.
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(blk *Block) {
		if blk == nil || reach[blk] {
			return
		}
		reach[blk] = true
		for _, e := range blk.Succs {
			walk(e.To)
		}
	}
	walk(b.g.Entry)
	reach[b.g.Exit] = true

	var kept []*Block
	for _, blk := range b.g.Blocks {
		if reach[blk] {
			kept = append(kept, blk)
		}
	}
	b.g.Blocks = kept

	// Rebuild Preds.
	for _, blk := range b.g.Blocks {
		blk.Preds = nil
	}
	for _, blk := range b.g.Blocks {
		for _, e := range blk.Succs {
			if reach[e.To] {
				e.To.Preds = append(e.To.Preds, blk)
			}
		}
	}
}

func (b *builder) number() {
	// Stable numbering: BFS from entry, exit last. IDs double as the
	// visited marks (-1 = unseen), and the queue is walked by index so
	// the whole pass costs one slice.
	for _, blk := range b.g.Blocks {
		blk.ID = -1
	}
	id := 0
	queue := make([]*Block, 0, len(b.g.Blocks))
	queue = append(queue, b.g.Entry)
	for qi := 0; qi < len(queue); qi++ {
		blk := queue[qi]
		if blk == nil || blk.ID >= 0 {
			continue
		}
		blk.ID = id
		id++
		for _, e := range blk.Succs {
			queue = append(queue, e.To)
		}
	}
	for _, blk := range b.g.Blocks {
		if blk.ID < 0 {
			blk.ID = id
			id++
		}
	}
	slices.SortFunc(b.g.Blocks, func(x, y *Block) int { return x.ID - y.ID })
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s (entry B%d, exit B%d)\n", g.Fn.Name, g.Entry.ID, g.Exit.ID)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "B%d:\n", blk.ID)
		for _, n := range blk.Nodes {
			switch x := n.(type) {
			case cast.Expr:
				fmt.Fprintf(&sb, "  %s\n", cast.ExprString(x))
			case *cast.VarDecl:
				if x.Init != nil {
					fmt.Fprintf(&sb, "  decl %s = %s\n", x.Name, cast.ExprString(x.Init))
				} else {
					fmt.Fprintf(&sb, "  decl %s\n", x.Name)
				}
			case *cast.ReturnStmt:
				if x.X != nil {
					fmt.Fprintf(&sb, "  return %s\n", cast.ExprString(x.X))
				} else {
					fmt.Fprintf(&sb, "  return\n")
				}
			}
		}
		if blk.Cond != nil {
			fmt.Fprintf(&sb, "  branch %s\n", cast.ExprString(blk.Cond))
		}
		for _, e := range blk.Succs {
			if blk.Cond != nil {
				fmt.Fprintf(&sb, "  -> B%d [%v]\n", e.To.ID, e.Branch)
			} else {
				fmt.Fprintf(&sb, "  -> B%d\n", e.To.ID)
			}
		}
	}
	return sb.String()
}
