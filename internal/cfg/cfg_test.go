package cfg

import (
	"testing"

	"deviant/internal/cast"
	"deviant/internal/cparse"
)

func buildFn(t *testing.T, src string, opts Options) *Graph {
	t.Helper()
	f, errs := cparse.ParseSource("t.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			return Build(fd, opts)
		}
	}
	t.Fatal("no function")
	return nil
}

// countPaths walks all acyclic paths entry->exit.
func countPaths(g *Graph) int {
	var walk func(b *Block, seen map[*Block]bool) int
	walk = func(b *Block, seen map[*Block]bool) int {
		if b == g.Exit {
			return 1
		}
		if seen[b] {
			return 0
		}
		seen[b] = true
		n := 0
		for _, e := range b.Succs {
			n += walk(e.To, seen)
		}
		delete(seen, b)
		return n
	}
	return walk(g.Entry, map[*Block]bool{})
}

func TestLinearFunction(t *testing.T) {
	g := buildFn(t, "void f(void) { a(); b(); c(); }", Options{})
	if countPaths(g) != 1 {
		t.Errorf("paths: %d\n%s", countPaths(g), g)
	}
	// All three calls in one block.
	var calls int
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(cast.Expr); ok {
				calls++
			}
		}
	}
	if calls != 3 {
		t.Errorf("calls: %d\n%s", calls, g)
	}
}

func TestIfElse(t *testing.T) {
	g := buildFn(t, "void f(int x) { if (x) a(); else b(); c(); }", Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

func TestIfNoElse(t *testing.T) {
	g := buildFn(t, "void f(int x) { if (x) a(); c(); }", Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

func TestShortCircuitDecomposition(t *testing.T) {
	// (!p || !q) should create two condition blocks, one testing p, one q.
	g := buildFn(t, "void f(int *p, int *q) { if (!p || !q) return; a(); }", Options{})
	var conds []string
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			conds = append(conds, cast.ExprString(blk.Cond))
		}
	}
	if len(conds) != 2 || conds[0] != "p" || conds[1] != "q" {
		t.Errorf("conds: %v\n%s", conds, g)
	}
}

func TestAndAndDecomposition(t *testing.T) {
	g := buildFn(t, "void f(int a, int b) { if (a && b) x(); y(); }", Options{})
	// paths: a false -> y; a true, b false -> y; a true, b true -> x,y
	if got := countPaths(g); got != 3 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

// hasBackEdge reports whether the graph contains a cycle reachable from
// the entry (i.e. the loop structure survived CFG construction).
func hasBackEdge(g *Graph) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Block]int{}
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		color[b] = gray
		for _, e := range b.Succs {
			switch color[e.To] {
			case gray:
				return true
			case white:
				if dfs(e.To) {
					return true
				}
			}
		}
		color[b] = black
		return false
	}
	return dfs(g.Entry)
}

func TestWhileLoop(t *testing.T) {
	g := buildFn(t, "void f(int n) { while (n) { n--; } done(); }", Options{})
	// One acyclic path (skipping the loop) reaches the exit; iterating
	// paths revisit the head and are cyclic.
	if got := countPaths(g); got != 1 {
		t.Errorf("acyclic paths: %d\n%s", got, g)
	}
	if !hasBackEdge(g) {
		t.Errorf("loop lost its back edge:\n%s", g)
	}
}

func TestDoWhile(t *testing.T) {
	g := buildFn(t, "void f(int n) { do { n--; } while (n); done(); }", Options{})
	if got := countPaths(g); got < 1 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

func TestForLoop(t *testing.T) {
	g := buildFn(t, "void f(void) { int i; for (i = 0; i < 4; i++) body(); done(); }", Options{})
	if got := countPaths(g); got != 1 {
		t.Errorf("acyclic paths: %d\n%s", got, g)
	}
	if !hasBackEdge(g) {
		t.Errorf("for loop lost its back edge:\n%s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildFn(t, `void f(int n) {
		while (n) {
			if (n == 1) break;
			if (n == 2) continue;
			n--;
		}
		done();
	}`, Options{})
	// Acyclic paths: skip the loop entirely, or enter once and break.
	if got := countPaths(g); got != 2 {
		t.Errorf("acyclic paths: %d\n%s", got, g)
	}
	if !hasBackEdge(g) {
		t.Errorf("loop lost its back edge:\n%s", g)
	}
}

func TestReturnTerminatesPath(t *testing.T) {
	g := buildFn(t, "int f(int x) { if (x) return 1; return 0; }", Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("paths: %d\n%s", got, g)
	}
	// Exit must have 2 preds.
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit preds: %d\n%s", len(g.Exit.Preds), g)
	}
}

func TestGotoLabel(t *testing.T) {
	g := buildFn(t, `int f(int x) {
		if (x) goto out;
		work();
	out:
		return 0;
	}`, Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

func TestSwitchCases(t *testing.T) {
	g := buildFn(t, `void f(int n) {
		switch (n) {
		case 1:
			a();
			break;
		case 2:
			b();
			/* fall through */
		case 3:
			c();
			break;
		default:
			d();
		}
		done();
	}`, Options{})
	// paths: case1; case2->case3; case3; default = 4
	if got := countPaths(g); got != 4 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

func TestSwitchNoDefaultHasSkipEdge(t *testing.T) {
	g := buildFn(t, `void f(int n) {
		switch (n) {
		case 1: a(); break;
		}
		done();
	}`, Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("paths: %d\n%s", got, g)
	}
}

func TestCrashPathPruning(t *testing.T) {
	isPanic := func(name string) bool { return name == "panic" }
	// Paper §6: "if (!idle) panic(...); idle->processor = cpu;" — the
	// panic path must not reach the dereference.
	src := `void f(struct proc *idle, int cpu) {
		if (!idle)
			panic("no idle process for CPU %d", cpu);
		idle->processor = cpu;
	}`
	g := buildFn(t, src, Options{NoReturn: isPanic})
	// With pruning, only one path reaches exit (the !idle-false one).
	if got := countPaths(g); got != 1 {
		t.Errorf("paths: %d\n%s", got, g)
	}

	g2 := buildFn(t, src, Options{})
	if got := countPaths(g2); got != 2 {
		t.Errorf("unpruned paths: %d\n%s", got, g2)
	}
}

func TestCondEdgesLabeled(t *testing.T) {
	g := buildFn(t, "void f(int *p) { if (p == 0) a(); else b(); }", Options{})
	var condBlk *Block
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			condBlk = blk
		}
	}
	if condBlk == nil {
		t.Fatalf("no cond block\n%s", g)
	}
	if len(condBlk.Succs) != 2 {
		t.Fatalf("cond succs: %d", len(condBlk.Succs))
	}
	if condBlk.Succs[0].Branch == condBlk.Succs[1].Branch {
		t.Error("both edges have same branch value")
	}
}

func TestBuildPanicsOnPrototype(t *testing.T) {
	f, _ := cparse.ParseSource("t.c", "int g(void);")
	fd := f.Decls[0].(*cast.FuncDecl)
	defer func() {
		if recover() == nil {
			t.Error("want panic for prototype")
		}
	}()
	Build(fd, Options{})
}

func TestNestedLoopsAndConditions(t *testing.T) {
	g := buildFn(t, `void f(int n, int m) {
		int i, j;
		for (i = 0; i < n; i++) {
			for (j = 0; j < m; j++) {
				if (i == j)
					hit(i);
			}
		}
	}`, Options{})
	if got := countPaths(g); got != 1 {
		t.Errorf("acyclic paths: %d\n%s", got, g)
	}
	if !hasBackEdge(g) {
		t.Errorf("nested loops lost back edges:\n%s", g)
	}
	// Entry reachable, IDs unique.
	seen := map[int]bool{}
	for _, blk := range g.Blocks {
		if seen[blk.ID] {
			t.Errorf("duplicate block ID %d", blk.ID)
		}
		seen[blk.ID] = true
	}
}

func TestStringRendering(t *testing.T) {
	g := buildFn(t, "int f(int x) { if (x) return 1; return 0; }", Options{})
	s := g.String()
	if s == "" {
		t.Error("empty dump")
	}
}

func TestTernaryAssignLowering(t *testing.T) {
	g := buildFn(t, "void f(int c, int a, int b) { int x; x = c ? a : b; done(x); }", Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("lowered ternary paths: %d\n%s", got, g)
	}
	// Both arms appear as assignment units.
	var assigns int
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*cast.AssignExpr); ok {
				assigns++
			}
		}
	}
	if assigns != 2 {
		t.Errorf("want 2 arm assignments, got %d\n%s", assigns, g)
	}
}

func TestTernaryReturnLowering(t *testing.T) {
	g := buildFn(t, "int f(int c, int a, int b) { return c ? a : b; }", Options{})
	if got := countPaths(g); got != 2 {
		t.Errorf("lowered return paths: %d\n%s", got, g)
	}
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit preds: %d\n%s", len(g.Exit.Preds), g)
	}
}
