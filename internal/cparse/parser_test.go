package cparse

import (
	"strings"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
)

func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	f, errs := ParseSource("test.c", src)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func firstFunc(t *testing.T, f *cast.File) *cast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDecl); ok && fd.Body != nil {
			return fd
		}
	}
	t.Fatal("no function definition found")
	return nil
}

func TestParseSimpleFunction(t *testing.T) {
	f := parse(t, "int add(int a, int b) { return a + b; }")
	fd := firstFunc(t, f)
	if fd.Name != "add" {
		t.Errorf("name %q", fd.Name)
	}
	if len(fd.Params) != 2 || fd.Params[0].Name != "a" || fd.Params[1].Name != "b" {
		t.Errorf("params %v", fd.Params)
	}
	if fd.Ret.TypeString() != "int" {
		t.Errorf("ret %q", fd.Ret.TypeString())
	}
	if len(fd.Body.List) != 1 {
		t.Fatalf("body %v", fd.Body.List)
	}
	ret, ok := fd.Body.List[0].(*cast.ReturnStmt)
	if !ok {
		t.Fatalf("not a return: %T", fd.Body.List[0])
	}
	if cast.ExprString(ret.X) != "(a + b)" {
		t.Errorf("return expr %q", cast.ExprString(ret.X))
	}
}

func TestParsePointerDeclarations(t *testing.T) {
	f := parse(t, "int *p; char **q; struct foo *r;")
	if len(f.Decls) != 3 {
		t.Fatalf("decls: %d", len(f.Decls))
	}
	p := f.Decls[0].(*cast.VarDecl)
	if !p.Type.IsPointer() {
		t.Error("p should be pointer")
	}
	q := f.Decls[1].(*cast.VarDecl)
	if q.Type.TypeString() != "char * *" {
		t.Errorf("q type %q", q.Type.TypeString())
	}
	r := f.Decls[2].(*cast.VarDecl)
	if r.Type.TypeString() != "struct foo *" {
		t.Errorf("r type %q", r.Type.TypeString())
	}
}

func TestParseMultiDeclarator(t *testing.T) {
	f := parse(t, "int a, *b, c[10];")
	if len(f.Decls) != 3 {
		t.Fatalf("decls: %d", len(f.Decls))
	}
	if f.Decls[0].(*cast.VarDecl).Type.IsPointer() {
		t.Error("a is not a pointer")
	}
	if !f.Decls[1].(*cast.VarDecl).Type.IsPointer() {
		t.Error("b is a pointer")
	}
	arr, ok := f.Decls[2].(*cast.VarDecl).Type.(*cast.ArrayType)
	if !ok || arr.Len != 10 {
		t.Errorf("c: %v", f.Decls[2].(*cast.VarDecl).Type)
	}
}

func TestParseStructDefinition(t *testing.T) {
	f := parse(t, "struct tty_struct { void *driver_data; int count; struct tty_struct *link; };")
	rd, ok := f.Decls[0].(*cast.RecordDecl)
	if !ok {
		t.Fatalf("decl: %T", f.Decls[0])
	}
	if rd.Type.Tag != "tty_struct" || len(rd.Type.Fields) != 3 {
		t.Fatalf("struct: %+v", rd.Type)
	}
	if rd.Type.Fields[0].Name != "driver_data" || !rd.Type.Fields[0].Type.IsPointer() {
		t.Errorf("field 0: %+v", rd.Type.Fields[0])
	}
}

func TestParseTypedef(t *testing.T) {
	f := parse(t, "typedef unsigned long size_t; size_t n;")
	td, ok := f.Decls[0].(*cast.TypedefDecl)
	if !ok || td.Name != "size_t" {
		t.Fatalf("typedef: %+v", f.Decls[0])
	}
	vd := f.Decls[1].(*cast.VarDecl)
	nt, ok := vd.Type.(*cast.NamedType)
	if !ok || nt.Name != "size_t" {
		t.Fatalf("var type: %v", vd.Type)
	}
	if cast.Unwrap(vd.Type).TypeString() != "unsigned long" {
		t.Errorf("unwrap: %q", cast.Unwrap(vd.Type).TypeString())
	}
}

func TestParseTypedefStructPointer(t *testing.T) {
	f := parse(t, "typedef struct buf { int n; } buf_t; buf_t *b;")
	vd := f.Decls[len(f.Decls)-1].(*cast.VarDecl)
	if !vd.Type.IsPointer() {
		t.Error("b should be a pointer")
	}
}

func TestParseFunctionPointerDeclarator(t *testing.T) {
	f := parse(t, "int (*handler)(int sig);")
	vd, ok := f.Decls[0].(*cast.VarDecl)
	if !ok || vd.Name != "handler" {
		t.Fatalf("decl: %+v", f.Decls[0])
	}
	pt, ok := vd.Type.(*cast.PointerType)
	if !ok {
		t.Fatalf("type: %v (%s)", vd.Type, vd.Type.TypeString())
	}
	if _, ok := pt.Elem.(*cast.FuncType); !ok {
		t.Fatalf("elem: %v", pt.Elem)
	}
}

func TestParseStructWithFunctionPointers(t *testing.T) {
	src := `
struct file_operations {
	int (*open)(struct inode *, struct file *);
	int (*release)(struct inode *, struct file *);
	long (*ioctl)(struct file *, unsigned int, unsigned long);
};`
	f := parse(t, src)
	rd := f.Decls[0].(*cast.RecordDecl)
	if len(rd.Type.Fields) != 3 {
		t.Fatalf("fields: %d", len(rd.Type.Fields))
	}
	names := []string{"open", "release", "ioctl"}
	for i, n := range names {
		if rd.Type.Fields[i].Name != n {
			t.Errorf("field %d: %q", i, rd.Type.Fields[i].Name)
		}
	}
}

func TestParseInitializerListWithDesignators(t *testing.T) {
	src := `
struct file_operations fops = {
	.open = my_open,
	.release = my_release,
};`
	f := parse(t, src)
	vd := f.Decls[0].(*cast.VarDecl)
	il, ok := vd.Init.(*cast.InitListExpr)
	if !ok {
		t.Fatalf("init: %T", vd.Init)
	}
	if len(il.Items) != 2 || il.Designators[0] != "open" || il.Designators[1] != "release" {
		t.Fatalf("items: %v desig %v", il.Items, il.Designators)
	}
}

func TestParseEnum(t *testing.T) {
	f := parse(t, "enum state { IDLE, RUNNING = 5, DONE };")
	ed, ok := f.Decls[0].(*cast.EnumDecl)
	if !ok {
		t.Fatalf("decl: %T", f.Decls[0])
	}
	if len(ed.Type.Enumerats) != 3 || ed.Type.Enumerats[1] != "RUNNING" {
		t.Errorf("enumerators: %v", ed.Type.Enumerats)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
void f(int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (i == 3)
			continue;
		else
			g(i);
	}
	while (n > 0)
		n--;
	do { n++; } while (n < 10);
	switch (n) {
	case 1:
		g(1);
		break;
	default:
		g(0);
	}
	goto out;
out:
	return;
}`
	f := parse(t, src)
	fd := firstFunc(t, f)
	kinds := map[string]bool{}
	cast.Inspect(fd, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.ForStmt:
			kinds["for"] = true
		case *cast.IfStmt:
			kinds["if"] = true
		case *cast.WhileStmt:
			kinds["while"] = true
		case *cast.DoWhileStmt:
			kinds["do"] = true
		case *cast.SwitchStmt:
			kinds["switch"] = true
		case *cast.CaseStmt:
			kinds["case"] = true
		case *cast.GotoStmt:
			kinds["goto"] = true
		case *cast.LabelStmt:
			kinds["label"] = true
		}
		return true
	})
	for _, k := range []string{"for", "if", "while", "do", "switch", "case", "goto", "label"} {
		if !kinds[k] {
			t.Errorf("missing %s statement", k)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]string{
		"a + b * c":        "(a + (b * c))",
		"a * b + c":        "((a * b) + c)",
		"a && b || c":      "((a && b) || c)",
		"a == b && c != d": "((a == b) && (c != d))",
		"a | b & c":        "(a | (b & c))",
		"a << 2 + 1":       "(a << (2 + 1))",
		"-a * b":           "(-a * b)",
		"!a && b":          "(!a && b)",
	}
	for src, want := range cases {
		f := parse(t, "int x = "+src+";")
		vd := f.Decls[0].(*cast.VarDecl)
		if got := cast.ExprString(vd.Init); got != want {
			t.Errorf("%q: got %q want %q", src, got, want)
		}
	}
}

func TestParseAssignmentsAndTernary(t *testing.T) {
	f := parse(t, "void f(void) { a = b ? c : d; x += 2; *p = q->r; }")
	fd := firstFunc(t, f)
	s0 := fd.Body.List[0].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if _, ok := s0.R.(*cast.CondExpr); !ok {
		t.Errorf("want ternary on RHS, got %T", s0.R)
	}
	s1 := fd.Body.List[1].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if s1.Op != ctoken.AddAssign {
		t.Errorf("op %v", s1.Op)
	}
	s2 := fd.Body.List[2].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if _, ok := s2.L.(*cast.UnaryExpr); !ok {
		t.Errorf("LHS %T", s2.L)
	}
	m, ok := s2.R.(*cast.MemberExpr)
	if !ok || !m.Arrow || m.Member != "r" {
		t.Errorf("RHS %v", cast.ExprString(s2.R))
	}
}

func TestParseCast(t *testing.T) {
	f := parse(t, "void f(void *v) { struct foo *p; p = (struct foo *)v; int n = (int)x + 1; }")
	fd := firstFunc(t, f)
	asg := fd.Body.List[1].(*cast.ExprStmt).X.(*cast.AssignExpr)
	ce, ok := asg.R.(*cast.CastExpr)
	if !ok {
		t.Fatalf("not a cast: %T", asg.R)
	}
	if ce.To.TypeString() != "struct foo *" {
		t.Errorf("cast type %q", ce.To.TypeString())
	}
	// (int)x + 1 should parse as ((int)x) + 1
	ds := fd.Body.List[2].(*cast.DeclStmt)
	be, ok := ds.Decls[0].Init.(*cast.BinaryExpr)
	if !ok {
		t.Fatalf("not binary: %T", ds.Decls[0].Init)
	}
	if _, ok := be.X.(*cast.CastExpr); !ok {
		t.Errorf("cast should bind tighter than +: %v", cast.ExprString(be))
	}
}

func TestParseSizeof(t *testing.T) {
	f := parse(t, "int a = sizeof(struct foo); int b = sizeof x; int c = sizeof(x);")
	if _, ok := f.Decls[0].(*cast.VarDecl).Init.(*cast.SizeofTypeExpr); !ok {
		t.Errorf("sizeof(type): %T", f.Decls[0].(*cast.VarDecl).Init)
	}
	u, ok := f.Decls[1].(*cast.VarDecl).Init.(*cast.UnaryExpr)
	if !ok || u.Op != ctoken.KwSizeof {
		t.Errorf("sizeof x: %T", f.Decls[1].(*cast.VarDecl).Init)
	}
}

func TestParseCallsAndChaining(t *testing.T) {
	f := parse(t, "void f(void) { g(1, h(2), p->q.r[3]); }")
	fd := firstFunc(t, f)
	call := fd.Body.List[0].(*cast.ExprStmt).X.(*cast.CallExpr)
	if cast.CalleeName(call) != "g" || len(call.Args) != 3 {
		t.Fatalf("call: %v", cast.ExprString(call))
	}
	if cast.ExprString(call.Args[2]) != "p->q.r[3]" {
		t.Errorf("arg2: %q", cast.ExprString(call.Args[2]))
	}
}

func TestParsePaperFragmentCapidrv(t *testing.T) {
	// Section 3.1, first fragment (check-then-use bug).
	src := `
void f(struct capi_ctr *card, int id) {
	if (card == NULL) {
		printk("capidrv-%d: incoming call on unbound id %d!\n",
			card->contrnr, id);
	}
}`
	f := parse(t, src)
	fd := firstFunc(t, f)
	ifs, ok := fd.Body.List[0].(*cast.IfStmt)
	if !ok {
		t.Fatalf("no if: %T", fd.Body.List[0])
	}
	be := ifs.Cond.(*cast.BinaryExpr)
	if be.Op != ctoken.EqEq || cast.ExprString(be.X) != "card" {
		t.Errorf("cond: %v", cast.ExprString(ifs.Cond))
	}
}

func TestParsePaperFragmentMxser(t *testing.T) {
	// Section 3.1, second fragment (use-then-check bug).
	src := `
int mxser_write(struct tty_struct *tty, int from_user) {
	struct mxser_struct *info = tty->driver_data;
	unsigned long flags;

	if (!tty || !info->xmit_buf)
		return 0;
	return 1;
}`
	f := parse(t, src)
	fd := firstFunc(t, f)
	if fd.Name != "mxser_write" {
		t.Fatalf("name %q", fd.Name)
	}
	ds, ok := fd.Body.List[0].(*cast.DeclStmt)
	if !ok {
		t.Fatalf("first stmt: %T", fd.Body.List[0])
	}
	if cast.ExprString(ds.Decls[0].Init) != "tty->driver_data" {
		t.Errorf("init: %q", cast.ExprString(ds.Decls[0].Init))
	}
}

func TestParsePrototypes(t *testing.T) {
	f := parse(t, "int open(const char *path, int flags); void panic(const char *fmt, ...);")
	fd0 := f.Decls[0].(*cast.FuncDecl)
	if fd0.Body != nil || fd0.Name != "open" || len(fd0.Params) != 2 {
		t.Errorf("open: %+v", fd0)
	}
	fd1 := f.Decls[1].(*cast.FuncDecl)
	if !fd1.Variadic {
		t.Error("panic should be variadic")
	}
}

func TestParseStaticInline(t *testing.T) {
	f := parse(t, "static inline int get(void) { return 1; }")
	fd := firstFunc(t, f)
	if !fd.Static || !fd.Inline {
		t.Errorf("static=%v inline=%v", fd.Static, fd.Inline)
	}
}

func TestParseStringConcat(t *testing.T) {
	f := parse(t, `char *s = "foo" "bar";`)
	sl := f.Decls[0].(*cast.VarDecl).Init.(*cast.StringLit)
	if sl.Text != `"foobar"` {
		t.Errorf("concat: %q", sl.Text)
	}
}

func TestParseErrorRecovery(t *testing.T) {
	src := "int good1; int @@@; int good2; void f(void) { return; }"
	f, errs := ParseSource("t.c", src)
	if len(errs) == 0 {
		t.Fatal("want errors")
	}
	var names []string
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *cast.VarDecl:
			names = append(names, x.Name)
		case *cast.FuncDecl:
			names = append(names, x.Name)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "good1") || !strings.Contains(joined, "f") {
		t.Errorf("recovered decls: %v", names)
	}
}

func TestParseNestedStructAccess(t *testing.T) {
	f := parse(t, "void f(void) { a.b->c.d = 1; }")
	fd := firstFunc(t, f)
	asg := fd.Body.List[0].(*cast.ExprStmt).X.(*cast.AssignExpr)
	if cast.ExprString(asg.L) != "a.b->c.d" {
		t.Errorf("lhs: %q", cast.ExprString(asg.L))
	}
}

func TestParseCommaExpr(t *testing.T) {
	f := parse(t, "void f(void) { a = 1, b = 2; }")
	fd := firstFunc(t, f)
	if _, ok := fd.Body.List[0].(*cast.ExprStmt).X.(*cast.CommaExpr); !ok {
		t.Errorf("want comma expr, got %T", fd.Body.List[0].(*cast.ExprStmt).X)
	}
}

func TestParseForWithDecl(t *testing.T) {
	f := parse(t, "void f(void) { for (int i = 0; i < 10; i++) g(i); }")
	fd := firstFunc(t, f)
	fs := fd.Body.List[0].(*cast.ForStmt)
	if _, ok := fs.Init.(*cast.DeclStmt); !ok {
		t.Errorf("init: %T", fs.Init)
	}
}

func TestParseArrayOfFunctionPointers(t *testing.T) {
	f := parse(t, "int (*handlers[16])(int);")
	vd := f.Decls[0].(*cast.VarDecl)
	if vd.Name != "handlers" {
		t.Fatalf("name %q", vd.Name)
	}
}

func TestParseUnary(t *testing.T) {
	f := parse(t, "void f(void) { x = *p; y = &q; z = !r; w = ~s; v = -u; ++i; j--; }")
	fd := firstFunc(t, f)
	if len(fd.Body.List) != 7 {
		t.Fatalf("stmts: %d", len(fd.Body.List))
	}
}

func TestParseRecordsShared(t *testing.T) {
	// A later "struct foo *" reference resolves to the defined record.
	src := "struct foo { int a; }; void f(struct foo *p) { p->a = 1; }"
	f := parse(t, src)
	fd := firstFunc(t, f)
	pt := fd.Params[0].Type.(*cast.PointerType)
	st := pt.Elem.(*cast.StructType)
	if len(st.Fields) != 1 || st.Fields[0].Name != "a" {
		t.Errorf("fields not shared: %+v", st)
	}
}

func TestCallsHelper(t *testing.T) {
	f := parse(t, "void f(void) { lock(l); a = a + 1; unlock(l); (*fp)(1); }")
	calls := cast.Calls(f)
	if len(calls) != 2 {
		t.Fatalf("calls: %d", len(calls))
	}
	if cast.CalleeName(calls[0]) != "lock" || cast.CalleeName(calls[1]) != "unlock" {
		t.Errorf("callees: %v %v", cast.CalleeName(calls[0]), cast.CalleeName(calls[1]))
	}
}

func TestStripParensAndCasts(t *testing.T) {
	f := parse(t, "void g(void *v) { struct s *p = (struct s *)v; }")
	fd := firstFunc(t, f)
	init := fd.Body.List[0].(*cast.DeclStmt).Decls[0].Init
	stripped := cast.StripParensAndCasts(init)
	if id, ok := stripped.(*cast.Ident); !ok || id.Name != "v" {
		t.Errorf("stripped: %v", cast.ExprString(stripped))
	}
}

func TestGNUAttributesSkipped(t *testing.T) {
	src := `
static __inline__ int __attribute__((always_inline)) fast_add(int a, int b) {
	return a + b;
}
int packed_field __attribute__((aligned(8)));
struct s { int x; } __attribute__((packed));
void f(const char *__restrict dst) { use(dst); }
`
	f, errs := ParseSource("gnu.c", src)
	if len(errs) != 0 {
		t.Fatalf("GNU extensions rejected: %v", errs)
	}
	var names []string
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *cast.FuncDecl:
			names = append(names, x.Name)
		case *cast.VarDecl:
			names = append(names, x.Name)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"fast_add", "packed_field", "f"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %v", want, names)
		}
	}
}

func TestInlineAsmSkipped(t *testing.T) {
	src := `
void flush_tlb(unsigned long addr) {
	asm volatile ("invlpg (%0)" : : "r" (addr) : "memory");
	done(addr);
}
void f(void) {
	__asm__ __volatile__ ("nop");
	after();
}
`
	f, errs := ParseSource("asm.c", src)
	if len(errs) != 0 {
		t.Fatalf("asm rejected: %v", errs)
	}
	calls := cast.Calls(f)
	var names []string
	for _, c := range calls {
		names = append(names, cast.CalleeName(c))
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "done") || !strings.Contains(joined, "after") {
		t.Errorf("statements after asm lost: %v", names)
	}
}
