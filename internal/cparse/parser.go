// Package cparse parses preprocessed C token streams into cast trees.
//
// The parser is a recursive-descent parser for the GNU-C-flavoured subset
// systems code uses: declarations with full declarator syntax (pointers,
// arrays, function pointers), struct/union/enum definitions, typedefs, and
// the complete statement and expression grammar. It is error-tolerant:
// parse errors are accumulated and the parser resynchronizes at the next
// ';' or '}', so one malformed construct does not hide the rest of a file
// from the checkers.
package cparse

import (
	"fmt"
	"strings"

	"deviant/internal/arena"
	"deviant/internal/cast"
	"deviant/internal/cpp"
	"deviant/internal/ctoken"
)

// Parser parses one translation unit.
type Parser struct {
	toks []ctoken.Token
	pos  int
	errs []error

	// typedefs tracks typedef names so the grammar can distinguish
	// declarations from expressions (the classic lexer-hack state).
	typedefs map[string]cast.Type
	// records tracks struct/union definitions by "struct tag" key so
	// field lookups resolve across the unit.
	records map[string]*cast.StructType
	// basicTypes dedups immutable BasicType nodes by spelling (lazy).
	basicTypes map[string]*cast.BasicType

	// Typed arenas for the node populations that dominate a unit's AST.
	// Each lives exactly as long as the parsed File (nodes reference into
	// the slabs), so a unit's tree costs one heap allocation per 512 nodes
	// of a type instead of one per node; the GC releases whole slabs when
	// the File goes (e.g. its snapshot entry is evicted). Rare node types
	// are not worth a slab's tail waste and stay individually allocated.
	idents    arena.Arena[cast.Ident]
	intLits   arena.Arena[cast.IntLit]
	binaries  arena.Arena[cast.BinaryExpr]
	unaries   arena.Arena[cast.UnaryExpr]
	calls     arena.Arena[cast.CallExpr]
	members   arena.Arena[cast.MemberExpr]
	assigns   arena.Arena[cast.AssignExpr]
	indexes   arena.Arena[cast.IndexExpr]
	exprStmts arena.Arena[cast.ExprStmt]
	ifStmts   arena.Arena[cast.IfStmt]
	compounds arena.Arena[cast.CompoundStmt]
	returns   arena.Arena[cast.ReturnStmt]
	varDecls  arena.Arena[cast.VarDecl]
	ptrTypes  arena.Arena[cast.PointerType]
	params    arena.Arena[cast.ParamDecl]
}

// ParseFile preprocesses nothing; it parses an already-preprocessed token
// stream (as produced by cpp) into a File named name.
func ParseFile(name string, toks []ctoken.Token) (*cast.File, []error) {
	p := &Parser{
		toks:     toks,
		typedefs: make(map[string]cast.Type),
		records:  make(map[string]*cast.StructType),
	}
	f := &cast.File{Name: name}
	for !p.at(ctoken.EOF) {
		start := p.pos
		decls := p.externalDecl()
		f.Decls = append(f.Decls, decls...)
		if p.pos == start {
			// Ensure progress even on garbage.
			p.errorf(p.cur().Pos, "unexpected token %s", p.cur())
			p.pos++
		}
	}
	return f, p.errs
}

// ParseSource scans, preprocesses (with no macros beyond defines) and
// parses src. It is a convenience for tests and examples.
func ParseSource(name, src string) (*cast.File, []error) {
	pp := cpp.New(cpp.MapFS{name: src})
	toks, err := pp.Process(name)
	var errs []error
	if err != nil {
		errs = append(errs, pp.Errs()...)
	}
	f, perrs := ParseFile(name, toks)
	return f, append(errs, perrs...)
}

func (p *Parser) errorf(pos ctoken.Pos, format string, args ...any) {
	if len(p.errs) < 200 { // cap noise on badly broken files
		p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

func (p *Parser) cur() ctoken.Token { return p.toks[p.pos] }

func (p *Parser) at(k ctoken.Kind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) peekKind(n int) ctoken.Kind {
	if p.pos+n >= len(p.toks) {
		return ctoken.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) next() ctoken.Token {
	t := p.toks[p.pos]
	if t.Kind != ctoken.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k ctoken.Kind) ctoken.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return ctoken.Token{Kind: k, Pos: p.cur().Pos}
}

// accept consumes the token if it matches.
func (p *Parser) accept(k ctoken.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// syncDecl skips to a plausible declaration boundary.
func (p *Parser) syncDecl() {
	depth := 0
	for !p.at(ctoken.EOF) {
		switch p.cur().Kind {
		case ctoken.LBrace:
			depth++
		case ctoken.RBrace:
			if depth == 0 {
				p.next()
				return
			}
			depth--
		case ctoken.Semi:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Declarations

var typeKeywords = map[ctoken.Kind]bool{
	ctoken.KwVoid: true, ctoken.KwChar: true, ctoken.KwShort: true,
	ctoken.KwInt: true, ctoken.KwLong: true, ctoken.KwFloat: true,
	ctoken.KwDouble: true, ctoken.KwSigned: true, ctoken.KwUnsigned: true,
	ctoken.KwStruct: true, ctoken.KwUnion: true, ctoken.KwEnum: true,
	ctoken.KwConst: true, ctoken.KwVolatile: true,
}

var storageKeywords = map[ctoken.Kind]bool{
	ctoken.KwTypedef: true, ctoken.KwStatic: true, ctoken.KwExtern: true,
	ctoken.KwAuto: true, ctoken.KwRegister: true, ctoken.KwInline: true,
}

// startsDecl reports whether the current token can begin a declaration.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	if typeKeywords[t.Kind] || storageKeywords[t.Kind] {
		return true
	}
	if t.Kind == ctoken.Ident {
		if _, ok := p.typedefs[t.Text]; ok {
			// "T * x;" is a declaration; "T * x" as expression would be
			// multiplication of two idents, which we accept ambiguity on
			// in favor of the declaration reading, matching C.
			return true
		}
	}
	return false
}

type declSpecs struct {
	typ     cast.Type
	typedef bool
	static  bool
	extern  bool
	inline  bool
	pos     ctoken.Pos
}

// gnuNoise lists GNU C extension keywords that carry no meaning for our
// analyses; they (and any parenthesized argument list) are skipped.
var gnuNoise = map[string]bool{
	"__attribute__": true, "__attribute": true,
	"__extension__": true, "__restrict": true, "__restrict__": true,
	"__inline": true, "__inline__": true, "__volatile__": true,
	"__const": true, "__const__": true, "__signed__": true,
	"__builtin_va_list": false, // handled as a type elsewhere
}

// skipGNUNoise consumes extension keywords plus their balanced argument
// lists, returning whether anything was consumed.
func (p *Parser) skipGNUNoise() bool {
	consumed := false
	for p.at(ctoken.Ident) && gnuNoise[p.cur().Text] {
		p.next()
		consumed = true
		if p.at(ctoken.LParen) {
			depth := 0
			for !p.at(ctoken.EOF) {
				switch p.cur().Kind {
				case ctoken.LParen:
					depth++
				case ctoken.RParen:
					depth--
					if depth == 0 {
						p.next()
						goto nextNoise
					}
				}
				p.next()
			}
		}
	nextNoise:
	}
	return consumed
}

// declSpecifiers parses storage classes, qualifiers and the type.
func (p *Parser) declSpecifiers() declSpecs {
	ds := declSpecs{pos: p.cur().Pos}
	// Basic-type specifiers accumulate in a stack array ("unsigned long
	// long int" is the worst plausible case); only multi-part spellings
	// pay a Join.
	var basicParts [8]string
	nParts := 0
	sawType := false
	for {
		if p.skipGNUNoise() {
			continue
		}
		t := p.cur()
		switch {
		case t.Kind == ctoken.KwTypedef:
			ds.typedef = true
			p.next()
		case t.Kind == ctoken.KwStatic:
			ds.static = true
			p.next()
		case t.Kind == ctoken.KwExtern:
			ds.extern = true
			p.next()
		case t.Kind == ctoken.KwInline:
			ds.inline = true
			p.next()
		case t.Kind == ctoken.KwAuto || t.Kind == ctoken.KwRegister ||
			t.Kind == ctoken.KwConst || t.Kind == ctoken.KwVolatile:
			p.next() // qualifiers do not affect our analyses
		case t.Kind == ctoken.KwStruct || t.Kind == ctoken.KwUnion:
			ds.typ = p.structOrUnion()
			sawType = true
		case t.Kind == ctoken.KwEnum:
			ds.typ = p.enumSpec()
			sawType = true
		case t.Kind == ctoken.KwVoid || t.Kind == ctoken.KwChar ||
			t.Kind == ctoken.KwShort || t.Kind == ctoken.KwInt ||
			t.Kind == ctoken.KwLong || t.Kind == ctoken.KwFloat ||
			t.Kind == ctoken.KwDouble || t.Kind == ctoken.KwSigned ||
			t.Kind == ctoken.KwUnsigned:
			if nParts < len(basicParts) {
				basicParts[nParts] = t.Kind.String()
				nParts++
			}
			sawType = true
			p.next()
		case t.Kind == ctoken.Ident && !sawType && nParts == 0:
			if ut, ok := p.typedefs[t.Text]; ok {
				ds.typ = &cast.NamedType{Name: t.Text, Underlying: ut}
				sawType = true
				p.next()
				continue
			}
			goto done
		default:
			goto done
		}
	}
done:
	if nParts == 1 {
		ds.typ = p.basicType(basicParts[0])
	} else if nParts > 1 {
		ds.typ = p.basicType(strings.Join(basicParts[:nParts], " "))
	}
	if ds.typ == nil {
		// implicit int (K&R-era code, also our recovery path)
		ds.typ = p.basicType("int")
	}
	return ds
}

// basicType dedups BasicType nodes per spelling: the node is immutable
// (just a normalized name), so every "int" in a unit shares one node
// instead of allocating per declaration.
func (p *Parser) basicType(name string) *cast.BasicType {
	if t, ok := p.basicTypes[name]; ok {
		return t
	}
	if p.basicTypes == nil {
		p.basicTypes = make(map[string]*cast.BasicType)
	}
	t := &cast.BasicType{Name: name}
	p.basicTypes[name] = t
	return t
}

func (p *Parser) structOrUnion() cast.Type {
	kw := p.next() // struct or union
	st := &cast.StructType{Union: kw.Kind == ctoken.KwUnion}
	if p.at(ctoken.Ident) {
		st.Tag = p.next().Text
	}
	key := st.TypeString()
	if p.at(ctoken.LBrace) {
		p.next()
		for !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
			start := p.pos
			st.Fields = append(st.Fields, p.fieldDecl()...)
			if p.pos == start {
				// Malformed member: skip a token so the loop advances.
				p.next()
			}
		}
		p.expect(ctoken.RBrace)
		if st.Tag != "" {
			p.records[key] = st
		}
		return st
	}
	// Reference to a (possibly forward-declared) tag: share the record.
	if st.Tag != "" {
		if def, ok := p.records[key]; ok {
			return def
		}
		p.records[key] = st
	}
	return st
}

// fieldDecl parses one struct member declaration, possibly declaring
// several comma-separated fields.
func (p *Parser) fieldDecl() []*cast.FieldDecl {
	ds := p.declSpecifiers()
	var out []*cast.FieldDecl
	for {
		name, namePos, typ := p.declarator(ds.typ)
		// Bitfields: ": width"
		if p.accept(ctoken.Colon) {
			p.condExpr()
		}
		if name != "" {
			out = append(out, &cast.FieldDecl{Name: name, NamePos: namePos, Type: typ})
		}
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	p.expect(ctoken.Semi)
	return out
}

func (p *Parser) enumSpec() cast.Type {
	p.next() // enum
	et := &cast.EnumType{}
	if p.at(ctoken.Ident) {
		et.Tag = p.next().Text
	}
	if p.at(ctoken.LBrace) {
		p.next()
		for !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
			if p.at(ctoken.Ident) {
				name := p.next().Text
				et.Enumerats = append(et.Enumerats, name)
				if p.accept(ctoken.Assign) {
					p.condExpr()
				}
			}
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		p.expect(ctoken.RBrace)
	}
	return et
}

// declarator parses a (possibly abstract) declarator and returns the
// declared name (possibly "") and the full type built around base.
func (p *Parser) declarator(base cast.Type) (string, ctoken.Pos, cast.Type) {
	// Leading pointers, with qualifiers and GNU noise between them.
	for p.at(ctoken.Star) {
		p.next()
		for {
			if p.at(ctoken.KwConst) || p.at(ctoken.KwVolatile) {
				p.next()
				continue
			}
			if !p.skipGNUNoise() {
				break
			}
		}
		base = p.ptrTypes.NewFrom(cast.PointerType{Elem: base})
	}
	p.skipGNUNoise()

	var name string
	var namePos ctoken.Pos
	// inner receives the eventual full type; used for parenthesized
	// declarators like (*fp)(args).
	var innerWrap func(cast.Type) cast.Type

	switch {
	case p.at(ctoken.Ident):
		t := p.next()
		name, namePos = t.Text, t.Pos
	case p.at(ctoken.LParen) && p.lparenStartsDeclarator():
		p.next()
		var innerBase cast.Type = &holeType{}
		n, np, it := p.declarator(innerBase)
		name, namePos = n, np
		p.expect(ctoken.RParen)
		innerWrap = func(outer cast.Type) cast.Type { return fillHole(it, outer) }
	default:
		// abstract declarator (no name), e.g. in prototypes
		namePos = p.cur().Pos
	}

	// Suffixes bind tighter than the leading pointers.
	typ := base
	for {
		switch {
		case p.at(ctoken.LBracket):
			p.next()
			var n int64 = -1
			if !p.at(ctoken.RBracket) {
				if e := p.condExpr(); e != nil {
					if il, ok := e.(*cast.IntLit); ok {
						n = il.Value
					}
				}
			}
			p.expect(ctoken.RBracket)
			typ = &cast.ArrayType{Elem: typ, Len: n}
			continue
		case p.at(ctoken.LParen):
			p.next()
			params, variadic := p.paramList()
			p.expect(ctoken.RParen)
			typ = &cast.FuncType{Ret: typ, Params: params, Variadic: variadic}
			continue
		}
		break
	}
	if innerWrap != nil {
		typ = innerWrap(typ)
	}
	// Trailing attributes: "int x __attribute__((unused));"
	p.skipGNUNoise()
	return name, namePos, typ
}

// holeType is a placeholder filled by fillHole for parenthesized
// declarators.
type holeType struct{}

func (*holeType) TypeString() string { return "<hole>" }
func (*holeType) IsPointer() bool    { return false }

// fillHole replaces the holeType leaf inside t with outer.
func fillHole(t, outer cast.Type) cast.Type {
	switch x := t.(type) {
	case *holeType:
		return outer
	case *cast.PointerType:
		return &cast.PointerType{Elem: fillHole(x.Elem, outer)}
	case *cast.ArrayType:
		return &cast.ArrayType{Elem: fillHole(x.Elem, outer), Len: x.Len}
	case *cast.FuncType:
		return &cast.FuncType{Ret: fillHole(x.Ret, outer), Params: x.Params, Variadic: x.Variadic}
	default:
		return t
	}
}

// lparenStartsDeclarator distinguishes "(*fp)" declarators from parameter
// lists following an omitted name.
func (p *Parser) lparenStartsDeclarator() bool {
	k := p.peekKind(1)
	return k == ctoken.Star || k == ctoken.LParen
}

func (p *Parser) paramList() ([]*cast.ParamDecl, bool) {
	var params []*cast.ParamDecl
	variadic := false
	if p.at(ctoken.RParen) {
		return params, false
	}
	// (void)
	if p.at(ctoken.KwVoid) && p.peekKind(1) == ctoken.RParen {
		p.next()
		return params, false
	}
	for {
		if p.at(ctoken.Ellipsis) {
			p.next()
			variadic = true
			break
		}
		ds := p.declSpecifiers()
		name, namePos, typ := p.declarator(ds.typ)
		params = append(params, p.params.NewFrom(cast.ParamDecl{Name: name, NamePos: namePos, Type: typ}))
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	return params, variadic
}

// externalDecl parses one top-level declaration, which may expand to
// multiple nodes ("int a, *b;").
func (p *Parser) externalDecl() []cast.Node {
	if p.accept(ctoken.Semi) {
		return nil
	}
	ds := p.declSpecifiers()

	// Bare "struct foo { ... };" or "enum e { ... };"
	if p.at(ctoken.Semi) {
		p.next()
		switch t := ds.typ.(type) {
		case *cast.StructType:
			return []cast.Node{&cast.RecordDecl{TagPos: ds.pos, Type: t}}
		case *cast.EnumType:
			return []cast.Node{&cast.EnumDecl{TagPos: ds.pos, Type: t}}
		}
		return nil
	}

	var out []cast.Node
	// Emit the record/enum definition itself too, if the specifier
	// defined one inline ("struct foo { ... } x;").
	switch t := ds.typ.(type) {
	case *cast.StructType:
		if len(t.Fields) > 0 {
			out = append(out, &cast.RecordDecl{TagPos: ds.pos, Type: t})
		}
	case *cast.EnumType:
		if len(t.Enumerats) > 0 {
			out = append(out, &cast.EnumDecl{TagPos: ds.pos, Type: t})
		}
	}

	first := true
	for {
		name, namePos, typ := p.declarator(ds.typ)
		if name == "" {
			p.errorf(namePos, "expected declarator name")
			p.syncDecl()
			return out
		}

		if ds.typedef {
			p.typedefs[name] = typ
			out = append(out, &cast.TypedefDecl{Name: name, NamePos: namePos, Type: typ})
		} else if ft, ok := typ.(*cast.FuncType); ok && first && p.at(ctoken.LBrace) {
			fd := &cast.FuncDecl{
				Name: name, NamePos: namePos,
				Ret: ft.Ret, Params: ft.Params, Variadic: ft.Variadic,
				Static: ds.static, Inline: ds.inline,
			}
			fd.Body = p.compoundStmt()
			out = append(out, fd)
			return out
		} else if ft, ok := typ.(*cast.FuncType); ok {
			out = append(out, &cast.FuncDecl{
				Name: name, NamePos: namePos,
				Ret: ft.Ret, Params: ft.Params, Variadic: ft.Variadic,
				Static: ds.static, Inline: ds.inline,
			})
		} else {
			vd := p.varDecls.NewFrom(cast.VarDecl{
				Name: name, NamePos: namePos, Type: typ,
				Static: ds.static, Extern: ds.extern,
			})
			if p.accept(ctoken.Assign) {
				vd.Init = p.initializer()
			}
			out = append(out, vd)
		}
		first = false
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	p.expect(ctoken.Semi)
	return out
}

func (p *Parser) initializer() cast.Expr {
	if p.at(ctoken.LBrace) {
		lb := p.next().Pos
		il := &cast.InitListExpr{LbracePos: lb}
		for !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
			desig := ""
			if p.at(ctoken.Dot) && p.peekKind(1) == ctoken.Ident {
				p.next()
				desig = p.next().Text
				p.expect(ctoken.Assign)
			} else if p.at(ctoken.LBracket) {
				// [idx] = value designators: record no name.
				p.next()
				p.condExpr()
				p.expect(ctoken.RBracket)
				p.expect(ctoken.Assign)
			}
			il.Items = append(il.Items, p.initializer())
			il.Designators = append(il.Designators, desig)
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		p.expect(ctoken.RBrace)
		return il
	}
	return p.assignExpr()
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) compoundStmt() *cast.CompoundStmt {
	lb := p.expect(ctoken.LBrace).Pos
	cs := p.compounds.NewFrom(cast.CompoundStmt{Lbrace: lb})
	for !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
		start := p.pos
		cs.List = append(cs.List, p.stmt())
		if p.pos == start {
			p.errorf(p.cur().Pos, "cannot parse statement at %s", p.cur())
			p.next()
		}
	}
	p.expect(ctoken.RBrace)
	return cs
}

func (p *Parser) stmt() cast.Stmt {
	t := p.cur()
	switch t.Kind {
	case ctoken.LBrace:
		return p.compoundStmt()
	case ctoken.KwIf:
		p.next()
		p.expect(ctoken.LParen)
		cond := p.expr()
		p.expect(ctoken.RParen)
		then := p.stmt()
		var els cast.Stmt
		if p.accept(ctoken.KwElse) {
			els = p.stmt()
		}
		return p.ifStmts.NewFrom(cast.IfStmt{IfPos: t.Pos, Cond: cond, Then: then, Else: els})
	case ctoken.KwWhile:
		p.next()
		p.expect(ctoken.LParen)
		cond := p.expr()
		p.expect(ctoken.RParen)
		return &cast.WhileStmt{WhilePos: t.Pos, Cond: cond, Body: p.stmt()}
	case ctoken.KwDo:
		p.next()
		body := p.stmt()
		p.expect(ctoken.KwWhile)
		p.expect(ctoken.LParen)
		cond := p.expr()
		p.expect(ctoken.RParen)
		p.expect(ctoken.Semi)
		return &cast.DoWhileStmt{DoPos: t.Pos, Body: body, Cond: cond}
	case ctoken.KwFor:
		p.next()
		p.expect(ctoken.LParen)
		var init cast.Stmt
		if !p.at(ctoken.Semi) {
			if p.startsDecl() {
				init = &cast.DeclStmt{Decls: p.localDecls()}
			} else {
				e := p.expr()
				init = p.exprStmts.NewFrom(cast.ExprStmt{X: e, SemiPos: p.cur().Pos})
				p.expect(ctoken.Semi)
			}
		} else {
			p.next()
		}
		var cond cast.Expr
		if !p.at(ctoken.Semi) {
			cond = p.expr()
		}
		p.expect(ctoken.Semi)
		var post cast.Expr
		if !p.at(ctoken.RParen) {
			post = p.expr()
		}
		p.expect(ctoken.RParen)
		return &cast.ForStmt{ForPos: t.Pos, Init: init, Cond: cond, Post: post, Body: p.stmt()}
	case ctoken.KwSwitch:
		p.next()
		p.expect(ctoken.LParen)
		tag := p.expr()
		p.expect(ctoken.RParen)
		return &cast.SwitchStmt{SwitchPos: t.Pos, Tag: tag, Body: p.stmt()}
	case ctoken.KwCase:
		p.next()
		v := p.condExpr()
		p.expect(ctoken.Colon)
		return &cast.CaseStmt{CasePos: t.Pos, Value: v}
	case ctoken.KwDefault:
		p.next()
		p.expect(ctoken.Colon)
		return &cast.CaseStmt{CasePos: t.Pos}
	case ctoken.KwReturn:
		p.next()
		var x cast.Expr
		if !p.at(ctoken.Semi) {
			x = p.expr()
		}
		p.expect(ctoken.Semi)
		return p.returns.NewFrom(cast.ReturnStmt{ReturnPos: t.Pos, X: x})
	case ctoken.KwBreak:
		p.next()
		p.expect(ctoken.Semi)
		return &cast.BreakStmt{BreakPos: t.Pos}
	case ctoken.KwContinue:
		p.next()
		p.expect(ctoken.Semi)
		return &cast.ContinueStmt{ContinuePos: t.Pos}
	case ctoken.KwGoto:
		p.next()
		label := p.expect(ctoken.Ident).Text
		p.expect(ctoken.Semi)
		return &cast.GotoStmt{GotoPos: t.Pos, Label: label}
	case ctoken.Semi:
		p.next()
		return p.exprStmts.NewFrom(cast.ExprStmt{SemiPos: t.Pos})
	case ctoken.Ident:
		// Inline assembly: "asm volatile ( ... );" — opaque to the
		// analyses, consumed as an empty statement.
		if t.Text == "asm" || t.Text == "__asm__" || t.Text == "__asm" {
			p.next()
			for p.at(ctoken.KwVolatile) || (p.at(ctoken.Ident) && p.cur().Text == "__volatile__") {
				p.next()
			}
			if p.at(ctoken.LParen) {
				depth := 0
				for !p.at(ctoken.EOF) {
					if p.at(ctoken.LParen) {
						depth++
					} else if p.at(ctoken.RParen) {
						depth--
						if depth == 0 {
							p.next()
							break
						}
					}
					p.next()
				}
			}
			semi := p.cur().Pos
			p.accept(ctoken.Semi)
			return p.exprStmts.NewFrom(cast.ExprStmt{SemiPos: semi})
		}
		// Label: "name: stmt"
		if p.peekKind(1) == ctoken.Colon {
			p.next()
			p.next()
			var inner cast.Stmt
			if !p.at(ctoken.RBrace) && !p.at(ctoken.EOF) {
				inner = p.stmt()
			}
			return &cast.LabelStmt{LabelPos: t.Pos, Name: t.Text, Stmt: inner}
		}
	}
	if p.startsDecl() {
		return &cast.DeclStmt{Decls: p.localDecls()}
	}
	e := p.expr()
	semi := p.cur().Pos
	p.expect(ctoken.Semi)
	return p.exprStmts.NewFrom(cast.ExprStmt{X: e, SemiPos: semi})
}

// localDecls parses one local declaration statement ("int a = 1, *b;"),
// consuming the terminating semicolon.
func (p *Parser) localDecls() []*cast.VarDecl {
	ds := p.declSpecifiers()
	var out []*cast.VarDecl
	for {
		name, namePos, typ := p.declarator(ds.typ)
		if name == "" {
			p.errorf(namePos, "expected name in declaration")
			break
		}
		if ds.typedef {
			p.typedefs[name] = typ
			if !p.accept(ctoken.Comma) {
				break
			}
			continue
		}
		vd := p.varDecls.NewFrom(cast.VarDecl{Name: name, NamePos: namePos, Type: typ, Static: ds.static, Extern: ds.extern})
		if p.accept(ctoken.Assign) {
			vd.Init = p.initializer()
		}
		out = append(out, vd)
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	p.expect(ctoken.Semi)
	return out
}

// ---------------------------------------------------------------------------
// Expressions

func (p *Parser) expr() cast.Expr {
	e := p.assignExpr()
	for p.at(ctoken.Comma) {
		p.next()
		e = &cast.CommaExpr{X: e, Y: p.assignExpr()}
	}
	return e
}

var assignOps = map[ctoken.Kind]bool{
	ctoken.Assign: true, ctoken.AddAssign: true, ctoken.SubAssign: true,
	ctoken.MulAssign: true, ctoken.DivAssign: true, ctoken.ModAssign: true,
	ctoken.AndAssign: true, ctoken.OrAssign: true, ctoken.XorAssign: true,
	ctoken.ShlAssign: true, ctoken.ShrAssign: true,
}

func (p *Parser) assignExpr() cast.Expr {
	l := p.condExpr()
	if assignOps[p.cur().Kind] {
		op := p.next().Kind
		r := p.assignExpr()
		return p.assigns.NewFrom(cast.AssignExpr{Op: op, L: l, R: r})
	}
	return l
}

func (p *Parser) condExpr() cast.Expr {
	c := p.binaryExpr(0)
	if p.accept(ctoken.Question) {
		then := p.expr()
		p.expect(ctoken.Colon)
		els := p.condExpr()
		return &cast.CondExpr{Cond: c, Then: then, Else: els}
	}
	return c
}

// binary operator precedence, higher binds tighter.
var binPrec = map[ctoken.Kind]int{
	ctoken.OrOr:    1,
	ctoken.AndAnd:  2,
	ctoken.Pipe:    3,
	ctoken.Caret:   4,
	ctoken.Amp:     5,
	ctoken.EqEq:    6,
	ctoken.NotEq:   6,
	ctoken.Lt:      7,
	ctoken.Gt:      7,
	ctoken.Le:      7,
	ctoken.Ge:      7,
	ctoken.Shl:     8,
	ctoken.Shr:     8,
	ctoken.Plus:    9,
	ctoken.Minus:   9,
	ctoken.Star:    10,
	ctoken.Slash:   10,
	ctoken.Percent: 10,
}

func (p *Parser) binaryExpr(minPrec int) cast.Expr {
	x := p.unaryExpr()
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return x
		}
		op := p.next().Kind
		y := p.binaryExpr(prec + 1)
		x = p.binaries.NewFrom(cast.BinaryExpr{Op: op, X: x, Y: y})
	}
}

func (p *Parser) unaryExpr() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctoken.Star, ctoken.Amp, ctoken.Minus, ctoken.Plus,
		ctoken.Not, ctoken.Tilde, ctoken.Inc, ctoken.Dec:
		p.next()
		x := p.unaryExpr()
		return p.unaries.NewFrom(cast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x, Macro: t.FromMacro})
	case ctoken.KwSizeof:
		p.next()
		if p.at(ctoken.LParen) && p.typeStartsAt(1) {
			lp := p.next().Pos
			_ = lp
			typ := p.typeName()
			p.expect(ctoken.RParen)
			return &cast.SizeofTypeExpr{SizeofPos: t.Pos, Of: typ}
		}
		x := p.unaryExpr()
		return p.unaries.NewFrom(cast.UnaryExpr{OpPos: t.Pos, Op: ctoken.KwSizeof, X: x, Macro: t.FromMacro})
	case ctoken.LParen:
		// Cast or parenthesized expression.
		if p.typeStartsAt(1) {
			lp := p.next().Pos
			typ := p.typeName()
			p.expect(ctoken.RParen)
			// A cast applies to a unary expression; "(int)x + y" parses
			// as ((int)x) + y.
			x := p.unaryExpr()
			return &cast.CastExpr{LparenPos: lp, To: typ, X: x}
		}
	}
	return p.postfixExpr()
}

// typeStartsAt reports whether the token at offset n begins a type name
// (used to recognize casts and sizeof(type)).
func (p *Parser) typeStartsAt(n int) bool {
	k := p.peekKind(n)
	if typeKeywords[k] {
		return true
	}
	if k == ctoken.Ident {
		tok := p.toks[p.pos+n]
		if _, ok := p.typedefs[tok.Text]; ok {
			// Only a cast if followed by * or ) — "(x)(y)" where x is a
			// typedef is a cast; "(x + 1)" is not reachable here since x
			// being a typedef name in expression position is rare; accept.
			next := p.peekKind(n + 1)
			return next == ctoken.Star || next == ctoken.RParen
		}
	}
	return false
}

// typeName parses a type-name (specifiers plus abstract declarator).
func (p *Parser) typeName() cast.Type {
	ds := p.declSpecifiers()
	_, _, typ := p.declarator(ds.typ)
	return typ
}

func (p *Parser) postfixExpr() cast.Expr {
	x := p.primaryExpr()
	for {
		t := p.cur()
		switch t.Kind {
		case ctoken.LParen:
			p.next()
			call := p.calls.NewFrom(cast.CallExpr{Fun: x, Lparen: t.Pos})
			for !p.at(ctoken.RParen) && !p.at(ctoken.EOF) {
				call.Args = append(call.Args, p.assignExpr())
				if !p.accept(ctoken.Comma) {
					break
				}
			}
			p.expect(ctoken.RParen)
			x = call
		case ctoken.LBracket:
			p.next()
			idx := p.expr()
			p.expect(ctoken.RBracket)
			x = p.indexes.NewFrom(cast.IndexExpr{X: x, Index: idx})
		case ctoken.Dot:
			p.next()
			m := p.expect(ctoken.Ident)
			x = p.members.NewFrom(cast.MemberExpr{X: x, Member: m.Text, MemPos: m.Pos})
		case ctoken.Arrow:
			p.next()
			m := p.expect(ctoken.Ident)
			x = p.members.NewFrom(cast.MemberExpr{X: x, Arrow: true, Member: m.Text, MemPos: m.Pos})
		case ctoken.Inc, ctoken.Dec:
			p.next()
			x = &cast.PostfixExpr{Op: t.Kind, X: x}
		default:
			return x
		}
	}
}

func (p *Parser) primaryExpr() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctoken.Ident:
		p.next()
		return p.idents.NewFrom(cast.Ident{Name: t.Text, NamePos: t.Pos, Macro: t.FromMacro})
	case ctoken.IntLit:
		p.next()
		return p.intLits.NewFrom(cast.IntLit{LitPos: t.Pos, Text: t.Text, Value: cpp.ParseIntLit(t.Text), Macro: t.FromMacro})
	case ctoken.FloatLit:
		p.next()
		return &cast.FloatLit{LitPos: t.Pos, Text: t.Text, Macro: t.FromMacro}
	case ctoken.CharLit:
		p.next()
		return &cast.CharLit{LitPos: t.Pos, Text: t.Text, Value: cpp.ParseIntLit(t.Text), Macro: t.FromMacro}
	case ctoken.StringLit:
		p.next()
		text := t.Text
		// Adjacent string literals concatenate.
		for p.at(ctoken.StringLit) {
			nxt := p.next()
			text = text[:len(text)-1] + strings.TrimPrefix(nxt.Text, `"`)
		}
		return &cast.StringLit{LitPos: t.Pos, Text: text, Macro: t.FromMacro}
	case ctoken.LParen:
		p.next()
		e := p.expr()
		p.expect(ctoken.RParen)
		return e
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next()
		return p.intLits.NewFrom(cast.IntLit{LitPos: t.Pos, Text: "0", Value: 0})
	}
}
