package cparse

import (
	"math/rand"
	"testing"

	"deviant/internal/cast"
	"deviant/internal/ctoken"
)

// corpusLikeSource is a dense sample of the constructs the corpus emits.
const corpusLikeSource = `
#define NULL 0
typedef unsigned long size_t;
struct spinlock { int raw; };
struct sk_buff { int len; char *data; struct sk_buff *next; };
static struct spinlock dev_lock;
static int dev_count;

static int probe(struct sk_buff *skb, int id) {
	if (skb == NULL) {
		printk("bad skb id %d!\n", id);
		return -1;
	}
	return skb->len + id;
}

static int update(int delta) {
	spin_lock(&dev_lock);
	dev_count = dev_count + delta;
	if (dev_count < 0) {
		spin_unlock(&dev_lock);
		return -1;
	}
	spin_unlock(&dev_lock);
	return delta;
}

static int drain(void) {
	struct sk_buff *p;
	int total = 0;
	for (p = queue; p; p = p->next)
		total += p->len;
	switch (total & 3) {
	case 0: total += 1; break;
	default: total *= 2;
	}
	return total;
}
`

// TestParserNeverPanicsOnMutations flips random bytes in realistic source
// and requires the parser to survive (with errors, not panics) — the
// error-tolerance property real kernel trees demand.
func TestParserNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := []byte(corpusLikeSource)
	punct := []byte("(){};*&-></=!%#\"' \n\t")
	for trial := 0; trial < 500; trial++ {
		src := append([]byte(nil), base...)
		for flips := 0; flips < 1+trial%5; flips++ {
			i := rng.Intn(len(src))
			src[i] = punct[rng.Intn(len(punct))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v\nsource:\n%s", trial, r, src)
				}
			}()
			ParseSource("mut.c", string(src))
		}()
	}
}

// TestParserNeverPanicsOnTruncations truncates the source at every byte
// offset; the parser must always return.
func TestParserNeverPanicsOnTruncations(t *testing.T) {
	base := corpusLikeSource
	for i := 0; i < len(base); i += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d panicked: %v", i, r)
				}
			}()
			ParseSource("trunc.c", base[:i])
		}()
	}
}

// TestExprStringRoundTrip parses expressions, prints them, reparses the
// print, and requires a fixpoint — the printer and parser agree.
func TestExprStringRoundTrip(t *testing.T) {
	exprs := []string{
		"a + b * c",
		"(a + b) * c",
		"p->next->data[3]",
		"*pp",
		"f(a, g(b), c + 1)",
		"a ? b : c",
		"x << 2 | y & 3",
		"!done && (count > 0)",
		"s.field->sub[i].leaf",
		"-n + +m",
		"a = b = c",
		"p == 0",
	}
	parseExpr := func(src string) cast.Expr {
		f, errs := ParseSource("rt.c", "int probe(void) { return "+src+"; }")
		if len(errs) != 0 {
			t.Fatalf("%q: %v", src, errs)
		}
		fd := f.Decls[0].(*cast.FuncDecl)
		ret := fd.Body.List[0].(*cast.ReturnStmt)
		return ret.X
	}
	for _, src := range exprs {
		once := cast.ExprString(parseExpr(src))
		twice := cast.ExprString(parseExpr(once))
		if once != twice {
			t.Errorf("%q: print/parse not a fixpoint: %q vs %q", src, once, twice)
		}
	}
}

// TestParsePositionsPointIntoSource checks every AST node position lands
// within the file.
func TestParsePositionsPointIntoSource(t *testing.T) {
	f, errs := ParseSource("pos.c", corpusLikeSource)
	if len(errs) != 0 {
		t.Fatalf("parse: %v", errs)
	}
	lines := 1
	for _, c := range corpusLikeSource {
		if c == '\n' {
			lines++
		}
	}
	cast.Inspect(f, func(n cast.Node) bool {
		p := n.Pos()
		if p.Line < 0 || p.Line > lines {
			t.Errorf("%T at impossible line %d", n, p.Line)
		}
		return true
	})
}

// TestDeepNestingNoStackOverflow guards the recursive-descent parser
// against pathological nesting.
func TestDeepNestingNoStackOverflow(t *testing.T) {
	depth := 300
	src := "int f(void) { return "
	for i := 0; i < depth; i++ {
		src += "("
	}
	src += "1"
	for i := 0; i < depth; i++ {
		src += ")"
	}
	src += "; }"
	f, errs := ParseSource("deep.c", src)
	if len(errs) != 0 {
		t.Fatalf("deep nesting: %v", errs)
	}
	if len(f.Decls) != 1 {
		t.Fatal("lost the function")
	}
	_ = ctoken.Pos{}
}
