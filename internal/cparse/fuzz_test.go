package cparse

import (
	"fmt"
	"testing"

	"deviant/internal/cast"
)

// FuzzParse feeds arbitrary bytes through preprocessing and parsing.
// Invariants: no panic, the parser always produces a file (possibly
// empty) plus diagnostics, and the result is deterministic.
func FuzzParse(f *testing.F) {
	f.Add("int f(int *p) { if (p) return *p; return 0; }\n")
	f.Add("struct s { int a; }; typedef struct s s_t;\ns_t g(void);\n")
	f.Add("int f() { switch (x) { case 0: goto out; default: break; } out: return 1;\n")
	f.Add("int f(void) { for (;;) { while (1) do ; while (0); } }\n")
	f.Add("void f() { int a[3] = {1,2,3}; a[5] = *(int*)0; }\n")
	f.Add("((((((")
	f.Add("int ; struct { union { enum E { } e; }; } ;;; =\n")
	f.Add("#define D(x) x x\nint D(D(D(y)));\n")
	f.Fuzz(func(t *testing.T, src string) {
		run := func() (string, string) {
			file, errs := ParseSource("fuzz.c", src)
			if file == nil {
				t.Fatal("ParseSource returned nil file")
			}
			return renderDecls(file), fmt.Sprintf("%v", errs)
		}
		aDecls, aErrs := run()
		bDecls, bErrs := run()
		if aDecls != bDecls {
			t.Fatalf("non-deterministic decls:\n%s\nvs\n%s", aDecls, bDecls)
		}
		if aErrs != bErrs {
			t.Fatalf("non-deterministic diagnostics:\n%s\nvs\n%s", aErrs, bErrs)
		}
	})
}

func renderDecls(f *cast.File) string {
	out := ""
	for _, d := range f.Decls {
		out += fmt.Sprintf("%T@%v\n", d, d.Pos())
	}
	return out
}
