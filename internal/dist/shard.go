package dist

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"deviant/internal/core"
	"deviant/internal/cpp"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// RunShard is the worker side of a distributed run: preprocess and
// parse the shard's units and package each as a mergeable partial. The
// store, when non-nil, must have token retention enabled (see
// snapshot.Store.SetRetainTokens) so warm hits can serve their token
// streams; RunShard turns it on defensively.
//
// maxWorkers clamps the frontend concurrency the request may ask for;
// zero or negative leaves the request's choice (or the core default)
// in effect.
func RunShard(req *ShardRequest, store *snapshot.Store, maxWorkers int) (*ShardResponse, error) {
	if len(req.Units) == 0 {
		return nil, errors.New("dist: shard has no units")
	}
	for _, u := range req.Units {
		if _, ok := req.Sources[u]; !ok {
			return nil, fmt.Errorf("dist: shard unit %q not in sources", u)
		}
		if !strings.HasSuffix(u, ".c") {
			return nil, fmt.Errorf("dist: shard unit %q is not a translation unit", u)
		}
	}
	opts := core.DefaultOptions()
	opts.Workers = req.Options.Workers
	if maxWorkers > 0 && (opts.Workers <= 0 || opts.Workers > maxWorkers) {
		opts.Workers = maxWorkers
	}
	opts.DisableCrashPruning = req.Options.NoPrune
	if store != nil {
		store.SetRetainTokens(true)
		opts.Snapshot = store
	}
	// When the coordinator asked for a trace, the shard runs under its
	// own tracer whose export (spans + elapsed-clock anchor) rides home
	// in the response for stitching. The tracer's lifetime is exactly
	// this call, so DurNs brackets the worker-side work the coordinator
	// sees as its request round trip.
	var tr *obs.Tracer
	if req.Options.Trace {
		tr = obs.NewTracer()
		opts.Tracer = tr
	}
	span := tr.Start("shard", obs.A("units", strconv.Itoa(len(req.Units))))
	fr, err := core.New(opts, nil).Frontend(cpp.MapFS(req.Sources), req.Units)
	span.End()
	if err != nil {
		return nil, err
	}
	resp := &ShardResponse{
		Partials:    make([]UnitPartial, 0, len(fr.Units)),
		Quarantined: fr.Records,
		Panics:      fr.Panics,
		Snapshot:    fr.Snapshot,
		Trace:       tr.Export(),
	}
	for i := range fr.Units {
		u := &fr.Units[i]
		if u.Quarantined {
			continue
		}
		raw, sum, err := encodeTokens(u.Tokens)
		if err != nil {
			return nil, fmt.Errorf("dist: unit %q: %w", u.Unit, err)
		}
		p := UnitPartial{
			Unit:         u.Unit,
			Tokens:       raw,
			Sum:          sum,
			Lines:        u.Lines,
			Reused:       u.Reused,
			PreprocessNs: u.Preprocess.Nanoseconds(),
			ParseNs:      u.Parse.Nanoseconds(),
		}
		for _, e := range u.Errs {
			p.Errs = append(p.Errs, e.Error())
		}
		resp.Partials = append(resp.Partials, p)
	}
	return resp, nil
}
