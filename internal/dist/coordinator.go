package dist

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"deviant/internal/core"
	"deviant/internal/cparse"
	"deviant/internal/fault"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// Deterministic causes for fleet-level quarantine records. Transport
// error strings carry addresses and ports, which would make Degraded
// output differ run to run; a lost unit always quarantines with one of
// these fixed strings instead.
const (
	// causeLost marks a unit whose worker died and whose re-scatter to a
	// survivor also failed (or no survivor existed).
	causeLost = "worker shard unreachable after re-scatter"
	// causeCorrupt marks a partial whose token payload failed its
	// checksum or decode.
	causeCorrupt = "corrupt shard partial"
	// causeMissing marks a unit a worker neither returned nor
	// quarantined — a malformed response, contained per-unit.
	causeMissing = "shard partial missing from worker response"
)

// fleetStage is the Stage on fleet-level quarantine records.
const fleetStage = "fleet"

// ShardCaller scatters one shard request to one worker. internal/client
// implements it over HTTP with retry/backoff; tests implement it
// in-process.
type ShardCaller interface {
	Shard(ctx context.Context, req *ShardRequest, requestID string) (*ShardResponse, error)
}

// Worker is one member of the fleet. Name is its stable identity on the
// hash ring — placement depends on it, so renaming a worker moves its
// arc (deviantd uses the worker URL).
type Worker struct {
	Name   string
	Caller ShardCaller
}

// Coordinator shards analyses across a worker fleet and merges the
// partials deterministically. Safe for concurrent use. Membership is
// epoch-versioned: every Run snapshots one immutable view, and
// evictions, re-admissions and SetWorkers publish a successor view
// without disturbing in-flight runs.
type Coordinator struct {
	m *fleetMetrics

	mu     sync.Mutex
	view   *view
	status map[string]*workerState
	tc     TransportConfig
}

// NewCoordinator builds a coordinator over the given fleet. Worker
// names must be non-empty and unique.
func NewCoordinator(workers []Worker) (*Coordinator, error) {
	v, err := buildView(workers, 1, nil)
	if err != nil {
		return nil, err
	}
	status := make(map[string]*workerState, len(v.workers))
	for _, w := range v.workers {
		status[w.Name] = &workerState{healthy: true}
	}
	return &Coordinator{view: v, status: status, tc: defaultTransport()}, nil
}

// Size returns the configured fleet size at the current epoch.
func (c *Coordinator) Size() int { return len(c.currentView().workers) }

// fleetMetrics instruments scatter behavior; all fields nil-safe via
// the Coordinator's guard on c.m.
type fleetMetrics struct {
	reg          *obs.Registry // retained for federation and lazy per-worker series
	rescatters   *obs.Counter
	lost         *obs.Counter
	retries      *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	evictions    *obs.Counter
	readmissions *obs.Counter
	healthy      *obs.Gauge
	epoch        *obs.Gauge
	size         *obs.Gauge
}

// scatterHist returns the scatter-latency histogram for one worker,
// created on first use: membership is dynamic, so per-worker series
// cannot be enumerated at registration time.
func (m *fleetMetrics) scatterHist(name string) *obs.Histogram {
	if m == nil || m.reg == nil {
		return nil
	}
	return m.reg.Histogram("deviantd_fleet_scatter_seconds",
		"Wall clock of one shard scatter to one worker.",
		obs.LatencyBuckets, obs.L("worker", name))
}

// RegisterMetrics wires fleet instrumentation into reg: per-worker
// scatter latency histograms (created lazily as members appear),
// counters for re-scattered/lost units, transport retries and hedges,
// membership churn, and gauges for fleet size, membership epoch and
// the healthy worker count.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	m := &fleetMetrics{reg: reg}
	m.rescatters = reg.Counter("deviantd_fleet_rescattered_units_total",
		"Units re-scattered to a survivor after their worker failed.")
	m.lost = reg.Counter("deviantd_fleet_lost_units_total",
		"Units quarantined because no worker could serve them.")
	m.retries = reg.Counter("deviantd_fleet_shard_retries_total",
		"Shard call attempts beyond the first, per worker call.")
	m.hedges = reg.Counter("deviantd_fleet_shard_hedges_total",
		"Hedged shard calls launched against straggling workers.")
	m.hedgeWins = reg.Counter("deviantd_fleet_shard_hedge_wins_total",
		"Hedged shard calls that beat the primary worker.")
	m.evictions = reg.Counter("deviantd_fleet_evictions_total",
		"Members evicted from placement after failed calls or probes.")
	m.readmissions = reg.Counter("deviantd_fleet_readmissions_total",
		"Evicted members re-admitted to placement after recovery.")
	m.healthy = reg.Gauge("deviantd_fleet_healthy_workers",
		"Workers that answered the most recent scatter.")
	m.epoch = reg.Gauge("deviantd_fleet_epoch",
		"Current membership epoch; bumps on any eviction, re-admission or reload.")
	m.size = reg.Gauge("deviantd_fleet_workers",
		"Configured fleet size.")
	c.mu.Lock()
	c.m = m
	m.size.Set(float64(len(c.view.workers)))
	m.epoch.Set(float64(c.view.epoch))
	c.setHealthyGaugeLocked()
	c.mu.Unlock()
}

// shardResult is one worker's round outcome.
type shardResult struct {
	resp *ShardResponse
	err  error
}

// Run analyzes srcs across the fleet: place each sorted translation
// unit on the ring by content digest, scatter shard requests in
// parallel, re-scatter a failed worker's units to survivors once, fold
// the partials back in sorted unit order and run the global half of the
// pipeline locally. Output is byte-identical to a single-process run
// for any fleet shape; unit loss degrades the result with deterministic
// quarantine records instead of failing it. opts configures the global
// half exactly as it would a single-process run (its Snapshot field is
// ignored — frontend caching lives on the workers).
func (c *Coordinator) Run(ctx context.Context, srcs map[string]string, opts core.Options, requestID string) (*core.Result, error) {
	units := make([]string, 0, len(srcs))
	for name := range srcs {
		if strings.HasSuffix(name, ".c") {
			units = append(units, name)
		}
	}
	sort.Strings(units)
	if len(units) == 0 {
		return nil, errors.New("dist: no translation units")
	}
	feStart := time.Now()
	tr := opts.Tracer
	journal := opts.Journal

	// Snapshot one membership view for the whole run: placement below is
	// a pure function of (this epoch's member set, unit digests), so the
	// run's output bytes are pinned per epoch no matter what the prober
	// or a SetWorkers reload does concurrently.
	v := c.currentView()
	journalMembership(journal, v)

	// Place each unit on the ring, steering around members currently
	// evicted. Evicted-set placement is exactly the re-scatter placement
	// (ownerExcluding), so it cannot change output bytes — placement only
	// decides which caches warm and how long the run takes. With every
	// member evicted, fall back to normal placement and let
	// re-scatter/quarantine sort it out.
	owner := make(map[string]string, len(units))
	for _, u := range units {
		d := unitDigest(srcs[u])
		o := ""
		if len(v.down) > 0 {
			o = v.ring.ownerExcluding(d, v.down)
		}
		if o == "" {
			o = v.ring.owner(d)
		}
		owner[u] = o
	}
	// Group per worker; iterating units in sorted order keeps every
	// shard's unit list sorted too.
	assign := make(map[string][]string)
	for _, u := range units {
		assign[owner[u]] = append(assign[owner[u]], u)
	}
	journalPlacement(journal, "placement", assign)
	shardOpts := ShardOptions{NoPrune: opts.DisableCrashPruning, Trace: tr != nil}

	scatter := func(assign map[string][]string, round string) map[string]shardResult {
		out := make(map[string]shardResult, len(assign))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for name, shard := range assign {
			wg.Add(1)
			go func(name string, shard []string) {
				defer wg.Done()
				req := &ShardRequest{Sources: srcs, Units: shard, Options: shardOpts}
				journal.Event("shard_sent",
					obs.A("worker", name), obs.A("units", strconv.Itoa(len(shard))), obs.A("round", round))
				sp := tr.Start("scatter", obs.A("worker", name), obs.A("units", strconv.Itoa(len(shard))))
				send := tr.Elapsed()
				t0 := time.Now()
				resp, err := c.callShard(ctx, v, name, req, requestID, journal)
				rtt := time.Since(t0)
				sp.End()
				if h := c.m.scatterHist(name); h != nil {
					h.Observe(rtt.Seconds())
				}
				c.noteScatter(name, rtt, err)
				if err == nil && resp != nil {
					if resp.Trace != nil {
						// Symmetric-delay offset estimate: the worker's tracer
						// ran for DurNs of the rtt window, so its start sits
						// roughly half the residual delay after our send mark.
						offset := send + (rtt-time.Duration(resp.Trace.DurNs))/2
						if offset < 0 {
							offset = 0
						}
						tr.ImportProcess(name, offset, resp.Trace)
					}
					c.federate(name, resp.Metrics)
					journal.Event("shard_returned",
						obs.A("worker", name), obs.A("partials", strconv.Itoa(len(resp.Partials))),
						obs.A("quarantined", strconv.Itoa(len(resp.Quarantined))), obs.A("round", round))
				} else {
					// No transport detail in the journal: error strings carry
					// addresses, which would vary run to run.
					journal.Event("shard_failed",
						obs.A("worker", name), obs.A("units", strconv.Itoa(len(shard))), obs.A("round", round))
				}
				mu.Lock()
				out[name] = shardResult{resp: resp, err: err}
				mu.Unlock()
			}(name, shard)
		}
		wg.Wait()
		return out
	}

	round1 := scatter(assign, "1")
	dead := make(map[string]bool)
	for name, r := range round1 {
		if r.err != nil {
			dead[name] = true
		}
	}

	// Re-scatter a dead worker's units to the workers that would own
	// them had the dead ones never joined — once. Units that still have
	// nowhere to go are lost (quarantined below, never fatal).
	var lost []string
	var round2 map[string]shardResult
	retry := make(map[string][]string)
	if len(dead) > 0 {
		// A context already past its deadline means every call failed
		// for the run's own reasons, not the workers'; that is the
		// single-process timeout path, an error, not degradation.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Exclude this run's dead workers and the epoch's evicted set:
		// a unit must not re-scatter onto a member placement was already
		// steering around.
		excl := make(map[string]bool, len(dead)+len(v.down))
		for name := range dead {
			excl[name] = true
		}
		for name := range v.down {
			excl[name] = true
		}
		for _, u := range units {
			if !dead[owner[u]] {
				continue
			}
			alt := v.ring.ownerExcluding(unitDigest(srcs[u]), excl)
			if alt == "" {
				lost = append(lost, u)
				continue
			}
			retry[alt] = append(retry[alt], u)
		}
		if c.m != nil {
			for _, shard := range retry {
				c.m.rescatters.Add(float64(len(shard)))
			}
		}
		journalPlacement(journal, "rescatter", retry)
		round2 = scatter(retry, "2")
		for name, r := range round2 {
			if r.err != nil {
				lost = append(lost, retry[name]...)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if c.m != nil {
		c.m.healthy.Set(float64(len(v.workers) - len(dead)))
		c.m.lost.Add(float64(len(lost)))
	}

	// Gather: index partials by unit, pool worker quarantine records and
	// stats. Map iteration order is irrelevant — units never overlap
	// across responses, records are canonicalized downstream, and the
	// pooled counters are sums.
	partials := make(map[string]*UnitPartial, len(units))
	covered := make(map[string]bool)
	var pre []fault.Record
	panics := 0
	var snapAgg snapshot.RunStats
	gather := func(rs map[string]shardResult) {
		for _, r := range rs {
			if r.err != nil || r.resp == nil {
				continue
			}
			for i := range r.resp.Partials {
				p := &r.resp.Partials[i]
				partials[p.Unit] = p
			}
			for _, rec := range r.resp.Quarantined {
				covered[rec.Unit] = true
			}
			pre = append(pre, r.resp.Quarantined...)
			panics += r.resp.Panics
			if r.resp.Snapshot.Enabled {
				snapAgg.Enabled = true
			}
			snapAgg.UnitsReused += r.resp.Snapshot.UnitsReused
			snapAgg.UnitsParsed += r.resp.Snapshot.UnitsParsed
			snapAgg.GraphsReused += r.resp.Snapshot.GraphsReused
			snapAgg.GraphsBuilt += r.resp.Snapshot.GraphsBuilt
		}
	}
	gather(round1)
	gather(round2)
	lostSet := make(map[string]bool, len(lost))
	for _, u := range lost {
		lostSet[u] = true
		pre = append(pre, fault.Record{Stage: fleetStage, Unit: u, Cause: causeLost})
	}

	// Merge: verify, decode and reparse every partial concurrently into
	// its sorted slot. Reparsing tokens reproduces each unit's tree
	// exactly (the snapshot disk tier's pinned property), so from here
	// on the run is indistinguishable from one whose frontend ran
	// locally.
	parsed := make([]core.ParsedUnit, len(units))
	causes := make([]string, len(units))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	eachIndex(workers, len(units), func(i int) {
		u := units[i]
		parsed[i].Name = u
		if lostSet[u] {
			return
		}
		p, ok := partials[u]
		if !ok {
			if !covered[u] && !covered["*"] {
				causes[i] = causeMissing
			}
			return
		}
		toks, err := decodeTokens(p.Tokens, p.Sum)
		if err != nil {
			causes[i] = causeCorrupt
			return
		}
		f, _ := cparse.ParseFile(u, toks)
		if f == nil {
			causes[i] = causeCorrupt
			return
		}
		var errs []error
		for _, s := range p.Errs {
			errs = append(errs, errors.New(s))
		}
		parsed[i] = core.ParsedUnit{Name: u, File: f, ParseErrors: errs, Lines: p.Lines}
	})
	var ppNs, parseNs int64
	for i := range units {
		if causes[i] != "" {
			pre = append(pre, fault.Record{Stage: fleetStage, Unit: units[i], Cause: causes[i]})
		}
		if p, ok := partials[units[i]]; ok && parsed[i].File != nil {
			ppNs += p.PreprocessNs
			parseNs += p.ParseNs
		}
	}
	feDur := time.Since(feStart)

	journal.Event("merge",
		obs.A("units", strconv.Itoa(len(units))),
		obs.A("lost", strconv.Itoa(len(lost))),
		obs.A("workers_dead", strconv.Itoa(len(dead))))
	opts.Snapshot = nil
	res, err := core.New(opts, nil).AnalyzeParsed(parsed, pre, panics)
	if err != nil {
		return nil, err
	}
	res.Snapshot = snapAgg
	res.Timing.Preprocess = time.Duration(ppNs)
	res.Timing.Parse = time.Duration(parseNs)
	res.Timing.Frontend = feDur
	return res, nil
}

// eachIndex runs fn(0..n-1) on up to workers goroutines (inline when
// workers <= 1), with dynamic handout so slow items don't gate a shard.
func eachIndex(workers, n int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
