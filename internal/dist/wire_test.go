package dist

import (
	"context"
	"testing"

	"deviant/internal/cparse"
	"deviant/internal/snapshot"
)

// TestTokenWireRoundtrip pins the shard payload contract: tokens
// round-trip gob+checksum exactly, reparse to a tree, and any payload
// tampering is caught by the checksum before decode.
func TestTokenWireRoundtrip(t *testing.T) {
	w := &localWorker{store: snapshot.NewStore(0)}
	resp, err := w.Shard(context.Background(), &ShardRequest{
		Sources: fleetSources(),
		Units:   []string{"alpha.c", "beta.c"},
	}, "wire")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Partials) != 2 {
		t.Fatalf("want 2 partials, got %d", len(resp.Partials))
	}
	for _, p := range resp.Partials {
		toks, err := decodeTokens(p.Tokens, p.Sum)
		if err != nil {
			t.Fatalf("%s: %v", p.Unit, err)
		}
		if len(toks) == 0 {
			t.Fatalf("%s: empty token stream", p.Unit)
		}
		f, _ := cparse.ParseFile(p.Unit, toks)
		if f == nil || len(f.Decls) == 0 {
			t.Fatalf("%s: reparse produced no declarations", p.Unit)
		}
		// Re-encoding the decoded stream reproduces the same checksum:
		// the wire form is canonical, not merely parseable.
		_, sum2, err := encodeTokens(toks)
		if err != nil {
			t.Fatal(err)
		}
		if sum2 != p.Sum {
			t.Fatalf("%s: re-encode checksum drifted: %s vs %s", p.Unit, sum2, p.Sum)
		}
	}

	// Tampering: flipped payload byte and stale checksum both refuse.
	p := resp.Partials[0]
	bad := append([]byte(nil), p.Tokens...)
	bad[len(bad)/2] ^= 0x01
	if _, err := decodeTokens(bad, p.Sum); err == nil {
		t.Fatal("tampered payload decoded")
	}
	if _, err := decodeTokens(p.Tokens, "deadbeef"); err == nil {
		t.Fatal("wrong checksum accepted")
	}
}

// TestRunShardValidation pins worker-side request validation.
func TestRunShardValidation(t *testing.T) {
	if _, err := RunShard(&ShardRequest{Sources: fleetSources()}, nil, 0); err == nil {
		t.Fatal("empty shard accepted")
	}
	if _, err := RunShard(&ShardRequest{
		Sources: fleetSources(), Units: []string{"nosuch.c"},
	}, nil, 0); err == nil {
		t.Fatal("unknown unit accepted")
	}
	if _, err := RunShard(&ShardRequest{
		Sources: fleetSources(), Units: []string{"include/kernel.h"},
	}, nil, 0); err == nil {
		t.Fatal("header accepted as translation unit")
	}
}
