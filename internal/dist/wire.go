// Package dist shards an analysis across a fleet of deviantd workers
// and folds the partial results back into one deterministic run.
//
// The split follows the paper's statistics: cross-checking (§5's
// z-ranking over MUST/MAY beliefs) is only meaningful computed over the
// whole corpus, so the cross-unit half of the pipeline — semantic
// indexing, checkers, rule derivation, ranking — stays at the
// coordinator. What distributes is the per-unit half: preprocessing and
// parsing, the part that scales linearly with corpus size. Workers
// return each unit's preprocessed token stream plus rendered
// diagnostics; the coordinator reparses the tokens (the same
// deterministic rehydration the snapshot disk tier uses) and folds
// units in sorted order, making fleet output byte-identical to a
// single-process run for any fleet shape.
//
// Placement is consistent hashing over unit content digests with
// virtual nodes, so a unit's snapshot entry lives on the worker where
// its work runs and fleet changes move only the departed worker's arc.
// Workers are the unit of failure containment: a dead worker's shard is
// re-scattered to survivors once, and units that still cannot be placed
// become fault quarantine records in a Degraded — never failed — result.
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"

	"deviant/internal/ctoken"
	"deviant/internal/fault"
	"deviant/internal/obs"
	"deviant/internal/snapshot"
)

// RequestIDHeader carries the coordinator's request id to workers, so
// one fleet run shares a single trace id across every process's slog
// lines.
const RequestIDHeader = "X-Deviant-Request-Id"

// ShardOptions are the frontend-relevant analysis options a worker
// needs. Checker selection, p0 and memoization run at the coordinator
// and are deliberately absent.
type ShardOptions struct {
	// Workers bounds the worker process's own frontend concurrency;
	// zero lets the worker use its configured default.
	Workers int `json:"workers,omitempty"`
	// NoPrune mirrors the run's crash-path-pruning ablation. It does
	// not change frontend output, but it is part of the snapshot cache
	// fingerprint, so propagating it keeps worker caches keyed
	// consistently with the run being served.
	NoPrune bool `json:"no_prune,omitempty"`
	// Trace asks the worker to run its shard under a fresh obs.Tracer
	// and ship the span stream back in the response, so the
	// coordinator can stitch every process's spans into one trace.
	Trace bool `json:"trace,omitempty"`
}

// ShardRequest asks one worker to run the frontend over Units.
//
// Sources is the full corpus — units and every includable file — not
// just the shard: any unit may #include any header, and a header may be
// generated next to a unit owned by another worker. Shipping the whole
// map is the simple, correct baseline; trimming it to each shard's
// transitive include closure is a bandwidth optimization the wire
// format already permits.
type ShardRequest struct {
	Sources map[string]string `json:"sources"`
	Units   []string          `json:"units"`
	Options ShardOptions      `json:"options,omitempty"`
}

// UnitPartial is one translation unit's mergeable frontend result: the
// preprocessed token stream (gob-encoded, checksummed) plus the
// rendered diagnostics and counts the coordinator's fold needs.
// Reparsing Tokens reproduces the unit's parse tree and diagnostics
// exactly — the property the snapshot disk tier pins — so a partial is
// a complete substitute for having run the frontend locally.
type UnitPartial struct {
	Unit string `json:"unit"`
	// Tokens is gob([]ctoken.Token); encoding/json transports it as
	// base64. Sum is its SHA-256, verified before decode so a corrupt
	// partial quarantines one unit instead of poisoning the merge.
	Tokens []byte `json:"tokens"`
	Sum    string `json:"sum"`
	Lines  int    `json:"lines"`
	// Errs are the unit's preprocess and parse diagnostics, rendered.
	// The coordinator restores them verbatim (errors.New), exactly as
	// the disk tier restores persisted diagnostics.
	Errs   []string `json:"errs,omitempty"`
	Reused bool     `json:"reused,omitempty"`
	// PreprocessNs and ParseNs feed the coordinator's summed-over-units
	// timing stats.
	PreprocessNs int64 `json:"preprocess_ns,omitempty"`
	ParseNs      int64 `json:"parse_ns,omitempty"`
}

// ShardResponse is a worker's result for one shard: a partial per
// healthy unit, quarantine records (with their recovered-panic count)
// for the rest, and the worker's snapshot reuse stats. When the request
// asked for tracing, Trace carries the worker's span stream with its
// monotonic clock anchor; Metrics piggybacks a snapshot of the worker's
// scalar metric families for federation (filled by the serving layer —
// RunShard itself has no registry).
type ShardResponse struct {
	Partials    []UnitPartial     `json:"partials"`
	Quarantined []fault.Record    `json:"quarantined,omitempty"`
	Panics      int               `json:"panics,omitempty"`
	Snapshot    snapshot.RunStats `json:"snapshot"`
	Trace       *obs.TraceExport  `json:"trace,omitempty"`
	Metrics     []obs.Sample      `json:"metrics,omitempty"`
}

// encodeTokens serializes a token stream for the wire with its
// checksum.
func encodeTokens(toks []ctoken.Token) (raw []byte, sum string, err error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(toks); err != nil {
		return nil, "", fmt.Errorf("dist: encode tokens: %w", err)
	}
	s := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(s[:]), nil
}

// decodeTokens verifies and deserializes a wire token payload.
func decodeTokens(raw []byte, sum string) ([]ctoken.Token, error) {
	s := sha256.Sum256(raw)
	if hex.EncodeToString(s[:]) != sum {
		return nil, fmt.Errorf("dist: token payload checksum mismatch")
	}
	var toks []ctoken.Token
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&toks); err != nil {
		return nil, fmt.Errorf("dist: decode tokens: %w", err)
	}
	return toks, nil
}

// unitDigest is the content hash that places a unit on the ring.
func unitDigest(content string) string {
	s := sha256.Sum256([]byte(content))
	return hex.EncodeToString(s[:])
}
