package dist

import (
	"fmt"
	"testing"
)

// TestRingRebalance pins the consistent-hashing property the snapshot
// locality story depends on: removing 1 of 4 workers moves ONLY the
// digests that worker owned (everything else keeps its placement, so
// survivor caches stay warm), and that worker's share is ~1/4 of the
// corpus, not an arbitrary fraction.
func TestRingRebalance(t *testing.T) {
	names := []string{"w0", "w1", "w2", "w3"}
	r := newRing(names)

	const n = 2000
	digests := make([]string, n)
	before := make([]string, n)
	share := make(map[string]int)
	for i := range digests {
		digests[i] = unitDigest(fmt.Sprintf("unit %d contents", i))
		before[i] = r.owner(digests[i])
		share[before[i]]++
	}
	// 64 vnodes per worker keeps each share near 25%; the bound is loose
	// enough to be stable across hash details but tight enough to catch a
	// broken ring (one worker owning everything, or nothing).
	for _, name := range names {
		frac := float64(share[name]) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("worker %s owns %.1f%% of digests, outside [10%%,45%%]", name, frac*100)
		}
	}

	for _, removed := range names {
		dead := map[string]bool{removed: true}
		moved := 0
		for i := range digests {
			after := r.ownerExcluding(digests[i], dead)
			if after == removed {
				t.Fatalf("digest still assigned to removed worker %s", removed)
			}
			if after != before[i] {
				// Consistent hashing: the only digests allowed to move are
				// the removed worker's own.
				if before[i] != removed {
					t.Fatalf("removing %s moved a digest owned by %s", removed, before[i])
				}
				moved++
			}
		}
		if moved != share[removed] {
			t.Fatalf("removing %s: moved %d digests, want exactly its share %d", removed, moved, share[removed])
		}
		frac := float64(moved) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("removing %s moved %.1f%% of digests, want ~25%%", removed, frac*100)
		}
	}

	// Removing every worker leaves nothing to own digests.
	all := map[string]bool{"w0": true, "w1": true, "w2": true, "w3": true}
	if got := r.ownerExcluding(digests[0], all); got != "" {
		t.Fatalf("all-dead ring returned owner %q", got)
	}

	// Placement is a pure function of the name set, not insertion order.
	r2 := newRing([]string{"w3", "w1", "w0", "w2"})
	for i := range digests {
		if got := r2.owner(digests[i]); got != before[i] {
			t.Fatalf("placement depends on worker order: %s vs %s", got, before[i])
		}
	}
}
